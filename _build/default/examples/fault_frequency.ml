(* Fault-frequency study on a medium BT instance (the Figure 5 experiment
   at laptop scale).

   Run with: dune exec examples/fault_frequency.exe

   Sweeps the fault injection period on BT-25 class A and prints the
   paper-style table: mean execution time of terminated runs and the
   percentage of non-terminating runs. Watch the execution time grow and
   the runs stop terminating as faults come faster than checkpoints. *)

let () =
  let config =
    {
      Experiments.Fig_frequency.klass = Workload.Bt_model.A;
      n_ranks = 25;
      n_machines = 29;
      periods = [ None; Some 60; Some 50; Some 40; Some 35; Some 30 ];
      reps = 3;
      base_seed = 42;
    }
  in
  let aggs = Experiments.Fig_frequency.run ~config () in
  print_string
    (Experiments.Harness.render_table ~title:"Fault frequency on BT-25 class A (3 runs each)"
       aggs);
  print_newline ();
  print_endline
    "Reading the table: '%nonterm' runs hit the 1500 s experiment timeout\n\
     still rolling back — the failure frequency leaves no room to reach\n\
     the next checkpoint wave. 'chk' asserts that every terminated run\n\
     computed exactly the fault-free checksum, whatever faults occurred."
