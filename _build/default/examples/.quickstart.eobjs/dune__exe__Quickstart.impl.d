examples/quickstart.ml: Failmpi Format List Mpivcl Printf Simkern Workload
