examples/master_worker.ml: Failmpi List Mpivcl Printf Workload
