examples/bug_hunt.ml: Experiments Fail_lang Failmpi Int64 List Mpivcl Printf Workload
