examples/custom_scenario.ml: Failmpi List Mpivcl Printf Workload
