examples/fault_frequency.ml: Experiments Workload
