examples/quickstart.mli:
