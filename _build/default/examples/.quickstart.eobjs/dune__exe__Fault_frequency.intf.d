examples/fault_frequency.mli:
