examples/custom_scenario.mli:
