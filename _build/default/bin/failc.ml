(* failc: compile and inspect FAIL scenarios.

   Examples:
     failc scenario.fail
     failc scenario.fail --param X=5 --param N=52 --dump
     failc scenario.fail --dot ADV1
     failc --paper fig5-frequency --dump *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let parse_param s =
  match String.index_opt s '=' with
  | Some i -> (
      let name = String.sub s 0 i in
      let value = String.sub s (i + 1) (String.length s - i - 1) in
      match int_of_string_opt value with
      | Some v -> Ok (name, v)
      | None -> Error (`Msg (Printf.sprintf "parameter %s: %s is not an integer" name value)))
  | None -> Error (`Msg (Printf.sprintf "expected NAME=INT, got %s" s))

let param_conv = Arg.conv (parse_param, fun ppf (n, v) -> Format.fprintf ppf "%s=%d" n v)

let run file paper params dump dot =
  let source =
    match (file, paper) with
    | Some path, None -> Ok (read_file path)
    | None, Some name -> (
        match List.assoc_opt name Fail_lang.Paper_scenarios.all with
        | Some src -> Ok src
        | None ->
            Error
              (Printf.sprintf "unknown paper scenario %s (available: %s)" name
                 (String.concat ", " (List.map fst Fail_lang.Paper_scenarios.all))))
    | Some _, Some _ -> Error "give either FILE or --paper, not both"
    | None, None -> Error "give a FILE or --paper NAME"
  in
  match source with
  | Error msg ->
      prerr_endline ("failc: " ^ msg);
      1
  | Ok source -> (
      match Fail_lang.Compile.compile_source ~params source with
      | Error msg ->
          prerr_endline ("failc: " ^ msg);
          1
      | Ok plan ->
          let daemons = List.map fst plan.Fail_lang.Compile.automata in
          Printf.printf "compiled %d daemon(s): %s; %d deployment(s)\n" (List.length daemons)
            (String.concat ", " daemons)
            (List.length plan.Fail_lang.Compile.deployments);
          if dump then print_string (Fail_lang.Codegen.dump plan);
          (match dot with
          | Some name -> (
              match Fail_lang.Compile.automaton plan name with
              | Some a -> print_string (Fail_lang.Codegen.to_dot a)
              | None ->
                  prerr_endline ("failc: no daemon named " ^ name);
                  exit 1)
          | None -> ());
          0)

let cmd =
  let file =
    Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"FAIL scenario source file.")
  in
  let paper =
    Arg.(
      value
      & opt (some string) None
      & info [ "paper" ] ~docv:"NAME" ~doc:"Use a built-in paper scenario instead of a file.")
  in
  let params =
    Arg.(
      value & opt_all param_conv []
      & info [ "param"; "p" ] ~docv:"NAME=INT" ~doc:"Scenario parameter (repeatable).")
  in
  let dump = Arg.(value & flag & info [ "dump" ] ~doc:"Print the compiled automata.") in
  let dot =
    Arg.(
      value
      & opt (some string) None
      & info [ "dot" ] ~docv:"DAEMON" ~doc:"Print a Graphviz digraph of one daemon.")
  in
  Cmd.v
    (Cmd.info "failc" ~doc:"Compile and inspect FAIL fault-injection scenarios")
    Term.(const run $ file $ paper $ params $ dump $ dot)

let () = exit (Cmd.eval' cmd)
