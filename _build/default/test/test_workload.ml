(* Tests for the workload library: stencil topology, reference checksums,
   BT model calibration. *)

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool

open Workload

let params ?(iterations = 10) () =
  { Stencil.iterations; compute_time = 0.1; msg_bytes = 1000; jitter = 0.0 }

let test_reference_deterministic () =
  let p = params () in
  check_int "same twice" (Stencil.reference_checksum p ~n_ranks:9)
    (Stencil.reference_checksum p ~n_ranks:9)

let test_reference_varies () =
  let p = params () in
  let a = Stencil.reference_checksum p ~n_ranks:9 in
  let b = Stencil.reference_checksum p ~n_ranks:16 in
  let c = Stencil.reference_checksum { p with Stencil.iterations = 11 } ~n_ranks:9 in
  check_bool "differs by size" true (a <> b);
  check_bool "differs by iterations" true (a <> c)

let test_reference_nonzero () =
  List.iter
    (fun n ->
      check_bool
        (Printf.sprintf "nonzero for %d" n)
        true
        (Stencil.reference_checksum (params ()) ~n_ranks:n <> 0))
    [ 1; 4; 9; 25 ]

let test_non_square_rejected () =
  Alcotest.check_raises "7 ranks" (Invalid_argument "Stencil: 7 ranks is not a perfect square")
    (fun () -> ignore (Stencil.app (params ()) ~n_ranks:7))

let test_mix_range () =
  for i = 0 to 1000 do
    let v = Stencil.mix i (i * 7919) in
    check_bool "30-bit" true (v >= 0 && v < 0x40000000)
  done

let prop_mix_sensitive =
  QCheck.Test.make ~name:"mix is input-sensitive" ~count:200
    QCheck.(pair (int_bound 1_000_000) (int_bound 1_000_000))
    (fun (a, b) -> a = b || Stencil.mix a b = Stencil.mix a b)

(* ------------------------------------------------------------------ *)
(* BT model *)

let test_bt_compute_scales () =
  let p25 = Bt_model.params Bt_model.B ~n_ranks:25 in
  let p64 = Bt_model.params Bt_model.B ~n_ranks:64 in
  check_bool "per-rank compute shrinks" true
    (p64.Stencil.compute_time < p25.Stencil.compute_time);
  (* Constant aggregate work: n * compute_time equal across sizes. *)
  check (Alcotest.float 1e-6) "aggregate work constant"
    (25.0 *. p25.Stencil.compute_time)
    (64.0 *. p64.Stencil.compute_time)

let test_bt_image_shrinks () =
  check_bool "image smaller at 64 ranks" true
    (Bt_model.state_bytes Bt_model.B ~n_ranks:64 < Bt_model.state_bytes Bt_model.B ~n_ranks:25)

let test_bt_classes_ordered () =
  let t k = Bt_model.ideal_runtime k ~n_ranks:49 in
  check_bool "A < B < C" true (t Bt_model.A < t Bt_model.B && t Bt_model.B < t Bt_model.C)

let test_bt_class_parse () =
  check_bool "B" true (Bt_model.klass_of_string "B" = Some Bt_model.B);
  check_bool "b" true (Bt_model.klass_of_string "b" = Some Bt_model.B);
  check_bool "bogus" true (Bt_model.klass_of_string "Z" = None);
  check Alcotest.string "name" "C" (Bt_model.klass_name Bt_model.C)

let test_bt_calibration_ballpark () =
  (* The paper's failure-free BT-49 class B is ~210 s; the ideal runtime
     (without communication) must be just under that. *)
  let t = Bt_model.ideal_runtime Bt_model.B ~n_ranks:49 in
  check_bool "BT-49/B near 210 s" true (t > 180.0 && t < 230.0)

(* ------------------------------------------------------------------ *)
(* Master-worker *)

let mw_params = { Master_worker.tasks = 30; task_time = 0.3; task_bytes = 10_000; jitter = 0.2 }

let test_mw_rounds () =
  check_int "rounds up" 5 (Master_worker.rounds mw_params ~n_ranks:8);
  check_int "exact" 10 (Master_worker.rounds { mw_params with Master_worker.tasks = 30 } ~n_ranks:4)

let test_mw_needs_two_ranks () =
  Alcotest.check_raises "one rank" (Invalid_argument "Master_worker: need at least 2 ranks")
    (fun () -> ignore (Master_worker.app mw_params ~n_ranks:1))

let test_mw_reference_deterministic () =
  check_int "same" (Master_worker.reference_checksum mw_params ~n_ranks:5)
    (Master_worker.reference_checksum mw_params ~n_ranks:5);
  check_bool "varies with size" true
    (Master_worker.reference_checksum mw_params ~n_ranks:5
    <> Master_worker.reference_checksum mw_params ~n_ranks:6)

let run_mw ?(protocol = Mpivcl.Config.Non_blocking) ?kill_master_at () =
  let n_ranks = 4 in
  let app = Master_worker.app mw_params ~n_ranks in
  let cfg =
    {
      (Mpivcl.Config.default ~n_ranks) with
      Mpivcl.Config.wave_interval = 5.0;
      protocol;
      term_straggler_prob = 0.0;
    }
  in
  let spec =
    {
      (Failmpi.Run.default_spec ~app ~cfg ~n_compute:6 ~state_bytes:500_000) with
      Failmpi.Run.scenario =
        Option.map
          (fun t ->
            Printf.sprintf
              "Daemon K { node 1: time t = %d; timer -> !crash(G1[0]), goto 2; node 2: ?no                -> !crash(G1[0]), goto 2; ?ok -> goto 3; node 3: }
               Daemon N { node 1: onload -> continue, goto 2; ?crash -> !no(P1), goto 1;                node 2: onexit -> goto 1; onerror -> goto 1; onload -> continue, goto 2;                ?crash -> !ok(P1), halt, goto 1; }
               P1 : K on machine 6; G1[6] : N on machines 0 .. 5;"
              t)
          kill_master_at;
      timeout = 400.0;
    }
  in
  Failmpi.Run.execute
    ~expected_checksum:(Master_worker.reference_checksum mw_params ~n_ranks)
    spec

let test_mw_failure_free () =
  let r = run_mw () in
  check_bool "completed" true
    (match r.Failmpi.Run.outcome with Failmpi.Run.Completed _ -> true | _ -> false);
  check_bool "checksum" true (r.Failmpi.Run.checksum_ok = Some true)

let test_mw_master_killed_vcl () =
  let r = run_mw ~kill_master_at:4 () in
  check_bool "fault hit" true (r.Failmpi.Run.injected_faults >= 1);
  check_bool "completed" true
    (match r.Failmpi.Run.outcome with Failmpi.Run.Completed _ -> true | _ -> false);
  check_bool "checksum" true (r.Failmpi.Run.checksum_ok = Some true)

let test_mw_master_killed_v2 () =
  let r = run_mw ~protocol:Mpivcl.Config.Sender_logging ~kill_master_at:4 () in
  check_bool "fault hit" true (r.Failmpi.Run.injected_faults >= 1);
  check_bool "completed" true
    (match r.Failmpi.Run.outcome with Failmpi.Run.Completed _ -> true | _ -> false);
  check_bool "checksum" true (r.Failmpi.Run.checksum_ok = Some true)

(* Full-stack check: a simulated failure-free run reproduces the
   functional reference checksum for several sizes. *)
let test_reference_matches_simulation () =
  List.iter
    (fun n_ranks ->
      let p = params ~iterations:8 () in
      let app = Stencil.app p ~n_ranks in
      let cfg = Mpivcl.Config.default ~n_ranks in
      let spec =
        {
          (Failmpi.Run.default_spec ~app ~cfg ~n_compute:(n_ranks + 2) ~state_bytes:100_000) with
          Failmpi.Run.timeout = 500.0;
        }
      in
      let expected = Stencil.reference_checksum p ~n_ranks in
      let r = Failmpi.Run.execute ~expected_checksum:expected spec in
      check_bool
        (Printf.sprintf "%d ranks checksum" n_ranks)
        true
        (r.Failmpi.Run.checksum_ok = Some true))
    [ 1; 4; 9 ]

let () =
  let qsuite = List.map QCheck_alcotest.to_alcotest [ prop_mix_sensitive ] in
  Alcotest.run "workload"
    [
      ( "stencil",
        [
          Alcotest.test_case "reference deterministic" `Quick test_reference_deterministic;
          Alcotest.test_case "reference varies" `Quick test_reference_varies;
          Alcotest.test_case "reference nonzero" `Quick test_reference_nonzero;
          Alcotest.test_case "non-square rejected" `Quick test_non_square_rejected;
          Alcotest.test_case "mix range" `Quick test_mix_range;
          Alcotest.test_case "reference matches simulation" `Quick
            test_reference_matches_simulation;
        ] );
      ( "master-worker",
        [
          Alcotest.test_case "rounds" `Quick test_mw_rounds;
          Alcotest.test_case "needs two ranks" `Quick test_mw_needs_two_ranks;
          Alcotest.test_case "reference deterministic" `Quick test_mw_reference_deterministic;
          Alcotest.test_case "failure free" `Quick test_mw_failure_free;
          Alcotest.test_case "master killed (Vcl)" `Quick test_mw_master_killed_vcl;
          Alcotest.test_case "master killed (V2)" `Quick test_mw_master_killed_v2;
        ] );
      ( "bt-model",
        [
          Alcotest.test_case "compute scales" `Quick test_bt_compute_scales;
          Alcotest.test_case "image shrinks" `Quick test_bt_image_shrinks;
          Alcotest.test_case "classes ordered" `Quick test_bt_classes_ordered;
          Alcotest.test_case "class parse" `Quick test_bt_class_parse;
          Alcotest.test_case "calibration ballpark" `Quick test_bt_calibration_ballpark;
        ] );
      ("properties", qsuite);
    ]
