test/test_fci.ml: Alcotest Compile Engine Fail_lang Fci List Option Printf Proc Simkern Str
