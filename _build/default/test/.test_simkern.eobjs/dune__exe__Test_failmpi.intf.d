test/test_failmpi.mli:
