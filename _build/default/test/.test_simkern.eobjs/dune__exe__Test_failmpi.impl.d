test/test_failmpi.ml: Alcotest Experiments Fail_lang Failmpi Filename Format Fun List Mpivcl Simkern Str String Workload
