test/test_fail_lang.mli:
