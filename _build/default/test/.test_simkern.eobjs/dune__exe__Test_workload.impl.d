test/test_workload.ml: Alcotest Bt_model Failmpi List Master_worker Mpivcl Option Printf QCheck QCheck_alcotest Stencil Workload
