test/test_simkern.ml: Alcotest Array Buffer Engine Fun Gen Heap Int Int64 Ivar List Mailbox Printf Proc QCheck QCheck_alcotest Rng Simkern String Trace
