test/test_simkern.mli:
