test/test_simnet.ml: Alcotest Engine List Net Proc Simkern Simnet Simos
