test/test_fci.mli:
