test/test_mpivcl.mli:
