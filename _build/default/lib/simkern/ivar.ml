type 'a state = Empty of ('a -> bool) list | Filled of 'a

type 'a t = { mutable state : 'a state }

let create () = { state = Empty [] }

let try_fill iv v =
  match iv.state with
  | Filled _ -> false
  | Empty waiters ->
      iv.state <- Filled v;
      List.iter (fun waker -> ignore (waker v)) (List.rev waiters);
      true

let fill iv v = if not (try_fill iv v) then invalid_arg "Ivar.fill: already filled"

let read iv =
  match iv.state with
  | Filled v -> v
  | Empty _ ->
      Proc.suspend (fun waker ->
          match iv.state with
          | Filled v -> ignore (waker v)
          | Empty waiters -> iv.state <- Empty (waker :: waiters))

let peek iv = match iv.state with Filled v -> Some v | Empty _ -> None

let is_filled iv = match iv.state with Filled _ -> true | Empty _ -> false
