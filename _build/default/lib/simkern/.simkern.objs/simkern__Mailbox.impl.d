lib/simkern/mailbox.ml: Engine Proc Queue
