lib/simkern/trace.ml: Format List Option String
