lib/simkern/heap.mli:
