lib/simkern/engine.ml: Float Heap Int List Option Printf Rng Trace
