lib/simkern/trace.mli: Format
