lib/simkern/mailbox.mli:
