lib/simkern/heap.ml: Array
