lib/simkern/ivar.ml: List Proc
