lib/simkern/engine.mli: Rng Trace
