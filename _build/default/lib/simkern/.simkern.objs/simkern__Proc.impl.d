lib/simkern/proc.ml: Effect Engine Format List Printexc Printf
