lib/simkern/ivar.mli:
