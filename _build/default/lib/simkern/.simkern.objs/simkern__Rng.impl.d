lib/simkern/rng.ml: Array Int64 List
