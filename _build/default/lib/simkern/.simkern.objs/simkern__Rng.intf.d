lib/simkern/rng.mli:
