lib/simkern/proc.mli: Engine Format
