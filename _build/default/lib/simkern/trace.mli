(** Structured execution trace.

    The paper distinguishes non-terminating runs (rollback/crash cycles)
    from buggy runs (freezes) by analysing the execution trace (§5). Every
    protocol component records its externally observable events here, and
    {!Experiments} classifies outcomes from the same information. *)

type entry = {
  time : float;  (** simulated time of the event *)
  source : string;  (** component that recorded it, e.g. ["dispatcher"] *)
  event : string;  (** event kind, e.g. ["failure-detected"] *)
  detail : string;  (** free-form payload *)
}

type t

(** [create ()] returns an empty trace. *)
val create : unit -> t

(** [record t ~time ~source ~event detail] appends an entry. *)
val record : t -> time:float -> source:string -> event:string -> string -> unit

(** [entries t] returns all entries in recording order. *)
val entries : t -> entry list

(** [length t] is the number of entries. *)
val length : t -> int

(** [count t ~event] counts entries of the given kind. *)
val count : t -> event:string -> int

(** [find_all t ~event] returns entries of the given kind, oldest first. *)
val find_all : t -> event:string -> entry list

(** [last t ~event] returns the most recent entry of the given kind. *)
val last : t -> event:string -> entry option

(** [last_time t ~event] is the time of the most recent entry of the given
    kind, if any. *)
val last_time : t -> event:string -> float option

(** [clear t] drops all entries. *)
val clear : t -> unit

(** [pp ppf t] prints the trace, one entry per line. *)
val pp : Format.formatter -> t -> unit

val pp_entry : Format.formatter -> entry -> unit
