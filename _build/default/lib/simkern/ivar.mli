(** Write-once synchronization variable.

    An ivar starts empty; [fill] sets it exactly once and wakes every
    reader. Later [read]s return immediately. Used for acknowledgements and
    barriers in the protocol code. *)

type 'a t

val create : unit -> 'a t

(** [fill iv v] sets the value. Raises [Invalid_argument] if already
    filled. *)
val fill : 'a t -> 'a -> unit

(** [try_fill iv v] sets the value if empty; returns whether it did. *)
val try_fill : 'a t -> 'a -> bool

(** [read iv] blocks until the ivar is filled, then returns the value. *)
val read : 'a t -> 'a

(** [peek iv] returns the value if filled. *)
val peek : 'a t -> 'a option

val is_filled : 'a t -> bool
