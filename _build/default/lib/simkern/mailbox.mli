(** Unbounded FIFO mailbox connecting simulated processes.

    [send] never blocks; [recv] blocks the calling process until a message
    is available. Messages are delivered in send order. A waiter whose
    process was killed (or raced with another wake-up) rejects the message,
    which is then offered to the next waiter or queued. *)

type 'a t

val create : unit -> 'a t

(** [send mb v] enqueues [v] or hands it to the oldest live waiter. *)
val send : 'a t -> 'a -> unit

(** [recv mb] blocks until a message arrives. Must be called from inside a
    process. *)
val recv : 'a t -> 'a

(** [try_recv mb] pops the oldest queued message without blocking. *)
val try_recv : 'a t -> 'a option

(** [recv_timeout mb ~timeout] waits at most [timeout] simulated seconds;
    [None] on expiry. *)
val recv_timeout : 'a t -> timeout:float -> 'a option

(** [length mb] is the number of queued (undelivered) messages. *)
val length : 'a t -> int

val is_empty : 'a t -> bool

(** [clear mb] drops all queued messages (waiters are unaffected). *)
val clear : 'a t -> unit
