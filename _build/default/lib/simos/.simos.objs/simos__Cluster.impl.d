lib/simos/cluster.ml: Array Engine List Printf Proc Simkern String
