lib/simos/cluster.mli: Engine Proc Simkern
