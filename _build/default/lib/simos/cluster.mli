(** Simulated cluster: a set of hosts and the tasks running on them.

    Mirrors the paper's Grid Explorer setup: an experiment devotes more
    machines than application processes (e.g. 53 hosts for BT-49) so that
    spare processors are always available after failures. Host identifiers
    double as network addresses in {!Simnet.Net}. *)

open Simkern

type t

type host = {
  host_id : int;
  host_name : string;
  mutable host_tasks : Proc.t list;  (** live tasks, most recent first *)
}

(** [create engine ~size] builds a cluster of [size] hosts with ids
    [0 .. size-1]. *)
val create : Engine.t -> size:int -> t

val engine : t -> Engine.t
val size : t -> int

(** [host t id] returns the host record. Raises [Invalid_argument] on an
    unknown id. *)
val host : t -> int -> host

val hosts : t -> host list

(** [spawn_on t ~host ?name body] starts a task on [host]. The task is
    tracked in the host's registry until it exits. *)
val spawn_on : t -> host:int -> ?name:string -> (unit -> unit) -> Proc.t

(** [tasks t ~host] returns the live tasks on [host]. *)
val tasks : t -> host:int -> Proc.t list

(** [find_task t ~host ~name] returns the most recently spawned live task
    with the given name. *)
val find_task : t -> host:int -> name:string -> Proc.t option

(** [kill_all t ~host] kills every live task on [host]. *)
val kill_all : t -> host:int -> unit

(** [live_task_count t] is the total number of live tasks. *)
val live_task_count : t -> int
