open Simkern

type host = { host_id : int; host_name : string; mutable host_tasks : Proc.t list }

type t = { eng : Engine.t; machines : host array }

let create eng ~size =
  if size <= 0 then invalid_arg "Cluster.create: size must be positive";
  let machines =
    Array.init size (fun i ->
        { host_id = i; host_name = Printf.sprintf "node%03d" i; host_tasks = [] })
  in
  { eng; machines }

let engine t = t.eng
let size t = Array.length t.machines

let host t id =
  if id < 0 || id >= Array.length t.machines then
    invalid_arg (Printf.sprintf "Cluster.host: unknown host %d" id);
  t.machines.(id)

let hosts t = Array.to_list t.machines

let spawn_on t ~host:id ?name body =
  let h = host t id in
  let name = match name with Some n -> n | None -> Printf.sprintf "task@%s" h.host_name in
  let p = Proc.spawn t.eng ~name body in
  h.host_tasks <- p :: h.host_tasks;
  Proc.on_exit p (fun _ ->
      h.host_tasks <- List.filter (fun q -> Proc.pid q <> Proc.pid p) h.host_tasks);
  p

let tasks t ~host:id = (host t id).host_tasks

let find_task t ~host:id ~name =
  List.find_opt (fun p -> String.equal (Proc.name p) name) (host t id).host_tasks

let kill_all t ~host:id = List.iter Proc.kill (host t id).host_tasks

let live_task_count t =
  Array.fold_left (fun acc h -> acc + List.length h.host_tasks) 0 t.machines
