(** Master–worker workload.

    The paper's introduction singles out master–worker execution as the
    other dominant MPI pattern besides SPMD. This model is a static task
    farm: rank 0 distributes [tasks] work units to the workers in
    round-robin rounds, collects the results, folds them into a checksum
    and finally broadcasts it to every rank. Task service times carry
    seeded jitter (through [App.ctx.noise]), so rounds are irregular while
    the computation stays deterministic — the property rollback recovery
    relies on.

    Failure-wise this workload is interesting because rank 0 is a single
    hot spot: killing the master forces either a global rollback (Vcl) or
    a master-only restart whose results are re-fed from the workers' send
    logs (V2).

    State layout: [state.(0)] = next round, [state.(1)] = running
    checksum (master) / last result (worker), [state.(2)] = final
    checksum. *)

type params = {
  tasks : int;  (** total work units; rounded up to full rounds *)
  task_time : float;  (** mean service time per task, seconds *)
  task_bytes : int;  (** task/result message size *)
  jitter : float;  (** relative service-time noise *)
}

(** [app params ~n_ranks] builds the application ([n_ranks >= 2]). *)
val app : params -> n_ranks:int -> Mpivcl.App.t

(** [reference_checksum params ~n_ranks] is the fault-free result. *)
val reference_checksum : params -> n_ranks:int -> int

(** [rounds params ~n_ranks] is the number of distribution rounds. *)
val rounds : params -> n_ranks:int -> int
