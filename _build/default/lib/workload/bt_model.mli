(** NAS Parallel Benchmarks BT (Block Tridiagonal) model.

    BT runs on a square number of processes with an approximately constant
    aggregate memory footprint divided equally between ranks (§5.2). This
    model reproduces its externally visible behaviour — iteration count,
    per-iteration computation scaled to the paper's Grid Explorer numbers,
    boundary-exchange message sizes, per-rank checkpoint image sizes —
    on top of {!Stencil}.

    Calibration (class B): aggregate compute work chosen so that the
    failure-free BT-49 run lands near the paper's ~210 s, with 200
    iterations; the data footprint of ~320 MB plus a ~25 MB per-process
    runtime overhead gives the 30–40 MB checkpoint images whose transfer
    times drive the paper's §5.2 observations. *)

type klass = A | B | C

val klass_of_string : string -> klass option
val klass_name : klass -> string

(** [params klass ~n_ranks] is the underlying stencil parameterisation. *)
val params : klass -> n_ranks:int -> Stencil.params

(** [app klass ~n_ranks] builds the BT application ([n_ranks] must be a
    perfect square, as for the real BT). *)
val app : klass -> n_ranks:int -> Mpivcl.App.t

(** [state_bytes klass ~n_ranks] is the per-rank checkpoint image base
    size. *)
val state_bytes : klass -> n_ranks:int -> int

(** [reference_checksum klass ~n_ranks] — see {!Stencil.reference_checksum}. *)
val reference_checksum : klass -> n_ranks:int -> int

(** [ideal_runtime klass ~n_ranks] is the communication-free lower bound
    (iterations x per-iteration compute), for sanity checks. *)
val ideal_runtime : klass -> n_ranks:int -> float
