type klass = A | B | C

let klass_of_string = function
  | "A" | "a" -> Some A
  | "B" | "b" -> Some B
  | "C" | "c" -> Some C
  | _ -> None

let klass_name = function A -> "A" | B -> "B" | C -> "C"

(* Aggregate compute work in core-seconds, iteration counts and data
   footprints per class. Work is calibrated on the paper's no-fault
   BT-49 class B execution time. *)
let work_core_seconds = function A -> 3.5e3 | B -> 1.03e4 | C -> 4.1e4

let iterations_of = function A -> 200 | B -> 200 | C -> 200

let data_bytes = function A -> 1.0e8 | B -> 3.2e8 | C -> 1.3e9

(* Per-process runtime overhead in a system-level checkpoint image
   (code, libraries, communication buffers). *)
let process_overhead_bytes = 2.5e7

(* Aggregate boundary traffic scales with the total surface; per-rank
   messages shrink as ranks grow. *)
let msg_bytes_of klass ~n_ranks =
  int_of_float (data_bytes klass /. 64.0 /. float_of_int n_ranks)

let params klass ~n_ranks =
  let iterations = iterations_of klass in
  {
    Stencil.iterations;
    compute_time = work_core_seconds klass /. float_of_int (n_ranks * iterations);
    msg_bytes = msg_bytes_of klass ~n_ranks;
    jitter = 0.02;
  }

let app klass ~n_ranks =
  let base = Stencil.app (params klass ~n_ranks) ~n_ranks in
  { base with Mpivcl.App.app_name = Printf.sprintf "bt.%s.%d" (klass_name klass) n_ranks }

let state_bytes klass ~n_ranks =
  int_of_float ((data_bytes klass /. float_of_int n_ranks) +. process_overhead_bytes)

let reference_checksum klass ~n_ranks = Stencil.reference_checksum (params klass ~n_ranks) ~n_ranks

let ideal_runtime klass ~n_ranks =
  let p = params klass ~n_ranks in
  float_of_int p.Stencil.iterations *. p.Stencil.compute_time
