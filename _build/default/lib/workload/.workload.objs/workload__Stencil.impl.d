lib/workload/stencil.ml: App Array List Mpivcl Printf Proc Simkern
