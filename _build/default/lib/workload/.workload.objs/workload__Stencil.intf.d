lib/workload/stencil.mli: Mpivcl
