lib/workload/bt_model.ml: Mpivcl Printf Stencil
