lib/workload/master_worker.ml: App Array Float Mpivcl Printf Proc Simkern Stencil
