lib/workload/bt_model.mli: Mpivcl Stencil
