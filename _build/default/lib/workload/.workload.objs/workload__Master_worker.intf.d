lib/workload/master_worker.mli: Mpivcl
