(** Generic 2D-torus stencil workload.

    The communication skeleton of NAS BT: ranks form a [side x side]
    grid ([n] must be a perfect square), and every iteration each rank
    computes, exchanges boundary data with its four torus neighbours, and
    folds the received values into a running checksum. The checksum makes
    the rollback-recovery protocol {e testable}: a completed run must
    produce exactly {!reference_checksum}, whatever faults occurred —
    lost, duplicated or mis-replayed messages change the result.

    State layout: [state.(0)] = next iteration, [state.(1)] = running
    checksum, [state.(2)] = final global checksum (after the closing
    allreduce). *)

type params = {
  iterations : int;
  compute_time : float;  (** per-rank seconds per iteration *)
  msg_bytes : int;  (** boundary-exchange message size *)
  jitter : float;  (** relative service-time noise amplitude, e.g. [0.02] *)
}

(** [app params ~n_ranks] builds the application. Raises
    [Invalid_argument] if [n_ranks] is not a perfect square. *)
val app : params -> n_ranks:int -> Mpivcl.App.t

(** [reference_checksum params ~n_ranks] is the checksum a fault-free
    execution produces (computed functionally, without the simulator). *)
val reference_checksum : params -> n_ranks:int -> int

(** [mix a b] is the deterministic combiner used by the stencil. *)
val mix : int -> int -> int
