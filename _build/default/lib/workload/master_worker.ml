open Simkern
open Mpivcl

type params = { tasks : int; task_time : float; task_bytes : int; jitter : float }

let task_payload task_id = Stencil.mix (task_id + 1) 0x5157
let task_result task_id payload = Stencil.mix payload (task_id * 31)

let check_ranks n = if n < 2 then invalid_arg "Master_worker: need at least 2 ranks"

let rounds params ~n_ranks =
  check_ranks n_ranks;
  let workers = n_ranks - 1 in
  (params.tasks + workers - 1) / workers

(* Tags: round r task to worker = r; result back = r; final broadcast =
   rounds + 1. (src, dst, tag) stays unique because each pair exchanges
   one message per round and direction. *)
let app params ~n_ranks =
  check_ranks n_ranks;
  let workers = n_ranks - 1 in
  let n_rounds = rounds params ~n_ranks in
  let final_tag = n_rounds + 1 in
  let main (ctx : App.ctx) =
    let state = ctx.App.state in
    let rank = ctx.App.rank in
    if rank = 0 then begin
      for round = state.(0) to n_rounds - 1 do
        ctx.App.set_app_var "round" round;
        for w = 1 to workers do
          let task_id = (round * workers) + (w - 1) in
          ctx.App.send ~dst:w ~tag:round ~bytes:params.task_bytes (task_payload task_id)
        done;
        for w = 1 to workers do
          let result = ctx.App.recv ~src:w ~tag:round in
          state.(1) <- Stencil.mix state.(1) result
        done;
        state.(0) <- round + 1;
        ctx.App.commit ()
      done;
      if state.(2) = 0 then begin
        let final = if state.(1) = 0 then 1 else state.(1) in
        for w = 1 to workers do
          ctx.App.send ~dst:w ~tag:final_tag final
        done;
        state.(2) <- final;
        ctx.App.commit ()
      end
    end
    else begin
      for round = state.(0) to n_rounds - 1 do
        ctx.App.set_app_var "round" round;
        let payload = ctx.App.recv ~src:0 ~tag:round in
        let task_id = (round * workers) + (rank - 1) in
        Proc.sleep
          (Float.max 0.0
             (params.task_time *. (1.0 +. (params.jitter *. ctx.App.noise task_id))));
        let result = task_result task_id payload in
        state.(1) <- result;
        ctx.App.send ~dst:0 ~tag:round ~bytes:params.task_bytes result;
        state.(0) <- round + 1;
        ctx.App.commit ()
      done;
      if state.(2) = 0 then begin
        state.(2) <- ctx.App.recv ~src:0 ~tag:final_tag;
        ctx.App.commit ()
      end
    end;
    ctx.App.set_app_var "checksum" state.(2);
    ctx.App.finalize ()
  in
  { App.app_name = Printf.sprintf "master-worker-%d" n_ranks; state_size = 3; main }

let reference_checksum params ~n_ranks =
  check_ranks n_ranks;
  let workers = n_ranks - 1 in
  let n_rounds = rounds params ~n_ranks in
  let acc = ref 0 in
  for round = 0 to n_rounds - 1 do
    for w = 1 to workers do
      let task_id = (round * workers) + (w - 1) in
      acc := Stencil.mix !acc (task_result task_id (task_payload task_id))
    done
  done;
  if !acc = 0 then 1 else !acc
