open Simkern
open Mpivcl

type params = { iterations : int; compute_time : float; msg_bytes : int; jitter : float }

let mix a b = ((a * 1103515245) + (b * 12345) + 0x9E37) land 0x3FFFFFFF

let send_value rank iter acc = mix (mix (rank + 1) (iter + 1)) acc

let isqrt n =
  let rec find i = if i * i >= n then i else find (i + 1) in
  find 1

(* Directions in fold order; [opposite] pairs N/S and W/E. *)
let dir_codes = [ 0; 1; 2; 3 ] (* N S W E *)

let opposite = function 0 -> 1 | 1 -> 0 | 2 -> 3 | 3 -> 2 | d -> d

let neighbour ~side rank dir =
  let row = rank / side and col = rank mod side in
  let row', col' =
    match dir with
    | 0 -> ((row + side - 1) mod side, col)
    | 1 -> ((row + 1) mod side, col)
    | 2 -> (row, (col + side - 1) mod side)
    | 3 -> (row, (col + 1) mod side)
    | d -> invalid_arg (Printf.sprintf "Stencil.neighbour: bad direction %d" d)
  in
  (row' * side) + col'

let check_square n =
  let side = isqrt n in
  if side * side <> n then
    invalid_arg (Printf.sprintf "Stencil: %d ranks is not a perfect square" n);
  side

let app params ~n_ranks =
  let side = check_square n_ranks in
  let main (ctx : App.ctx) =
    let state = ctx.App.state in
    let rank = ctx.App.rank in
    let start = state.(0) in
    for iter = start to params.iterations - 1 do
      ctx.App.set_app_var "iteration" iter;
      Proc.sleep (params.compute_time *. (1.0 +. (params.jitter *. ctx.App.noise iter)));
      if side > 1 then begin
        let v = send_value rank iter state.(1) in
        List.iter
          (fun dir ->
            ctx.App.send
              ~dst:(neighbour ~side rank dir)
              ~tag:((iter * 4) + dir)
              ~bytes:params.msg_bytes v)
          dir_codes;
        List.iter
          (fun dir ->
            let got =
              ctx.App.recv ~src:(neighbour ~side rank dir) ~tag:((iter * 4) + opposite dir)
            in
            state.(1) <- mix state.(1) got)
          dir_codes
      end
      else state.(1) <- mix state.(1) (send_value rank iter state.(1));
      state.(0) <- iter + 1;
      ctx.App.commit ()
    done;
    if state.(2) = 0 then begin
      let total = App.allreduce_sum ctx ~tag_base:(params.iterations * 4) state.(1) in
      (* Checksums are 30-bit; a completed allreduce is never 0 in
         practice, and 0 doubles as the "not done yet" marker. *)
      state.(2) <- (if total = 0 then 1 else total);
      ctx.App.commit ()
    end;
    ctx.App.set_app_var "checksum" state.(2);
    ctx.App.finalize ()
  in
  {
    App.app_name = Printf.sprintf "stencil-%d" n_ranks;
    state_size = 3;
    main;
  }

let reference_checksum params ~n_ranks =
  let side = check_square n_ranks in
  let accs = Array.make n_ranks 0 in
  for iter = 0 to params.iterations - 1 do
    let sent = Array.mapi (fun rank acc -> send_value rank iter acc) accs in
    Array.iteri
      (fun rank acc ->
        if side > 1 then begin
          let acc' =
            List.fold_left
              (fun acc dir -> mix acc sent.(neighbour ~side rank dir))
              acc dir_codes
          in
          accs.(rank) <- acc'
        end
        else accs.(rank) <- mix acc sent.(rank))
      (Array.copy accs)
  done;
  let total = Array.fold_left ( + ) 0 accs in
  if total = 0 then 1 else total
