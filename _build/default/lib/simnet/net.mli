(** Simulated TCP-like network.

    A ['a t] is an overlay network whose connections all carry messages of
    type ['a]. Hosts are plain integers (assigned by {!Simos.Cluster});
    connections between distinct hosts pay the network latency and
    bandwidth, while same-host connections (the paper's Unix sockets
    between an MPI process and its daemon) pay the much smaller local
    cost.

    Failure semantics follow the paper's §3 setup: a connection endpoint is
    owned by the process that opened it, and when that process dies — for
    any reason, including a FAIL-MPI [halt] — the peer observes the closure
    on its next receive. "A failure is assumed after any unexpected socket
    closure"; detection is immediate because experiments kill tasks, not
    operating systems. *)

open Simkern

type 'a t

type config = {
  latency : float;  (** one-way propagation delay between distinct hosts, s *)
  bandwidth : float;  (** bytes per second between distinct hosts *)
  local_latency : float;  (** one-way delay on same-host connections, s *)
  local_bandwidth : float;  (** bytes per second on same-host connections *)
}

(** GigE-like defaults: 100 us latency, 100 MB/s; local: 5 us, 1 GB/s. *)
val default_config : config

val create : Engine.t -> ?config:config -> unit -> 'a t
val engine : 'a t -> Engine.t
val config : 'a t -> config

type 'a listener
type 'a conn

(** Result of a receive. [`Closed] means the peer endpoint was closed or
    its owner process died. *)
type 'a recv_result = Data of 'a | Closed

(** [listen net ~host ~port] binds a listener. Raises [Invalid_argument]
    if the address is already bound. *)
val listen : 'a t -> host:int -> port:int -> 'a listener

(** [accept l] blocks the calling process until a connection arrives; the
    calling process becomes the owner of the returned endpoint. Returns
    [None] if the listener is closed while waiting. *)
val accept : 'a listener -> 'a conn option

val close_listener : 'a listener -> unit

(** [connect net ~host ~to_host ~to_port] opens a connection from [host].
    Blocks the calling process for the handshake round-trip; the caller
    becomes the owner of the returned endpoint. [Error `Refused] if no
    listener is bound. *)
val connect : 'a t -> host:int -> to_host:int -> to_port:int -> ('a conn, [ `Refused ]) result

(** [send conn ?size v] queues [v] for delivery ([size] in bytes, default
    [64], determines transmission time). Returns [false] if the connection
    is already closed locally or by the peer (the message is dropped, like
    a write on a reset socket). *)
val send : 'a conn -> ?size:int -> 'a -> bool

(** [recv conn] blocks until a message or the closure marker arrives. *)
val recv : 'a conn -> 'a recv_result

(** [recv_timeout conn ~timeout] like {!recv} with an expiry; [None] on
    timeout. *)
val recv_timeout : 'a conn -> timeout:float -> 'a recv_result option

(** [close conn] closes the local endpoint; the peer observes [Closed]
    after the propagation delay. Idempotent. *)
val close : 'a conn -> unit

(** [is_open conn] is false once the local endpoint is closed or the peer's
    closure has been observed. *)
val is_open : 'a conn -> bool

val local_host : 'a conn -> int
val peer_host : 'a conn -> int
