lib/simnet/net.mli: Engine Simkern
