lib/simnet/net.ml: Engine Float Hashtbl Ivar List Mailbox Printf Proc Queue Simkern
