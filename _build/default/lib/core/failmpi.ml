module Lang = struct
  module Ast = Fail_lang.Ast
  module Parser = Fail_lang.Parser
  module Pp = Fail_lang.Pp
  module Sema = Fail_lang.Sema
  module Automaton = Fail_lang.Automaton
  module Compile = Fail_lang.Compile
  module Codegen = Fail_lang.Codegen
  module Paper_scenarios = Fail_lang.Paper_scenarios
  module Tool_comparison = Fail_lang.Tool_comparison
end

module Inject = struct
  module Control = Fci.Control
  module Runtime = Fci.Runtime
end

module Mpi = struct
  module Config = Mpivcl.Config
  module App = Mpivcl.App
  module Deploy = Mpivcl.Deploy
  module Dispatcher = Mpivcl.Dispatcher
  module Scheduler = Mpivcl.Scheduler
end

module Run = struct
  open Simkern

  type spec = {
    scenario : string option;
    params : (string * int) list;
    app : Mpivcl.App.t;
    state_bytes : int;
    n_compute : int;
    cfg : Mpivcl.Config.t;
    fci_config : Fci.Runtime.config;
    seed : int64;
    timeout : float;
  }

  let default_spec ~app ~cfg ~n_compute ~state_bytes =
    {
      scenario = None;
      params = [];
      app;
      state_bytes;
      n_compute;
      cfg;
      fci_config = Fci.Runtime.default_config;
      seed = 1L;
      timeout = 1500.0;
    }

  type outcome = Completed of float | Non_terminating | Buggy

  type result = {
    outcome : outcome;
    injected_faults : int;
    recoveries : int;
    committed_waves : int;
    confused : bool;
    checksums : (int * int) list;
    checksum_ok : bool option;
    trace : Trace.t;
  }

  let outcome_name = function
    | Completed _ -> "completed"
    | Non_terminating -> "non-terminating"
    | Buggy -> "buggy"

  let execute ?expected_checksum spec =
    let eng = Engine.create ~seed:spec.seed () in
    let fci =
      match spec.scenario with
      | None -> None
      | Some source -> (
          match Fail_lang.Compile.compile_source ~params:spec.params source with
          | Ok plan -> Some (Fci.Runtime.create eng ~config:spec.fci_config plan)
          | Error msg -> invalid_arg (Printf.sprintf "Run.execute: scenario error: %s" msg))
    in
    (* Capture each rank's final checksum after its last re-execution. *)
    let finals : (int, int) Hashtbl.t = Hashtbl.create 64 in
    let app =
      {
        spec.app with
        Mpivcl.App.main =
          (fun ctx ->
            spec.app.Mpivcl.App.main ctx;
            Hashtbl.replace finals ctx.Mpivcl.App.rank ctx.Mpivcl.App.state.(2));
      }
    in
    let handle =
      Mpivcl.Deploy.launch eng ?fci ~cfg:spec.cfg ~app ~state_bytes:spec.state_bytes
        ~n_compute:spec.n_compute ()
    in
    (* Stop the clock as soon as the application completes; otherwise run
       to quiescence (a freeze drains the event queue) or the experiment
       timeout, after which every component is killed and the run is
       classified (§5). *)
    ignore
      (Proc.spawn eng ~name:"experiment-watchdog" (fun () ->
           ignore (Mpivcl.Dispatcher.outcome handle.Mpivcl.Deploy.dispatcher);
           Engine.halt eng));
    let stop_reason = Engine.run ~until:spec.timeout eng in
    let dispatcher = handle.Mpivcl.Deploy.dispatcher in
    let completed =
      match Mpivcl.Dispatcher.peek_outcome dispatcher with
      | Some (Mpivcl.Dispatcher.Completed t) -> Some t
      | Some (Mpivcl.Dispatcher.Aborted _) | None -> None
    in
    let confused = Mpivcl.Dispatcher.confused dispatcher in
    let outcome =
      match completed with
      | Some t -> Completed t
      | None ->
          (* Trace analysis: a frozen run (no pending activity, or a
             corrupted dispatcher) is a bug; a run still making failure /
             recovery noise at the timeout is non-terminating. *)
          if confused || stop_reason = `Quiescent then Buggy else Non_terminating
    in
    Mpivcl.Deploy.teardown handle;
    Engine.halt eng;
    let checksums =
      Hashtbl.fold (fun rank v acc -> (rank, v) :: acc) finals []
      |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
    in
    let checksum_ok =
      match (completed, expected_checksum) with
      | Some _, Some expected ->
          Some
            (List.length checksums = spec.cfg.Mpivcl.Config.n_ranks
            && List.for_all (fun (_, v) -> v = expected) checksums)
      | _ -> None
    in
    {
      outcome;
      injected_faults =
        (match fci with Some rt -> Fci.Runtime.injected_faults rt | None -> 0);
      recoveries = Mpivcl.Dispatcher.recoveries dispatcher;
      committed_waves =
        (match handle.Mpivcl.Deploy.scheduler with
        | Some scheduler -> Mpivcl.Scheduler.committed_count scheduler
        | None -> 0);
      confused;
      checksums;
      checksum_ok;
      trace = Engine.trace eng;
    }
end
