lib/fail_lang/token.mli: Format Loc
