lib/fail_lang/pp.mli: Ast Format
