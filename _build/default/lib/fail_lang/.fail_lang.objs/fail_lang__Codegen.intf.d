lib/fail_lang/codegen.mli: Automaton Compile
