lib/fail_lang/lexer.ml: List Loc String Token
