lib/fail_lang/token.ml: Format Loc Printf
