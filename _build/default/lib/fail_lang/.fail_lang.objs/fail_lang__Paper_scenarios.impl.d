lib/fail_lang/paper_scenarios.ml: Printf
