lib/fail_lang/tool_comparison.mli:
