lib/fail_lang/loc.mli: Format
