lib/fail_lang/lexer.mli: Token
