lib/fail_lang/automaton.mli: Ast Format
