lib/fail_lang/pp.ml: Ast Format List String
