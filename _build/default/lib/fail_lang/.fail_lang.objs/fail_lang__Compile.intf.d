lib/fail_lang/compile.mli: Ast Automaton
