lib/fail_lang/sema.ml: Ast List Loc Map Option Set String
