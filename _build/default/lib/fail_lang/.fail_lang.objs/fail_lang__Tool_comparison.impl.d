lib/fail_lang/tool_comparison.ml: Buffer List Printf
