lib/fail_lang/parser.ml: Array Ast Lexer List Loc Token
