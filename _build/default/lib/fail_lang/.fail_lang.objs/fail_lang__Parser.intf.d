lib/fail_lang/parser.mli: Ast
