lib/fail_lang/sema.mli: Ast
