lib/fail_lang/ast.ml: List Loc Option String
