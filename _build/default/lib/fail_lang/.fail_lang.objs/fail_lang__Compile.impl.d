lib/fail_lang/compile.ml: Array Ast Automaton List Loc Map Option Parser Sema String
