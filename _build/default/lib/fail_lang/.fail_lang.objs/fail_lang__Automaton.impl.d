lib/fail_lang/automaton.ml: Array Ast Format List String
