lib/fail_lang/ast.mli: Loc
