lib/fail_lang/codegen.ml: Array Automaton Buffer Compile Format List Pp Printf String
