lib/fail_lang/loc.ml: Format
