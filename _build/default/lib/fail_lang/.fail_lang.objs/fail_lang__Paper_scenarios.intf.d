lib/fail_lang/paper_scenarios.mli:
