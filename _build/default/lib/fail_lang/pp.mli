(** Pretty-printer for FAIL programs.

    [Parser.parse (Format.asprintf "%a" Pp.pp_program p)] yields a program
    equal to [p] up to locations — the round-trip property checked by the
    test suite. *)

val pp_expr : Format.formatter -> Ast.expr -> unit
val pp_cond : Format.formatter -> Ast.cond -> unit
val pp_guard : Format.formatter -> Ast.guard -> unit
val pp_dest : Format.formatter -> Ast.dest -> unit
val pp_action : Format.formatter -> Ast.action -> unit
val pp_transition : Format.formatter -> Ast.transition -> unit
val pp_node : Format.formatter -> Ast.node -> unit
val pp_daemon : Format.formatter -> Ast.daemon -> unit
val pp_deployment : Format.formatter -> Ast.deployment -> unit
val pp_program : Format.formatter -> Ast.program -> unit

val program_to_string : Ast.program -> string
