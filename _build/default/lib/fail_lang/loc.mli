(** Source locations for FAIL programs. *)

type t = { line : int; col : int }

val dummy : t
val pp : Format.formatter -> t -> unit

(** Raised by the lexer, parser and semantic analysis on malformed input. *)
exception Error of t * string

(** [error loc fmt ...] raises {!Error} with a formatted message. *)
val error : t -> ('a, Format.formatter, unit, 'b) format4 -> 'a

(** [to_string e] renders an {!Error} payload as ["line L, col C: msg"]. *)
val error_to_string : t -> string -> string
