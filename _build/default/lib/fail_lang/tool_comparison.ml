type criterion =
  | High_expressiveness
  | High_level_language
  | Low_intrusion
  | Probabilistic_scenario
  | No_code_modification
  | Scalability
  | Global_state_injection

type tool = { tool_name : string; reference : string; supports : criterion -> bool }

let criteria =
  [
    High_expressiveness;
    High_level_language;
    Low_intrusion;
    Probabilistic_scenario;
    No_code_modification;
    Scalability;
    Global_state_injection;
  ]

let criterion_name = function
  | High_expressiveness -> "High Expressiveness"
  | High_level_language -> "High-level Language"
  | Low_intrusion -> "Low Intrusion"
  | Probabilistic_scenario -> "Probabilistic Scenario"
  | No_code_modification -> "No Code Modification"
  | Scalability -> "Scalability"
  | Global_state_injection -> "Global-state Injection"

let nftape =
  {
    tool_name = "NFTAPE";
    reference = "[Sa00]";
    supports =
      (function
      | High_expressiveness | Low_intrusion | Probabilistic_scenario
      | Global_state_injection ->
          true
      | High_level_language | No_code_modification | Scalability -> false);
  }

let loki =
  {
    tool_name = "LOKI";
    reference = "[CLCS00]";
    supports =
      (function
      | Low_intrusion | Scalability | Global_state_injection -> true
      | High_expressiveness | High_level_language | Probabilistic_scenario
      | No_code_modification ->
          false);
  }

let fail_fci =
  { tool_name = "FAIL-FCI"; reference = "[HT05]"; supports = (fun _ -> true) }

let tools = [ nftape; loki; fail_fci ]

let render () =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Printf.sprintf "%-26s" "Criteria");
  List.iter (fun t -> Buffer.add_string buf (Printf.sprintf "%-10s" t.tool_name)) tools;
  Buffer.add_char buf '\n';
  List.iter
    (fun c ->
      Buffer.add_string buf (Printf.sprintf "%-26s" (criterion_name c));
      List.iter
        (fun t ->
          Buffer.add_string buf (Printf.sprintf "%-10s" (if t.supports c then "yes" else "no")))
        tools;
      Buffer.add_char buf '\n')
    criteria;
  Buffer.contents buf
