type t = { line : int; col : int }

let dummy = { line = 0; col = 0 }

let pp ppf { line; col } = Format.fprintf ppf "line %d, col %d" line col

exception Error of t * string

let error loc fmt = Format.kasprintf (fun msg -> raise (Error (loc, msg))) fmt

let error_to_string loc msg = Format.asprintf "%a: %s" pp loc msg
