(** Back-ends for compiled scenarios.

    The original FCI compiler emitted C++ sources that were shipped to the
    target machines and compiled there. Our runtime interprets the
    automaton directly, so code generation is used for inspection: a
    human-readable dump and a Graphviz rendering of the state machines. *)

(** [dump plan] renders every automaton of the plan in the textual IR
    format of {!Automaton.pp}, plus the deployment table. *)
val dump : Compile.plan -> string

(** [to_dot automaton] renders one daemon as a Graphviz digraph; node
    labels carry always/timer declarations, edge labels the guards and
    actions. *)
val to_dot : Automaton.t -> string
