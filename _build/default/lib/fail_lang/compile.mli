(** Compiler from checked FAIL programs to automata and a deployment plan.

    The pipeline ([parse] → [Sema.check] → [compile]) is the OCaml
    counterpart of the FCI compiler, which turned FAIL scenarios into C++
    sources bundled with the FCI library. *)

type plan = {
  automata : (string * Automaton.t) list;  (** one per daemon, by name *)
  deployments : Ast.deployment list;
}

(** [compile_daemon d] compiles one daemon. [d] must have passed
    {!Sema.check}; violations raise {!Loc.Error}. *)
val compile_daemon : Ast.daemon -> Automaton.t

(** [compile_program p] compiles all daemons of a checked program. *)
val compile_program : Ast.program -> plan

(** [compile_source ?params src] runs the whole pipeline on FAIL source
    text. *)
val compile_source : ?params:(string * int) list -> string -> (plan, string) result

(** [automaton plan name] looks up a compiled daemon. *)
val automaton : plan -> string -> Automaton.t option
