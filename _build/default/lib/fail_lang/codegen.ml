let dump (plan : Compile.plan) =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (_, automaton) ->
      Buffer.add_string buf (Format.asprintf "%a@." Automaton.pp automaton))
    plan.Compile.automata;
  List.iter
    (fun dep -> Buffer.add_string buf (Format.asprintf "%a@." Pp.pp_deployment dep))
    plan.Compile.deployments;
  Buffer.contents buf

let escape s =
  String.concat ""
    (List.map
       (fun c -> match c with '"' -> "\\\"" | '\\' -> "\\\\" | c -> String.make 1 c)
       (List.init (String.length s) (String.get s)))

let to_dot (a : Automaton.t) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "digraph %s {\n  rankdir=LR;\n" (escape a.name));
  Array.iteri
    (fun i (node : Automaton.cnode) ->
      let decorations =
        (match node.timer with Some _ -> [ "timer" ] | None -> [])
        @ if node.always = [] then [] else [ "always" ]
      in
      let label =
        match decorations with
        | [] -> node.node_id
        | ds -> Printf.sprintf "%s\\n[%s]" node.node_id (String.concat "," ds)
      in
      Buffer.add_string buf
        (Printf.sprintf "  n%d [label=\"%s\"%s];\n" i (escape label)
           (if i = 0 then ", shape=doublecircle" else "")))
    a.nodes;
  Array.iteri
    (fun i (node : Automaton.cnode) ->
      List.iter
        (fun (tr : Automaton.ctransition) ->
          (* The last goto determines the destination; a transition
             without goto stays in place. *)
          let target =
            List.fold_left
              (fun acc action ->
                match action with Automaton.C_goto t -> Some t | _ -> acc)
              None tr.actions
          in
          let label =
            match tr.trigger with
            | Some t -> Format.asprintf "%a" Automaton.pp_trigger t
            | None -> "entry"
          in
          let dst = match target with Some t -> t | None -> i in
          Buffer.add_string buf
            (Printf.sprintf "  n%d -> n%d [label=\"%s\"];\n" i dst (escape label)))
        node.transitions)
    a.nodes;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
