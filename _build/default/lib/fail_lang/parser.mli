(** Recursive-descent parser for the FAIL language.

    Grammar (tokens in caps, [*]/[+]/[?] as usual):
    {v
    program    := (daemon | deployment)* EOF
    daemon     := 'Daemon' IDENT '{' var_decl* node+ '}'
    var_decl   := 'int' IDENT '=' expr ';'
    node       := 'node' node_id ':' item*
    node_id    := INT | IDENT
    item       := 'always' 'int' IDENT '=' expr ';'
                | 'time' IDENT '=' expr ';'
                | transition
    transition := guard '->' action (',' action)* ';'
    guard      := gatom ('&&' gatom)*
    gatom      := 'timer' | '?' IDENT | 'onload' | 'onexit' | 'onerror'
                | 'before' '(' IDENT ')' | 'after' '(' IDENT ')'
                | 'watch' '(' IDENT ')' | expr relop expr
    action     := 'goto' node_id | '!' IDENT '(' dest ')'
                | 'halt' | 'stop' | 'continue'
                | 'set' IDENT '=' expr | IDENT '=' expr
    dest       := 'FAIL_SENDER' | IDENT ('[' expr ']')?
    deployment := IDENT ('[' INT ']')? ':' IDENT 'on'
                  ('machine' INT | 'machines' INT '..' INT) ';'
    expr       := arithmetic over INT, IDENT, '@' IDENT,
                  'FAIL_RANDOM' '(' expr ',' expr ')', parentheses
    v}

    At most one trigger atom is allowed per guard. A bare [IDENT]
    destination parses as {!Ast.D_instance}; {!Sema} reclassifies it to
    {!Ast.D_group} when the name is deployed as a group. *)

(** [parse src] parses a full program. Raises {!Loc.Error}. *)
val parse : string -> Ast.program

(** [parse_result src] is [parse] with errors as a result. *)
val parse_result : string -> (Ast.program, string) result

(** [parse_expr src] parses a single expression (for tests and the CLI). *)
val parse_expr : string -> Ast.expr
