(** The fault-injection tool comparison of §2.1 (the paper's only table).

    The table compares NFTAPE, LOKI and FAIL-FCI on seven criteria. The
    bench harness re-prints it; keeping it as data makes the claim set
    testable (e.g. FAIL-FCI satisfies every criterion). *)

type criterion =
  | High_expressiveness
  | High_level_language
  | Low_intrusion
  | Probabilistic_scenario
  | No_code_modification
  | Scalability
  | Global_state_injection

type tool = { tool_name : string; reference : string; supports : criterion -> bool }

val criteria : criterion list
val criterion_name : criterion -> string

val nftape : tool
val loki : tool
val fail_fci : tool
val tools : tool list

(** [render ()] prints the table in the paper's layout. *)
val render : unit -> string
