(** Semantic analysis for FAIL programs.

    [check ?params program] validates a parsed program and returns it in
    resolved form:
    - scenario parameters (the paper's [X], [N]) are substituted as integer
      constants; an unbound identifier in an expression is an error;
    - bare send destinations are reclassified: a name deployed as a group
      becomes {!Ast.D_group} (broadcast);
    - structural checks: unique daemon/instance names, unique node ids,
      resolvable [goto] targets, [timer] guards only in nodes that declare
      a timer, [FAIL_SENDER] only in [?msg]-triggered transitions, no
      variable shadowing, deployment arities and machine ranges.

    Destination names are checked against deployments only when the
    program declares deployments (a bare daemon library is fine). *)

(** [check ?params p] returns the resolved program. Raises {!Loc.Error}. *)
val check : ?params:(string * int) list -> Ast.program -> Ast.program

(** [check_result ?params p] is [check] with errors as a result. *)
val check_result : ?params:(string * int) list -> Ast.program -> (Ast.program, string) result
