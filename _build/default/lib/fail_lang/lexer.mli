(** Hand-written lexer for the FAIL language.

    Comments: [// ... end-of-line] and [/* ... */] (nesting not
    supported). Keywords are case-sensitive except [Daemon]/[daemon],
    both accepted because the paper capitalises it. *)

(** [tokenize src] returns the token stream, ending with [EOF]. Raises
    {!Loc.Error} on an illegal character or unterminated comment. *)
val tokenize : string -> Token.located list
