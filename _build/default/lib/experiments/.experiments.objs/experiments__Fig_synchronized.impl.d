lib/experiments/fig_synchronized.ml: Fail_lang Harness List Printf Workload
