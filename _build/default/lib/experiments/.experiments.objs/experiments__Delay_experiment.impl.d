lib/experiments/delay_experiment.ml: Harness List Printf Workload
