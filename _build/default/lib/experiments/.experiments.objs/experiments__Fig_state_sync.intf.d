lib/experiments/fig_state_sync.mli: Harness Workload
