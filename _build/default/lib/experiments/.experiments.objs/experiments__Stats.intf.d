lib/experiments/stats.mli:
