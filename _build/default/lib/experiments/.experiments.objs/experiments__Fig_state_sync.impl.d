lib/experiments/fig_state_sync.ml: Fail_lang Harness List Printf Workload
