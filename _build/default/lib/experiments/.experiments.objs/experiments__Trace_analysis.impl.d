lib/experiments/trace_analysis.ml: Buffer Float Format List Option Printf Simkern String Trace
