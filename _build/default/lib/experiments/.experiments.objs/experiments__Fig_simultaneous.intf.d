lib/experiments/fig_simultaneous.mli: Harness Workload
