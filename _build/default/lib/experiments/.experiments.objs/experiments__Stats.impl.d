lib/experiments/stats.ml: Float List Option
