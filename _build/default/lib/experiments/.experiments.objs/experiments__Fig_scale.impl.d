lib/experiments/fig_scale.ml: Fail_lang Harness List Printf Workload
