lib/experiments/delay_experiment.mli: Harness Workload
