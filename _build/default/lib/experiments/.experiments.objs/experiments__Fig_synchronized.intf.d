lib/experiments/fig_synchronized.mli: Harness Workload
