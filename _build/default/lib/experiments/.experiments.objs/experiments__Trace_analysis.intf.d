lib/experiments/trace_analysis.mli: Format Simkern Trace
