lib/experiments/fig_simultaneous.ml: Fail_lang Harness List Printf Workload
