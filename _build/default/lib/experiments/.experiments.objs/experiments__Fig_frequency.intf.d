lib/experiments/fig_frequency.mli: Harness Workload
