lib/experiments/ablations.ml: Fail_lang Harness List Mpivcl Printf Workload
