lib/experiments/harness.mli: Failmpi Mpivcl Workload
