lib/experiments/fig_frequency.ml: Fail_lang Harness List Option Printf Workload
