lib/experiments/fig_scale.mli: Harness Workload
