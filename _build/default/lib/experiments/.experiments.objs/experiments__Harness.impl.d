lib/experiments/harness.ml: Buffer Failmpi Int64 List Mpivcl Printf Stats String Workload
