let mean = function
  | [] -> None
  | xs -> Some (List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs))

let stddev = function
  | [] | [ _ ] -> None
  | xs ->
      let m = Option.get (mean xs) in
      let var =
        List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs
        /. float_of_int (List.length xs - 1)
      in
      Some (sqrt var)

let percent ~total n = if total = 0 then 0.0 else 100.0 *. float_of_int n /. float_of_int total

let quantile q xs =
  match List.sort Float.compare xs with
  | [] -> None
  | sorted ->
      let n = List.length sorted in
      let pos = q *. float_of_int (n - 1) in
      let lo = int_of_float (Float.floor pos) and hi = int_of_float (Float.ceil pos) in
      let a = List.nth sorted lo and b = List.nth sorted hi in
      Some (a +. ((b -. a) *. (pos -. Float.of_int lo)))
