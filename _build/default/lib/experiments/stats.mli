(** Small statistics helpers for experiment aggregation. *)

val mean : float list -> float option
val stddev : float list -> float option

(** [percent ~total n] is [100 * n / total] (0 if [total = 0]). *)
val percent : total:int -> int -> float

(** [quantile q xs] (0 <= q <= 1) by linear interpolation. *)
val quantile : float -> float list -> float option
