(** Process-control interface between a FAIL-MPI daemon and a process of
    the application under test.

    In the original tool the FCI daemon drives the target through a
    debugger (GDB): kill, SIGSTOP/SIGCONT, breakpoints, and — as the
    paper's planned feature — reading and writing program variables. Here
    the application registers a {!target} whose callbacks implement the
    same control surface on simulated processes. *)

open Simkern

type target = {
  target_name : string;  (** e.g. ["vdaemon-rank3"] *)
  proc : Proc.t;  (** main process; its exit drives [onexit]/[onerror] *)
  kill : unit -> unit;  (** crash injection ([halt] action) *)
  freeze : unit -> unit;  (** [stop] action *)
  unfreeze : unit -> unit;  (** [continue] action *)
  read_var : string -> int option;  (** planned feature: read a program variable *)
  write_var : string -> int -> bool;  (** planned feature: write one; false if unknown *)
  subscribe_var : (string -> unit) -> unit;  (** notify on every variable write *)
}

(** [of_proc p] builds a target controlling just [p], with no program
    variables (reads yield [None]). Used by the attach-by-pid path. *)
val of_proc : Proc.t -> target

(** [of_procs ~name ~main others] builds a target whose [kill] also kills
    [others] (the paper kills the whole MPI task: computation process and
    communication daemon). [freeze]/[unfreeze] apply to all. *)
val of_procs : name:string -> main:Proc.t -> Proc.t list -> target

(** {2 Program variables}

    A mutable integer table the application exposes to the injector,
    implementing the conclusion's planned feature. *)

type vars

val make_vars : unit -> vars

(** [set_var vars name v] writes a variable, notifying subscribers. *)
val set_var : vars -> string -> int -> unit

val get_var : vars -> string -> int option

(** [with_vars target vars] returns a copy of [target] whose variable
    operations are backed by [vars]. *)
val with_vars : target -> vars -> target
