open Simkern

type target = {
  target_name : string;
  proc : Proc.t;
  kill : unit -> unit;
  freeze : unit -> unit;
  unfreeze : unit -> unit;
  read_var : string -> int option;
  write_var : string -> int -> bool;
  subscribe_var : (string -> unit) -> unit;
}

let of_procs ~name ~main others =
  let all = main :: others in
  {
    target_name = name;
    proc = main;
    kill = (fun () -> List.iter Proc.kill all);
    freeze = (fun () -> List.iter Proc.freeze all);
    unfreeze = (fun () -> List.iter Proc.unfreeze all);
    read_var = (fun _ -> None);
    write_var = (fun _ _ -> false);
    subscribe_var = (fun _ -> ());
  }

let of_proc p = of_procs ~name:(Proc.name p) ~main:p []

type vars = {
  table : (string, int) Hashtbl.t;
  mutable subscribers : (string -> unit) list;
}

let make_vars () = { table = Hashtbl.create 8; subscribers = [] }

let set_var vars name v =
  Hashtbl.replace vars.table name v;
  List.iter (fun f -> f name) vars.subscribers

let get_var vars name = Hashtbl.find_opt vars.table name

let with_vars target vars =
  {
    target with
    read_var = get_var vars;
    write_var =
      (fun name v ->
        set_var vars name v;
        true);
    subscribe_var = (fun f -> vars.subscribers <- f :: vars.subscribers);
  }
