lib/fci/runtime.mli: Control Engine Fail_lang Proc Simkern
