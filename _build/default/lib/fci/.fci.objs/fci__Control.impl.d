lib/fci/control.ml: Hashtbl List Proc Simkern
