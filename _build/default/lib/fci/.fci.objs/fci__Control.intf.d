lib/fci/control.mli: Proc Simkern
