lib/fci/runtime.ml: Array Ast Automaton Compile Control Engine Fail_lang Float Fun Hashtbl List Printf Proc Rng Simkern String
