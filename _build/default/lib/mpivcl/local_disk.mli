(** Host-local checkpoint files.

    Each daemon writes its local checkpoint to the host's disk at the cut;
    on restart, "MPI processes restart from the local checkpoint stored on
    the disk if it exists, otherwise they obtain it from the checkpoint
    server" (§3). Keyed by (host, rank); only the two most recent waves
    are kept, matching the servers' two-file alternation. *)

type t

val create : unit -> t

(** [store t ~host image] writes the image on the host's disk. *)
val store : t -> host:int -> Message.image -> unit

(** [lookup t ~host ~rank ~wave] finds the image for exactly this wave. *)
val lookup : t -> host:int -> rank:int -> wave:int -> Message.image option

(** [newest_wave t ~host ~rank] reports the newest locally stored wave. *)
val newest_wave : t -> host:int -> rank:int -> int option
