(** Application programming interface (the MPI-like layer).

    An application is an SPMD program: [main ctx] runs in the computation
    process of every rank, talking to its communication daemon exactly as
    an MPI process talks to its Vdaemon over the local Unix socket.

    Contract required by the rollback-recovery protocol:
    - {b determinism}: re-executing [main] from a committed state with the
      same received values reproduces the same sends and receives;
    - {b unique tags}: each [(src, dst, tag)] triple is sent at most once
      per execution (encode the iteration number in the tag);
    - {b state commits}: all state that must survive a rollback lives in
      [ctx.state]; call [commit] at consistent points (typically the end
      of an iteration). On restart, [main] runs again with [ctx.state]
      restored to the last commit and must fast-forward accordingly. *)

type ctx = {
  rank : int;
  size : int;
  state : int array;  (** restored to the last committed snapshot on restart *)
  send : dst:int -> tag:int -> ?bytes:int -> int -> unit;  (** eager, non-blocking *)
  recv : src:int -> tag:int -> int;  (** blocks until the matching message *)
  commit : unit -> unit;  (** commit [state]; clears the redelivery log *)
  finalize : unit -> unit;  (** MPI_Finalize: signal completion, then return *)
  set_app_var : string -> int -> unit;
      (** expose a named variable to the fault injector (FAIL's planned
          read/write feature) *)
  noise : int -> float;
      (** [noise k] is a uniform value in [\[-1, 1\]] that is a pure
          function of the experiment seed, the rank incarnation and [k] —
          OS-level service-time jitter for compute phases. Using it for
          sleep durations keeps the computation deterministic. *)
}

type t = {
  app_name : string;
  state_size : int;  (** ints in [ctx.state] *)
  main : ctx -> unit;
}

(** {2 Collectives built on the point-to-point layer} *)

(** [allreduce_sum ctx ~tag_base v] sums [v] across ranks (flat gather to
    rank 0 + broadcast; [tag_base .. tag_base + 2*size) must be unused). *)
val allreduce_sum : ctx -> tag_base:int -> int -> int

(** [barrier ctx ~tag_base] synchronises all ranks. *)
val barrier : ctx -> tag_base:int -> unit
