type ctx = {
  rank : int;
  size : int;
  state : int array;
  send : dst:int -> tag:int -> ?bytes:int -> int -> unit;
  recv : src:int -> tag:int -> int;
  commit : unit -> unit;
  finalize : unit -> unit;
  set_app_var : string -> int -> unit;
  noise : int -> float;
}

type t = { app_name : string; state_size : int; main : ctx -> unit }

let allreduce_sum ctx ~tag_base v =
  if ctx.size = 1 then v
  else if ctx.rank = 0 then begin
    let total = ref v in
    for src = 1 to ctx.size - 1 do
      total := !total + ctx.recv ~src ~tag:(tag_base + src)
    done;
    for dst = 1 to ctx.size - 1 do
      ctx.send ~dst ~tag:(tag_base + ctx.size + dst) !total
    done;
    !total
  end
  else begin
    ctx.send ~dst:0 ~tag:(tag_base + ctx.rank) v;
    ctx.recv ~src:0 ~tag:(tag_base + ctx.size + ctx.rank)
  end

let barrier ctx ~tag_base = ignore (allreduce_sum ctx ~tag_base 0)
