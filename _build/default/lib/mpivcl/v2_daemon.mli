(** Communication daemon for the MPICH-V2-style protocol: pessimistic
    sender-based message logging with uncoordinated checkpointing.

    Differences from the Chandy–Lamport Vdaemon (§3's Vcl):
    - every outgoing application message is logged in the sender's memory
      under a per-destination sequence number; the log is part of the
      sender's checkpoint image, so concurrent failures cannot lose it;
    - each rank checkpoints {e independently} on its own timer — no
      markers, no waves, no global coordination;
    - after a rank checkpoints, it broadcasts its per-sender reception
      bounds and senders garbage-collect their logs;
    - on a failure, {e only the failed rank} restarts: it reloads its own
      committed image, reconnects to every live peer and asks each to
      resend the logged messages above its restored reception bounds;
      re-executed duplicate sends are dropped at the receivers.

    The paper's conclusion motivates exactly this comparison: FAIL-MPI
    makes it possible to "evaluate many different implementations at
    large scales and compare them fairly under the same failure
    scenarios" — see {!Experiments.Ablations}. *)

open Simkern

val spawn : Env.t -> rank:int -> host:int -> incarnation:int -> Proc.t
