(** Assembles a full MPICH-Vcl run: cluster layout, checkpoint servers,
    scheduler, dispatcher.

    Host numbering convention (shared with the FAIL scenarios of
    {!Fail_lang.Paper_scenarios}): compute hosts are [0 .. n_compute-1]
    (MPI ranks start on [0 .. n_ranks-1], the rest are spares), the FAIL
    coordinator machine is [n_compute], and service hosts (dispatcher,
    scheduler, checkpoint servers) come after — they are never subject to
    fault injection, as in the paper. *)

open Simkern
open Simos

type layout = {
  n_compute : int;
  coordinator_host : int;  (** P1's machine *)
  dispatcher_host : int;
  scheduler_host : int;
  server_hosts : int list;
  total_hosts : int;
}

(** [layout ~n_compute ~n_servers] computes the host map. *)
val make_layout : n_compute:int -> n_servers:int -> layout

type handle = {
  env : Env.t;
  lay : layout;
  dispatcher : Dispatcher.t;
  scheduler : Scheduler.t option;  (** absent for [Sender_logging] *)
  servers : Ckpt_server.t list;
}

(** [launch engine ?fci ~cfg ~app ~state_bytes ~n_compute ()] creates the
    cluster and network, starts the services and the dispatcher (which
    launches the ranks). Returns immediately; progress happens as the
    engine runs. *)
val launch :
  Engine.t ->
  ?fci:Fci.Runtime.t ->
  cfg:Config.t ->
  app:App.t ->
  state_bytes:int ->
  n_compute:int ->
  unit ->
  handle

(** [cluster h] / [net h] expose the substrate for tests. *)
val cluster : handle -> Cluster.t

val net : handle -> Message.t Simnet.Net.t

(** [teardown h] kills every infrastructure and compute task (experiment
    timeout). *)
val teardown : handle -> unit
