(** Checkpoint server.

    Collects local checkpoints from its assigned ranks, keeps exactly one
    complete committed global checkpoint (two storage slots used
    alternately: current-in-progress and last-complete, §3), and serves
    images back on restart. Transfers are serialized through the server —
    a store or fetch occupies it for [bytes / bandwidth] seconds, which is
    what makes checkpoint/recovery slower when images are bigger (the
    paper's 25-node anomaly in §5.2). *)

open Simkern
open Simos

type t

(** [spawn engine cluster net ~host ~bandwidth ?jitter ()] starts a
    server listening on [Config.server_port] at [host]; each transfer's
    service time gets a relative uniform jitter of amplitude [jitter]
    (default 0). *)
val spawn :
  Engine.t ->
  Cluster.t ->
  Message.t Simnet.Net.t ->
  host:int ->
  bandwidth:float ->
  ?jitter:float ->
  unit ->
  t

(** [committed_wave t ~rank] is the wave of the committed image held for
    [rank], if any (tests/analysis). *)
val committed_wave : t -> rank:int -> int option

(** [committed t ~rank] returns the committed image (tests/analysis). *)
val committed : t -> rank:int -> Message.image option

(** [halt t] kills the server process (used at experiment teardown). *)
val halt : t -> unit
