type t = (int * int, Message.image list) Hashtbl.t
(* (host, rank) -> images, newest first, at most two *)

let create () = Hashtbl.create 64

let store t ~host (image : Message.image) =
  let key = (host, image.Message.img_rank) in
  let existing = Option.value ~default:[] (Hashtbl.find_opt t key) in
  let keep =
    List.filter (fun (i : Message.image) -> i.Message.img_wave <> image.Message.img_wave) existing
  in
  let trimmed = match keep with a :: _ -> [ a ] | [] -> [] in
  Hashtbl.replace t key (image :: trimmed)

let lookup t ~host ~rank ~wave =
  match Hashtbl.find_opt t (host, rank) with
  | None -> None
  | Some images -> List.find_opt (fun (i : Message.image) -> i.Message.img_wave = wave) images

let newest_wave t ~host ~rank =
  match Hashtbl.find_opt t (host, rank) with
  | None | Some [] -> None
  | Some (newest :: _) -> Some newest.Message.img_wave
