(** Communication daemon (Vdaemon) of one MPI rank.

    A mono-process event loop multiplexing, as in §3: one connection per
    peer daemon, one to the dispatcher, one to the checkpoint scheduler,
    one to its checkpoint server, and the local channel to the
    computation process. Implements the non-blocking Chandy–Lamport
    V-protocol (Vcl): on the first marker of a wave it snapshots the
    computation state without interrupting it, forwards markers on every
    channel, logs in-transit messages until each channel's marker arrives,
    streams the image to the checkpoint server, and acknowledges the wave
    to the scheduler. On restart it reloads the last committed image
    (local disk if present, server otherwise) and replays logged
    messages.

    Startup follows the paper's integration scheme: the daemon registers
    with the FAIL-MPI daemon of its machine at spawn ([onload]), exchanges
    initial arguments with the dispatcher, then crosses the
    [localMPI_setCommand] breakpoint — the exact injection point of
    Figure 10. *)

open Simkern

(** [spawn env ~rank ~host ~incarnation] starts the daemon; it launches
    the computation process itself once the dispatcher broadcasts
    [Start]. Returns the daemon process. *)
val spawn : Env.t -> rank:int -> host:int -> incarnation:int -> Proc.t
