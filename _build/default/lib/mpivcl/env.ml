open Simkern
open Simos

type t = {
  eng : Engine.t;
  cluster : Cluster.t;
  net : Message.t Simnet.Net.t;
  fci : Fci.Runtime.t option;
  cfg : Config.t;
  disk : Local_disk.t;
  app : App.t;
  state_bytes : int;
  dispatcher_host : int;
  scheduler_host : int;
  server_hosts : int array;
  rng : Rng.t;
}

let server_for t ~rank = t.server_hosts.(rank mod Array.length t.server_hosts)
