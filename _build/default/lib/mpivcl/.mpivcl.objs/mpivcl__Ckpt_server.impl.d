lib/mpivcl/ckpt_server.ml: Cluster Config Engine Float Format Fun Hashtbl Mailbox Message Option Printf Proc Rng Simkern Simnet Simos
