lib/mpivcl/env.mli: App Cluster Config Engine Fci Local_disk Message Rng Simkern Simnet Simos
