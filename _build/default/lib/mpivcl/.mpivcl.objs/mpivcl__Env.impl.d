lib/mpivcl/env.ml: App Array Cluster Config Engine Fci Local_disk Message Rng Simkern Simnet Simos
