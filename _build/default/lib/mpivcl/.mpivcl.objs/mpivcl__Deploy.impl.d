lib/mpivcl/deploy.ml: Array Ckpt_server Cluster Config Dispatcher Engine Env Fun List Local_disk Rng Scheduler Simkern Simnet Simos
