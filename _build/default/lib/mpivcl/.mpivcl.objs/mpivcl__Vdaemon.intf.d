lib/mpivcl/vdaemon.mli: Env Proc Simkern
