lib/mpivcl/scheduler.mli: Cluster Engine Message Simkern Simnet Simos
