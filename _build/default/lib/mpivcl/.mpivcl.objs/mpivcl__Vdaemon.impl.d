lib/mpivcl/vdaemon.ml: App Array Cluster Config Engine Env Fci Format Fun Hashtbl Int Int64 Ivar List Local_disk Mailbox Message Option Printf Proc Rng Set Simkern Simnet Simos
