lib/mpivcl/scheduler.ml: Cluster Config Engine Float Format Fun Hashtbl List Mailbox Message Proc Simkern Simnet Simos
