lib/mpivcl/dispatcher.mli: Env
