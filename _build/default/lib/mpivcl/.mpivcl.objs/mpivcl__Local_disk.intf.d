lib/mpivcl/local_disk.mli: Message
