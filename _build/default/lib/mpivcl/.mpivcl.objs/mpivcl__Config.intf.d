lib/mpivcl/config.mli:
