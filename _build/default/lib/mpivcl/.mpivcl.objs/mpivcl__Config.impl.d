lib/mpivcl/config.ml:
