lib/mpivcl/local_disk.ml: Hashtbl List Message Option
