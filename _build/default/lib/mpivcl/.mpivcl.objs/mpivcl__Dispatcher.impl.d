lib/mpivcl/dispatcher.ml: Array Cluster Config Engine Env Format Fun Ivar List Mailbox Message Printf Proc Simkern Simnet Simos V2_daemon Vdaemon
