lib/mpivcl/app.ml:
