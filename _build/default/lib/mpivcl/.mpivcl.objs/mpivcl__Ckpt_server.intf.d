lib/mpivcl/ckpt_server.mli: Cluster Engine Message Simkern Simnet Simos
