lib/mpivcl/message.ml: Format List Printf
