lib/mpivcl/message.mli: Format
