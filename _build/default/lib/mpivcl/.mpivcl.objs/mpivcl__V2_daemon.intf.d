lib/mpivcl/v2_daemon.mli: Env Proc Simkern
