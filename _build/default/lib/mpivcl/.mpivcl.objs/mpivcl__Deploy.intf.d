lib/mpivcl/deploy.mli: App Ckpt_server Cluster Config Dispatcher Engine Env Fci Message Scheduler Simkern Simnet Simos
