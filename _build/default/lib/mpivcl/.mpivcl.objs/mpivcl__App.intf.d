lib/mpivcl/app.mli:
