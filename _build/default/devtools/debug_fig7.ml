let () =
  let n_ranks = 49 and n_machines = 53 in
  let klass = Workload.Bt_model.B in
  let app = Workload.Bt_model.app klass ~n_ranks in
  let cfg = Mpivcl.Config.default ~n_ranks in
  let state_bytes = Workload.Bt_model.state_bytes klass ~n_ranks in
  let scenario = Fail_lang.Paper_scenarios.simultaneous ~n_machines ~period:50 ~count:5 in
  let spec =
    {
      (Failmpi.Run.default_spec ~app ~cfg ~n_compute:n_machines ~state_bytes) with
      Failmpi.Run.scenario = Some scenario;
      seed = 1L;
    }
  in
  let r = Failmpi.Run.execute spec in
  Printf.printf "outcome=%s\n" (Failmpi.Run.outcome_name r.Failmpi.Run.outcome);
  let entries = Simkern.Trace.entries r.Failmpi.Run.trace in
  (* find the time of dispatcher-confused, print surrounding dispatcher/fci halt events *)
  let tconf =
    List.find_map
      (fun e -> if e.Simkern.Trace.event = "dispatcher-confused" then Some e.Simkern.Trace.time else None)
      entries
  in
  match tconf with
  | None -> print_endline "no confusion"
  | Some tc ->
      Printf.printf "confused at %.3f\n" tc;
      List.iter
        (fun e ->
          let open Simkern.Trace in
          if e.time >= tc -. 8.0 && e.time <= tc +. 0.2 then
            if
              List.mem e.event
                [ "halt"; "failure-detected"; "recovery-start"; "old-wave-stopped"; "launch";
                  "rank-registered"; "dispatcher-confused"; "spawn-failed"; "new-wave-failure";
                  "recovery-complete"; "send"; "recv" ]
              && (String.length e.source < 4 || String.sub e.source 0 4 <> "fci:" || e.event = "halt")
            then Format.printf "%a@." pp_entry e)
        entries
