let () =
  print_string
    (Experiments.Ablations.render_protocol_comparison
       (Experiments.Ablations.protocol_comparison ~reps:4 ~n_ranks:49 ()))
