let () =
  let n_ranks = 49 in
  let n_machines = Experiments.Harness.machines_for n_ranks in
  let cfg =
    { (Mpivcl.Config.default ~n_ranks) with Mpivcl.Config.protocol = Mpivcl.Config.Sender_logging }
  in
  let scenario = Some (Fail_lang.Paper_scenarios.frequency ~n_machines ~period:65) in
  let r =
    Experiments.Harness.run_bt ~cfg ~klass:Workload.Bt_model.B ~n_ranks ~n_machines ~scenario
      ~seed:1100L ()
  in
  ignore r;
  List.iter
    (fun e ->
      let open Simkern.Trace in
      if e.time >= 131.0 && e.time <= 145.0 && e.source = "v2daemon-37" then
        Format.printf "%a@." pp_entry e)
    (Simkern.Trace.entries r.Failmpi.Run.trace)
