(* Estimate P(buggy) for fig7 X=5 and fig9/fig11 over many seeds. *)
let () =
  let n_ranks = 49 in
  let n_machines = 53 in
  let count_buggy label scenario seeds =
    let buggy = ref 0 in
    List.iter
      (fun seed ->
        let r =
          Experiments.Harness.run_bt ~klass:Workload.Bt_model.B ~n_ranks ~n_machines
            ~scenario:(Some scenario) ~seed ()
        in
        if r.Failmpi.Run.outcome = Failmpi.Run.Buggy then incr buggy)
      seeds;
    Printf.printf "%-12s buggy %d/%d\n%!" label !buggy (List.length seeds)
  in
  let seeds = List.init 18 (fun i -> Int64.of_int (1000 + i)) in
  count_buggy "fig7 x5" (Fail_lang.Paper_scenarios.simultaneous ~n_machines ~period:50 ~count:5) seeds;
  count_buggy "fig7 x4" (Fail_lang.Paper_scenarios.simultaneous ~n_machines ~period:50 ~count:4) seeds;
  count_buggy "fig9" (Fail_lang.Paper_scenarios.synchronized ~n_machines ~period:50) seeds;
  count_buggy "fig11" (Fail_lang.Paper_scenarios.state_synchronized ~n_machines ~period:50) seeds
