devtools/smoke_fig5.ml: Fail_lang Failmpi List Mpivcl Printf Unix Workload
