devtools/debug_v2c.ml: Experiments Fail_lang Failmpi Format List Mpivcl Simkern Workload
