devtools/smoke_sync.ml: Fail_lang Failmpi List Mpivcl Printf Unix Workload
