devtools/probe_v2.ml: Experiments
