devtools/probe_fig6.ml: Experiments Fail_lang Failmpi Format List Printf Simkern Workload
