devtools/smoke_fig5.mli:
