devtools/debug_seq.mli:
