devtools/debug_fig7.ml: Fail_lang Failmpi Format List Mpivcl Printf Simkern String Workload
