devtools/debug_v2c.mli:
