devtools/debug_fig7.mli:
