devtools/debug_v2b.ml: Array Engine Experiments Fail_lang Fci Mpivcl Printf Simkern Workload
