devtools/probe_fig7.mli:
