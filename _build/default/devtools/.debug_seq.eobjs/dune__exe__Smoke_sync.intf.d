devtools/smoke_sync.mli:
