devtools/probe_fig7.ml: Experiments Fail_lang Failmpi Int64 List Printf Workload
