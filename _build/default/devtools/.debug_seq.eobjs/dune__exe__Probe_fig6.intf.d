devtools/probe_fig6.mli:
