devtools/probe_v2.mli:
