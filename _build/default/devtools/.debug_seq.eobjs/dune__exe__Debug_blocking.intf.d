devtools/debug_blocking.mli:
