devtools/debug_v2.ml: Experiments Fail_lang Failmpi Format List Mpivcl Printf Simkern Workload
