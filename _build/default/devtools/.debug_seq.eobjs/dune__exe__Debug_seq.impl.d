devtools/debug_seq.ml: Config Deploy Dispatcher Engine Format List Mpivcl Printf Proc Simkern Simos Trace Workload
