devtools/debug_v2.mli:
