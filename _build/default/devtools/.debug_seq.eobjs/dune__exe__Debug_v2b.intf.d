devtools/debug_v2b.mli:
