open Simkern

let () =
  let n_ranks = 49 in
  let n_machines = Experiments.Harness.machines_for n_ranks in
  let cfg =
    { (Mpivcl.Config.default ~n_ranks) with Mpivcl.Config.protocol = Mpivcl.Config.Sender_logging }
  in
  let eng = Engine.create ~seed:1100L () in
  let fci =
    match
      Fail_lang.Compile.compile_source
        (Fail_lang.Paper_scenarios.frequency ~n_machines ~period:65)
    with
    | Ok plan -> Fci.Runtime.create eng plan
    | Error m -> failwith m
  in
  let base = Workload.Bt_model.app Workload.Bt_model.B ~n_ranks in
  let app =
    {
      base with
      Mpivcl.App.main =
        (fun ctx ->
          if ctx.Mpivcl.App.rank = 0 then
            Engine.record eng ~source:"probe" ~event:"rank0-main"
              (Printf.sprintf "start at iter %d t=%.1f" ctx.Mpivcl.App.state.(0)
                 (Engine.now eng));
          base.Mpivcl.App.main ctx);
    }
  in
  let handle =
    Mpivcl.Deploy.launch eng ~fci ~cfg ~app
      ~state_bytes:(Workload.Bt_model.state_bytes Workload.Bt_model.B ~n_ranks)
      ~n_compute:n_machines ()
  in
  (* Sample rank 0's exported iteration over time. *)
  let rec sample t =
    if t < 700.0 then
      Engine.schedule eng ~delay:25.0 (fun () ->
          (match Fci.Runtime.find_instance fci "G1[0]" with
          | Some inst -> (
              match Fci.Runtime.controlled inst with
              | Some ctl ->
                  Printf.printf "t=%6.1f rank0 iter=%s\n"
                    (Engine.now eng)
                    (match ctl.Fci.Control.read_var "iteration" with
                    | Some i -> string_of_int i
                    | None -> "?")
              | None -> Printf.printf "t=%6.1f rank0 no-ctl\n" (Engine.now eng))
          | None -> ());
          sample (t +. 25.0))
      |> ignore
  in
  sample 0.0;
  ignore (Engine.run ~until:700.0 eng);
  ignore handle
