open Simkern

type config = {
  latency : float;
  bandwidth : float;
  local_latency : float;
  local_bandwidth : float;
}

let default_config =
  { latency = 1e-4; bandwidth = 1e8; local_latency = 5e-6; local_bandwidth = 1e9 }

type 'a recv_result = Data of 'a | Closed

type 'a t = {
  eng : Engine.t;
  cfg : config;
  listeners : (int * int, 'a listener) Hashtbl.t;
}

and 'a listener = {
  l_net : 'a t;
  l_host : int;
  l_port : int;
  l_pending : 'a conn option Mailbox.t;
  mutable l_open : bool;
}

and 'a conn = {
  c_net : 'a t;
  c_local_host : int;
  c_peer_host : int;
  c_inbox : 'a recv_result Queue.t;
  mutable c_waiters : ('a recv_result -> bool) list;  (* oldest first *)
  mutable c_closed_local : bool;
  mutable c_closed_remote : bool;
  mutable c_tx_free_at : float;
  mutable c_peer : 'a conn option;
  mutable c_owner_hooked : bool;
}

let create eng ?(config = default_config) () =
  { eng; cfg = config; listeners = Hashtbl.create 64 }

let engine net = net.eng
let config net = net.cfg

let link_params net ~src ~dst =
  if src = dst then (net.cfg.local_latency, net.cfg.local_bandwidth)
  else (net.cfg.latency, net.cfg.bandwidth)

let listen net ~host ~port =
  if Hashtbl.mem net.listeners (host, port) then
    invalid_arg (Printf.sprintf "Net.listen: %d:%d already bound" host port);
  let l =
    { l_net = net; l_host = host; l_port = port; l_pending = Mailbox.create (); l_open = true }
  in
  Hashtbl.replace net.listeners (host, port) l;
  l

let close_listener l =
  if l.l_open then begin
    l.l_open <- false;
    Hashtbl.remove l.l_net.listeners (l.l_host, l.l_port);
    (* Wake a blocked acceptor, if any. *)
    Mailbox.send l.l_pending None
  end

(* Deliver an item at the receiving endpoint. Runs as an engine event at
   the arrival time. *)
let arrive conn item =
  if not conn.c_closed_remote then begin
    match item with
    | Closed ->
        conn.c_closed_remote <- true;
        let waiters = conn.c_waiters in
        conn.c_waiters <- [];
        List.iter (fun waker -> ignore (waker Closed)) waiters
    | Data _ ->
        let rec offer = function
          | [] ->
              conn.c_waiters <- [];
              Queue.push item conn.c_inbox
          | waker :: rest -> if waker item then conn.c_waiters <- rest else offer rest
        in
        offer conn.c_waiters
  end

(* Queue [item] on the wire from [conn] to its peer, honouring per-direction
   serialization (a single NIC transmits one message at a time). *)
let transmit conn ~size item =
  match conn.c_peer with
  | None -> ()
  | Some peer ->
      let eng = conn.c_net.eng in
      let latency, bandwidth =
        link_params conn.c_net ~src:conn.c_local_host ~dst:conn.c_peer_host
      in
      let now = Engine.now eng in
      let start = Float.max now conn.c_tx_free_at in
      let tx_time = float_of_int size /. bandwidth in
      conn.c_tx_free_at <- start +. tx_time;
      let arrival = start +. tx_time +. latency in
      Engine.schedule_at eng ~time:arrival (fun () -> arrive peer item) |> ignore

let close conn =
  if not conn.c_closed_local then begin
    conn.c_closed_local <- true;
    (* Local blocked receives observe the closure immediately. *)
    let waiters = conn.c_waiters in
    conn.c_waiters <- [];
    List.iter (fun waker -> ignore (waker Closed)) waiters;
    transmit conn ~size:0 Closed
  end

let is_open conn = not (conn.c_closed_local || conn.c_closed_remote)

let local_host conn = conn.c_local_host
let peer_host conn = conn.c_peer_host

(* The calling process owns the endpoint: its death closes the socket,
   which is exactly how the paper's dispatcher detects failures. *)
let adopt conn =
  if not conn.c_owner_hooked then begin
    conn.c_owner_hooked <- true;
    Proc.on_exit (Proc.self ()) (fun _ -> close conn)
  end

let make_pair net ~host_a ~host_b =
  let now = Engine.now net.eng in
  let fresh local peer_h =
    {
      c_net = net;
      c_local_host = local;
      c_peer_host = peer_h;
      c_inbox = Queue.create ();
      c_waiters = [];
      c_closed_local = false;
      c_closed_remote = false;
      c_tx_free_at = now;
      c_peer = None;
      c_owner_hooked = false;
    }
  in
  let a = fresh host_a host_b in
  let b = fresh host_b host_a in
  a.c_peer <- Some b;
  b.c_peer <- Some a;
  (a, b)

let connect net ~host ~to_host ~to_port =
  let eng = net.eng in
  let latency, _ = link_params net ~src:host ~dst:to_host in
  let result = Ivar.create () in
  Engine.schedule eng ~delay:latency (fun () ->
      match Hashtbl.find_opt net.listeners (to_host, to_port) with
      | Some l when l.l_open ->
          let a, b = make_pair net ~host_a:host ~host_b:to_host in
          Mailbox.send l.l_pending (Some b);
          Engine.schedule eng ~delay:latency (fun () -> Ivar.fill result (Ok a)) |> ignore
      | Some _ | None ->
          Engine.schedule eng ~delay:latency (fun () -> Ivar.fill result (Error `Refused))
          |> ignore)
  |> ignore;
  match Ivar.read result with
  | Ok conn ->
      adopt conn;
      Ok conn
  | Error `Refused -> Error `Refused

let accept l =
  match Mailbox.recv l.l_pending with
  | Some conn ->
      adopt conn;
      Some conn
  | None -> None

let send conn ?(size = 64) v =
  if conn.c_closed_local || conn.c_closed_remote then false
  else begin
    transmit conn ~size (Data v);
    true
  end

let recv conn =
  match Queue.take_opt conn.c_inbox with
  | Some item -> item
  | None ->
      if conn.c_closed_remote || conn.c_closed_local then Closed
      else Proc.suspend (fun waker -> conn.c_waiters <- conn.c_waiters @ [ waker ])

let recv_timeout conn ~timeout =
  match Queue.take_opt conn.c_inbox with
  | Some item -> Some item
  | None ->
      if conn.c_closed_remote || conn.c_closed_local then Some Closed
      else
        let eng = conn.c_net.eng in
        Proc.suspend (fun waker ->
            (* Cancel the timer once data wins; see Mailbox.recv_timeout. *)
            let timer = ref None in
            conn.c_waiters <-
              conn.c_waiters
              @ [
                  (fun item ->
                    let woke = waker (Some item) in
                    if woke then Option.iter Engine.cancel !timer;
                    woke);
                ];
            timer := Some (Engine.schedule eng ~delay:timeout (fun () -> ignore (waker None))))
