open Simkern

type config = {
  latency : float;
  bandwidth : float;
  local_latency : float;
  local_bandwidth : float;
}

let default_config =
  { latency = 1e-4; bandwidth = 1e8; local_latency = 5e-6; local_bandwidth = 1e9 }

let check_config c =
  let bad name v =
    invalid_arg
      (Printf.sprintf "Net.create: %s must be a positive number (got %g)" name v)
  in
  (* [not (v > 0.)] also rejects NaN, which would otherwise propagate into
     arrival times and silently wedge the event queue. *)
  if not (c.latency > 0.0) then bad "latency" c.latency;
  if not (c.bandwidth > 0.0) then bad "bandwidth" c.bandwidth;
  if not (c.local_latency > 0.0) then bad "local_latency" c.local_latency;
  if not (c.local_bandwidth > 0.0) then bad "local_bandwidth" c.local_bandwidth

module Perturb = struct
  type spec = { loss : float; latency : float; jitter : float }

  let zero = { loss = 0.0; latency = 0.0; jitter = 0.0 }

  let check_spec ?(what = "Net.Perturb") s =
    if not (s.loss >= 0.0 && s.loss <= 1.0) then
      invalid_arg (Printf.sprintf "%s: loss must be within [0, 1] (got %g)" what s.loss);
    if not (s.latency >= 0.0) then
      invalid_arg
        (Printf.sprintf "%s: added latency must be non-negative (got %g)" what s.latency);
    if not (s.jitter >= 0.0) then
      invalid_arg (Printf.sprintf "%s: jitter must be non-negative (got %g)" what s.jitter)

  type profile = {
    base : spec;
    partition : (int list * int list) option;
    heal_at : float option;
    seed : int64 option;
    reliable : bool;
    rto_initial : float;
    rto_max : float;
    max_attempts : int;
  }

  let default_profile =
    {
      base = zero;
      partition = None;
      heal_at = None;
      seed = None;
      reliable = true;
      rto_initial = 0.25;
      rto_max = 4.0;
      max_attempts = 8;
    }

  let check_profile p =
    check_spec ~what:"Net.Perturb profile" p.base;
    (match p.partition with
    | Some ([], _) | Some (_, []) ->
        invalid_arg "Net.Perturb profile: partition sides must be non-empty"
    | _ -> ());
    if not (p.rto_initial > 0.0) then
      invalid_arg
        (Printf.sprintf "Net.Perturb profile: rto_initial must be positive (got %g)"
           p.rto_initial);
    if not (p.rto_max >= p.rto_initial) then
      invalid_arg
        (Printf.sprintf "Net.Perturb profile: rto_max (%g) must be >= rto_initial (%g)"
           p.rto_max p.rto_initial);
    if p.max_attempts < 1 then
      invalid_arg
        (Printf.sprintf "Net.Perturb profile: max_attempts must be >= 1 (got %d)"
           p.max_attempts)

  let backoff ~rto_initial ~rto_max ~attempt =
    if attempt < 0 then invalid_arg "Net.Perturb.backoff: attempt must be >= 0";
    Float.min rto_max (rto_initial *. (2.0 ** float_of_int attempt))

  (* Perturbation state is kept O(active perturbations), never O(links):
     membership in a cut or flap is a per-host byte map built once when
     the rule is installed (O(1) lookup per message, no list scans), and
     per-host degradations live in a host-indexed array with a dense
     "touched hosts" list so installing, querying and healing walk only
     the hosts a rule actually names. A cut's byte map uses two bits —
     bit 0 for side A, bit 1 for side B — so a host listed on both sides
     of a partition keeps the historical semantics exactly. *)
  (* A pair cut stores the exact (src, dst) set a topology component
     failure severs — deterministic routing makes that an arbitrary
     pair set, not a bipartition, so no byte map can express it.  The
     table is keyed on the sorted pair and never mutated after the rule
     is installed, so snapshots may share it. *)
  type cut =
    | Cut_sets of Bytes.t
    | Cut_isolate of Bytes.t
    | Cut_pairs of (int * int, unit) Hashtbl.t

  type flap = { f_member : Bytes.t; f_period : float; f_downtime : float; f_start : float }

  (* Pair-level degradation (e.g. every intra-pod link of a fat tree):
     one immutable rule per [degrade_pairs] call, folded into [spec_for]
     by per-field max like host degradations — O(active pair rules) per
     message, zero when none are installed. *)
  type pair_rule = { pr_pairs : (int * int, unit) Hashtbl.t; pr_spec : spec }

  type stats = { dropped : int; delayed : int; retransmits : int; conn_timeouts : int }

  type t = {
    p_eng : Engine.t;
    mutable p_rng : Rng.t option;
    mutable p_seed : int64 option;
    mutable p_base : spec;
    mutable p_degraded : spec array;  (* indexed by host; [zero] = untouched *)
    mutable p_deg_hosts : int list;  (* dense set of hosts with an entry *)
    mutable p_cuts : cut list;
    mutable p_flaps : flap list;
    mutable p_pair_rules : pair_rule list;
    mutable p_touched : bool;
    mutable p_reliable : bool;
    mutable p_rto_initial : float;
    mutable p_rto_max : float;
    mutable p_max_attempts : int;
    mutable p_dropped : int;
    mutable p_delayed : int;
    mutable p_retransmits : int;
    mutable p_conn_timeouts : int;
  }

  let make eng =
    {
      p_eng = eng;
      p_rng = None;
      p_seed = None;
      p_base = zero;
      p_degraded = [||];
      p_deg_hosts = [];
      p_cuts = [];
      p_flaps = [];
      p_pair_rules = [];
      p_touched = false;
      p_reliable = default_profile.reliable;
      p_rto_initial = default_profile.rto_initial;
      p_rto_max = default_profile.rto_max;
      p_max_attempts = default_profile.max_attempts;
      p_dropped = 0;
      p_delayed = 0;
      p_retransmits = 0;
      p_conn_timeouts = 0;
    }

  (* Byte map over the hosts a rule names, one (hosts, mark) group per
     side; reads beyond the map are 0 (not a member), so maps never need
     to know the cluster size. *)
  let member_map groups =
    let top =
      List.fold_left
        (fun acc (hs, _) -> List.fold_left (fun a h -> max a h) acc hs)
        (-1) groups
    in
    let m = Bytes.make (top + 1) '\000' in
    List.iter
      (fun (hs, mark) ->
        List.iter
          (fun h ->
            if h >= 0 then
              Bytes.unsafe_set m h
                (Char.chr (Char.code (Bytes.unsafe_get m h) lor mark)))
          hs)
      groups;
    m

  let member_bits m h =
    if h >= 0 && h < Bytes.length m then Char.code (Bytes.unsafe_get m h) else 0

  let seed p s = p.p_seed <- Some s

  (* The perturbation RNG is derived lazily, the first time a rule is
     installed: a network that is never perturbed draws nothing from the
     engine RNG, keeping the reliable fast path byte-identical to a build
     without this layer. *)
  let rng p =
    match p.p_rng with
    | Some r -> r
    | None ->
        let r =
          match p.p_seed with
          | Some s -> Rng.create s
          | None -> Rng.split (Engine.rng p.p_eng)
        in
        p.p_rng <- Some r;
        r

  let touch p =
    p.p_touched <- true;
    ignore (rng p)

  let touched p = p.p_touched
  let reliable p = p.p_touched && p.p_reliable
  let set_reliable p b = p.p_reliable <- b
  let rto_initial p = p.p_rto_initial
  let rto_max p = p.p_rto_max
  let max_attempts p = p.p_max_attempts
  let note_retransmits p n = p.p_retransmits <- p.p_retransmits + n
  let note_conn_timeout p = p.p_conn_timeouts <- p.p_conn_timeouts + 1

  let stats p =
    {
      dropped = p.p_dropped;
      delayed = p.p_delayed;
      retransmits = p.p_retransmits;
      conn_timeouts = p.p_conn_timeouts;
    }

  let set_base p spec =
    check_spec spec;
    touch p;
    p.p_base <- spec

  let ensure_degraded p h =
    let n = Array.length p.p_degraded in
    if h >= n then begin
      let n' = max (h + 1) (max 8 (2 * n)) in
      let a = Array.make n' zero in
      Array.blit p.p_degraded 0 a 0 n;
      p.p_degraded <- a
    end

  let degrade p ~hosts spec =
    check_spec spec;
    touch p;
    (* Replace semantics per host, matching the historical behaviour:
       the latest [degrade] naming a host wins outright. *)
    List.iter
      (fun h ->
        if h >= 0 then begin
          ensure_degraded p h;
          if p.p_degraded.(h) == zero && not (spec == zero) then
            p.p_deg_hosts <- h :: p.p_deg_hosts;
          p.p_degraded.(h) <- spec
        end)
      hosts

  (* An empty side would install a rule that can never match while
     still flipping [touched] (arming the reliable transport and
     splitting the RNG) — silently changing behaviour with no fault
     present. Refuse it instead; the messages are pinned by a test. *)
  let partition p a b =
    if a = [] || b = [] then
      invalid_arg "Net.Perturb.partition: empty host set (both sides need at least one host)";
    touch p;
    p.p_cuts <- Cut_sets (member_map [ (a, 1); (b, 2) ]) :: p.p_cuts

  let isolate p hosts =
    if hosts = [] then
      invalid_arg "Net.Perturb.isolate: empty host set (nothing to isolate)";
    touch p;
    p.p_cuts <- Cut_isolate (member_map [ (hosts, 1) ]) :: p.p_cuts

  let pair_table ~what pairs =
    if pairs = [] then invalid_arg (what ^ ": empty pair set");
    let tbl = Hashtbl.create (max 16 (List.length pairs)) in
    List.iter
      (fun (a, b) -> if a <> b && a >= 0 && b >= 0 then Hashtbl.replace tbl (min a b, max a b) ())
      pairs;
    tbl

  let cut_pairs p pairs =
    let tbl = pair_table ~what:"Net.Perturb.cut_pairs" pairs in
    touch p;
    p.p_cuts <- Cut_pairs tbl :: p.p_cuts

  let degrade_pairs p ~pairs spec =
    check_spec spec;
    let tbl = pair_table ~what:"Net.Perturb.degrade_pairs" pairs in
    touch p;
    p.p_pair_rules <- { pr_pairs = tbl; pr_spec = spec } :: p.p_pair_rules

  let flap p ~hosts ~period ~downtime =
    if not (period > 0.0 && downtime > 0.0 && downtime < period) then
      invalid_arg
        (Printf.sprintf
           "Net.Perturb.flap: need 0 < downtime < period (got downtime %g, period %g)"
           downtime period);
    touch p;
    p.p_flaps <-
      {
        f_member = member_map [ (hosts, 1) ];
        f_period = period;
        f_downtime = downtime;
        f_start = Engine.now p.p_eng;
      }
      :: p.p_flaps

  (* [heal] removes every rule (partitions, flapping, degradations) but
     leaves the transport hardening armed so in-flight retransmissions can
     drain over the now-clean links. Cost is O(hosts actually degraded),
     not O(cluster). *)
  let heal p =
    p.p_cuts <- [];
    p.p_flaps <- [];
    p.p_pair_rules <- [];
    List.iter (fun h -> p.p_degraded.(h) <- zero) p.p_deg_hosts;
    p.p_deg_hosts <- [];
    p.p_base <- zero

  let crosses_cut cut a b =
    match cut with
    | Cut_sets m ->
        let sa = member_bits m a and sb = member_bits m b in
        (sa land 1 <> 0 && sb land 2 <> 0) || (sa land 2 <> 0 && sb land 1 <> 0)
    | Cut_isolate m -> member_bits m a <> member_bits m b
    | Cut_pairs tbl -> Hashtbl.mem tbl (min a b, max a b)

  let flap_down now f =
    let phase = Float.rem (Float.max 0.0 (now -. f.f_start)) f.f_period in
    phase < f.f_downtime

  let cut p ~src ~dst =
    src <> dst
    && (List.exists (fun c -> crosses_cut c src dst) p.p_cuts
       || (p.p_flaps <> []
          &&
          let now = Engine.now p.p_eng in
          List.exists
            (fun f ->
              member_bits f.f_member src <> member_bits f.f_member dst
              && flap_down now f)
            p.p_flaps))

  let spec_for p ~src ~dst =
    let n = Array.length p.p_degraded in
    let comb acc h =
      if h < 0 || h >= n then acc
      else
        let s = Array.unsafe_get p.p_degraded h in
        if s == zero then acc
        else
          {
            loss = Float.max acc.loss s.loss;
            latency = Float.max acc.latency s.latency;
            jitter = Float.max acc.jitter s.jitter;
          }
    in
    let acc = comb (comb p.p_base src) dst in
    match p.p_pair_rules with
    | [] -> acc
    | rules ->
        let key = (min src dst, max src dst) in
        List.fold_left
          (fun acc r ->
            if Hashtbl.mem r.pr_pairs key then
              {
                loss = Float.max acc.loss r.pr_spec.loss;
                latency = Float.max acc.latency r.pr_spec.latency;
                jitter = Float.max acc.jitter r.pr_spec.jitter;
              }
            else acc)
          acc rules

  (* Decide the fate of one message. Same-host links model Unix sockets
     and are never perturbed; [`Closed] markers survive random loss (the
     kernel resets the connection even when the link is lossy) but not an
     active partition. *)
  let sample p ~src ~dst ~kind =
    if src = dst then `Deliver 0.0
    else if cut p ~src ~dst then begin
      p.p_dropped <- p.p_dropped + 1;
      `Drop
    end
    else begin
      let s = spec_for p ~src ~dst in
      if s.loss > 0.0 && kind = `Data && Rng.float (rng p) 1.0 < s.loss then begin
        p.p_dropped <- p.p_dropped + 1;
        `Drop
      end
      else begin
        let extra =
          s.latency +. (if s.jitter > 0.0 then Rng.float (rng p) s.jitter else 0.0)
        in
        if extra > 0.0 then p.p_delayed <- p.p_delayed + 1;
        `Deliver extra
      end
    end

  let apply p profile =
    check_profile profile;
    (match profile.seed with Some s -> p.p_seed <- Some s | None -> ());
    p.p_reliable <- profile.reliable;
    p.p_rto_initial <- profile.rto_initial;
    p.p_rto_max <- profile.rto_max;
    p.p_max_attempts <- profile.max_attempts;
    if profile.base <> zero then set_base p profile.base;
    (match profile.partition with Some (a, b) -> partition p a b | None -> ());
    match profile.heal_at with
    | Some t ->
        touch p;
        Engine.schedule_at p.p_eng ~time:t (fun () -> heal p) |> ignore
    | None -> ()

  (* Snapshot: every mutable field. Cut/flap byte maps and spec records
     are immutable after construction, so sharing the lists is safe; the
     RNG state is copied both ways so one snapshot restores any number
     of times. *)
  type snapshot = {
    sn_rng : Rng.t option;
    sn_seed : int64 option;
    sn_base : spec;
    sn_degraded : spec array;
    sn_deg_hosts : int list;
    sn_cuts : cut list;
    sn_flaps : flap list;
    sn_pair_rules : pair_rule list;
    sn_touched : bool;
    sn_reliable : bool;
    sn_rto_initial : float;
    sn_rto_max : float;
    sn_max_attempts : int;
    sn_dropped : int;
    sn_delayed : int;
    sn_retransmits : int;
    sn_conn_timeouts : int;
  }

  let snapshot p =
    {
      sn_rng = Option.map Rng.copy p.p_rng;
      sn_seed = p.p_seed;
      sn_base = p.p_base;
      sn_degraded = Array.copy p.p_degraded;
      sn_deg_hosts = p.p_deg_hosts;
      sn_cuts = p.p_cuts;
      sn_flaps = p.p_flaps;
      sn_pair_rules = p.p_pair_rules;
      sn_touched = p.p_touched;
      sn_reliable = p.p_reliable;
      sn_rto_initial = p.p_rto_initial;
      sn_rto_max = p.p_rto_max;
      sn_max_attempts = p.p_max_attempts;
      sn_dropped = p.p_dropped;
      sn_delayed = p.p_delayed;
      sn_retransmits = p.p_retransmits;
      sn_conn_timeouts = p.p_conn_timeouts;
    }

  let restore p s =
    p.p_rng <- Option.map Rng.copy s.sn_rng;
    p.p_seed <- s.sn_seed;
    p.p_base <- s.sn_base;
    p.p_degraded <- Array.copy s.sn_degraded;
    p.p_deg_hosts <- s.sn_deg_hosts;
    p.p_cuts <- s.sn_cuts;
    p.p_flaps <- s.sn_flaps;
    p.p_pair_rules <- s.sn_pair_rules;
    p.p_touched <- s.sn_touched;
    p.p_reliable <- s.sn_reliable;
    p.p_rto_initial <- s.sn_rto_initial;
    p.p_rto_max <- s.sn_rto_max;
    p.p_max_attempts <- s.sn_max_attempts;
    p.p_dropped <- s.sn_dropped;
    p.p_delayed <- s.sn_delayed;
    p.p_retransmits <- s.sn_retransmits;
    p.p_conn_timeouts <- s.sn_conn_timeouts
end

type 'a recv_result = Data of 'a | Closed

(* Wire format. The reliable transport (active only when the network is
   perturbed) wraps payloads with sequence numbers and acknowledges them
   cumulatively; the pristine path always uses [W_plain]. *)
type 'a wire = W_plain of 'a recv_result | W_seq of int * 'a recv_result | W_ack of int

type 'a t = {
  eng : Engine.t;
  cfg : config;
  perturb : Perturb.t;
  listeners : (int * int, 'a listener) Hashtbl.t;
}

and 'a listener = {
  l_net : 'a t;
  l_host : int;
  l_port : int;
  l_pending : 'a conn option Mailbox.t;
  mutable l_open : bool;
}

and 'a conn = {
  c_net : 'a t;
  c_local_host : int;
  c_peer_host : int;
  c_inbox : 'a recv_result Queue.t;
  mutable c_waiters : ('a recv_result -> bool) list;  (* oldest first *)
  mutable c_closed_local : bool;
  mutable c_closed_remote : bool;
  mutable c_tx_free_at : float;
  mutable c_last_arrival : float;
  mutable c_peer : 'a conn option;
  mutable c_owner_hooked : bool;
  (* Reliable-transport state (unused while the network is pristine). *)
  mutable c_next_seq : int;
  mutable c_expect : int;
  mutable c_unacked : (int * int * 'a recv_result) list;  (* seq, size, payload *)
  mutable c_retx_timer : Engine.handle option;
  mutable c_attempts : int;
}

let create eng ?(config = default_config) () =
  check_config config;
  { eng; cfg = config; perturb = Perturb.make eng; listeners = Hashtbl.create 64 }

let engine net = net.eng
let config net = net.cfg
let perturb net = net.perturb

(* Socket-layer snapshot: the port-binding table plus the perturbation
   layer. Listener mailboxes and per-connection buffers reach process
   continuations, so the records are shared, not copied — same contract
   as [Engine.snapshot]: sound when the rest of the process is itself
   back at the capture point (self-contained state, or an OS fork). *)
type 'a snapshot = {
  ns_perturb : Perturb.snapshot;
  ns_bindings : ((int * int) * 'a listener) list;
}

let snapshot net =
  {
    ns_perturb = Perturb.snapshot net.perturb;
    ns_bindings = Hashtbl.fold (fun k l acc -> (k, l) :: acc) net.listeners [];
  }

let restore net s =
  Perturb.restore net.perturb s.ns_perturb;
  Hashtbl.reset net.listeners;
  List.iter (fun (k, l) -> Hashtbl.replace net.listeners k l) s.ns_bindings

let link_params net ~src ~dst =
  if src = dst then (net.cfg.local_latency, net.cfg.local_bandwidth)
  else (net.cfg.latency, net.cfg.bandwidth)

let listen net ~host ~port =
  if Hashtbl.mem net.listeners (host, port) then
    invalid_arg (Printf.sprintf "Net.listen: %d:%d already bound" host port);
  let l =
    { l_net = net; l_host = host; l_port = port; l_pending = Mailbox.create (); l_open = true }
  in
  Hashtbl.replace net.listeners (host, port) l;
  l

let close_listener l =
  if l.l_open then begin
    l.l_open <- false;
    Hashtbl.remove l.l_net.listeners (l.l_host, l.l_port);
    (* Wake a blocked acceptor, if any. *)
    Mailbox.send l.l_pending None
  end

let reliable_on conn =
  conn.c_local_host <> conn.c_peer_host && Perturb.reliable conn.c_net.perturb

let kind_of_wire = function W_plain Closed -> `Closed | W_plain _ | W_seq _ | W_ack _ -> `Data

let cancel_retx conn =
  match conn.c_retx_timer with
  | Some h ->
      Engine.cancel h;
      conn.c_retx_timer <- None
  | None -> ()

(* Deliver an item at the receiving endpoint, queue wire messages,
   acknowledge and retransmit. All of these run as engine events. *)
let rec deliver conn item =
  if not conn.c_closed_remote then begin
    match item with
    | Closed ->
        conn.c_closed_remote <- true;
        (* Whatever we still had in flight can never be acknowledged. *)
        conn.c_unacked <- [];
        cancel_retx conn;
        let waiters = conn.c_waiters in
        conn.c_waiters <- [];
        List.iter (fun waker -> ignore (waker Closed)) waiters
    | Data _ ->
        let rec offer = function
          | [] ->
              conn.c_waiters <- [];
              Queue.push item conn.c_inbox
          | waker :: rest -> if waker item then conn.c_waiters <- rest else offer rest
        in
        offer conn.c_waiters
  end

and arrive conn w =
  match w with
  | W_plain item -> if not conn.c_closed_remote then deliver conn item
  | W_ack n -> on_ack conn n
  | W_seq (seq, item) ->
      (* Endpoints whose owner died (or that closed locally) stay silent:
         the peer must discover the failure by closure or timeout, never
         from a ghost acknowledgement. *)
      if (not conn.c_closed_remote) && not conn.c_closed_local then
        if seq = conn.c_expect then begin
          conn.c_expect <- seq + 1;
          send_ack conn;
          deliver conn item
        end
        else
          (* Duplicate or gap (go-back-N): re-advertise the cumulative ack
             and let the sender retransmit in order. *)
          send_ack conn

and send_ack conn = transmit conn ~size:0 (W_ack conn.c_expect)

and on_ack conn n =
  let before = conn.c_unacked in
  conn.c_unacked <- List.filter (fun (s, _, _) -> s >= n) conn.c_unacked;
  if List.compare_lengths conn.c_unacked before < 0 then conn.c_attempts <- 0;
  if conn.c_unacked = [] then cancel_retx conn

and arm_retx conn =
  if conn.c_retx_timer = None && conn.c_unacked <> [] then begin
    let p = conn.c_net.perturb in
    let delay =
      Perturb.backoff ~rto_initial:(Perturb.rto_initial p) ~rto_max:(Perturb.rto_max p)
        ~attempt:conn.c_attempts
    in
    conn.c_retx_timer <- Some (Engine.schedule conn.c_net.eng ~delay (fun () -> retx_fire conn))
  end

and retx_fire conn =
  conn.c_retx_timer <- None;
  if conn.c_unacked <> [] then begin
    let p = conn.c_net.perturb in
    conn.c_attempts <- conn.c_attempts + 1;
    if conn.c_attempts > Perturb.max_attempts p then conn_timeout conn
    else begin
      Perturb.note_retransmits p (List.length conn.c_unacked);
      List.iter
        (fun (seq, size, item) -> transmit conn ~size (W_seq (seq, item)))
        conn.c_unacked;
      arm_retx conn
    end
  end

(* The retransmission budget is exhausted: tear the connection down the
   way TCP does on ETIMEDOUT. The local side observes [Closed] now; the
   peer's own keepalive gives up one rto_max later (it cannot be told over
   the dead link). *)
and conn_timeout conn =
  let p = conn.c_net.perturb in
  Perturb.note_conn_timeout p;
  conn.c_unacked <- [];
  conn.c_closed_local <- true;
  deliver conn Closed;
  match conn.c_peer with
  | Some peer ->
      Engine.schedule conn.c_net.eng ~delay:(Perturb.rto_max p) (fun () -> deliver peer Closed)
      |> ignore
  | None -> ()

(* Queue a wire message from [conn] to its peer, honouring per-direction
   serialization (a single NIC transmits one message at a time). When the
   network is perturbed the message is sampled for loss/partition/extra
   latency; arrivals stay FIFO per direction (degraded TCP, not UDP). *)
and transmit conn ~size item =
  match conn.c_peer with
  | None -> ()
  | Some peer ->
      let eng = conn.c_net.eng in
      let latency, bandwidth =
        link_params conn.c_net ~src:conn.c_local_host ~dst:conn.c_peer_host
      in
      let now = Engine.now eng in
      let start = Float.max now conn.c_tx_free_at in
      let tx_time = float_of_int size /. bandwidth in
      conn.c_tx_free_at <- start +. tx_time;
      let p = conn.c_net.perturb in
      let fate =
        if Perturb.touched p then
          Perturb.sample p ~src:conn.c_local_host ~dst:conn.c_peer_host
            ~kind:(kind_of_wire item)
        else `Deliver 0.0
      in
      (match fate with
      | `Drop -> ()
      | `Deliver extra ->
          let arrival =
            Float.max (start +. tx_time +. latency +. extra) conn.c_last_arrival
          in
          conn.c_last_arrival <- arrival;
          Engine.schedule_at eng ~time:arrival (fun () -> arrive peer item) |> ignore)

let close conn =
  if not conn.c_closed_local then begin
    conn.c_closed_local <- true;
    (* Local blocked receives observe the closure immediately. *)
    let waiters = conn.c_waiters in
    conn.c_waiters <- [];
    List.iter (fun waker -> ignore (waker Closed)) waiters;
    if reliable_on conn && not conn.c_closed_remote then begin
      let seq = conn.c_next_seq in
      conn.c_next_seq <- seq + 1;
      conn.c_unacked <- conn.c_unacked @ [ (seq, 0, Closed) ];
      transmit conn ~size:0 (W_seq (seq, Closed));
      arm_retx conn
    end
    else transmit conn ~size:0 (W_plain Closed)
  end

let is_open conn = not (conn.c_closed_local || conn.c_closed_remote)

let local_host conn = conn.c_local_host
let peer_host conn = conn.c_peer_host

(* The calling process owns the endpoint: its death closes the socket,
   which is exactly how the paper's dispatcher detects failures. *)
let adopt conn =
  if not conn.c_owner_hooked then begin
    conn.c_owner_hooked <- true;
    Proc.on_exit (Proc.self ()) (fun _ -> close conn)
  end

let make_pair net ~host_a ~host_b =
  let now = Engine.now net.eng in
  let fresh local peer_h =
    {
      c_net = net;
      c_local_host = local;
      c_peer_host = peer_h;
      c_inbox = Queue.create ();
      c_waiters = [];
      c_closed_local = false;
      c_closed_remote = false;
      c_tx_free_at = now;
      c_last_arrival = now;
      c_peer = None;
      c_owner_hooked = false;
      c_next_seq = 0;
      c_expect = 0;
      c_unacked = [];
      c_retx_timer = None;
      c_attempts = 0;
    }
  in
  let a = fresh host_a host_b in
  let b = fresh host_b host_a in
  a.c_peer <- Some b;
  b.c_peer <- Some a;
  (a, b)

let connect net ~host ~to_host ~to_port =
  let eng = net.eng in
  let latency, _ = link_params net ~src:host ~dst:to_host in
  let p = net.perturb in
  let sample () =
    if Perturb.touched p then Perturb.sample p ~src:host ~dst:to_host ~kind:`Data
    else `Deliver 0.0
  in
  (* One handshake round trip. Each hop is sampled like a message: a lost
     or partitioned SYN is a network failure ([`Lost]) that the reliable
     connector retries with backoff below, while a missing listener
     refuses immediately (a TCP RST is not worth retrying). *)
  let attempt_once () =
    let result = Ivar.create () in
    let finish ~extra v =
      Engine.schedule eng ~delay:(latency +. extra) (fun () -> Ivar.fill result v) |> ignore
    in
    (match sample () with
    | `Drop -> finish ~extra:0.0 (Error `Lost)
    | `Deliver extra1 ->
        Engine.schedule eng ~delay:(latency +. extra1) (fun () ->
            match Hashtbl.find_opt net.listeners (to_host, to_port) with
            | Some l when l.l_open -> (
                match sample () with
                | `Drop -> finish ~extra:0.0 (Error `Lost)
                | `Deliver extra2 ->
                    let a, b = make_pair net ~host_a:host ~host_b:to_host in
                    Mailbox.send l.l_pending (Some b);
                    finish ~extra:extra2 (Ok a))
            | Some _ | None -> finish ~extra:0.0 (Error `Refused))
        |> ignore);
    Ivar.read result
  in
  let retrying = host <> to_host && Perturb.reliable p in
  let rec go attempt =
    match attempt_once () with
    | Ok conn ->
        adopt conn;
        Ok conn
    | Error `Refused -> Error `Refused
    | Error `Lost ->
        if retrying && attempt < Perturb.max_attempts p then begin
          Perturb.note_retransmits p 1;
          Proc.sleep
            (Perturb.backoff ~rto_initial:(Perturb.rto_initial p)
               ~rto_max:(Perturb.rto_max p) ~attempt);
          go (attempt + 1)
        end
        else begin
          (* Out of SYN retries: the peer is unreachable, like connect(2)
             returning ETIMEDOUT. *)
          if retrying then Perturb.note_conn_timeout p;
          Error `Refused
        end
  in
  go 0

let accept l =
  match Mailbox.recv l.l_pending with
  | Some conn ->
      adopt conn;
      Some conn
  | None -> None

let send conn ?(size = 64) v =
  if conn.c_closed_local || conn.c_closed_remote then false
  else if reliable_on conn then begin
    let seq = conn.c_next_seq in
    conn.c_next_seq <- seq + 1;
    conn.c_unacked <- conn.c_unacked @ [ (seq, size, Data v) ];
    transmit conn ~size (W_seq (seq, Data v));
    arm_retx conn;
    true
  end
  else begin
    transmit conn ~size (W_plain (Data v));
    true
  end

let recv conn =
  match Queue.take_opt conn.c_inbox with
  | Some item -> item
  | None ->
      if conn.c_closed_remote || conn.c_closed_local then Closed
      else Proc.suspend (fun waker -> conn.c_waiters <- conn.c_waiters @ [ waker ])

let recv_timeout conn ~timeout =
  match Queue.take_opt conn.c_inbox with
  | Some item -> Some item
  | None ->
      if conn.c_closed_remote || conn.c_closed_local then Some Closed
      else
        let eng = conn.c_net.eng in
        Proc.suspend (fun waker ->
            (* Cancel the timer once data wins; see Mailbox.recv_timeout. *)
            let timer = ref None in
            conn.c_waiters <-
              conn.c_waiters
              @ [
                  (fun item ->
                    let woke = waker (Some item) in
                    if woke then Option.iter Engine.cancel !timer;
                    woke);
                ];
            timer := Some (Engine.schedule eng ~delay:timeout (fun () -> ignore (waker None))))
