(** Simulated TCP-like network.

    A ['a t] is an overlay network whose connections all carry messages of
    type ['a]. Hosts are plain integers (assigned by {!Simos.Cluster});
    connections between distinct hosts pay the network latency and
    bandwidth, while same-host connections (the paper's Unix sockets
    between an MPI process and its daemon) pay the much smaller local
    cost.

    Failure semantics follow the paper's §3 setup: a connection endpoint is
    owned by the process that opened it, and when that process dies — for
    any reason, including a FAIL-MPI [halt] — the peer observes the closure
    on its next receive. "A failure is assumed after any unexpected socket
    closure"; detection is immediate because experiments kill tasks, not
    operating systems.

    {!Perturb} relaxes the perfect-network assumption: per-link loss,
    added latency and jitter, bidirectional partitions between host sets
    with heal, and link flapping — all deterministic functions of the run
    seed. While the network is perturbed, inter-host connections switch to
    a reliable transport (sequence numbers, cumulative acks, bounded
    exponential-backoff retransmission) so degraded links behave like slow
    TCP rather than UDP; a connection that exhausts its retransmission
    budget is torn down like ETIMEDOUT and both ends eventually observe
    [Closed]. A network that is never perturbed takes the historical fast
    path, byte-identical to the pre-perturbation simulator. *)

open Simkern

type 'a t

type config = {
  latency : float;  (** one-way propagation delay between distinct hosts, s *)
  bandwidth : float;  (** bytes per second between distinct hosts *)
  local_latency : float;  (** one-way delay on same-host connections, s *)
  local_bandwidth : float;  (** bytes per second on same-host connections *)
}

(** GigE-like defaults: 100 us latency, 100 MB/s; local: 5 us, 1 GB/s. *)
val default_config : config

(** Network perturbation: deterministic link faults drawn from the run
    seed. All state lives inside the owning network (and therefore inside
    one run's engine), so campaigns stay reproducible at any [--jobs]. *)
module Perturb : sig
  (** Degradation of a link: [loss] is the per-message drop probability in
      [\[0, 1\]], [latency] an added one-way delay in seconds, [jitter] a
      uniform extra delay in [\[0, jitter)]. Arrivals remain FIFO per
      direction. [Closed] markers survive random loss (a kernel reset gets
      through a lossy link) but not an active partition. *)
  type spec = { loss : float; latency : float; jitter : float }

  val zero : spec

  (** A launch-time perturbation profile ([failmpi_run --net-*]): [base]
      degrades every inter-host link, [partition] opens a bidirectional
      cut between two host sets, [heal_at] schedules {!heal}, [seed]
      overrides the lazily split perturbation RNG, [reliable] arms the
      retransmitting transport (default [true]), and [rto_initial]/
      [rto_max]/[max_attempts] bound its exponential backoff. *)
  type profile = {
    base : spec;
    partition : (int list * int list) option;
    heal_at : float option;
    seed : int64 option;
    reliable : bool;
    rto_initial : float;
    rto_max : float;
    max_attempts : int;
  }

  (** No degradation, no partition, reliable transport armed with
      [rto_initial = 0.25 s], [rto_max = 4 s], [max_attempts = 8]. *)
  val default_profile : profile

  (** Raise [Invalid_argument] on parameters outside their domain (loss
      outside [\[0,1\]], negative delays, non-positive backoff). *)
  val check_spec : ?what:string -> spec -> unit

  val check_profile : profile -> unit

  (** [backoff ~rto_initial ~rto_max ~attempt] is the retransmission delay
      before attempt [attempt] (0-based): [rto_initial * 2^attempt] capped
      at [rto_max]. Pure; unit-tested by the backoff-schedule tests. *)
  val backoff : rto_initial:float -> rto_max:float -> attempt:int -> float

  type t

  type stats = {
    dropped : int;  (** messages dropped by loss or an active cut *)
    delayed : int;  (** messages delivered with added latency/jitter *)
    retransmits : int;  (** wire messages re-sent by the reliable transport *)
    conn_timeouts : int;  (** connections torn down after exhausting retries *)
  }

  (** [touched t] is true once any rule was ever installed — the gate for
      every perturbation code path. A never-touched network is
      byte-identical to the historical simulator. *)
  val touched : t -> bool

  val stats : t -> stats

  (** [sample t ~src ~dst ~kind] draws the fate of one wire message on
      the [src -> dst] link: [`Deliver extra] adds [extra] seconds of
      latency/jitter, [`Drop] loses it (and counts it in {!stats}).
      Same-host traffic always delivers. [`Closed] markers ride through
      random loss but not an active cut. Used by the FCI control plane
      to subject its own messages to the same fabric as the
      application's. *)
  val sample :
    t ->
    src:int ->
    dst:int ->
    kind:[ `Data | `Closed ] ->
    [ `Deliver of float | `Drop ]

  (** [cut t ~src ~dst] is true when the [src -> dst] link is currently
      severed by a partition, an isolation or a down flap. A host listed
      on both sides of a partition cuts against both sides; same-host
      links are never cut. O(active cuts), O(1) per membership probe. *)
  val cut : t -> src:int -> dst:int -> bool

  (** [spec_for t ~src ~dst] is the effective degradation of one link:
      the base spec combined with the [src]- and [dst]-host entries by
      per-field max. O(1). *)
  val spec_for : t -> src:int -> dst:int -> spec

  (** [seed t s] fixes the perturbation RNG seed ([--net-seed]); without
      it, the RNG is split from the engine RNG on first use. Must be
      called before the first rule is installed to take effect. *)
  val seed : t -> int64 -> unit

  (** [apply t profile] installs a launch-time profile: backoff limits,
      base degradation, partition and scheduled heal. *)
  val apply : t -> profile -> unit

  (** [set_base t spec] degrades every inter-host link. *)
  val set_base : t -> spec -> unit

  (** [degrade t ~hosts spec] degrades every link touching one of
      [hosts]; the worse of base/endpoint specs applies per link. *)
  val degrade : t -> hosts:int list -> spec -> unit

  (** [partition t a b] drops everything crossing the cut between host
      sets [a] and [b], both directions, and refuses new connections.
      Raises [Invalid_argument] when either side is empty: an empty
      side can never match yet would still flip {!touched}, silently
      arming the reliable transport with no fault present. *)
  val partition : t -> int list -> int list -> unit

  (** [isolate t hosts] partitions [hosts] from every other host.
      Raises [Invalid_argument] on an empty [hosts] (see {!partition}). *)
  val isolate : t -> int list -> unit

  (** [cut_pairs t pairs] drops everything between the exact host pairs
      listed (unordered, both directions) — the primitive a topology
      component failure compiles to: killing a switch cuts every host
      pair whose deterministic route crosses it, which is not a
      bipartition.  O(1) per message regardless of pair count.  Raises
      [Invalid_argument] on an empty pair list. *)
  val cut_pairs : t -> (int * int) list -> unit

  (** [degrade_pairs t ~pairs spec] degrades exactly the listed host
      pairs (e.g. every intra-pod link of a fat tree); the worse of
      base/endpoint/pair specs applies per message.  Raises
      [Invalid_argument] on an empty pair list. *)
  val degrade_pairs : t -> pairs:(int * int) list -> spec -> unit

  (** [flap t ~hosts ~period ~downtime] makes the links between [hosts]
      and the rest of the cluster go down for the first [downtime] seconds
      of every [period], starting now. *)
  val flap : t -> hosts:int list -> period:float -> downtime:float -> unit

  (** [heal t] removes every rule (partitions, flapping, degradations).
      The reliable transport stays armed so in-flight retransmissions
      drain over the healed links. *)
  val heal : t -> unit

  (** [set_reliable t b] arms or disarms the retransmitting transport
      (tests use [false] to expose raw loss to the protocols). *)
  val set_reliable : t -> bool -> unit

  (** {2 Snapshot / restore}

      Captures every mutable field — RNG state, base/per-host specs,
      cuts, flaps, counters. Restore is exact and reusable: the layer's
      state is plain data, so this round-trips even inside a live
      process. *)

  type snapshot

  val snapshot : t -> snapshot
  val restore : t -> snapshot -> unit
end

(** [create eng ?config ()] builds a network. Raises [Invalid_argument]
    if any latency or bandwidth in [config] is not a positive number. *)
val create : Engine.t -> ?config:config -> unit -> 'a t

val engine : 'a t -> Engine.t
val config : 'a t -> config

(** [perturb net] is the network's perturbation layer (dormant until a
    rule is installed). *)
val perturb : 'a t -> Perturb.t

(** {2 Snapshot / restore}

    Captures the socket layer's port-binding table and the perturbation
    layer. Listener mailboxes and per-connection buffers reach process
    continuations and are shared, not copied — restoring inside a live
    process is only sound when that state is itself back at the capture
    point (the explorer instead forks the whole process and lets
    copy-on-write carry it; see {!Simkern.Engine.snapshot}). *)

type 'a snapshot

val snapshot : 'a t -> 'a snapshot
val restore : 'a t -> 'a snapshot -> unit

type 'a listener
type 'a conn

(** Result of a receive. [`Closed] means the peer endpoint was closed or
    its owner process died. *)
type 'a recv_result = Data of 'a | Closed

(** [listen net ~host ~port] binds a listener. Raises [Invalid_argument]
    if the address is already bound. *)
val listen : 'a t -> host:int -> port:int -> 'a listener

(** [accept l] blocks the calling process until a connection arrives; the
    calling process becomes the owner of the returned endpoint. Returns
    [None] if the listener is closed while waiting. *)
val accept : 'a listener -> 'a conn option

val close_listener : 'a listener -> unit

(** [connect net ~host ~to_host ~to_port] opens a connection from [host].
    Blocks the calling process for the handshake round-trip; the caller
    becomes the owner of the returned endpoint. [Error `Refused] if no
    listener is bound — or, on a perturbed network, if the handshake was
    lost or the hosts are partitioned. *)
val connect : 'a t -> host:int -> to_host:int -> to_port:int -> ('a conn, [ `Refused ]) result

(** [send conn ?size v] queues [v] for delivery ([size] in bytes, default
    [64], determines transmission time). Returns [false] if the connection
    is already closed locally or by the peer (the message is dropped, like
    a write on a reset socket). *)
val send : 'a conn -> ?size:int -> 'a -> bool

(** [recv conn] blocks until a message or the closure marker arrives. *)
val recv : 'a conn -> 'a recv_result

(** [recv_timeout conn ~timeout] like {!recv} with an expiry; [None] on
    timeout. *)
val recv_timeout : 'a conn -> timeout:float -> 'a recv_result option

(** [close conn] closes the local endpoint; the peer observes [Closed]
    after the propagation delay. Idempotent. *)
val close : 'a conn -> unit

(** [is_open conn] is false once the local endpoint is closed or the peer's
    closure has been observed. *)
val is_open : 'a conn -> bool

val local_host : 'a conn -> int
val peer_host : 'a conn -> int
