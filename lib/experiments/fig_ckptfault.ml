(* Storage-plane fault grid: checkpoint-server faults (service kills,
   freeze/thaw, primary+mirror double strikes) against the rollback
   protocol families, at replication factor 1 and 2. The bandwidth is
   lowered so a wave's store window spans several seconds and a kill
   timed a couple of seconds into the first wave reliably lands
   mid-commit — the torn-write case the atomic prepare/commit protocol
   must survive. *)

module S = Fail_lang.Codegen.Scenario

type config = {
  klass : Workload.Bt_model.klass;
  n_ranks : int;
  n_machines : int;
  server_bandwidth : float;
      (* lowered from the calibrated 1e8 so the per-image store takes
         seconds, not fractions of one — widens the mid-commit window *)
  replica_levels : int list;
  reps : int;
  base_seed : int;
}

let default_config =
  {
    klass = Workload.Bt_model.A;
    n_ranks = 9;
    n_machines = 13;
    server_bandwidth = 1e7;
    replica_levels = [ 1; 2 ];
    reps = 3;
    base_seed = 2100;
  }

let quick_config = { default_config with reps = 1 }

(* The four storage-fault shapes, as explorer-style fault plans rendered
   to FAIL source. Times are anchored on the first wave: the scheduler
   broadcasts markers at t = 30 (the default wave interval) and with the
   lowered bandwidth the store window runs well past t = 32. *)
let scenarios ~n_machines =
  [
    (* Server dies while no store is in flight: waves time out / redirect
       and the respawned server rejoins — the run must complete. *)
    ( "between-waves",
      [ { S.machine = 0; anchor = S.After 18; kind = S.Service_kill { service = S.S_ckpt 0 } } ] );
    (* Server dies two seconds into the first wave's store window (a torn
       write on its disk), then a rank dies and must restore: mirrors
       (replicas = 2) fail the fetch over; a single replica ends in
       ckpt-lost — never a hang. *)
    ( "mid-commit kill",
      [
        { S.machine = 0; anchor = S.After 32; kind = S.Service_kill { service = S.S_ckpt 0 } };
        { S.machine = 1; anchor = S.After 6; kind = S.Kill };
      ] );
    (* Primary and its mirror both die before the rank restarts: no
       complete image survives anywhere, so even replicas = 2 must end
       in ckpt-lost. *)
    ( "primary+mirror kill",
      [
        { S.machine = 0; anchor = S.After 32; kind = S.Service_kill { service = S.S_ckpt 0 } };
        { S.machine = 1; anchor = S.After 1; kind = S.Service_kill { service = S.S_ckpt 1 } };
        { S.machine = 1; anchor = S.After 5; kind = S.Kill };
      ] );
    (* Server freezes mid-store and thaws 20 s later: the scheduler's
       store-ack timeout abandons the wave instead of wedging, and the
       thawed server serves later waves — the run must complete. *)
    ( "freeze-thaw server",
      [
        {
          S.machine = 0;
          anchor = S.After 32;
          kind = S.Service_freeze { service = S.S_ckpt 0; thaw = 20 };
        };
      ] );
  ]
  |> List.map (fun (name, faults) -> (name, S.source ~n_machines faults))

(* Only the rollback families own the checkpoint storage plane. *)
let families = [ "vcl"; "blocking"; "v2" ]

type row = { scenario : string; family : string; replicas : int; agg : Harness.agg }

let run ?jobs ?(config = default_config) () =
  let scenario_list = scenarios ~n_machines:config.n_machines in
  List.concat_map
    (fun (scenario_name, source) ->
      List.concat_map
        (fun family ->
          let (module B : Failmpi.Backend.S) =
            match Failmpi.Backend.find family with
            | Some b -> b
            | None -> invalid_arg (Printf.sprintf "Fig_ckptfault: unknown backend %s" family)
          in
          List.map
            (fun replicas ->
              let cfg =
                {
                  (Mpivcl.Config.default ~n_ranks:config.n_ranks) with
                  Mpivcl.Config.protocol = B.protocol ~replicas:1;
                  server_bandwidth = config.server_bandwidth;
                  ckpt_replicas = replicas;
                }
              in
              let label =
                Printf.sprintf "%s %s x%d" scenario_name family replicas
              in
              Harness.cell
                ~tag:(scenario_name, family, replicas, label)
                ~reps:config.reps ~base_seed:config.base_seed
                (fun ~seed ->
                  Harness.run_bt ~cfg ~klass:config.klass ~n_ranks:config.n_ranks
                    ~n_machines:config.n_machines ~scenario:(Some source) ~seed ()))
            config.replica_levels)
        families)
    scenario_list
  |> Harness.campaign ?jobs
  |> List.map (fun ((scenario, family, replicas, label), results) ->
         { scenario; family; replicas; agg = Harness.aggregate ~label results })

let aggs rows = List.map (fun r -> r.agg) rows

let render rows =
  let title = "Checkpoint storage faults: server kills and freezes vs replication factor" in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (title ^ "\n");
  Buffer.add_string buf (String.make (String.length title) '-' ^ "\n");
  Buffer.add_string buf
    (Printf.sprintf "%-32s %5s %9s %9s %8s %8s %8s %5s\n" "configuration" "runs" "time(s)"
       "%ckplost" "%buggy" "%nonterm" "waves" "chk");
  List.iter
    (fun r ->
      let a = r.agg in
      Buffer.add_string buf
        (Printf.sprintf "%-32s %5d %9s %9.0f %8.0f %8.0f %8.1f %5s\n" a.Harness.label
           a.Harness.runs
           (match a.Harness.mean_time with
           | Some t -> Printf.sprintf "%.0f" t
           | None -> "-")
           a.Harness.pct_ckpt_lost a.Harness.pct_buggy a.Harness.pct_non_terminating
           (Harness.counter a "committed_waves")
           (if a.Harness.checksum_failures = 0 then "ok"
            else Printf.sprintf "%d BAD" a.Harness.checksum_failures)))
    rows;
  Buffer.contents buf

let paper_note =
  "Expectation: between-wave kills and freeze/thaws only cost time — the\n\
   scheduler abandons the wave on its store-ack timeout and the respawned\n\
   (or thawed) server rejoins, so every backend completes with matching\n\
   checksums. A mid-commit kill tears the in-flight image on the dead\n\
   server's disk: for the wave-coordinated families (vcl, blocking) a\n\
   mirror (x2) fails the restore over and no verdict changes, while a\n\
   single replica (x1) leaves the restart without a complete image and\n\
   the run ends decisively in ckpt-lost — never a hang. Killing a rank's\n\
   primary and its mirror is unsurvivable at either factor for the\n\
   coordinated families. v2's sender-logging stores uncoordinated\n\
   per-rank images at protocol-chosen instants, so a wave-timed kill can\n\
   land outside its store window — its rows show how uncoordinated\n\
   commit points shift the exposure, not a storage-plane difference."
