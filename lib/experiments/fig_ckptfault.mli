(** Storage-plane fault campaign: checkpoint-server kills, freeze/thaws
    and primary+mirror double strikes, swept against the rollback
    protocol families at replication factor 1 and 2.

    The four fault shapes probe the plane's guarantees separately: a
    between-wave kill and a freeze/thaw must only cost time (store-ack
    timeout, respawn, re-sync); a mid-commit kill tears the in-flight
    image and must either fail over to a mirror (x2, no verdict change)
    or end decisively in [ckpt-lost] (x1); killing a rank's primary and
    its mirror must classify [ckpt-lost] at every factor — never a
    hang. The CI smoke runs {!quick_config}; [BENCH_ckpt.json] tracks
    the storage-plane overhead. *)

type config = {
  klass : Workload.Bt_model.klass;
  n_ranks : int;
  n_machines : int;
  server_bandwidth : float;
      (** bytes/s per checkpoint server — lowered from the calibrated
          default so the store window spans seconds and mid-commit kills
          land reliably inside it *)
  replica_levels : int list;  (** [ckpt_replicas] values to sweep *)
  reps : int;
  base_seed : int;
}

val default_config : config
val quick_config : config

type row = { scenario : string; family : string; replicas : int; agg : Harness.agg }

(** [?jobs] as in {!Harness.campaign}. *)
val run : ?jobs:int -> ?config:config -> unit -> row list

(** [aggs rows] projects the plain aggregates (CSV export). *)
val aggs : row list -> Harness.agg list

val render : row list -> string
val paper_note : string
