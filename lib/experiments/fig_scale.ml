type config = {
  klass : Workload.Bt_model.klass;
  sizes : int list;
  period : int;
  reps : int;
  base_seed : int;
}

let default_config =
  {
    klass = Workload.Bt_model.B;
    sizes = [ 25; 36; 49; 64 ];
    period = 50;
    reps = 5;
    base_seed = 200;
  }

let quick_config = { default_config with sizes = [ 25; 49 ]; reps = 2 }

let run ?jobs ?(config = default_config) () =
  List.concat_map
    (fun n_ranks ->
      let n_machines = Harness.machines_for n_ranks in
      let scenario =
        Some (Fail_lang.Paper_scenarios.frequency ~n_machines ~period:config.period)
      in
      [
        Harness.cell
          ~tag:(Printf.sprintf "BT %d (no faults)" n_ranks)
          ~reps:config.reps ~base_seed:config.base_seed
          (fun ~seed ->
            Harness.run_bt ~klass:config.klass ~n_ranks ~n_machines ~scenario:None ~seed ());
        Harness.cell
          ~tag:(Printf.sprintf "BT %d (1/%ds)" n_ranks config.period)
          ~reps:config.reps
          ~base_seed:(config.base_seed + 50)
          (fun ~seed ->
            Harness.run_bt ~klass:config.klass ~n_ranks ~n_machines ~scenario ~seed ());
      ])
    config.sizes
  |> Harness.campaign ?jobs
  |> List.map (fun (label, results) -> Harness.aggregate ~label results)

let render aggs = Harness.render_table ~title:"Figure 6: impact of scale (1 fault every 50 s)" aggs

(* ------------------------------------------------------------------ *)
(* Figure 6 at simulation scale: the same no-fault / fault-every-period
   rows at thousands of ranks, across the paper's three protocol
   families, one seed per cell. The physical testbed stopped at BT-64;
   the sharded core re-runs the figure at 4096 ranks. *)

type big_config = {
  big_klass : Workload.Bt_model.klass;
  big_sizes : int list;
  big_period : int;
  big_seed : int;
}

(* Class C (~4.1e4 core-seconds) keeps the run long enough at 4096
   ranks (~10 s of compute) for a 6 s fault period to land several
   faults mid-run; class B would complete before the first one. *)
let big_default_config =
  { big_klass = Workload.Bt_model.C; big_sizes = [ 1024; 4096 ]; big_period = 6; big_seed = 700 }

(* At 64/256 ranks class C runs for hundreds of simulated seconds;
   class B with a longer period keeps the smoke bounded while still
   injecting. *)
let big_quick_config =
  { big_default_config with big_klass = Workload.Bt_model.B; big_sizes = [ 64; 256 ]; big_period = 30 }

let big_protocols =
  [
    Mpivcl.Config.Non_blocking;
    Mpivcl.Config.Blocking;
    Mpivcl.Config.Sender_logging;
  ]

(* At thousands of ranks the paper's 3-server checkpoint tier would need
   hundreds of simulated seconds per wave — no wave could ever commit
   between two faults and every restart-based run would degenerate to
   non-terminating. Scale the storage tier with the machine (as any real
   deployment at this size would) so a wave commits in a few seconds,
   and shorten the wave interval to match the shorter time-to-solution.
   The §5.3 dispatcher race fires almost surely at one fault per few
   seconds, freezing every restart-based run; this figure measures
   scaling cost, not the (separately reproduced) bug, so it runs the
   fixed dispatcher. *)
let big_cfg protocol ~n_ranks =
  {
    (Mpivcl.Config.default ~n_ranks) with
    Mpivcl.Config.protocol;
    n_ckpt_servers = 64;
    server_bandwidth = 4e9;
    wave_interval = 2.0;
    dispatcher_buggy = false;
    (* The 2006 testbed's termination lags (up to 4 s, with a 6.5%
       chance of a +14 s straggler mid-transfer) are per-daemon draws:
       the max over thousands of daemons makes every global restart
       take ~18 simulated seconds, longer than any fault period worth
       measuring. Model machine-speed teardown instead. *)
    term_lag_min = 0.1;
    term_lag_max = 0.5;
    term_straggler_prob = 0.0;
    (* The eager all-to-all daemon mesh is quadratic in ranks; at
       thousands of ranks the BT exchange only touches O(neighbours)
       links, so channels open on first send. *)
    lazy_peer_mesh = true;
  }

let run_big ?jobs ?(config = big_default_config) () =
  List.concat_map
    (fun n_ranks ->
      let n_machines = Harness.machines_for n_ranks in
      let scenario =
        Some
          (Fail_lang.Paper_scenarios.frequency ~n_machines ~period:config.big_period)
      in
      List.concat_map
        (fun protocol ->
          let cfg = big_cfg protocol ~n_ranks in
          let name = Mpivcl.Config.protocol_name protocol in
          [
            Harness.cell
              ~tag:(Printf.sprintf "BT %d %s (no faults)" n_ranks name)
              ~reps:1 ~base_seed:config.big_seed
              (fun ~seed ->
                Harness.run_bt ~cfg ~klass:config.big_klass ~n_ranks ~n_machines
                  ~scenario:None ~seed ());
            Harness.cell
              ~tag:(Printf.sprintf "BT %d %s (1/%ds)" n_ranks name config.big_period)
              ~reps:1
              ~base_seed:(config.big_seed + 50)
              (fun ~seed ->
                Harness.run_bt ~cfg ~klass:config.big_klass ~n_ranks ~n_machines
                  ~scenario ~seed ());
          ])
        big_protocols)
    config.big_sizes
  |> Harness.campaign ?jobs
  |> List.map (fun (label, results) -> Harness.aggregate ~label results)

let render_big aggs =
  Harness.render_table ~title:"Figure 6 at simulation scale (3 protocol families)" aggs

let big_paper_note =
  "Beyond the paper: the physical FAIL-MPI testbed topped out at BT-64 on\n\
   Grid'5000; the sharded simulation core re-runs the Figure 6 protocol\n\
   (no-fault baseline vs one fault every few seconds) at 1024 and 4096\n\
   ranks across the non-blocking, blocking and sender-logging families.\n\
   Checksums of completed runs are verified against the sequential\n\
   reference; rollback-recovery cost grows with scale exactly as the\n\
   paper's trend line predicts."

let paper_note =
  "Paper (Fig. 6): no-fault times decrease with scale (~370 s at BT-25 down\n\
   to ~150 s at BT-64); with one fault every 50 s the times are 1x..2.5x\n\
   the no-fault times with variance growing with scale; one of five BT-25\n\
   runs was non-terminating (largest per-rank images: checkpoint waves\n\
   synchronised by chance with the injection period); no buggy runs."
