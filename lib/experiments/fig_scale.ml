type config = {
  klass : Workload.Bt_model.klass;
  sizes : int list;
  period : int;
  reps : int;
  base_seed : int;
}

let default_config =
  {
    klass = Workload.Bt_model.B;
    sizes = [ 25; 36; 49; 64 ];
    period = 50;
    reps = 5;
    base_seed = 200;
  }

let quick_config = { default_config with sizes = [ 25; 49 ]; reps = 2 }

let run ?jobs ?(config = default_config) () =
  List.concat_map
    (fun n_ranks ->
      let n_machines = Harness.machines_for n_ranks in
      let scenario =
        Some (Fail_lang.Paper_scenarios.frequency ~n_machines ~period:config.period)
      in
      [
        Harness.cell
          ~tag:(Printf.sprintf "BT %d (no faults)" n_ranks)
          ~reps:config.reps ~base_seed:config.base_seed
          (fun ~seed ->
            Harness.run_bt ~klass:config.klass ~n_ranks ~n_machines ~scenario:None ~seed ());
        Harness.cell
          ~tag:(Printf.sprintf "BT %d (1/%ds)" n_ranks config.period)
          ~reps:config.reps
          ~base_seed:(config.base_seed + 50)
          (fun ~seed ->
            Harness.run_bt ~klass:config.klass ~n_ranks ~n_machines ~scenario ~seed ());
      ])
    config.sizes
  |> Harness.campaign ?jobs
  |> List.map (fun (label, results) -> Harness.aggregate ~label results)

let render aggs = Harness.render_table ~title:"Figure 6: impact of scale (1 fault every 50 s)" aggs

let paper_note =
  "Paper (Fig. 6): no-fault times decrease with scale (~370 s at BT-25 down\n\
   to ~150 s at BT-64); with one fault every 50 s the times are 1x..2.5x\n\
   the no-fault times with variance growing with scale; one of five BT-25\n\
   runs was non-terminating (largest per-rank images: checkpoint waves\n\
   synchronised by chance with the injection period); no buggy runs."
