type case = Baseline | Kill_one | Storm | Quorum_loss

type config = {
  klass : Workload.Bt_model.klass;
  n_ranks : int;
  degree : int;
  spares : int;
  n_machines : int;
  cases : case list;
  reps : int;
  base_seed : int;
}

(* Same 22-machine cluster as the protocol-family comparison (degree-2
   replication needs 20 hosts; the shrink backend parks its warm spares
   on hosts 9 and 10), so all five backends face the exact same scenario
   text. Fault targets stay below rank 9: on every layout that hits a
   "primary" — a rollback daemon, a slot-0 replica, a ulfm member. *)
let default_config =
  {
    klass = Workload.Bt_model.A;
    n_ranks = 9;
    degree = 2;
    spares = 2;
    n_machines = 22;
    cases = [ Baseline; Kill_one; Storm; Quorum_loss ];
    reps = 3;
    base_seed = 2100;
  }

let quick_config = { default_config with cases = [ Kill_one; Quorum_loss ]; reps = 2 }

let case_name = function
  | Baseline -> "no faults"
  | Kill_one -> "kill x1"
  | Storm -> "storm k3+cut"
  | Quorum_loss -> "quorum loss"

(* The four cells of the recovery-time vs answer-quality grid:
   - [Kill_one]: one mid-run kill — the rollback families pay a recovery
     wave, replication a failover, the shrink backend one agreement.
   - [Storm]: staggered kills then a partition during the agreement they
     triggered (scenarios/shrink_storm.fail): the unsuspected membership
     is exactly a majority of the original epoch, so shrink must still
     decide and complete degraded.
   - [Quorum_loss]: six of the eleven epoch-0 members (nine ranks plus
     the two warm spares on hosts 9 and 10) are cut off, each isolated —
     no side of the fabric holds a majority of the superseded epoch, so
     the survivor agreement must refuse to decide (clean abort), never
     split-brain; backends without a give-up path wedge net-hung. *)
let scenario_of config = function
  | Baseline -> None
  | Kill_one ->
      Some
        (Fail_lang.Codegen.Scenario.source ~n_machines:config.n_machines
           [
             {
               Fail_lang.Codegen.Scenario.machine = 3;
               anchor = Fail_lang.Codegen.Scenario.After 30;
               kind = Fail_lang.Codegen.Scenario.Kill;
             };
           ])
  | Storm ->
      Some
        (Fail_lang.Paper_scenarios.shrink_storm ~n_machines:config.n_machines
           ~targets:[ 1; 5; 7 ] ~start:25 ~step:3 ~victim:2 ~lag:2)
  | Quorum_loss ->
      Some
        (Fail_lang.Codegen.Scenario.source ~n_machines:config.n_machines
           (List.mapi
              (fun i m ->
                {
                  Fail_lang.Codegen.Scenario.machine = m;
                  anchor = Fail_lang.Codegen.Scenario.After (if i = 0 then 30 else 1);
                  kind = Fail_lang.Codegen.Scenario.Partition;
                })
              [ 3; 4; 5; 6; 7; 8 ]))

type row = { family : string; case : case; agg : Harness.agg }

(* Every registered backend joins the grid; the shrink family runs with
   the configured warm-spare pool instead of the registry default of 0. *)
let families config =
  let base = Mpivcl.Config.default ~n_ranks:config.n_ranks in
  List.map
    (fun (module B : Failmpi.Backend.S) ->
      let protocol =
        match B.protocol ~replicas:config.degree with
        | Mpivcl.Config.Ulfm _ -> Mpivcl.Config.Ulfm { spares = config.spares }
        | p -> p
      in
      ( B.family_label ~replicas:config.degree,
        { base with Mpivcl.Config.protocol } ))
    (Failmpi.Backend.all ())

let label_of family case = Printf.sprintf "%s %s" (case_name case) family

let run ?jobs ?(config = default_config) () =
  List.concat_map
    (fun case ->
      let scenario = scenario_of config case in
      List.map
        (fun (family, cfg) ->
          Harness.cell
            ~tag:(family, case, label_of family case)
            ~reps:config.reps ~base_seed:config.base_seed
            (fun ~seed ->
              Harness.run_bt ~cfg ~klass:config.klass ~n_ranks:config.n_ranks
                ~n_machines:config.n_machines ~scenario ~seed ()))
        (families config))
    config.cases
  |> Harness.campaign ?jobs
  |> List.map (fun ((family, case, label), results) ->
         { family; case; agg = Harness.aggregate ~label results })

let aggs rows = List.map (fun r -> r.agg) rows

let render rows =
  let title = "Shrink-and-continue: recovery time vs answer quality, five backends" in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (title ^ "\n");
  Buffer.add_string buf (String.make (String.length title) '-' ^ "\n");
  Buffer.add_string buf
    (Printf.sprintf "%-32s %5s %8s %6s %5s %7s %6s %6s %6s %7s %5s\n" "configuration"
       "runs" "time(s)" "shrink" "surv" "promote" "adopt" "%degr" "%abrt" "%wedged"
       "chk");
  List.iter
    (fun r ->
      let a = r.agg in
      Buffer.add_string buf
        (Printf.sprintf "%-32s %5d %8s %6.1f %5s %7.1f %6.1f %6.0f %6.0f %7.0f %5s\n"
           a.Harness.label a.Harness.runs
           (match a.Harness.mean_time with
           | Some t -> Printf.sprintf "%.0f" t
           | None -> "-")
           (Harness.counter a "recoveries")
           (match a.Harness.mean_survivors with
           | Some s -> Printf.sprintf "%.1f" s
           | None -> "-")
           (Harness.counter a "spares_promoted")
           (Harness.counter a "ranks_adopted")
           a.Harness.pct_degraded a.Harness.pct_aborted
           (a.Harness.pct_non_terminating +. a.Harness.pct_buggy
          +. a.Harness.pct_net_hung)
           (if a.Harness.checksum_failures = 0 then "ok"
            else Printf.sprintf "%d BAD" a.Harness.checksum_failures)))
    rows;
  Buffer.contents buf

let paper_note =
  "Expectation: the rollback families restore the full membership after\n\
   every kill (time grows with each recovery wave) and wedge net-hung\n\
   when the fabric never heals; replication absorbs kills as failovers\n\
   until a rank's replicas are exhausted. The shrink family instead\n\
   completes degraded — same checksum, smaller machine — promoting warm\n\
   spares and adopting orphaned ranks, so its time column buys answer\n\
   quality with capacity. In the quorum-loss cell no side of the cut\n\
   holds a majority of the superseded epoch: the survivor agreement\n\
   refuses to decide and aborts cleanly (never two different\n\
   memberships), while backends without a give-up path time out.\n\
   Checksums of completed and degraded runs must always match the\n\
   fault-free reference."
