type config = {
  klass : Workload.Bt_model.klass;
  sizes : int list;
  period : int;
  reps : int;
  base_seed : int;
}

let default_config =
  {
    klass = Workload.Bt_model.B;
    sizes = [ 25; 36; 49; 64 ];
    period = 50;
    reps = 6;
    base_seed = 400;
  }

let quick_config = { default_config with sizes = [ 25; 49 ]; reps = 3 }

let run ?jobs ?(config = default_config) () =
  List.concat_map
    (fun n_ranks ->
      let n_machines = Harness.machines_for n_ranks in
      let scenario =
        Some (Fail_lang.Paper_scenarios.synchronized ~n_machines ~period:config.period)
      in
      [
        Harness.cell
          ~tag:(Printf.sprintf "BT %d (no faults)" n_ranks)
          ~reps:2 ~base_seed:config.base_seed
          (fun ~seed ->
            Harness.run_bt ~klass:config.klass ~n_ranks ~n_machines ~scenario:None ~seed ());
        Harness.cell
          ~tag:(Printf.sprintf "BT %d (2 sync faults)" n_ranks)
          ~reps:config.reps
          ~base_seed:(config.base_seed + 50)
          (fun ~seed ->
            Harness.run_bt ~klass:config.klass ~n_ranks ~n_machines ~scenario ~seed ());
      ])
    config.sizes
  |> Harness.campaign ?jobs
  |> List.map (fun (label, results) -> Harness.aggregate ~label results)

let render aggs =
  Harness.render_table ~title:"Figure 9: impact of synchronized faults (2nd on recovery onload)"
    aggs

let paper_note =
  "Paper (Fig. 9): even with only two synchronized faults, for every scale\n\
   some experiments froze because of the dispatcher bug, while a large\n\
   majority completed — showing the bug lives in the recovery code and\n\
   does not depend on the application size."
