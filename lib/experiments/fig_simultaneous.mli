(** Figure 7 — impact of simultaneous faults.

    BT-49 class B; X back-to-back faults injected every 50 s for X in
    1..5, 6 repetitions. The stress test that first exposed the recovery
    bug: at 5 simultaneous faults about one third of the experiments
    freeze during a recovery (red bars). *)

type config = {
  klass : Workload.Bt_model.klass;
  n_ranks : int;
  n_machines : int;
  period : int;
  counts : int list;
  reps : int;
  base_seed : int;
}

val default_config : config
val quick_config : config

(** [?jobs] as in {!Harness.campaign}. *)
val run : ?jobs:int -> ?config:config -> unit -> Harness.agg list
val render : Harness.agg list -> string
val paper_note : string
