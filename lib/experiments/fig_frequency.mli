(** Figure 5 — impact of fault frequency.

    BT class B on 49 ranks (53 machines), checkpoint wave every 30 s; one
    fault injected every X seconds for X in {none, 65, 60, 55, 50, 45,
    40}, 6 repetitions each. Reports mean execution time of terminated
    experiments and the percentages of non-terminating and buggy runs. *)

type config = {
  klass : Workload.Bt_model.klass;
  n_ranks : int;
  n_machines : int;
  periods : int option list;  (** [None] = no faults *)
  reps : int;
  base_seed : int;
}

val default_config : config

(** [quick_config] cuts repetitions for smoke runs. *)
val quick_config : config

(** [run ?jobs ?config ()] replays the figure's grid through one
    {!Harness.campaign} ([?jobs] as in {!Harness.campaign}). *)
val run : ?jobs:int -> ?config:config -> unit -> Harness.agg list
val render : Harness.agg list -> string

(** The values read off the paper's Figure 5, for EXPERIMENTS.md. *)
val paper_note : string
