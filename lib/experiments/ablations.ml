let dispatcher_fix ?(reps = 9) ?(n_ranks = 49) () =
  let n_machines = Harness.machines_for n_ranks in
  let klass = Workload.Bt_model.B in
  let cfg buggy = { (Mpivcl.Config.default ~n_ranks) with Mpivcl.Config.dispatcher_buggy = buggy } in
  let scenarios =
    [
      ( "5 faults/50s",
        Fail_lang.Paper_scenarios.simultaneous ~n_machines ~period:50 ~count:5 );
      ("state-sync", Fail_lang.Paper_scenarios.state_synchronized ~n_machines ~period:50);
    ]
  in
  List.concat_map
    (fun (name, scenario) ->
      List.map
        (fun buggy ->
          let results =
            Harness.replicate ~reps ~base_seed:1000 (fun ~seed ->
                Harness.run_bt ~cfg:(cfg buggy) ~klass ~n_ranks ~n_machines
                  ~scenario:(Some scenario) ~seed ())
          in
          Harness.aggregate
            ~label:
              (Printf.sprintf "%s (%s)" name
                 (if buggy then "historical" else "corrected"))
            results)
        [ true; false ])
    scenarios

let protocol_overhead ?(n_ranks = 49) ?(intervals = [ 10.0; 30.0; 60.0 ]) () =
  let n_machines = Harness.machines_for n_ranks in
  let klass = Workload.Bt_model.B in
  List.concat_map
    (fun interval ->
      List.map
        (fun protocol ->
          let cfg =
            {
              (Mpivcl.Config.default ~n_ranks) with
              Mpivcl.Config.protocol;
              wave_interval = interval;
            }
          in
          let results =
            Harness.replicate ~reps:2 ~base_seed:700 (fun ~seed ->
                Harness.run_bt ~cfg ~klass ~n_ranks ~n_machines ~scenario:None ~seed ())
          in
          Harness.aggregate
            ~label:
              (Printf.sprintf "wave %2.0fs %s" interval (Mpivcl.Config.protocol_name protocol))
            results)
        [ Mpivcl.Config.Non_blocking; Mpivcl.Config.Blocking ])
    intervals

let wave_interval ?(reps = 4) ?(n_ranks = 49) ?(intervals = [ 10.0; 20.0; 30.0; 40.0 ]) () =
  let n_machines = Harness.machines_for n_ranks in
  let klass = Workload.Bt_model.B in
  let scenario = Some (Fail_lang.Paper_scenarios.frequency ~n_machines ~period:50) in
  List.map
    (fun interval ->
      let cfg =
        { (Mpivcl.Config.default ~n_ranks) with Mpivcl.Config.wave_interval = interval }
      in
      let results =
        Harness.replicate ~reps ~base_seed:800 (fun ~seed ->
            Harness.run_bt ~cfg ~klass ~n_ranks ~n_machines ~scenario ~seed ())
      in
      Harness.aggregate ~label:(Printf.sprintf "ckpt every %2.0fs" interval) results)
    intervals

let protocol_comparison ?(reps = 4) ?(n_ranks = 49) ?(periods = [ 65; 50; 40; 30 ]) () =
  let n_machines = Harness.machines_for n_ranks in
  let klass = Workload.Bt_model.B in
  List.concat_map
    (fun period ->
      let scenario = Some (Fail_lang.Paper_scenarios.frequency ~n_machines ~period) in
      List.map
        (fun (label, cfg) ->
          let results =
            Harness.replicate ~reps ~base_seed:1100 (fun ~seed ->
                Harness.run_bt ~cfg ~klass ~n_ranks ~n_machines ~scenario ~seed ())
          in
          Harness.aggregate ~label:(Printf.sprintf "1/%ds %s" period label) results)
        [
          (* Vdummy baseline: no checkpoint ever commits, so every fault
             restarts the application from scratch. *)
          ( "Vdummy (no ckpt)",
            { (Mpivcl.Config.default ~n_ranks) with Mpivcl.Config.wave_interval = 1e9 } );
          ( "Vcl (coordinated)",
            { (Mpivcl.Config.default ~n_ranks) with Mpivcl.Config.protocol = Mpivcl.Config.Non_blocking } );
          ( "V2 (msg logging)",
            { (Mpivcl.Config.default ~n_ranks) with Mpivcl.Config.protocol = Mpivcl.Config.Sender_logging } );
        ])
    periods

let render_protocol_comparison aggs =
  Harness.render_table
    ~title:"Ablation: coordinated checkpointing vs sender-based message logging" aggs

let render_dispatcher_fix aggs =
  Harness.render_table ~title:"Ablation: historical vs corrected dispatcher" aggs

let render_protocol_overhead aggs =
  Harness.render_table ~title:"Ablation: non-blocking vs blocking Chandy-Lamport (no faults)" aggs

let render_wave_interval aggs =
  Harness.render_table ~title:"Ablation: checkpoint interval under 1 fault / 50 s" aggs
