let aggregate_campaign ?jobs cells =
  List.map (fun (label, results) -> Harness.aggregate ~label results)
    (Harness.campaign ?jobs cells)

let dispatcher_fix ?jobs ?(reps = 9) ?(n_ranks = 49) () =
  let n_machines = Harness.machines_for n_ranks in
  let klass = Workload.Bt_model.B in
  let cfg buggy = { (Mpivcl.Config.default ~n_ranks) with Mpivcl.Config.dispatcher_buggy = buggy } in
  let scenarios =
    [
      ( "5 faults/50s",
        Fail_lang.Paper_scenarios.simultaneous ~n_machines ~period:50 ~count:5 );
      ("state-sync", Fail_lang.Paper_scenarios.state_synchronized ~n_machines ~period:50);
    ]
  in
  List.concat_map
    (fun (name, scenario) ->
      List.map
        (fun buggy ->
          Harness.cell
            ~tag:
              (Printf.sprintf "%s (%s)" name
                 (if buggy then "historical" else "corrected"))
            ~reps ~base_seed:1000
            (fun ~seed ->
              Harness.run_bt ~cfg:(cfg buggy) ~klass ~n_ranks ~n_machines
                ~scenario:(Some scenario) ~seed ()))
        [ true; false ])
    scenarios
  |> aggregate_campaign ?jobs

let protocol_overhead ?jobs ?(n_ranks = 49) ?(intervals = [ 10.0; 30.0; 60.0 ]) () =
  let n_machines = Harness.machines_for n_ranks in
  let klass = Workload.Bt_model.B in
  List.concat_map
    (fun interval ->
      List.map
        (fun protocol ->
          let cfg =
            {
              (Mpivcl.Config.default ~n_ranks) with
              Mpivcl.Config.protocol;
              wave_interval = interval;
            }
          in
          Harness.cell
            ~tag:
              (Printf.sprintf "wave %2.0fs %s" interval (Mpivcl.Config.protocol_name protocol))
            ~reps:2 ~base_seed:700
            (fun ~seed ->
              Harness.run_bt ~cfg ~klass ~n_ranks ~n_machines ~scenario:None ~seed ()))
        [ Mpivcl.Config.Non_blocking; Mpivcl.Config.Blocking ])
    intervals
  |> aggregate_campaign ?jobs

let wave_interval ?jobs ?(reps = 4) ?(n_ranks = 49) ?(intervals = [ 10.0; 20.0; 30.0; 40.0 ]) () =
  let n_machines = Harness.machines_for n_ranks in
  let klass = Workload.Bt_model.B in
  let scenario = Some (Fail_lang.Paper_scenarios.frequency ~n_machines ~period:50) in
  List.map
    (fun interval ->
      let cfg =
        { (Mpivcl.Config.default ~n_ranks) with Mpivcl.Config.wave_interval = interval }
      in
      Harness.cell
        ~tag:(Printf.sprintf "ckpt every %2.0fs" interval)
        ~reps ~base_seed:800
        (fun ~seed -> Harness.run_bt ~cfg ~klass ~n_ranks ~n_machines ~scenario ~seed ()))
    intervals
  |> aggregate_campaign ?jobs

let protocol_comparison ?jobs ?(reps = 4) ?(n_ranks = 49) ?(periods = [ 65; 50; 40; 30 ]) () =
  let n_machines = Harness.machines_for n_ranks in
  let klass = Workload.Bt_model.B in
  List.concat_map
    (fun period ->
      let scenario = Some (Fail_lang.Paper_scenarios.frequency ~n_machines ~period) in
      List.map
        (fun (label, cfg) ->
          Harness.cell
            ~tag:(Printf.sprintf "1/%ds %s" period label)
            ~reps ~base_seed:1100
            (fun ~seed ->
              Harness.run_bt ~cfg ~klass ~n_ranks ~n_machines ~scenario ~seed ()))
        [
          (* Vdummy baseline: no checkpoint ever commits, so every fault
             restarts the application from scratch. *)
          ( "Vdummy (no ckpt)",
            { (Mpivcl.Config.default ~n_ranks) with Mpivcl.Config.wave_interval = 1e9 } );
          ( "Vcl (coordinated)",
            { (Mpivcl.Config.default ~n_ranks) with Mpivcl.Config.protocol = Mpivcl.Config.Non_blocking } );
          ( "V2 (msg logging)",
            { (Mpivcl.Config.default ~n_ranks) with Mpivcl.Config.protocol = Mpivcl.Config.Sender_logging } );
        ])
    periods
  |> aggregate_campaign ?jobs

let render_protocol_comparison aggs =
  Harness.render_table
    ~title:"Ablation: coordinated checkpointing vs sender-based message logging" aggs

let render_dispatcher_fix aggs =
  Harness.render_table ~title:"Ablation: historical vs corrected dispatcher" aggs

let render_protocol_overhead aggs =
  Harness.render_table ~title:"Ablation: non-blocking vs blocking Chandy-Lamport (no faults)" aggs

let render_wave_interval aggs =
  Harness.render_table ~title:"Ablation: checkpoint interval under 1 fault / 50 s" aggs
