type row = { delay : int; agg : Harness.agg }

(* One controller on machine 0 (the other machines carry no FAIL daemon
   and suffer no faults). It waits for the second completed checkpoint
   wave of its controlled daemon, then injects a single fault [delay]
   seconds later. *)
let scenario ~n_machines ~delay =
  ignore n_machines;
  Printf.sprintf
    {|
Daemon DELAYED {
  node 1:
    onload -> continue, goto 2;
  node 2:
    watch(wave) && @wave >= 2 -> goto 3;
  node 3:
    time t = %d;
    timer -> halt, goto 4;
  node 4:
    onload -> continue, goto 4;
    onexit -> goto 4;
    onerror -> goto 4;
}
G1[1] : DELAYED on machines 0 .. 0;
|}
    delay

let run ?jobs ?(klass = Workload.Bt_model.B) ?(n_ranks = 49) ?(delays = [ 0; 5; 10; 15; 20; 25 ])
    ?(reps = 3) () =
  let n_machines = Harness.machines_for n_ranks in
  List.map
    (fun delay ->
      Harness.cell ~tag:delay ~reps ~base_seed:900 (fun ~seed ->
          Harness.run_bt ~klass ~n_ranks ~n_machines
            ~scenario:(Some (scenario ~n_machines ~delay))
            ~seed ()))
    delays
  |> Harness.campaign ?jobs
  |> List.map (fun (delay, results) ->
         {
           delay;
           agg =
             Harness.aggregate ~label:(Printf.sprintf "delay %2d s after wave" delay) results;
         })

let render rows =
  Harness.render_table
    ~title:"Planned feature: delay between checkpoint wave and fault vs execution time"
    (List.map (fun r -> r.agg) rows)
