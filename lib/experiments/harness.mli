(** Experiment harness: replication, aggregation and table rendering.

    Mirrors the paper's methodology (§5): every configuration is run
    several times with different seeds under a 1500 s timeout; runs are
    classified completed / non-terminating / buggy; completed runs report
    the mean execution time. *)

(** Aggregated view of one experimental configuration. *)
type agg = {
  label : string;
  runs : int;
  completed : int;  (** finished on the full original membership *)
  degraded : int;
      (** finished, but on a shrunken communicator (ulfm backend) —
          counted in the time statistics, kept apart in the tallies *)
  aborted : int;  (** the backend gave up cleanly (e.g. no shrink quorum) *)
  non_terminating : int;
  buggy : int;
  net_hung : int;  (** wedges explained by an actively faulty network *)
  ckpt_lost : int;
      (** a restart found no complete checkpoint image on any storage
          replica — the run ended in the [Ckpt_lost] verdict *)
  mean_time : float option;  (** over completed and degraded runs *)
  stddev_time : float option;
  mean_survivors : float option;  (** over degraded runs *)
  pct_degraded : float;
  pct_aborted : float;
  pct_non_terminating : float;
  pct_buggy : float;
  pct_net_hung : float;
  pct_ckpt_lost : float;
  mean_faults : float;  (** injected faults per run *)
  checksum_failures : int;
      (** completed or degraded runs whose final checksum differs from
          the fault-free reference — must always be 0 *)
  mean_counters : (string * float) list;
      (** per-run mean of every backend counter
          ({!Failmpi.Backend.Metrics.counters}) seen in the results,
          sorted by counter name so mixed-backend campaigns render a
          stable column order *)
}

(** [replicate ?jobs ~reps ~base_seed run] executes [run ~seed] for
    seeds [base_seed, base_seed+1, ...], fanned out over a {!Par}
    domain pool ([?jobs] defaults to {!Par.default_jobs}; [~jobs:1] is
    the plain sequential loop). Results are in seed order and identical
    to the sequential path — every run is a pure function of its
    seed. *)
val replicate :
  ?jobs:int ->
  reps:int ->
  base_seed:int ->
  (seed:int64 -> Failmpi.Run.result) ->
  Failmpi.Run.result list

(** One configuration of a campaign: [reps] runs seeded
    [base_seed, base_seed+1, ...], tagged for regrouping. *)
type 'a cell

val cell :
  tag:'a ->
  reps:int ->
  base_seed:int ->
  (seed:int64 -> Failmpi.Run.result) ->
  'a cell

(** [campaign ?jobs cells] runs every (cell, seed) job of the campaign
    through one domain pool — the single parallelism chokepoint used by
    all experiment modules — and regroups results per cell, in cell
    order, seeds in order. Parallel and sequential execution produce
    identical results. *)
val campaign : ?jobs:int -> 'a cell list -> ('a * Failmpi.Run.result list) list

(** [aggregate ~label results] summarises replicated runs. *)
val aggregate : label:string -> Failmpi.Run.result list -> agg

(** [counter agg name] is the mean of backend counter [name]
    (0.0 when the backends reported no such counter). *)
val counter : agg -> string -> float

(** [render_table ~title aggs] prints the paper-style rows: label, mean
    execution time of terminated runs, %% non-terminating, %% buggy. *)
val render_table : title:string -> agg list -> string

(** [aggs_csv aggs] renders aggregates as CSV for external plotting. The
    fixed verdict columns are followed by one column per backend counter
    — the sorted union across all aggregates, so the sheet is
    rectangular and the column order is independent of row order. *)
val aggs_csv : agg list -> string

(** [bt_spec ?cfg ?trace_level ~klass ~n_ranks ~n_machines ~scenario ()]
    builds the standard spec used by all figures: a BT application with
    the paper's 53-machines-for-49-ranks style spare allocation.
    [trace_level] defaults to {!Simkern.Trace.Summary} — campaigns only
    read aggregates, so per-message trace chatter is skipped; pass
    [~trace_level:Full] for qualitative runs fed to {!Trace_analysis}. *)
val bt_spec :
  ?cfg:Mpivcl.Config.t ->
  ?trace_level:Simkern.Trace.level ->
  klass:Workload.Bt_model.klass ->
  n_ranks:int ->
  n_machines:int ->
  scenario:string option ->
  unit ->
  Failmpi.Run.spec

(** [run_bt ?cfg ?trace_level ~klass ~n_ranks ~n_machines ~scenario ~seed ()]
    executes one BT run with checksum validation. *)
val run_bt :
  ?cfg:Mpivcl.Config.t ->
  ?trace_level:Simkern.Trace.level ->
  klass:Workload.Bt_model.klass ->
  n_ranks:int ->
  n_machines:int ->
  scenario:string option ->
  seed:int64 ->
  unit ->
  Failmpi.Run.result

(** [machines_for n_ranks] is the paper-style host allocation
    ([n_ranks + 4] spares; 53 for BT-49).

    @raise Invalid_argument when [n_ranks <= 0]. *)
val machines_for : int -> int
