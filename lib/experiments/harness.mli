(** Experiment harness: replication, aggregation and table rendering.

    Mirrors the paper's methodology (§5): every configuration is run
    several times with different seeds under a 1500 s timeout; runs are
    classified completed / non-terminating / buggy; completed runs report
    the mean execution time. *)

(** Aggregated view of one experimental configuration. *)
type agg = {
  label : string;
  runs : int;
  completed : int;
  non_terminating : int;
  buggy : int;
  mean_time : float option;  (** over completed runs *)
  stddev_time : float option;
  pct_non_terminating : float;
  pct_buggy : float;
  mean_faults : float;  (** injected faults per run *)
  checksum_failures : int;
      (** completed runs whose final checksum differs from the fault-free
          reference — must always be 0 *)
  mean_counters : (string * float) list;
      (** per-run mean of every backend counter
          ({!Failmpi.Backend.Metrics.counters}) seen in the results, so
          protocol-specific counters aggregate without per-protocol
          code *)
}

(** [replicate ~reps ~base_seed run] executes [run ~seed] for seeds
    [base_seed, base_seed+1, ...]. *)
val replicate :
  reps:int -> base_seed:int -> (seed:int64 -> Failmpi.Run.result) -> Failmpi.Run.result list

(** [aggregate ~label results] summarises replicated runs. *)
val aggregate : label:string -> Failmpi.Run.result list -> agg

(** [counter agg name] is the mean of backend counter [name]
    (0.0 when the backends reported no such counter). *)
val counter : agg -> string -> float

(** [render_table ~title aggs] prints the paper-style rows: label, mean
    execution time of terminated runs, %% non-terminating, %% buggy. *)
val render_table : title:string -> agg list -> string

(** [aggs_csv aggs] renders aggregates as CSV for external plotting. *)
val aggs_csv : agg list -> string

(** [bt_spec ?cfg ~klass ~n_ranks ~n_machines ~scenario ()] builds the
    standard spec used by all figures: a BT application with the paper's
    53-machines-for-49-ranks style spare allocation. *)
val bt_spec :
  ?cfg:Mpivcl.Config.t ->
  klass:Workload.Bt_model.klass ->
  n_ranks:int ->
  n_machines:int ->
  scenario:string option ->
  unit ->
  Failmpi.Run.spec

(** [run_bt ?cfg ~klass ~n_ranks ~n_machines ~scenario ~seed ()] executes
    one BT run with checksum validation. *)
val run_bt :
  ?cfg:Mpivcl.Config.t ->
  klass:Workload.Bt_model.klass ->
  n_ranks:int ->
  n_machines:int ->
  scenario:string option ->
  seed:int64 ->
  unit ->
  Failmpi.Run.result

(** [machines_for n_ranks] is the paper-style host allocation
    ([n_ranks + 4] spares; 53 for BT-49). *)
val machines_for : int -> int
