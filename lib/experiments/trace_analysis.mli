(** Execution-trace analysis.

    The paper classifies runs and locates bugs "by analysing the execution
    trace" (§5). This module extracts the protocol-level story from a
    run's {!Simkern.Trace}: when faults landed, how long each recovery
    took, the checkpoint-commit timeline, and a per-phase account of where
    the execution time went. *)

open Simkern

(** One recovery episode: from failure detection to recovery completion
    (coordinated protocols) or rank resumption (sender logging). *)
type recovery = {
  rec_start : float;
  rec_end : float option;  (** [None]: still in progress at the end (frozen?) *)
  trigger_rank : int option;
}

type summary = {
  fault_times : float list;  (** FAIL [halt] injections *)
  recoveries : recovery list;
  commit_times : float list;  (** global wave commits or per-rank commits *)
  confusion_time : float option;  (** first dispatcher-confused event *)
  failover_times : float list;
      (** replication backend: zero-rollback replica failovers *)
  respawn_times : float list;
      (** replication backend: replicas restored via state transfer *)
  exhaustion_time : float option;
      (** replication backend: first replication-exhausted event *)
  total_recovery_time : float;  (** sum of closed recovery episodes *)
  span : float;  (** time of the last trace entry *)
}

val summarize : Trace.t -> summary

(** [recovery_durations s] returns the closed episodes' durations. *)
val recovery_durations : summary -> float list

(** [pp ppf s] prints a human-readable report. *)
val pp : Format.formatter -> summary -> unit

(** [events_csv trace] renders the raw trace as CSV
    ([time,source,event,detail]) for external tooling. *)
val events_csv : Trace.t -> string
