(** Ablation studies for the design choices called out in DESIGN.md.

    Every study fans its grid out through one {!Harness.campaign};
    [?jobs] is as in {!Harness.campaign}. *)

(** Buggy vs corrected dispatcher under the two bug-exposing scenarios
    (Fig. 7 at 5 faults and Fig. 11): the corrected dispatcher must never
    freeze. *)
val dispatcher_fix : ?jobs:int -> ?reps:int -> ?n_ranks:int -> unit -> Harness.agg list

(** Non-blocking vs blocking Chandy–Lamport without faults at several
    wave intervals: the blocking variant pays for frozen communications
    during each wave. *)
val protocol_overhead :
  ?jobs:int -> ?n_ranks:int -> ?intervals:float list -> unit -> Harness.agg list

(** Checkpoint-interval sweep under one fault every 50 s: shows the
    frequency/interval crossover that explains Figure 5's 45 s anomaly. *)
val wave_interval :
  ?jobs:int -> ?reps:int -> ?n_ranks:int -> ?intervals:float list -> unit -> Harness.agg list

(** Coordinated checkpointing (Vcl) vs sender-based message logging
    (MPICH-V2-style) under the same Figure 5 fault-frequency scenarios —
    the comparison the paper's conclusion proposes (cf. [LBH+04]). The
    logging protocol restarts only the failed rank, so it keeps
    terminating at fault frequencies where the coordinated protocol can
    no longer commit a global wave between faults. *)
val protocol_comparison :
  ?jobs:int -> ?reps:int -> ?n_ranks:int -> ?periods:int list -> unit -> Harness.agg list

val render_protocol_comparison : Harness.agg list -> string

val render_dispatcher_fix : Harness.agg list -> string
val render_protocol_overhead : Harness.agg list -> string
val render_wave_interval : Harness.agg list -> string
