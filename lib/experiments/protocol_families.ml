type config = {
  klass : Workload.Bt_model.klass;
  n_ranks : int;
  degree : int;
  n_machines : int;
  periods : int option list;
  reps : int;
  base_seed : int;
}

(* 9 ranks at degree 2 fit 22 machines (18 replicas + 4 spares); the
   rollback families run on the same cluster so every family sees the
   exact same FAIL scenario text. *)
let default_config =
  {
    klass = Workload.Bt_model.A;
    n_ranks = 9;
    degree = 2;
    n_machines = 22;
    periods = [ None; Some 80; Some 50 ];
    reps = 3;
    base_seed = 1300;
  }

let quick_config = { default_config with periods = [ None; Some 50 ]; reps = 2 }

type row = { family : string; agg : Harness.agg }

(* Every registered backend, not a hard-coded family list: a new backend
   joins the comparison by registering in Backend.Registry. *)
let families config =
  let base = Mpivcl.Config.default ~n_ranks:config.n_ranks in
  List.map
    (fun (module B : Failmpi.Backend.S) ->
      ( B.family_label ~replicas:config.degree,
        { base with Mpivcl.Config.protocol = B.protocol ~replicas:config.degree } ))
    (Failmpi.Backend.all ())

let label_of family = function
  | None -> Printf.sprintf "no faults %s" family
  | Some p -> Printf.sprintf "1/%ds %s" p family

let run ?jobs ?(config = default_config) () =
  List.concat_map
    (fun period ->
      let scenario =
        Option.map
          (fun p ->
            Fail_lang.Paper_scenarios.frequency ~n_machines:config.n_machines ~period:p)
          period
      in
      List.map
        (fun (family, cfg) ->
          Harness.cell
            ~tag:(family, label_of family period)
            ~reps:config.reps ~base_seed:config.base_seed
            (fun ~seed ->
              Harness.run_bt ~cfg ~klass:config.klass ~n_ranks:config.n_ranks
                ~n_machines:config.n_machines ~scenario ~seed ()))
        (families config))
    config.periods
  |> Harness.campaign ?jobs
  |> List.map (fun ((family, label), results) ->
         { family; agg = Harness.aggregate ~label results })

let aggs rows = List.map (fun r -> r.agg) rows

let render rows =
  let title =
    "Protocol families: rollback recovery (Vcl, V2) vs active replication"
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (title ^ "\n");
  Buffer.add_string buf (String.make (String.length title) '-' ^ "\n");
  Buffer.add_string buf
    (Printf.sprintf "%-26s %5s %9s %8s %7s %9s %9s %8s %7s %5s\n" "configuration" "runs"
       "time(s)" "faults" "rollbk" "failover" "respawn" "%nonterm" "%buggy" "chk");
  List.iter
    (fun r ->
      let a = r.agg in
      Buffer.add_string buf
        (Printf.sprintf "%-26s %5d %9s %8.1f %7.1f %9.1f %9.1f %8.0f %7.0f %5s\n"
           a.Harness.label a.Harness.runs
           (match a.Harness.mean_time with
           | Some t -> Printf.sprintf "%.0f" t
           | None -> "-")
           a.Harness.mean_faults
           (Harness.counter a "recoveries")
           (Harness.counter a "failovers")
           (Harness.counter a "respawns")
           a.Harness.pct_non_terminating a.Harness.pct_buggy
           (if a.Harness.checksum_failures = 0 then "ok"
            else Printf.sprintf "%d BAD" a.Harness.checksum_failures)))
    rows;
  Buffer.contents buf

let paper_note =
  "Expectation (paper §6 outlook): the rollback families pay a recovery\n\
   wave per fault (Vcl rolls every rank back, V2 replays the failed rank\n\
   from its logs), so completed-run time grows with fault frequency; the\n\
   replication family absorbs the same faults as zero-rollback failovers\n\
   (rollbk stays 0) at the cost of degree x the compute resources, and\n\
   only exhausts when all replicas of one rank die within the failover\n\
   window. All completed runs must agree on the checksums."
