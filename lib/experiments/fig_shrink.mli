(** Shrink-and-continue campaign: the same kill / partition scenarios
    swept against every registered protocol backend on one cluster —
    the recovery-time vs answer-quality comparison of the headline
    [failmpi_experiments shrink] table.

    Four cells per family: fault-free baseline, one mid-run kill, the
    shrink storm (staggered kills, then a partition during the survivor
    agreement they triggered — [scenarios/shrink_storm.fail]), and a
    quorum-loss partition isolating six of the eleven epoch-0 members
    (ranks plus warm spares) so that no side of the cut holds a majority
    of the superseded epoch — the shrink backend's agreement must
    refuse to decide (clean abort) rather than split-brain. The CI smoke
    runs {!quick_config} (kill and quorum-loss cells only). *)

type case = Baseline | Kill_one | Storm | Quorum_loss

type config = {
  klass : Workload.Bt_model.klass;
  n_ranks : int;
  degree : int;  (** replicas per rank in the replication family *)
  spares : int;  (** warm spare daemons for the shrink family *)
  n_machines : int;
  cases : case list;
  reps : int;
  base_seed : int;
}

val default_config : config
val quick_config : config

val case_name : case -> string

(** [scenario_of config case] is the FAIL source of that grid cell
    ([None] for the baseline) — exposed for tests and qualitative runs. *)
val scenario_of : config -> case -> string option

type row = { family : string; case : case; agg : Harness.agg }

(** [?jobs] as in {!Harness.campaign}. *)
val run : ?jobs:int -> ?config:config -> unit -> row list

(** [aggs rows] projects the plain aggregates (CSV export). *)
val aggs : row list -> Harness.agg list

val render : row list -> string
val paper_note : string
