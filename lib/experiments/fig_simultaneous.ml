type config = {
  klass : Workload.Bt_model.klass;
  n_ranks : int;
  n_machines : int;
  period : int;
  counts : int list;
  reps : int;
  base_seed : int;
}

let default_config =
  {
    klass = Workload.Bt_model.B;
    n_ranks = 49;
    n_machines = 53;
    period = 50;
    counts = [ 1; 2; 3; 4; 5 ];
    reps = 6;
    base_seed = 300;
  }

let quick_config = { default_config with counts = [ 1; 5 ]; reps = 3 }

let run ?jobs ?(config = default_config) () =
  List.map
    (fun count ->
      let scenario =
        Some
          (Fail_lang.Paper_scenarios.simultaneous ~n_machines:config.n_machines
             ~period:config.period ~count)
      in
      Harness.cell
        ~tag:(Printf.sprintf "%d fault%s" count (if count = 1 then "" else "s"))
        ~reps:config.reps ~base_seed:config.base_seed
        (fun ~seed ->
          Harness.run_bt ~klass:config.klass ~n_ranks:config.n_ranks
            ~n_machines:config.n_machines ~scenario ~seed ()))
    config.counts
  |> Harness.campaign ?jobs
  |> List.map (fun (label, results) -> Harness.aggregate ~label results)

let render aggs =
  Harness.render_table ~title:"Figure 7: impact of simultaneous faults (BT-49, every 50 s)" aggs

let paper_note =
  "Paper (Fig. 7): execution time of terminated runs grows with the number\n\
   of simultaneous faults (~500-700 s at 4-5 faults); at 5 (or 6)\n\
   simultaneous faults one third of the experiments had buggy behaviour —\n\
   frozen during the recovery phase; the bug does not appear spontaneously\n\
   with fewer simultaneous faults."
