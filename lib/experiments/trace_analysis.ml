open Simkern

type recovery = { rec_start : float; rec_end : float option; trigger_rank : int option }

type summary = {
  fault_times : float list;
  recoveries : recovery list;
  commit_times : float list;
  confusion_time : float option;
  failover_times : float list;
  respawn_times : float list;
  exhaustion_time : float option;
  total_recovery_time : float;
  span : float;
}

let parse_rank detail =
  (* details look like "rank 28" or "#3 triggered by rank 28" *)
  let words = String.split_on_char ' ' detail in
  let rec find = function
    | "rank" :: n :: _ -> int_of_string_opt n
    | _ :: rest -> find rest
    | [] -> None
  in
  find words

let summarize trace =
  let entries = Trace.entries trace in
  let fault_times = ref [] in
  let commit_times = ref [] in
  let confusion_time = ref None in
  let failover_times = ref [] in
  let respawn_times = ref [] in
  let exhaustion_time = ref None in
  let open_rec : recovery option ref = ref None in
  let recoveries = ref [] in
  let span = ref 0.0 in
  let close_recovery time =
    match !open_rec with
    | Some r ->
        recoveries := { r with rec_end = Some time } :: !recoveries;
        open_rec := None
    | None -> ()
  in
  List.iter
    (fun (e : Trace.entry) ->
      span := Float.max !span e.Trace.time;
      match e.Trace.event with
      | "halt" -> fault_times := e.Trace.time :: !fault_times
      | "failure-detected" ->
          (* For the sender-logging dispatcher there is no explicit
             recovery-complete event per rank; rank-resumed closes it. *)
          if !open_rec = None then
            open_rec :=
              Some
                {
                  rec_start = e.Trace.time;
                  rec_end = None;
                  trigger_rank = parse_rank e.Trace.detail;
                }
      | "recovery-complete" | "rank-resumed" -> close_recovery e.Trace.time
      | "wave-commit" | "commit-rank" -> commit_times := e.Trace.time :: !commit_times
      | "dispatcher-confused" ->
          if !confusion_time = None then confusion_time := Some e.Trace.time
      | "replica-failover" -> failover_times := e.Trace.time :: !failover_times
      | "replica-respawn" -> respawn_times := e.Trace.time :: !respawn_times
      | "replication-exhausted" ->
          if !exhaustion_time = None then exhaustion_time := Some e.Trace.time
      | _ -> ())
    entries;
  (match !open_rec with Some r -> recoveries := r :: !recoveries | None -> ());
  let recoveries = List.rev !recoveries in
  let total_recovery_time =
    List.fold_left
      (fun acc r ->
        match r.rec_end with Some e -> acc +. (e -. r.rec_start) | None -> acc)
      0.0 recoveries
  in
  {
    fault_times = List.rev !fault_times;
    recoveries;
    commit_times = List.rev !commit_times;
    confusion_time = !confusion_time;
    failover_times = List.rev !failover_times;
    respawn_times = List.rev !respawn_times;
    exhaustion_time = !exhaustion_time;
    total_recovery_time;
    span = !span;
  }

let recovery_durations s =
  List.filter_map
    (fun r -> Option.map (fun e -> e -. r.rec_start) r.rec_end)
    s.recoveries

let pp ppf s =
  Format.fprintf ppf "@[<v>trace span: %.1f s@," s.span;
  Format.fprintf ppf "faults injected: %d%s@," (List.length s.fault_times)
    (match s.fault_times with
    | [] -> ""
    | t :: _ -> Printf.sprintf " (first at %.1f s)" t);
  Format.fprintf ppf "recoveries: %d (%.1f s total" (List.length s.recoveries)
    s.total_recovery_time;
  (match recovery_durations s with
  | [] -> Format.fprintf ppf ")@,"
  | ds ->
      let mean = List.fold_left ( +. ) 0.0 ds /. float_of_int (List.length ds) in
      Format.fprintf ppf ", mean %.1f s)@," mean);
  Format.fprintf ppf "checkpoints committed: %d@," (List.length s.commit_times);
  (match s.confusion_time with
  | Some t -> Format.fprintf ppf "DISPATCHER CONFUSED at %.1f s (run frozen)@," t
  | None -> ());
  (match (s.failover_times, s.respawn_times) with
  | [], [] -> ()
  | fo, rs ->
      Format.fprintf ppf "replica failovers: %d, respawns: %d@," (List.length fo)
        (List.length rs));
  (match s.exhaustion_time with
  | Some t -> Format.fprintf ppf "REPLICATION EXHAUSTED at %.1f s (run aborted)@," t
  | None -> ());
  (match List.filter (fun r -> r.rec_end = None) s.recoveries with
  | [] -> ()
  | stuck ->
      Format.fprintf ppf "unfinished recoveries: %d (first started %.1f s)@,"
        (List.length stuck)
        (match stuck with r :: _ -> r.rec_start | [] -> 0.0));
  Format.pp_close_box ppf ()

let escape_csv field =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') field then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' field) ^ "\""
  else field

let events_csv trace =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "time,source,event,detail\n";
  List.iter
    (fun (e : Trace.entry) ->
      Buffer.add_string buf
        (Printf.sprintf "%.6f,%s,%s,%s\n" e.Trace.time (escape_csv e.Trace.source)
           (escape_csv e.Trace.event) (escape_csv e.Trace.detail)))
    (Trace.entries trace);
  Buffer.contents buf
