type config = {
  klass : Workload.Bt_model.klass;
  n_ranks : int;
  n_machines : int;
  periods : int option list;
  reps : int;
  base_seed : int;
}

let default_config =
  {
    klass = Workload.Bt_model.B;
    n_ranks = 49;
    n_machines = 53;
    periods = [ None; Some 65; Some 60; Some 55; Some 50; Some 45; Some 40 ];
    reps = 6;
    base_seed = 100;
  }

let quick_config = { default_config with periods = [ None; Some 60; Some 45 ]; reps = 2 }

let label_of = function
  | None -> "no faults"
  | Some p -> Printf.sprintf "every %d sec" p

let run ?jobs ?(config = default_config) () =
  List.map
    (fun period ->
      let scenario =
        Option.map
          (fun p ->
            Fail_lang.Paper_scenarios.frequency ~n_machines:config.n_machines ~period:p)
          period
      in
      Harness.cell ~tag:period ~reps:config.reps ~base_seed:config.base_seed
        (fun ~seed ->
          Harness.run_bt ~klass:config.klass ~n_ranks:config.n_ranks
            ~n_machines:config.n_machines ~scenario ~seed ()))
    config.periods
  |> Harness.campaign ?jobs
  |> List.map (fun (period, results) -> Harness.aggregate ~label:(label_of period) results)

let render aggs = Harness.render_table ~title:"Figure 5: impact of fault frequency (BT-49 class B)" aggs

let paper_note =
  "Paper (Fig. 5, read off the plot): no faults ~210 s; execution time of\n\
   terminated runs grows with fault frequency (~400 s at 65 s .. ~1000 s at\n\
   40 s) with a dip at 45 s (faults landing just after the 30 s checkpoint\n\
   waves); non-terminating percentage grows from 0% (no faults / 65 s) to\n\
   ~80-90% at one fault every 40 s; no buggy runs (faults never overlap a\n\
   recovery)."
