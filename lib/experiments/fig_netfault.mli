(** Network-fault campaign: message loss swept against every registered
    protocol backend on one cluster, all through the launch-time
    perturbation profile ([Config.net]) and the reliable transport.

    One {!run} produces, per (loss level x family), the completed-run
    time, the fabric counters (messages dropped, wire retransmissions)
    and the §5 verdict split — including the [net-hung] refinement that
    separates network-explained wedges from protocol bugs. The CI smoke
    runs {!quick_config}; [BENCH_netfault.json] tracks the perturb-off
    overhead of the same sweep. *)

type config = {
  klass : Workload.Bt_model.klass;
  n_ranks : int;
  degree : int;  (** replicas per rank in the replication family *)
  n_machines : int;
  loss_levels : float list;  (** per-message drop probabilities; 0.0 = baseline *)
  reps : int;
  base_seed : int;
}

val default_config : config
val quick_config : config

type row = { family : string; loss : float; agg : Harness.agg }

(** [?jobs] as in {!Harness.campaign}. *)
val run : ?jobs:int -> ?config:config -> unit -> row list

(** [aggs rows] projects the plain aggregates (CSV export). *)
val aggs : row list -> Harness.agg list

val render : row list -> string
val paper_note : string
