type agg = {
  label : string;
  runs : int;
  completed : int;
  degraded : int;
  aborted : int;
  non_terminating : int;
  buggy : int;
  net_hung : int;
  ckpt_lost : int;
  mean_time : float option;
  stddev_time : float option;
  mean_survivors : float option;
  pct_degraded : float;
  pct_aborted : float;
  pct_non_terminating : float;
  pct_buggy : float;
  pct_net_hung : float;
  pct_ckpt_lost : float;
  mean_faults : float;
  checksum_failures : int;
  mean_counters : (string * float) list;
}

let replicate ?jobs ~reps ~base_seed run = Par.map_seeds ?jobs ~reps ~base_seed run

type 'a cell = {
  tag : 'a;
  reps : int;
  base_seed : int;
  runner : seed:int64 -> Failmpi.Run.result;
}

let cell ~tag ~reps ~base_seed runner = { tag; reps; base_seed; runner }

(* All experiment modules funnel through here: the (cell x seed) grid is
   flattened into one job list so the pool stays saturated even when a
   single configuration has fewer repetitions than domains. Each job is
   a pure function of its seed, so the parallel result list is
   bit-for-bit the sequential one. *)
let campaign ?jobs cells =
  let jobs_list =
    List.concat_map
      (fun c -> List.init c.reps (fun i -> (c, Int64.of_int (c.base_seed + i))))
      cells
  in
  let results = Par.map ?jobs (fun (c, seed) -> c.runner ~seed) jobs_list in
  let rec regroup cells results =
    match cells with
    | [] -> []
    | c :: rest ->
        let rec take n acc = function
          | results when n = 0 -> (List.rev acc, results)
          | r :: results -> take (n - 1) (r :: acc) results
          | [] -> invalid_arg "Harness.campaign: result count mismatch"
        in
        let mine, others = take c.reps [] results in
        (c.tag, mine) :: regroup rest others
  in
  regroup cells results

(* Mean of every backend counter seen across [results], keyed by the
   Metrics counter names. Names are sorted so mixed-backend campaigns
   emit a stable column order no matter which backend's results arrive
   first. A counter a run's backend did not report counts as 0 for that
   run. *)
let mean_counters results =
  let names = ref [] in
  List.iter
    (fun r ->
      List.iter
        (fun (name, _) -> if not (List.mem name !names) then names := name :: !names)
        (Failmpi.Backend.Metrics.counters r.Failmpi.Run.metrics))
    results;
  let runs = List.length results in
  List.sort String.compare !names
  |> List.map (fun name ->
         let total =
           List.fold_left
             (fun acc r ->
               acc
               + Option.value ~default:0
                   (Failmpi.Backend.Metrics.find r.Failmpi.Run.metrics name))
             0 results
         in
         (name, if runs = 0 then 0.0 else float_of_int total /. float_of_int runs))

let counter agg name =
  match List.assoc_opt name agg.mean_counters with Some v -> v | None -> 0.0

let aggregate ~label results =
  let runs = List.length results in
  (* Degraded runs finished and have a wall-clock time: they count in the
     time statistics (that IS the recovery-time-vs-answer-quality
     trade-off) but are tallied separately from plain completions. *)
  let times =
    List.filter_map
      (fun r ->
        match r.Failmpi.Run.outcome with
        | Failmpi.Run.Completed t -> Some t
        | Failmpi.Run.Degraded { at; _ } -> Some at
        | Failmpi.Run.Aborted _ | Failmpi.Run.Ckpt_lost | Failmpi.Run.Non_terminating
        | Failmpi.Run.Buggy | Failmpi.Run.Net_hung ->
            None)
      results
  in
  let survivor_counts =
    List.filter_map
      (fun r ->
        match r.Failmpi.Run.outcome with
        | Failmpi.Run.Degraded { survivors; _ } -> Some (float_of_int survivors)
        | _ -> None)
      results
  in
  let count p = List.length (List.filter p results) in
  let completed =
    count (fun r ->
        match r.Failmpi.Run.outcome with Failmpi.Run.Completed _ -> true | _ -> false)
  in
  let degraded = List.length survivor_counts in
  let aborted =
    count (fun r ->
        match r.Failmpi.Run.outcome with Failmpi.Run.Aborted _ -> true | _ -> false)
  in
  let non_terminating =
    count (fun r -> r.Failmpi.Run.outcome = Failmpi.Run.Non_terminating)
  in
  let buggy = count (fun r -> r.Failmpi.Run.outcome = Failmpi.Run.Buggy) in
  let net_hung = count (fun r -> r.Failmpi.Run.outcome = Failmpi.Run.Net_hung) in
  let ckpt_lost = count (fun r -> r.Failmpi.Run.outcome = Failmpi.Run.Ckpt_lost) in
  let checksum_failures = count (fun r -> r.Failmpi.Run.checksum_ok = Some false) in
  {
    label;
    runs;
    completed;
    degraded;
    aborted;
    non_terminating;
    buggy;
    net_hung;
    ckpt_lost;
    mean_time = Stats.mean times;
    stddev_time = Stats.stddev times;
    mean_survivors = Stats.mean survivor_counts;
    pct_degraded = Stats.percent ~total:runs degraded;
    pct_aborted = Stats.percent ~total:runs aborted;
    pct_non_terminating = Stats.percent ~total:runs non_terminating;
    pct_buggy = Stats.percent ~total:runs buggy;
    pct_net_hung = Stats.percent ~total:runs net_hung;
    pct_ckpt_lost = Stats.percent ~total:runs ckpt_lost;
    mean_faults =
      (match
         Stats.mean
           (List.map (fun r -> float_of_int r.Failmpi.Run.injected_faults) results)
       with
      | Some m -> m
      | None -> 0.0);
    checksum_failures;
    mean_counters = mean_counters results;
  }

let render_table ~title aggs =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (title ^ "\n");
  Buffer.add_string buf (String.make (String.length title) '-' ^ "\n");
  Buffer.add_string buf
    (Printf.sprintf "%-22s %6s %10s %8s %9s %6s %8s %8s %8s %7s\n" "configuration" "runs"
       "time(s)" "stddev" "faults" "%degr" "%nonterm" "%buggy" "%nethung" "chk");
  List.iter
    (fun a ->
      Buffer.add_string buf
        (Printf.sprintf "%-22s %6d %10s %8s %9.1f %6.0f %8.0f %8.0f %8.0f %7s\n" a.label
           a.runs
           (match a.mean_time with Some t -> Printf.sprintf "%.0f" t | None -> "-")
           (match a.stddev_time with Some s -> Printf.sprintf "%.0f" s | None -> "-")
           a.mean_faults a.pct_degraded a.pct_non_terminating a.pct_buggy a.pct_net_hung
           (if a.checksum_failures = 0 then "ok"
            else Printf.sprintf "%d BAD" a.checksum_failures)))
    aggs;
  Buffer.contents buf

(* The counter columns are the sorted union of every backend counter any
   aggregate reported, so a five-backend campaign produces one rectangular
   CSV whose column order does not depend on row order. *)
let aggs_csv aggs =
  let counter_names =
    List.concat_map (fun a -> List.map fst a.mean_counters) aggs
    |> List.sort_uniq String.compare
  in
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    "label,runs,completed,degraded,aborted,ckpt_lost,non_terminating,buggy,net_hung,mean_time,stddev_time,mean_survivors,pct_degraded,pct_aborted,pct_ckpt_lost,pct_non_terminating,pct_buggy,pct_net_hung,mean_faults,checksum_failures";
  List.iter (fun name -> Buffer.add_string buf ("," ^ name)) counter_names;
  Buffer.add_char buf '\n';
  List.iter
    (fun a ->
      Buffer.add_string buf
        (Printf.sprintf "%s,%d,%d,%d,%d,%d,%d,%d,%d,%s,%s,%s,%.1f,%.1f,%.1f,%.1f,%.1f,%.1f,%.1f,%d"
           a.label a.runs a.completed a.degraded a.aborted a.ckpt_lost a.non_terminating
           a.buggy a.net_hung
           (match a.mean_time with Some t -> Printf.sprintf "%.1f" t | None -> "")
           (match a.stddev_time with Some s -> Printf.sprintf "%.1f" s | None -> "")
           (match a.mean_survivors with Some s -> Printf.sprintf "%.1f" s | None -> "")
           a.pct_degraded a.pct_aborted a.pct_ckpt_lost a.pct_non_terminating a.pct_buggy
           a.pct_net_hung a.mean_faults a.checksum_failures);
      List.iter
        (fun name -> Buffer.add_string buf (Printf.sprintf ",%.1f" (counter a name)))
        counter_names;
      Buffer.add_char buf '\n')
    aggs;
  Buffer.contents buf

let machines_for n_ranks =
  if n_ranks <= 0 then
    invalid_arg
      (Printf.sprintf "Harness.machines_for: n_ranks must be positive (got %d)" n_ranks);
  n_ranks + 4

(* Campaigns only read aggregates (outcome, counters, checksums), never
   the trace, so the default trace level is Summary: per-message chatter
   is never even formatted. Pass ~trace_level:Full to keep everything
   (e.g. when feeding a run to Trace_analysis). *)
let bt_spec ?cfg ?(trace_level = Simkern.Trace.Summary) ~klass ~n_ranks ~n_machines
    ~scenario () =
  let cfg = match cfg with Some c -> c | None -> Mpivcl.Config.default ~n_ranks in
  let app = Workload.Bt_model.app klass ~n_ranks in
  let state_bytes = Workload.Bt_model.state_bytes klass ~n_ranks in
  {
    (Failmpi.Run.default_spec ~app ~cfg ~n_compute:n_machines ~state_bytes) with
    Failmpi.Run.scenario;
    trace_level;
  }

let run_bt ?cfg ?trace_level ~klass ~n_ranks ~n_machines ~scenario ~seed () =
  let spec = bt_spec ?cfg ?trace_level ~klass ~n_ranks ~n_machines ~scenario () in
  let expected = Workload.Bt_model.reference_checksum klass ~n_ranks in
  Failmpi.Run.execute ~expected_checksum:expected { spec with Failmpi.Run.seed }
