type agg = {
  label : string;
  runs : int;
  completed : int;
  non_terminating : int;
  buggy : int;
  mean_time : float option;
  stddev_time : float option;
  pct_non_terminating : float;
  pct_buggy : float;
  mean_faults : float;
  checksum_failures : int;
  mean_counters : (string * float) list;
}

let replicate ~reps ~base_seed run =
  List.init reps (fun i -> run ~seed:(Int64.of_int (base_seed + i)))

(* Mean of every backend counter seen across [results], keyed by the
   Metrics counter names, in first-seen order. A counter a run's backend
   did not report counts as 0 for that run. *)
let mean_counters results =
  let names = ref [] in
  List.iter
    (fun r ->
      List.iter
        (fun (name, _) -> if not (List.mem name !names) then names := name :: !names)
        (Failmpi.Backend.Metrics.counters r.Failmpi.Run.metrics))
    results;
  let runs = List.length results in
  List.rev_map
    (fun name ->
      let total =
        List.fold_left
          (fun acc r ->
            acc
            + Option.value ~default:0
                (Failmpi.Backend.Metrics.find r.Failmpi.Run.metrics name))
          0 results
      in
      (name, if runs = 0 then 0.0 else float_of_int total /. float_of_int runs))
    !names

let counter agg name =
  match List.assoc_opt name agg.mean_counters with Some v -> v | None -> 0.0

let aggregate ~label results =
  let runs = List.length results in
  let times =
    List.filter_map
      (fun r ->
        match r.Failmpi.Run.outcome with
        | Failmpi.Run.Completed t -> Some t
        | Failmpi.Run.Non_terminating | Failmpi.Run.Buggy -> None)
      results
  in
  let count p = List.length (List.filter p results) in
  let completed = List.length times in
  let non_terminating =
    count (fun r -> r.Failmpi.Run.outcome = Failmpi.Run.Non_terminating)
  in
  let buggy = count (fun r -> r.Failmpi.Run.outcome = Failmpi.Run.Buggy) in
  let checksum_failures = count (fun r -> r.Failmpi.Run.checksum_ok = Some false) in
  {
    label;
    runs;
    completed;
    non_terminating;
    buggy;
    mean_time = Stats.mean times;
    stddev_time = Stats.stddev times;
    pct_non_terminating = Stats.percent ~total:runs non_terminating;
    pct_buggy = Stats.percent ~total:runs buggy;
    mean_faults =
      (match
         Stats.mean
           (List.map (fun r -> float_of_int r.Failmpi.Run.injected_faults) results)
       with
      | Some m -> m
      | None -> 0.0);
    checksum_failures;
    mean_counters = mean_counters results;
  }

let render_table ~title aggs =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (title ^ "\n");
  Buffer.add_string buf (String.make (String.length title) '-' ^ "\n");
  Buffer.add_string buf
    (Printf.sprintf "%-22s %6s %10s %8s %9s %8s %8s %7s\n" "configuration" "runs"
       "time(s)" "stddev" "faults" "%nonterm" "%buggy" "chk");
  List.iter
    (fun a ->
      Buffer.add_string buf
        (Printf.sprintf "%-22s %6d %10s %8s %9.1f %8.0f %8.0f %7s\n" a.label a.runs
           (match a.mean_time with Some t -> Printf.sprintf "%.0f" t | None -> "-")
           (match a.stddev_time with Some s -> Printf.sprintf "%.0f" s | None -> "-")
           a.mean_faults a.pct_non_terminating a.pct_buggy
           (if a.checksum_failures = 0 then "ok"
            else Printf.sprintf "%d BAD" a.checksum_failures)))
    aggs;
  Buffer.contents buf

let aggs_csv aggs =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    "label,runs,completed,non_terminating,buggy,mean_time,stddev_time,pct_non_terminating,pct_buggy,mean_faults,checksum_failures\n";
  List.iter
    (fun a ->
      Buffer.add_string buf
        (Printf.sprintf "%s,%d,%d,%d,%d,%s,%s,%.1f,%.1f,%.1f,%d\n" a.label a.runs a.completed
           a.non_terminating a.buggy
           (match a.mean_time with Some t -> Printf.sprintf "%.1f" t | None -> "")
           (match a.stddev_time with Some s -> Printf.sprintf "%.1f" s | None -> "")
           a.pct_non_terminating a.pct_buggy a.mean_faults a.checksum_failures))
    aggs;
  Buffer.contents buf

let machines_for n_ranks = n_ranks + 4

let bt_spec ?cfg ~klass ~n_ranks ~n_machines ~scenario () =
  let cfg = match cfg with Some c -> c | None -> Mpivcl.Config.default ~n_ranks in
  let app = Workload.Bt_model.app klass ~n_ranks in
  let state_bytes = Workload.Bt_model.state_bytes klass ~n_ranks in
  {
    (Failmpi.Run.default_spec ~app ~cfg ~n_compute:n_machines ~state_bytes) with
    Failmpi.Run.scenario;
  }

let run_bt ?cfg ~klass ~n_ranks ~n_machines ~scenario ~seed () =
  let spec = bt_spec ?cfg ~klass ~n_ranks ~n_machines ~scenario () in
  let expected = Workload.Bt_model.reference_checksum klass ~n_ranks in
  Failmpi.Run.execute ~expected_checksum:expected { spec with Failmpi.Run.seed }
