(** Topology campaign: equal-count faults, unequal blast radius.

    Replication (2 replicas per rank) on a 4-ary fat tree, where the
    slot-major placement of [mpirep] puts the two replicas of every rank
    in different pods. Each faulty cell removes exactly two hosts from
    the fabric: the rack-correlated cell by killing one edge switch
    (both victims in one rack — every rank keeps a replica), the
    independent cell by cutting one host per pod (both replicas of rank
    0 — nothing left to continue from). Survival is decided by
    placement, not fault count; a pod-wide degrade cell shows the
    loss/latency path costing time, never correctness. *)

type config = {
  klass : Workload.Bt_model.klass;
  n_ranks : int;
  degree : int;  (** replicas per rank *)
  k : int;  (** fat-tree arity; the fabric seats [k^3/4] hosts *)
  reps : int;
  base_seed : int;
}

val default_config : config
val quick_config : config

type row = { name : string; label : string; agg : Harness.agg }

(** [?jobs] as in {!Harness.campaign}. *)
val run : ?jobs:int -> ?config:config -> unit -> row list

(** [aggs rows] projects the plain aggregates (CSV export). *)
val aggs : row list -> Harness.agg list

val render : row list -> string
val paper_note : string
