type config = {
  klass : Workload.Bt_model.klass;
  sizes : int list;
  period : int;
  reps : int;
  base_seed : int;
}

let default_config =
  {
    klass = Workload.Bt_model.B;
    sizes = [ 25; 36; 49; 64 ];
    period = 50;
    reps = 6;
    base_seed = 500;
  }

let quick_config = { default_config with sizes = [ 25; 49 ]; reps = 3 }

let run ?jobs ?(config = default_config) () =
  List.concat_map
    (fun n_ranks ->
      let n_machines = Harness.machines_for n_ranks in
      let scenario =
        Some (Fail_lang.Paper_scenarios.state_synchronized ~n_machines ~period:config.period)
      in
      [
        Harness.cell
          ~tag:(Printf.sprintf "BT %d (no faults)" n_ranks)
          ~reps:2 ~base_seed:config.base_seed
          (fun ~seed ->
            Harness.run_bt ~klass:config.klass ~n_ranks ~n_machines ~scenario:None ~seed ());
        Harness.cell
          ~tag:(Printf.sprintf "BT %d (state sync)" n_ranks)
          ~reps:config.reps
          ~base_seed:(config.base_seed + 50)
          (fun ~seed ->
            Harness.run_bt ~klass:config.klass ~n_ranks ~n_machines ~scenario ~seed ());
      ])
    config.sizes
  |> Harness.campaign ?jobs
  |> List.map (fun (label, results) -> Harness.aggregate ~label results)

let render aggs =
  Harness.render_table
    ~title:"Figure 11: synchronized faults depending on MPI state (localMPI_setCommand)" aggs

let paper_note =
  "Paper (Fig. 11): in every case, every experiment froze during the\n\
   recovery wave — the second failure hits a process that has registered\n\
   with the dispatcher while other processes of the previous wave are\n\
   still being stopped, and the dispatcher forgets to relaunch at least\n\
   one computing node."
