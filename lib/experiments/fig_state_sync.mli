(** Figure 11 — synchronized faults depending on MPI state.

    The Figure 10 scenario: the relaunched daemons are stopped at their
    [onload]; the coordinator continues exactly one of them and kills it
    just before [localMPI_setCommand] — right after it registered with
    the dispatcher, while other processes of the previous wave are still
    being stopped. Every run freezes: the precise location of the §5.3
    bug. *)

type config = {
  klass : Workload.Bt_model.klass;
  sizes : int list;
  period : int;
  reps : int;
  base_seed : int;
}

val default_config : config
val quick_config : config

(** [?jobs] as in {!Harness.campaign}. *)
val run : ?jobs:int -> ?config:config -> unit -> Harness.agg list
val render : Harness.agg list -> string
val paper_note : string
