(** Figure 9 — impact of synchronized faults.

    Across scales, two faults: the first at a random node after 50 s, the
    second sent to the first controller that observes the recovery wave
    (second [onload], Figure 8 scenario). Depending on whether the kill
    lands before or after the relaunched daemon registers with the
    dispatcher, the run either recovers cleanly or triggers the §5.3
    bookkeeping bug — a minority of runs freeze at every scale. *)

type config = {
  klass : Workload.Bt_model.klass;
  sizes : int list;
  period : int;
  reps : int;
  base_seed : int;
}

val default_config : config
val quick_config : config

(** [?jobs] as in {!Harness.campaign}. *)
val run : ?jobs:int -> ?config:config -> unit -> Harness.agg list
val render : Harness.agg list -> string
val paper_note : string
