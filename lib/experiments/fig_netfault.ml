type config = {
  klass : Workload.Bt_model.klass;
  n_ranks : int;
  degree : int;
  n_machines : int;
  loss_levels : float list;
  reps : int;
  base_seed : int;
}

(* Same cluster shape as the protocol-family comparison (9 ranks fit the
   22 machines that degree-2 replication needs), so every backend rides
   the exact same perturbed fabric. *)
let default_config =
  {
    klass = Workload.Bt_model.A;
    n_ranks = 9;
    degree = 2;
    n_machines = 22;
    loss_levels = [ 0.0; 0.02; 0.05; 0.10 ];
    reps = 3;
    base_seed = 1700;
  }

let quick_config = { default_config with loss_levels = [ 0.0; 0.05 ]; reps = 2 }

type row = { family : string; loss : float; agg : Harness.agg }

let families config =
  let base = Mpivcl.Config.default ~n_ranks:config.n_ranks in
  List.map
    (fun (module B : Failmpi.Backend.S) ->
      ( B.family_label ~replicas:config.degree,
        { base with Mpivcl.Config.protocol = B.protocol ~replicas:config.degree } ))
    (Failmpi.Backend.all ())

let label_of family loss =
  if loss = 0.0 then Printf.sprintf "loss 0%% %s" family
  else Printf.sprintf "loss %g%% %s" (loss *. 100.0) family

let net_of loss =
  if loss = 0.0 then None
  else
    Some
      {
        Simnet.Net.Perturb.default_profile with
        Simnet.Net.Perturb.base =
          { Simnet.Net.Perturb.loss; latency = 0.0; jitter = 0.0 };
      }

let run ?jobs ?(config = default_config) () =
  List.concat_map
    (fun loss ->
      List.map
        (fun (family, cfg) ->
          let cfg = { cfg with Mpivcl.Config.net = net_of loss } in
          Harness.cell
            ~tag:(family, loss, label_of family loss)
            ~reps:config.reps ~base_seed:config.base_seed
            (fun ~seed ->
              Harness.run_bt ~cfg ~klass:config.klass ~n_ranks:config.n_ranks
                ~n_machines:config.n_machines ~scenario:None ~seed ()))
        (families config))
    config.loss_levels
  |> Harness.campaign ?jobs
  |> List.map (fun ((family, loss, label), results) ->
         { family; loss; agg = Harness.aggregate ~label results })

let aggs rows = List.map (fun r -> r.agg) rows

let render rows =
  let title = "Network faults: message loss vs protocol backend (reliable transport)" in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (title ^ "\n");
  Buffer.add_string buf (String.make (String.length title) '-' ^ "\n");
  Buffer.add_string buf
    (Printf.sprintf "%-28s %5s %9s %9s %9s %8s %8s %5s\n" "configuration" "runs"
       "time(s)" "dropped" "retrans" "%nethung" "%buggy" "chk");
  List.iter
    (fun r ->
      let a = r.agg in
      Buffer.add_string buf
        (Printf.sprintf "%-28s %5d %9s %9.0f %9.0f %8.0f %8.0f %5s\n" a.Harness.label
           a.Harness.runs
           (match a.Harness.mean_time with
           | Some t -> Printf.sprintf "%.0f" t
           | None -> "-")
           (Harness.counter a "net_dropped")
           (Harness.counter a "net_retransmits")
           a.Harness.pct_net_hung a.Harness.pct_buggy
           (if a.Harness.checksum_failures = 0 then "ok"
            else Printf.sprintf "%d BAD" a.Harness.checksum_failures)))
    rows;
  Buffer.contents buf

let paper_note =
  "Expectation: with the reliable transport armed, moderate loss costs\n\
   retransmission time, not correctness — every backend completes with\n\
   matching checksums, slower as loss grows (replication pays the most:\n\
   its multicast multiplies exposed messages). A run that wedges under\n\
   active loss is classified net-hung, never buggy: the §5 classifier\n\
   only calls 'buggy' a freeze the fabric cannot explain."
