(** The §5.2 / conclusion "planned feature" experiment.

    The paper observes that execution time under faults varies chaotically
    with the delay between the last checkpoint wave and the injection, and
    proposes measuring it directly once FAIL can read the strained
    application's variables. Our FAIL dialect has that feature
    ([watch]/[@var]): the scenario watches the daemon-exported [wave]
    variable and injects a single fault exactly [delay] seconds after a
    chosen wave completes. Execution time should grow roughly linearly
    with the delay (the work since the last checkpoint is recomputed). *)

type row = { delay : int; agg : Harness.agg }

val run :
  ?jobs:int ->
  ?klass:Workload.Bt_model.klass ->
  ?n_ranks:int ->
  ?delays:int list ->
  ?reps:int ->
  unit ->
  row list

val render : row list -> string

(** The FAIL scenario used, for inspection. *)
val scenario : n_machines:int -> delay:int -> string
