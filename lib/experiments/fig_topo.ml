module S = Fail_lang.Codegen.Scenario

type config = {
  klass : Workload.Bt_model.klass;
  n_ranks : int;
  degree : int;
  k : int;
  reps : int;
  base_seed : int;
}

(* Four ranks, two replicas each, on a 4-ary fat tree: the tree seats 16
   hosts, slot 0 of every rank fills pod 0 (hosts 0..3), slot 1 fills
   pod 1 (hosts 4..7) — replicas of a rank always sit in different pods,
   and rack r is the host pair {2r, 2r+1}. *)
let default_config =
  { klass = Workload.Bt_model.A; n_ranks = 4; degree = 2; k = 4; reps = 3; base_seed = 1900 }

let quick_config = { default_config with reps = 2 }

type row = { name : string; label : string; agg : Harness.agg }

let n_compute config = config.k * config.k * config.k / 4

let after machine kind = { S.machine; anchor = S.After 20; kind }

let then_now machine kind = { S.machine; anchor = S.After 0; kind }

(* Every cell loses the same number of hosts (two) to the fabric at the
   same time; only the placement differs. Killing edge switch 0 blacks
   out rack 0 — one replica each of ranks 0 and 1, both of which keep
   their other-pod replica. Cutting hosts 0 and 4 instead takes both
   replicas of rank 0: same host count, no survivor to continue from. *)
let cells config =
  let nc = n_compute config in
  [
    ("baseline", "fault-free", None);
    ( "rack",
      "rack-correlated (edge switch 0)",
      Some (S.source ~n_machines:nc [ after 0 (S.Switch_kill { tier = Fail_lang.Ast.Tier_edge }) ]) );
    ( "cross-pod",
      "independent cross-pod (hosts 0,4)",
      Some (S.source ~n_machines:nc [ after 0 S.Partition; then_now 4 S.Partition ]) );
    ( "pod-degrade",
      "degrade pod 0 (30% loss, 5 ms)",
      Some (S.source ~n_machines:nc [ after 0 (S.Pod_degrade { loss = 300; latency = 5 }) ]) );
  ]

let run ?jobs ?(config = default_config) () =
  let cfg =
    {
      (Mpivcl.Config.default ~n_ranks:config.n_ranks) with
      Mpivcl.Config.protocol = Mpivcl.Config.Replication { degree = config.degree };
      topology = Some (Simtopo.Topo.Fat_tree { k = config.k });
    }
  in
  let nc = n_compute config in
  List.map
    (fun (name, label, scenario) ->
      Harness.cell ~tag:(name, label) ~reps:config.reps ~base_seed:config.base_seed
        (fun ~seed ->
          Harness.run_bt ~cfg ~klass:config.klass ~n_ranks:config.n_ranks ~n_machines:nc
            ~scenario ~seed ()))
    (cells config)
  |> Harness.campaign ?jobs
  |> List.map (fun ((name, label), results) ->
         { name; label; agg = Harness.aggregate ~label results })

let aggs rows = List.map (fun r -> r.agg) rows

let render rows =
  let title =
    "Topology-correlated faults: placement decides survival (replication, fat-tree:4)"
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (title ^ "\n");
  Buffer.add_string buf (String.make (String.length title) '-' ^ "\n");
  Buffer.add_string buf
    (Printf.sprintf "%-34s %5s %9s %6s %8s %8s %5s\n" "configuration" "runs" "time(s)"
       "%done" "%wedged" "%abort" "chk");
  List.iter
    (fun r ->
      let a = r.agg in
      let pct n = 100.0 *. float_of_int n /. float_of_int (max 1 a.Harness.runs) in
      Buffer.add_string buf
        (Printf.sprintf "%-34s %5d %9s %6.0f %8.0f %8.0f %5s\n" a.Harness.label
           a.Harness.runs
           (match a.Harness.mean_time with
           | Some t -> Printf.sprintf "%.0f" t
           | None -> "-")
           (pct (a.Harness.completed + a.Harness.degraded))
           (* a severed replica pair leaves the survivors retransmitting
              forever — the wedge shows up as non-terminating (still
              active), net-hung or buggy depending on timing, so tally
              all three *)
           (pct (a.Harness.non_terminating + a.Harness.buggy + a.Harness.net_hung))
           a.Harness.pct_aborted
           (if a.Harness.checksum_failures = 0 then "ok"
            else Printf.sprintf "%d BAD" a.Harness.checksum_failures)))
    rows;
  Buffer.contents buf

let paper_note =
  "Expectation: the rack-correlated blackout (one dead edge switch, two\n\
   hosts severed) takes one replica each of two ranks — both keep their\n\
   other-pod replica and the run completes. Cutting the same number of\n\
   hosts across pods instead takes both replicas of rank 0 and the run\n\
   wedges: equal fault count, different blast radius. Degrading a pod\n\
   costs retransmission time, never correctness."
