(** Figure 6 — impact of scale.

    BT class B on 25/36/49/64 ranks, one fault every 50 s, 5 repetitions;
    execution time without faults and with faults, plus the
    non-terminating percentage. The paper notes the with-fault times are
    "apparently chaotic" (high variance) because the delay between the
    last checkpoint wave and the fault dominates. *)

type config = {
  klass : Workload.Bt_model.klass;
  sizes : int list;  (** BT needs square process counts *)
  period : int;
  reps : int;
  base_seed : int;
}

val default_config : config
val quick_config : config

(** [run ()] returns, per size, the no-fault row and the faulty row
    ([?jobs] as in {!Harness.campaign}). *)
val run : ?jobs:int -> ?config:config -> unit -> Harness.agg list

val render : Harness.agg list -> string
val paper_note : string

(** Figure 6 re-run at simulation scale: thousands of ranks, the
    paper's three protocol families (non-blocking, blocking,
    sender-logging), one seed per cell — the workload behind the
    [failmpi_experiments scale] command. *)

type big_config = {
  big_klass : Workload.Bt_model.klass;
  big_sizes : int list;  (** square rank counts (e.g. 1024, 4096) *)
  big_period : int;  (** seconds between injected faults *)
  big_seed : int;
}

val big_default_config : big_config
val big_quick_config : big_config
val run_big : ?jobs:int -> ?config:big_config -> unit -> Harness.agg list
val render_big : Harness.agg list -> string
val big_paper_note : string
