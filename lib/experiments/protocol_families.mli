(** Protocol-family comparison under the fault-frequency scenario
    (Figure 5's harness), one row per backend registered in
    {!Failmpi.Backend.Registry} — coordinated rollback (Vcl, blocking),
    sender-based message logging (V2) and active replication (mpirep) —
    all driven by the same FAIL scenario text on the same cluster.

    One {!run} produces, per fault period and family, the completed-run
    time, dispatcher recovery waves (rollback families), replica
    failovers / respawns (replication family) and checksum validation —
    the replication rows must show zero recovery waves where the
    rollback rows show at least one. The per-family counters come
    straight from the aggregated backend metrics
    ({!Harness.counter}). *)

type config = {
  klass : Workload.Bt_model.klass;
  n_ranks : int;
  degree : int;  (** replicas per logical rank in the replication family *)
  n_machines : int;  (** compute hosts; needs [degree * n_ranks] at least *)
  periods : int option list;  (** [None] = fault-free baseline *)
  reps : int;
  base_seed : int;
}

val default_config : config
val quick_config : config

type row = { family : string; agg : Harness.agg }

(** [?jobs] as in {!Harness.campaign}. *)
val run : ?jobs:int -> ?config:config -> unit -> row list

(** [aggs rows] projects the plain aggregates (CSV export). *)
val aggs : row list -> Harness.agg list

val render : row list -> string
val paper_note : string
