(** FAIL-MPI runtime: deploys compiled scenarios and drives the daemons.

    One daemon {e instance} is created per deployment entry — a singleton
    ([P1 : ADV1 on machine 53;]) or one per group member
    ([G1\[53\] : ADV2 on machines 0 .. 52;], instance [G1\[i\]] on machine
    [i]). Instances interpret their automaton reactively: messages from
    other instances (delivered with the control-plane latency), node
    timers, and the lifecycle of registered application processes.

    The application side is the paper's §4 integration scheme for
    self-deploying applications: instead of being launched by the
    injection middleware, a process {!register}s itself with the FAIL-MPI
    daemon of its machine (or is {!attach}ed by pid). A machine without a
    deployed instance gets no fault injection. *)

open Simkern

type t

type config = {
  msg_latency : float;
      (** one-way latency of daemon-to-daemon control messages, including
          daemon processing time (default 0.11 s — the injection
          control plane runs through debugger-instrumented daemons and is
          much slower than the data plane) *)
  heartbeat_period : float;
      (** period of the coordinator's peer probes once the fabric is
          perturbed (default 2 s) *)
  suspicion_timeout : float;
      (** how long a daemon must miss consecutive heartbeats before it is
          suspected and quarantined (default 10 s) *)
  retry_rto : float;
      (** initial retransmission timeout of hardened control messages
          (default 0.5 s) *)
  retry_rto_max : float;  (** backoff cap (default 8 s) *)
  max_retries : int;
      (** retransmissions before giving up and suspecting the target
          (default 6) *)
}

val default_config : config

(** [create engine ?config plan] deploys every instance of the plan.
    Raises [Invalid_argument] if the plan deploys two instances on the
    same machine (one FAIL-MPI daemon per machine, as in the paper). *)
val create : Engine.t -> ?config:config -> Fail_lang.Compile.plan -> t

val engine : t -> Engine.t

(** {2 Application integration} *)

(** [register t ~machine target] declares that an application process
    started on [machine]; triggers [onload] on that machine's instance.
    The instance takes [target] as its controlled process until it exits.
    No-op if the machine has no instance. *)
val register : t -> machine:int -> Control.target -> unit

(** [attach t ~machine proc] is {!register} with a bare process (the
    attach-to-running-pid feature). *)
val attach : t -> machine:int -> Proc.t -> unit

(** [register_service t ~name ~kill ~freeze ~unfreeze] declares an
    infrastructure service (checkpoint server ["ckpt\[i\]"], checkpoint
    scheduler ["sched"], dispatcher ["disp"]) that scenario
    [halt service ...] / [stop service ...] / [continue service ...]
    actions act on. A scenario naming an unregistered service traces
    [halt-no-service] (etc.) and does nothing. Re-registering a name
    replaces the handles. *)
val register_service :
  t ->
  name:string ->
  kill:(unit -> unit) ->
  freeze:(unit -> unit) ->
  unfreeze:(unit -> unit) ->
  unit

(** [breakpoint t ~machine kind fn] must be called from inside a
    registered application process when it reaches function [fn]. If the
    controlling instance has a matching [before(fn)]/[after(fn)]
    transition, its actions run before this returns — the call never
    returns if the scenario halts the process, and blocks while it is
    stopped. *)
val breakpoint : t -> machine:int -> [ `Before | `After ] -> string -> unit

(** {2 Introspection (tests, trace analysis)} *)

type instance

val instances : t -> instance list
val find_instance : t -> string -> instance option
val instance_id : instance -> string
val instance_machine : instance -> int

(** [instance_node i] is the source id of the instance's current node. *)
val instance_node : instance -> string

val controlled : instance -> Control.target option

(** [read_var t ~instance name] reads a daemon variable by name (tests). *)
val read_var : t -> instance:string -> string -> int option

(** [injected_faults t] counts [halt] actions executed so far. *)
val injected_faults : t -> int

(** {2 Fork-point surgery}

    Primitives for the explorer's prefix-sharing scheduler, used at a
    pause just before a scenario timer fires. Both leave timer
    generations, variables and the rest of the run untouched — a forked
    branch stays byte-identical to replaying its plan from t=0. *)

(** [timer_handle t ~instance] is the instance's armed node timer, if
    any ([None] also for unknown instances). *)
val timer_handle : t -> instance:string -> Simkern.Engine.handle option

(** [retime_timer t ~instance ~time] re-aims the instance's armed timer
    at absolute [time], preserving its engine sequence number (see
    {!Simkern.Engine.retime}) so same-instant ties break as a
    from-scratch run's would. Returns the replacement handle. Raises
    [Invalid_argument] on an unknown instance or an unarmed timer. *)
val retime_timer : t -> instance:string -> time:float -> Simkern.Engine.handle

(** [swap_plan t plan] re-points every deployed instance at [plan]'s
    automaton for its daemon, re-locating the current node by name. The
    new plan must deploy the same instances with the same variable
    layouts and contain every currently occupied node (guaranteed when
    both plans share the executed fault prefix). Raises
    [Invalid_argument] otherwise. *)
val swap_plan : t -> Fail_lang.Compile.plan -> unit

(** [net_faults t] counts [partition]/[degrade] actions executed so far
    ([heal] is not a fault). *)
val net_faults : t -> int

(** [suspected t] lists the ids of currently quarantined instances. *)
val suspected : t -> string list

(** {2 Network fabric} *)

(** [set_fabric t perturb] subjects the control plane to the simulated
    network's perturbation layer: scenario [partition]/[degrade]/[heal]
    actions act on it, inter-machine daemon messages are sampled against
    it (with sequence numbers, ack-cancelled exponential-backoff
    retransmission and receiver-side dedup), and a heartbeat monitor
    suspects — quarantines — daemons whose probes miss for longer than
    [suspicion_timeout]. With no fabric attached, or an untouched one,
    message delivery is byte-identical to the historical runtime. *)
val set_fabric : t -> Simnet.Net.Perturb.t -> unit

(** [set_topology t topo] attaches the fabric's geometry so scenario
    topology destinations ([switch agg\[2\]], [pod 1], [rack 3]) resolve
    to components of [topo]. Killing a component isolates its severed
    hosts and cuts every surviving host pair whose deterministic route
    crossed it; degrading one applies the spec to the pairs riding it.
    Without a topology attached, topology destinations trace
    [net-no-topology] and do nothing. Attaching one adds no RNG draws
    and never perturbs an unperturbed run. *)
val set_topology : t -> Simtopo.Topo.t -> unit

(** [shutdown t] cancels every outstanding control-plane event — node
    timers, armed retransmissions, the heartbeat monitor — so a finished
    run drains the engine queue. Idempotent; further sends become
    no-ops. *)
val shutdown : t -> unit
