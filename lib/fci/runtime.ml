open Simkern
open Fail_lang

type config = { msg_latency : float }

let default_config = { msg_latency = 0.11 }

type event =
  | Ev_msg of string * string  (* message name, sender instance id *)
  | Ev_timer of int  (* generation *)
  | Ev_onload
  | Ev_onexit
  | Ev_onerror
  | Ev_breakpoint of [ `Before | `After ] * string
  | Ev_watch of string

type instance = {
  id : string;
  machine : int;
  automaton : Automaton.t;
  vars : int array;
  rng : Rng.t;
  mutable node : int;
  mutable timer_gen : int;
  mutable ctl : Control.target option;
}

type t = {
  eng : Engine.t;
  cfg : config;
  by_name : (string, instance) Hashtbl.t;
  groups : (string, instance array) Hashtbl.t;
  by_machine : (int, instance) Hashtbl.t;
  mutable all : instance list;  (* deployment order *)
  mutable fault_count : int;
  mutable entry_depth : int;  (* guards against epsilon-transition loops *)
}

let engine t = t.eng

let trace ?level t inst event detail =
  Engine.record ?level t.eng ~source:("fci:" ^ inst.id) ~event detail

(* Per-transition automaton chatter: Full-gated, lazily formatted. *)
let tracel t inst event f =
  Engine.record_lazy ~level:Trace.Full t.eng ~source:("fci:" ^ inst.id) ~event f

(* ------------------------------------------------------------------ *)
(* Expression evaluation *)

let rec eval t inst expr =
  match expr with
  | Automaton.C_int n -> n
  | Automaton.C_var slot -> inst.vars.(slot)
  | Automaton.C_app_var name -> (
      match inst.ctl with
      | Some ctl -> (
          match ctl.Control.read_var name with
          | Some v -> v
          | None ->
              trace t inst "eval-error" (Printf.sprintf "unknown app var %s" name);
              0)
      | None ->
          trace t inst "eval-error" (Printf.sprintf "app var %s with no controlled process" name);
          0)
  | Automaton.C_binop (op, a, b) -> (
      let va = eval t inst a and vb = eval t inst b in
      match op with
      | Ast.Add -> va + vb
      | Ast.Sub -> va - vb
      | Ast.Mul -> va * vb
      | Ast.Div ->
          if vb = 0 then begin
            trace t inst "eval-error" "division by zero";
            0
          end
          else va / vb
      | Ast.Mod ->
          if vb = 0 then begin
            trace t inst "eval-error" "modulo by zero";
            0
          end
          else va mod vb)
  | Automaton.C_random (lo, hi) ->
      let lo = eval t inst lo and hi = eval t inst hi in
      if hi < lo then begin
        trace t inst "eval-error" (Printf.sprintf "FAIL_RANDOM(%d, %d) with hi < lo" lo hi);
        lo
      end
      else Rng.int_in_range inst.rng ~lo ~hi

let eval_cond t inst (op, a, b) =
  let va = eval t inst a and vb = eval t inst b in
  match op with
  | Ast.Eq -> va = vb
  | Ast.Ne -> va <> vb
  | Ast.Lt -> va < vb
  | Ast.Le -> va <= vb
  | Ast.Gt -> va > vb
  | Ast.Ge -> va >= vb

(* ------------------------------------------------------------------ *)
(* Event dispatch and transition execution *)

let current_node inst = inst.automaton.Automaton.nodes.(inst.node)

let trigger_matches ev (trigger : Ast.trigger option) ~gen =
  match (ev, trigger) with
  | Ev_msg (m, _), Some (Ast.T_recv m') -> String.equal m m'
  | Ev_timer g, Some Ast.T_timer -> g = gen
  | Ev_onload, Some Ast.T_onload -> true
  | Ev_onexit, Some Ast.T_onexit -> true
  | Ev_onerror, Some Ast.T_onerror -> true
  | Ev_breakpoint (`Before, fn), Some (Ast.T_before fn') -> String.equal fn fn'
  | Ev_breakpoint (`After, fn), Some (Ast.T_after fn') -> String.equal fn fn'
  | Ev_watch v, Some (Ast.T_watch v') -> String.equal v v'
  | _, _ -> false

let rec enter_node t inst idx =
  t.entry_depth <- t.entry_depth + 1;
  if t.entry_depth > 1000 then begin
    trace ~level:Trace.Full t inst "epsilon-loop" (string_of_int idx);
    invalid_arg
      (Printf.sprintf "Runtime: epsilon-transition loop in %s at node index %d" inst.id idx)
  end;
  Fun.protect ~finally:(fun () -> t.entry_depth <- t.entry_depth - 1)
  @@ fun () ->
  inst.node <- idx;
  inst.timer_gen <- inst.timer_gen + 1;
  let gen = inst.timer_gen in
  let node = current_node inst in
  trace ~level:Trace.Full t inst "enter-node" node.Automaton.node_id;
  List.iter (fun (slot, e) -> inst.vars.(slot) <- eval t inst e) node.Automaton.always;
  (match node.Automaton.timer with
  | Some duration_expr ->
      let duration = float_of_int (eval t inst duration_expr) in
      Engine.schedule t.eng ~delay:(Float.max 0.0 duration) (fun () ->
          dispatch t inst (Ev_timer gen))
      |> ignore
  | None -> ());
  (* Epsilon transitions: condition-only guards fire on entry. *)
  let epsilon =
    List.find_opt
      (fun (tr : Automaton.ctransition) ->
        tr.trigger = None && List.for_all (eval_cond t inst) tr.conds)
      node.Automaton.transitions
  in
  match epsilon with
  | Some tr -> exec_actions t inst tr.Automaton.actions ~sender:None
  | None -> ()

and exec_actions t inst actions ~sender =
  let goto = ref None in
  List.iter
    (fun action ->
      match action with
      | Automaton.C_goto idx -> goto := Some idx
      | Automaton.C_assign (slot, e) -> inst.vars.(slot) <- eval t inst e
      | Automaton.C_send (msg, dest) -> send t inst msg dest ~sender
      | Automaton.C_halt -> (
          match inst.ctl with
          | Some ctl ->
              t.fault_count <- t.fault_count + 1;
              trace t inst "halt" ctl.Control.target_name;
              ctl.Control.kill ()
          | None -> trace t inst "halt-no-target" "")
      | Automaton.C_stop -> (
          match inst.ctl with
          | Some ctl ->
              trace t inst "stop" ctl.Control.target_name;
              ctl.Control.freeze ()
          | None -> trace t inst "stop-no-target" "")
      | Automaton.C_continue -> (
          match inst.ctl with
          | Some ctl ->
              trace t inst "continue" ctl.Control.target_name;
              ctl.Control.unfreeze ()
          | None -> trace t inst "continue-no-target" "")
      | Automaton.C_set_app (name, e) -> (
          let v = eval t inst e in
          match inst.ctl with
          | Some ctl ->
              if not (ctl.Control.write_var name v) then
                trace t inst "set-error" (Printf.sprintf "unknown app var %s" name)
          | None -> trace t inst "set-no-target" name))
    actions;
  match !goto with Some idx -> enter_node t inst idx | None -> ()

and send t inst msg dest ~sender =
  let deliver target_inst =
    trace t inst "send" (Printf.sprintf "%s -> %s" msg target_inst.id);
    Engine.schedule t.eng ~delay:t.cfg.msg_latency (fun () ->
        dispatch t target_inst (Ev_msg (msg, inst.id)))
    |> ignore
  in
  match dest with
  | Automaton.CD_instance name -> (
      match Hashtbl.find_opt t.by_name name with
      | Some target_inst -> deliver target_inst
      | None -> trace t inst "send-error" (Printf.sprintf "unknown instance %s" name))
  | Automaton.CD_indexed (group, e) -> (
      let idx = eval t inst e in
      match Hashtbl.find_opt t.groups group with
      | Some members when idx >= 0 && idx < Array.length members -> deliver members.(idx)
      | Some members ->
          trace t inst "send-error"
            (Printf.sprintf "%s[%d] out of range 0..%d" group idx (Array.length members - 1))
      | None -> trace t inst "send-error" (Printf.sprintf "unknown group %s" group))
  | Automaton.CD_group group -> (
      match Hashtbl.find_opt t.groups group with
      | Some members -> Array.iter deliver members
      | None -> trace t inst "send-error" (Printf.sprintf "unknown group %s" group))
  | Automaton.CD_sender -> (
      match sender with
      | Some name -> (
          match Hashtbl.find_opt t.by_name name with
          | Some target_inst -> deliver target_inst
          | None -> trace t inst "send-error" (Printf.sprintf "vanished sender %s" name))
      | None -> trace t inst "send-error" "FAIL_SENDER with no sender")

and dispatch t inst ev =
  (* Lifecycle bookkeeping happens regardless of scenario transitions. *)
  (match ev with
  | Ev_onexit | Ev_onerror -> inst.ctl <- None
  | Ev_msg _ | Ev_timer _ | Ev_onload | Ev_breakpoint _ | Ev_watch _ -> ());
  let gen = inst.timer_gen in
  let node = current_node inst in
  let matching =
    List.find_opt
      (fun (tr : Automaton.ctransition) ->
        trigger_matches ev tr.trigger ~gen && List.for_all (eval_cond t inst) tr.conds)
      node.Automaton.transitions
  in
  let sender = match ev with Ev_msg (_, s) -> Some s | _ -> None in
  match matching with
  | Some tr ->
      (match ev with
      | Ev_msg (m, s) -> tracel t inst "recv" (fun () -> Printf.sprintf "%s from %s" m s)
      | Ev_timer _ -> trace ~level:Trace.Full t inst "timer-fired" node.Automaton.node_id
      | Ev_onload -> trace ~level:Trace.Full t inst "onload" ""
      | Ev_onexit -> trace t inst "onexit" ""
      | Ev_onerror -> trace t inst "onerror" ""
      | Ev_breakpoint (_, fn) -> trace ~level:Trace.Full t inst "breakpoint" fn
      | Ev_watch v -> trace ~level:Trace.Full t inst "watch" v);
      exec_actions t inst tr.Automaton.actions ~sender
  | None -> (
      match ev with
      | Ev_msg (m, s) -> tracel t inst "drop" (fun () -> Printf.sprintf "%s from %s" m s)
      | Ev_timer _ | Ev_onload | Ev_onexit | Ev_onerror | Ev_breakpoint _ | Ev_watch _ -> ())

(* ------------------------------------------------------------------ *)
(* Deployment *)

let create eng ?(config = default_config) (plan : Compile.plan) =
  let t =
    {
      eng;
      cfg = config;
      by_name = Hashtbl.create 64;
      groups = Hashtbl.create 8;
      by_machine = Hashtbl.create 64;
      all = [];
      fault_count = 0;
      entry_depth = 0;
    }
  in
  let make_instance ~id ~machine ~daemon =
    let automaton =
      match Compile.automaton plan daemon with
      | Some a -> a
      | None -> invalid_arg (Printf.sprintf "Runtime.create: unknown daemon %s" daemon)
    in
    if Hashtbl.mem t.by_machine machine then
      invalid_arg
        (Printf.sprintf "Runtime.create: two FAIL-MPI daemons on machine %d" machine);
    let inst =
      {
        id;
        machine;
        automaton;
        vars = Array.make (Automaton.var_count automaton) 0;
        rng = Rng.split (Engine.rng eng);
        node = 0;
        timer_gen = 0;
        ctl = None;
      }
    in
    List.iter
      (fun (slot, e) -> inst.vars.(slot) <- eval t inst e)
      automaton.Automaton.var_init;
    Hashtbl.replace t.by_name id inst;
    Hashtbl.replace t.by_machine machine inst;
    t.all <- inst :: t.all;
    inst
  in
  let created =
    List.concat_map
      (fun dep ->
        match dep with
        | Ast.Dep_singleton { inst; daemon; machine; _ } ->
            [ make_instance ~id:inst ~machine ~daemon ]
        | Ast.Dep_group { inst; count; daemon; mach_lo; _ } ->
            let members =
              List.init count (fun i ->
                  make_instance
                    ~id:(Printf.sprintf "%s[%d]" inst i)
                    ~machine:(mach_lo + i) ~daemon)
            in
            Hashtbl.replace t.groups inst (Array.of_list members);
            members)
      plan.Compile.deployments
  in
  t.all <- List.rev t.all;
  (* Start every automaton in its initial node once deployment completed,
     so that initial-node timers and epsilon transitions see the full
     address space. *)
  List.iter (fun inst -> enter_node t inst 0) created;
  t

(* ------------------------------------------------------------------ *)
(* Application integration *)

let register t ~machine (target : Control.target) =
  match Hashtbl.find_opt t.by_machine machine with
  | None -> ()
  | Some inst ->
      (match inst.ctl with
      | Some previous ->
          trace t inst "register-overwrite"
            (Printf.sprintf "%s replaces %s" target.Control.target_name
               previous.Control.target_name)
      | None -> ());
      inst.ctl <- Some target;
      target.Control.subscribe_var (fun name -> dispatch t inst (Ev_watch name));
      Proc.on_exit target.Control.proc (fun reason ->
          (* Only the currently controlled process drives lifecycle
             triggers; a stale hook from a previous wave is ignored. *)
          match inst.ctl with
          | Some current when current.Control.proc == target.Control.proc ->
              (match reason with
              | Proc.Exit_normal -> dispatch t inst Ev_onexit
              | Proc.Exit_killed | Proc.Exit_crashed _ -> dispatch t inst Ev_onerror)
          | Some _ | None -> ());
      dispatch t inst Ev_onload

let attach t ~machine proc = register t ~machine (Control.of_proc proc)

let breakpoint t ~machine kind fn =
  let self = Proc.self () in
  (match Hashtbl.find_opt t.by_machine machine with
  | Some inst -> (
      match inst.ctl with
      | Some ctl when Proc.pid ctl.Control.proc = Proc.pid self ->
          dispatch t inst (Ev_breakpoint (kind, fn))
      | Some _ | None -> ())
  | None -> ());
  (* A halt lands at the next suspension point and a stop buffers it;
     yielding realises both before the function body runs. *)
  Proc.yield ()

(* ------------------------------------------------------------------ *)
(* Introspection *)

let instances t = t.all

let find_instance t id = Hashtbl.find_opt t.by_name id

let instance_id inst = inst.id
let instance_machine inst = inst.machine
let instance_node inst = (current_node inst).Automaton.node_id
let controlled inst = inst.ctl

let read_var t ~instance name =
  match Hashtbl.find_opt t.by_name instance with
  | None -> None
  | Some inst ->
      let rec find i =
        if i >= Array.length inst.automaton.Automaton.var_names then None
        else if String.equal inst.automaton.Automaton.var_names.(i) name then
          Some inst.vars.(i)
        else find (i + 1)
      in
      find 0

let injected_faults t = t.fault_count
