open Simkern
open Fail_lang
module Perturb = Simnet.Net.Perturb

type config = {
  msg_latency : float;
  heartbeat_period : float;
  suspicion_timeout : float;
  retry_rto : float;
  retry_rto_max : float;
  max_retries : int;
}

let default_config =
  {
    msg_latency = 0.11;
    heartbeat_period = 2.0;
    suspicion_timeout = 10.0;
    retry_rto = 0.5;
    retry_rto_max = 8.0;
    max_retries = 6;
  }

type event =
  | Ev_msg of string * string  (* message name, sender instance id *)
  | Ev_timer of int  (* generation *)
  | Ev_onload
  | Ev_onexit
  | Ev_onerror
  | Ev_breakpoint of [ `Before | `After ] * string
  | Ev_watch of string

type instance = {
  id : string;
  machine : int;
  mutable automaton : Automaton.t;  (* swapped by [swap_plan] at a fork point *)
  vars : int array;
  rng : Rng.t;
  mutable node : int;
  mutable timer_gen : int;
  mutable timer_handle : Engine.handle option;
  mutable ctl : Control.target option;
  mutable suspected : bool;  (* quarantined after missed heartbeats *)
  mutable hb_miss : int;
}

(* Infrastructure services the deployed system registers by name
   ("ckpt[0]", "sched", "disp"): the handles scenario [halt service ...]
   actions act on. *)
type service = {
  svc_kill : unit -> unit;
  svc_freeze : unit -> unit;
  svc_unfreeze : unit -> unit;
}

type t = {
  eng : Engine.t;
  cfg : config;
  by_name : (string, instance) Hashtbl.t;
  groups : (string, instance array) Hashtbl.t;
  by_machine : (int, instance) Hashtbl.t;
  mutable all : instance list;  (* deployment order *)
  mutable fault_count : int;
  mutable entry_depth : int;  (* guards against epsilon-transition loops *)
  mutable net : Perturb.t option;  (* fabric the control plane rides on *)
  mutable topo : Simtopo.Topo.t option;  (* geometry behind the fabric *)
  mutable seq : int;  (* hardened-delivery sequence numbers *)
  seen : (string, unit) Hashtbl.t;  (* "<sender>#<seq>" dedup *)
  retries : (int, Engine.handle) Hashtbl.t;  (* seq -> armed retry *)
  mutable hb_handle : Engine.handle option;  (* heartbeat monitor tick *)
  mutable net_fault_count : int;
  mutable stopped : bool;
  services : (string, service) Hashtbl.t;
}

let engine t = t.eng

let trace ?level t inst event detail =
  Engine.record ?level t.eng ~source:("fci:" ^ inst.id) ~event detail

(* Per-transition automaton chatter: Full-gated, lazily formatted. *)
let tracel t inst event f =
  Engine.record_lazy ~level:Trace.Full t.eng ~source:("fci:" ^ inst.id) ~event f

(* ------------------------------------------------------------------ *)
(* Expression evaluation *)

let rec eval t inst expr =
  match expr with
  | Automaton.C_int n -> n
  | Automaton.C_var slot -> inst.vars.(slot)
  | Automaton.C_app_var name -> (
      match inst.ctl with
      | Some ctl -> (
          match ctl.Control.read_var name with
          | Some v -> v
          | None ->
              trace t inst "eval-error" (Printf.sprintf "unknown app var %s" name);
              0)
      | None ->
          trace t inst "eval-error" (Printf.sprintf "app var %s with no controlled process" name);
          0)
  | Automaton.C_binop (op, a, b) -> (
      let va = eval t inst a and vb = eval t inst b in
      match op with
      | Ast.Add -> va + vb
      | Ast.Sub -> va - vb
      | Ast.Mul -> va * vb
      | Ast.Div ->
          if vb = 0 then begin
            trace t inst "eval-error" "division by zero";
            0
          end
          else va / vb
      | Ast.Mod ->
          if vb = 0 then begin
            trace t inst "eval-error" "modulo by zero";
            0
          end
          else va mod vb)
  | Automaton.C_random (lo, hi) ->
      let lo = eval t inst lo and hi = eval t inst hi in
      if hi < lo then begin
        trace t inst "eval-error" (Printf.sprintf "FAIL_RANDOM(%d, %d) with hi < lo" lo hi);
        lo
      end
      else Rng.int_in_range inst.rng ~lo ~hi

let eval_cond t inst (op, a, b) =
  let va = eval t inst a and vb = eval t inst b in
  match op with
  | Ast.Eq -> va = vb
  | Ast.Ne -> va <> vb
  | Ast.Lt -> va < vb
  | Ast.Le -> va <= vb
  | Ast.Gt -> va > vb
  | Ast.Ge -> va >= vb

(* Resolve a topology selector against the deployed fabric geometry.
   [None] plus a trace when the run has no topology or the component does
   not exist — a scenario bug degrades the run, it never crashes it. *)
let resolve_component t inst sel =
  match t.topo with
  | None ->
      trace t inst "net-no-topology" (Automaton.topo_sel_s sel);
      None
  | Some topo -> (
      let comp =
        match sel with
        | Automaton.CSel_switch (tier, e) ->
            let tier =
              match tier with
              | Ast.Tier_edge -> Simtopo.Topo.Edge
              | Ast.Tier_agg -> Simtopo.Topo.Agg
              | Ast.Tier_core -> Simtopo.Topo.Core
            in
            Simtopo.Topo.Switch (tier, eval t inst e)
        | Automaton.CSel_pod e -> Simtopo.Topo.Pod (eval t inst e)
        | Automaton.CSel_rack e -> Simtopo.Topo.Rack (eval t inst e)
      in
      match Simtopo.Topo.check_component topo comp with
      | Ok () -> Some (topo, comp)
      | Error msg ->
          trace t inst "net-error" msg;
          None)

(* ------------------------------------------------------------------ *)
(* Service faults *)

let service_name t inst = function
  | Automaton.CSvc_ckpt e -> Printf.sprintf "ckpt[%d]" (eval t inst e)
  | Automaton.CSvc_sched -> "sched"
  | Automaton.CSvc_disp -> "disp"

(* A scenario naming a service the deployment did not register (e.g. a
   [sched] fault against the sender-logging protocol, which has no
   scheduler) degrades to a traced no-op — scenario bugs never crash a
   run. *)
let exec_service t inst sel op =
  let name = service_name t inst sel in
  match (Hashtbl.find_opt t.services name, op) with
  | None, `Kill -> trace t inst "halt-no-service" name
  | None, `Stop -> trace t inst "stop-no-service" name
  | None, `Continue -> trace t inst "continue-no-service" name
  | Some svc, `Kill ->
      t.fault_count <- t.fault_count + 1;
      trace t inst "halt-service" name;
      svc.svc_kill ()
  | Some svc, `Stop ->
      trace t inst "stop-service" name;
      svc.svc_freeze ()
  | Some svc, `Continue ->
      trace t inst "continue-service" name;
      svc.svc_unfreeze ()

(* ------------------------------------------------------------------ *)
(* Event dispatch and transition execution *)

let current_node inst = inst.automaton.Automaton.nodes.(inst.node)

let machines_s ms = String.concat "," (List.map string_of_int ms)

let trigger_matches ev (trigger : Ast.trigger option) ~gen =
  match (ev, trigger) with
  | Ev_msg (m, _), Some (Ast.T_recv m') -> String.equal m m'
  | Ev_timer g, Some Ast.T_timer -> g = gen
  | Ev_onload, Some Ast.T_onload -> true
  | Ev_onexit, Some Ast.T_onexit -> true
  | Ev_onerror, Some Ast.T_onerror -> true
  | Ev_breakpoint (`Before, fn), Some (Ast.T_before fn') -> String.equal fn fn'
  | Ev_breakpoint (`After, fn), Some (Ast.T_after fn') -> String.equal fn fn'
  | Ev_watch v, Some (Ast.T_watch v') -> String.equal v v'
  | _, _ -> false

let rec enter_node t inst idx =
  t.entry_depth <- t.entry_depth + 1;
  if t.entry_depth > 1000 then begin
    trace ~level:Trace.Full t inst "epsilon-loop" (string_of_int idx);
    invalid_arg
      (Printf.sprintf "Runtime: epsilon-transition loop in %s at node index %d" inst.id idx)
  end;
  Fun.protect ~finally:(fun () -> t.entry_depth <- t.entry_depth - 1)
  @@ fun () ->
  inst.node <- idx;
  inst.timer_gen <- inst.timer_gen + 1;
  let gen = inst.timer_gen in
  let node = current_node inst in
  trace ~level:Trace.Full t inst "enter-node" node.Automaton.node_id;
  List.iter (fun (slot, e) -> inst.vars.(slot) <- eval t inst e) node.Automaton.always;
  (* A node change obsoletes the previous node's timer; cancelling it (the
     generation check below stays as a safety net) keeps [Engine.pending]
     honest so the whole control plane drains to zero after a run. *)
  (match inst.timer_handle with
  | Some h ->
      Engine.cancel h;
      inst.timer_handle <- None
  | None -> ());
  (match node.Automaton.timer with
  | Some duration_expr ->
      let duration = float_of_int (eval t inst duration_expr) in
      let h =
        Engine.schedule t.eng ~delay:(Float.max 0.0 duration) (fun () ->
            inst.timer_handle <- None;
            dispatch t inst (Ev_timer gen))
      in
      inst.timer_handle <- Some h
  | None -> ());
  (* Epsilon transitions: condition-only guards fire on entry. *)
  let epsilon =
    List.find_opt
      (fun (tr : Automaton.ctransition) ->
        tr.trigger = None && List.for_all (eval_cond t inst) tr.conds)
      node.Automaton.transitions
  in
  match epsilon with
  | Some tr -> exec_actions t inst tr.Automaton.actions ~sender:None
  | None -> ()

and exec_actions t inst actions ~sender =
  let goto = ref None in
  List.iter
    (fun action ->
      match action with
      | Automaton.C_goto idx -> goto := Some idx
      | Automaton.C_assign (slot, e) -> inst.vars.(slot) <- eval t inst e
      | Automaton.C_send (msg, dest) -> send t inst msg dest ~sender
      | Automaton.C_halt (Some sel) -> exec_service t inst sel `Kill
      | Automaton.C_stop (Some sel) -> exec_service t inst sel `Stop
      | Automaton.C_continue (Some sel) -> exec_service t inst sel `Continue
      | Automaton.C_halt None -> (
          match inst.ctl with
          | Some ctl ->
              t.fault_count <- t.fault_count + 1;
              trace t inst "halt" ctl.Control.target_name;
              ctl.Control.kill ()
          | None -> trace t inst "halt-no-target" "")
      | Automaton.C_stop None -> (
          match inst.ctl with
          | Some ctl ->
              trace t inst "stop" ctl.Control.target_name;
              ctl.Control.freeze ()
          | None -> trace t inst "stop-no-target" "")
      | Automaton.C_continue None -> (
          match inst.ctl with
          | Some ctl ->
              trace t inst "continue" ctl.Control.target_name;
              ctl.Control.unfreeze ()
          | None -> trace t inst "continue-no-target" "")
      | Automaton.C_set_app (name, e) -> (
          let v = eval t inst e in
          match inst.ctl with
          | Some ctl ->
              if not (ctl.Control.write_var name v) then
                trace t inst "set-error" (Printf.sprintf "unknown app var %s" name)
          | None -> trace t inst "set-no-target" name)
      | Automaton.C_partition (Automaton.CD_topo sel, None) -> (
          (* Component kill: sever the hosts whose only uplink died, cut
             every remaining host pair whose route crossed it. *)
          match t.net with
          | None -> trace t inst "net-no-fabric" "partition"
          | Some p -> kill_component t p inst sel)
      | Automaton.C_partition (a, b) -> (
          match t.net with
          | None -> trace t inst "net-no-fabric" "partition"
          | Some p -> (
              let ma = machines_of_dest t inst a ~sender in
              match b with
              | Some b_dest ->
                  let mb = machines_of_dest t inst b_dest ~sender in
                  if ma <> [] && mb <> [] then begin
                    Perturb.partition p ma mb;
                    t.net_fault_count <- t.net_fault_count + 1;
                    trace t inst "partition"
                      (Printf.sprintf "%s | %s" (machines_s ma) (machines_s mb));
                    ensure_monitor t
                  end
              | None ->
                  if ma <> [] then begin
                    Perturb.isolate p ma;
                    t.net_fault_count <- t.net_fault_count + 1;
                    trace t inst "partition" (Printf.sprintf "isolate %s" (machines_s ma));
                    ensure_monitor t
                  end))
      | Automaton.C_heal -> (
          match t.net with
          | None -> trace t inst "net-no-fabric" "heal"
          | Some p ->
              Perturb.heal p;
              trace t inst "heal" "")
      | Automaton.C_degrade (Automaton.CD_topo sel, loss_e, latency_e, jitter_e) -> (
          match t.net with
          | None -> trace t inst "net-no-fabric" "degrade"
          | Some p ->
              let dim e = match e with Some e -> eval t inst e | None -> 0 in
              let loss =
                Float.min 1.0 (Float.max 0.0 (float_of_int (dim loss_e) /. 1000.0))
              in
              let latency = Float.max 0.0 (float_of_int (dim latency_e) /. 1000.0) in
              let jitter = Float.max 0.0 (float_of_int (dim jitter_e) /. 1000.0) in
              degrade_component t p inst sel { Perturb.loss; latency; jitter })
      | Automaton.C_degrade (d, loss_e, latency_e, jitter_e) -> (
          match t.net with
          | None -> trace t inst "net-no-fabric" "degrade"
          | Some p ->
              let hosts = machines_of_dest t inst d ~sender in
              if hosts <> [] then begin
                let dim e = match e with Some e -> eval t inst e | None -> 0 in
                (* FAIL source carries integers: loss in permille,
                   latency/jitter in milliseconds. *)
                let loss =
                  Float.min 1.0 (Float.max 0.0 (float_of_int (dim loss_e) /. 1000.0))
                in
                let latency = Float.max 0.0 (float_of_int (dim latency_e) /. 1000.0) in
                let jitter = Float.max 0.0 (float_of_int (dim jitter_e) /. 1000.0) in
                Perturb.degrade p ~hosts { Perturb.loss; latency; jitter };
                t.net_fault_count <- t.net_fault_count + 1;
                trace t inst "degrade"
                  (Printf.sprintf "%s loss=%.3f latency=%.3fs jitter=%.3fs"
                     (machines_s hosts) loss latency jitter);
                ensure_monitor t
              end))
    actions;
  match !goto with Some idx -> enter_node t inst idx | None -> ()

(* Resolve a destination to the machines it deploys on — the unit network
   faults act on. *)
and machines_of_dest t inst dest ~sender =
  match dest with
  | Automaton.CD_instance name -> (
      match Hashtbl.find_opt t.by_name name with
      | Some i -> [ i.machine ]
      | None ->
          trace t inst "net-error" (Printf.sprintf "unknown instance %s" name);
          [])
  | Automaton.CD_indexed (group, e) -> (
      let idx = eval t inst e in
      match Hashtbl.find_opt t.groups group with
      | Some members when idx >= 0 && idx < Array.length members ->
          [ members.(idx).machine ]
      | Some members ->
          trace t inst "net-error"
            (Printf.sprintf "%s[%d] out of range 0..%d" group idx (Array.length members - 1));
          []
      | None ->
          trace t inst "net-error" (Printf.sprintf "unknown group %s" group);
          [])
  | Automaton.CD_group group -> (
      match Hashtbl.find_opt t.groups group with
      | Some members -> Array.to_list (Array.map (fun i -> i.machine) members)
      | None ->
          trace t inst "net-error" (Printf.sprintf "unknown group %s" group);
          [])
  | Automaton.CD_sender -> (
      match sender with
      | Some name -> (
          match Hashtbl.find_opt t.by_name name with
          | Some i -> [ i.machine ]
          | None ->
              trace t inst "net-error" (Printf.sprintf "vanished sender %s" name);
              [])
      | None ->
          trace t inst "net-error" "FAIL_SENDER with no sender";
          [])
  | Automaton.CD_topo sel -> (
      match resolve_component t inst sel with
      | None -> []
      | Some (topo, comp) -> (
          match Simtopo.Topo.hosts_of topo comp with
          | [] ->
              trace t inst "net-error"
                (Printf.sprintf "%s encloses no hosts" (Simtopo.Topo.component_name comp));
              []
          | hosts -> hosts))

(* Kill a fabric component: hosts whose only uplink went through it are
   isolated outright (so even off-fabric service hosts lose them), and
   every other host pair whose deterministic route crossed it is cut
   pairwise. One logical fault, O(1) per subsequent sample. *)
and kill_component t p inst sel =
  match resolve_component t inst sel with
  | None -> ()
  | Some (topo, comp) ->
      let severed = Simtopo.Topo.severed_hosts topo comp in
      let is_severed =
        let tbl = Hashtbl.create (max 16 (List.length severed)) in
        List.iter (fun h -> Hashtbl.replace tbl h ()) severed;
        fun h -> Hashtbl.mem tbl h
      in
      (* The isolation covers pairs with exactly one severed endpoint
         (including off-fabric service hosts the topology cannot name);
         pairs wholly inside the severed set — a rack whose only switch
         died — and route-crossing pairs between survivors still need an
         explicit cut. *)
      let crossing =
        List.filter
          (fun (a, b) -> is_severed a = is_severed b)
          (Simtopo.Topo.cut_pairs topo comp)
      in
      if severed = [] && crossing = [] then
        trace t inst "net-error"
          (Printf.sprintf "%s cuts no host pair" (Simtopo.Topo.component_name comp))
      else begin
        if severed <> [] then Perturb.isolate p severed;
        if crossing <> [] then Perturb.cut_pairs p crossing;
        t.net_fault_count <- t.net_fault_count + 1;
        trace t inst "partition"
          (Printf.sprintf "kill %s: %d hosts severed, %d pairs cut"
             (Simtopo.Topo.component_name comp)
             (List.length severed) (List.length crossing));
        ensure_monitor t
      end

(* Degrade a fabric component: the spec lands on every host pair riding
   it — pairs routed through a switch, pairs wholly inside a pod/rack. *)
and degrade_component t p inst sel spec =
  match resolve_component t inst sel with
  | None -> ()
  | Some (topo, comp) ->
      let pairs =
        match comp with
        | Simtopo.Topo.Switch _ -> Simtopo.Topo.cut_pairs topo comp
        | Simtopo.Topo.Pod _ | Simtopo.Topo.Rack _ -> Simtopo.Topo.intra_pairs topo comp
      in
      if pairs = [] then
        trace t inst "net-error"
          (Printf.sprintf "%s carries no host pair" (Simtopo.Topo.component_name comp))
      else begin
        Perturb.degrade_pairs p ~pairs spec;
        t.net_fault_count <- t.net_fault_count + 1;
        trace t inst "degrade"
          (Printf.sprintf "%s: %d pairs loss=%.3f latency=%.3fs jitter=%.3fs"
             (Simtopo.Topo.component_name comp) (List.length pairs) spec.Perturb.loss
             spec.Perturb.latency spec.Perturb.jitter);
        ensure_monitor t
      end

(* The daemons' own heartbeat monitor: once the fabric is perturbed, the
   first deployed instance (the coordinator) probes every other daemon each
   [heartbeat_period]; after [suspicion_timeout] worth of consecutive
   misses the peer is suspected and outgoing control messages to it are
   quarantined instead of retried forever. A later successful round trip
   (e.g. after [heal]) lifts the suspicion. *)
and ensure_monitor t =
  match t.hb_handle with
  | Some _ -> ()
  | None ->
      if not t.stopped then
        t.hb_handle <-
          Some (Engine.schedule t.eng ~delay:t.cfg.heartbeat_period (fun () -> hb_tick t))

and hb_tick t =
  t.hb_handle <- None;
  if not t.stopped then begin
    (match t.net with Some p when Perturb.touched p -> probe_all t p | Some _ | None -> ());
    t.hb_handle <-
      Some (Engine.schedule t.eng ~delay:t.cfg.heartbeat_period (fun () -> hb_tick t))
  end

and probe_all t p =
  match t.all with
  | [] -> ()
  | root :: rest ->
      let threshold =
        max 1 (int_of_float (Float.ceil (t.cfg.suspicion_timeout /. t.cfg.heartbeat_period)))
      in
      List.iter
        (fun inst ->
          if inst.machine <> root.machine then begin
            let fwd = Perturb.sample p ~src:root.machine ~dst:inst.machine ~kind:`Data in
            let bwd = Perturb.sample p ~src:inst.machine ~dst:root.machine ~kind:`Data in
            match (fwd, bwd) with
            | `Deliver _, `Deliver _ ->
                inst.hb_miss <- 0;
                if inst.suspected then begin
                  inst.suspected <- false;
                  trace t inst "unsuspect" "heartbeat round trip"
                end
            | `Drop, _ | _, `Drop ->
                inst.hb_miss <- inst.hb_miss + 1;
                if inst.hb_miss >= threshold && not inst.suspected then begin
                  inst.suspected <- true;
                  trace t inst "suspect"
                    (Printf.sprintf "%d missed heartbeats" inst.hb_miss)
                end
          end)
        rest

and send t inst msg dest ~sender =
  if t.stopped then ()
  else
  let deliver target_inst =
    match t.net with
    | Some p when Perturb.touched p && inst.machine <> target_inst.machine ->
        deliver_hardened t p inst target_inst msg
    | Some _ | None ->
        trace t inst "send" (Printf.sprintf "%s -> %s" msg target_inst.id);
        Engine.schedule t.eng ~delay:t.cfg.msg_latency (fun () ->
            dispatch t target_inst (Ev_msg (msg, inst.id)))
        |> ignore
  in
  match dest with
  | Automaton.CD_instance name -> (
      match Hashtbl.find_opt t.by_name name with
      | Some target_inst -> deliver target_inst
      | None -> trace t inst "send-error" (Printf.sprintf "unknown instance %s" name))
  | Automaton.CD_indexed (group, e) -> (
      let idx = eval t inst e in
      match Hashtbl.find_opt t.groups group with
      | Some members when idx >= 0 && idx < Array.length members -> deliver members.(idx)
      | Some members ->
          trace t inst "send-error"
            (Printf.sprintf "%s[%d] out of range 0..%d" group idx (Array.length members - 1))
      | None -> trace t inst "send-error" (Printf.sprintf "unknown group %s" group))
  | Automaton.CD_group group -> (
      match Hashtbl.find_opt t.groups group with
      | Some members -> Array.iter deliver members
      | None -> trace t inst "send-error" (Printf.sprintf "unknown group %s" group))
  | Automaton.CD_sender -> (
      match sender with
      | Some name -> (
          match Hashtbl.find_opt t.by_name name with
          | Some target_inst -> deliver target_inst
          | None -> trace t inst "send-error" (Printf.sprintf "vanished sender %s" name))
      | None -> trace t inst "send-error" "FAIL_SENDER with no sender")
  | Automaton.CD_topo _ ->
      (* Broadcast to every daemon deployed inside the component. *)
      List.iter
        (fun machine ->
          match Hashtbl.find_opt t.by_machine machine with
          | Some target_inst -> deliver target_inst
          | None -> ())
        (machines_of_dest t inst dest ~sender)

(* Once the fabric is perturbed, inter-machine control messages ride it:
   each send is sequence-numbered, sampled against the link like any wire
   message, retransmitted with exponential backoff until an (also sampled)
   acknowledgement cancels the retry, and deduplicated at the receiver so
   a lost ack only costs a duplicate. After [max_retries] the target is
   suspected and further traffic to it is quarantined — the §5 analogue of
   an MPI runtime's unreachable-daemon handling. *)
and deliver_hardened t p inst target_inst msg =
  t.seq <- t.seq + 1;
  let seq = t.seq in
  let key = Printf.sprintf "%s#%d" inst.id seq in
  trace t inst "send" (Printf.sprintf "%s -> %s #%d" msg target_inst.id seq);
  let rec attempt k =
    if t.stopped then ()
    else if target_inst.suspected then
      trace t inst "quarantine-drop"
        (Printf.sprintf "%s -> %s #%d" msg target_inst.id seq)
    else begin
      (match Perturb.sample p ~src:inst.machine ~dst:target_inst.machine ~kind:`Data with
      | `Deliver extra ->
          Engine.schedule t.eng ~delay:(t.cfg.msg_latency +. extra) (fun () ->
              if not (Hashtbl.mem t.seen key) then begin
                Hashtbl.replace t.seen key ();
                (* Ack travels the reverse link; losing it only provokes a
                   retransmission the [seen] table absorbs. *)
                (match
                   Perturb.sample p ~src:target_inst.machine ~dst:inst.machine
                     ~kind:`Data
                 with
                | `Deliver ack_extra ->
                    Engine.schedule t.eng ~delay:(t.cfg.msg_latency +. ack_extra)
                      (fun () ->
                        match Hashtbl.find_opt t.retries seq with
                        | Some h ->
                            Engine.cancel h;
                            Hashtbl.remove t.retries seq
                        | None -> ())
                    |> ignore
                | `Drop -> ());
                dispatch t target_inst (Ev_msg (msg, inst.id))
              end)
          |> ignore
      | `Drop -> ());
      if k < t.cfg.max_retries then begin
        let delay =
          Perturb.backoff ~rto_initial:t.cfg.retry_rto ~rto_max:t.cfg.retry_rto_max
            ~attempt:k
        in
        let h =
          Engine.schedule t.eng ~delay (fun () ->
              Hashtbl.remove t.retries seq;
              tracel t inst "retry" (fun () ->
                  Printf.sprintf "%s -> %s #%d attempt %d" msg target_inst.id seq
                    (k + 1));
              attempt (k + 1))
        in
        Hashtbl.replace t.retries seq h
      end
      else begin
        trace t inst "give-up"
          (Printf.sprintf "%s -> %s #%d after %d attempts" msg target_inst.id seq
             t.cfg.max_retries);
        if not target_inst.suspected then begin
          target_inst.suspected <- true;
          trace t target_inst "suspect" "control message exhausted retries"
        end
      end
    end
  in
  attempt 0

and dispatch t inst ev =
  (* Lifecycle bookkeeping happens regardless of scenario transitions. *)
  (match ev with
  | Ev_onexit | Ev_onerror -> inst.ctl <- None
  | Ev_msg _ | Ev_timer _ | Ev_onload | Ev_breakpoint _ | Ev_watch _ -> ());
  let gen = inst.timer_gen in
  let node = current_node inst in
  let matching =
    List.find_opt
      (fun (tr : Automaton.ctransition) ->
        trigger_matches ev tr.trigger ~gen && List.for_all (eval_cond t inst) tr.conds)
      node.Automaton.transitions
  in
  let sender = match ev with Ev_msg (_, s) -> Some s | _ -> None in
  match matching with
  | Some tr ->
      (match ev with
      | Ev_msg (m, s) -> tracel t inst "recv" (fun () -> Printf.sprintf "%s from %s" m s)
      | Ev_timer _ -> trace ~level:Trace.Full t inst "timer-fired" node.Automaton.node_id
      | Ev_onload -> trace ~level:Trace.Full t inst "onload" ""
      | Ev_onexit -> trace t inst "onexit" ""
      | Ev_onerror -> trace t inst "onerror" ""
      | Ev_breakpoint (_, fn) -> trace ~level:Trace.Full t inst "breakpoint" fn
      | Ev_watch v -> trace ~level:Trace.Full t inst "watch" v);
      exec_actions t inst tr.Automaton.actions ~sender
  | None -> (
      match ev with
      | Ev_msg (m, s) -> tracel t inst "drop" (fun () -> Printf.sprintf "%s from %s" m s)
      | Ev_timer _ | Ev_onload | Ev_onexit | Ev_onerror | Ev_breakpoint _ | Ev_watch _ -> ())

(* ------------------------------------------------------------------ *)
(* Deployment *)

let create eng ?(config = default_config) (plan : Compile.plan) =
  let t =
    {
      eng;
      cfg = config;
      by_name = Hashtbl.create 64;
      groups = Hashtbl.create 8;
      by_machine = Hashtbl.create 64;
      all = [];
      fault_count = 0;
      entry_depth = 0;
      net = None;
      topo = None;
      seq = 0;
      seen = Hashtbl.create 64;
      retries = Hashtbl.create 16;
      hb_handle = None;
      net_fault_count = 0;
      stopped = false;
      services = Hashtbl.create 8;
    }
  in
  let make_instance ~id ~machine ~daemon =
    let automaton =
      match Compile.automaton plan daemon with
      | Some a -> a
      | None -> invalid_arg (Printf.sprintf "Runtime.create: unknown daemon %s" daemon)
    in
    if Hashtbl.mem t.by_machine machine then
      invalid_arg
        (Printf.sprintf "Runtime.create: two FAIL-MPI daemons on machine %d" machine);
    let inst =
      {
        id;
        machine;
        automaton;
        vars = Array.make (Automaton.var_count automaton) 0;
        rng = Rng.split (Engine.rng eng);
        node = 0;
        timer_gen = 0;
        timer_handle = None;
        ctl = None;
        suspected = false;
        hb_miss = 0;
      }
    in
    List.iter
      (fun (slot, e) -> inst.vars.(slot) <- eval t inst e)
      automaton.Automaton.var_init;
    Hashtbl.replace t.by_name id inst;
    Hashtbl.replace t.by_machine machine inst;
    t.all <- inst :: t.all;
    inst
  in
  let created =
    List.concat_map
      (fun dep ->
        match dep with
        | Ast.Dep_singleton { inst; daemon; machine; _ } ->
            [ make_instance ~id:inst ~machine ~daemon ]
        | Ast.Dep_group { inst; count; daemon; mach_lo; _ } ->
            let members =
              List.init count (fun i ->
                  make_instance
                    ~id:(Printf.sprintf "%s[%d]" inst i)
                    ~machine:(mach_lo + i) ~daemon)
            in
            Hashtbl.replace t.groups inst (Array.of_list members);
            members)
      plan.Compile.deployments
  in
  t.all <- List.rev t.all;
  (* Start every automaton in its initial node once deployment completed,
     so that initial-node timers and epsilon transitions see the full
     address space. *)
  List.iter (fun inst -> enter_node t inst 0) created;
  t

(* ------------------------------------------------------------------ *)
(* Application integration *)

let register t ~machine (target : Control.target) =
  match Hashtbl.find_opt t.by_machine machine with
  | None -> ()
  | Some inst ->
      (match inst.ctl with
      | Some previous ->
          trace t inst "register-overwrite"
            (Printf.sprintf "%s replaces %s" target.Control.target_name
               previous.Control.target_name)
      | None -> ());
      inst.ctl <- Some target;
      target.Control.subscribe_var (fun name -> dispatch t inst (Ev_watch name));
      Proc.on_exit target.Control.proc (fun reason ->
          (* Only the currently controlled process drives lifecycle
             triggers; a stale hook from a previous wave is ignored. *)
          match inst.ctl with
          | Some current when current.Control.proc == target.Control.proc ->
              (match reason with
              | Proc.Exit_normal -> dispatch t inst Ev_onexit
              | Proc.Exit_killed | Proc.Exit_crashed _ -> dispatch t inst Ev_onerror)
          | Some _ | None -> ());
      dispatch t inst Ev_onload

let attach t ~machine proc = register t ~machine (Control.of_proc proc)

let register_service t ~name ~kill ~freeze ~unfreeze =
  Hashtbl.replace t.services name
    { svc_kill = kill; svc_freeze = freeze; svc_unfreeze = unfreeze }

let breakpoint t ~machine kind fn =
  let self = Proc.self () in
  (match Hashtbl.find_opt t.by_machine machine with
  | Some inst -> (
      match inst.ctl with
      | Some ctl when Proc.pid ctl.Control.proc = Proc.pid self ->
          dispatch t inst (Ev_breakpoint (kind, fn))
      | Some _ | None -> ())
  | None -> ());
  (* A halt lands at the next suspension point and a stop buffers it;
     yielding realises both before the function body runs. *)
  Proc.yield ()

(* ------------------------------------------------------------------ *)
(* Introspection *)

let instances t = t.all

let find_instance t id = Hashtbl.find_opt t.by_name id

let instance_id inst = inst.id
let instance_machine inst = inst.machine
let instance_node inst = (current_node inst).Automaton.node_id
let controlled inst = inst.ctl

let read_var t ~instance name =
  match Hashtbl.find_opt t.by_name instance with
  | None -> None
  | Some inst ->
      let rec find i =
        if i >= Array.length inst.automaton.Automaton.var_names then None
        else if String.equal inst.automaton.Automaton.var_names.(i) name then
          Some inst.vars.(i)
        else find (i + 1)
      in
      find 0

let injected_faults t = t.fault_count
let net_faults t = t.net_fault_count

(* ------------------------------------------------------------------ *)
(* Fork-point surgery (the explorer's prefix-sharing scheduler)

   At a pause just before a scenario timer fires, the explorer branches
   one shared run into the sibling plans of a prefix tree: it re-aims
   the pending timer at a sibling's injection delay ([retime_timer],
   seq-preserving so same-instant ties still break as a from-scratch
   run's would) and installs the sibling plan's automata ([swap_plan]).
   Both leave timer generations, variables and every other part of the
   run untouched, which is what keeps a forked branch byte-identical to
   replaying that plan from t=0. *)

let timer_handle t ~instance =
  match Hashtbl.find_opt t.by_name instance with
  | None -> None
  | Some inst -> inst.timer_handle

let retime_timer t ~instance ~time =
  match Hashtbl.find_opt t.by_name instance with
  | None -> invalid_arg (Printf.sprintf "Runtime.retime_timer: unknown instance %s" instance)
  | Some inst -> (
      match inst.timer_handle with
      | None ->
          invalid_arg (Printf.sprintf "Runtime.retime_timer: %s has no armed timer" instance)
      | Some h ->
          let h' = Engine.retime h ~time in
          inst.timer_handle <- Some h';
          h')

let swap_plan t (plan : Compile.plan) =
  let swap_instance ~id ~daemon =
    let inst =
      match Hashtbl.find_opt t.by_name id with
      | Some i -> i
      | None ->
          invalid_arg (Printf.sprintf "Runtime.swap_plan: plan deploys unknown instance %s" id)
    in
    let automaton =
      match Compile.automaton plan daemon with
      | Some a -> a
      | None -> invalid_arg (Printf.sprintf "Runtime.swap_plan: unknown daemon %s" daemon)
    in
    if automaton.Automaton.var_names <> inst.automaton.Automaton.var_names then
      invalid_arg (Printf.sprintf "Runtime.swap_plan: %s: variable layout differs" id);
    (* The current node is re-located by name: sibling plans can shift
       node indices (e.g. a different set of frozen nodes), but a shared
       prefix guarantees the node the instance sits in exists in both. *)
    let node_id = (current_node inst).Automaton.node_id in
    match Automaton.node_index automaton node_id with
    | Some idx ->
        inst.automaton <- automaton;
        inst.node <- idx
    | None ->
        invalid_arg
          (Printf.sprintf "Runtime.swap_plan: %s: node %s missing from the new automaton" id
             node_id)
  in
  List.iter
    (fun dep ->
      match dep with
      | Ast.Dep_singleton { inst; daemon; _ } -> swap_instance ~id:inst ~daemon
      | Ast.Dep_group { inst; count; daemon; _ } ->
          for i = 0 to count - 1 do
            swap_instance ~id:(Printf.sprintf "%s[%d]" inst i) ~daemon
          done)
    plan.Compile.deployments

let suspected t =
  List.filter_map (fun inst -> if inst.suspected then Some inst.id else None) t.all

(* ------------------------------------------------------------------ *)
(* Fabric attachment and teardown *)

let set_topology t topo = t.topo <- Some topo

let set_fabric t p =
  t.net <- Some p;
  (* A launch-time profile ([--net-loss] etc.) has already touched the
     fabric by the time the runtime sees it; scenario-driven faults start
     the monitor from their own actions instead. *)
  if Perturb.touched p then ensure_monitor t

let shutdown t =
  if not t.stopped then begin
    t.stopped <- true;
    (match t.hb_handle with
    | Some h ->
        Engine.cancel h;
        t.hb_handle <- None
    | None -> ());
    Hashtbl.iter (fun _ h -> Engine.cancel h) t.retries;
    Hashtbl.reset t.retries;
    List.iter
      (fun inst ->
        match inst.timer_handle with
        | Some h ->
            Engine.cancel h;
            inst.timer_handle <- None
        | None -> ())
      t.all
  end
