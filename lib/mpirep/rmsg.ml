type member = { mb_slot : int; mb_host : int }

type t =
  | Hello of { rank : int; slot : int; incarnation : int }
  | Ready of { rank : int; slot : int }
  | Start of { members : member list array; resume : bool; donor : member option }
  | Peer_update of { rank : int; slot : int; host : int }
  | Shutdown
  | Rank_done of { rank : int; slot : int }
  | Peer_hello of { rank : int; slot : int; consumed : (int * int) list }
  | App of { msg : Mpivcl.Message.app_msg; ssn : int }
  | State_req of { rank : int; slot : int }
  | State_xfer of { image : Mpivcl.Message.image }

let pp ppf = function
  | Hello { rank; slot; incarnation } ->
      Format.fprintf ppf "Hello(%d.%d, inc %d)" rank slot incarnation
  | Ready { rank; slot } -> Format.fprintf ppf "Ready(%d.%d)" rank slot
  | Start { resume; donor; _ } ->
      Format.fprintf ppf "Start(resume=%b%s)" resume
        (match donor with
        | Some d -> Printf.sprintf ", donor slot %d@%d" d.mb_slot d.mb_host
        | None -> "")
  | Peer_update { rank; slot; host } ->
      Format.fprintf ppf "Peer_update(%d.%d@%d)" rank slot host
  | Shutdown -> Format.pp_print_string ppf "Shutdown"
  | Rank_done { rank; slot } -> Format.fprintf ppf "Rank_done(%d.%d)" rank slot
  | Peer_hello { rank; slot; _ } -> Format.fprintf ppf "Peer_hello(%d.%d)" rank slot
  | App { msg; ssn } ->
      Format.fprintf ppf "App(%d->%d tag %d ssn %d)" msg.Mpivcl.Message.src
        msg.Mpivcl.Message.dst msg.Mpivcl.Message.tag ssn
  | State_req { rank; slot } -> Format.fprintf ppf "State_req(%d.%d)" rank slot
  | State_xfer { image } ->
      Format.fprintf ppf "State_xfer(%d bytes)" image.Mpivcl.Message.img_bytes
