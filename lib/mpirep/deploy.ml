open Simkern
open Simos
module Config = Mpivcl.Config

type layout = {
  n_compute : int;
  coordinator_host : int;
  dispatcher_host : int;
  total_hosts : int;
}

(* One service host: the failover dispatcher. No checkpoint scheduler
   and no checkpoint servers exist in this family. *)
let base_layout ~n_compute = Layout.make ~n_compute ~n_services:1

let make_layout ~n_compute =
  let base = base_layout ~n_compute in
  {
    n_compute = base.Layout.n_compute;
    coordinator_host = base.Layout.coordinator_host;
    dispatcher_host = Layout.service base 0;
    total_hosts = base.Layout.total_hosts;
  }

type handle = { env : Renv.t; lay : layout; rdispatcher : Rdispatcher.t }

let launch eng ?fci ~cfg ~app ~state_bytes ~n_compute () =
  let degree =
    match Config.replication_degree cfg with
    | Some d when d >= 1 -> d
    | Some d -> invalid_arg (Printf.sprintf "Mpirep.Deploy.launch: degree %d < 1" d)
    | None -> invalid_arg "Mpirep.Deploy.launch: protocol is not Replication"
  in
  let n_ranks = cfg.Config.n_ranks in
  if degree * n_ranks > n_compute then
    invalid_arg
      (Printf.sprintf
         "Mpirep.Deploy.launch: %d replicas (degree %d x %d ranks) need more than %d compute hosts"
         (degree * n_ranks) degree n_ranks n_compute);
  let base = base_layout ~n_compute in
  let lay = make_layout ~n_compute in
  let cluster, net = Layout.fabric eng base in
  (* Perturb the fabric before any process starts, then hand it to the
     FCI control plane so daemon traffic rides the same links. *)
  (match cfg.Config.net with
  | Some profile -> Simnet.Net.Perturb.apply (Simnet.Net.perturb net) profile
  | None -> ());
  (match fci with
  | Some rt -> Fci.Runtime.set_fabric rt (Simnet.Net.perturb net)
  | None -> ());
  (* Validate the declared topology against the compute pool at launch —
     a fabric too small for the job is a configuration error, not a
     mid-run trace. Unperturbed runs never consult the geometry. *)
  (match cfg.Config.topology with
  | Some spec -> (
      let topo = Simtopo.Topo.for_cluster spec ~n_compute in
      match fci with
      | Some rt -> Fci.Runtime.set_topology rt topo
      | None -> ())
  | None -> ());
  let env =
    {
      Renv.eng;
      cluster;
      net;
      fci;
      cfg;
      degree;
      app;
      state_bytes;
      dispatcher_host = lay.dispatcher_host;
      rng = Rng.split (Engine.rng eng);
    }
  in
  (* Slot s of rank r starts on host s * n_ranks + r: replicas of a rank
     land on distinct hosts, and slot 0 occupies the same hosts the
     rollback backends use, so machine-indexed FAIL scenarios hit the
     same logical ranks. *)
  let spare_hosts = List.init (n_compute - (degree * n_ranks)) (fun i -> (degree * n_ranks) + i) in
  let rdispatcher =
    Rdispatcher.spawn env ~host:lay.dispatcher_host
      ~host_of:(fun ~rank ~slot -> (slot * n_ranks) + rank)
      ~spare_hosts
  in
  { env; lay; rdispatcher }

let cluster h = h.env.Renv.cluster
let net h = h.env.Renv.net
let teardown h = Layout.teardown h.env.Renv.cluster
