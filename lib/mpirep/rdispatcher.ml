open Simkern
open Simos
module Net = Simnet.Net
module Config = Mpivcl.Config

type outcome = Completed of float | Aborted of string

type ev =
  | E_hello of int * int * int * Rmsg.t Net.conn
  | E_msg of int * int * int * Rmsg.t
  | E_closed of int * int * int
  | E_spawn_died of int * int * int
  | E_window of int * int

type t = {
  env : Renv.t;
  host : int;
  result : outcome Ivar.t;
  mutable failover_count : int;
  mutable respawn_count : int;
  mutable is_exhausted : bool;
}

let trace ?level t event detail =
  Engine.record ?level t.env.Renv.eng ~source:"rdispatcher" ~event detail
let tracef ?level t event fmt =
  Engine.record_fmt ?level t.env.Renv.eng ~source:"rdispatcher" ~event fmt

let spawn (env : Renv.t) ~host ~host_of ~spare_hosts =
  let eng = env.Renv.eng in
  let cluster = env.Renv.cluster in
  let cfg = env.Renv.cfg in
  let degree = env.Renv.degree in
  let n = cfg.Config.n_ranks in
  let t =
    {
      env;
      host;
      result = Ivar.create ();
      failover_count = 0;
      respawn_count = 0;
      is_exhausted = false;
    }
  in
  let events : ev Mailbox.t = Mailbox.create () in
  let members : Rmsg.t Net.conn Member.t = Member.create ~n_ranks:n ~degree ~host_of in
  let free_hosts = ref spare_hosts in
  let steady = ref false in
  let finished_run = ref false in
  (* per-rank token invalidating failover-window timers once the rank is
     live (or finished) again *)
  let window_token = Array.make n 0 in
  let launch ~rank ~slot =
    let info = Member.get members ~rank ~slot in
    info.Member.m_inc <- info.Member.m_inc + 1;
    info.Member.m_conn <- None;
    info.Member.m_state <- Member.Launching;
    let inc = info.Member.m_inc in
    let target_host = info.Member.m_host in
    let resume = info.Member.m_resume in
    tracef ~level:Trace.Full t "launch" "replica %d.%d on host %d (inc %d%s)" rank slot target_host inc
      (if resume then ", respawn" else "");
    ignore
      (Cluster.spawn_on cluster ~host ~name:(Printf.sprintf "ssh-replica%d.%d" rank slot)
         (fun () ->
           if inc > 0 then Proc.sleep cfg.Config.relaunch_delay;
           Proc.sleep cfg.Config.ssh_delay;
           let daemon = Replica.spawn env ~rank ~slot ~host:target_host ~incarnation:inc ~resume in
           Proc.on_exit daemon (fun _ -> Mailbox.send events (E_spawn_died (rank, slot, inc)))))
  in
  let move_to_spare ~rank ~slot =
    let info = Member.get members ~rank ~slot in
    match !free_hosts with
    | [] -> tracef ~level:Trace.Full t "no-spare" "replica %d.%d relaunches in place" rank slot
    | spare :: rest ->
        free_hosts := rest @ [ info.Member.m_host ];
        tracef ~level:Trace.Full t "reallocate" "replica %d.%d: host %d -> %d" rank slot
          info.Member.m_host spare;
        info.Member.m_host <- spare
  in
  let arm_window ~rank =
    window_token.(rank) <- window_token.(rank) + 1;
    let tok = window_token.(rank) in
    tracef t "rank-at-risk" "rank %d has no live replica; failover window %.1fs" rank
      cfg.Config.rep_failover_window;
    ignore
      (Engine.schedule eng ~delay:cfg.Config.rep_failover_window (fun () ->
           Mailbox.send events (E_window (rank, tok))))
  in
  let broadcast msg =
    Member.iter
      (fun info ->
        match info.Member.m_conn with
        | Some conn -> ignore (Net.send conn msg)
        | None -> ())
      members
  in
  let exhaust ~rank =
    if not !finished_run then begin
      t.is_exhausted <- true;
      finished_run := true;
      tracef t "replication-exhausted" "rank %d lost all %d replicas" rank degree;
      broadcast Rmsg.Shutdown;
      Ivar.fill t.result (Aborted (Printf.sprintf "replication exhausted at rank %d" rank))
    end
  in
  let respawn ~rank ~slot =
    (Member.get members ~rank ~slot).Member.m_resume <- true;
    move_to_spare ~rank ~slot;
    launch ~rank ~slot
  in
  (* A rank just lost its last live replica: at risk if a respawn is in
     flight (bounded by the failover window), exhausted otherwise. *)
  let rank_uncovered ~rank =
    if Member.pending_slots members ~rank <> [] then arm_window ~rank else exhaust ~rank
  in
  let maybe_start () =
    if Member.all_ready members then begin
      let snap = Member.snapshot members in
      Member.iter
        (fun info ->
          (match info.Member.m_conn with
          | Some conn ->
              ignore (Net.send conn (Rmsg.Start { members = snap; resume = false; donor = None }))
          | None -> ());
          info.Member.m_state <- Member.Computing)
        members;
      steady := true;
      trace t "app-started" ""
    end
  in
  let handle_hello rank slot inc conn =
    let info = Member.get members ~rank ~slot in
    if inc = info.Member.m_inc && info.Member.m_state = Member.Launching && not !finished_run
    then begin
      info.Member.m_conn <- Some conn;
      info.Member.m_state <- Member.Registered;
      tracef ~level:Trace.Full t "replica-registered" "replica %d.%d inc %d" rank slot inc;
      if info.Member.m_resume then
        if Member.finished members ~rank then begin
          (* the rank completed while this respawn was in flight *)
          ignore (Net.send conn Rmsg.Shutdown);
          info.Member.m_state <- Member.Dead
        end
        else
          match Member.live_slots members ~rank with
          | donor :: _ ->
              ignore
                (Net.send conn
                   (Rmsg.Start
                      {
                        members = Member.snapshot members;
                        resume = true;
                        donor =
                          Some { Rmsg.mb_slot = donor.Member.slot; mb_host = donor.Member.m_host };
                      }))
          | [] ->
              tracef ~level:Trace.Full t "respawn-no-donor" "replica %d.%d has no live sibling" rank slot;
              info.Member.m_state <- Member.Dead;
              info.Member.m_conn <- None;
              Net.close conn;
              rank_uncovered ~rank
    end
    else Net.close conn
  in
  let handle_ready rank slot =
    let info = Member.get members ~rank ~slot in
    if info.Member.m_state = Member.Registered then
      if info.Member.m_resume then begin
        info.Member.m_resume <- false;
        info.Member.m_state <- Member.Computing;
        t.respawn_count <- t.respawn_count + 1;
        window_token.(rank) <- window_token.(rank) + 1;
        tracef t "replica-respawn" "replica %d.%d live again on host %d" rank slot
          info.Member.m_host;
        (* mesh repair: every computing replica of the other ranks opens a
           link to the newcomer *)
        Member.iter
          (fun peer ->
            if peer.Member.rank <> rank && peer.Member.m_state = Member.Computing then
              match peer.Member.m_conn with
              | Some conn ->
                  ignore
                    (Net.send conn
                       (Rmsg.Peer_update { rank; slot; host = info.Member.m_host }))
              | None -> ())
          members
      end
      else begin
        info.Member.m_state <- Member.Ready;
        maybe_start ()
      end
  in
  let handle_rank_done rank slot =
    if not (Member.finished members ~rank) then begin
      Member.mark_finished members ~rank;
      window_token.(rank) <- window_token.(rank) + 1;
      tracef ~level:Trace.Full t "rank-finished" "rank %d (replica slot %d first)" rank slot;
      if Member.all_finished members then begin
        finished_run := true;
        broadcast Rmsg.Shutdown;
        trace t "app-completed" "";
        Ivar.fill t.result (Completed (Engine.now eng))
      end
    end
  in
  let handle_closed rank slot inc =
    let info = Member.get members ~rank ~slot in
    if inc = info.Member.m_inc && not !finished_run then
      match info.Member.m_state with
      | Member.Computing when !steady ->
          info.Member.m_state <- Member.Dead;
          info.Member.m_conn <- None;
          if Member.finished members ~rank then
            tracef ~level:Trace.Full t "closure-ignored" "replica %d.%d (rank already finished)" rank slot
          else begin
            match Member.live_slots members ~rank with
            | _ :: _ as live ->
                (* Failure detection, replication-style: siblings keep
                   computing, nothing rolls back. *)
                t.failover_count <- t.failover_count + 1;
                tracef t "replica-failover" "replica %d.%d down, %d live sibling%s" rank slot
                  (List.length live)
                  (if List.length live = 1 then "" else "s");
                if cfg.Config.rep_respawn then respawn ~rank ~slot
            | [] -> rank_uncovered ~rank
          end
      | Member.Registered | Member.Ready ->
          info.Member.m_state <- Member.Dead;
          info.Member.m_conn <- None;
          if not !steady then begin
            (* start-up failure: plain retry, no wave machinery to confuse *)
            tracef ~level:Trace.Full t "spawn-retry" "replica %d.%d lost before start" rank slot;
            move_to_spare ~rank ~slot;
            launch ~rank ~slot
          end
          else begin
            tracef ~level:Trace.Full t "respawn-interrupted" "replica %d.%d" rank slot;
            match Member.live_slots members ~rank with
            | _ :: _ -> if cfg.Config.rep_respawn then respawn ~rank ~slot
            | [] -> rank_uncovered ~rank
          end
      | Member.Computing | Member.Launching | Member.Dead ->
          tracef ~level:Trace.Full t "closure-ignored" "replica %d.%d in state %s" rank slot
            (Member.state_name info.Member.m_state)
  in
  let handle_spawn_died rank slot inc =
    let info = Member.get members ~rank ~slot in
    if inc = info.Member.m_inc && info.Member.m_state = Member.Launching && not !finished_run
    then begin
      tracef ~level:Trace.Full t "spawn-failed" "replica %d.%d inc %d" rank slot inc;
      if Member.finished members ~rank then info.Member.m_state <- Member.Dead
      else if not info.Member.m_resume then begin
        move_to_spare ~rank ~slot;
        launch ~rank ~slot
      end
      else begin
        info.Member.m_state <- Member.Dead;
        match Member.live_slots members ~rank with
        | _ :: _ -> respawn ~rank ~slot
        | [] -> rank_uncovered ~rank
      end
    end
  in
  let handle_event = function
    | E_hello (rank, slot, inc, conn) -> handle_hello rank slot inc conn
    | E_msg (rank, slot, inc, msg) -> (
        let info = Member.get members ~rank ~slot in
        if inc = info.Member.m_inc && not !finished_run then
          match msg with
          | Rmsg.Ready _ -> handle_ready rank slot
          | Rmsg.Rank_done _ -> handle_rank_done rank slot
          | msg ->
              trace t "protocol-error"
                (Format.asprintf "from replica %d.%d: %a" rank slot Rmsg.pp msg))
    | E_closed (rank, slot, inc) -> handle_closed rank slot inc
    | E_spawn_died (rank, slot, inc) -> handle_spawn_died rank slot inc
    | E_window (rank, tok) ->
        if
          tok = window_token.(rank)
          && (not !finished_run)
          && (not (Member.finished members ~rank))
          && Member.live_slots members ~rank = []
        then exhaust ~rank
  in
  ignore
    (Cluster.spawn_on cluster ~host ~name:"rdispatcher" (fun () ->
         let listener = Net.listen env.Renv.net ~host ~port:Config.dispatcher_port in
         Fun.protect ~finally:(fun () -> Net.close_listener listener) @@ fun () ->
         ignore
           (Cluster.spawn_on cluster ~host ~name:"rdispatcher-accept" (fun () ->
                let rec accept_loop () =
                  match Net.accept listener with
                  | None -> ()
                  | Some conn ->
                      ignore
                        (Cluster.spawn_on cluster ~host ~name:"rdispatcher-conn" (fun () ->
                             match Net.recv conn with
                             | Net.Data (Rmsg.Hello { rank; slot; incarnation }) ->
                                 Mailbox.send events (E_hello (rank, slot, incarnation, conn));
                                 let rec pump_loop () =
                                   match Net.recv conn with
                                   | Net.Data msg ->
                                       Mailbox.send events (E_msg (rank, slot, incarnation, msg));
                                       pump_loop ()
                                   | Net.Closed ->
                                       Mailbox.send events (E_closed (rank, slot, incarnation))
                                 in
                                 pump_loop ()
                             | Net.Data _ | Net.Closed -> Net.close conn));
                      accept_loop ()
                in
                accept_loop ()));
         for rank = 0 to n - 1 do
           for slot = 0 to degree - 1 do
             launch ~rank ~slot
           done
         done;
         let rec main_loop () =
           handle_event (Mailbox.recv events);
           main_loop ()
         in
         main_loop ()));
  t

let outcome t = Ivar.read t.result
let peek_outcome t = Ivar.peek t.result
let failovers t = t.failover_count
let respawns t = t.respawn_count
let exhausted t = t.is_exhausted
let halt t = Cluster.kill_all t.env.Renv.cluster ~host:t.host
