(** Wire protocol of the replication backend.

    A replica is addressed by [(rank, slot)]: [rank] is the logical MPI
    rank, [slot] the replica index within that rank's group
    ([0 .. degree-1]).

    Peer links carry [Peer_hello] as their first message in each
    direction; it includes the sender's per-source reception bounds
    ([consumed]) so the receiving side can immediately flush any logged
    messages the peer's rank has not yet consumed — this replaces the
    explicit resend request of the V2 protocol and also heals links
    established late (after a respawn). *)

type member = { mb_slot : int; mb_host : int }

type t =
  | Hello of { rank : int; slot : int; incarnation : int }
      (** replica daemon -> dispatcher, first message after launch *)
  | Ready of { rank : int; slot : int }
      (** replica is set up (fresh) or has installed donor state (respawn) *)
  | Start of { members : member list array; resume : bool; donor : member option }
      (** dispatcher -> replica: begin computing. [members.(r)] lists the
          replicas of logical rank [r]. On [resume], [donor] names the
          live sibling to fetch application state from. *)
  | Peer_update of { rank : int; slot : int; host : int }
      (** dispatcher -> live replicas: a respawned replica is back; open a
          connection to it (mesh repair) *)
  | Shutdown  (** dispatcher -> replica: tear down (completion or abort) *)
  | Rank_done of { rank : int; slot : int }  (** replica -> dispatcher *)
  | Peer_hello of { rank : int; slot : int; consumed : (int * int) list }
      (** first message on a peer link; [consumed] = per-source highest
          ssn already received by the sender *)
  | App of { msg : Mpivcl.Message.app_msg; ssn : int }
      (** application payload, multicast to every replica of
          [msg.dst]; [ssn] is per (sender logical rank, dst rank) and is
          {e reused} when a respawned replica re-executes a logged send,
          so duplicates are recognisable at every receiver *)
  | State_req of { rank : int; slot : int }
      (** respawning replica -> donor sibling *)
  | State_xfer of { image : Mpivcl.Message.image }
      (** donor's reply: committed state, buffers and logging state *)

val pp : Format.formatter -> t -> unit
