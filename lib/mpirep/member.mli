(** Replica membership table: the failover layer's bookkeeping, pure of
    any I/O so it can be unit-tested and reasoned about separately. One
    entry per [(rank, slot)]; ['conn] is the control-connection type
    (abstract here to keep the module network-agnostic). *)

type state = Launching | Registered | Ready | Computing | Dead

type 'conn replica = {
  rank : int;
  slot : int;
  mutable m_host : int;
  mutable m_inc : int;  (** incarnation, bumped on every (re)launch *)
  mutable m_conn : 'conn option;
  mutable m_state : state;
  mutable m_resume : bool;
      (** launched as a respawn: on Hello it gets an immediate
          [Start { resume = true }] with a donor instead of joining the
          initial all-ready barrier *)
}

type 'conn t

val create : n_ranks:int -> degree:int -> host_of:(rank:int -> slot:int -> int) -> 'conn t
val get : 'conn t -> rank:int -> slot:int -> 'conn replica
val n_ranks : 'conn t -> int
val degree : 'conn t -> int

(** Replicas of [rank] that are computing with a live control link. *)
val live_slots : 'conn t -> rank:int -> 'conn replica list

(** Replicas of [rank] on their way up (launching / registered / ready) —
    a rank with zero live but some pending replicas is {e at risk}, not
    yet exhausted. *)
val pending_slots : 'conn t -> rank:int -> 'conn replica list

val all_ready : 'conn t -> bool

(** Per-rank list of non-dead replicas, as sent in [Start] messages. *)
val snapshot : 'conn t -> Rmsg.member list array

val mark_finished : 'conn t -> rank:int -> unit
val finished : 'conn t -> rank:int -> bool
val all_finished : 'conn t -> bool
val iter : ('conn replica -> unit) -> 'conn t -> unit
val state_name : state -> string
