(** Membership / failover layer of the replication backend — the
    dispatcher-equivalent, but with no recovery waves: when a computing
    replica's control connection closes it is declared dead; if live
    siblings remain this is a {e failover} (nothing rolls back, the
    siblings simply keep computing) and, when [Config.rep_respawn] is
    set, a fresh replica is launched on a spare host to restore the
    replication degree via state transfer from a live sibling. A rank
    whose last live replica dies while a respawn is still in flight is
    {e at risk} for [Config.rep_failover_window] simulated seconds; if no
    replica of the rank comes back live within the window — or none is in
    flight at all — the run is declared {e replication-exhausted}
    (the Buggy-equivalent terminal verdict).

    Trace events: [launch], [replica-registered], [app-started],
    [replica-failover], [replica-respawn], [rank-at-risk],
    [replication-exhausted], [rank-finished], [app-completed], plus the
    bookkeeping events shared with the Vcl dispatcher ([reallocate],
    [no-spare], [spawn-failed], [closure-ignored]). *)

type outcome = Completed of float | Aborted of string

type t

(** [spawn env ~host ~host_of ~spare_hosts] starts the failover layer on
    [host] and launches every replica, placing [(rank, slot)] on
    [host_of ~rank ~slot]; [spare_hosts] is the pool used to relocate
    respawned replicas away from their (possibly faulty) original host. *)
val spawn :
  Renv.t -> host:int -> host_of:(rank:int -> slot:int -> int) -> spare_hosts:int list -> t

(** Blocks until the run completes or replication is exhausted. *)
val outcome : t -> outcome

val peek_outcome : t -> outcome option

(** Number of replica failures absorbed without any rollback. *)
val failovers : t -> int

(** Number of replicas respawned back to computing state. *)
val respawns : t -> int

val exhausted : t -> bool
val halt : t -> unit
