(** Deployment of the replication backend — the [Mpivcl.Deploy]
    counterpart for [Config.Replication].

    Host layout: compute hosts [0 .. n_compute-1] hold the replicas
    (slot [s] of rank [r] starts on host [s * n_ranks + r], so sibling
    replicas live on distinct hosts and slot 0 mirrors the rollback
    backends' placement for machine-indexed FAIL scenarios); unclaimed
    compute hosts form the respawn spare pool; then the FAIL coordinator
    host and the dispatcher host. No checkpoint scheduler and no
    checkpoint servers exist in this family. *)

type layout = {
  n_compute : int;
  coordinator_host : int;
  dispatcher_host : int;
  total_hosts : int;
}

val make_layout : n_compute:int -> layout

type handle = { env : Renv.t; lay : layout; rdispatcher : Rdispatcher.t }

(** Requires [cfg.protocol = Replication { degree }] with
    [degree * n_ranks <= n_compute]; raises [Invalid_argument]
    otherwise. *)
val launch :
  Simkern.Engine.t ->
  ?fci:Fci.Runtime.t ->
  cfg:Mpivcl.Config.t ->
  app:Mpivcl.App.t ->
  state_bytes:int ->
  n_compute:int ->
  unit ->
  handle

val cluster : handle -> Simos.Cluster.t
val net : handle -> Rmsg.t Simnet.Net.t
val teardown : handle -> unit
