(** One replica daemon: the mpirep counterpart of [Mpivcl.V2_daemon].

    Hosts the application process for logical rank [rank], replica slot
    [slot]. Every application send is logged (per destination rank, with
    a sequence number reused on re-execution) and multicast to all
    connected replicas of the destination; every reception is
    deduplicated by (source rank, tag). No checkpoints are ever taken —
    a respawned replica instead installs a full state image fetched from
    a live sibling ([State_req] / [State_xfer]) and re-executes from the
    sibling's last commit, its re-sends being absorbed by the receivers'
    dedup.

    With [resume = false] the daemon reports Ready after setup and waits
    for the all-ready [Start]; with [resume = true] it waits for a
    [Start] naming a donor, installs the donor's image, and only then
    reports Ready (which the dispatcher counts as the end of the
    failover). *)

val spawn :
  Renv.t ->
  rank:int ->
  slot:int ->
  host:int ->
  incarnation:int ->
  resume:bool ->
  Simkern.Proc.t
