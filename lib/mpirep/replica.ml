open Simkern
open Simos
module Net = Simnet.Net
module Message = Mpivcl.Message
module Config = Mpivcl.Config
module App = Mpivcl.App

type app_request =
  | A_send of Message.app_msg
  | A_recv of { src : int; tag : int; reply : int Ivar.t }
  | A_commit of int array
  | A_finalize

type dev =
  | D_ctrl of Rmsg.t option
  | D_peer of (int * int) * Rmsg.t option
  | D_peer_joined of int * int * Rmsg.t Net.conn * (int * int) list
  | D_state_req of Rmsg.t Net.conn
  | D_app of app_request

let pump cluster ~host ~name conn wrap events =
  ignore
    (Cluster.spawn_on cluster ~host ~name (fun () ->
         let rec run () =
           match Net.recv conn with
           | Net.Data m ->
               Mailbox.send events (wrap (Some m));
               run ()
           | Net.Closed -> Mailbox.send events (wrap None)
         in
         run ()))

let spawn (env : Renv.t) ~rank ~slot ~host ~incarnation ~resume =
  let eng = env.Renv.eng in
  let cluster = env.Renv.cluster in
  let cfg = env.Renv.cfg in
  let name = Printf.sprintf "rdaemon-%d.%d" rank slot in
  let trace ?level event detail = Engine.record ?level eng ~source:name ~event detail in
  (* Chatty per-message / per-state-transfer events are tagged Full so
     the Summary traces used by campaigns skip both formatting and
     storage (record_fmt defers formatting until the gate passes). *)
  let tracef ?level event fmt = Engine.record_fmt ?level eng ~source:name ~event fmt in
  Cluster.spawn_on cluster ~host ~name (fun () ->
      let self = Proc.self () in
      let app_proc = ref None in
      let vars = Fci.Control.make_vars () in
      let base_target =
        {
          Fci.Control.target_name = Printf.sprintf "rank%d.%d@%d" rank slot host;
          proc = self;
          kill =
            (fun () ->
              Option.iter Proc.kill !app_proc;
              Proc.kill self);
          freeze =
            (fun () ->
              Option.iter Proc.freeze !app_proc;
              Proc.freeze self);
          unfreeze =
            (fun () ->
              Option.iter Proc.unfreeze !app_proc;
              Proc.unfreeze self);
          read_var = (fun _ -> None);
          write_var = (fun _ _ -> false);
          subscribe_var = (fun _ -> ());
        }
      in
      let target = Fci.Control.with_vars base_target vars in
      (match env.Renv.fci with
      | Some rt -> Fci.Runtime.register rt ~machine:host target
      | None -> ());
      tracef ~level:Trace.Full "daemon-start" "host %d incarnation %d%s" host incarnation
        (if resume then " (respawn)" else "");
      Proc.sleep
        (cfg.Config.init_delay_min
        +. Rng.float env.Renv.rng (cfg.Config.init_delay_max -. cfg.Config.init_delay_min));
      match
        Net.connect env.Renv.net ~host ~to_host:env.Renv.dispatcher_host
          ~to_port:Config.dispatcher_port
      with
      | Error `Refused -> trace "daemon-abort" "dispatcher unreachable"
      | Ok dconn -> (
          ignore (Net.send dconn (Rmsg.Hello { rank; slot; incarnation }));
          Proc.sleep cfg.Config.handshake_delay;
          (match env.Renv.fci with
          | Some rt -> Fci.Runtime.breakpoint rt ~machine:host `Before "localMPI_setCommand"
          | None -> ());
          let listener = Net.listen env.Renv.net ~host ~port:Config.daemon_port in
          Fun.protect ~finally:(fun () -> Net.close_listener listener) @@ fun () ->
          let events : dev Mailbox.t = Mailbox.create () in
          ignore
            (Cluster.spawn_on cluster ~host ~name:(name ^ "-accept") (fun () ->
                 let rec accept_loop () =
                   match Net.accept listener with
                   | None -> ()
                   | Some conn ->
                       (match Net.recv conn with
                       | Net.Data (Rmsg.Peer_hello { rank = pr; slot = ps; consumed }) ->
                           Mailbox.send events (D_peer_joined (pr, ps, conn, consumed))
                       | Net.Data (Rmsg.State_req _) ->
                           Mailbox.send events (D_state_req conn)
                       | Net.Data _ | Net.Closed -> Net.close conn);
                       accept_loop ()
                 in
                 accept_loop ()));
          pump cluster ~host ~name:(name ^ "-ctrl") dconn (fun m -> D_ctrl m) events;
          (* A fresh replica reports Ready now and waits for the all-ready
             Start; a respawned one gets its Start (with a donor)
             immediately after Hello and reports Ready only once the
             donor's state is installed. *)
          if not resume then ignore (Net.send dconn (Rmsg.Ready { rank; slot }));

          (* ---------------- protocol state ---------------- *)
          let n = cfg.Config.n_ranks in
          let peer_conns : (int * int, Rmsg.t Net.conn) Hashtbl.t = Hashtbl.create 32 in
          let buffer : Message.app_msg list ref = ref [] in
          let parked : (int * int * int Ivar.t) list ref = ref [] in
          let seen : (int * int, unit) Hashtbl.t = Hashtbl.create 256 in
          let redelivery : Message.app_msg list ref = ref [] in
          let committed_state = ref (Array.make env.Renv.app.App.state_size 0) in
          (* per-destination-rank sequencing and send log; ssns are shared
             across the rank's replicas by construction (same deterministic
             app, and respawns inherit the donor's log) *)
          let next_ssn : (int, int) Hashtbl.t = Hashtbl.create 16 in
          let send_log : (int, (int * Message.app_msg) list) Hashtbl.t = Hashtbl.create 16 in
          (* per-source-rank highest received ssn *)
          let received : (int, int) Hashtbl.t = Hashtbl.create 16 in
          (* peer connections expected before the initial app start; -1
             until the Start message tells us *)
          let expected_conns = ref (-1) in

          let consumed_bounds () =
            Hashtbl.fold (fun src ssn acc -> (src, ssn) :: acc) received []
          in
          let forward_send (m : Message.app_msg) =
            (* Log before sending, reusing the ssn if this send is a
               re-execution of a logged one (post-respawn): receivers
               deduplicate by (src, tag), and stable ssns keep every
               replica's reception bounds comparable. *)
            let dst = m.Message.dst in
            let entries = Option.value ~default:[] (Hashtbl.find_opt send_log dst) in
            let ssn =
              match List.find_opt (fun (_, lm) -> lm.Message.tag = m.Message.tag) entries with
              | Some (ssn, _) -> ssn
              | None ->
                  let ssn = Option.value ~default:1 (Hashtbl.find_opt next_ssn dst) in
                  Hashtbl.replace next_ssn dst (ssn + 1);
                  Hashtbl.replace send_log dst ((ssn, m) :: entries);
                  ssn
            in
            let sent = ref 0 in
            Hashtbl.iter
              (fun (pr, _ps) conn ->
                if pr = dst then
                  if Net.send conn ~size:m.Message.bytes (Rmsg.App { msg = m; ssn }) then
                    incr sent)
              peer_conns;
            if !sent = 0 then
              tracef ~level:Trace.Full "send-deferred" "to rank %d (no live replica connected, logged)" dst
          in
          let deliver (m : Message.app_msg) =
            let rec split acc = function
              | [] -> None
              | (src, tag, reply) :: rest when src = m.Message.src && tag = m.Message.tag ->
                  parked := List.rev_append acc rest;
                  Some reply
              | r :: rest -> split (r :: acc) rest
            in
            match split [] !parked with
            | Some reply ->
                redelivery := m :: !redelivery;
                Ivar.fill reply m.Message.data
            | None -> buffer := !buffer @ [ m ]
          in
          let serve_recv src tag reply =
            let rec split acc = function
              | [] -> None
              | (m : Message.app_msg) :: rest when m.Message.src = src && m.Message.tag = tag ->
                  buffer := List.rev_append acc rest;
                  Some m
              | m :: rest -> split (m :: acc) rest
            in
            match split [] !buffer with
            | Some m ->
                redelivery := m :: !redelivery;
                Ivar.fill reply m.Message.data
            | None -> parked := !parked @ [ (src, tag, reply) ]
          in
          let flush_log ~peer_rank ~bound conn =
            (* Re-send everything logged for [peer_rank] above the peer's
               reception bound; the receiver's dedup drops overlaps. *)
            let entries =
              Option.value ~default:[] (Hashtbl.find_opt send_log peer_rank)
              |> List.filter (fun (ssn, _) -> ssn > bound)
              |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
            in
            if entries <> [] then
              tracef ~level:Trace.Full "log-flush" "%d messages to rank %d (> ssn %d)" (List.length entries)
                peer_rank bound;
            List.iter
              (fun (ssn, m) ->
                ignore (Net.send conn ~size:m.Message.bytes (Rmsg.App { msg = m; ssn })))
              entries
          in
          let spawn_app () =
            if Option.is_none !app_proc then begin
              let state = Array.copy !committed_state in
              let ctx =
                {
                  App.rank;
                  size = n;
                  state;
                  send =
                    (fun ~dst ~tag ?(bytes = 1024) data ->
                      Mailbox.send events
                        (D_app (A_send { Message.src = rank; dst; tag; data; bytes })));
                  recv =
                    (fun ~src ~tag ->
                      let reply = Ivar.create () in
                      Mailbox.send events (D_app (A_recv { src; tag; reply }));
                      Ivar.read reply);
                  commit =
                    (fun () -> Mailbox.send events (D_app (A_commit (Array.copy state))));
                  finalize = (fun () -> Mailbox.send events (D_app A_finalize));
                  set_app_var = (fun var v -> Fci.Control.set_var vars var v);
                  noise =
                    (let salt = Rng.int64 env.Renv.rng in
                     fun k ->
                       let x =
                         Int64.to_int
                           (Int64.logand
                              (Rng.int64 (Rng.create (Int64.add salt (Int64.of_int k))))
                              0xFFFFFL)
                       in
                       (float_of_int x /. 524287.5) -. 1.0);
                }
              in
              let p =
                Cluster.spawn_on cluster ~host ~name:(Printf.sprintf "rmpi-%d.%d" rank slot)
                  (fun () -> env.Renv.app.App.main ctx)
              in
              app_proc := Some p;
              trace ~level:Trace.Full "app-start" ""
            end
          in
          let maybe_start_app () =
            if !expected_conns >= 0 && Hashtbl.length peer_conns >= !expected_conns then
              spawn_app ()
          in
          let register_peer pr ps conn =
            Hashtbl.replace peer_conns (pr, ps) conn;
            pump cluster ~host ~name:(Printf.sprintf "%s-peer%d.%d" name pr ps) conn
              (fun m -> D_peer ((pr, ps), m))
              events
          in
          let connect_peer pr ps phost =
            if not (Hashtbl.mem peer_conns (pr, ps)) then
              match
                Net.connect env.Renv.net ~host ~to_host:phost ~to_port:Config.daemon_port
              with
              | Ok conn ->
                  ignore
                    (Net.send conn
                       (Rmsg.Peer_hello { rank; slot; consumed = consumed_bounds () }));
                  register_peer pr ps conn
              | Error `Refused -> tracef ~level:Trace.Full "peer-connect-failed" "replica %d.%d" pr ps
          in
          let build_image () =
            let logged =
              Hashtbl.fold (fun _ entries acc -> List.map snd entries @ acc) send_log []
            in
            let img_bytes =
              Message.image_bytes ~state_bytes:env.Renv.state_bytes
                (!buffer @ !redelivery @ logged)
            in
            {
              Message.img_rank = rank;
              img_wave = 0;
              img_state = Array.copy !committed_state;
              img_buffer = !buffer;
              img_redelivery = !redelivery;
              img_logged = [];
              img_seen = Hashtbl.fold (fun key () acc -> key :: acc) seen [];
              img_received = consumed_bounds ();
              img_send_log =
                Hashtbl.fold (fun dst entries acc -> (dst, entries) :: acc) send_log [];
              img_next_ssn = Hashtbl.fold (fun dst ssn acc -> (dst, ssn) :: acc) next_ssn [];
              img_bytes;
            }
          in
          let install_image (img : Message.image) =
            committed_state := Array.copy img.Message.img_state;
            List.iter (fun key -> Hashtbl.replace seen key ()) img.Message.img_seen;
            List.iter
              (fun (src, ssn) -> Hashtbl.replace received src ssn)
              img.Message.img_received;
            List.iter
              (fun (dst, entries) -> Hashtbl.replace send_log dst entries)
              img.Message.img_send_log;
            List.iter
              (fun (dst, ssn) -> Hashtbl.replace next_ssn dst ssn)
              img.Message.img_next_ssn;
            (* messages consumed since the donor's last commit are
               re-delivered to the re-executing application *)
            buffer := img.Message.img_redelivery @ img.Message.img_buffer
          in
          let rec loop () =
            match Mailbox.recv events with
            | D_ctrl None -> trace "daemon-exit" "dispatcher connection lost"
            | D_ctrl (Some Rmsg.Shutdown) ->
                Option.iter Proc.kill !app_proc;
                trace "daemon-exit" "shutdown"
            | D_ctrl (Some (Rmsg.Start { members; resume = false; _ })) ->
                trace ~level:Trace.Full "start" "";
                let expected = ref 0 in
                Array.iteri
                  (fun r' ms -> if r' <> rank then expected := !expected + List.length ms)
                  members;
                expected_conns := !expected;
                (* lower ranks listen, higher ranks connect: each inter-rank
                   replica pair gets exactly one link *)
                for r' = 0 to rank - 1 do
                  List.iter
                    (fun mb -> connect_peer r' mb.Rmsg.mb_slot mb.Rmsg.mb_host)
                    members.(r')
                done;
                maybe_start_app ();
                loop ()
            | D_ctrl (Some (Rmsg.Start { resume = true; donor; _ })) -> (
                match donor with
                | None -> trace "state-transfer-failed" "no donor"
                | Some d -> (
                    tracef ~level:Trace.Full "state-fetch" "from slot %d on host %d" d.Rmsg.mb_slot
                      d.Rmsg.mb_host;
                    match
                      Net.connect env.Renv.net ~host ~to_host:d.Rmsg.mb_host
                        ~to_port:Config.daemon_port
                    with
                    | Error `Refused -> trace "state-transfer-failed" "donor unreachable"
                    | Ok sc -> (
                        ignore (Net.send sc (Rmsg.State_req { rank; slot }));
                        match Net.recv sc with
                        | Net.Data (Rmsg.State_xfer { image }) ->
                            Net.close sc;
                            install_image image;
                            Proc.sleep cfg.Config.restart_settle;
                            tracef ~level:Trace.Full "restored" "from slot %d (%d bytes)" d.Rmsg.mb_slot
                              image.Message.img_bytes;
                            ignore (Net.send dconn (Rmsg.Ready { rank; slot }));
                            (* peers connect to us on the dispatcher's
                               Peer_update; until then sends are logged and
                               flushed at link establishment *)
                            spawn_app ();
                            loop ()
                        | Net.Data _ | Net.Closed ->
                            Net.close sc;
                            trace "state-transfer-failed" "donor lost mid-transfer")))
            | D_ctrl (Some (Rmsg.Peer_update { rank = pr; slot = ps; host = phost })) ->
                connect_peer pr ps phost;
                loop ()
            | D_ctrl (Some msg) ->
                trace "protocol-error" (Format.asprintf "from dispatcher: %a" Rmsg.pp msg);
                loop ()
            | D_peer_joined (pr, ps, conn, consumed) ->
                register_peer pr ps conn;
                ignore
                  (Net.send conn (Rmsg.Peer_hello { rank; slot; consumed = consumed_bounds () }));
                flush_log ~peer_rank:pr
                  ~bound:(Option.value ~default:0 (List.assoc_opt rank consumed))
                  conn;
                maybe_start_app ();
                loop ()
            | D_peer ((pr, ps), Some (Rmsg.Peer_hello { consumed; _ })) ->
                (* acceptor's reply on a link we initiated: flush our log
                   for its rank above its bound *)
                (match Hashtbl.find_opt peer_conns (pr, ps) with
                | Some conn ->
                    flush_log ~peer_rank:pr
                      ~bound:(Option.value ~default:0 (List.assoc_opt rank consumed))
                      conn
                | None -> ());
                loop ()
            | D_peer (_, Some (Rmsg.App { msg = m; ssn })) ->
                let src = m.Message.src in
                let bound = Option.value ~default:0 (Hashtbl.find_opt received src) in
                if ssn > bound then Hashtbl.replace received src ssn;
                if Hashtbl.mem seen (src, m.Message.tag) then
                  tracef ~level:Trace.Full "duplicate-dropped" "%d->%d tag %d ssn %d" src m.Message.dst
                    m.Message.tag ssn
                else begin
                  Hashtbl.replace seen (src, m.Message.tag) ();
                  deliver m
                end;
                loop ()
            | D_peer ((pr, ps), None) ->
                Hashtbl.remove peer_conns (pr, ps);
                tracef ~level:Trace.Full "peer-lost" "replica %d.%d" pr ps;
                (* pre-start: a replica listed in our Start died; don't
                   wait for a link that will be re-established (or never
                   come) — the respawn reconnects via Peer_update *)
                if Option.is_none !app_proc && !expected_conns > 0 then begin
                  expected_conns := !expected_conns - 1;
                  maybe_start_app ()
                end;
                loop ()
            | D_peer ((pr, ps), Some msg) ->
                trace "protocol-error"
                  (Format.asprintf "from replica %d.%d: %a" pr ps Rmsg.pp msg);
                loop ()
            | D_state_req conn ->
                let img = build_image () in
                ignore (Net.send conn ~size:img.Message.img_bytes (Rmsg.State_xfer { image = img }));
                tracef ~level:Trace.Full "state-serve" "%d bytes" img.Message.img_bytes;
                loop ()
            | D_app (A_send m) ->
                forward_send m;
                loop ()
            | D_app (A_recv { src; tag; reply }) ->
                serve_recv src tag reply;
                loop ()
            | D_app (A_commit snapshot) ->
                committed_state := snapshot;
                redelivery := [];
                loop ()
            | D_app A_finalize ->
                ignore (Net.send dconn (Rmsg.Rank_done { rank; slot }));
                trace ~level:Trace.Full "rank-done" "";
                loop ()
          in
          loop ()))
