type state = Launching | Registered | Ready | Computing | Dead

type 'conn replica = {
  rank : int;
  slot : int;
  mutable m_host : int;
  mutable m_inc : int;
  mutable m_conn : 'conn option;
  mutable m_state : state;
  mutable m_resume : bool;
}

type 'conn t = {
  n_ranks : int;
  degree : int;
  table : 'conn replica array array;
  finished : bool array;
}

let create ~n_ranks ~degree ~host_of =
  {
    n_ranks;
    degree;
    table =
      Array.init n_ranks (fun rank ->
          Array.init degree (fun slot ->
              {
                rank;
                slot;
                m_host = host_of ~rank ~slot;
                m_inc = -1;
                m_conn = None;
                m_state = Launching;
                m_resume = false;
              }));
    finished = Array.make n_ranks false;
  }

let get t ~rank ~slot = t.table.(rank).(slot)
let n_ranks t = t.n_ranks
let degree t = t.degree

let live_slots t ~rank =
  Array.to_list t.table.(rank)
  |> List.filter (fun r -> r.m_state = Computing && Option.is_some r.m_conn)

let pending_slots t ~rank =
  Array.to_list t.table.(rank)
  |> List.filter (fun r ->
         match r.m_state with
         | Launching | Registered | Ready -> true
         | Computing | Dead -> false)

let all_ready t =
  Array.for_all (fun row -> Array.for_all (fun r -> r.m_state = Ready) row) t.table

let snapshot t =
  Array.map
    (fun row ->
      Array.to_list row
      |> List.filter_map (fun r ->
             if r.m_state = Dead then None
             else Some { Rmsg.mb_slot = r.slot; mb_host = r.m_host }))
    t.table

let mark_finished t ~rank = t.finished.(rank) <- true
let finished t ~rank = t.finished.(rank)
let all_finished t = Array.for_all Fun.id t.finished
let iter f t = Array.iter (Array.iter f) t.table

let state_name = function
  | Launching -> "launching"
  | Registered -> "registered"
  | Ready -> "ready"
  | Computing -> "computing"
  | Dead -> "dead"
