open Simkern
open Simos

type t = {
  eng : Engine.t;
  cluster : Cluster.t;
  net : Rmsg.t Simnet.Net.t;
  fci : Fci.Runtime.t option;
  cfg : Mpivcl.Config.t;
  degree : int;
  app : Mpivcl.App.t;
  state_bytes : int;
  dispatcher_host : int;
  rng : Rng.t;
}
