type state = { src : string; mutable pos : int; mutable line : int; mutable col : int }

let loc st = { Loc.line = st.line; col = st.col }

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let peek2 st = if st.pos + 1 < String.length st.src then Some st.src.[st.pos + 1] else None

let advance st =
  (match peek st with
  | Some '\n' ->
      st.line <- st.line + 1;
      st.col <- 1
  | Some _ -> st.col <- st.col + 1
  | None -> ());
  st.pos <- st.pos + 1

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let keyword_of_ident = function
  | "Daemon" | "daemon" -> Some Token.KW_daemon
  | "node" -> Some Token.KW_node
  | "int" -> Some Token.KW_int
  | "time" -> Some Token.KW_time
  | "always" -> Some Token.KW_always
  | "timer" -> Some Token.KW_timer
  | "onload" -> Some Token.KW_onload
  | "onexit" -> Some Token.KW_onexit
  | "onerror" -> Some Token.KW_onerror
  | "before" -> Some Token.KW_before
  | "after" -> Some Token.KW_after
  | "goto" -> Some Token.KW_goto
  | "halt" -> Some Token.KW_halt
  | "stop" -> Some Token.KW_stop
  | "continue" -> Some Token.KW_continue
  | "on" -> Some Token.KW_on
  | "machine" -> Some Token.KW_machine
  | "machines" -> Some Token.KW_machines
  | "FAIL_RANDOM" -> Some Token.KW_random
  | "FAIL_SENDER" -> Some Token.KW_sender
  | "watch" -> Some Token.KW_watch
  | "set" -> Some Token.KW_set
  | "partition" -> Some Token.KW_partition
  | "heal" -> Some Token.KW_heal
  | "degrade" -> Some Token.KW_degrade
  | "switch" -> Some Token.KW_switch
  | "pod" -> Some Token.KW_pod
  | "rack" -> Some Token.KW_rack
  | "service" -> Some Token.KW_service
  | _ -> None

let rec skip_ws_and_comments st =
  match peek st with
  | Some (' ' | '\t' | '\r' | '\n') ->
      advance st;
      skip_ws_and_comments st
  | Some '/' -> (
      match peek2 st with
      | Some '/' ->
          let rec to_eol () =
            match peek st with
            | Some '\n' | None -> ()
            | Some _ ->
                advance st;
                to_eol ()
          in
          to_eol ();
          skip_ws_and_comments st
      | Some '*' ->
          let start = loc st in
          advance st;
          advance st;
          let rec to_close () =
            match (peek st, peek2 st) with
            | Some '*', Some '/' ->
                advance st;
                advance st
            | Some _, _ ->
                advance st;
                to_close ()
            | None, _ -> Loc.error start "unterminated comment"
          in
          to_close ();
          skip_ws_and_comments st
      | Some _ | None -> ())
  | Some _ | None -> ()

let lex_ident st =
  let start = st.pos in
  let rec run () =
    match peek st with
    | Some c when is_ident_char c ->
        advance st;
        run ()
    | Some _ | None -> ()
  in
  run ();
  String.sub st.src start (st.pos - start)

let lex_int st =
  let start = st.pos in
  let rec run () =
    match peek st with
    | Some c when is_digit c ->
        advance st;
        run ()
    | Some _ | None -> ()
  in
  run ();
  int_of_string (String.sub st.src start (st.pos - start))

let tokenize src =
  let st = { src; pos = 0; line = 1; col = 1 } in
  let rec next acc =
    skip_ws_and_comments st;
    let l = loc st in
    let emit tok n =
      for _ = 1 to n do
        advance st
      done;
      next ({ Token.tok; loc = l } :: acc)
    in
    match peek st with
    | None -> List.rev ({ Token.tok = Token.EOF; loc = l } :: acc)
    | Some c when is_ident_start c ->
        let id = lex_ident st in
        let tok =
          match keyword_of_ident id with Some kw -> kw | None -> Token.IDENT id
        in
        next ({ Token.tok; loc = l } :: acc)
    | Some c when is_digit c ->
        let n = lex_int st in
        next ({ Token.tok = Token.INT n; loc = l } :: acc)
    | Some '{' -> emit Token.LBRACE 1
    | Some '}' -> emit Token.RBRACE 1
    | Some '(' -> emit Token.LPAREN 1
    | Some ')' -> emit Token.RPAREN 1
    | Some '[' -> emit Token.LBRACKET 1
    | Some ']' -> emit Token.RBRACKET 1
    | Some ':' -> emit Token.COLON 1
    | Some ';' -> emit Token.SEMI 1
    | Some ',' -> emit Token.COMMA 1
    | Some '@' -> emit Token.AT 1
    | Some '+' -> emit Token.PLUS 1
    | Some '*' -> emit Token.STAR 1
    | Some '/' -> emit Token.SLASH 1
    | Some '%' -> emit Token.PERCENT 1
    | Some '?' -> emit Token.QUESTION 1
    | Some '-' -> ( match peek2 st with Some '>' -> emit Token.ARROW 2 | _ -> emit Token.MINUS 1)
    | Some '!' -> ( match peek2 st with Some '=' -> emit Token.NEQ 2 | _ -> emit Token.BANG 1)
    | Some '&' -> (
        match peek2 st with
        | Some '&' -> emit Token.AND 2
        | _ -> Loc.error l "expected '&&'")
    | Some '=' -> ( match peek2 st with Some '=' -> emit Token.EQEQ 2 | _ -> emit Token.ASSIGN 1)
    | Some '<' -> (
        match peek2 st with
        | Some '=' -> emit Token.LE 2
        | Some '>' -> emit Token.NEQ 2
        | _ -> emit Token.LT 1)
    | Some '>' -> ( match peek2 st with Some '=' -> emit Token.GE 2 | _ -> emit Token.GT 1)
    | Some '.' -> (
        match peek2 st with
        | Some '.' -> emit Token.DOTDOT 2
        | _ -> Loc.error l "expected '..'")
    | Some c -> Loc.error l "illegal character %C" c
  in
  next []
