open Ast

let binop_string = function Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Mod -> "%"

let relop_string = function
  | Eq -> "=="
  | Ne -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

(* Precedence levels: 0 additive, 1 multiplicative, 2 atoms. *)
let rec pp_expr_prec level ppf = function
  | Int n -> if n < 0 then Format.fprintf ppf "(0 - %d)" (-n) else Format.pp_print_int ppf n
  | Var s -> Format.pp_print_string ppf s
  | App_var s -> Format.fprintf ppf "@@%s" s
  | Random (lo, hi) ->
      Format.fprintf ppf "FAIL_RANDOM(%a, %a)" (pp_expr_prec 0) lo (pp_expr_prec 0) hi
  | Binop (op, a, b) ->
      let my_level = match op with Add | Sub -> 0 | Mul | Div | Mod -> 1 in
      let open_paren = my_level < level in
      if open_paren then Format.pp_print_char ppf '(';
      (* Left-associative: the right operand prints one level tighter. *)
      Format.fprintf ppf "%a %s %a" (pp_expr_prec my_level) a (binop_string op)
        (pp_expr_prec (my_level + 1)) b;
      if open_paren then Format.pp_print_char ppf ')'

let pp_expr ppf e = pp_expr_prec 0 ppf e

let pp_cond ppf (op, a, b) =
  Format.fprintf ppf "%a %s %a" pp_expr a (relop_string op) pp_expr b

let pp_trigger ppf = function
  | T_timer -> Format.pp_print_string ppf "timer"
  | T_recv m -> Format.fprintf ppf "?%s" m
  | T_onload -> Format.pp_print_string ppf "onload"
  | T_onexit -> Format.pp_print_string ppf "onexit"
  | T_onerror -> Format.pp_print_string ppf "onerror"
  | T_before f -> Format.fprintf ppf "before(%s)" f
  | T_after f -> Format.fprintf ppf "after(%s)" f
  | T_watch v -> Format.fprintf ppf "watch(%s)" v

let pp_guard ppf g =
  let atoms =
    (match g.trigger with
    | Some t -> [ Format.asprintf "%a" pp_trigger t ]
    | None -> [])
    @ List.map (Format.asprintf "%a" pp_cond) g.conds
  in
  Format.pp_print_string ppf (String.concat " && " atoms)

(* pod/rack indices parse as a single factor, so anything compound must
   print parenthesized for the round trip to hold. *)
let pp_factor ppf e =
  match e with
  | Int n when n >= 0 -> Format.pp_print_int ppf n
  | Var _ | App_var _ | Random _ -> pp_expr ppf e
  | Int _ | Binop _ -> Format.fprintf ppf "(%a)" pp_expr e

let pp_dest ppf = function
  | D_instance s -> Format.pp_print_string ppf s
  | D_indexed (s, e) -> Format.fprintf ppf "%s[%a]" s pp_expr e
  | D_group s -> Format.pp_print_string ppf s
  | D_sender -> Format.pp_print_string ppf "FAIL_SENDER"
  | D_topo (Sel_switch (tier, e)) ->
      Format.fprintf ppf "switch %s[%a]" (tier_name tier) pp_expr e
  | D_topo (Sel_pod e) -> Format.fprintf ppf "pod %a" pp_factor e
  | D_topo (Sel_rack e) -> Format.fprintf ppf "rack %a" pp_factor e

let pp_service_suffix ppf = function
  | None -> ()
  | Some (Svc_ckpt e) -> Format.fprintf ppf " service ckpt[%a]" pp_expr e
  | Some Svc_sched -> Format.pp_print_string ppf " service sched"
  | Some Svc_disp -> Format.pp_print_string ppf " service disp"

let pp_action ppf = function
  | A_goto n -> Format.fprintf ppf "goto %s" n
  | A_send (m, d) -> Format.fprintf ppf "!%s(%a)" m pp_dest d
  | A_assign (v, e) -> Format.fprintf ppf "%s = %a" v pp_expr e
  | A_halt svc -> Format.fprintf ppf "halt%a" pp_service_suffix svc
  | A_stop svc -> Format.fprintf ppf "stop%a" pp_service_suffix svc
  | A_continue svc -> Format.fprintf ppf "continue%a" pp_service_suffix svc
  | A_set_app (v, e) -> Format.fprintf ppf "set %s = %a" v pp_expr e
  | A_partition (a, None) -> Format.fprintf ppf "partition %a" pp_dest a
  | A_partition (a, Some b) -> Format.fprintf ppf "partition %a %a" pp_dest a pp_dest b
  | A_heal -> Format.pp_print_string ppf "heal"
  | A_degrade d ->
      Format.fprintf ppf "degrade %a" pp_dest d.deg_target;
      let field name = function
        | Some e -> Format.fprintf ppf " %s = %a" name pp_expr e
        | None -> ()
      in
      field "loss" d.deg_loss;
      field "latency" d.deg_latency;
      field "jitter" d.deg_jitter

let pp_transition ppf t =
  Format.fprintf ppf "@[<h>%a ->@ %a;@]" pp_guard t.guard
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
       pp_action)
    t.actions

let pp_node ppf n =
  Format.fprintf ppf "@[<v 2>node %s:" n.n_id;
  List.iter (fun (v, e) -> Format.fprintf ppf "@,always int %s = %a;" v pp_expr e) n.n_always;
  (match n.n_timer with
  | Some (v, e) -> Format.fprintf ppf "@,time %s = %a;" v pp_expr e
  | None -> ());
  List.iter (fun t -> Format.fprintf ppf "@,%a" pp_transition t) n.n_transitions;
  Format.pp_close_box ppf ()

let pp_daemon ppf d =
  Format.fprintf ppf "@[<v 2>Daemon %s {" d.d_name;
  List.iter (fun (v, e) -> Format.fprintf ppf "@,int %s = %a;" v pp_expr e) d.d_vars;
  List.iter (fun n -> Format.fprintf ppf "@,%a" pp_node n) d.d_nodes;
  Format.fprintf ppf "@]@,}"

let pp_deployment ppf = function
  | Dep_singleton { inst; daemon; machine; _ } ->
      Format.fprintf ppf "%s : %s on machine %d;" inst daemon machine
  | Dep_group { inst; count; daemon; mach_lo; mach_hi; _ } ->
      Format.fprintf ppf "%s[%d] : %s on machines %d .. %d;" inst count daemon mach_lo mach_hi

let pp_program ppf p =
  Format.pp_open_vbox ppf 0;
  List.iteri
    (fun i d ->
      if i > 0 then Format.pp_print_cut ppf ();
      Format.fprintf ppf "%a@," pp_daemon d)
    p.daemons;
  List.iter (fun dep -> Format.fprintf ppf "%a@," pp_deployment dep) p.deployments;
  Format.pp_close_box ppf ()

let program_to_string p = Format.asprintf "%a" pp_program p
