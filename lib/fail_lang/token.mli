(** Lexical tokens of the FAIL language. *)

type t =
  | IDENT of string
  | INT of int
  | KW_daemon
  | KW_node
  | KW_int
  | KW_time
  | KW_always
  | KW_timer
  | KW_onload
  | KW_onexit
  | KW_onerror
  | KW_before
  | KW_after
  | KW_goto
  | KW_halt
  | KW_stop
  | KW_continue
  | KW_on
  | KW_machine
  | KW_machines
  | KW_random  (** [FAIL_RANDOM] *)
  | KW_sender  (** [FAIL_SENDER] *)
  | KW_watch
  | KW_set
  | KW_partition  (** network cut between host sets *)
  | KW_heal  (** remove every network fault *)
  | KW_degrade  (** lossy / slow links *)
  | KW_switch  (** fabric switch component, [switch agg\[2\]] *)
  | KW_pod  (** fat-tree pod component *)
  | KW_rack  (** rack (edge-switch host set) component *)
  | KW_service  (** infrastructure service target, [halt service ckpt\[0\]] *)
  | LBRACE
  | RBRACE
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | COLON
  | SEMI
  | COMMA
  | ARROW  (** [->] *)
  | BANG
  | QUESTION
  | AT
  | AND  (** [&&] *)
  | EQEQ
  | NEQ  (** [!=] or [<>] *)
  | LE
  | GE
  | LT
  | GT
  | ASSIGN  (** [=] *)
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | DOTDOT
  | EOF

type located = { tok : t; loc : Loc.t }

val pp : Format.formatter -> t -> unit
val to_string : t -> string
