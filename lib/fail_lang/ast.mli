(** Abstract syntax of the FAIL language.

    FAIL (FAult Injection Language, [HT05]) describes fault scenarios as
    communicating state machines ("daemons") associated with machines or
    groups of machines. This reconstruction covers every construct used by
    the paper's listings (Figures 4, 5a, 7a, 8 and 10) — daemon-global
    variables, per-node [always] declarations and timers, message
    send/receive, the FAIL-MPI lifecycle triggers [onload]/[onexit]/
    [onerror], debugger breakpoints [before]/[after], process-control
    actions [halt]/[stop]/[continue], [FAIL_RANDOM] and [FAIL_SENDER] —
    plus the conclusion's planned feature: reading ([@var] in expressions,
    [watch] triggers) and writing ([set]) variables of the application
    under test.

    Concrete syntax of a deployment (associating daemons to machines):
    {v
      P1 : ADV1 on machine 53;
      G1[53] : ADV2 on machines 0 .. 52;
    v} *)

type binop = Add | Sub | Mul | Div | Mod

type relop = Eq | Ne | Lt | Le | Gt | Ge

type expr =
  | Int of int
  | Var of string  (** daemon variable, [always] variable or parameter *)
  | App_var of string  (** [@name]: variable of the controlled process *)
  | Binop of binop * expr * expr
  | Random of expr * expr  (** [FAIL_RANDOM(lo, hi)], uniform inclusive *)

(** A conjunction of relational atoms ([c1 && c2 && ...]). *)
type cond = relop * expr * expr

(** The event component of a guard. A transition with [trigger = None]
    is evaluated on node entry ("epsilon" transition). *)
type trigger =
  | T_timer  (** the node timer expired *)
  | T_recv of string  (** [?msg]: a message arrived *)
  | T_onload  (** a process registered with this daemon *)
  | T_onexit  (** the controlled process exited normally *)
  | T_onerror  (** the controlled process exited abnormally *)
  | T_before of string  (** controlled process about to call the function *)
  | T_after of string  (** controlled process returned from the function *)
  | T_watch of string  (** [watch(name)]: a watched application variable changed *)

type guard = { trigger : trigger option; conds : cond list }

(** Switch tier of a fat-tree fabric (see {!Simtopo.Topo.tier}; duplicated
    here so the language layer stays dependency-free). *)
type tier = Tier_edge | Tier_agg | Tier_core

val tier_name : tier -> string
val tier_of_name : string -> tier option

(** Topology component selector: [switch agg\[2\]], [pod 1], [rack 3].
    Indices are FAIL expressions so scenarios can randomise or parameterise
    the component ([rack FAIL_RANDOM(0, 7)]). Resolution against the
    deployed fabric happens at runtime, not in sema. *)
type topo_sel =
  | Sel_switch of tier * expr
  | Sel_pod of expr
  | Sel_rack of expr

(** Destination of a message send or target of a network fault. *)
type dest =
  | D_instance of string  (** a singleton instance, e.g. [P1] *)
  | D_indexed of string * expr  (** a group member, e.g. [G1\[ran\]] *)
  | D_group of string  (** a whole group (broadcast) *)
  | D_sender  (** [FAIL_SENDER]: sender of the triggering message *)
  | D_topo of topo_sel
      (** a fabric component; only meaningful in [partition]/[degrade] *)

(** Infrastructure service selector: [halt service ckpt\[0\]] kills the
    first checkpoint server, [stop service sched] freezes the checkpoint
    scheduler, [continue service disp] thaws the dispatcher. Services are
    registered by name by the deployed system under test, not by the
    scenario's deployment table; the [ckpt] index is a FAIL expression so
    scenarios can randomise the replica. *)
type service_sel = Svc_ckpt of expr | Svc_sched | Svc_disp

(** Network degradation targeting the machines behind a destination:
    [degrade G1 loss = 50 latency = 20 jitter = 5]. Units are what FAIL's
    integer expressions allow — [loss] in permille (0..1000), [latency]
    and [jitter] in milliseconds. Omitted fields leave that dimension
    unchanged (zero). *)
type degrade = {
  deg_target : dest;
  deg_loss : expr option;
  deg_latency : expr option;
  deg_jitter : expr option;
}

type action =
  | A_goto of string
  | A_send of string * dest  (** [!msg(dest)] *)
  | A_assign of string * expr
  | A_halt of service_sel option
      (** kill the controlled process (crash injection), or with a
          selector an infrastructure service ([halt service ckpt\[i\]]) *)
  | A_stop of service_sel option  (** suspend the controlled process or a service *)
  | A_continue of service_sel option  (** resume the controlled process or a service *)
  | A_set_app of string * expr  (** [set name = expr] on the controlled process *)
  | A_partition of dest * dest option
      (** [partition A B]: bidirectional network cut between the machines
          of [A] and those of [B]; [partition A] isolates [A]'s machines
          from every other host *)
  | A_heal  (** remove every installed network fault *)
  | A_degrade of degrade  (** [degrade DEST loss = p latency = d jitter = j] *)

type transition = { t_loc : Loc.t; guard : guard; actions : action list }

type node = {
  n_loc : Loc.t;
  n_id : string;  (** numeric labels are normalised to their digits *)
  n_always : (string * expr) list;  (** re-evaluated at each node entry *)
  n_timer : (string * expr) option;  (** armed at each node entry *)
  n_transitions : transition list;
}

type daemon = {
  d_loc : Loc.t;
  d_name : string;
  d_vars : (string * expr) list;  (** daemon-global variables *)
  d_nodes : node list;  (** first node is initial *)
}

type deployment =
  | Dep_singleton of { dep_loc : Loc.t; inst : string; daemon : string; machine : int }
  | Dep_group of {
      dep_loc : Loc.t;
      inst : string;
      count : int;
      daemon : string;
      mach_lo : int;
      mach_hi : int;
    }

type program = { daemons : daemon list; deployments : deployment list }

val equal_expr : expr -> expr -> bool
val equal_program : program -> program -> bool

(** Number of syntactic nodes, transitions and actions — used by the
    bench harness to report scenario complexity. *)
val program_size : program -> int
