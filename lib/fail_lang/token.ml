type t =
  | IDENT of string
  | INT of int
  | KW_daemon
  | KW_node
  | KW_int
  | KW_time
  | KW_always
  | KW_timer
  | KW_onload
  | KW_onexit
  | KW_onerror
  | KW_before
  | KW_after
  | KW_goto
  | KW_halt
  | KW_stop
  | KW_continue
  | KW_on
  | KW_machine
  | KW_machines
  | KW_random
  | KW_sender
  | KW_watch
  | KW_set
  | KW_partition
  | KW_heal
  | KW_degrade
  | KW_switch
  | KW_pod
  | KW_rack
  | KW_service
  | LBRACE
  | RBRACE
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | COLON
  | SEMI
  | COMMA
  | ARROW
  | BANG
  | QUESTION
  | AT
  | AND
  | EQEQ
  | NEQ
  | LE
  | GE
  | LT
  | GT
  | ASSIGN
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | DOTDOT
  | EOF

type located = { tok : t; loc : Loc.t }

let to_string = function
  | IDENT s -> Printf.sprintf "identifier %S" s
  | INT n -> Printf.sprintf "integer %d" n
  | KW_daemon -> "'Daemon'"
  | KW_node -> "'node'"
  | KW_int -> "'int'"
  | KW_time -> "'time'"
  | KW_always -> "'always'"
  | KW_timer -> "'timer'"
  | KW_onload -> "'onload'"
  | KW_onexit -> "'onexit'"
  | KW_onerror -> "'onerror'"
  | KW_before -> "'before'"
  | KW_after -> "'after'"
  | KW_goto -> "'goto'"
  | KW_halt -> "'halt'"
  | KW_stop -> "'stop'"
  | KW_continue -> "'continue'"
  | KW_on -> "'on'"
  | KW_machine -> "'machine'"
  | KW_machines -> "'machines'"
  | KW_random -> "'FAIL_RANDOM'"
  | KW_sender -> "'FAIL_SENDER'"
  | KW_watch -> "'watch'"
  | KW_set -> "'set'"
  | KW_partition -> "'partition'"
  | KW_heal -> "'heal'"
  | KW_degrade -> "'degrade'"
  | KW_switch -> "'switch'"
  | KW_pod -> "'pod'"
  | KW_rack -> "'rack'"
  | KW_service -> "'service'"
  | LBRACE -> "'{'"
  | RBRACE -> "'}'"
  | LPAREN -> "'('"
  | RPAREN -> "')'"
  | LBRACKET -> "'['"
  | RBRACKET -> "']'"
  | COLON -> "':'"
  | SEMI -> "';'"
  | COMMA -> "','"
  | ARROW -> "'->'"
  | BANG -> "'!'"
  | QUESTION -> "'?'"
  | AT -> "'@'"
  | AND -> "'&&'"
  | EQEQ -> "'=='"
  | NEQ -> "'!='"
  | LE -> "'<='"
  | GE -> "'>='"
  | LT -> "'<'"
  | GT -> "'>'"
  | ASSIGN -> "'='"
  | PLUS -> "'+'"
  | MINUS -> "'-'"
  | STAR -> "'*'"
  | SLASH -> "'/'"
  | PERCENT -> "'%'"
  | DOTDOT -> "'..'"
  | EOF -> "end of input"

let pp ppf t = Format.pp_print_string ppf (to_string t)
