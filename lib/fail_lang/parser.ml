open Ast

type state = { toks : Token.located array; mutable idx : int }

let cur st = st.toks.(st.idx)
let cur_tok st = (cur st).Token.tok
let cur_loc st = (cur st).Token.loc

let advance st = if st.idx < Array.length st.toks - 1 then st.idx <- st.idx + 1

let expect st tok =
  if cur_tok st = tok then advance st
  else
    Loc.error (cur_loc st) "expected %s, found %s" (Token.to_string tok)
      (Token.to_string (cur_tok st))

let expect_ident st =
  match cur_tok st with
  | Token.IDENT s ->
      advance st;
      s
  | t -> Loc.error (cur_loc st) "expected identifier, found %s" (Token.to_string t)

let expect_int st =
  match cur_tok st with
  | Token.INT n ->
      advance st;
      n
  | t -> Loc.error (cur_loc st) "expected integer, found %s" (Token.to_string t)

(* node identifiers may be numeric ("node 1:") or symbolic *)
let expect_node_id st =
  match cur_tok st with
  | Token.INT n ->
      advance st;
      string_of_int n
  | Token.IDENT s ->
      advance st;
      s
  | t -> Loc.error (cur_loc st) "expected node identifier, found %s" (Token.to_string t)

(* ------------------------------------------------------------------ *)
(* Expressions *)

let rec parse_expr_prec st =
  let lhs = parse_term st in
  let rec more lhs =
    match cur_tok st with
    | Token.PLUS ->
        advance st;
        more (Binop (Add, lhs, parse_term st))
    | Token.MINUS ->
        advance st;
        more (Binop (Sub, lhs, parse_term st))
    | _ -> lhs
  in
  more lhs

and parse_term st =
  let lhs = parse_factor st in
  let rec more lhs =
    match cur_tok st with
    | Token.STAR ->
        advance st;
        more (Binop (Mul, lhs, parse_factor st))
    | Token.SLASH ->
        advance st;
        more (Binop (Div, lhs, parse_factor st))
    | Token.PERCENT ->
        advance st;
        more (Binop (Mod, lhs, parse_factor st))
    | _ -> lhs
  in
  more lhs

and parse_factor st =
  match cur_tok st with
  | Token.INT n ->
      advance st;
      Int n
  | Token.MINUS ->
      advance st;
      Binop (Sub, Int 0, parse_factor st)
  | Token.IDENT s ->
      advance st;
      Var s
  | Token.AT ->
      advance st;
      App_var (expect_ident st)
  | Token.KW_random ->
      advance st;
      expect st Token.LPAREN;
      let lo = parse_expr_prec st in
      expect st Token.COMMA;
      let hi = parse_expr_prec st in
      expect st Token.RPAREN;
      Random (lo, hi)
  | Token.LPAREN ->
      advance st;
      let e = parse_expr_prec st in
      expect st Token.RPAREN;
      e
  | t -> Loc.error (cur_loc st) "expected expression, found %s" (Token.to_string t)

let parse_relop st =
  match cur_tok st with
  | Token.EQEQ ->
      advance st;
      Eq
  | Token.NEQ ->
      advance st;
      Ne
  | Token.LE ->
      advance st;
      Le
  | Token.GE ->
      advance st;
      Ge
  | Token.LT ->
      advance st;
      Lt
  | Token.GT ->
      advance st;
      Gt
  | t -> Loc.error (cur_loc st) "expected comparison operator, found %s" (Token.to_string t)

(* ------------------------------------------------------------------ *)
(* Guards *)

let parse_paren_ident st =
  expect st Token.LPAREN;
  let id = expect_ident st in
  expect st Token.RPAREN;
  id

let parse_gatom st =
  match cur_tok st with
  | Token.KW_timer ->
      advance st;
      `Trigger T_timer
  | Token.QUESTION ->
      advance st;
      `Trigger (T_recv (expect_ident st))
  | Token.KW_onload ->
      advance st;
      `Trigger T_onload
  | Token.KW_onexit ->
      advance st;
      `Trigger T_onexit
  | Token.KW_onerror ->
      advance st;
      `Trigger T_onerror
  | Token.KW_before ->
      advance st;
      `Trigger (T_before (parse_paren_ident st))
  | Token.KW_after ->
      advance st;
      `Trigger (T_after (parse_paren_ident st))
  | Token.KW_watch ->
      advance st;
      `Trigger (T_watch (parse_paren_ident st))
  | _ ->
      let lhs = parse_expr_prec st in
      let op = parse_relop st in
      let rhs = parse_expr_prec st in
      `Cond (op, lhs, rhs)

let parse_guard st =
  let loc = cur_loc st in
  let atoms =
    let rec collect acc =
      let a = parse_gatom st in
      if cur_tok st = Token.AND then begin
        advance st;
        collect (a :: acc)
      end
      else List.rev (a :: acc)
    in
    collect []
  in
  let triggers =
    List.filter_map (function `Trigger t -> Some t | `Cond _ -> None) atoms
  in
  let conds = List.filter_map (function `Cond c -> Some c | `Trigger _ -> None) atoms in
  match triggers with
  | [] -> { trigger = None; conds }
  | [ t ] -> { trigger = Some t; conds }
  | _ :: _ :: _ -> Loc.error loc "a guard may contain at most one trigger"

(* ------------------------------------------------------------------ *)
(* Actions *)

let parse_dest st =
  match cur_tok st with
  | Token.KW_sender ->
      advance st;
      D_sender
  | Token.KW_switch ->
      (* switch <tier>[<expr>] — the tier name is validated here so the
         AST carries a closed variant, not a string. *)
      advance st;
      let loc = cur_loc st in
      let tier_s = expect_ident st in
      let tier =
        match tier_of_name tier_s with
        | Some t -> t
        | None ->
            Loc.error loc "unknown switch tier %s (expected edge, agg or core)" tier_s
      in
      expect st Token.LBRACKET;
      let e = parse_expr_prec st in
      expect st Token.RBRACKET;
      D_topo (Sel_switch (tier, e))
  | Token.KW_pod ->
      advance st;
      D_topo (Sel_pod (parse_factor st))
  | Token.KW_rack ->
      advance st;
      D_topo (Sel_rack (parse_factor st))
  | Token.IDENT name ->
      advance st;
      if cur_tok st = Token.LBRACKET then begin
        advance st;
        let e = parse_expr_prec st in
        expect st Token.RBRACKET;
        D_indexed (name, e)
      end
      else D_instance name
  | t -> Loc.error (cur_loc st) "expected message destination, found %s" (Token.to_string t)

(* Lookahead for [degrade] fields: an IDENT immediately followed by [=]
   is a field assignment, anything else ends the field list (so the
   comma-separated action list keeps parsing normally). *)
let peek_tok st =
  if st.idx + 1 < Array.length st.toks then st.toks.(st.idx + 1).Token.tok else Token.EOF

let parse_degrade_fields st =
  let loss = ref None and latency = ref None and jitter = ref None in
  let rec loop () =
    match cur_tok st with
    | Token.IDENT name when peek_tok st = Token.ASSIGN ->
        let loc = cur_loc st in
        let slot =
          match name with
          | "loss" -> loss
          | "latency" -> latency
          | "jitter" -> jitter
          | _ ->
              Loc.error loc "unknown degrade field %s (expected loss, latency or jitter)"
                name
        in
        advance st;
        advance st;
        let e = parse_expr_prec st in
        (match !slot with
        | Some _ -> Loc.error loc "duplicate degrade field %s" name
        | None -> slot := Some e);
        loop ()
    | _ -> ()
  in
  loop ();
  (!loss, !latency, !jitter)

(* Optional service selector after halt/stop/continue:
   [service ckpt[expr]], [service sched], [service disp]. The service
   names are plain identifiers — only [service] itself is a keyword. *)
let parse_service_opt st =
  if cur_tok st <> Token.KW_service then None
  else begin
    advance st;
    let loc = cur_loc st in
    match expect_ident st with
    | "ckpt" ->
        expect st Token.LBRACKET;
        let e = parse_expr_prec st in
        expect st Token.RBRACKET;
        Some (Svc_ckpt e)
    | "sched" -> Some Svc_sched
    | "disp" -> Some Svc_disp
    | name -> Loc.error loc "unknown service %s (expected ckpt, sched or disp)" name
  end

let parse_action st =
  match cur_tok st with
  | Token.KW_goto ->
      advance st;
      A_goto (expect_node_id st)
  | Token.KW_partition ->
      advance st;
      let a = parse_dest st in
      let b =
        match cur_tok st with
        | Token.IDENT _ | Token.KW_sender | Token.KW_switch | Token.KW_pod | Token.KW_rack
          ->
            Some (parse_dest st)
        | _ -> None
      in
      A_partition (a, b)
  | Token.KW_heal ->
      advance st;
      A_heal
  | Token.KW_degrade ->
      advance st;
      let deg_target = parse_dest st in
      let deg_loss, deg_latency, deg_jitter = parse_degrade_fields st in
      A_degrade { deg_target; deg_loss; deg_latency; deg_jitter }
  | Token.BANG ->
      advance st;
      let msg = expect_ident st in
      expect st Token.LPAREN;
      let dest = parse_dest st in
      expect st Token.RPAREN;
      A_send (msg, dest)
  | Token.KW_halt ->
      advance st;
      A_halt (parse_service_opt st)
  | Token.KW_stop ->
      advance st;
      A_stop (parse_service_opt st)
  | Token.KW_continue ->
      advance st;
      A_continue (parse_service_opt st)
  | Token.KW_set ->
      advance st;
      let name = expect_ident st in
      expect st Token.ASSIGN;
      A_set_app (name, parse_expr_prec st)
  | Token.IDENT name ->
      advance st;
      expect st Token.ASSIGN;
      A_assign (name, parse_expr_prec st)
  | t -> Loc.error (cur_loc st) "expected action, found %s" (Token.to_string t)

let parse_actions st =
  let rec collect acc =
    let a = parse_action st in
    if cur_tok st = Token.COMMA then begin
      advance st;
      collect (a :: acc)
    end
    else List.rev (a :: acc)
  in
  collect []

(* ------------------------------------------------------------------ *)
(* Nodes and daemons *)

let parse_transition st =
  let t_loc = cur_loc st in
  let guard = parse_guard st in
  expect st Token.ARROW;
  let actions = parse_actions st in
  expect st Token.SEMI;
  { t_loc; guard; actions }

let node_item_start tok =
  match tok with Token.RBRACE | Token.KW_node | Token.EOF -> false | _ -> true

let parse_node st =
  let n_loc = cur_loc st in
  expect st Token.KW_node;
  let n_id = expect_node_id st in
  expect st Token.COLON;
  let always = ref [] and timer = ref None and transitions = ref [] in
  while node_item_start (cur_tok st) do
    match cur_tok st with
    | Token.KW_always ->
        advance st;
        expect st Token.KW_int;
        let name = expect_ident st in
        expect st Token.ASSIGN;
        let e = parse_expr_prec st in
        expect st Token.SEMI;
        always := (name, e) :: !always
    | Token.KW_time ->
        let loc = cur_loc st in
        advance st;
        let name = expect_ident st in
        expect st Token.ASSIGN;
        let e = parse_expr_prec st in
        expect st Token.SEMI;
        (match !timer with
        | Some _ -> Loc.error loc "node %s declares more than one timer" n_id
        | None -> timer := Some (name, e))
    | _ -> transitions := parse_transition st :: !transitions
  done;
  {
    n_loc;
    n_id;
    n_always = List.rev !always;
    n_timer = !timer;
    n_transitions = List.rev !transitions;
  }

let parse_daemon st =
  let d_loc = cur_loc st in
  expect st Token.KW_daemon;
  let d_name = expect_ident st in
  expect st Token.LBRACE;
  let vars = ref [] in
  while cur_tok st = Token.KW_int do
    advance st;
    let name = expect_ident st in
    expect st Token.ASSIGN;
    let e = parse_expr_prec st in
    expect st Token.SEMI;
    vars := (name, e) :: !vars
  done;
  let nodes = ref [] in
  while cur_tok st = Token.KW_node do
    nodes := parse_node st :: !nodes
  done;
  (match !nodes with
  | [] -> Loc.error d_loc "daemon %s has no nodes" d_name
  | _ -> ());
  expect st Token.RBRACE;
  { d_loc; d_name; d_vars = List.rev !vars; d_nodes = List.rev !nodes }

let parse_deployment st =
  let dep_loc = cur_loc st in
  let inst = expect_ident st in
  let count =
    if cur_tok st = Token.LBRACKET then begin
      advance st;
      let n = expect_int st in
      expect st Token.RBRACKET;
      Some n
    end
    else None
  in
  expect st Token.COLON;
  let daemon = expect_ident st in
  expect st Token.KW_on;
  let dep =
    match cur_tok st with
    | Token.KW_machine ->
        advance st;
        let machine = expect_int st in
        (match count with
        | Some _ ->
            Loc.error dep_loc "instance %s has a group size but a single machine" inst
        | None -> ());
        Dep_singleton { dep_loc; inst; daemon; machine }
    | Token.KW_machines ->
        advance st;
        let lo = expect_int st in
        expect st Token.DOTDOT;
        let hi = expect_int st in
        let count =
          match count with
          | Some c -> c
          | None -> hi - lo + 1
        in
        Dep_group { dep_loc; inst; count; daemon; mach_lo = lo; mach_hi = hi }
    | t ->
        Loc.error (cur_loc st) "expected 'machine' or 'machines', found %s"
          (Token.to_string t)
  in
  expect st Token.SEMI;
  dep

let parse src =
  let toks = Array.of_list (Lexer.tokenize src) in
  let st = { toks; idx = 0 } in
  let daemons = ref [] and deployments = ref [] in
  let rec loop () =
    match cur_tok st with
    | Token.EOF -> ()
    | Token.KW_daemon ->
        daemons := parse_daemon st :: !daemons;
        loop ()
    | Token.IDENT _ ->
        deployments := parse_deployment st :: !deployments;
        loop ()
    | t ->
        Loc.error (cur_loc st) "expected a daemon or a deployment, found %s"
          (Token.to_string t)
  in
  loop ();
  { daemons = List.rev !daemons; deployments = List.rev !deployments }

let parse_result src =
  match parse src with
  | program -> Ok program
  | exception Loc.Error (loc, msg) -> Error (Loc.error_to_string loc msg)

let parse_expr src =
  let toks = Array.of_list (Lexer.tokenize src) in
  let st = { toks; idx = 0 } in
  let e = parse_expr_prec st in
  expect st Token.EOF;
  e
