type cexpr =
  | C_int of int
  | C_var of int
  | C_app_var of string
  | C_binop of Ast.binop * cexpr * cexpr
  | C_random of cexpr * cexpr

type ccond = Ast.relop * cexpr * cexpr

type ctopo_sel =
  | CSel_switch of Ast.tier * cexpr
  | CSel_pod of cexpr
  | CSel_rack of cexpr

type cdest =
  | CD_instance of string
  | CD_indexed of string * cexpr
  | CD_group of string
  | CD_sender
  | CD_topo of ctopo_sel

type cservice = CSvc_ckpt of cexpr | CSvc_sched | CSvc_disp

type caction =
  | C_goto of int
  | C_send of string * cdest
  | C_assign of int * cexpr
  | C_halt of cservice option
  | C_stop of cservice option
  | C_continue of cservice option
  | C_set_app of string * cexpr
  | C_partition of cdest * cdest option
  | C_heal
  | C_degrade of cdest * cexpr option * cexpr option * cexpr option
      (* loss permille, latency ms, jitter ms *)

type ctransition = {
  trigger : Ast.trigger option;
  conds : ccond list;
  actions : caction list;
}

type cnode = {
  node_id : string;
  always : (int * cexpr) list;
  timer : cexpr option;
  transitions : ctransition list;
}

type t = {
  name : string;
  var_names : string array;
  var_init : (int * cexpr) list;
  nodes : cnode array;
}

let var_count t = Array.length t.var_names
let node_count t = Array.length t.nodes

let node_index t id =
  let rec find i =
    if i >= Array.length t.nodes then None
    else if String.equal t.nodes.(i).node_id id then Some i
    else find (i + 1)
  in
  find 0

let fold_actions f acc t =
  Array.fold_left
    (fun acc node ->
      List.fold_left
        (fun acc tr -> List.fold_left f acc tr.actions)
        acc node.transitions)
    acc t.nodes

let messages_sent t =
  fold_actions
    (fun acc -> function C_send (m, _) -> m :: acc | _ -> acc)
    [] t
  |> List.sort_uniq String.compare

let messages_received t =
  Array.fold_left
    (fun acc node ->
      List.fold_left
        (fun acc tr ->
          match tr.trigger with Some (Ast.T_recv m) -> m :: acc | Some _ | None -> acc)
        acc node.transitions)
    [] t.nodes
  |> List.sort_uniq String.compare

let rec pp_cexpr ppf = function
  | C_int n -> Format.pp_print_int ppf n
  | C_var slot -> Format.fprintf ppf "v%d" slot
  | C_app_var name -> Format.fprintf ppf "@@%s" name
  | C_binop (op, a, b) ->
      Format.fprintf ppf "(%a %s %a)" pp_cexpr a
        (match op with
        | Ast.Add -> "+"
        | Ast.Sub -> "-"
        | Ast.Mul -> "*"
        | Ast.Div -> "/"
        | Ast.Mod -> "%")
        pp_cexpr b
  | C_random (lo, hi) -> Format.fprintf ppf "random(%a, %a)" pp_cexpr lo pp_cexpr hi

let topo_sel_s = function
  | CSel_switch (tier, e) ->
      Format.asprintf "switch %s[%a]" (Ast.tier_name tier) pp_cexpr e
  | CSel_pod e -> Format.asprintf "pod %a" pp_cexpr e
  | CSel_rack e -> Format.asprintf "rack %a" pp_cexpr e

let dest_s = function
  | CD_instance i -> i
  | CD_indexed (g, e) -> Format.asprintf "%s[%a]" g pp_cexpr e
  | CD_group g -> g
  | CD_sender -> "sender"
  | CD_topo sel -> topo_sel_s sel

let service_s = function
  | CSvc_ckpt e -> Format.asprintf "ckpt[%a]" pp_cexpr e
  | CSvc_sched -> "sched"
  | CSvc_disp -> "disp"

let service_suffix = function None -> "" | Some svc -> " service " ^ service_s svc

let pp_caction ppf = function
  | C_goto n -> Format.fprintf ppf "goto #%d" n
  | C_send (m, CD_group g) -> Format.fprintf ppf "send %s -> %s (broadcast)" m g
  | C_send (m, d) -> Format.fprintf ppf "send %s -> %s" m (dest_s d)
  | C_assign (slot, e) -> Format.fprintf ppf "v%d := %a" slot pp_cexpr e
  | C_halt svc -> Format.fprintf ppf "halt%s" (service_suffix svc)
  | C_stop svc -> Format.fprintf ppf "stop%s" (service_suffix svc)
  | C_continue svc -> Format.fprintf ppf "continue%s" (service_suffix svc)
  | C_set_app (name, e) -> Format.fprintf ppf "set @@%s := %a" name pp_cexpr e
  | C_partition (a, b) ->
      Format.fprintf ppf "partition %s%s" (dest_s a)
        (match b with Some b -> " " ^ dest_s b | None -> " (isolate)")
  | C_heal -> Format.pp_print_string ppf "heal"
  | C_degrade (d, loss, latency, jitter) ->
      let field name = function
        | Some e -> Format.asprintf " %s=%a" name pp_cexpr e
        | None -> ""
      in
      Format.fprintf ppf "degrade %s%s%s%s" (dest_s d) (field "loss" loss)
        (field "latency" latency) (field "jitter" jitter)

let pp_trigger ppf = function
  | Ast.T_timer -> Format.pp_print_string ppf "timer"
  | Ast.T_recv m -> Format.fprintf ppf "?%s" m
  | Ast.T_onload -> Format.pp_print_string ppf "onload"
  | Ast.T_onexit -> Format.pp_print_string ppf "onexit"
  | Ast.T_onerror -> Format.pp_print_string ppf "onerror"
  | Ast.T_before f -> Format.fprintf ppf "before(%s)" f
  | Ast.T_after f -> Format.fprintf ppf "after(%s)" f
  | Ast.T_watch v -> Format.fprintf ppf "watch(%s)" v

let pp ppf t =
  Format.fprintf ppf "@[<v>automaton %s: %d vars, %d nodes@," t.name (var_count t)
    (node_count t);
  Array.iteri
    (fun i node ->
      Format.fprintf ppf "@[<v 2>node #%d (%s):" i node.node_id;
      List.iter
        (fun (slot, e) -> Format.fprintf ppf "@,always v%d := %a" slot pp_cexpr e)
        node.always;
      (match node.timer with
      | Some e -> Format.fprintf ppf "@,timer %a" pp_cexpr e
      | None -> ());
      List.iter
        (fun tr ->
          Format.fprintf ppf "@,on %s%s -> %s"
            (match tr.trigger with
            | Some trig -> Format.asprintf "%a" pp_trigger trig
            | None -> "entry")
            (if tr.conds = [] then ""
             else Format.asprintf " [%d conds]" (List.length tr.conds))
            (String.concat ", "
               (List.map (Format.asprintf "%a" pp_caction) tr.actions)))
        node.transitions;
      Format.fprintf ppf "@]@,")
    t.nodes;
  Format.pp_close_box ppf ()
