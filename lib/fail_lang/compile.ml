open Ast

module Smap = Map.Make (String)

type plan = {
  automata : (string * Automaton.t) list;
  deployments : Ast.deployment list;
}

(* Variable slot assignment: daemon variables first, then the [always]
   variables of each node in declaration order. Within a node, its own
   always variables take priority over daemon variables of the same name
   (sema forbids shadowing, so this is belt and braces). *)
let assign_slots d =
  let slots = ref [] in
  let count = ref 0 in
  let fresh name =
    let slot = !count in
    incr count;
    slots := name :: !slots;
    slot
  in
  let daemon_slots =
    List.fold_left (fun acc (name, _) -> Smap.add name (fresh name) acc) Smap.empty d.d_vars
  in
  let node_slots =
    List.map
      (fun node ->
        let own =
          List.fold_left
            (fun acc (name, _) -> Smap.add name (fresh name) acc)
            Smap.empty node.n_always
        in
        (node.n_id, own))
      d.d_nodes
  in
  let var_names = Array.of_list (List.rev !slots) in
  (daemon_slots, node_slots, var_names)

let rec compile_expr lookup loc = function
  | Int n -> Automaton.C_int n
  | Var name -> (
      match lookup name with
      | Some slot -> Automaton.C_var slot
      | None -> Loc.error loc "internal: unresolved variable %s (sema missed it)" name)
  | App_var name -> Automaton.C_app_var name
  | Binop (op, a, b) ->
      Automaton.C_binop (op, compile_expr lookup loc a, compile_expr lookup loc b)
  | Random (lo, hi) ->
      Automaton.C_random (compile_expr lookup loc lo, compile_expr lookup loc hi)

let compile_dest lookup loc = function
  | D_instance name -> Automaton.CD_instance name
  | D_indexed (name, e) -> Automaton.CD_indexed (name, compile_expr lookup loc e)
  | D_group name -> Automaton.CD_group name
  | D_sender -> Automaton.CD_sender
  | D_topo sel ->
      Automaton.CD_topo
        (match sel with
        | Sel_switch (tier, e) -> Automaton.CSel_switch (tier, compile_expr lookup loc e)
        | Sel_pod e -> Automaton.CSel_pod (compile_expr lookup loc e)
        | Sel_rack e -> Automaton.CSel_rack (compile_expr lookup loc e))

let compile_service lookup loc = function
  | None -> None
  | Some (Svc_ckpt e) -> Some (Automaton.CSvc_ckpt (compile_expr lookup loc e))
  | Some Svc_sched -> Some Automaton.CSvc_sched
  | Some Svc_disp -> Some Automaton.CSvc_disp

let compile_action lookup node_of_id loc = function
  | A_goto target -> (
      match node_of_id target with
      | Some idx -> Automaton.C_goto idx
      | None -> Loc.error loc "internal: unresolved goto target %s" target)
  | A_send (msg, dest) -> Automaton.C_send (msg, compile_dest lookup loc dest)
  | A_assign (name, e) -> (
      match lookup name with
      | Some slot -> Automaton.C_assign (slot, compile_expr lookup loc e)
      | None -> Loc.error loc "internal: unresolved assignment target %s" name)
  | A_halt svc -> Automaton.C_halt (compile_service lookup loc svc)
  | A_stop svc -> Automaton.C_stop (compile_service lookup loc svc)
  | A_continue svc -> Automaton.C_continue (compile_service lookup loc svc)
  | A_set_app (name, e) -> Automaton.C_set_app (name, compile_expr lookup loc e)
  | A_partition (a, b) ->
      Automaton.C_partition
        (compile_dest lookup loc a, Option.map (compile_dest lookup loc) b)
  | A_heal -> Automaton.C_heal
  | A_degrade d ->
      let sub = Option.map (compile_expr lookup loc) in
      Automaton.C_degrade
        (compile_dest lookup loc d.deg_target, sub d.deg_loss, sub d.deg_latency,
         sub d.deg_jitter)

let compile_daemon d =
  let daemon_slots, node_slots, var_names = assign_slots d in
  let node_ids = List.map (fun n -> n.n_id) d.d_nodes in
  let node_of_id id =
    let rec find i = function
      | [] -> None
      | x :: rest -> if String.equal x id then Some i else find (i + 1) rest
    in
    find 0 node_ids
  in
  let lookup_in own name =
    match Smap.find_opt name own with
    | Some slot -> Some slot
    | None -> Smap.find_opt name daemon_slots
  in
  let compile_node node =
    let own = List.assoc node.n_id node_slots in
    let lookup = lookup_in own in
    let loc = node.n_loc in
    let always =
      List.map
        (fun (name, e) -> (Smap.find name own, compile_expr lookup loc e))
        node.n_always
    in
    let timer = Option.map (fun (_, e) -> compile_expr lookup loc e) node.n_timer in
    let transitions =
      List.map
        (fun tr ->
          {
            Automaton.trigger = tr.guard.trigger;
            conds =
              List.map
                (fun (op, a, b) ->
                  (op, compile_expr lookup tr.t_loc a, compile_expr lookup tr.t_loc b))
                tr.guard.conds;
            actions = List.map (compile_action lookup node_of_id tr.t_loc) tr.actions;
          })
        node.n_transitions
    in
    { Automaton.node_id = node.n_id; always; timer; transitions }
  in
  let var_init =
    List.map (fun (name, e) ->
        let slot = Smap.find name daemon_slots in
        (slot, compile_expr (fun n -> Smap.find_opt n daemon_slots) d.d_loc e))
      d.d_vars
  in
  {
    Automaton.name = d.d_name;
    var_names;
    var_init;
    nodes = Array.of_list (List.map compile_node d.d_nodes);
  }

let compile_program p =
  {
    automata = List.map (fun d -> (d.d_name, compile_daemon d)) p.daemons;
    deployments = p.deployments;
  }

let compile_source ?params src =
  match Sema.check ?params (Parser.parse src) with
  | checked -> Ok (compile_program checked)
  | exception Loc.Error (loc, msg) -> Error (Loc.error_to_string loc msg)

let automaton plan name = List.assoc_opt name plan.automata
