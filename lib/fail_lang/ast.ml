type binop = Add | Sub | Mul | Div | Mod

type relop = Eq | Ne | Lt | Le | Gt | Ge

type expr =
  | Int of int
  | Var of string
  | App_var of string
  | Binop of binop * expr * expr
  | Random of expr * expr

type cond = relop * expr * expr

type trigger =
  | T_timer
  | T_recv of string
  | T_onload
  | T_onexit
  | T_onerror
  | T_before of string
  | T_after of string
  | T_watch of string

type guard = { trigger : trigger option; conds : cond list }

(* Topology components: a switch tier plus per-tier index, a pod or a
   rack of the deployment's configured fabric (Config.topology). They
   resolve against the runtime topology, not the deployment table, so
   sema only substitutes parameters inside the index expressions. *)
type tier = Tier_edge | Tier_agg | Tier_core

let tier_name = function Tier_edge -> "edge" | Tier_agg -> "agg" | Tier_core -> "core"

let tier_of_name = function
  | "edge" -> Some Tier_edge
  | "agg" -> Some Tier_agg
  | "core" -> Some Tier_core
  | _ -> None

type topo_sel = Sel_switch of tier * expr | Sel_pod of expr | Sel_rack of expr

type dest =
  | D_instance of string
  | D_indexed of string * expr
  | D_group of string
  | D_sender
  | D_topo of topo_sel

(* Infrastructure service selector: the checkpoint storage plane and the
   control services of the system under test. Unlike destinations these
   do not resolve against the deployment table — the deployed system
   registers its services with the runtime by name. *)
type service_sel = Svc_ckpt of expr | Svc_sched | Svc_disp

(* Network degradation: [loss] in permille, [latency]/[jitter] in
   milliseconds (FAIL expressions are integers). Omitted fields mean
   "unchanged" (zero). *)
type degrade = {
  deg_target : dest;
  deg_loss : expr option;
  deg_latency : expr option;
  deg_jitter : expr option;
}

type action =
  | A_goto of string
  | A_send of string * dest
  | A_assign of string * expr
  | A_halt of service_sel option
  | A_stop of service_sel option
  | A_continue of service_sel option
  | A_set_app of string * expr
  | A_partition of dest * dest option
      (* cut between two deployment sets; one operand isolates it *)
  | A_heal
  | A_degrade of degrade

type transition = { t_loc : Loc.t; guard : guard; actions : action list }

type node = {
  n_loc : Loc.t;
  n_id : string;
  n_always : (string * expr) list;
  n_timer : (string * expr) option;
  n_transitions : transition list;
}

type daemon = {
  d_loc : Loc.t;
  d_name : string;
  d_vars : (string * expr) list;
  d_nodes : node list;
}

type deployment =
  | Dep_singleton of { dep_loc : Loc.t; inst : string; daemon : string; machine : int }
  | Dep_group of {
      dep_loc : Loc.t;
      inst : string;
      count : int;
      daemon : string;
      mach_lo : int;
      mach_hi : int;
    }

type program = { daemons : daemon list; deployments : deployment list }

let rec equal_expr a b =
  match (a, b) with
  | Int x, Int y -> x = y
  | Var x, Var y | App_var x, App_var y -> String.equal x y
  | Binop (o1, a1, b1), Binop (o2, a2, b2) -> o1 = o2 && equal_expr a1 a2 && equal_expr b1 b2
  | Random (a1, b1), Random (a2, b2) -> equal_expr a1 a2 && equal_expr b1 b2
  | (Int _ | Var _ | App_var _ | Binop _ | Random _), _ -> false

let equal_cond (r1, a1, b1) (r2, a2, b2) = r1 = r2 && equal_expr a1 a2 && equal_expr b1 b2

let equal_trigger (a : trigger) (b : trigger) = a = b

let equal_guard g1 g2 =
  Option.equal equal_trigger g1.trigger g2.trigger
  && List.equal equal_cond g1.conds g2.conds

let equal_topo_sel s1 s2 =
  match (s1, s2) with
  | Sel_switch (t1, e1), Sel_switch (t2, e2) -> t1 = t2 && equal_expr e1 e2
  | Sel_pod e1, Sel_pod e2 | Sel_rack e1, Sel_rack e2 -> equal_expr e1 e2
  | (Sel_switch _ | Sel_pod _ | Sel_rack _), _ -> false

let equal_service_sel s1 s2 =
  match (s1, s2) with
  | Svc_ckpt e1, Svc_ckpt e2 -> equal_expr e1 e2
  | Svc_sched, Svc_sched | Svc_disp, Svc_disp -> true
  | (Svc_ckpt _ | Svc_sched | Svc_disp), _ -> false

let equal_dest d1 d2 =
  match (d1, d2) with
  | D_instance a, D_instance b | D_group a, D_group b -> String.equal a b
  | D_indexed (a, e1), D_indexed (b, e2) -> String.equal a b && equal_expr e1 e2
  | D_sender, D_sender -> true
  | D_topo s1, D_topo s2 -> equal_topo_sel s1 s2
  | (D_instance _ | D_indexed _ | D_group _ | D_sender | D_topo _), _ -> false

let equal_action a1 a2 =
  match (a1, a2) with
  | A_goto x, A_goto y -> String.equal x y
  | A_send (m1, d1), A_send (m2, d2) -> String.equal m1 m2 && equal_dest d1 d2
  | A_assign (v1, e1), A_assign (v2, e2) | A_set_app (v1, e1), A_set_app (v2, e2) ->
      String.equal v1 v2 && equal_expr e1 e2
  | A_halt s1, A_halt s2 | A_stop s1, A_stop s2 | A_continue s1, A_continue s2 ->
      Option.equal equal_service_sel s1 s2
  | A_heal, A_heal -> true
  | A_partition (a1', b1), A_partition (a2', b2) ->
      equal_dest a1' a2' && Option.equal equal_dest b1 b2
  | A_degrade d1, A_degrade d2 ->
      equal_dest d1.deg_target d2.deg_target
      && Option.equal equal_expr d1.deg_loss d2.deg_loss
      && Option.equal equal_expr d1.deg_latency d2.deg_latency
      && Option.equal equal_expr d1.deg_jitter d2.deg_jitter
  | ( ( A_goto _ | A_send _ | A_assign _ | A_halt _ | A_stop _ | A_continue _ | A_set_app _
      | A_partition _ | A_heal | A_degrade _ ),
      _ ) ->
      false

let equal_transition t1 t2 =
  equal_guard t1.guard t2.guard && List.equal equal_action t1.actions t2.actions

let equal_binding (n1, e1) (n2, e2) = String.equal n1 n2 && equal_expr e1 e2

let equal_node n1 n2 =
  String.equal n1.n_id n2.n_id
  && List.equal equal_binding n1.n_always n2.n_always
  && Option.equal equal_binding n1.n_timer n2.n_timer
  && List.equal equal_transition n1.n_transitions n2.n_transitions

let equal_daemon d1 d2 =
  String.equal d1.d_name d2.d_name
  && List.equal equal_binding d1.d_vars d2.d_vars
  && List.equal equal_node d1.d_nodes d2.d_nodes

let equal_deployment d1 d2 =
  match (d1, d2) with
  | Dep_singleton s1, Dep_singleton s2 ->
      String.equal s1.inst s2.inst && String.equal s1.daemon s2.daemon
      && s1.machine = s2.machine
  | Dep_group g1, Dep_group g2 ->
      String.equal g1.inst g2.inst && g1.count = g2.count
      && String.equal g1.daemon g2.daemon && g1.mach_lo = g2.mach_lo
      && g1.mach_hi = g2.mach_hi
  | (Dep_singleton _ | Dep_group _), _ -> false

let equal_program p1 p2 =
  List.equal equal_daemon p1.daemons p2.daemons
  && List.equal equal_deployment p1.deployments p2.deployments

let program_size p =
  let node_size n =
    1 + List.length n.n_always
    + (match n.n_timer with Some _ -> 1 | None -> 0)
    + List.fold_left (fun acc t -> acc + 1 + List.length t.actions) 0 n.n_transitions
  in
  let daemon_size d =
    1 + List.length d.d_vars + List.fold_left (fun acc n -> acc + node_size n) 0 d.d_nodes
  in
  List.fold_left (fun acc d -> acc + daemon_size d) 0 p.daemons + List.length p.deployments
