open Ast

module Smap = Map.Make (String)
module Sset = Set.Make (String)

type scope = {
  params : int Smap.t;
  daemon_vars : Sset.t;
  always_vars : Sset.t;  (* of the node under analysis *)
}

let rec subst_expr scope loc = function
  | Int n -> Int n
  | Var name -> (
      match Smap.find_opt name scope.params with
      | Some v -> Int v
      | None ->
          if Sset.mem name scope.always_vars || Sset.mem name scope.daemon_vars then Var name
          else Loc.error loc "unbound variable %s" name)
  | App_var name -> App_var name
  | Binop (op, a, b) -> Binop (op, subst_expr scope loc a, subst_expr scope loc b)
  | Random (lo, hi) -> Random (subst_expr scope loc lo, subst_expr scope loc hi)

let subst_cond scope loc (op, a, b) = (op, subst_expr scope loc a, subst_expr scope loc b)

let check_unique what loc names =
  let rec run seen = function
    | [] -> ()
    | name :: rest ->
        if Sset.mem name seen then Loc.error loc "duplicate %s %s" what name
        else run (Sset.add name seen) rest
  in
  run Sset.empty names

(* Deployment information used to resolve destinations; empty when the
   program declares no deployments. *)
type dep_info = { singletons : Sset.t; groups : Sset.t }

let resolve_dest deps scope loc = function
  | D_sender -> D_sender
  | D_topo sel ->
      (* Topology components resolve against the runtime fabric
         (Config.topology), not the deployment table — only the index
         expressions are substituted here. *)
      D_topo
        (match sel with
        | Sel_switch (tier, e) -> Sel_switch (tier, subst_expr scope loc e)
        | Sel_pod e -> Sel_pod (subst_expr scope loc e)
        | Sel_rack e -> Sel_rack (subst_expr scope loc e))
  | D_indexed (name, e) ->
      (match deps with
      | Some d when not (Sset.mem name d.groups) ->
          Loc.error loc "%s is not a deployed group" name
      | Some _ | None -> ());
      D_indexed (name, subst_expr scope loc e)
  | D_group name ->
      (match deps with
      | Some d when not (Sset.mem name d.groups) ->
          Loc.error loc "%s is not a deployed group" name
      | Some _ | None -> ());
      D_group name
  | D_instance name -> (
      match deps with
      | None -> D_instance name
      | Some d ->
          if Sset.mem name d.singletons then D_instance name
          else if Sset.mem name d.groups then D_group name
          else Loc.error loc "%s is not a deployed instance" name)

(* Services resolve by name against the deployed system at runtime, so
   only the [ckpt] replica index needs substitution here. *)
let subst_service scope loc = function
  | None -> None
  | Some (Svc_ckpt e) -> Some (Svc_ckpt (subst_expr scope loc e))
  | Some (Svc_sched | Svc_disp) as svc -> svc

let check_action deps scope ~node_ids ~has_recv_trigger loc = function
  | A_goto target ->
      if not (Sset.mem target node_ids) then Loc.error loc "goto to unknown node %s" target;
      A_goto target
  | A_send (msg, dest) ->
      let dest = resolve_dest deps scope loc dest in
      (match dest with
      | D_sender when not has_recv_trigger ->
          Loc.error loc "FAIL_SENDER used outside a ?message-triggered transition"
      | D_sender | D_instance _ | D_indexed _ | D_group _ | D_topo _ -> ());
      A_send (msg, dest)
  | A_assign (name, e) ->
      if not (Sset.mem name scope.daemon_vars || Sset.mem name scope.always_vars) then
        Loc.error loc "assignment to undeclared variable %s" name;
      A_assign (name, subst_expr scope loc e)
  | A_halt svc -> A_halt (subst_service scope loc svc)
  | A_stop svc -> A_stop (subst_service scope loc svc)
  | A_continue svc -> A_continue (subst_service scope loc svc)
  | A_set_app (name, e) -> A_set_app (name, subst_expr scope loc e)
  | A_partition (a, b) ->
      (* Network faults target deployment sets, never the dynamic sender. *)
      let check_side d =
        match resolve_dest deps scope loc d with
        | D_sender -> Loc.error loc "partition cannot target FAIL_SENDER"
        | (D_instance _ | D_indexed _ | D_group _ | D_topo _) as d -> d
      in
      A_partition (check_side a, Option.map check_side b)
  | A_heal -> A_heal
  | A_degrade d ->
      let deg_target =
        match resolve_dest deps scope loc d.deg_target with
        | D_sender -> Loc.error loc "degrade cannot target FAIL_SENDER"
        | (D_instance _ | D_indexed _ | D_group _ | D_topo _) as dest -> dest
      in
      let sub = Option.map (subst_expr scope loc) in
      A_degrade
        {
          deg_target;
          deg_loss = sub d.deg_loss;
          deg_latency = sub d.deg_latency;
          deg_jitter = sub d.deg_jitter;
        }

let check_transition deps scope ~node_ids ~has_timer t =
  let loc = t.t_loc in
  (match t.guard.trigger with
  | Some T_timer when not has_timer ->
      Loc.error loc "'timer' guard in a node that declares no timer"
  | Some (T_timer | T_recv _ | T_onload | T_onexit | T_onerror | T_before _ | T_after _
         | T_watch _)
  | None ->
      ());
  let has_recv_trigger =
    match t.guard.trigger with Some (T_recv _) -> true | Some _ | None -> false
  in
  let conds = List.map (subst_cond scope loc) t.guard.conds in
  let actions = List.map (check_action deps scope ~node_ids ~has_recv_trigger loc) t.actions in
  { t with guard = { t.guard with conds }; actions }

let check_node deps ~params ~daemon_vars ~node_ids node =
  let loc = node.n_loc in
  check_unique "always variable" loc (List.map fst node.n_always);
  (* No shadowing: an always variable may not reuse a daemon variable or
     parameter name. *)
  List.iter
    (fun (name, _) ->
      if Sset.mem name daemon_vars then
        Loc.error loc "always variable %s shadows a daemon variable" name;
      if Smap.mem name params then Loc.error loc "always variable %s shadows a parameter" name)
    node.n_always;
  (* Always initialisers see daemon vars and previously declared always
     vars of the same node. *)
  let always_vars, n_always =
    List.fold_left
      (fun (seen, acc) (name, e) ->
        let scope = { params; daemon_vars; always_vars = seen } in
        let e = subst_expr scope loc e in
        (Sset.add name seen, (name, e) :: acc))
      (Sset.empty, []) node.n_always
  in
  let n_always = List.rev n_always in
  let scope = { params; daemon_vars; always_vars } in
  let n_timer =
    Option.map (fun (name, e) -> (name, subst_expr scope loc e)) node.n_timer
  in
  let has_timer = Option.is_some n_timer in
  let n_transitions =
    List.map (check_transition deps scope ~node_ids ~has_timer) node.n_transitions
  in
  { node with n_always; n_timer; n_transitions }

let check_daemon deps ~params d =
  let loc = d.d_loc in
  check_unique "daemon variable" loc (List.map fst d.d_vars);
  List.iter
    (fun (name, _) ->
      if Smap.mem name params then
        Loc.error loc "daemon variable %s shadows a parameter" name)
    d.d_vars;
  check_unique "node" loc (List.map (fun n -> n.n_id) d.d_nodes);
  let node_ids = Sset.of_list (List.map (fun n -> n.n_id) d.d_nodes) in
  (* Daemon variable initialisers may reference parameters and previously
     declared daemon variables. *)
  let daemon_vars, d_vars =
    List.fold_left
      (fun (seen, acc) (name, e) ->
        let scope = { params; daemon_vars = seen; always_vars = Sset.empty } in
        let e = subst_expr scope loc e in
        (Sset.add name seen, (name, e) :: acc))
      (Sset.empty, []) d.d_vars
  in
  let d_vars = List.rev d_vars in
  let d_nodes = List.map (check_node deps ~params ~daemon_vars ~node_ids) d.d_nodes in
  { d with d_vars; d_nodes }

let check_deployments daemons deployments =
  let daemon_names = Sset.of_list (List.map (fun d -> d.d_name) daemons) in
  let seen = ref Sset.empty in
  List.iter
    (fun dep ->
      let loc, inst, daemon =
        match dep with
        | Dep_singleton { dep_loc; inst; daemon; _ } -> (dep_loc, inst, daemon)
        | Dep_group { dep_loc; inst; daemon; _ } -> (dep_loc, inst, daemon)
      in
      if Sset.mem inst !seen then Loc.error loc "duplicate instance name %s" inst;
      seen := Sset.add inst !seen;
      if not (Sset.mem daemon daemon_names) then
        Loc.error loc "instance %s references unknown daemon %s" inst daemon;
      match dep with
      | Dep_singleton { machine; _ } ->
          if machine < 0 then Loc.error loc "negative machine id"
      | Dep_group { count; mach_lo; mach_hi; _ } ->
          if mach_lo < 0 || mach_hi < mach_lo then Loc.error loc "invalid machine range";
          let span = mach_hi - mach_lo + 1 in
          if count <> span then
            Loc.error loc "group %s declares %d members but spans %d machines" inst count
              span)
    deployments;
  {
    singletons =
      List.filter_map
        (function Dep_singleton { inst; _ } -> Some inst | Dep_group _ -> None)
        deployments
      |> Sset.of_list;
    groups =
      List.filter_map
        (function Dep_group { inst; _ } -> Some inst | Dep_singleton _ -> None)
        deployments
      |> Sset.of_list;
  }

let check ?(params = []) program =
  let params =
    List.fold_left (fun acc (name, v) -> Smap.add name v acc) Smap.empty params
  in
  check_unique "daemon" Loc.dummy (List.map (fun d -> d.d_name) program.daemons);
  let deps =
    match program.deployments with
    | [] -> None
    | deployments -> Some (check_deployments program.daemons deployments)
  in
  let daemons = List.map (check_daemon deps ~params) program.daemons in
  { program with daemons }

let check_result ?params program =
  match check ?params program with
  | p -> Ok p
  | exception Loc.Error (loc, msg) -> Error (Loc.error_to_string loc msg)
