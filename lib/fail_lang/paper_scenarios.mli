(** The FAIL scenarios of the paper, as source text.

    Each function returns a complete program (daemons + deployment) for a
    cluster of [n_machines] computing hosts; the coordinator daemon [P1]
    runs on the extra machine [n_machines] and the per-node controller
    group [G1] on machines [0 .. n_machines-1], mirroring the paper's
    "53 machines devoted to BT-49" setup.

    Message protocol between coordinator and controllers (paper §5):
    - [crash]: order to kill the MPI process controlled by the target;
    - [ok] / [no]: positive / negative acknowledgement ([no] when no MPI
      process is currently running under that controller);
    - [waveok]: a controller observed the start of the first recovery wave
      (Figures 8 and 10);
    - [nocrash]: coordinator tells a controller to let its process run
      (Figure 10). *)

(** Figure 4: generic controller [ADV2] for every MPI computing node. *)
val adv2_controller : string

(** Figure 5(a): coordinator injecting one fault every [period] seconds on
    a uniformly chosen node. Used for the fault-frequency (Fig. 5) and
    scale (Fig. 6) experiments. *)
val frequency : n_machines:int -> period:int -> string

(** Figure 7(a): coordinator injecting [count] back-to-back faults every
    [period] seconds. *)
val simultaneous : n_machines:int -> period:int -> count:int -> string

(** Figure 8: two synchronized faults — the second is injected on the
    first controller that observes the recovery wave (its second
    [onload]). *)
val synchronized : n_machines:int -> period:int -> string

(** Figure 10: state-synchronized faults — the second fault is injected
    just before the relaunched daemon calls [localMPI_setCommand], i.e.
    right after it registered with the dispatcher. *)
val state_synchronized : n_machines:int -> period:int -> string

(** Replication-backend scenario: kill slot 0 of logical rank [rank] at
    [start] seconds, then slot 1 (machine [rank + n_ranks] under the
    mpirep layout) [gap] seconds later. [gap] shorter than the respawn
    latency exhausts the rank's replication inside the failover window;
    a longer gap is absorbed as two independent failovers. A parameterized
    file version lives in [scenarios/replica_split.fail]. *)
val replica_split :
  n_machines:int -> n_ranks:int -> rank:int -> start:int -> gap:int -> string

(** §6 shape, in the explorer's fault-plan form ({!Codegen.Scenario}):
    kill machine [first] at [start] seconds, then kill machine [second]
    [gap] seconds after the [nth] cumulative daemon registration —
    with [nth] = initial launches + 1, that is [gap] seconds into the
    recovery wave the first kill triggered. A parameterized file version
    lives in [scenarios/double_strike.fail]. *)
val double_strike :
  n_machines:int -> first:int -> second:int -> start:int -> nth:int -> gap:int -> string

(** Network fault cascade, in the explorer's fault-plan form
    ({!Codegen.Scenario}): degrade the [victim] machine's links at
    [start] seconds ([loss] permille message loss, [latency] ms extra
    delay), partition it off [wave] seconds later, kill the process on
    machine [target] [gap] seconds into the outage, then [heal] the
    fabric [heal] seconds after the kill. With the reliable transport
    armed the run completes if the heal lands before connect retries
    exhaust; otherwise it verdicts net-hung. A parameterized file
    version lives in [scenarios/partition_wave.fail]. *)
val partition_wave :
  n_machines:int ->
  victim:int ->
  target:int ->
  loss:int ->
  latency:int ->
  start:int ->
  wave:int ->
  gap:int ->
  heal:int ->
  string

(** Rack blackout, in the explorer's fault-plan form
    ({!Codegen.Scenario}): kill aggregation switch [switch] of the
    fabric the run declares ({!Mpivcl.Config.topology}) at [start]
    seconds, then [heal] seconds later restore it. No host is severed —
    aggregation switches carry no hosts — but every host pair routed
    through the switch is cut at once; the reliable transport
    retransmits into the hole until the heal lands. Without a declared
    topology the kill is a traced no-op. A parameterized file version
    lives in [scenarios/rack_blackout.fail]. *)
val rack_blackout : n_machines:int -> switch:int -> start:int -> heal:int -> string

(** Shrink storm, in the explorer's fault-plan form
    ({!Codegen.Scenario}): kill the [targets] machines one by one —
    the first at [start] seconds, each following kill [step] seconds
    after the previous — staggered so they land inside a running
    collective, then partition machine [victim] [lag] seconds after the
    last kill, i.e. during the survivor agreement the kills triggered.
    Aimed at the shrink-and-continue backend: the agreement must either
    reach a majority of the superseded epoch and decide, or refuse —
    never decide differently on the two sides of the cut. A
    parameterized file version lives in [scenarios/shrink_storm.fail]. *)
val shrink_storm :
  n_machines:int ->
  targets:int list ->
  start:int ->
  step:int ->
  victim:int ->
  lag:int ->
  string

(** Checkpoint sniper, in the explorer's fault-plan form
    ({!Codegen.Scenario}): kill checkpoint server [server] (a service
    fault — [halt service ckpt\[server\]]) at [start] seconds, timed to
    land inside a wave's store window so the in-flight image is torn on
    that server's disk, then kill the process on machine [rank] [gap]
    seconds later while the server is still respawning. With mirroring
    on ([ckpt_replicas >= 2]) the restarted rank fails over to the
    mirror and recovery completes; with a single replica the restart
    finds no complete image and the run ends in the Ckpt_lost verdict
    instead of hanging. A parameterized file version lives in
    [scenarios/ckpt_sniper.fail]. *)
val ckpt_sniper :
  n_machines:int -> server:int -> start:int -> rank:int -> gap:int -> string

(** All scenarios with representative parameters, for tests and demos. *)
val all : (string * string) list
