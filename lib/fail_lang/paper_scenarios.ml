let adv2_controller =
  {|
Daemon ADV2 {
  node 1:
    onload -> continue, goto 2;
    ?crash -> !no(P1), goto 1;
  node 2:
    onexit -> goto 1;
    onerror -> goto 1;
    onload -> continue, goto 2;
    ?crash -> !ok(P1), halt, goto 1;
}
|}

let frequency ~n_machines ~period =
  Printf.sprintf
    {|
// Figure 5(a): one fault every %d seconds on a uniformly chosen node.
Daemon ADV1 {
  node 1:
    always int ran = FAIL_RANDOM(0, %d);
    time g_timer = %d;
    timer -> !crash(G1[ran]), goto 2;
  node 2:
    always int ran = FAIL_RANDOM(0, %d);
    ?ok -> goto 1;
    ?no -> !crash(G1[ran]), goto 2;
}
%s
P1 : ADV1 on machine %d;
G1[%d] : ADV2 on machines 0 .. %d;
|}
    period (n_machines - 1) period (n_machines - 1) adv2_controller n_machines n_machines
    (n_machines - 1)

let simultaneous ~n_machines ~period ~count =
  Printf.sprintf
    {|
// Figure 7(a): %d back-to-back faults every %d seconds.
Daemon ADV1 {
  int nb_crash = %d;
  node 1:
    always int ran = FAIL_RANDOM(0, %d);
    time g_timer = %d;
    timer -> !crash(G1[ran]), goto 2;
  node 2:
    always int ran = FAIL_RANDOM(0, %d);
    ?ok && nb_crash > 1 -> !crash(G1[ran]), nb_crash = nb_crash - 1, goto 2;
    ?ok && nb_crash <= 1 -> nb_crash = %d, goto 1;
    ?no -> !crash(G1[ran]), goto 2;
}
%s
P1 : ADV1 on machine %d;
G1[%d] : ADV2 on machines 0 .. %d;
|}
    count period count (n_machines - 1) period (n_machines - 1) count adv2_controller
    n_machines n_machines (n_machines - 1)

let synchronized ~n_machines ~period =
  Printf.sprintf
    {|
// Figure 8: second fault on the first controller seeing the recovery wave.
Daemon ADV1 {
  node 1:
    always int ran = FAIL_RANDOM(0, %d);
    time g_timer = %d;
    timer -> !crash(G1[ran]), goto 2;
  node 2:
    always int ran = FAIL_RANDOM(0, %d);
    ?ok -> goto 3;
    ?no -> !crash(G1[ran]), goto 2;
  node 3:
    ?waveok -> !crash(FAIL_SENDER), goto 4;
  node 4:
}

Daemon ADVnodes {
  int wave = 1;
  node 1:
    onload && wave <> 2 -> continue, wave = wave + 1, goto 2;
    onload && wave == 2 -> continue, wave = wave + 1, !waveok(P1), goto 2;
    ?crash -> !no(P1), goto 1;
  node 2:
    onexit -> goto 1;
    onerror -> goto 1;
    onload && wave <> 2 -> continue, wave = wave + 1, goto 2;
    onload && wave == 2 -> continue, wave = wave + 1, !waveok(P1), goto 2;
    ?crash -> !ok(P1), halt, goto 1;
}

P1 : ADV1 on machine %d;
G1[%d] : ADVnodes on machines 0 .. %d;
|}
    (n_machines - 1) period (n_machines - 1) n_machines n_machines (n_machines - 1)

let state_synchronized ~n_machines ~period =
  Printf.sprintf
    {|
// Figure 10: second fault just before localMPI_setCommand in the recovery
// wave, i.e. right after the relaunched daemon registered with the
// dispatcher.
Daemon ADV1 {
  node 1:
    always int ran = FAIL_RANDOM(0, %d);
    time g_timer = %d;
    timer -> !crash(G1[ran]), goto 2;
  node 2:
    always int ran = FAIL_RANDOM(0, %d);
    ?ok -> goto 3;
    ?no -> !crash(G1[ran]), goto 2;
  node 3:
    ?waveok -> !crash(FAIL_SENDER), goto 4;
  node 4:
    ?waveok -> !nocrash(FAIL_SENDER), goto 4;
}

Daemon ADVstate {
  node 1:
    onload -> continue, goto 2;
    ?crash -> !no(P1), goto 1;
  node 11:
    onload -> !waveok(P1), stop, goto 3;
    ?crash -> !no(P1), goto 11;
  node 2:
    ?crash -> !ok(P1), halt, goto 11;
    onload -> !waveok(P1), stop, goto 3;
  node 3:
    ?crash -> !ok(P1), continue, goto 4;
    ?nocrash -> continue, goto 5;
  node 4:
    before(localMPI_setCommand) -> halt, goto 5;
  node 5:
    onload -> continue, goto 5;
}

P1 : ADV1 on machine %d;
G1[%d] : ADVstate on machines 0 .. %d;
|}
    (n_machines - 1) period (n_machines - 1) n_machines n_machines (n_machines - 1)

let replica_split ~n_machines ~n_ranks ~rank ~start ~gap =
  let second = rank + n_ranks in
  Printf.sprintf
    {|
// Replica split (replication backend): kill slot 0 of rank %d at t=%d,
// then slot 1 (machine %d = rank + n_ranks) %d s later. A gap shorter
// than the respawn latency exhausts the rank's replication inside the
// failover window (Buggy-equivalent); a longer gap is absorbed as two
// independent failovers.
Daemon SPLIT {
  node 1:
    time t_first = %d;
    timer -> !crash(G1[%d]), goto 2;
  node 2:
    ?ok -> goto 3;
    ?no -> goto 3;
  node 3:
    time t_second = %d;
    timer -> !crash(G1[%d]), goto 4;
  node 4:
    ?ok -> goto 5;
    ?no -> goto 5;
  node 5:
}
%s
P1 : SPLIT on machine %d;
G1[%d] : ADV2 on machines 0 .. %d;
|}
    rank start second gap start rank gap second adv2_controller n_machines n_machines
    (n_machines - 1)

let double_strike ~n_machines ~first ~second ~start ~nth ~gap =
  Codegen.Scenario.source ~n_machines
    [
      { Codegen.Scenario.machine = first; anchor = Codegen.Scenario.After start; kind = Codegen.Scenario.Kill };
      {
        Codegen.Scenario.machine = second;
        anchor = Codegen.Scenario.On_reload { nth; delay = gap };
        kind = Codegen.Scenario.Kill;
      };
    ]

let partition_wave ~n_machines ~victim ~target ~loss ~latency ~start ~wave ~gap ~heal =
  Codegen.Scenario.source ~n_machines
    [
      {
        Codegen.Scenario.machine = victim;
        anchor = Codegen.Scenario.After start;
        kind = Codegen.Scenario.Degrade { loss; latency };
      };
      { Codegen.Scenario.machine = victim; anchor = Codegen.Scenario.After wave; kind = Codegen.Scenario.Partition };
      { Codegen.Scenario.machine = target; anchor = Codegen.Scenario.After gap; kind = Codegen.Scenario.Kill };
      { Codegen.Scenario.machine = 0; anchor = Codegen.Scenario.After heal; kind = Codegen.Scenario.Heal };
    ]

let rack_blackout ~n_machines ~switch ~start ~heal =
  Codegen.Scenario.source ~n_machines
    [
      {
        Codegen.Scenario.machine = switch;
        anchor = Codegen.Scenario.After start;
        kind = Codegen.Scenario.Switch_kill { tier = Ast.Tier_agg };
      };
      { Codegen.Scenario.machine = 0; anchor = Codegen.Scenario.After heal; kind = Codegen.Scenario.Heal };
    ]

let shrink_storm ~n_machines ~targets ~start ~step ~victim ~lag =
  Codegen.Scenario.source ~n_machines
    (List.mapi
       (fun i m ->
         {
           Codegen.Scenario.machine = m;
           anchor = Codegen.Scenario.After (if i = 0 then start else step);
           kind = Codegen.Scenario.Kill;
         })
       targets
    @ [
        {
          Codegen.Scenario.machine = victim;
          anchor = Codegen.Scenario.After lag;
          kind = Codegen.Scenario.Partition;
        };
      ])

let ckpt_sniper ~n_machines ~server ~start ~rank ~gap =
  Codegen.Scenario.source ~n_machines
    [
      {
        Codegen.Scenario.machine = server;
        anchor = Codegen.Scenario.After start;
        kind = Codegen.Scenario.Service_kill { service = Codegen.Scenario.S_ckpt server };
      };
      {
        Codegen.Scenario.machine = rank;
        anchor = Codegen.Scenario.After gap;
        kind = Codegen.Scenario.Kill;
      };
    ]

let all =
  [
    ("fig5-frequency", frequency ~n_machines:53 ~period:50);
    ("fig7-simultaneous", simultaneous ~n_machines:53 ~period:50 ~count:3);
    ("fig8-synchronized", synchronized ~n_machines:53 ~period:50);
    ("fig10-state-synchronized", state_synchronized ~n_machines:53 ~period:50);
    (* Replication-backend scenarios: 9 ranks at degree 2 on 22 machines
       (18 replicas + 4 spares). *)
    ("replica-split", replica_split ~n_machines:22 ~n_ranks:9 ~rank:4 ~start:50 ~gap:0);
    ( "replica-split-staggered",
      replica_split ~n_machines:22 ~n_ranks:9 ~rank:4 ~start:50 ~gap:40 );
    (* §6 shape for 9 ranks on 13 machines: first kill at t=25, second
       1 s after the 10th cumulative registration — i.e. 1 s after the
       first daemon of the recovery wave re-registers. A file version
       lives in scenarios/double_strike.fail. *)
    ( "double-strike",
      double_strike ~n_machines:13 ~first:1 ~second:2 ~start:25 ~nth:10 ~gap:1 );
    (* Network fault cascade for 9 ranks on 13 machines: degrade the
       victim's links at t=20 (10% loss, +2 ms), cut it off 10 s later,
       kill another rank mid-outage, heal 8 s after the kill — early
       enough that connect retries have not exhausted. A parameterized
       file version lives in scenarios/partition_wave.fail. *)
    ( "partition-wave",
      partition_wave ~n_machines:13 ~victim:2 ~target:5 ~loss:100 ~latency:2 ~start:20
        ~wave:10 ~gap:5 ~heal:8 );
    (* Rack blackout for 4 ranks at degree 2 on 10 machines: kill
       aggregation switch 0 of the declared fabric at t=30, heal 20 s
       later — before connect retries exhaust, so the retransmitting
       transport drains and the run completes. A parameterized file
       version lives in scenarios/rack_blackout.fail. *)
    ("rack-blackout", rack_blackout ~n_machines:10 ~switch:0 ~start:30 ~heal:20);
    (* Shrink storm for 9 ranks on 13 machines (hosts 9..12 double as the
       ulfm warm-spare pool): staggered kills at t=25, 28, 31 land inside
       a running collective, then machine 2 is cut off 2 s after the last
       kill — during the survivor agreement the kills triggered. The
       unsuspected membership drops to exactly a majority of the original
       epoch, so the shrink backend must still decide (and the partition
       victim, alone on its side, must not). A parameterized file version
       lives in scenarios/shrink_storm.fail. *)
    ( "shrink-storm",
      shrink_storm ~n_machines:13 ~targets:[ 1; 5; 7 ] ~start:25 ~step:3 ~victim:2
        ~lag:2 );
    (* Checkpoint sniper for 9 ranks on 13 machines: shoot checkpoint
       server 0 at t=32 — 2 s into the first wave's store window, so the
       in-flight image is torn on its disk — then kill rank 3 while the
       server is down. With mirroring on (ckpt_replicas >= 2) the rank
       restores from server 0's mirror; with a single replica the restart
       finds no complete image and the run ends in Ckpt_lost instead of
       hanging. A parameterized file version lives in
       scenarios/ckpt_sniper.fail. *)
    ("ckpt-sniper", ckpt_sniper ~n_machines:13 ~server:0 ~start:32 ~rank:3 ~gap:6);
  ]
