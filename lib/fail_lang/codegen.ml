let dump (plan : Compile.plan) =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (_, automaton) ->
      Buffer.add_string buf (Format.asprintf "%a@." Automaton.pp automaton))
    plan.Compile.automata;
  List.iter
    (fun dep -> Buffer.add_string buf (Format.asprintf "%a@." Pp.pp_deployment dep))
    plan.Compile.deployments;
  Buffer.contents buf

let escape s =
  String.concat ""
    (List.map
       (fun c -> match c with '"' -> "\\\"" | '\\' -> "\\\\" | c -> String.make 1 c)
       (List.init (String.length s) (String.get s)))

let to_dot (a : Automaton.t) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "digraph %s {\n  rankdir=LR;\n" (escape a.name));
  Array.iteri
    (fun i (node : Automaton.cnode) ->
      let decorations =
        (match node.timer with Some _ -> [ "timer" ] | None -> [])
        @ if node.always = [] then [] else [ "always" ]
      in
      let label =
        match decorations with
        | [] -> node.node_id
        | ds -> Printf.sprintf "%s\\n[%s]" node.node_id (String.concat "," ds)
      in
      Buffer.add_string buf
        (Printf.sprintf "  n%d [label=\"%s\"%s];\n" i (escape label)
           (if i = 0 then ", shape=doublecircle" else "")))
    a.nodes;
  Array.iteri
    (fun i (node : Automaton.cnode) ->
      List.iter
        (fun (tr : Automaton.ctransition) ->
          (* The last goto determines the destination; a transition
             without goto stays in place. *)
          let target =
            List.fold_left
              (fun acc action ->
                match action with Automaton.C_goto t -> Some t | _ -> acc)
              None tr.actions
          in
          let label =
            match tr.trigger with
            | Some t -> Format.asprintf "%a" Automaton.pp_trigger t
            | None -> "entry"
          in
          let dst = match target with Some t -> t | None -> i in
          Buffer.add_string buf
            (Printf.sprintf "  n%d -> n%d [label=\"%s\"];\n" i dst (escape label)))
        node.transitions)
    a.nodes;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Fault-plan scenario generation (the explorer's replay format). *)

module Scenario = struct
  (* Process faults go through a controller message ([kill]/[freezeN]);
     network faults are executed directly by the coordinator via the
     first-class FAIL network actions, so they need no controller
     cooperation. [Partition] isolates the target machine; [Degrade]
     worsens every link touching it ([loss] permille, [latency] ms);
     [Heal] clears all installed network faults (its machine is
     canonically 0 and otherwise ignored). *)
  (* Infrastructure service faults are executed by the coordinator via
     the first-class [halt service ...] actions, like network faults —
     services are not members of the controller group. The [machine] of
     such an injection is the ckpt replica index (0 for sched/disp). *)
  type service = S_ckpt of int | S_sched | S_disp

  type kind =
    | Kill
    | Freeze of { thaw : int }
    | Partition
    | Degrade of { loss : int; latency : int }
    | Heal
    | Switch_kill of { tier : Ast.tier }  (* machine = switch index *)
    | Pod_degrade of { loss : int; latency : int }  (* machine = pod index *)
    | Service_kill of { service : service }
    | Service_freeze of { service : service; thaw : int }

  type anchor = After of int | On_reload of { nth : int; delay : int }

  type injection = { machine : int; anchor : anchor; kind : kind }

  let loc = Loc.dummy

  let msg_of_kind = function
    | Kill -> "kill"
    | Freeze { thaw } -> Printf.sprintf "freeze%d" thaw
    | Partition | Degrade _ | Heal | Switch_kill _ | Pod_degrade _ | Service_kill _
    | Service_freeze _ ->
        invalid_arg
          "Scenario.msg_of_kind: network and service faults have no controller message"

  let sel_of_service = function
    | S_ckpt i -> Ast.Svc_ckpt (Ast.Int i)
    | S_sched -> Ast.Svc_sched
    | S_disp -> Ast.Svc_disp

  let machine_of_service = function S_ckpt i -> i | S_sched | S_disp -> 0

  let kind_of_msg msg =
    if String.equal msg "kill" then Some Kill
    else
      let p = "freeze" in
      let pl = String.length p in
      if String.length msg > pl && String.equal (String.sub msg 0 pl) p then
        Option.map
          (fun thaw -> Freeze { thaw })
          (int_of_string_opt (String.sub msg pl (String.length msg - pl)))
      else None

  let needs_reload injections =
    List.exists
      (fun i -> match i.anchor with On_reload _ -> true | After _ -> false)
      injections

  (* Controller thaw durations: service freezes thaw from a coordinator
     timer node instead, so they contribute none. *)
  let thaws injections =
    List.sort_uniq compare
      (List.filter_map
         (fun i ->
           match i.kind with
           | Freeze { thaw } -> Some thaw
           | Kill | Partition | Degrade _ | Heal | Switch_kill _ | Pod_degrade _
           | Service_kill _ | Service_freeze _ ->
               None)
         injections)

  (* Every controller registration is forwarded to the coordinator as a
     [reg] message; [regs] counts them so [On_reload { nth; _ }] can wait
     for the [nth] cumulative registration (initial launches included). *)
  let count_reg =
    {
      Ast.t_loc = loc;
      guard = { Ast.trigger = Some (Ast.T_recv "reg"); conds = [] };
      actions = [ Ast.A_assign ("regs", Ast.Binop (Ast.Add, Ast.Var "regs", Ast.Int 1)) ];
    }

  let fire_name i = Printf.sprintf "f%d" (i + 1)

  let entry_name i inj =
    match inj.anchor with
    | After _ -> fire_name i
    | On_reload _ -> Printf.sprintf "w%d" (i + 1)

  (* Coordinator: one chain of nodes, one (or two, for reload-anchored)
     per injection, ending in [done]. Timers arm on node entry, so an
     [After d] delay is relative to the previous fault having fired. *)
  let plan_daemon ~with_reg injections =
    let n = List.length injections in
    let next_entry i =
      if i + 1 >= n then "done" else entry_name (i + 1) (List.nth injections (i + 1))
    in
    let counting = if with_reg then [ count_reg ] else [] in
    let nodes =
      List.concat
        (List.mapi
           (fun i inj ->
             (* The fire node's actions plus any follow-up nodes. A
                service freeze splits in two: the fire node stops the
                service and moves to a thaw node whose timer resumes it
                — the structural analogue of the controller's frozen
                state, lifted into the coordinator. *)
             let fire_actions, extra_nodes =
               let target = Ast.D_indexed ("G1", Ast.Int inj.machine) in
               let simple a = ([ a; Ast.A_goto (next_entry i) ], []) in
               match inj.kind with
               | Kill | Freeze _ -> simple (Ast.A_send (msg_of_kind inj.kind, target))
               | Partition -> simple (Ast.A_partition (target, None))
               | Degrade { loss; latency } ->
                   simple
                     (Ast.A_degrade
                        {
                          Ast.deg_target = target;
                          deg_loss = Some (Ast.Int loss);
                          deg_latency = Some (Ast.Int latency);
                          deg_jitter = None;
                        })
               | Heal -> simple Ast.A_heal
               | Switch_kill { tier } ->
                   (* [machine] is the per-tier switch index, not a host. *)
                   simple
                     (Ast.A_partition
                        (Ast.D_topo (Ast.Sel_switch (tier, Ast.Int inj.machine)), None))
               | Pod_degrade { loss; latency } ->
                   simple
                     (Ast.A_degrade
                        {
                          Ast.deg_target = Ast.D_topo (Ast.Sel_pod (Ast.Int inj.machine));
                          deg_loss = Some (Ast.Int loss);
                          deg_latency = Some (Ast.Int latency);
                          deg_jitter = None;
                        })
               | Service_kill { service } ->
                   simple (Ast.A_halt (Some (sel_of_service service)))
               | Service_freeze { service; thaw } ->
                   let sel = sel_of_service service in
                   let thaw_id = Printf.sprintf "s%d" (i + 1) in
                   let thaw_node =
                     {
                       Ast.n_loc = loc;
                       n_id = thaw_id;
                       n_always = [];
                       n_timer = Some ("thaw", Ast.Int thaw);
                       n_transitions =
                         {
                           Ast.t_loc = loc;
                           guard = { Ast.trigger = Some Ast.T_timer; conds = [] };
                           actions =
                             [ Ast.A_continue (Some sel); Ast.A_goto (next_entry i) ];
                         }
                         :: counting;
                     }
                   in
                   ([ Ast.A_stop (Some sel); Ast.A_goto thaw_id ], [ thaw_node ])
             in
             let fire delay =
               {
                 Ast.n_loc = loc;
                 n_id = fire_name i;
                 n_always = [];
                 n_timer = Some ("t", Ast.Int delay);
                 n_transitions =
                   {
                     Ast.t_loc = loc;
                     guard = { Ast.trigger = Some Ast.T_timer; conds = [] };
                     actions = fire_actions;
                   }
                   :: counting;
               }
             in
             match inj.anchor with
             | After delay -> fire delay :: extra_nodes
             | On_reload { nth; delay } ->
                 let arm =
                   {
                     Ast.t_loc = loc;
                     guard =
                       {
                         Ast.trigger = Some (Ast.T_recv "reg");
                         conds = [ (Ast.Ge, Ast.Var "regs", Ast.Int (nth - 1)) ];
                       };
                     actions =
                       [
                         Ast.A_assign ("regs", Ast.Binop (Ast.Add, Ast.Var "regs", Ast.Int 1));
                         Ast.A_goto (fire_name i);
                       ];
                   }
                 in
                 {
                   Ast.n_loc = loc;
                   n_id = Printf.sprintf "w%d" (i + 1);
                   n_always = [];
                   n_timer = None;
                   n_transitions = arm :: counting;
                 }
                 :: fire delay :: extra_nodes)
           injections)
    in
    let done_node =
      { Ast.n_loc = loc; n_id = "done"; n_always = []; n_timer = None; n_transitions = counting }
    in
    {
      Ast.d_loc = loc;
      d_name = "PLAN";
      d_vars = (if with_reg then [ ("regs", Ast.Int 0) ] else []);
      d_nodes = nodes @ [ done_node ];
    }

  (* Per-machine controller: [idle] (no process) / [live] / one frozen
     node per distinct thaw duration. Unmatched messages are dropped by
     the FCI runtime, so a [kill] aimed at an idle controller is a no-op
     (the fault is wasted, exactly like shooting a spare host). *)
  let node_daemon ~with_reg ~thaws =
    let on_load =
      {
        Ast.t_loc = loc;
        guard = { Ast.trigger = Some Ast.T_onload; conds = [] };
        actions =
          (Ast.A_continue None
           :: (if with_reg then [ Ast.A_send ("reg", Ast.D_instance "P1") ] else []))
          @ [ Ast.A_goto "live" ];
      }
    in
    let to_idle trigger =
      {
        Ast.t_loc = loc;
        guard = { Ast.trigger = Some trigger; conds = [] };
        actions = [ Ast.A_goto "idle" ];
      }
    in
    let on_kill =
      {
        Ast.t_loc = loc;
        guard = { Ast.trigger = Some (Ast.T_recv "kill"); conds = [] };
        actions = [ Ast.A_halt None; Ast.A_goto "idle" ];
      }
    in
    let freeze_transitions =
      List.map
        (fun thaw ->
          {
            Ast.t_loc = loc;
            guard = { Ast.trigger = Some (Ast.T_recv (Printf.sprintf "freeze%d" thaw)); conds = [] };
            actions = [ Ast.A_stop None; Ast.A_goto (Printf.sprintf "frozen%d" thaw) ];
          })
        thaws
    in
    let idle =
      { Ast.n_loc = loc; n_id = "idle"; n_always = []; n_timer = None; n_transitions = [ on_load ] }
    in
    let live =
      {
        Ast.n_loc = loc;
        n_id = "live";
        n_always = [];
        n_timer = None;
        n_transitions =
          [ to_idle Ast.T_onexit; to_idle Ast.T_onerror; on_load; on_kill ] @ freeze_transitions;
      }
    in
    let frozen =
      List.map
        (fun thaw ->
          {
            Ast.n_loc = loc;
            n_id = Printf.sprintf "frozen%d" thaw;
            n_always = [];
            n_timer = Some ("thaw", Ast.Int thaw);
            n_transitions =
              [
                {
                  Ast.t_loc = loc;
                  guard = { Ast.trigger = Some Ast.T_timer; conds = [] };
                  actions = [ Ast.A_continue None; Ast.A_goto "live" ];
                };
                to_idle Ast.T_onexit;
                to_idle Ast.T_onerror;
                on_kill;
              ];
          })
        thaws
    in
    { Ast.d_loc = loc; d_name = "NODE"; d_vars = []; d_nodes = (idle :: live :: frozen) }

  let program ~n_machines injections =
    let with_reg = needs_reload injections in
    {
      Ast.daemons = [ plan_daemon ~with_reg injections; node_daemon ~with_reg ~thaws:(thaws injections) ];
      deployments =
        [
          Ast.Dep_singleton { dep_loc = loc; inst = "P1"; daemon = "PLAN"; machine = n_machines };
          Ast.Dep_group
            {
              dep_loc = loc;
              inst = "G1";
              count = n_machines;
              daemon = "NODE";
              mach_lo = 0;
              mach_hi = n_machines - 1;
            };
        ];
    }

  let source ~n_machines injections = Pp.program_to_string (program ~n_machines injections)

  (* ---- parse-back ------------------------------------------------- *)

  let rec fold_const = function
    | Ast.Int n -> Some n
    | Ast.Binop (op, a, b) -> (
        match (fold_const a, fold_const b) with
        | Some a, Some b -> (
            match op with
            | Ast.Add -> Some (a + b)
            | Ast.Sub -> Some (a - b)
            | Ast.Mul -> Some (a * b)
            | Ast.Div -> if b = 0 then None else Some (a / b)
            | Ast.Mod -> if b = 0 then None else Some (a mod b))
        | _ -> None)
    | Ast.Var _ | Ast.App_var _ | Ast.Random _ -> None

  let injections_of_program (p : Ast.program) =
    let ( let* ) = Result.bind in
    let* group =
      match
        List.filter_map
          (function Ast.Dep_group { count; mach_lo; _ } -> Some (count, mach_lo) | _ -> None)
          p.Ast.deployments
      with
      | [ (count, 0) ] -> Ok count
      | [ (_, lo) ] -> Error (Printf.sprintf "controller group starts at machine %d, not 0" lo)
      | _ -> Error "expected exactly one controller group deployment"
    in
    let* plan_name =
      match
        List.filter_map
          (function Ast.Dep_singleton { daemon; _ } -> Some daemon | _ -> None)
          p.Ast.deployments
      with
      | [ name ] -> Ok name
      | _ -> Error "expected exactly one coordinator deployment"
    in
    let* plan =
      match List.find_opt (fun d -> String.equal d.Ast.d_name plan_name) p.Ast.daemons with
      | Some d -> Ok d
      | None -> Error (Printf.sprintf "coordinator daemon %s not found" plan_name)
    in
    (* Structural walk over the coordinator's nodes, in declaration
       order: a reload-wait node carries the [nth] threshold of the fire
       node that follows it; any other shape is rejected. *)
    (* The structural inverse of [fault_action] above: recover (machine,
       kind) from the leading action of a timer transition. *)
    let service_of_sel = function
      | Ast.Svc_ckpt e -> Option.map (fun i -> S_ckpt i) (fold_const e)
      | Ast.Svc_sched -> Some S_sched
      | Ast.Svc_disp -> Some S_disp
    in
    let kind_of_actions = function
      | Ast.A_send (msg, Ast.D_indexed (_, machine_e)) :: _ -> (
          match (fold_const machine_e, kind_of_msg msg) with
          | Some machine, Some kind -> Some (machine, kind)
          | _ -> None)
      | Ast.A_halt (Some sel) :: _ ->
          Option.map
            (fun service -> (machine_of_service service, Service_kill { service }))
            (service_of_sel sel)
      | Ast.A_stop (Some sel) :: _ ->
          (* Freeze begin: the thaw duration lives in the following
             coordinator node; [walk] fills it in after consuming it. *)
          Option.map
            (fun service ->
              (machine_of_service service, Service_freeze { service; thaw = 0 }))
            (service_of_sel sel)
      | Ast.A_partition (Ast.D_indexed (_, machine_e), None) :: _ ->
          Option.map (fun machine -> (machine, Partition)) (fold_const machine_e)
      | Ast.A_partition (Ast.D_topo (Ast.Sel_switch (tier, idx_e)), None) :: _ ->
          Option.map (fun idx -> (idx, Switch_kill { tier })) (fold_const idx_e)
      | Ast.A_degrade
          { Ast.deg_target = Ast.D_indexed (_, machine_e); deg_loss; deg_latency; _ }
        :: _ -> (
          let dim = function None -> Some 0 | Some e -> fold_const e in
          match (fold_const machine_e, dim deg_loss, dim deg_latency) with
          | Some machine, Some loss, Some latency ->
              Some (machine, Degrade { loss; latency })
          | _ -> None)
      | Ast.A_degrade
          { Ast.deg_target = Ast.D_topo (Ast.Sel_pod idx_e); deg_loss; deg_latency; _ }
        :: _ -> (
          let dim = function None -> Some 0 | Some e -> fold_const e in
          match (fold_const idx_e, dim deg_loss, dim deg_latency) with
          | Some idx, Some loss, Some latency ->
              Some (idx, Pod_degrade { loss; latency })
          | _ -> None)
      | Ast.A_heal :: _ -> Some (0, Heal)
      | _ -> None
    in
    let fire_of_node node =
      match node.Ast.n_timer with
      | None -> None
      | Some (_, delay_e) ->
          List.find_map
            (fun t ->
              match (t.Ast.guard.Ast.trigger, kind_of_actions t.Ast.actions) with
              | Some Ast.T_timer, Some (machine, kind) -> (
                  match fold_const delay_e with
                  | Some delay -> Some (machine, delay, kind)
                  | None -> None)
              | _ -> None)
            node.Ast.n_transitions
    in
    let wait_of_node node =
      if Option.is_some node.Ast.n_timer then None
      else
        List.find_map
          (fun t ->
            match (t.Ast.guard.Ast.trigger, t.Ast.guard.Ast.conds, t.Ast.actions) with
            | Some (Ast.T_recv _), [ (Ast.Ge, _, nth_e) ], actions
              when List.exists (function Ast.A_goto _ -> true | _ -> false) actions ->
                Option.map (fun k -> k + 1) (fold_const nth_e)
            | _ -> None)
          node.Ast.n_transitions
    in
    let is_terminal node =
      Option.is_none node.Ast.n_timer
      && List.for_all
           (fun t ->
             match t.Ast.guard.Ast.trigger with Some (Ast.T_recv _) -> true | _ -> false)
           node.Ast.n_transitions
    in
    (* A service thaw node: timer whose expiry resumes the service. *)
    let thaw_of_node node =
      match node.Ast.n_timer with
      | None -> None
      | Some (_, delay_e) ->
          if
            List.exists
              (fun t ->
                match (t.Ast.guard.Ast.trigger, t.Ast.actions) with
                | Some Ast.T_timer, Ast.A_continue (Some _) :: _ -> true
                | _ -> false)
              node.Ast.n_transitions
          then fold_const delay_e
          else None
    in
    let* injections =
      let rec walk pending acc = function
        | [] -> (
            match pending with
            | None -> Ok (List.rev acc)
            | Some _ -> Error "reload-wait node not followed by a fault node")
        | node :: rest -> (
            match fire_of_node node with
            | Some (machine, delay, kind) -> (
                let anchor =
                  match pending with
                  | Some nth -> On_reload { nth; delay }
                  | None -> After delay
                in
                match kind with
                | Service_freeze { service; _ } -> (
                    (* Consume the paired thaw node that follows. *)
                    match rest with
                    | next :: rest' -> (
                        match thaw_of_node next with
                        | Some thaw ->
                            walk None
                              ({ machine; anchor; kind = Service_freeze { service; thaw } }
                              :: acc)
                              rest'
                        | None ->
                            Error "service stop not followed by a thaw node")
                    | [] -> Error "service stop not followed by a thaw node")
                | Kill | Freeze _ | Partition | Degrade _ | Heal | Switch_kill _
                | Pod_degrade _ | Service_kill _ ->
                    walk None ({ machine; anchor; kind } :: acc) rest)
            | None -> (
                match wait_of_node node with
                | Some nth ->
                    if Option.is_some pending then Error "two consecutive reload-wait nodes"
                    else walk (Some nth) acc rest
                | None ->
                    if is_terminal node then walk pending acc rest
                    else Error (Printf.sprintf "unrecognized coordinator node %s" node.Ast.n_id)))
      in
      walk None [] plan.Ast.d_nodes
    in
    Ok (group, injections)
end
