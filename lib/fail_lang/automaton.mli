(** Compiled form of a FAIL daemon: a flat state machine interpreted by
    the FCI runtime.

    Names are resolved to indices: variables (daemon-global and per-node
    [always]) to slots in a single variable frame, nodes to positions in
    the node array. This is the analogue of the FCI compiler's generated
    C++ in the original tool chain. *)

type cexpr =
  | C_int of int
  | C_var of int  (** variable slot *)
  | C_app_var of string  (** read from the controlled process *)
  | C_binop of Ast.binop * cexpr * cexpr
  | C_random of cexpr * cexpr

type ccond = Ast.relop * cexpr * cexpr

type ctopo_sel =
  | CSel_switch of Ast.tier * cexpr
  | CSel_pod of cexpr
  | CSel_rack of cexpr

type cdest =
  | CD_instance of string
  | CD_indexed of string * cexpr
  | CD_group of string
  | CD_sender
  | CD_topo of ctopo_sel  (** fabric component, resolved at runtime *)

(** Compiled service selector of [halt service ...] and friends; the
    [ckpt] replica index stays an expression until execution. *)
type cservice = CSvc_ckpt of cexpr | CSvc_sched | CSvc_disp

type caction =
  | C_goto of int
  | C_send of string * cdest
  | C_assign of int * cexpr
  | C_halt of cservice option
      (** kill the controlled process, or a registered service *)
  | C_stop of cservice option
  | C_continue of cservice option
  | C_set_app of string * cexpr
  | C_partition of cdest * cdest option
      (** cut between two deployment sets; [None] isolates the first *)
  | C_heal
  | C_degrade of cdest * cexpr option * cexpr option * cexpr option
      (** target, loss (permille), latency (ms), jitter (ms) *)

type ctransition = {
  trigger : Ast.trigger option;
  conds : ccond list;
  actions : caction list;
}

type cnode = {
  node_id : string;
  always : (int * cexpr) list;  (** slot, initialiser; in declaration order *)
  timer : cexpr option;  (** duration, armed on node entry *)
  transitions : ctransition list;
}

type t = {
  name : string;
  var_names : string array;  (** one entry per slot *)
  var_init : (int * cexpr) list;  (** daemon-global initialisers *)
  nodes : cnode array;  (** index 0 is the initial node *)
}

val var_count : t -> int
val node_count : t -> int

(** [node_index t id] finds a node by its source id. *)
val node_index : t -> string -> int option

(** [messages_sent t] / [messages_received t] are the sorted message
    vocabularies, for linking diagnostics. *)
val messages_sent : t -> string list

val messages_received : t -> string list

val pp : Format.formatter -> t -> unit
val pp_trigger : Format.formatter -> Ast.trigger -> unit

(** Compact one-line renderings, shared with runtime traces. *)
val topo_sel_s : ctopo_sel -> string

val dest_s : cdest -> string

(** [service_s svc] renders a compiled service selector ([ckpt\[v0\]],
    [sched], [disp]); shared with runtime traces. *)
val service_s : cservice -> string
