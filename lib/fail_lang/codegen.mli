(** Back-ends for compiled scenarios.

    The original FCI compiler emitted C++ sources that were shipped to the
    target machines and compiled there. Our runtime interprets the
    automaton directly, so code generation is used for inspection: a
    human-readable dump and a Graphviz rendering of the state machines. *)

(** [dump plan] renders every automaton of the plan in the textual IR
    format of {!Automaton.pp}, plus the deployment table. *)
val dump : Compile.plan -> string

(** [to_dot automaton] renders one daemon as a Graphviz digraph; node
    labels carry always/timer declarations, edge labels the guards and
    actions. *)
val to_dot : Automaton.t -> string

(** Deterministic fault-plan scenarios — the replay format of
    [lib/explore].

    A plan is a list of injections executed in order by a coordinator
    daemon [PLAN] (deployed on the FAIL coordinator machine), each
    aimed at one per-machine controller of the [NODE] group (deployed
    on machines [0 .. n_machines-1], so respawned ranks on spare hosts
    stay controllable). Two anchors:

    - [After d]: fire [d] seconds after the previous fault fired (or
      after scenario start, for the first injection) — timers arm on
      node entry;
    - [On_reload { nth; delay }]: wait until the [nth] cumulative
      process registration reported by the controllers (initial
      launches count), then fire [delay] seconds later — the Figure 8
      "synchronize on the recovery wave" idiom.

    [source] pretty-prints via {!Pp}, so the emitted text parses back
    ({!injections_of_program} is its structural inverse), can be saved
    as a [.fail] file and replayed with [failmpi_run]. *)
module Scenario : sig
  (** Process faults ([Kill], [Freeze]) are delivered as controller
      messages; network faults compile to the first-class FAIL network
      actions executed by the coordinator itself. [Partition] isolates
      the target machine from every other host; [Degrade] worsens all
      links touching it ([loss] in permille, [latency] in ms); [Heal]
      clears every installed network fault (its [machine] is canonically
      0 and otherwise ignored).

      Topology faults reinterpret [machine] as the component index:
      [Switch_kill] compiles to [partition switch <tier>\[machine\]]
      (one dead switch, every route through it cut), [Pod_degrade] to
      [degrade pod machine ...] (the spec lands on all intra-pod
      links). Both need the run to declare a {!Mpivcl.Config.topology}.

      Service faults target the infrastructure plane by registered name
      instead of the controller group: [Service_kill] compiles to
      [halt service ...] executed by the coordinator, [Service_freeze]
      to a [stop service ...] fire node paired with a thaw node whose
      timer issues [continue service ...]. For [S_ckpt i] the
      injection's [machine] is the replica index [i]; for
      [S_sched]/[S_disp] it is canonically 0 and otherwise ignored. *)
  type service = S_ckpt of int | S_sched | S_disp

  type kind =
    | Kill
    | Freeze of { thaw : int }  (** [stop] then [continue] after [thaw] s *)
    | Partition
    | Degrade of { loss : int; latency : int }
    | Heal
    | Switch_kill of { tier : Ast.tier }
    | Pod_degrade of { loss : int; latency : int }
    | Service_kill of { service : service }
    | Service_freeze of { service : service; thaw : int }

  type anchor = After of int | On_reload of { nth : int; delay : int }

  type injection = { machine : int; anchor : anchor; kind : kind }

  (** [program ~n_machines injections] builds the scenario AST (already
      in checked form: no parameters, no bare group destinations). *)
  val program : n_machines:int -> injection list -> Ast.program

  (** [source ~n_machines injections] is the scenario as FAIL source. *)
  val source : n_machines:int -> injection list -> string

  (** [injections_of_program p] recovers [(n_machines, injections)] from
      a (checked) program of the generated shape — including hand-written
      files like [scenarios/double_strike.fail] after parameter
      substitution. *)
  val injections_of_program : Ast.program -> (int * injection list, string) result
end
