(** Deployment of the ulfm shrink-and-continue backend — the
    [Mpivcl.Deploy] counterpart for [Config.Ulfm].

    Host layout: compute hosts [0 .. n_ranks-1] hold the computing
    daemons (daemon [d] on host [d], mirroring the rollback backends'
    placement so machine-indexed FAIL scenarios hit the same logical
    ranks); hosts [n_ranks .. n_ranks+spares-1] hold the warm spares;
    then the FAIL coordinator host and the dispatcher host. No
    checkpoint servers exist in this family: committed state survives as
    buddy backups inside the daemon population. *)

type layout = {
  n_compute : int;
  coordinator_host : int;
  dispatcher_host : int;
  total_hosts : int;
}

val make_layout : n_compute:int -> layout

type handle = { env : Uenv.t; lay : layout; udispatcher : Udispatcher.t }

(** Requires [cfg.protocol = Ulfm { spares }] with
    [n_ranks + spares <= n_compute]; raises [Invalid_argument]
    otherwise. *)
val launch :
  Simkern.Engine.t ->
  ?fci:Fci.Runtime.t ->
  cfg:Mpivcl.Config.t ->
  app:Mpivcl.App.t ->
  state_bytes:int ->
  n_compute:int ->
  unit ->
  handle

val cluster : handle -> Simos.Cluster.t
val net : handle -> Umsg.t Simnet.Net.t
val teardown : handle -> unit
