(** One ulfm daemon: failure detector, agreement participant and rank
    host, all in a single event loop per cluster host.

    Unlike the rollback families there is no recovery wave and no
    relaunch. Every daemon heartbeats its peers over a full mesh; a
    silent peer (suspicion timeout), a torn peer connection or a
    received [Revoke] raises a revocation into whatever is running —
    hosted ranks are killed mid-collective, exactly like ULFM's
    [MPI_ERR_PROC_FAILED] surfacing inside [MPI_Allreduce]. The unsuspected
    members then agree on the next epoch (two-phase, ballot-ordered,
    requiring a {e majority of the epoch being superseded} so a
    partitioned minority can never install a second survivor set — it
    blocks, retries, and aborts cleanly once the ballot budget runs
    out). The decision is the full next communicator: members, dense
    rank assignment (spares promoted first, leftovers adopted), the
    uniform restart iteration and the snapshot donors. Installation
    fetches missing snapshots, re-knits a recursive-doubling sync
    collective over the survivors, and restarts the daemon's assigned
    ranks; a daemon outside the decided member set fences itself off and
    exits.

    Committed application state is kept as in-memory snapshots: each
    commit is stored locally and backed up to the next member around the
    ring, so the agreed restart point survives any single failure
    between commits.

    Trace events: [daemon-start], [start], [revoke], [ballot],
    [quorum-lost], [ballot-timeout], [decide], [epoch-install],
    [fenced], [peer-lost], [fetch-failed], [sync-complete],
    [sync-mismatch], [apps-started], [rank-done], [restart-unavailable],
    [abort], [daemon-exit], [protocol-error]. *)

val spawn : Uenv.t -> id:int -> incarnation:int -> Simkern.Proc.t
