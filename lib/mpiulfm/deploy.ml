open Simkern
open Simos
module Config = Mpivcl.Config

type layout = {
  n_compute : int;
  coordinator_host : int;
  dispatcher_host : int;
  total_hosts : int;
}

(* One service host: the ulfm dispatcher. No checkpoint servers — state
   survives in the daemons themselves (buddy backups), and failed hosts
   are never reused. *)
let base_layout ~n_compute = Layout.make ~n_compute ~n_services:1

let make_layout ~n_compute =
  let base = base_layout ~n_compute in
  {
    n_compute = base.Layout.n_compute;
    coordinator_host = base.Layout.coordinator_host;
    dispatcher_host = Layout.service base 0;
    total_hosts = base.Layout.total_hosts;
  }

type handle = { env : Uenv.t; lay : layout; udispatcher : Udispatcher.t }

let launch eng ?fci ~cfg ~app ~state_bytes ~n_compute () =
  let spares =
    match Config.ulfm_spares cfg with
    | Some s when s >= 0 -> s
    | Some s -> invalid_arg (Printf.sprintf "Mpiulfm.Deploy.launch: %d spares < 0" s)
    | None -> invalid_arg "Mpiulfm.Deploy.launch: protocol is not Ulfm"
  in
  let n_ranks = cfg.Config.n_ranks in
  let population = n_ranks + spares in
  if population > n_compute then
    invalid_arg
      (Printf.sprintf
         "Mpiulfm.Deploy.launch: %d daemons (%d ranks + %d spares) need more than %d compute \
          hosts"
         population n_ranks spares n_compute);
  let base = base_layout ~n_compute in
  let lay = make_layout ~n_compute in
  let cluster, net = Layout.fabric eng base in
  (* Perturb the fabric before any process starts, then hand it to the
     FCI control plane so daemon traffic rides the same links. *)
  (match cfg.Config.net with
  | Some profile -> Simnet.Net.Perturb.apply (Simnet.Net.perturb net) profile
  | None -> ());
  (match fci with
  | Some rt -> Fci.Runtime.set_fabric rt (Simnet.Net.perturb net)
  | None -> ());
  (* Validate the declared topology against the compute pool at launch —
     a fabric too small for the job is a configuration error, not a
     mid-run trace. Unperturbed runs never consult the geometry. *)
  (match cfg.Config.topology with
  | Some spec -> (
      let topo = Simtopo.Topo.for_cluster spec ~n_compute in
      match fci with
      | Some rt -> Fci.Runtime.set_topology rt topo
      | None -> ())
  | None -> ());
  let env =
    {
      Uenv.eng;
      cluster;
      net;
      fci;
      cfg;
      app;
      state_bytes;
      dispatcher_host = lay.dispatcher_host;
      population;
      rng = Rng.split (Engine.rng eng);
    }
  in
  (* Daemon d starts on host d: ranks occupy the same hosts the rollback
     backends use (machine-indexed FAIL scenarios hit the same logical
     ranks), spares sit on the hosts just above them. *)
  let udispatcher = Udispatcher.spawn env ~host:lay.dispatcher_host in
  { env; lay; udispatcher }

let cluster h = h.env.Uenv.cluster
let net h = h.env.Uenv.net
let teardown h = Layout.teardown h.env.Uenv.cluster
