open Simkern
open Simos
module Net = Simnet.Net
module Message = Mpivcl.Message
module Config = Mpivcl.Config
module App = Mpivcl.App

(* One ulfm daemon per host. Unlike the rollback families there is no
   recovery wave and no relaunch: every daemon watches its peers with
   heartbeats, raises a revoke into whatever is running when one goes
   silent, agrees with the survivors on the next epoch's dense
   communicator (two-phase, ballot-ordered, quorum = majority of the
   superseded epoch), fetches missing restart snapshots from buddies,
   re-knits the synchronisation collective and restarts its assigned
   ranks from the agreed iteration. A daemon that finds itself outside
   the decided survivor set fences itself off and exits. *)

type app_request =
  | A_send of Message.app_msg
  | A_recv of { dst : int; src : int; tag : int; reply : int Ivar.t }
  | A_commit of { rank : int; state : int array }
  | A_finalize of { rank : int }

type ev =
  | E_ctrl of Umsg.t option
  | E_peer of int * Umsg.t option
  | E_peer_joined of int * Umsg.t Net.conn
  | E_tick
  | E_propose of int
  | E_ballot_timeout of int
  | E_app of int * app_request

(* In-flight ballot bookkeeping for the candidate role. *)
type ballot_state = {
  bs_ballot : int;
  bs_proposed : int list;
  bs_grants : (int, (int * Shrinkc.decision) option * (int * int list) list) Hashtbl.t;
  mutable bs_decision : Shrinkc.decision option; (* Some once phase 2 started *)
  bs_accepts : (int, unit) Hashtbl.t;
}

(* Snapshot history kept per hosted rank (own commits and buddy
   backups). Old entries are pruned; the agreement recomputes a common
   restart point from whatever survives, down to the initial state. *)
let snap_history = 12

let index_of x xs =
  let rec go i = function
    | [] -> None
    | y :: _ when y = x -> Some i
    | _ :: rest -> go (i + 1) rest
  in
  go 0 xs

let spawn (env : Uenv.t) ~id ~incarnation =
  let eng = env.Uenv.eng in
  let cluster = env.Uenv.cluster in
  let cfg = env.Uenv.cfg in
  let n = cfg.Config.n_ranks in
  let population = env.Uenv.population in
  let host = id in
  let name = Printf.sprintf "udaemon-%d" id in
  let trace ?level event detail = Engine.record ?level eng ~source:name ~event detail in
  let tracef ?level event fmt = Engine.record_fmt ?level eng ~source:name ~event fmt in
  Cluster.spawn_on cluster ~host ~name (fun () ->
      let self = Proc.self () in
      let events : ev Mailbox.t = Mailbox.create () in
      let alive = ref true in
      let started = ref false in
      let ready_sent = ref false in

      (* every helper process we spawn (accept loop, pumps) and every
         hosted application rank; the FCI kill/freeze closures and the
         fence path act on all of them *)
      let aux_procs : Proc.t list ref = ref [] in
      let app_procs : (int, Proc.t) Hashtbl.t = Hashtbl.create 8 in

      (* ---------------- epoch state ---------------- *)
      let epoch = ref 0 in
      let members = ref [] in
      let assign = ref [] in
      let restart = ref 0 in
      let last_decision : Shrinkc.decision option ref = ref None in

      (* ---------------- failure detection ---------------- *)
      let peer_conns : (int, Umsg.t Net.conn) Hashtbl.t = Hashtbl.create 16 in
      let last_seen : (int, float) Hashtbl.t = Hashtbl.create 16 in
      let suspected_extra : (int, unit) Hashtbl.t = Hashtbl.create 8 in
      let torn = ref false in
      let revoked = ref false in

      (* ---------------- agreement ---------------- *)
      let attempt = ref 0 in
      let ballots_used = ref 0 in
      let ballots_total = ref 0 in
      let promised : (int, int) Hashtbl.t = Hashtbl.create 8 in
      let accepted : (int, int * Shrinkc.decision) Hashtbl.t = Hashtbl.create 8 in
      let proposing : ballot_state option ref = ref None in
      let propose_token = ref 0 in
      let propose_armed = ref false in
      let ballot_token = ref 0 in

      (* ---------------- snapshots ---------------- *)
      let snaps : (int, (int, int array) Hashtbl.t) Hashtbl.t = Hashtbl.create 8 in
      let pending_fetch : (int, unit) Hashtbl.t = Hashtbl.create 4 in

      (* ---------------- sync collective ---------------- *)
      let sync_stage :
          [ `Idle | `Wait_pre | `Round of int | `Wait_final | `Done ] ref =
        ref `Idle
      in
      let sync_value = ref 0 in
      (* keyed (epoch, from, phase): a peer that installed the next epoch
         first may send its contribution before our Decide arrives *)
      let sync_inbox : (int * int * int, int) Hashtbl.t = Hashtbl.create 32 in
      let apps_spawned = ref false in

      (* ---------------- application plumbing ---------------- *)
      let buffer : Message.app_msg list ref = ref [] in
      let parked : (int * int * int * int Ivar.t) list ref = ref [] in
      let future : (int * Message.app_msg) list ref = ref [] in
      let done_ranks : (int, unit) Hashtbl.t = Hashtbl.create 8 in
      let last_report : Umsg.t option ref = ref None in
      let dconn : Umsg.t Net.conn option ref = ref None in

      let now () = Engine.now eng in
      let dsend msg = match !dconn with Some c -> ignore (Net.send c msg) | None -> () in
      let psend p msg =
        match Hashtbl.find_opt peer_conns p with
        | Some c -> ignore (Net.send c msg)
        | None -> ()
      in
      let psend_sized p ~size msg =
        match Hashtbl.find_opt peer_conns p with
        | Some c -> ignore (Net.send c ~size msg)
        | None -> ()
      in
      let broadcast_peers msg = Hashtbl.iter (fun _ c -> ignore (Net.send c msg)) peer_conns in

      let suspected_now () =
        List.filter
          (fun p ->
            p <> id
            && (Hashtbl.mem suspected_extra p
               ||
               match Hashtbl.find_opt last_seen p with
               | Some t -> now () -. t > cfg.Config.ulfm_suspicion_timeout
               | None -> true))
          !members
      in
      let agreement_needed () =
        !started && (!torn || !revoked || suspected_now () <> [])
      in

      (* ---------------- snapshot store ---------------- *)
      let store_snap rank iter state =
        if iter > 0 then begin
          let per_rank =
            match Hashtbl.find_opt snaps rank with
            | Some h -> h
            | None ->
                let h = Hashtbl.create 16 in
                Hashtbl.replace snaps rank h;
                h
          in
          (* First write wins: the pre-finalize and post-finalize commits
             share an iteration key, and re-executions recommit identical
             values; keeping the first stored copy keeps every holder's
             view of iteration [iter] interchangeable. *)
          if not (Hashtbl.mem per_rank iter) then begin
            Hashtbl.replace per_rank iter (Array.copy state);
            if Hashtbl.length per_rank > snap_history then begin
              let oldest = Hashtbl.fold (fun k _ acc -> min k acc) per_rank max_int in
              Hashtbl.remove per_rank oldest
            end
          end
        end
      in
      let avail_of_snaps () =
        Hashtbl.fold
          (fun rank per_rank acc ->
            let iters = Hashtbl.fold (fun k _ acc -> k :: acc) per_rank [] in
            (rank, List.sort Int.compare iters) :: acc)
          snaps []
        |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
      in
      let holds_snap rank iter =
        match Hashtbl.find_opt snaps rank with
        | Some per_rank -> Hashtbl.mem per_rank iter
        | None -> false
      in
      let buddy () =
        match !members with
        | [] | [ _ ] -> None
        | ms -> (
            match index_of id ms with
            | None -> None
            | Some i -> Some (List.nth ms ((i + 1) mod List.length ms)))
      in

      (* ---------------- application hosting ---------------- *)
      let kill_apps () =
        Hashtbl.iter (fun _ p -> Proc.kill p) app_procs;
        Hashtbl.reset app_procs
      in
      let deliver (m : Message.app_msg) =
        let rec split acc = function
          | [] -> None
          | (dst, src, tag, reply) :: rest
            when dst = m.Message.dst && src = m.Message.src && tag = m.Message.tag ->
              parked := List.rev_append acc rest;
              Some reply
          | r :: rest -> split (r :: acc) rest
        in
        match split [] !parked with
        | Some reply -> Ivar.fill reply m.Message.data
        | None -> buffer := !buffer @ [ m ]
      in
      let serve_recv dst src tag reply =
        let rec split acc = function
          | [] -> None
          | (m : Message.app_msg) :: rest
            when m.Message.dst = dst && m.Message.src = src && m.Message.tag = tag ->
              buffer := List.rev_append acc rest;
              Some m
          | m :: rest -> split (m :: acc) rest
        in
        match split [] !buffer with
        | Some m -> Ivar.fill reply m.Message.data
        | None -> parked := !parked @ [ (dst, src, tag, reply) ]
      in
      let route_send (m : Message.app_msg) =
        match List.assoc_opt m.Message.dst !assign with
        | Some d when d = id -> deliver m
        | Some d -> psend_sized d ~size:m.Message.bytes (Umsg.App { epoch = !epoch; msg = m })
        | None -> ()
      in
      let spawn_rank r state =
        let e = !epoch in
        let ctx =
          {
            App.rank = r;
            size = n;
            state;
            send =
              (fun ~dst ~tag ?(bytes = 1024) data ->
                Mailbox.send events
                  (E_app (e, A_send { Message.src = r; dst; tag; data; bytes })));
            recv =
              (fun ~src ~tag ->
                let reply = Ivar.create () in
                Mailbox.send events (E_app (e, A_recv { dst = r; src; tag; reply }));
                Ivar.read reply);
            commit =
              (fun () ->
                Mailbox.send events (E_app (e, A_commit { rank = r; state = Array.copy state })));
            finalize = (fun () -> Mailbox.send events (E_app (e, A_finalize { rank = r })));
            set_app_var = (fun _ _ -> ());
            noise =
              (let salt = Rng.int64 env.Uenv.rng in
               fun k ->
                 let x =
                   Int64.to_int
                     (Int64.logand
                        (Rng.int64 (Rng.create (Int64.add salt (Int64.of_int k))))
                        0xFFFFFL)
                 in
                 (float_of_int x /. 524287.5) -. 1.0);
          }
        in
        let p =
          Cluster.spawn_on cluster ~host ~name:(Printf.sprintf "umpi-%d" r) (fun () ->
              env.Uenv.app.App.main ctx)
        in
        Hashtbl.replace app_procs r p
      in
      let spawn_apps () =
        if not !apps_spawned then begin
          let mine = List.filter (fun (_, d) -> d = id) !assign in
          let missing =
            !restart > 0
            && List.exists (fun (r, _) -> not (holds_snap r !restart)) mine
          in
          if missing then begin
            (* the agreed restart point is gone (donor died mid-fetch or
               pruned): poison this epoch, the next agreement picks a
               point from what actually survives *)
            trace "restart-unavailable" "forcing a new agreement";
            torn := true
          end
          else begin
            apps_spawned := true;
            List.iter
              (fun (r, _) ->
                let state =
                  if !restart = 0 then Array.make env.Uenv.app.App.state_size 0
                  else Array.copy (Hashtbl.find (Hashtbl.find snaps r) !restart)
                in
                spawn_rank r state)
              mine;
            if mine <> [] then
              tracef ~level:Trace.Full "apps-started" "%d rank%s from iteration %d (epoch %d)"
                (List.length mine)
                (if List.length mine = 1 then "" else "s")
                !restart !epoch
          end
        end
      in

      (* ---------------- sync collective ---------------- *)
      let send_sync p phase value =
        psend p (Umsg.Sync { id; epoch = !epoch; phase; value })
      in
      let mesh_complete () =
        List.for_all (fun p -> p = id || Hashtbl.mem peer_conns p) !members
      in
      let sync_done () =
        sync_stage := `Done;
        let k = List.length !members in
        (match Shrinkc.sync_plan ~members:!members ~me:id with
        | Shrinkc.Edge _ -> ()
        | Shrinkc.Solo | Shrinkc.Core _ ->
            if !sync_value <> k then
              tracef "sync-mismatch" "allreduce sum %d over %d members" !sync_value k);
        tracef ~level:Trace.Full "sync-complete" "epoch %d re-knit over %d members" !epoch k;
        spawn_apps ()
      in
      let rec enter_round plan j =
        match plan with
        | Shrinkc.Core { edge; rounds } ->
            if j >= Array.length rounds then begin
              (match edge with Some e -> send_sync e (-2) !sync_value | None -> ());
              sync_done ()
            end
            else begin
              sync_stage := `Round j;
              send_sync rounds.(j) j !sync_value;
              advance_sync ()
            end
        | Shrinkc.Solo | Shrinkc.Edge _ -> ()
      and advance_sync () =
        let plan = Shrinkc.sync_plan ~members:!members ~me:id in
        let take from phase =
          match Hashtbl.find_opt sync_inbox (!epoch, from, phase) with
          | Some v ->
              Hashtbl.remove sync_inbox (!epoch, from, phase);
              Some v
          | None -> None
        in
        match (!sync_stage, plan) with
        | `Wait_pre, Shrinkc.Core { edge = Some e; _ } -> (
            match take e (-1) with
            | Some v ->
                sync_value := !sync_value + v;
                enter_round plan 0
            | None -> ())
        | `Round j, Shrinkc.Core { rounds; _ } when j < Array.length rounds -> (
            match take rounds.(j) j with
            | Some v ->
                sync_value := !sync_value + v;
                enter_round plan (j + 1)
            | None -> ())
        | `Wait_final, Shrinkc.Edge { partner } -> (
            match take partner (-2) with
            | Some v ->
                sync_value := v;
                sync_done ()
            | None -> ())
        | _ -> ()
      in
      let maybe_sync () =
        if
          !alive && !started && !sync_stage = `Idle
          && Hashtbl.length pending_fetch = 0
          && mesh_complete ()
        then begin
          match Shrinkc.sync_plan ~members:!members ~me:id with
          | Shrinkc.Solo ->
              sync_value := 1;
              sync_done ()
          | Shrinkc.Edge { partner } ->
              sync_stage := `Wait_final;
              send_sync partner (-1) 1;
              advance_sync ()
          | Shrinkc.Core { edge; rounds = _ } as plan ->
              sync_value := 1;
              if edge = None then enter_round plan 0
              else begin
                sync_stage := `Wait_pre;
                advance_sync ()
              end
        end
      in
      let sync_resend p =
        match (!sync_stage, Shrinkc.sync_plan ~members:!members ~me:id) with
        | `Wait_final, Shrinkc.Edge { partner } when partner = p -> send_sync p (-1) 1
        | `Round j, Shrinkc.Core { rounds; _ }
          when j < Array.length rounds && rounds.(j) = p ->
            send_sync p j !sync_value
        | _ -> ()
      in

      (* ---------------- fetch ---------------- *)
      let donor_of r =
        match !last_decision with
        | Some d -> List.assoc_opt r d.Shrinkc.d_donors
        | None -> None
      in
      let request_fetch r =
        match donor_of r with
        | Some donor -> psend donor (Umsg.Fetch { id; rank = r; iter = !restart })
        | None -> ()
      in

      (* ---------------- agreement ---------------- *)
      let raise_revoke () =
        if !started && not !revoked then begin
          revoked := true;
          tracef "revoke" "epoch %d (suspects: %s%s)" !epoch
            (String.concat "," (List.map string_of_int (suspected_now ())))
            (if !torn then "; torn link" else "")
        end;
        broadcast_peers (Umsg.Revoke { id; epoch = !epoch })
      in
      let arm_ballot_timeout () =
        incr ballot_token;
        let tok = !ballot_token in
        ignore
          (Engine.schedule eng ~delay:cfg.Config.ulfm_agree_timeout (fun () ->
               if !alive then Mailbox.send events (E_ballot_timeout tok)))
      in
      let arm_propose delay =
        incr propose_token;
        let tok = !propose_token in
        propose_armed := true;
        ignore
          (Engine.schedule eng ~delay (fun () ->
               if !alive then Mailbox.send events (E_propose tok)))
      in
      let ensure_propose () =
        if !alive && agreement_needed () && !proposing = None && not !propose_armed
        then begin
          let unsusp =
            let sus = suspected_now () in
            List.filter (fun p -> not (List.mem p sus)) !members
          in
          let idx = Option.value ~default:0 (index_of id unsusp) in
          arm_propose (0.05 +. (0.3 *. float_of_int idx))
        end
      in
      let do_abort reason =
        trace "abort" reason;
        dsend (Umsg.Abort { id; reason });
        kill_apps ();
        List.iter Proc.kill !aux_procs;
        alive := false
      in
      let fence () =
        tracef "fenced" "excluded from epoch %d, shutting down" !epoch;
        kill_apps ();
        List.iter Proc.kill !aux_procs;
        alive := false
      in
      let rec ensure_mesh () =
        if !started then
          List.iter
            (fun p ->
              if p < id && not (Hashtbl.mem peer_conns p) then
                match Net.connect env.Uenv.net ~host ~to_host:p ~to_port:Config.daemon_port with
                | Ok conn ->
                    ignore (Net.send conn (Umsg.Peer_hello { id }));
                    register_peer p conn
                | Error `Refused ->
                    (* no listener: that daemon's host process is gone *)
                    Hashtbl.replace suspected_extra p ())
            !members
      and register_peer p conn =
        (match Hashtbl.find_opt peer_conns p with
        | Some old when old != conn -> Net.close old
        | _ -> ());
        Hashtbl.replace peer_conns p conn;
        Hashtbl.replace last_seen p (now ());
        Hashtbl.remove suspected_extra p;
        let pump =
          Cluster.spawn_on cluster ~host ~name:(Printf.sprintf "%s-peer%d" name p)
            (fun () ->
              let rec run () =
                match Net.recv conn with
                | Net.Data m ->
                    Mailbox.send events (E_peer (p, Some m));
                    run ()
                | Net.Closed -> Mailbox.send events (E_peer (p, None))
              in
              run ())
        in
        aux_procs := pump :: !aux_procs;
        sync_resend p;
        Hashtbl.iter (fun r () -> if donor_of r = Some p then request_fetch r) pending_fetch;
        maybe_sync ()
      and install (d : Shrinkc.decision) =
        let ballots_spent = !ballots_used in
        epoch := d.Shrinkc.d_epoch;
        members := d.Shrinkc.d_members;
        assign := d.Shrinkc.d_assign;
        restart := d.Shrinkc.d_restart;
        last_decision := Some d;
        proposing := None;
        incr propose_token;
        propose_armed := false;
        incr ballot_token;
        ballots_used := 0;
        torn := false;
        revoked := false;
        Hashtbl.reset suspected_extra;
        List.iter (fun p -> if p <> id then Hashtbl.replace last_seen p (now ())) !members;
        let stale_keys =
          Hashtbl.fold
            (fun ((e, _, _) as k) _ acc -> if e < !epoch then k :: acc else acc)
            sync_inbox []
        in
        List.iter (Hashtbl.remove sync_inbox) stale_keys;
        kill_apps ();
        buffer := [];
        parked := [];
        apps_spawned := false;
        sync_stage := `Idle;
        sync_value := 0;
        Hashtbl.reset pending_fetch;
        if not (List.mem id !members) then fence ()
        else begin
          tracef "epoch-install" "epoch %d: %d members, restart iteration %d%s" !epoch
            (List.length !members) !restart
            (if d.Shrinkc.d_promoted > 0 then
               Printf.sprintf ", %d spare%s promoted" d.Shrinkc.d_promoted
                 (if d.Shrinkc.d_promoted = 1 then "" else "s")
             else "");
          let report =
            Umsg.Epoch_report
              {
                epoch = !epoch;
                members = !members;
                survivors = Shrinkc.survivors d;
                promoted = d.Shrinkc.d_promoted;
                adopted = d.Shrinkc.d_adopted;
                ballots = ballots_spent;
                restart = !restart;
              }
          in
          last_report := Some report;
          dsend report;
          List.iter
            (fun (r, _) ->
              match List.assoc_opt r !assign with
              | Some dst when dst = id && not (holds_snap r !restart) ->
                  Hashtbl.replace pending_fetch r ()
              | _ -> ())
            d.Shrinkc.d_donors;
          Hashtbl.iter (fun r () -> request_fetch r) pending_fetch;
          let ready_now, later = List.partition (fun (e, _) -> e = !epoch) !future in
          future := List.filter (fun (e, _) -> e > !epoch) later;
          List.iter (fun (_, m) -> deliver m) ready_now;
          ensure_mesh ();
          maybe_sync ()
        end
      in
      let consider (d : Shrinkc.decision) = if d.Shrinkc.d_epoch > !epoch then install d in
      let check_phase2 bs =
        match bs.bs_decision with
        | Some d when List.for_all (fun p -> Hashtbl.mem bs.bs_accepts p) bs.bs_proposed ->
            tracef ~level:Trace.Full "decide" "b%d epoch %d" bs.bs_ballot d.Shrinkc.d_epoch;
            broadcast_peers (Umsg.Decide { decision = d });
            proposing := None;
            install d
        | _ -> ()
      in
      let check_phase1 bs =
        if
          bs.bs_decision = None
          && List.for_all (fun p -> Hashtbl.mem bs.bs_grants p) bs.bs_proposed
        then
          if List.length bs.bs_proposed >= Shrinkc.quorum !members then begin
            let inst = !epoch + 1 in
            let prior =
              Hashtbl.fold
                (fun _ (acc, _) best ->
                  match (acc, best) with
                  | Some (b, d), Some (b', _) when b > b' -> Some (b, d)
                  | Some (b, d), None -> Some (b, d)
                  | _ -> best)
                bs.bs_grants None
            in
            let decision =
              match prior with
              | Some (_, d) -> d
              | None ->
                  let avail =
                    Hashtbl.fold (fun p (_, av) acc -> (p, av) :: acc) bs.bs_grants []
                  in
                  Shrinkc.next ~n_ranks:n ~prev_assign:!assign ~members:bs.bs_proposed
                    ~avail ~epoch:inst
            in
            bs.bs_decision <- Some decision;
            Hashtbl.replace bs.bs_accepts id ();
            Hashtbl.replace promised inst bs.bs_ballot;
            Hashtbl.replace accepted inst (bs.bs_ballot, decision);
            List.iter
              (fun p ->
                if p <> id then
                  psend p (Umsg.Accept { id; ballot = bs.bs_ballot; decision }))
              bs.bs_proposed;
            arm_ballot_timeout ();
            check_phase2 bs
          end
          else begin
            (* a quorum of the superseded epoch is unreachable: we must
               not shrink (split-brain risk); retry after a beat in case
               the partition heals, abort when the ballot budget runs
               out *)
            tracef "quorum-lost" "only %d of %d members reachable (quorum %d)"
              (List.length bs.bs_proposed) (List.length !members)
              (Shrinkc.quorum !members);
            proposing := None;
            arm_propose cfg.Config.ulfm_agree_timeout
          end
      in
      let start_ballot () =
        incr attempt;
        incr ballots_used;
        incr ballots_total;
        if !ballots_used > cfg.Config.ulfm_max_ballots then
          do_abort
            (Printf.sprintf "agreement exhausted after %d ballots at epoch %d"
               cfg.Config.ulfm_max_ballots !epoch)
        else begin
          let sus = suspected_now () in
          let proposed = List.filter (fun p -> not (List.mem p sus)) !members in
          let b = Shrinkc.ballot ~population ~attempt:!attempt ~id in
          let bs =
            {
              bs_ballot = b;
              bs_proposed = proposed;
              bs_grants = Hashtbl.create 8;
              bs_decision = None;
              bs_accepts = Hashtbl.create 8;
            }
          in
          proposing := Some bs;
          tracef ~level:Trace.Full "ballot" "b%d proposing %d of %d members" b
            (List.length proposed) (List.length !members);
          (* self-grant; with a sole survivor this is already phase-1
             complete *)
          let inst = !epoch + 1 in
          Hashtbl.replace promised inst b;
          Hashtbl.replace bs.bs_grants id (Hashtbl.find_opt accepted inst, avail_of_snaps ());
          List.iter
            (fun p -> if p <> id then psend p (Umsg.Prepare { id; ballot = b; epoch = !epoch }))
            proposed;
          arm_ballot_timeout ();
          check_phase1 bs
        end
      in

      (* ---------------- dispatcher link ---------------- *)
      let pump_ctrl conn =
        let pump =
          Cluster.spawn_on cluster ~host ~name:(name ^ "-ctrl") (fun () ->
              let rec run () =
                match Net.recv conn with
                | Net.Data m ->
                    Mailbox.send events (E_ctrl (Some m));
                    run ()
                | Net.Closed -> Mailbox.send events (E_ctrl None)
              in
              run ())
        in
        aux_procs := pump :: !aux_procs
      in
      let ensure_dconn () =
        if !dconn = None then
          match
            Net.connect env.Uenv.net ~host ~to_host:env.Uenv.dispatcher_host
              ~to_port:Config.dispatcher_port
          with
          | Error `Refused -> ()
          | Ok conn ->
              dconn := Some conn;
              pump_ctrl conn;
              ignore (Net.send conn (Umsg.Hello { id; inc = incarnation }));
              if !ready_sent then ignore (Net.send conn (Umsg.Ready { id }));
              Hashtbl.iter (fun r () -> ignore (Net.send conn (Umsg.Rank_done { rank = r }))) done_ranks;
              (match !last_report with Some r -> ignore (Net.send conn r) | None -> ())
      in

      (* ---------------- event handlers ---------------- *)
      let arm_tick () =
        ignore
          (Engine.schedule eng ~delay:cfg.Config.ulfm_heartbeat_period (fun () ->
               if !alive then Mailbox.send events E_tick))
      in
      let handle_tick () =
        if !started then begin
          broadcast_peers (Umsg.Heartbeat { id; epoch = !epoch });
          ensure_mesh ();
          ensure_dconn ();
          if agreement_needed () then begin
            if suspected_now () <> [] || !torn then raise_revoke ();
            ensure_propose ()
          end;
          maybe_sync ()
        end
        else ensure_dconn ();
        arm_tick ()
      in
      let handle_peer_msg p (msg : Umsg.t) =
        Hashtbl.replace last_seen p (now ());
        Hashtbl.remove suspected_extra p;
        (* a peer we no longer consider a member is fenced: tell it *)
        (if !started && not (List.mem p !members) then
           match !last_decision with
           | Some d when not (List.mem p d.Shrinkc.d_members) ->
               psend p (Umsg.Stale { decision = d })
           | _ -> ());
        match msg with
        | Umsg.Peer_hello _ -> ()
        | Umsg.Heartbeat { epoch = he; _ } ->
            if he > !epoch then psend p (Umsg.Probe { id; epoch = !epoch })
        | Umsg.Probe { epoch = pe; _ } -> (
            if pe < !epoch then
              match !last_decision with
              | Some d -> psend p (Umsg.Stale { decision = d })
              | None -> ())
        | Umsg.Revoke { epoch = re; _ } ->
            if re = !epoch then begin
              revoked := true;
              ensure_propose ()
            end
        | Umsg.Prepare { id = from; ballot = b; epoch = pe } ->
            if pe < !epoch then (
              match !last_decision with
              | Some d -> psend p (Umsg.Stale { decision = d })
              | None -> ())
            else begin
              if pe = !epoch then revoked := true;
              let inst = pe + 1 in
              let prom = Option.value ~default:(-1) (Hashtbl.find_opt promised inst) in
              if b >= prom then begin
                Hashtbl.replace promised inst b;
                psend from
                  (Umsg.Grant
                     {
                       id;
                       ballot = b;
                       epoch = pe;
                       accepted = Hashtbl.find_opt accepted inst;
                       avail = avail_of_snaps ();
                     })
              end
              else psend from (Umsg.Reject { id; ballot = b; promised = prom })
            end
        | Umsg.Grant { id = from; ballot = b; _ } -> (
            match !proposing with
            | Some bs when bs.bs_ballot = b && bs.bs_decision = None ->
                Hashtbl.replace bs.bs_grants from
                  ( (match msg with
                    | Umsg.Grant { accepted = a; _ } -> a
                    | _ -> None),
                    match msg with
                    | Umsg.Grant { avail; _ } -> avail
                    | _ -> [] );
                check_phase1 bs
            | _ -> ())
        | Umsg.Reject { ballot = b; promised = prom; _ } -> (
            match !proposing with
            | Some bs when bs.bs_ballot = b ->
                proposing := None;
                attempt := max !attempt (Shrinkc.ballot_attempt ~population prom);
                arm_propose cfg.Config.ulfm_agree_timeout
            | _ -> ())
        | Umsg.Accept { id = from; ballot = b; decision } ->
            let inst = decision.Shrinkc.d_epoch in
            if inst <= !epoch then (
              match !last_decision with
              | Some d -> psend p (Umsg.Stale { decision = d })
              | None -> ())
            else begin
              let prom = Option.value ~default:(-1) (Hashtbl.find_opt promised inst) in
              if b >= prom then begin
                Hashtbl.replace promised inst b;
                Hashtbl.replace accepted inst (b, decision);
                psend from (Umsg.Accepted { id; ballot = b; epoch = inst })
              end
              else psend from (Umsg.Reject { id; ballot = b; promised = prom })
            end
        | Umsg.Accepted { id = from; ballot = b; _ } -> (
            match !proposing with
            | Some bs when bs.bs_ballot = b && bs.bs_decision <> None ->
                Hashtbl.replace bs.bs_accepts from ();
                check_phase2 bs
            | _ -> ())
        | Umsg.Decide { decision } -> consider decision
        | Umsg.Stale { decision } -> consider decision
        | Umsg.Backup { rank; iter; state } -> store_snap rank iter state
        | Umsg.Fetch { id = from; rank; iter } -> (
            match Hashtbl.find_opt snaps rank with
            | Some per_rank when Hashtbl.mem per_rank iter ->
                psend_sized from ~size:env.Uenv.state_bytes
                  (Umsg.Snapshot { rank; iter; state = Hashtbl.find per_rank iter })
            | _ -> psend from (Umsg.Snapshot { rank; iter = -1; state = [||] }))
        | Umsg.Snapshot { rank; iter; state } ->
            if iter >= 0 then begin
              store_snap rank iter state;
              if Hashtbl.mem pending_fetch rank then begin
                Hashtbl.remove pending_fetch rank;
                maybe_sync ()
              end
            end
            else begin
              trace "fetch-failed" (Printf.sprintf "rank %d iteration %d" rank iter);
              torn := true;
              raise_revoke ();
              ensure_propose ()
            end
        | Umsg.Sync { id = from; epoch = e; phase; value } ->
            if e >= !epoch then begin
              Hashtbl.replace sync_inbox (e, from, phase) value;
              advance_sync ()
            end
        | Umsg.App { epoch = e; msg } ->
            if e = !epoch then deliver msg
            else if e > !epoch then future := !future @ [ (e, msg) ]
        | msg -> trace "protocol-error" (Format.asprintf "from peer %d: %a" p Umsg.pp msg)
      in
      let handle_app e req =
        if e = !epoch then
          match req with
          | A_send m -> route_send m
          | A_recv { dst; src; tag; reply } -> serve_recv dst src tag reply
          | A_commit { rank; state } -> (
              store_snap rank state.(0) state;
              match buddy () with
              | Some b when b <> id ->
                  psend_sized b ~size:env.Uenv.state_bytes
                    (Umsg.Backup { rank; iter = state.(0); state })
              | _ -> ())
          | A_finalize { rank } ->
              if not (Hashtbl.mem done_ranks rank) then
                tracef ~level:Trace.Full "rank-done" "rank %d (epoch %d)" rank !epoch;
              Hashtbl.replace done_ranks rank ();
              dsend (Umsg.Rank_done { rank })
      in

      (* ---------------- FCI wiring ---------------- *)
      let vars = Fci.Control.make_vars () in
      let base_target =
        {
          Fci.Control.target_name = Printf.sprintf "udaemon%d@%d" id host;
          proc = self;
          kill =
            (fun () ->
              Hashtbl.iter (fun _ p -> Proc.kill p) app_procs;
              List.iter Proc.kill !aux_procs;
              Proc.kill self);
          freeze =
            (fun () ->
              Hashtbl.iter (fun _ p -> Proc.freeze p) app_procs;
              List.iter Proc.freeze !aux_procs;
              Proc.freeze self);
          unfreeze =
            (fun () ->
              Hashtbl.iter (fun _ p -> Proc.unfreeze p) app_procs;
              List.iter Proc.unfreeze !aux_procs;
              Proc.unfreeze self);
          read_var = (fun _ -> None);
          write_var = (fun _ _ -> false);
          subscribe_var = (fun _ -> ());
        }
      in
      let target = Fci.Control.with_vars base_target vars in
      (match env.Uenv.fci with
      | Some rt -> Fci.Runtime.register rt ~machine:host target
      | None -> ());
      tracef ~level:Trace.Full "daemon-start" "host %d incarnation %d" host incarnation;
      Proc.sleep
        (cfg.Config.init_delay_min
        +. Rng.float env.Uenv.rng (cfg.Config.init_delay_max -. cfg.Config.init_delay_min));
      ensure_dconn ();
      Proc.sleep cfg.Config.handshake_delay;
      (match env.Uenv.fci with
      | Some rt -> Fci.Runtime.breakpoint rt ~machine:host `Before "localMPI_setCommand"
      | None -> ());
      let listener = Net.listen env.Uenv.net ~host ~port:Config.daemon_port in
      Fun.protect ~finally:(fun () -> Net.close_listener listener) @@ fun () ->
      let acceptor =
        Cluster.spawn_on cluster ~host ~name:(name ^ "-accept") (fun () ->
            let rec accept_loop () =
              match Net.accept listener with
              | None -> ()
              | Some conn ->
                  (match Net.recv conn with
                  | Net.Data (Umsg.Peer_hello { id = p }) ->
                      Mailbox.send events (E_peer_joined (p, conn))
                  | Net.Data _ | Net.Closed -> Net.close conn);
                  accept_loop ()
            in
            accept_loop ())
      in
      aux_procs := acceptor :: !aux_procs;
      ready_sent := true;
      dsend (Umsg.Ready { id });
      arm_tick ();
      let rec loop () =
        if !alive then begin
          (match Mailbox.recv events with
          | E_ctrl None -> dconn := None
          | E_ctrl (Some (Umsg.Start { ids })) ->
              if not !started then begin
                started := true;
                members := List.sort_uniq Int.compare ids;
                assign := List.init n (fun r -> (r, r));
                List.iter
                  (fun p -> if p <> id then Hashtbl.replace last_seen p (now ()))
                  !members;
                trace ~level:Trace.Full "start" "";
                ensure_mesh ();
                maybe_sync ()
              end
          | E_ctrl (Some Umsg.Shutdown) ->
              kill_apps ();
              List.iter Proc.kill !aux_procs;
              alive := false;
              trace ~level:Trace.Full "daemon-exit" "shutdown"
          | E_ctrl (Some msg) ->
              trace "protocol-error" (Format.asprintf "from dispatcher: %a" Umsg.pp msg)
          | E_peer_joined (p, conn) -> register_peer p conn
          | E_peer (p, Some msg) -> handle_peer_msg p msg
          | E_peer (p, None) ->
              (match Hashtbl.find_opt peer_conns p with
              | Some _ ->
                  Hashtbl.remove peer_conns p;
                  if !started && List.mem p !members then begin
                    tracef ~level:Trace.Full "peer-lost" "daemon %d" p;
                    torn := true;
                    raise_revoke ();
                    ensure_propose ()
                  end
              | None -> ())
          | E_tick -> handle_tick ()
          | E_propose tok ->
              propose_armed := false;
              if tok = !propose_token && agreement_needed () && !proposing = None then
                start_ballot ()
          | E_ballot_timeout tok ->
              if tok = !ballot_token then (
                match !proposing with
                | Some bs ->
                    let heard p =
                      if bs.bs_decision = None then Hashtbl.mem bs.bs_grants p
                      else Hashtbl.mem bs.bs_accepts p
                    in
                    List.iter
                      (fun p ->
                        if p <> id && not (heard p) then Hashtbl.replace suspected_extra p ())
                      bs.bs_proposed;
                    tracef ~level:Trace.Full "ballot-timeout" "b%d" bs.bs_ballot;
                    proposing := None;
                    ensure_propose ()
                | None -> ())
          | E_app (e, req) -> handle_app e req);
          loop ()
        end
      in
      loop ())
