open Simkern
open Simos

type t = {
  eng : Engine.t;
  cluster : Cluster.t;
  net : Umsg.t Simnet.Net.t;
  fci : Fci.Runtime.t option;
  cfg : Mpivcl.Config.t;
  app : Mpivcl.App.t;
  state_bytes : int;
  dispatcher_host : int;
  population : int;  (** computing daemons plus warm spares *)
  rng : Rng.t;
}
