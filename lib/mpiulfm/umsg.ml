(* Everything that travels between ulfm daemons and their dispatcher.
   One wire type for both planes, like [Mpirep.Rmsg]: the simulated
   network is typed per overlay, and the control/peer split is by
   connection, not by message type. *)

type t =
  (* daemon <-> dispatcher *)
  | Hello of { id : int; inc : int }
  | Ready of { id : int }
  | Start of { ids : int list }
  | Shutdown
  | Rank_done of { rank : int }
  | Epoch_report of {
      epoch : int;
      members : int list;
      survivors : int;
      promoted : int;
      adopted : int;
      ballots : int;
      restart : int;
    }
  | Abort of { id : int; reason : string }
  (* daemon <-> daemon: liveness *)
  | Peer_hello of { id : int }
  | Heartbeat of { id : int; epoch : int }
  | Probe of { id : int; epoch : int }
  | Revoke of { id : int; epoch : int }
  (* daemon <-> daemon: survivor agreement *)
  | Prepare of { id : int; ballot : int; epoch : int }
  | Grant of {
      id : int;
      ballot : int;
      epoch : int;
      accepted : (int * Shrinkc.decision) option;
      avail : (int * int list) list;
    }
  | Reject of { id : int; ballot : int; promised : int }
  | Accept of { id : int; ballot : int; decision : Shrinkc.decision }
  | Accepted of { id : int; ballot : int; epoch : int }
  | Decide of { decision : Shrinkc.decision }
  | Stale of { decision : Shrinkc.decision }
  (* daemon <-> daemon: snapshots and the sync collective *)
  | Backup of { rank : int; iter : int; state : int array }
  | Fetch of { id : int; rank : int; iter : int }
  | Snapshot of { rank : int; iter : int; state : int array }
  | Sync of { id : int; epoch : int; phase : int; value : int }
  (* daemon <-> daemon: epoch-fenced application traffic *)
  | App of { epoch : int; msg : Mpivcl.Message.app_msg }

let pp ppf = function
  | Hello { id; inc } -> Format.fprintf ppf "Hello(%d, inc %d)" id inc
  | Ready { id } -> Format.fprintf ppf "Ready(%d)" id
  | Start { ids } -> Format.fprintf ppf "Start(%d daemons)" (List.length ids)
  | Shutdown -> Format.pp_print_string ppf "Shutdown"
  | Rank_done { rank } -> Format.fprintf ppf "Rank_done(%d)" rank
  | Epoch_report { epoch; members; restart; _ } ->
      Format.fprintf ppf "Epoch_report(e%d, %d members, restart %d)" epoch
        (List.length members) restart
  | Abort { id; reason } -> Format.fprintf ppf "Abort(%d, %s)" id reason
  | Peer_hello { id } -> Format.fprintf ppf "Peer_hello(%d)" id
  | Heartbeat { id; epoch } -> Format.fprintf ppf "Heartbeat(%d, e%d)" id epoch
  | Probe { id; epoch } -> Format.fprintf ppf "Probe(%d, e%d)" id epoch
  | Revoke { id; epoch } -> Format.fprintf ppf "Revoke(%d, e%d)" id epoch
  | Prepare { id; ballot; epoch } ->
      Format.fprintf ppf "Prepare(%d, b%d, e%d)" id ballot epoch
  | Grant { id; ballot; epoch; _ } ->
      Format.fprintf ppf "Grant(%d, b%d, e%d)" id ballot epoch
  | Reject { id; ballot; promised } ->
      Format.fprintf ppf "Reject(%d, b%d, promised b%d)" id ballot promised
  | Accept { id; ballot; decision } ->
      Format.fprintf ppf "Accept(%d, b%d, e%d)" id ballot decision.Shrinkc.d_epoch
  | Accepted { id; ballot; epoch } ->
      Format.fprintf ppf "Accepted(%d, b%d, e%d)" id ballot epoch
  | Decide { decision } ->
      Format.fprintf ppf "Decide(e%d, %d members)" decision.Shrinkc.d_epoch
        (List.length decision.Shrinkc.d_members)
  | Stale { decision } -> Format.fprintf ppf "Stale(e%d)" decision.Shrinkc.d_epoch
  | Backup { rank; iter; _ } -> Format.fprintf ppf "Backup(rank %d, iter %d)" rank iter
  | Fetch { id; rank; iter } -> Format.fprintf ppf "Fetch(%d, rank %d, iter %d)" id rank iter
  | Snapshot { rank; iter; _ } ->
      Format.fprintf ppf "Snapshot(rank %d, iter %d)" rank iter
  | Sync { id; epoch; phase; value } ->
      Format.fprintf ppf "Sync(%d, e%d, phase %d, value %d)" id epoch phase value
  | App { epoch; msg } ->
      Format.fprintf ppf "App(e%d, %d->%d tag %d)" epoch msg.Mpivcl.Message.src
        msg.Mpivcl.Message.dst msg.Mpivcl.Message.tag
