(** Pure shrink calculus: everything about a communicator shrink that can
    be computed without touching the network.

    Keeping ballot arithmetic, survivor assignment and the collective
    schedule in one side-effect-free module makes shrink determinism
    testable directly: the same survivor set must map to byte-identical
    decisions at any [--jobs], because nothing here reads a clock or an
    RNG. *)

(** {1 Ballots}

    Agreement ballots are globally unique and totally ordered:
    [attempt * population + id] for [attempt >= 1], so two candidates can
    never tie and a rejected candidate can jump past the ballot that beat
    it. *)

val ballot : population:int -> attempt:int -> id:int -> int
val ballot_attempt : population:int -> int -> int

(** Majority of the epoch being superseded: any two shrink quorums for
    the same epoch intersect, which is what makes a partitioned minority
    unable to install a second, conflicting survivor set. *)
val quorum : 'a list -> int

(** {1 Decisions} *)

(** The agreed value of one shrink: the next epoch's dense communicator.
    [d_assign] maps every logical rank to the member daemon that hosts it
    after the shrink; [d_restart] is the uniform iteration all ranks
    restart from (0 = initial state); [d_donors] lists the ranks whose new
    host must fetch the restart snapshot, with the member that serves
    it. *)
type decision = {
  d_epoch : int;
  d_members : int list;
  d_assign : (int * int) list;
  d_restart : int;
  d_donors : (int * int) list;
  d_promoted : int;
  d_adopted : int;
}

(** Distinct daemons hosting at least one rank after the shrink. *)
val survivors : decision -> int

(** [next ~n_ranks ~prev_assign ~members ~avail ~epoch] computes the
    epoch-[epoch] decision for survivor set [members]. Ranks whose
    previous host survived stay put; orphaned ranks go to idle spares
    first (promotion, in rank order) and are then adopted round-robin by
    the surviving members. [avail] lists, per member, the snapshot
    iterations it holds per rank; the restart iteration is the highest
    one available for {e every} rank (0, the initial state, is always
    available). Pure and deterministic in all arguments. *)
val next :
  n_ranks:int ->
  prev_assign:(int * int) list ->
  members:int list ->
  avail:(int * (int * int list) list) list ->
  epoch:int ->
  decision

(** {1 Recursive-doubling schedule}

    The post-shrink synchronisation collective is a recursive-doubling
    allreduce over the (possibly non-power-of-two) member list: the
    excess members fold their contribution into a partner and drop out,
    the surviving power-of-two core exchanges partial sums in
    [log2] rounds, and the folded members get the result back. *)
type sync_plan =
  | Solo  (** single member: nothing to exchange *)
  | Edge of { partner : int }
      (** pre-fold contributor: send the contribution to [partner], then
          wait for the final sum from it *)
  | Core of { edge : int option; rounds : int array }
      (** core participant: absorb [edge]'s contribution if any, exchange
          partials with [rounds.(j)] in round [j], then return the sum to
          [edge] *)

val sync_plan : members:int list -> me:int -> sync_plan
