let ballot ~population ~attempt ~id = (attempt * population) + id
let ballot_attempt ~population b = b / population
let quorum members = (List.length members / 2) + 1

type decision = {
  d_epoch : int;
  d_members : int list;
  d_assign : (int * int) list;
  d_restart : int;
  d_donors : (int * int) list;
  d_promoted : int;
  d_adopted : int;
}

let survivors d =
  List.sort_uniq Int.compare (List.map snd d.d_assign) |> List.length

let holds avail ~member ~rank ~iter =
  match List.assoc_opt member avail with
  | None -> false
  | Some per_rank -> (
      match List.assoc_opt rank per_rank with
      | None -> false
      | Some iters -> List.mem iter iters)

let next ~n_ranks ~prev_assign ~members ~avail ~epoch =
  let members = List.sort_uniq Int.compare members in
  let kept =
    List.filter (fun (r, d) -> r < n_ranks && List.mem d members) prev_assign
  in
  let orphans =
    List.init n_ranks Fun.id
    |> List.filter (fun r -> not (List.mem_assoc r kept))
  in
  let loaded = List.map snd kept in
  let spares = List.filter (fun d -> not (List.mem d loaded)) members in
  let rec promote acc orphans spares =
    match (orphans, spares) with
    | r :: orphans, d :: spares -> promote ((r, d) :: acc) orphans spares
    | orphans, _ -> (List.rev acc, orphans)
  in
  let promoted, leftovers = promote [] orphans spares in
  let k = List.length members in
  let member_at i = List.nth members (i mod k) in
  let adopted = List.mapi (fun i r -> (r, member_at i)) leftovers in
  let assign =
    List.sort
      (fun (a, _) (b, _) -> Int.compare a b)
      (kept @ promoted @ adopted)
  in
  (* Restart at the highest iteration available for every rank; 0 (the
     initial state) needs no snapshot and is always constructible. *)
  let candidates =
    List.concat_map
      (fun (_, per_rank) -> List.concat_map snd per_rank)
      avail
    |> List.sort_uniq (fun a b -> Int.compare b a)
  in
  let available_everywhere iter =
    List.for_all
      (fun r -> List.exists (fun m -> holds avail ~member:m ~rank:r ~iter) members)
      (List.init n_ranks Fun.id)
  in
  let restart =
    match List.find_opt available_everywhere candidates with
    | Some iter -> iter
    | None -> 0
  in
  let donors =
    if restart = 0 then []
    else
      List.filter_map
        (fun (r, d) ->
          if holds avail ~member:d ~rank:r ~iter:restart then None
          else
            List.find_opt
              (fun m -> holds avail ~member:m ~rank:r ~iter:restart)
              members
            |> Option.map (fun donor -> (r, donor)))
        assign
  in
  {
    d_epoch = epoch;
    d_members = members;
    d_assign = assign;
    d_restart = restart;
    d_donors = donors;
    d_promoted = List.length promoted;
    d_adopted = List.length adopted;
  }

type sync_plan =
  | Solo
  | Edge of { partner : int }
  | Core of { edge : int option; rounds : int array }

let sync_plan ~members ~me =
  let members = Array.of_list (List.sort_uniq Int.compare members) in
  let k = Array.length members in
  if k <= 1 then Solo
  else begin
    let log2p = ref 0 in
    while 1 lsl (!log2p + 1) <= k do
      incr log2p
    done;
    let p = 1 lsl !log2p in
    let r = k - p in
    let i =
      let found = ref (-1) in
      Array.iteri (fun j m -> if m = me then found := j) members;
      if !found < 0 then invalid_arg "Shrinkc.sync_plan: not a member";
      !found
    in
    (* Core index <-> member index: the first 2r members fold pairwise
       (odd member indices drop out), the rest map straight across. *)
    let member_of_core c = if c < r then 2 * c else c + r in
    if i < 2 * r && i mod 2 = 1 then Edge { partner = members.(i - 1) }
    else begin
      let ci = if i < 2 * r then i / 2 else i - r in
      let edge = if i < 2 * r then Some members.(i + 1) else None in
      let rounds =
        Array.init !log2p (fun j -> members.(member_of_core (ci lxor (1 lsl j))))
      in
      Core { edge; rounds }
    end
  end
