open Simkern
open Simos
module Net = Simnet.Net
module Config = Mpivcl.Config

(* The ulfm dispatcher is deliberately thin: it launches the daemon
   population, fires the start gun once everyone is ready, and collects
   per-rank completions and per-epoch shrink reports. Unlike the
   rollback dispatchers it never relaunches anything after the start —
   shrink-and-continue means failed daemons stay failed and the
   survivors cope. The run completes when every logical rank finalized
   somewhere, and aborts only when the whole population is gone (each
   daemon's own abort reason, if any, is kept for the verdict). *)

type outcome = Completed of float | Aborted of string

type ev =
  | E_hello of int * int * Umsg.t Net.conn
  | E_msg of int * int * Umsg.t
  | E_closed of int * int
  | E_spawn_died of int * int

type t = {
  env : Uenv.t;
  host : int;
  result : outcome Ivar.t;
  mutable latest_epoch : int;
  mutable survivors_latest : int;
  mutable ballots_sum : int;
  mutable promoted_sum : int;
  mutable adopted_sum : int;
  mutable abort_reason : string option;
  mutable divergent : bool;
}

let trace ?level t event detail =
  Engine.record ?level t.env.Uenv.eng ~source:"udispatcher" ~event detail

let tracef ?level t event fmt =
  Engine.record_fmt ?level t.env.Uenv.eng ~source:"udispatcher" ~event fmt

let spawn (env : Uenv.t) ~host =
  let eng = env.Uenv.eng in
  let cluster = env.Uenv.cluster in
  let cfg = env.Uenv.cfg in
  let n = cfg.Config.n_ranks in
  let population = env.Uenv.population in
  let t =
    {
      env;
      host;
      result = Ivar.create ();
      latest_epoch = 0;
      survivors_latest = 0;
      ballots_sum = 0;
      promoted_sum = 0;
      adopted_sum = 0;
      abort_reason = None;
      divergent = false;
    }
  in
  let events : ev Mailbox.t = Mailbox.create () in
  let conns : Umsg.t Net.conn option array = Array.make population None in
  let incs = Array.make population 0 in
  let ready = Array.make population false in
  let dead = Array.make population false in
  let rank_done = Array.make n false in
  let reported_epochs : (int, int list * int) Hashtbl.t = Hashtbl.create 8 in
  let started = ref false in
  let finished = ref false in
  let launch ~id =
    incs.(id) <- incs.(id) + 1;
    let inc = incs.(id) in
    tracef ~level:Trace.Full t "launch" "daemon %d on host %d (inc %d)" id id inc;
    ignore
      (Cluster.spawn_on cluster ~host ~name:(Printf.sprintf "ssh-udaemon%d" id)
         (fun () ->
           if inc > 0 then Proc.sleep cfg.Config.relaunch_delay;
           Proc.sleep cfg.Config.ssh_delay;
           let daemon = Udaemon.spawn env ~id ~incarnation:inc in
           Proc.on_exit daemon (fun _ -> Mailbox.send events (E_spawn_died (id, inc)))))
  in
  let broadcast msg =
    Array.iter (function Some conn -> ignore (Net.send conn msg) | None -> ()) conns
  in
  let maybe_start () =
    if (not !started) && Array.for_all Fun.id ready then begin
      started := true;
      let ids = List.init population Fun.id in
      broadcast (Umsg.Start { ids });
      tracef t "app-started" "%d daemons (%d ranks, %d spares)" population n (population - n)
    end
  in
  let maybe_aborted () =
    if !started && (not !finished) && Array.for_all Fun.id dead then begin
      finished := true;
      let reason = Option.value ~default:"all daemons lost" t.abort_reason in
      trace t "app-aborted" reason;
      Ivar.fill t.result (Aborted reason)
    end
  in
  let handle_rank_done rank =
    if rank >= 0 && rank < n && not rank_done.(rank) then begin
      rank_done.(rank) <- true;
      tracef ~level:Trace.Full t "rank-finished" "rank %d" rank;
      if (not !finished) && Array.for_all Fun.id rank_done then begin
        finished := true;
        broadcast Umsg.Shutdown;
        trace t "app-completed" "";
        Ivar.fill t.result (Completed (Engine.now eng))
      end
    end
  in
  let handle_report ~epoch ~survivors ~promoted ~adopted ~ballots ~restart ~members =
    (* Every surviving member reports each installed epoch. The first
       report's tallies win; every later report must carry the same
       membership and restart point — a mismatch means two sides decided
       the same epoch differently (split-brain), which the agreement is
       supposed to make impossible, so it flags the run as buggy. *)
    match Hashtbl.find_opt reported_epochs epoch with
    | Some (members0, restart0) ->
        if members0 <> members || restart0 <> restart then begin
          t.divergent <- true;
          tracef t "split-brain" "epoch %d decided twice: [%s]@%d vs [%s]@%d" epoch
            (String.concat "," (List.map string_of_int members0))
            restart0
            (String.concat "," (List.map string_of_int members))
            restart
        end
    | None ->
        Hashtbl.replace reported_epochs epoch (members, restart);
        t.ballots_sum <- t.ballots_sum + ballots;
        t.promoted_sum <- t.promoted_sum + promoted;
        t.adopted_sum <- t.adopted_sum + adopted;
        if epoch > t.latest_epoch then begin
          t.latest_epoch <- epoch;
          t.survivors_latest <- survivors
        end;
        tracef t "shrink" "epoch %d: %d members, %d survivors, restart iteration %d" epoch
          (List.length members) survivors restart
  in
  let handle_event = function
    | E_hello (id, inc, conn) ->
        if inc = incs.(id) && not !finished then begin
          (match conns.(id) with Some old when old != conn -> Net.close old | _ -> ());
          conns.(id) <- Some conn;
          tracef ~level:Trace.Full t "daemon-registered" "daemon %d inc %d" id inc;
          (* a reconnecting daemon missed the start gun *)
          if !started then ignore (Net.send conn (Umsg.Start { ids = List.init population Fun.id }))
        end
        else Net.close conn
    | E_msg (id, inc, msg) ->
        if inc = incs.(id) && not !finished then begin
          match msg with
          | Umsg.Ready _ ->
              ready.(id) <- true;
              maybe_start ()
          | Umsg.Rank_done { rank } -> handle_rank_done rank
          | Umsg.Epoch_report { epoch; members; survivors; promoted; adopted; ballots; restart }
            ->
              handle_report ~epoch ~survivors ~promoted ~adopted ~ballots ~restart ~members
          | Umsg.Abort { id = from; reason } ->
              tracef t "daemon-abort" "daemon %d: %s" from reason;
              if t.abort_reason = None then t.abort_reason <- Some reason
          | msg ->
              trace t "protocol-error" (Format.asprintf "from daemon %d: %a" id Umsg.pp msg)
        end
    | E_closed (id, inc) ->
        if inc = incs.(id) && not !finished then begin
          conns.(id) <- None;
          if not !started then begin
            (* start-up failure: plain retry, the shrink machinery only
               guards the computation *)
            ready.(id) <- false;
            tracef ~level:Trace.Full t "spawn-retry" "daemon %d lost before start" id;
            launch ~id
          end
        end
    | E_spawn_died (id, inc) ->
        if inc = incs.(id) && not !finished then
          if !started then begin
            dead.(id) <- true;
            tracef ~level:Trace.Full t "daemon-dead" "daemon %d" id;
            maybe_aborted ()
          end
          else begin
            ready.(id) <- false;
            launch ~id
          end
  in
  ignore
    (Cluster.spawn_on cluster ~host ~name:"udispatcher" (fun () ->
         let listener = Net.listen env.Uenv.net ~host ~port:Config.dispatcher_port in
         Fun.protect ~finally:(fun () -> Net.close_listener listener) @@ fun () ->
         ignore
           (Cluster.spawn_on cluster ~host ~name:"udispatcher-accept" (fun () ->
                let rec accept_loop () =
                  match Net.accept listener with
                  | None -> ()
                  | Some conn ->
                      ignore
                        (Cluster.spawn_on cluster ~host ~name:"udispatcher-conn" (fun () ->
                             match Net.recv conn with
                             | Net.Data (Umsg.Hello { id; inc }) when id >= 0 && id < population
                               ->
                                 Mailbox.send events (E_hello (id, inc, conn));
                                 let rec pump_loop () =
                                   match Net.recv conn with
                                   | Net.Data msg ->
                                       Mailbox.send events (E_msg (id, inc, msg));
                                       pump_loop ()
                                   | Net.Closed -> Mailbox.send events (E_closed (id, inc))
                                 in
                                 pump_loop ()
                             | Net.Data _ | Net.Closed -> Net.close conn));
                      accept_loop ()
                in
                accept_loop ()));
         for id = 0 to population - 1 do
           launch ~id
         done;
         let rec main_loop () =
           handle_event (Mailbox.recv events);
           main_loop ()
         in
         main_loop ()));
  t

let outcome t = Ivar.read t.result
let peek_outcome t = Ivar.peek t.result
let shrinks t = t.latest_epoch
let survivors t = if t.latest_epoch >= 1 then Some t.survivors_latest else None
let ballots t = t.ballots_sum
let promoted t = t.promoted_sum
let adopted t = t.adopted_sum
let abort_reason t = t.abort_reason
let divergent t = t.divergent
let halt t = Cluster.kill_all t.env.Uenv.cluster ~host:t.host
