(** Launch-and-observe layer of the ulfm backend.

    Thin by design: it launches the daemon population (computing daemons
    plus warm spares), fires the start gun once everyone is ready, and
    then only {e observes} — per-rank completions ([Rank_done], deduped
    across re-executions and adopted ranks) and per-epoch shrink reports
    ([Epoch_report], first reporter's tallies win; later reports are
    cross-checked against the first and any mismatch flags the run
    {!divergent}). After the start nothing is ever relaunched:
    shrink-and-continue means the surviving daemons absorb every
    failure themselves. The run aborts only when the entire population
    is dead, carrying the first daemon-reported abort reason (ballot
    budget exhausted, typically under an unhealed partition) if any.

    Trace events: [launch], [daemon-registered], [app-started],
    [shrink], [daemon-abort], [daemon-dead], [rank-finished],
    [app-completed], [app-aborted], [spawn-retry]. *)

type outcome = Completed of float | Aborted of string

type t

val spawn : Uenv.t -> host:int -> t

(** Blocks until every rank finalized or the population died out. *)
val outcome : t -> outcome

val peek_outcome : t -> outcome option

(** Highest epoch installed by any agreement (0 = never shrunk). *)
val shrinks : t -> int

(** Distinct daemons hosting ranks in the latest epoch, or [None] if the
    communicator never shrank — the degraded-verdict signal. *)
val survivors : t -> int option

(** Agreement ballots spent, summed over epochs (first reporter's count). *)
val ballots : t -> int

(** Warm spares promoted to computing members, summed over epochs. *)
val promoted : t -> int

(** Orphaned ranks adopted by surviving members, summed over epochs. *)
val adopted : t -> int

val abort_reason : t -> string option

(** Two daemons reported the same epoch with different memberships or
    restart points — a split-brain the agreement must make impossible.
    Surfaced as [frozen] (§5 buggy) by the backend. *)
val divergent : t -> bool

val halt : t -> unit
