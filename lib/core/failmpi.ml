module Lang = struct
  module Ast = Fail_lang.Ast
  module Parser = Fail_lang.Parser
  module Pp = Fail_lang.Pp
  module Sema = Fail_lang.Sema
  module Automaton = Fail_lang.Automaton
  module Compile = Fail_lang.Compile
  module Codegen = Fail_lang.Codegen
  module Paper_scenarios = Fail_lang.Paper_scenarios
  module Tool_comparison = Fail_lang.Tool_comparison
end

module Inject = struct
  module Control = Fci.Control
  module Runtime = Fci.Runtime
end

module Mpi = struct
  module Config = Mpivcl.Config
  module App = Mpivcl.App
end

module Backend = Backend

module Run = struct
  open Simkern

  type spec = {
    scenario : string option;
    params : (string * int) list;
    app : Mpivcl.App.t;
    state_bytes : int;
    n_compute : int;
    cfg : Mpivcl.Config.t;
    fci_config : Fci.Runtime.config;
    seed : int64;
    timeout : float;
    trace_level : Trace.level;
    regions : int option;
        (* Event-region count for the engine; [None] picks
           [Engine.recommended_regions] from the cluster size. Purely a
           scheduling-structure knob: results are identical for any
           value. *)
  }

  let default_spec ~app ~cfg ~n_compute ~state_bytes =
    {
      scenario = None;
      params = [];
      app;
      state_bytes;
      n_compute;
      cfg;
      fci_config = Fci.Runtime.default_config;
      seed = 1L;
      timeout = 1500.0;
      trace_level = Trace.Full;
      regions = None;
    }

  type outcome =
    | Completed of float
    | Degraded of { at : float; survivors : int }
    | Aborted of string
    | Ckpt_lost
    | Non_terminating
    | Buggy
    | Net_hung

  type result = {
    outcome : outcome;
    injected_faults : int;
    metrics : Backend.Metrics.t;
    checksums : (int * int) list;
    checksum_ok : bool option;
    trace : Trace.t;
  }

  let metrics r = r.metrics
  let recoveries r = r.metrics.Backend.Metrics.recoveries
  let committed_waves r = r.metrics.Backend.Metrics.committed_waves
  let confused r = r.metrics.Backend.Metrics.confused
  let failovers r = r.metrics.Backend.Metrics.failovers
  let respawns r = r.metrics.Backend.Metrics.respawns

  let outcome_name = function
    | Completed _ -> "completed"
    | Degraded _ -> "degraded"
    | Aborted _ -> "aborted"
    | Ckpt_lost -> "ckpt-lost"
    | Non_terminating -> "non-terminating"
    | Buggy -> "buggy"
    | Net_hung -> "net-hung"

  let trace_events r = Trace.events r.trace

  (* A prepared-but-not-yet-run experiment. [prepare] performs the whole
     launch (engine, scenario compilation, backend deployment, watchdog);
     [resume_from] runs the engine to its terminal stop and classifies —
     so [execute] is exactly [prepare |> resume_from], and the explorer
     can interpose [advance ~stop_before] pauses and [step]s between the
     two without perturbing anything the classifier sees. *)
  type checkpoint = {
    cp_spec : spec;
    cp_eng : Simkern.Engine.t;
    cp_fci : Fci.Runtime.t option;
    cp_classify : [ `Quiescent | `Halted | `Deadline | `Breakpoint ] -> result;
    mutable cp_stopped : [ `Quiescent | `Halted | `Deadline | `Breakpoint ] option;
    mutable cp_result : result option;
  }

  let prepare ?expected_checksum spec =
    let n_ranks = spec.cfg.Mpivcl.Config.n_ranks in
    if n_ranks <= 0 then
      invalid_arg
        (Printf.sprintf "Run.execute: cfg.n_ranks must be positive (got %d)" n_ranks);
    if spec.n_compute < n_ranks then
      invalid_arg
        (Printf.sprintf
           "Run.execute: n_compute (%d) cannot seat %d ranks — need at least one \
            compute host per rank"
           spec.n_compute n_ranks);
    let regions =
      match spec.regions with
      (* Layouts add a handful of service hosts (coordinator, dispatcher,
         scheduler, checkpoint servers) on top of the compute pool. *)
      | None -> Engine.recommended_regions ~hosts:(spec.n_compute + 6)
      | Some r ->
          if r < 1 then
            invalid_arg
              (Printf.sprintf "Run.execute: regions must be >= 1 (got %d)" r);
          r
    in
    let eng =
      Engine.create ~seed:spec.seed ~trace_level:spec.trace_level ~regions ()
    in
    let fci =
      match spec.scenario with
      | None -> None
      | Some source -> (
          match Fail_lang.Compile.compile_source ~params:spec.params source with
          | Ok plan -> Some (Fci.Runtime.create eng ~config:spec.fci_config plan)
          | Error msg -> invalid_arg (Printf.sprintf "Run.execute: scenario error: %s" msg))
    in
    (* Capture each rank's final checksum after its last re-execution. *)
    let finals : (int, int) Hashtbl.t = Hashtbl.create 64 in
    let app =
      {
        spec.app with
        Mpivcl.App.main =
          (fun ctx ->
            spec.app.Mpivcl.App.main ctx;
            Hashtbl.replace finals ctx.Mpivcl.App.rank ctx.Mpivcl.App.state.(2));
      }
    in
    (* One protocol-agnostic path: the backend registered for
       [cfg.protocol] deploys the runtime; a single watchdog stops the
       clock as soon as the application completes; otherwise the engine
       runs to quiescence (a freeze drains the event queue) or to the
       experiment timeout, after which every component is killed and the
       run is classified exactly as the paper's §5 does — a frozen run
       (quiescent event queue, corrupted dispatcher, or exhausted
       replication) is a bug; a run still making failure / recovery
       noise at the timeout is non-terminating. *)
    let (module B : Backend.S) = Backend.of_config spec.cfg in
    let handle =
      B.launch eng ?fci ~cfg:spec.cfg ~app ~state_bytes:spec.state_bytes
        ~n_compute:spec.n_compute ()
    in
    ignore
      (Proc.spawn eng ~name:"experiment-watchdog" (fun () ->
           B.await handle;
           Engine.halt eng));
    let classify stop_reason =
      let completed = B.peek_completed handle in
    let frozen = B.frozen handle in
    let metrics = B.metrics handle in
    let survivors = B.survivors handle in
    let aborted = B.aborted handle in
    let ckpt_lost = B.ckpt_lost handle in
    B.teardown handle;
    (match fci with Some rt -> Fci.Runtime.shutdown rt | None -> ());
    Engine.halt eng;
    (* Distinguish a wedge the network explains from a protocol bug: a run
       that neither completed nor kept making progress, while the fabric
       was actively losing messages or tearing connections down, is
       [Net_hung] — a latency-only degradation cannot mask a genuine
       [Buggy] verdict because it drops nothing. *)
    let net_interference =
      let count name =
        match List.assoc_opt name metrics.Backend.Metrics.extra with
        | Some n -> n
        | None -> 0
      in
      count "net_dropped" + count "net_conn_timeouts" > 0
    in
    (* A run that finished on a shrunken communicator is never [Ok]-plain:
       the answer may be right, but the machine is smaller — report
       [Degraded n] so harnesses keep answer quality and capacity loss
       apart. A backend-reported clean abort (e.g. survivor agreement
       refusing to decide without a quorum) beats the frozen/quiescent
       heuristics: giving up loudly is a protocol outcome, not a wedge. *)
    let outcome =
      match completed with
      | Some t -> (
          match survivors with
          | Some n -> Degraded { at = t; survivors = n }
          | None -> Completed t)
      | None ->
          (* A lost checkpoint beats every other classification: the
             dispatcher also records it as a clean abort, but the verdict
             must stay distinguishable — it indicts the storage plane's
             replication degree, not the recovery protocol. *)
          if ckpt_lost then Ckpt_lost
          else (
            match aborted with
            | Some reason -> Aborted reason
            | None ->
                if frozen || stop_reason = `Quiescent then
                  if net_interference then Net_hung else Buggy
                else Non_terminating)
    in
    let checksums =
      Hashtbl.fold (fun rank v acc -> (rank, v) :: acc) finals []
      |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
    in
    let checksum_ok =
      match (completed, expected_checksum) with
      | Some _, Some expected ->
          Some
            (List.length checksums = spec.cfg.Mpivcl.Config.n_ranks
            && List.for_all (fun (_, v) -> v = expected) checksums)
      | _ -> None
    in
    {
      outcome;
      injected_faults =
        (match fci with Some rt -> Fci.Runtime.injected_faults rt | None -> 0);
      metrics;
      checksums;
      checksum_ok;
      trace = Engine.trace eng;
    }
    in
    {
      cp_spec = spec;
      cp_eng = eng;
      cp_fci = fci;
      cp_classify = classify;
      cp_stopped = None;
      cp_result = None;
    }

  let checkpoint_engine cp = cp.cp_eng
  let checkpoint_fci cp = cp.cp_fci

  let advance cp ~stop_before =
    match cp.cp_stopped with
    | Some _ -> `Finished
    | None -> (
        match Engine.run ~until:cp.cp_spec.timeout ~stop_before cp.cp_eng with
        | `Breakpoint -> `Paused
        | (`Quiescent | `Halted | `Deadline) as r ->
            cp.cp_stopped <- Some r;
            `Finished)

  let step cp = ignore (Engine.run_one cp.cp_eng)

  let resume_from cp =
    match cp.cp_result with
    | Some r -> r
    | None ->
        let stop =
          match cp.cp_stopped with
          | Some r -> r
          | None ->
              let r = Engine.run ~until:cp.cp_spec.timeout cp.cp_eng in
              cp.cp_stopped <- Some r;
              r
        in
        let r = cp.cp_classify stop in
        cp.cp_result <- Some r;
        r

  let execute ?expected_checksum spec = resume_from (prepare ?expected_checksum spec)
end
