module Lang = struct
  module Ast = Fail_lang.Ast
  module Parser = Fail_lang.Parser
  module Pp = Fail_lang.Pp
  module Sema = Fail_lang.Sema
  module Automaton = Fail_lang.Automaton
  module Compile = Fail_lang.Compile
  module Codegen = Fail_lang.Codegen
  module Paper_scenarios = Fail_lang.Paper_scenarios
  module Tool_comparison = Fail_lang.Tool_comparison
end

module Inject = struct
  module Control = Fci.Control
  module Runtime = Fci.Runtime
end

module Mpi = struct
  module Config = Mpivcl.Config
  module App = Mpivcl.App
  module Deploy = Mpivcl.Deploy
  module Dispatcher = Mpivcl.Dispatcher
  module Scheduler = Mpivcl.Scheduler
end

module Rep = struct
  module Rmsg = Mpirep.Rmsg
  module Member = Mpirep.Member
  module Replica = Mpirep.Replica
  module Rdispatcher = Mpirep.Rdispatcher
  module Deploy = Mpirep.Deploy
end

module Run = struct
  open Simkern

  type spec = {
    scenario : string option;
    params : (string * int) list;
    app : Mpivcl.App.t;
    state_bytes : int;
    n_compute : int;
    cfg : Mpivcl.Config.t;
    fci_config : Fci.Runtime.config;
    seed : int64;
    timeout : float;
  }

  let default_spec ~app ~cfg ~n_compute ~state_bytes =
    {
      scenario = None;
      params = [];
      app;
      state_bytes;
      n_compute;
      cfg;
      fci_config = Fci.Runtime.default_config;
      seed = 1L;
      timeout = 1500.0;
    }

  type outcome = Completed of float | Non_terminating | Buggy

  type result = {
    outcome : outcome;
    injected_faults : int;
    recoveries : int;
    committed_waves : int;
    confused : bool;
    failovers : int;
    respawns : int;
    checksums : (int * int) list;
    checksum_ok : bool option;
    trace : Trace.t;
  }

  let outcome_name = function
    | Completed _ -> "completed"
    | Non_terminating -> "non-terminating"
    | Buggy -> "buggy"

  let execute ?expected_checksum spec =
    let eng = Engine.create ~seed:spec.seed () in
    let fci =
      match spec.scenario with
      | None -> None
      | Some source -> (
          match Fail_lang.Compile.compile_source ~params:spec.params source with
          | Ok plan -> Some (Fci.Runtime.create eng ~config:spec.fci_config plan)
          | Error msg -> invalid_arg (Printf.sprintf "Run.execute: scenario error: %s" msg))
    in
    (* Capture each rank's final checksum after its last re-execution. *)
    let finals : (int, int) Hashtbl.t = Hashtbl.create 64 in
    let app =
      {
        spec.app with
        Mpivcl.App.main =
          (fun ctx ->
            spec.app.Mpivcl.App.main ctx;
            Hashtbl.replace finals ctx.Mpivcl.App.rank ctx.Mpivcl.App.state.(2));
      }
    in
    (* Common epilogue: §5 classification (a frozen run — quiescent
       event queue, corrupted dispatcher, or exhausted replication — is
       a bug; a run still making failure / recovery noise at the timeout
       is non-terminating) plus checksum collection. *)
    let finish ~completed ~frozen ~stop_reason ~recoveries ~committed_waves ~confused
        ~failovers ~respawns =
      let outcome =
        match completed with
        | Some t -> Completed t
        | None -> if frozen || stop_reason = `Quiescent then Buggy else Non_terminating
      in
      let checksums =
        Hashtbl.fold (fun rank v acc -> (rank, v) :: acc) finals []
        |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
      in
      let checksum_ok =
        match (completed, expected_checksum) with
        | Some _, Some expected ->
            Some
              (List.length checksums = spec.cfg.Mpivcl.Config.n_ranks
              && List.for_all (fun (_, v) -> v = expected) checksums)
        | _ -> None
      in
      {
        outcome;
        injected_faults =
          (match fci with Some rt -> Fci.Runtime.injected_faults rt | None -> 0);
        recoveries;
        committed_waves;
        confused;
        failovers;
        respawns;
        checksums;
        checksum_ok;
        trace = Engine.trace eng;
      }
    in
    match Mpivcl.Config.replication_degree spec.cfg with
    | Some _ ->
        let handle =
          Mpirep.Deploy.launch eng ?fci ~cfg:spec.cfg ~app ~state_bytes:spec.state_bytes
            ~n_compute:spec.n_compute ()
        in
        let rd = handle.Mpirep.Deploy.rdispatcher in
        ignore
          (Proc.spawn eng ~name:"experiment-watchdog" (fun () ->
               ignore (Mpirep.Rdispatcher.outcome rd);
               Engine.halt eng));
        let stop_reason = Engine.run ~until:spec.timeout eng in
        let completed =
          match Mpirep.Rdispatcher.peek_outcome rd with
          | Some (Mpirep.Rdispatcher.Completed t) -> Some t
          | Some (Mpirep.Rdispatcher.Aborted _) | None -> None
        in
        let exhausted = Mpirep.Rdispatcher.exhausted rd in
        Mpirep.Deploy.teardown handle;
        Engine.halt eng;
        finish ~completed ~frozen:exhausted ~stop_reason ~recoveries:0 ~committed_waves:0
          ~confused:false ~failovers:(Mpirep.Rdispatcher.failovers rd)
          ~respawns:(Mpirep.Rdispatcher.respawns rd)
    | None ->
        let handle =
          Mpivcl.Deploy.launch eng ?fci ~cfg:spec.cfg ~app ~state_bytes:spec.state_bytes
            ~n_compute:spec.n_compute ()
        in
        (* Stop the clock as soon as the application completes; otherwise
           run to quiescence (a freeze drains the event queue) or the
           experiment timeout, after which every component is killed and
           the run is classified (§5). *)
        ignore
          (Proc.spawn eng ~name:"experiment-watchdog" (fun () ->
               ignore (Mpivcl.Dispatcher.outcome handle.Mpivcl.Deploy.dispatcher);
               Engine.halt eng));
        let stop_reason = Engine.run ~until:spec.timeout eng in
        let dispatcher = handle.Mpivcl.Deploy.dispatcher in
        let completed =
          match Mpivcl.Dispatcher.peek_outcome dispatcher with
          | Some (Mpivcl.Dispatcher.Completed t) -> Some t
          | Some (Mpivcl.Dispatcher.Aborted _) | None -> None
        in
        let confused = Mpivcl.Dispatcher.confused dispatcher in
        let committed_waves =
          match handle.Mpivcl.Deploy.scheduler with
          | Some scheduler -> Mpivcl.Scheduler.committed_count scheduler
          | None -> 0
        in
        Mpivcl.Deploy.teardown handle;
        Engine.halt eng;
        finish ~completed ~frozen:confused ~stop_reason
          ~recoveries:(Mpivcl.Dispatcher.recoveries dispatcher)
          ~committed_waves ~confused ~failovers:0 ~respawns:0
end
