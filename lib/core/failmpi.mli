(** FAIL-MPI: language-driven fault injection for fault-tolerant MPI.

    The one-stop public API. A fault-injection campaign is described by a
    {!Run.spec}: a FAIL scenario (source text), the application under
    test, and the protocol configuration. {!Run.execute} compiles the
    scenario, resolves the protocol backend for [cfg.protocol] from the
    {!Backend.Registry}, deploys the FAIL-MPI daemons and the protocol
    runtime on a simulated cluster, runs to completion or to the
    experiment timeout, and classifies the outcome exactly as the paper's
    §5 does: completed, non-terminating (failure frequency too high for
    progress), or buggy (frozen by a fault-tolerance bug) — refined to
    net-hung when the wedge is explained by an actively lossy or
    partitioned network fabric.

    Re-exports: {!Lang} (the FAIL language front end), {!Inject} (the FCI
    runtime), {!Mpi} (configuration and application types), {!Backend}
    (the protocol-backend registry — see [docs/ARCHITECTURE.md]). *)

module Lang : sig
  module Ast = Fail_lang.Ast
  module Parser = Fail_lang.Parser
  module Pp = Fail_lang.Pp
  module Sema = Fail_lang.Sema
  module Automaton = Fail_lang.Automaton
  module Compile = Fail_lang.Compile
  module Codegen = Fail_lang.Codegen
  module Paper_scenarios = Fail_lang.Paper_scenarios
  module Tool_comparison = Fail_lang.Tool_comparison
end

module Inject : sig
  module Control = Fci.Control
  module Runtime = Fci.Runtime
end

module Mpi : sig
  module Config = Mpivcl.Config
  module App = Mpivcl.App
end

module Backend = Backend

module Run : sig
  type spec = {
    scenario : string option;  (** FAIL source; [None] = no fault injection *)
    params : (string * int) list;  (** scenario parameters (the paper's X, N) *)
    app : Mpivcl.App.t;
    state_bytes : int;  (** per-rank checkpoint image size *)
    n_compute : int;  (** compute hosts incl. spares (paper: 53 for BT-49) *)
    cfg : Mpivcl.Config.t;
    fci_config : Fci.Runtime.config;
    seed : int64;
    timeout : float;  (** experiment timeout (paper: 1500 s) *)
    trace_level : Simkern.Trace.level;
        (** what the run's trace records: [Full] keeps every event
            (qualitative bug hunts), [Summary] drops per-message
            protocol chatter and keeps milestone events only — the
            allocation-light setting quantitative campaigns use. Never
            affects the simulation itself, only what is recorded. *)
    regions : int option;
        (** engine event-region (shard) count; [None] (the default)
            derives it from the cluster size via
            {!Simkern.Engine.recommended_regions}. Purely a scheduling
            data-structure knob — outcomes, traces and checksums are
            identical for every value. *)
  }

  (** [default_spec ~app ~cfg ~n_compute ~state_bytes] fills paper
      defaults (1500 s timeout, no scenario, seed 1, [Full] trace,
      auto-sized regions). *)
  val default_spec :
    app:Mpivcl.App.t ->
    cfg:Mpivcl.Config.t ->
    n_compute:int ->
    state_bytes:int ->
    spec

  type outcome =
    | Completed of float  (** wall-clock (simulated) execution time *)
    | Degraded of { at : float; survivors : int }
        (** completed, but on a communicator shrunk to [survivors]
            daemons (ulfm backend): never folded into [Completed] so
            answer quality and capacity loss stay distinguishable;
            [checksum_ok] still says whether the degraded answer is
            right *)
    | Aborted of string
        (** the backend gave up cleanly and said why — e.g. the survivor
            agreement refused to decide without a majority of the
            superseded epoch (split-brain protection under partition) *)
    | Ckpt_lost
        (** a restarting rank needed a checkpoint image and no storage
            replica could produce a complete one (every assigned server
            dead or holding only a torn write): recovery is impossible,
            so the dispatcher ends the run decisively instead of
            relaunching forever. Indicts the storage plane's replication
            degree, not the recovery protocol — kept apart from
            [Aborted] so campaigns can count it separately. *)
    | Non_terminating
        (** still rolling back / recovering at the timeout: the failure
            frequency leaves no room for progress (green bars) *)
    | Buggy  (** frozen by a fault-tolerance bug (red bars) *)
    | Net_hung
        (** frozen, but the perturbed network was dropping messages or
            tearing connections down — the wedge is explained by the
            fabric, not (necessarily) a protocol bug. Only reachable when
            network faults are active; latency-only degradation never
            produces it. *)

  type result = {
    outcome : outcome;
    injected_faults : int;  (** FAIL [halt] actions executed *)
    metrics : Backend.Metrics.t;
        (** the uniform counter set the protocol backend reported *)
    checksums : (int * int) list;  (** (rank, final checksum) of completed runs *)
    checksum_ok : bool option;
        (** completed runs: all checksums equal the fault-free reference
            passed via [expected_checksum]; [None] when unavailable *)
    trace : Simkern.Trace.t;
  }

  val metrics : result -> Backend.Metrics.t

  (** Shorthands into {!result.metrics}. *)

  val recoveries : result -> int
  (** dispatcher recovery waves (rollback families) *)

  val committed_waves : result -> int
  (** global checkpoints committed *)

  val confused : result -> bool
  (** the dispatcher hit the §5.3 bookkeeping race *)

  val failovers : result -> int
  (** replica failures absorbed with zero rollback *)

  val respawns : result -> int
  (** replicas respawned via state transfer *)

  val outcome_name : outcome -> string

  (** [trace_events r] is the [(source, event)] pair of every trace
      entry, in recording order, without rendering detail payloads — at
      [Summary] trace level this is the run's milestone skeleton, which
      [Explore] hashes into a coverage signature. *)
  val trace_events : result -> (string * string) list

  (** [execute ?expected_checksum spec] runs one experiment.

      @raise Invalid_argument on absurd inputs: [cfg.n_ranks <= 0],
        [n_compute < cfg.n_ranks], or [regions = Some r] with [r < 1]. *)
  val execute : ?expected_checksum:int -> spec -> result

  (** {2 Checkpointed execution}

      {!execute} split in two: {!prepare} performs the whole launch
      (engine, scenario compilation, backend deployment, watchdog) but
      runs no events; {!resume_from} runs the engine to its terminal
      stop and classifies exactly as {!execute} does — [execute spec]
      {e is} [resume_from (prepare spec)]. Between the two, the
      explorer's prefix-sharing scheduler interposes {!advance} pauses
      at scenario-timer breakpoints, {!step}s over single events, and
      OS-level [fork()]s of the whole process — the checkpoint value
      itself carries no copied state, the fork's copy-on-write heap
      does (see docs/EXPLORER.md). *)

  type checkpoint

  (** [prepare ?expected_checksum spec] validates and launches without
      running any event. Raises like {!execute}. *)
  val prepare : ?expected_checksum:int -> spec -> checkpoint

  val checkpoint_engine : checkpoint -> Simkern.Engine.t

  (** [checkpoint_fci cp] is the run's FAIL runtime, when the spec had a
      scenario. *)
  val checkpoint_fci : checkpoint -> Fci.Runtime.t option

  (** [advance cp ~stop_before] runs events up to the run's timeout but
      pauses ([`Paused]) just before [stop_before] would execute,
      leaving it queued. [`Finished] means the run reached a terminal
      stop (completion, quiescence or timeout) before the breakpoint —
      {!resume_from} will then classify without running further. *)
  val advance :
    checkpoint -> stop_before:Simkern.Engine.handle -> [ `Paused | `Finished ]

  (** [step cp] executes exactly the next pending event (the explorer's
      "fire the fault" move at a pause). *)
  val step : checkpoint -> unit

  (** [resume_from cp] runs to the terminal stop (if not already there)
      and classifies. Idempotent: the result is memoised, and the
      backend teardown it triggers happens once. *)
  val resume_from : checkpoint -> result
end
