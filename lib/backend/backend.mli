(** Protocol backends: one launch / await / metrics contract for every
    fault-tolerance protocol family.

    {!Failmpi.Run.execute} is protocol-agnostic: it resolves the backend
    for [cfg.protocol] from the {!Registry}, launches it, spawns one
    watchdog on {!S.await}, and classifies the outcome from
    {!S.peek_completed} / {!S.frozen} — adding a protocol family is a
    registry entry, not core surgery. See [docs/ARCHITECTURE.md]. *)

module Metrics = Metrics

(** The backend contract; see {!Intf.S} for the full documentation. *)
module type S = Intf.S

(** A backend as a first-class module. *)
type t = Intf.t

module Registry = Registry
module Builtin = Builtin

(** [of_config cfg] resolves the registered backend for
    [cfg.protocol]. Raises [Invalid_argument] if none handles it. *)
val of_config : Mpivcl.Config.t -> t

(** [find name] resolves a registry name or alias. *)
val find : string -> t option

(** All registered backends / their canonical names, in registration
    order. *)
val all : unit -> t list

val names : unit -> string list
