(** Name → backend registry.

    The builtin protocol families ([vcl], [blocking], [v2],
    [replication]) are registered by {!Builtin.init}, which runs as soon
    as the [Backend] umbrella module is linked; additional backends can
    be registered at program start. Registration order is preserved —
    experiments that enumerate the registry report families in a stable
    order.

    The registry is domain-safe: all accesses are serialised by a
    mutex, so parallel campaign workers ({!Par}) can resolve backends
    concurrently while a late registration is in flight. *)

(** [register b] appends [b]. Raises [Invalid_argument] if its name or
    one of its aliases is already taken. *)
val register : Intf.t -> unit

(** Registered backends, in registration order. *)
val all : unit -> Intf.t list

(** Canonical names, in registration order. *)
val names : unit -> string list

(** [find name] resolves a canonical name or an alias. *)
val find : string -> Intf.t option

(** [of_protocol p] is the backend with [handles p]. Raises
    [Invalid_argument] (listing the registered names) if none does. *)
val of_protocol : Mpivcl.Config.protocol -> Intf.t
