open Mpivcl

(* Fabric counters, appended to a backend's metrics only when the
   perturbation layer was ever touched — the §5 classifier reads
   [net_dropped]/[net_conn_timeouts] to tell a network-explained wedge
   ([Net_hung]) from a protocol bug. *)
let net_extra net =
  let p = Simnet.Net.perturb net in
  if not (Simnet.Net.Perturb.touched p) then []
  else
    let s = Simnet.Net.Perturb.stats p in
    [
      ("net_dropped", s.Simnet.Net.Perturb.dropped);
      ("net_delayed", s.Simnet.Net.Perturb.delayed);
      ("net_retransmits", s.Simnet.Net.Perturb.retransmits);
      ("net_conn_timeouts", s.Simnet.Net.Perturb.conn_timeouts);
    ]

(* The three rollback-recovery protocols share the MPICH-Vcl deployment
   (dispatcher, daemons, checkpoint servers) and differ only in the
   [Config.protocol] value they run under. *)
module type ROLLBACK_SPEC = sig
  val name : string
  val aliases : string list
  val doc : string
  val label : string
  val proto : Config.protocol
end

module Rollback (P : ROLLBACK_SPEC) : Intf.S = struct
  type handle = Deploy.handle

  let name = P.name
  let aliases = P.aliases
  let doc = P.doc
  let family_label ~replicas:_ = P.label
  let protocol ~replicas:_ = P.proto
  let handles proto = proto = P.proto

  (* The paper's allocation: one host per rank plus four spares
     (53 machines for BT-49); services live beyond the compute range. *)
  let default_machines ~n_ranks ~replicas:_ = n_ranks + 4

  let launch eng ?fci ~cfg ~app ~state_bytes ~n_compute () =
    if not (handles cfg.Config.protocol) then
      invalid_arg
        (Printf.sprintf "%s backend cannot run protocol %s" name
           (Config.protocol_name cfg.Config.protocol));
    Deploy.launch eng ?fci ~cfg ~app ~state_bytes ~n_compute ()

  let await h = ignore (Dispatcher.outcome h.Deploy.dispatcher)

  let peek_completed h =
    match Dispatcher.peek_outcome h.Deploy.dispatcher with
    | Some (Dispatcher.Completed t) -> Some t
    | Some (Dispatcher.Aborted _) | None -> None

  let frozen h =
    Dispatcher.confused h.Deploy.dispatcher || Dispatcher.race_lost h.Deploy.dispatcher

  let metrics h =
    {
      Metrics.zero with
      Metrics.recoveries = Dispatcher.recoveries h.Deploy.dispatcher;
      committed_waves =
        (match h.Deploy.scheduler with
        | Some scheduler -> Scheduler.committed_count scheduler
        | None -> 0);
      confused = Dispatcher.confused h.Deploy.dispatcher;
      extra = net_extra (Deploy.net h);
    }

  (* Rollback recovery restores the original membership; terminal failure
     is [frozen], never a shrink or a clean abort. *)
  let survivors _ = None
  let aborted _ = None
  let ckpt_lost h = Dispatcher.ckpt_lost h.Deploy.dispatcher
  let teardown = Deploy.teardown
end

module Vcl = Rollback (struct
  let name = "vcl"
  let aliases = [ "non-blocking" ]

  let doc =
    "coordinated checkpointing, non-blocking Chandy-Lamport waves; any fault rolls \
     every rank back to the last committed wave"

  let label = "Vcl (coordinated)"
  let proto = Config.Non_blocking
end)

module Blocking = Rollback (struct
  let name = "blocking"
  let aliases = []

  let doc =
    "coordinated checkpointing with blocking (channel-flushing) Chandy-Lamport waves"

  let label = "Vcl (blocking)"
  let proto = Config.Blocking
end)

module V2 = Rollback (struct
  let name = "v2"
  let aliases = [ "logging" ]

  let doc =
    "sender-based message logging; only the failed rank restarts and replays from \
     its own checkpoint"

  let label = "V2 (msg logging)"
  let proto = Config.Sender_logging
end)

module Replication : Intf.S = struct
  type handle = Mpirep.Deploy.handle

  let name = "replication"
  let aliases = [ "rep" ]

  let doc =
    "active replication: degree replicas per rank, zero-rollback failover, respawn \
     via state transfer"

  let family_label ~replicas = Printf.sprintf "replication x%d" replicas
  let protocol ~replicas = Config.Replication { degree = replicas }

  let handles = function
    | Config.Replication _ -> true
    | Config.Non_blocking | Config.Blocking | Config.Sender_logging | Config.Ulfm _ ->
        false

  (* degree x ranks replicas plus two spare hosts for respawns (so e.g.
     --ranks 4 --replicas 2 matches scenarios/replica_split.fail's
     machines 0..9). *)
  let default_machines ~n_ranks ~replicas = (replicas * n_ranks) + 2
  let launch = Mpirep.Deploy.launch
  let await h = ignore (Mpirep.Rdispatcher.outcome h.Mpirep.Deploy.rdispatcher)

  let peek_completed h =
    match Mpirep.Rdispatcher.peek_outcome h.Mpirep.Deploy.rdispatcher with
    | Some (Mpirep.Rdispatcher.Completed t) -> Some t
    | Some (Mpirep.Rdispatcher.Aborted _) | None -> None

  let frozen h = Mpirep.Rdispatcher.exhausted h.Mpirep.Deploy.rdispatcher

  let metrics h =
    let rd = h.Mpirep.Deploy.rdispatcher in
    {
      Metrics.zero with
      Metrics.failovers = Mpirep.Rdispatcher.failovers rd;
      respawns = Mpirep.Rdispatcher.respawns rd;
      extra =
        (("exhausted", if Mpirep.Rdispatcher.exhausted rd then 1 else 0)
        :: net_extra (Mpirep.Deploy.net h));
    }

  (* Failover restores the full logical membership (every rank keeps
     computing somewhere); exhaustion is [frozen], preserving the §5
     [Buggy] classification of the historical goldens. *)
  let survivors _ = None
  let aborted _ = None
  let ckpt_lost _ = false
  let teardown = Mpirep.Deploy.teardown
end

module Ulfm : Intf.S = struct
  type handle = Mpiulfm.Deploy.handle

  let name = "ulfm"
  let aliases = [ "shrink" ]

  let doc =
    "ULFM-style shrink-and-continue: heartbeat failure detection raised into the \
     running collective, survivor agreement (majority of the superseded epoch), \
     communicator shrink with warm-spare promotion; completes degraded instead of \
     restoring membership"

  let family_label ~replicas:_ = "ULFM (shrink)"
  let protocol ~replicas:_ = Config.Ulfm { spares = 0 }

  let handles = function
    | Config.Ulfm _ -> true
    | Config.Non_blocking | Config.Blocking | Config.Sender_logging | Config.Replication _
      ->
        false

  (* One host per daemon; the paper-style four extra hosts double as the
     warm-spare pool when [--spares] asks for one. *)
  let default_machines ~n_ranks ~replicas:_ = n_ranks + 4
  let launch = Mpiulfm.Deploy.launch
  let await h = ignore (Mpiulfm.Udispatcher.outcome h.Mpiulfm.Deploy.udispatcher)

  let peek_completed h =
    match Mpiulfm.Udispatcher.peek_outcome h.Mpiulfm.Deploy.udispatcher with
    | Some (Mpiulfm.Udispatcher.Completed t) -> Some t
    | Some (Mpiulfm.Udispatcher.Aborted _) | None -> None

  (* A ulfm run never freezes by protocol design — it completes, aborts
     cleanly, or is still detecting/agreeing at the timeout — except for
     a split-brain (two daemons deciding the same epoch differently),
     which the dispatcher cross-checks for and which is a genuine
     protocol bug. *)
  let frozen h = Mpiulfm.Udispatcher.divergent h.Mpiulfm.Deploy.udispatcher

  let metrics h =
    let ud = h.Mpiulfm.Deploy.udispatcher in
    {
      Metrics.zero with
      Metrics.recoveries = Mpiulfm.Udispatcher.shrinks ud;
      extra =
        [
          ("agree_ballots", Mpiulfm.Udispatcher.ballots ud);
          ("ranks_adopted", Mpiulfm.Udispatcher.adopted ud);
          ("spares_promoted", Mpiulfm.Udispatcher.promoted ud);
        ]
        @ net_extra (Mpiulfm.Deploy.net h);
    }

  let survivors h = Mpiulfm.Udispatcher.survivors h.Mpiulfm.Deploy.udispatcher
  let aborted h = Mpiulfm.Udispatcher.abort_reason h.Mpiulfm.Deploy.udispatcher
  let ckpt_lost _ = false
  let teardown = Mpiulfm.Deploy.teardown
end

let all : Intf.t list =
  [ (module Vcl); (module Blocking); (module V2); (module Replication); (module Ulfm) ]

let init =
  let once = ref false in
  fun () ->
    if not !once then begin
      once := true;
      List.iter Registry.register all
    end
