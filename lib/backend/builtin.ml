open Mpivcl

(* Fabric counters, appended to a backend's metrics only when the
   perturbation layer was ever touched — the §5 classifier reads
   [net_dropped]/[net_conn_timeouts] to tell a network-explained wedge
   ([Net_hung]) from a protocol bug. *)
let net_extra net =
  let p = Simnet.Net.perturb net in
  if not (Simnet.Net.Perturb.touched p) then []
  else
    let s = Simnet.Net.Perturb.stats p in
    [
      ("net_dropped", s.Simnet.Net.Perturb.dropped);
      ("net_delayed", s.Simnet.Net.Perturb.delayed);
      ("net_retransmits", s.Simnet.Net.Perturb.retransmits);
      ("net_conn_timeouts", s.Simnet.Net.Perturb.conn_timeouts);
    ]

(* The three rollback-recovery protocols share the MPICH-Vcl deployment
   (dispatcher, daemons, checkpoint servers) and differ only in the
   [Config.protocol] value they run under. *)
module type ROLLBACK_SPEC = sig
  val name : string
  val aliases : string list
  val doc : string
  val label : string
  val proto : Config.protocol
end

module Rollback (P : ROLLBACK_SPEC) : Intf.S = struct
  type handle = Deploy.handle

  let name = P.name
  let aliases = P.aliases
  let doc = P.doc
  let family_label ~replicas:_ = P.label
  let protocol ~replicas:_ = P.proto
  let handles proto = proto = P.proto

  (* The paper's allocation: one host per rank plus four spares
     (53 machines for BT-49); services live beyond the compute range. *)
  let default_machines ~n_ranks ~replicas:_ = n_ranks + 4

  let launch eng ?fci ~cfg ~app ~state_bytes ~n_compute () =
    if not (handles cfg.Config.protocol) then
      invalid_arg
        (Printf.sprintf "%s backend cannot run protocol %s" name
           (Config.protocol_name cfg.Config.protocol));
    Deploy.launch eng ?fci ~cfg ~app ~state_bytes ~n_compute ()

  let await h = ignore (Dispatcher.outcome h.Deploy.dispatcher)

  let peek_completed h =
    match Dispatcher.peek_outcome h.Deploy.dispatcher with
    | Some (Dispatcher.Completed t) -> Some t
    | Some (Dispatcher.Aborted _) | None -> None

  let frozen h =
    Dispatcher.confused h.Deploy.dispatcher || Dispatcher.race_lost h.Deploy.dispatcher

  let metrics h =
    {
      Metrics.zero with
      Metrics.recoveries = Dispatcher.recoveries h.Deploy.dispatcher;
      committed_waves =
        (match h.Deploy.scheduler with
        | Some scheduler -> Scheduler.committed_count scheduler
        | None -> 0);
      confused = Dispatcher.confused h.Deploy.dispatcher;
      extra = net_extra (Deploy.net h);
    }

  let teardown = Deploy.teardown
end

module Vcl = Rollback (struct
  let name = "vcl"
  let aliases = [ "non-blocking" ]

  let doc =
    "coordinated checkpointing, non-blocking Chandy-Lamport waves; any fault rolls \
     every rank back to the last committed wave"

  let label = "Vcl (coordinated)"
  let proto = Config.Non_blocking
end)

module Blocking = Rollback (struct
  let name = "blocking"
  let aliases = []

  let doc =
    "coordinated checkpointing with blocking (channel-flushing) Chandy-Lamport waves"

  let label = "Vcl (blocking)"
  let proto = Config.Blocking
end)

module V2 = Rollback (struct
  let name = "v2"
  let aliases = [ "logging" ]

  let doc =
    "sender-based message logging; only the failed rank restarts and replays from \
     its own checkpoint"

  let label = "V2 (msg logging)"
  let proto = Config.Sender_logging
end)

module Replication : Intf.S = struct
  type handle = Mpirep.Deploy.handle

  let name = "replication"
  let aliases = [ "rep" ]

  let doc =
    "active replication: degree replicas per rank, zero-rollback failover, respawn \
     via state transfer"

  let family_label ~replicas = Printf.sprintf "replication x%d" replicas
  let protocol ~replicas = Config.Replication { degree = replicas }

  let handles = function
    | Config.Replication _ -> true
    | Config.Non_blocking | Config.Blocking | Config.Sender_logging -> false

  (* degree x ranks replicas plus two spare hosts for respawns (so e.g.
     --ranks 4 --replicas 2 matches scenarios/replica_split.fail's
     machines 0..9). *)
  let default_machines ~n_ranks ~replicas = (replicas * n_ranks) + 2
  let launch = Mpirep.Deploy.launch
  let await h = ignore (Mpirep.Rdispatcher.outcome h.Mpirep.Deploy.rdispatcher)

  let peek_completed h =
    match Mpirep.Rdispatcher.peek_outcome h.Mpirep.Deploy.rdispatcher with
    | Some (Mpirep.Rdispatcher.Completed t) -> Some t
    | Some (Mpirep.Rdispatcher.Aborted _) | None -> None

  let frozen h = Mpirep.Rdispatcher.exhausted h.Mpirep.Deploy.rdispatcher

  let metrics h =
    let rd = h.Mpirep.Deploy.rdispatcher in
    {
      Metrics.zero with
      Metrics.failovers = Mpirep.Rdispatcher.failovers rd;
      respawns = Mpirep.Rdispatcher.respawns rd;
      extra =
        (("exhausted", if Mpirep.Rdispatcher.exhausted rd then 1 else 0)
        :: net_extra (Mpirep.Deploy.net h));
    }

  let teardown = Mpirep.Deploy.teardown
end

let all : Intf.t list =
  [ (module Vcl); (module Blocking); (module V2); (module Replication) ]

let init =
  let once = ref false in
  fun () ->
    if not !once then begin
      once := true;
      List.iter Registry.register all
    end
