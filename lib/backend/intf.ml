(** The protocol-backend contract.

    A backend packages one fault-tolerance protocol family behind the
    launch / await / metrics lifecycle that {!Failmpi.Run.execute}
    drives: deploy the runtime on a simulated cluster, block a watchdog
    until the application finishes, expose the terminal state and the
    uniform {!Metrics.t}, and tear everything down. Implementations are
    first-class modules registered in {!Registry}; the core run loop is
    protocol-agnostic and resolves the backend from
    [Mpivcl.Config.protocol]. *)

module type S = sig
  (** Opaque per-run deployment state (cluster, network, dispatcher). *)
  type handle

  (** Canonical registry name (CLI: [--protocol <name>]). *)
  val name : string

  (** Alternative CLI spellings, e.g. ["non-blocking"] for [vcl]. *)
  val aliases : string list

  (** One-line description for [--list-protocols]. *)
  val doc : string

  (** Row label used by the protocol-families experiment;
      [replicas] only matters to degree-parameterised backends. *)
  val family_label : replicas:int -> string

  (** The [Config.protocol] value this backend runs, e.g.
      [Replication { degree = replicas }]. *)
  val protocol : replicas:int -> Mpivcl.Config.protocol

  (** [handles p] is true iff this backend deploys protocol [p]. *)
  val handles : Mpivcl.Config.protocol -> bool

  (** Default compute-host allocation (ranks + protocol services +
      spares) for CLI runs, mirroring the paper's 53-for-49 style. *)
  val default_machines : n_ranks:int -> replicas:int -> int

  (** Deploy the protocol runtime. Returns immediately; progress happens
      as the engine runs. Raises [Invalid_argument] if [cfg.protocol] is
      not one this backend {!handles} or the cluster is too small. *)
  val launch :
    Simkern.Engine.t ->
    ?fci:Fci.Runtime.t ->
    cfg:Mpivcl.Config.t ->
    app:Mpivcl.App.t ->
    state_bytes:int ->
    n_compute:int ->
    unit ->
    handle

  (** Blocks the calling process until the run reaches a terminal state
      (completed or aborted). Spawned as the experiment watchdog. *)
  val await : handle -> unit

  (** [Some t] once the application completed at simulated time [t]. *)
  val peek_completed : handle -> float option

  (** The protocol froze the run (corrupted dispatcher bookkeeping,
      exhausted replication, ...): §5 classifies this as [Buggy] even
      before the event queue drains. *)
  val frozen : handle -> bool

  (** Uniform counter snapshot; see {!Metrics}. *)
  val metrics : handle -> Metrics.t

  (** For shrink-and-continue backends: [Some n] when the run completed
      on a communicator rebuilt over [n] surviving daemons — the signal
      behind the [Degraded] verdict. [None] for every backend whose
      protocol restores the original membership (the four rollback /
      replication families), and for runs that never shrank. *)
  val survivors : handle -> int option

  (** For backends that can give up cleanly (e.g. a survivor agreement
      that refuses to decide without a quorum): the reported reason.
      [None] elsewhere; rollback families express terminal failure as
      {!frozen} instead, preserving the paper's §5 [Buggy]
      classification. *)
  val aborted : handle -> string option

  (** True when a restarting rank needed a checkpoint image and no
      storage replica could produce a complete one — the signal behind
      the [Ckpt_lost] verdict. Only the rollback families (which own a
      checkpoint storage plane) can report it; [false] elsewhere. *)
  val ckpt_lost : handle -> bool

  (** Kill every deployed task (experiment timeout). *)
  val teardown : handle -> unit
end

(** Backends travel as first-class modules. *)
type t = (module S)
