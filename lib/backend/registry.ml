let registered : Intf.t list ref = ref []

let spellings (module B : Intf.S) = B.name :: B.aliases

let register ((module B : Intf.S) as backend) =
  let taken = List.concat_map spellings !registered in
  (match List.find_opt (fun n -> List.mem n taken) (spellings (module B)) with
  | Some n ->
      invalid_arg
        (Printf.sprintf "Backend.Registry.register: %s already registered" n)
  | None -> ());
  registered := !registered @ [ backend ]

let all () = !registered
let names () = List.map (fun (module B : Intf.S) -> B.name) !registered

let find name =
  List.find_opt (fun b -> List.mem name (spellings b)) !registered

let of_protocol proto =
  match List.find_opt (fun (module B : Intf.S) -> B.handles proto) !registered with
  | Some b -> b
  | None ->
      invalid_arg
        (Printf.sprintf
           "Backend.Registry.of_protocol: no registered backend handles %s (registered: %s)"
           (Mpivcl.Config.protocol_name proto)
           (String.concat ", " (names ())))
