(* Pool workers resolve backends concurrently from several domains, so
   every access to the registration list goes through one mutex.
   Registration normally happens once, at module init, before any
   worker domain exists; the mutex makes late registrations and
   concurrent lookups race-free too. *)

let lock = Mutex.create ()

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let registered : Intf.t list ref = ref []

let spellings (module B : Intf.S) = B.name :: B.aliases

let register ((module B : Intf.S) as backend) =
  locked (fun () ->
      let taken = List.concat_map spellings !registered in
      (match List.find_opt (fun n -> List.mem n taken) (spellings (module B)) with
      | Some n ->
          invalid_arg
            (Printf.sprintf "Backend.Registry.register: %s already registered" n)
      | None -> ());
      registered := !registered @ [ backend ])

let all () = locked (fun () -> !registered)
let names () = List.map (fun (module B : Intf.S) -> B.name) (all ())

let find name =
  List.find_opt (fun b -> List.mem name (spellings b)) (all ())

let of_protocol proto =
  match List.find_opt (fun (module B : Intf.S) -> B.handles proto) (all ()) with
  | Some b -> b
  | None ->
      invalid_arg
        (Printf.sprintf
           "Backend.Registry.of_protocol: no registered backend handles %s (registered: %s)"
           (Mpivcl.Config.protocol_name proto)
           (String.concat ", " (names ())))
