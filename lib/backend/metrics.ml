type t = {
  recoveries : int;
  committed_waves : int;
  confused : bool;
  failovers : int;
  respawns : int;
  extra : (string * int) list;
}

let zero =
  {
    recoveries = 0;
    committed_waves = 0;
    confused = false;
    failovers = 0;
    respawns = 0;
    extra = [];
  }

let counters t =
  [
    ("recoveries", t.recoveries);
    ("committed_waves", t.committed_waves);
    ("confused", if t.confused then 1 else 0);
    ("failovers", t.failovers);
    ("respawns", t.respawns);
  ]
  @ t.extra

let find t name = List.assoc_opt name (counters t)

let pp ppf t =
  Format.fprintf ppf "@[<h>%a@]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf "@ ")
       (fun ppf (name, v) -> Format.fprintf ppf "%s=%d" name v))
    (counters t)
