(** The five builtin protocol backends, one per [Config.protocol]
    constructor. *)

module Vcl : Intf.S
module Blocking : Intf.S
module V2 : Intf.S
module Replication : Intf.S
module Ulfm : Intf.S

(** [vcl], [blocking], [v2], [replication], [ulfm] — in registration
    order. *)
val all : Intf.t list

(** Registers {!all} into {!Registry}; idempotent. Runs automatically
    when the [Backend] umbrella module is linked. *)
val init : unit -> unit
