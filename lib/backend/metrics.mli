(** Uniform per-run counter set reported by every protocol backend.

    Each backend fills in the counters its protocol actually maintains
    and leaves the rest at [zero]'s values: the rollback families report
    recovery waves, committed checkpoint waves and the §5.3 dispatcher
    race; the replication family reports zero-rollback failovers and
    respawns. Backend-specific counters that have no uniform slot go
    into [extra], so adding a protocol never grows {!Failmpi.Run.result}
    by another field. *)

type t = {
  recoveries : int;  (** dispatcher recovery waves (rollback families) *)
  committed_waves : int;  (** global checkpoint waves committed *)
  confused : bool;  (** the dispatcher hit the §5.3 bookkeeping race *)
  failovers : int;  (** replica failures absorbed with zero rollback *)
  respawns : int;  (** replicas respawned via state transfer *)
  extra : (string * int) list;  (** backend-specific extension counters *)
}

(** All counters zero / false, no extras. *)
val zero : t

(** [counters t] is the uniform counter list — the five named slots
    (with [confused] rendered as 0/1) followed by [extra] — for generic
    consumers such as {!Experiments.Harness.aggregate}. *)
val counters : t -> (string * int) list

(** [find t name] looks a counter up by its {!counters} key. *)
val find : t -> string -> int option

val pp : Format.formatter -> t -> unit
