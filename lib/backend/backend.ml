module Metrics = Metrics

module type S = Intf.S

type t = Intf.t

module Registry = Registry
module Builtin = Builtin

(* Any access through this umbrella module forces the builtin
   registrations, so [Registry] is never observed empty. *)
let () = Builtin.init ()
let of_config cfg = Registry.of_protocol cfg.Mpivcl.Config.protocol
let find = Registry.find
let all = Registry.all
let names = Registry.names
