(** Deterministic multicore fan-out for independent simulation jobs.

    Every experiment in the campaign replays hundreds of independent
    fixed-seed runs; each run is a pure function of its seed, so the
    fan-out is embarrassingly parallel. {!map} distributes jobs over a
    pool of OCaml 5 domains (a [Mutex]/[Condition] work queue) and
    returns the results in input order — bit-for-bit identical to the
    sequential path, whatever the interleaving.

    The pool width is picked per call: the [?jobs] argument if given,
    else the process-wide override ({!set_default_jobs}, wired to the
    [--jobs] flag of the campaign binaries), else the [FAILMPI_JOBS]
    environment variable, else [Domain.recommended_domain_count ()].
    Width 1 runs on the calling domain with no pool at all. *)

(** Hard upper bound on the pool width ([FAILMPI_JOBS] and [--jobs] are
    clamped to it; OCaml caps the number of live domains at ~128). *)
val max_jobs : int

(** [default_jobs ()] is the pool width used when [?jobs] is omitted:
    the {!set_default_jobs} override, else [FAILMPI_JOBS], else
    [Domain.recommended_domain_count ()], clamped to [1 .. max_jobs]. *)
val default_jobs : unit -> int

(** [set_default_jobs n] overrides {!default_jobs} for the whole
    process (the [--jobs] flag). Raises [Invalid_argument] if [n < 1]. *)
val set_default_jobs : int -> unit

(** [map ?jobs f xs] is [List.map f xs] computed on [min jobs
    (List.length xs)] domains. Results are returned in input order. If
    any job raises, the first exception in input order is re-raised
    after all jobs finish. *)
val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list

(** [map_seeds ?jobs ~reps ~base_seed run] fans [run ~seed] out for
    seeds [base_seed, base_seed+1, ...] ([reps] of them), results in
    seed order — the parallel form of the harness replication loop. *)
val map_seeds : ?jobs:int -> reps:int -> base_seed:int -> (seed:int64 -> 'a) -> 'a list

(** Explicit worker pool, for callers that want to amortise domain
    spawns over several {!map}-shaped waves. {!map} creates and drains
    one internally. *)
module Pool : sig
  type t

  (** [create ~domains] spawns [domains] worker domains blocked on the
      task queue. *)
  val create : domains:int -> t

  val domains : t -> int

  (** [submit t job] enqueues [job]; some worker will run it. Raises
      [Invalid_argument] after {!shutdown}. *)
  val submit : t -> (unit -> unit) -> unit

  (** [shutdown t] lets queued tasks drain, then joins every worker.
      Idempotent. *)
  val shutdown : t -> unit
end
