let max_jobs = 64

let clamp n = if n < 1 then 1 else if n > max_jobs then max_jobs else n

let override : int option ref = ref None

let set_default_jobs n =
  if n < 1 then invalid_arg "Par.set_default_jobs: jobs must be >= 1";
  override := Some (clamp n)

(* A malformed FAILMPI_JOBS must not silently fall back to the core
   count — warn (once per process) so a typo'd pool width is visible. *)
let env_warned = Atomic.make false

let jobs_from_env () =
  match Sys.getenv_opt "FAILMPI_JOBS" with
  | None -> None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> Some (clamp n)
      | Some _ | None ->
          if not (Atomic.exchange env_warned true) then
            Printf.eprintf
              "warning: ignoring FAILMPI_JOBS=%s (expected an integer >= 1); using the \
               default pool width\n\
               %!"
              s;
          None)

let default_jobs () =
  match !override with
  | Some n -> n
  | None -> (
      match jobs_from_env () with
      | Some n -> n
      | None -> clamp (Domain.recommended_domain_count ()))

module Pool = struct
  type t = {
    m : Mutex.t;
    nonempty : Condition.t;
    tasks : (unit -> unit) Queue.t;
    mutable stopping : bool;
    mutable workers : unit Domain.t list;
  }

  let domains t = List.length t.workers

  (* Workers drain the queue until [stopping] is set AND the queue is
     empty, so a shutdown never drops submitted work. *)
  let worker t =
    let running = ref true in
    while !running do
      Mutex.lock t.m;
      while Queue.is_empty t.tasks && not t.stopping do
        Condition.wait t.nonempty t.m
      done;
      match Queue.take_opt t.tasks with
      | Some task ->
          Mutex.unlock t.m;
          task ()
      | None ->
          Mutex.unlock t.m;
          running := false
    done

  let create ~domains =
    if domains < 1 then invalid_arg "Par.Pool.create: domains must be >= 1";
    let t =
      {
        m = Mutex.create ();
        nonempty = Condition.create ();
        tasks = Queue.create ();
        stopping = false;
        workers = [];
      }
    in
    t.workers <- List.init domains (fun _ -> Domain.spawn (fun () -> worker t));
    t

  let submit t job =
    Mutex.lock t.m;
    if t.stopping then begin
      Mutex.unlock t.m;
      invalid_arg "Par.Pool.submit: pool is shut down"
    end;
    Queue.push job t.tasks;
    Condition.signal t.nonempty;
    Mutex.unlock t.m

  let shutdown t =
    Mutex.lock t.m;
    t.stopping <- true;
    Condition.broadcast t.nonempty;
    Mutex.unlock t.m;
    let workers = t.workers in
    t.workers <- [];
    List.iter Domain.join workers
end

let map ?jobs f xs =
  let n = List.length xs in
  let jobs = clamp (match jobs with Some j -> j | None -> default_jobs ()) in
  let jobs = min jobs n in
  if jobs <= 1 then List.map f xs
  else begin
    let input = Array.of_list xs in
    (* Slot [i] is written by exactly one worker; the completion mutex
       publishes the writes to the calling domain. *)
    let results = Array.make n None in
    let m = Mutex.create () in
    let all_done = Condition.create () in
    let remaining = ref n in
    let pool = Pool.create ~domains:jobs in
    Array.iteri
      (fun i x ->
        Pool.submit pool (fun () ->
            let r =
              try Ok (f x) with e -> Error (e, Printexc.get_raw_backtrace ())
            in
            Mutex.lock m;
            results.(i) <- Some r;
            decr remaining;
            if !remaining = 0 then Condition.signal all_done;
            Mutex.unlock m))
      input;
    Mutex.lock m;
    while !remaining > 0 do
      Condition.wait all_done m
    done;
    Mutex.unlock m;
    Pool.shutdown pool;
    Array.to_list results
    |> List.map (function
         | Some (Ok r) -> r
         | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
         | None -> assert false)
  end

let map_seeds ?jobs ~reps ~base_seed run =
  map ?jobs (fun i -> run ~seed:(Int64.of_int (base_seed + i))) (List.init reps Fun.id)
