type spec =
  | Flat
  | Fat_tree of { k : int }
  | Torus2d of { x : int; y : int }
  | Torus3d of { x : int; y : int; z : int }

type tier = Edge | Agg | Core

type component = Switch of tier * int | Pod of int | Rack of int

type t = {
  t_spec : spec;
  t_hosts : int;
  (* Fat-tree shape, all zero for switchless topologies. *)
  t_k : int;
  t_pods : int;
  t_edge : int;  (* also the rack count *)
  t_agg : int;
  t_core : int;
}

let spec t = t.t_spec
let hosts t = t.t_hosts
let switches t = t.t_edge + t.t_agg + t.t_core
let pod_count t = t.t_pods
let rack_count t = t.t_edge

let switch_count t = function Edge -> t.t_edge | Agg -> t.t_agg | Core -> t.t_core

let links t =
  match t.t_spec with
  | Flat ->
      (* The degenerate mesh keeps simnet's private per-pair links. *)
      t.t_hosts * (t.t_hosts - 1) / 2
  | Fat_tree { k } ->
      (* host-edge: k^3/4; edge-agg: (k/2)^2 per pod; agg-core: k/2 per
         aggregation switch.  All three terms equal k^3/4. *)
      3 * k * k * k / 4
  | Torus2d { x; y } ->
      (* Wrap links double up when a dimension has size 2 and vanish at
         size 1; count distinct unordered neighbour pairs per axis. *)
      let axis n other = match n with 1 -> 0 | 2 -> other | n -> n * other in
      axis x y + axis y x
  | Torus3d { x; y; z } ->
      let axis n other = match n with 1 -> 0 | 2 -> other | n -> n * other in
      axis x (y * z) + axis y (x * z) + axis z (x * y)

let tier_name = function Edge -> "edge" | Agg -> "agg" | Core -> "core"

let tier_of_name = function
  | "edge" -> Some Edge
  | "agg" -> Some Agg
  | "core" -> Some Core
  | _ -> None

let component_name = function
  | Switch (tier, i) -> Printf.sprintf "switch %s[%d]" (tier_name tier) i
  | Pod p -> Printf.sprintf "pod %d" p
  | Rack r -> Printf.sprintf "rack %d" r

let spec_to_string = function
  | Flat -> "flat"
  | Fat_tree { k } -> Printf.sprintf "fat-tree:%d" k
  | Torus2d { x; y } -> Printf.sprintf "torus:%dx%d" x y
  | Torus3d { x; y; z } -> Printf.sprintf "torus:%dx%dx%d" x y z

let spec_of_string s =
  let dims rest =
    let parts = String.split_on_char 'x' rest in
    let rec go acc = function
      | [] -> Some (List.rev acc)
      | p :: rest -> (
          match int_of_string_opt p with Some v -> go (v :: acc) rest | None -> None)
    in
    go [] parts
  in
  match String.index_opt s ':' with
  | None ->
      if s = "flat" then Ok Flat
      else Error (Printf.sprintf "unknown topology %S (expected flat, fat-tree:K or torus:XxY[xZ])" s)
  | Some i -> (
      let head = String.sub s 0 i in
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      match head with
      | "fat-tree" -> (
          match int_of_string_opt rest with
          | Some k -> Ok (Fat_tree { k })
          | None -> Error (Printf.sprintf "fat-tree arity is not a number: %S" rest))
      | "torus" -> (
          match dims rest with
          | Some [ x; y ] -> Ok (Torus2d { x; y })
          | Some [ x; y; z ] -> Ok (Torus3d { x; y; z })
          | _ -> Error (Printf.sprintf "torus dimensions must be XxY or XxYxZ (got %S)" rest))
      | _ ->
          Error
            (Printf.sprintf "unknown topology %S (expected flat, fat-tree:K or torus:XxY[xZ])" s))

let validate = function
  | Flat -> Ok ()
  | Fat_tree { k } ->
      if k >= 2 && k mod 2 = 0 then Ok ()
      else Error (Printf.sprintf "fat-tree arity must be even and >= 2 (got %d)" k)
  | Torus2d { x; y } ->
      if x >= 1 && y >= 1 then Ok ()
      else Error (Printf.sprintf "torus dimensions must be >= 1 (got %dx%d)" x y)
  | Torus3d { x; y; z } ->
      if x >= 1 && y >= 1 && z >= 1 then Ok ()
      else Error (Printf.sprintf "torus dimensions must be >= 1 (got %dx%dx%d)" x y z)

let build spec ~n_hosts =
  (match validate spec with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Simtopo.build: " ^ msg));
  match spec with
  | Flat ->
      if n_hosts < 0 then
        invalid_arg (Printf.sprintf "Simtopo.build: n_hosts must be >= 0 (got %d)" n_hosts);
      { t_spec = spec; t_hosts = n_hosts; t_k = 0; t_pods = 0; t_edge = 0; t_agg = 0; t_core = 0 }
  | Fat_tree { k } ->
      {
        t_spec = spec;
        t_hosts = k * k * k / 4;
        t_k = k;
        t_pods = k;
        t_edge = k * k / 2;
        t_agg = k * k / 2;
        t_core = k * k / 4;
      }
  | Torus2d { x; y } ->
      { t_spec = spec; t_hosts = x * y; t_k = 0; t_pods = 0; t_edge = 0; t_agg = 0; t_core = 0 }
  | Torus3d { x; y; z } ->
      { t_spec = spec; t_hosts = x * y * z; t_k = 0; t_pods = 0; t_edge = 0; t_agg = 0; t_core = 0 }

let for_cluster spec ~n_compute =
  (match validate spec with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Simtopo.for_cluster: " ^ msg));
  let t = build spec ~n_hosts:n_compute in
  if t.t_hosts < n_compute then
    invalid_arg
      (Printf.sprintf
         "Simtopo.for_cluster: topology %s provides %d hosts but the deployment needs %d \
          compute hosts"
         (spec_to_string spec) t.t_hosts n_compute);
  t

(* ---- fat-tree geometry ------------------------------------------- *)

(* Hosts number pods contiguously: pod p holds hosts [p*k^2/4 ..), rack
   (= edge switch) r holds hosts [r*k/2 ..).  Per-tier switch indices:
   edge/agg switch at position j of pod p is p*(k/2) + j; core switches
   number 0 .. (k/2)^2 - 1, core c uplinks to the aggregation switch at
   position c/(k/2) of every pod. *)

let rack_of_host t h =
  if t.t_k = 0 || h < 0 || h >= t.t_hosts then None else Some (h / (t.t_k / 2))

let pod_of_host t h =
  if t.t_k = 0 || h < 0 || h >= t.t_hosts then None else Some (h / (t.t_k * t.t_k / 4))

let route t ~src ~dst =
  if t.t_k = 0 || src = dst || src < 0 || dst < 0 || src >= t.t_hosts || dst >= t.t_hosts
  then []
  else begin
    let half = t.t_k / 2 in
    let rs = src / half and rd = dst / half in
    if rs = rd then [ (Edge, rs) ]
    else begin
      let ps = src / (half * half) and pd = dst / (half * half) in
      if ps = pd then
        (* The in-pod aggregation switch is a symmetric function of the
           pair, so route s->d and d->s traverse the same switches. *)
        let a = (src + dst) mod half in
        [ (Edge, rs); (Agg, (ps * half) + a); (Edge, rd) ]
      else
        (* Core choice spreads pairs over the core layer while staying
           symmetric; the aggregation position follows from which core
           group the chosen core belongs to. *)
        let c = (src + dst) mod t.t_core in
        let a = c / half in
        [ (Edge, rs); (Agg, (ps * half) + a); (Core, c); (Agg, (pd * half) + a); (Edge, rd) ]
    end
  end

let torus_hop n a b =
  let d = abs (a - b) in
  min d (n - d)

let path_len t ~src ~dst =
  if src = dst then 0
  else
    match t.t_spec with
    | Flat -> 1
    | Fat_tree _ -> List.length (route t ~src ~dst) + 1
    | Torus2d { x; y } ->
        torus_hop x (src mod x) (dst mod x) + torus_hop y (src / x) (dst / x)
    | Torus3d { x; y; z } ->
        torus_hop x (src mod x) (dst mod x)
        + torus_hop y (src / x mod y) (dst / x mod y)
        + torus_hop z (src / (x * y)) (dst / (x * y))

let check_component t c =
  match t.t_spec with
  | Flat | Torus2d _ | Torus3d _ ->
      Error
        (Printf.sprintf "topology %s has no %s (components need a fat-tree)"
           (spec_to_string t.t_spec) (component_name c))
  | Fat_tree _ -> (
      let range what i n =
        if i >= 0 && i < n then Ok ()
        else Error (Printf.sprintf "%s index %d out of range (topology has %d)" what i n)
      in
      match c with
      | Switch (tier, i) -> range ("switch " ^ tier_name tier) i (switch_count t tier)
      | Pod p -> range "pod" p t.t_pods
      | Rack r -> range "rack" r t.t_edge)

let hosts_of t c =
  match check_component t c with
  | Error _ -> []
  | Ok () -> (
      let half = t.t_k / 2 in
      let rack r = List.init half (fun i -> (r * half) + i) in
      let pod p = List.init (half * half) (fun i -> (p * half * half) + i) in
      match c with
      | Rack r | Switch (Edge, r) -> rack r
      | Pod p -> pod p
      | Switch (Agg, _) | Switch (Core, _) -> [])

let severed_hosts t c =
  match c with
  | Rack _ | Pod _ | Switch (Edge, _) -> hosts_of t c
  | Switch (Agg, _) | Switch (Core, _) -> []

let route_crosses t ~src ~dst c =
  match c with
  | Switch (tier, i) -> List.mem (tier, i) (route t ~src ~dst)
  | Pod _ | Rack _ -> false

let member_pred t c =
  let members = hosts_of t c in
  fun h -> List.mem h members

let cut_pairs t c =
  match check_component t c with
  | Error _ -> []
  | Ok () ->
      let acc = ref [] in
      (match c with
      | Pod _ | Rack _ ->
          (* Enclosure failure: every pair touching a member dies, the
             internal pairs included (the edge switches die with it). *)
          let inside = member_pred t c in
          for a = 0 to t.t_hosts - 1 do
            for b = a + 1 to t.t_hosts - 1 do
              if inside a || inside b then acc := (a, b) :: !acc
            done
          done
      | Switch _ ->
          for a = 0 to t.t_hosts - 1 do
            for b = a + 1 to t.t_hosts - 1 do
              if route_crosses t ~src:a ~dst:b c then acc := (a, b) :: !acc
            done
          done);
      List.rev !acc

let intra_pairs t c =
  match hosts_of t c with
  | [] -> []
  | members ->
      let rec go acc = function
        | [] -> List.rev acc
        | a :: rest -> go (List.fold_left (fun acc b -> (a, b) :: acc) acc rest) rest
      in
      go [] members
