(** Physical network topologies for the simulated fabric.

    [Simnet] models a flat full mesh: every host pair has a private
    link, so faults can only be expressed per host or per link.  Real
    clusters fail along topology lines — a top-of-rack switch dies and
    takes a whole rack's connectivity with it.  This module supplies
    the missing geometry: topology builders (fat-tree, torus, flat
    mesh as the degenerate case), deterministic shortest-path routing
    over switch nodes, and the mapping from a failed {e component}
    (switch, pod, rack) to the exact set of host pairs whose route
    crosses it.

    The module is pure combinatorics — no engine, no RNG, no mutable
    state — so building a topology or computing a cut set can never
    perturb a simulation.  Component faults are applied by the FCI
    runtime through {!Simnet.Net.Perturb}'s pair-level primitives;
    unperturbed runs never consult the topology at all. *)

type spec =
  | Flat  (** full mesh, no switches: exactly today's fabric *)
  | Fat_tree of { k : int }
      (** [k]-ary fat tree ([k] even, >= 2): [k] pods of [k/2] edge and
          [k/2] aggregation switches, [(k/2)^2] core switches,
          [k^3/4] hosts, [k/2] hosts per edge switch (a "rack") *)
  | Torus2d of { x : int; y : int }  (** [x*y] hosts, wrap-around grid links *)
  | Torus3d of { x : int; y : int; z : int }  (** [x*y*z] hosts *)

type tier = Edge | Agg | Core

type component =
  | Switch of tier * int  (** per-tier switch index *)
  | Pod of int
  | Rack of int  (** the host group under one edge switch *)

type t

val spec : t -> spec
val hosts : t -> int

(** Total switch count across all tiers. *)
val switches : t -> int

(** Physical links: host-edge + edge-agg + agg-core, or torus edges. *)
val links : t -> int
val pod_count : t -> int
val rack_count : t -> int
val switch_count : t -> tier -> int
val pod_of_host : t -> int -> int option
val rack_of_host : t -> int -> int option

val tier_name : tier -> string
val tier_of_name : string -> tier option
val component_name : component -> string

(** [validate spec] checks the arity/dimension constraints and returns
    the exact complaint for a CLI to print. *)
val validate : spec -> (unit, string) result

(** [build spec ~n_hosts] builds the topology.  [n_hosts] sizes the
    degenerate [Flat] mesh (which has no intrinsic size); the sized
    specs ignore it.  Raises [Invalid_argument] on a spec [validate]
    rejects. *)
val build : spec -> n_hosts:int -> t

(** [for_cluster spec ~n_compute] is [build] plus the launch-time
    check that the topology seats every compute host (hosts [0 ..
    n_compute-1] map onto topology hosts one-to-one; service hosts
    beyond the compute pool ride a management network outside the
    fabric).  Raises [Invalid_argument] with an exact message
    otherwise. *)
val for_cluster : spec -> n_compute:int -> t

(** [route t ~src ~dst] is the deterministic switch path a message
    takes, as [(tier, per-tier index)] pairs — [[]] when the hosts are
    directly wired (flat mesh, torus, [src = dst]).  Symmetric:
    [route t ~src ~dst] visits the same switches as
    [route t ~src:dst ~dst:src].  Pure function of [(t, src, dst)],
    so identical at any [--jobs]. *)
val route : t -> src:int -> dst:int -> (tier * int) list

(** [path_len t ~src ~dst] is the hop count (number of physical links)
    of the deterministic route; [0] when [src = dst]. *)
val path_len : t -> src:int -> dst:int -> int

(** [check_component t c] rejects components the topology does not
    have (any component on a flat mesh or torus, out-of-range
    indices) with the exact complaint. *)
val check_component : t -> component -> (unit, string) result

(** [hosts_of t c] is the host set a component encloses: a rack's or
    pod's members, an edge switch's rack.  Aggregation and core
    switches enclose no hosts ([[]]); so does any invalid component. *)
val hosts_of : t -> component -> int list

(** [cut_pairs t c] is every host pair [(a, b)], [a < b], whose
    deterministic route crosses [c] — the exact blast radius of
    killing that component.  Routing is static (no adaptive reroute):
    a pair is cut even if the physical graph still has another path.
    [Pod]/[Rack] components cut every pair with at least one endpoint
    inside (the enclosure loses power, edge switches included). *)
val cut_pairs : t -> component -> (int * int) list

(** [severed_hosts t c] is the hosts that lose {e all} connectivity
    when [c] dies — their only uplink goes through it.  An edge
    switch severs its rack; a pod or rack severs its members;
    aggregation and core switches sever nobody (other routes exist
    for each host, just not for each pair). *)
val severed_hosts : t -> component -> int list

(** [intra_pairs t c] is every host pair wholly inside the component —
    the link set a [degrade pod p] spec applies to. *)
val intra_pairs : t -> component -> (int * int) list

val spec_to_string : spec -> string

(** [spec_of_string s] parses ["flat"], ["fat-tree:K"], ["torus:XxY"]
    or ["torus:XxYxZ"]; total, for CLI flags. *)
val spec_of_string : string -> (spec, string) result
