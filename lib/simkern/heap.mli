(** Mutable binary min-heap, used as the simulator's event queue.

    The ordering function is supplied at creation; ties are broken by
    insertion order only if the ordering function encodes them (the engine
    keys events by [(time, sequence)] for a deterministic total order). *)

type 'a t

(** [create ~compare] returns an empty heap ordered by [compare]. *)
val create : compare:('a -> 'a -> int) -> 'a t

val length : 'a t -> int
val is_empty : 'a t -> bool

(** [push h x] inserts [x]. *)
val push : 'a t -> 'a -> unit

(** [peek h] returns the minimum element without removing it. *)
val peek : 'a t -> 'a option

(** [pop h] removes and returns the minimum element. *)
val pop : 'a t -> 'a option

(** [clear h] removes every element. *)
val clear : 'a t -> unit

(** [filter_in_place h ~keep] drops every element for which [keep] is
    false and restores the heap invariant in O(n) (Floyd heapify). The
    pop order of the survivors is unchanged (the ordering function is a
    total order). Used by the engine to compact cancelled-event
    tombstones. *)
val filter_in_place : 'a t -> keep:('a -> bool) -> unit

(** [to_list h] returns the elements in unspecified order. *)
val to_list : 'a t -> 'a list
