(** Simulated processes.

    A process is an OCaml 5 fiber driven by the engine's event loop. Inside
    a process, blocking operations ([sleep], [suspend], and everything in
    {!Mailbox} / {!Ivar}) are implemented with effects, so process code is
    written in direct style — exactly like the MPI programs and daemons it
    models.

    Control operations mirror what the FCI daemons of the paper perform on
    the application under test through a debugger:
    - [kill] is the [halt] fault action: the fiber is discontinued with
      {!Killed}, so [Fun.protect] finalizers run and the process exits with
      reason [Killed] (an {e abnormal} exit, triggering [onerror]);
    - [freeze] / [unfreeze] are [stop] / [continue]: a frozen process stops
      advancing at its next suspension point and buffers wake-ups until it
      is unfrozen.

    Scheduling model: a process runs atomically between suspension points;
    wake-ups are delivered as engine events at the current instant, in
    deterministic order. *)

type t

(** Raised inside a fiber being killed. Do not catch it without
    re-raising. *)
exception Killed

type exit_reason =
  | Exit_normal  (** the body returned *)
  | Exit_killed  (** the process was [kill]ed *)
  | Exit_crashed of exn  (** the body raised *)

type state =
  | Embryo  (** spawned, first step not yet executed *)
  | Running  (** executing or scheduled to resume *)
  | Waiting  (** blocked on a suspension *)
  | Exited of exit_reason

val pp_exit_reason : Format.formatter -> exit_reason -> unit
val pp_state : Format.formatter -> state -> unit

(** [spawn engine ?region ?name body] creates a process whose first step
    runs at the current instant (after already-scheduled events).
    [region] pins the start event's queue shard (see
    {!Engine.schedule}); {!Simos.Cluster} passes the host id so a host's
    processes live in that host's shard. *)
val spawn : Engine.t -> ?region:int -> ?name:string -> (unit -> unit) -> t

val pid : t -> int
val name : t -> string
val engine : t -> Engine.t
val state : t -> state

(** [is_alive p] is true unless [p] has exited. *)
val is_alive : t -> bool

val is_frozen : t -> bool

(** [kill p] terminates [p] (idempotent). If [p] is blocked, its fiber is
    discontinued immediately (at the current instant); if it is running,
    it dies at its next suspension point. *)
val kill : t -> unit

(** [freeze p] suspends progress of [p] (idempotent), like [SIGSTOP]. *)
val freeze : t -> unit

(** [unfreeze p] resumes a frozen process; buffered wake-ups are delivered
    in order. *)
val unfreeze : t -> unit

(** [on_exit p hook] registers [hook], called once with the exit reason
    when [p] exits. Hooks run in the scheduler context and must not block;
    if [p] has already exited the hook is called immediately. *)
val on_exit : t -> (exit_reason -> unit) -> unit

(** {2 Operations usable only inside a process} *)

(** [self ()] is the current process. *)
val self : unit -> t

(** [sleep dt] blocks for [dt] simulated seconds. *)
val sleep : float -> unit

(** [yield ()] reschedules the current process behind pending same-instant
    events. *)
val yield : unit -> unit

(** [suspend register] blocks until the waker passed to [register] is
    invoked with a value. The waker returns [true] iff the value was
    accepted (a process killed or already woken rejects it), letting
    callers re-route a rejected value. The waker may be invoked from any
    context, at most one acceptance occurs. *)
val suspend : (('a -> bool) -> unit) -> 'a

(** [join p] blocks until [p] exits and returns its exit reason. Returns
    immediately if [p] already exited. *)
val join : t -> exit_reason
