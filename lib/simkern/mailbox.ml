type 'a t = {
  messages : 'a Queue.t;
  mutable waiters : ('a -> bool) list;  (* oldest first *)
}

let create () = { messages = Queue.create (); waiters = [] }

let send mb v =
  (* Offer to waiters in arrival order; a waiter returns false if its
     process died or was already woken, in which case the message goes to
     the next one. *)
  let rec offer = function
    | [] ->
        mb.waiters <- [];
        Queue.push v mb.messages
    | waker :: rest -> if waker v then mb.waiters <- rest else offer rest
  in
  offer mb.waiters

let try_recv mb = Queue.take_opt mb.messages

let recv mb =
  match Queue.take_opt mb.messages with
  | Some v -> v
  | None -> Proc.suspend (fun waker -> mb.waiters <- mb.waiters @ [ waker ])

let recv_timeout mb ~timeout =
  match Queue.take_opt mb.messages with
  | Some v -> Some v
  | None ->
      let eng = Proc.engine (Proc.self ()) in
      Proc.suspend (fun waker ->
          (* Cancel the timer once a message wins, so satisfied timeouts
             become heap tombstones (compacted) instead of live no-op
             events that keep the queue busy until they fire. *)
          let timer = ref None in
          mb.waiters <-
            mb.waiters
            @ [
                (fun v ->
                  let woke = waker (Some v) in
                  if woke then Option.iter Engine.cancel !timer;
                  woke);
              ];
          timer := Some (Engine.schedule eng ~delay:timeout (fun () -> ignore (waker None))))

let length mb = Queue.length mb.messages

let is_empty mb = Queue.is_empty mb.messages

let clear mb = Queue.clear mb.messages
