type event_state = Pending | Cancelled | Done

type event = {
  time : float;
  seq : int;
  region : int;  (* shard index, in [0, Array.length owner.shards) *)
  thunk : unit -> unit;
  mutable state : event_state;
  owner : t;
}

(* A merge-heap entry advertises that [m_shard]'s head was the event with
   key [(m_time, m_seq)] when the entry was pushed. Entries are lazy:
   when the shard head has moved on (the event was popped, compacted
   away, or superseded by a smaller push that got its own entry) the
   entry is stale and is discarded on contact. Sequence numbers are
   globally unique, so matching [m_seq] against the head is exact. *)
and merge_entry = { m_time : float; m_seq : int; m_shard : int }

and shard = { s_heap : event Heap.t }

and t = {
  mutable now : float;
  mutable next_seq : int;  (* stamped globally, across all shards *)
  mutable next_pid : int;
  mutable halted : bool;
  shards : shard array;
  merge : merge_entry Heap.t;  (* unused when there is a single shard *)
  mutable current_region : int;  (* region of the event being executed *)
  mutable live : int;  (* scheduled, not yet executed or cancelled *)
  mutable tombstones : int;  (* cancelled events still sitting in the queues *)
  mutable total_events : int;  (* live + tombstones actually enqueued *)
  rng : Rng.t;
  trace : Trace.t;
}

type handle = event

let compare_events a b =
  let c = Float.compare a.time b.time in
  if c <> 0 then c else Int.compare a.seq b.seq

(* Sequence numbers are globally unique, so [(time, seq)] is already a
   total order; the shard index only documents the merge key. *)
let compare_entries a b =
  let c = Float.compare a.m_time b.m_time in
  if c <> 0 then c
  else
    let c = Int.compare a.m_seq b.m_seq in
    if c <> 0 then c else Int.compare a.m_shard b.m_shard

let create ?(seed = 1L) ?trace_level ?(regions = 1) () =
  if regions < 1 then
    invalid_arg (Printf.sprintf "Engine.create: regions must be >= 1 (got %d)" regions);
  {
    now = 0.0;
    next_seq = 0;
    next_pid = 0;
    halted = false;
    shards = Array.init regions (fun _ -> { s_heap = Heap.create ~compare:compare_events });
    merge = Heap.create ~compare:compare_entries;
    current_region = 0;
    live = 0;
    tombstones = 0;
    total_events = 0;
    rng = Rng.create seed;
    trace = Trace.create ?level:trace_level ();
  }

(* Shard count for a cluster of [hosts] hosts: roughly sqrt so shard
   heaps and the merge heap grow together, capped so tiny runs keep a
   single queue and huge ones do not fragment into thousands. *)
let recommended_regions ~hosts =
  if hosts <= 16 then 1
  else
    let rec ceil_sqrt i = if i * i >= hosts then i else ceil_sqrt (i + 1) in
    max 2 (min 128 (ceil_sqrt 1))

let regions t = Array.length t.shards

let current_region t = t.current_region

let now t = t.now
let rng t = t.rng
let trace t = t.trace

let record ?level t ~source ~event detail =
  Trace.record ?level t.trace ~time:t.now ~source ~event detail

let record_lazy ?level t ~source ~event f =
  Trace.record_lazy ?level t.trace ~time:t.now ~source ~event f

let record_fmt ?level t ~source ~event fmt =
  Trace.record_fmt ?level t.trace ~time:t.now ~source ~event fmt

let fresh_pid t =
  let pid = t.next_pid in
  t.next_pid <- t.next_pid + 1;
  pid

let entry_of ev = { m_time = ev.time; m_seq = ev.seq; m_shard = ev.region }

let push_event t ev =
  let sh = t.shards.(ev.region) in
  Heap.push sh.s_heap ev;
  t.total_events <- t.total_events + 1;
  if Array.length t.shards > 1 then
    (* Only a new shard minimum needs advertising; otherwise the entry
       already covering the head also covers this deeper event. *)
    match Heap.peek sh.s_heap with
    | Some head when head == ev -> Heap.push t.merge (entry_of ev)
    | Some _ | None -> ()

(* Discard stale merge entries until the top matches some shard's head;
   that head is then the global minimum (every non-empty shard keeps an
   entry matching its head, and the merge heap returns the least). *)
let rec peek_min t =
  if Array.length t.shards = 1 then Heap.peek t.shards.(0).s_heap
  else
    match Heap.peek t.merge with
    | None -> None
    | Some m -> (
        match Heap.peek t.shards.(m.m_shard).s_heap with
        | Some head when head.seq = m.m_seq -> Some head
        | Some _ | None ->
            ignore (Heap.pop t.merge);
            peek_min t)

let pop_min t =
  match peek_min t with
  | None -> None
  | Some _ when Array.length t.shards = 1 ->
      t.total_events <- t.total_events - 1;
      Heap.pop t.shards.(0).s_heap
  | Some _ ->
      let m = Option.get (Heap.pop t.merge) in
      let sh = t.shards.(m.m_shard) in
      let ev = Option.get (Heap.pop sh.s_heap) in
      t.total_events <- t.total_events - 1;
      (match Heap.peek sh.s_heap with
      | Some head -> Heap.push t.merge (entry_of head)
      | None -> ());
      Some ev

let schedule_at ?region t ~time f =
  if time < t.now then
    invalid_arg
      (Printf.sprintf "Engine.schedule_at: time %g is in the past (now %g)" time t.now);
  let region =
    match region with
    | None -> t.current_region
    | Some r ->
        if r < 0 then
          invalid_arg
            (Printf.sprintf "Engine.schedule: region must be >= 0 (got %d)" r);
        r mod Array.length t.shards
  in
  let ev = { time; seq = t.next_seq; region; thunk = f; state = Pending; owner = t } in
  t.next_seq <- t.next_seq + 1;
  push_event t ev;
  t.live <- t.live + 1;
  ev

let schedule ?region t ?(delay = 0.0) f =
  if delay < 0.0 then invalid_arg "Engine.schedule: negative delay";
  schedule_at ?region t ~time:(t.now +. delay) f

(* Long runs cancel many timeouts (every satisfied [recv_timeout] leaves
   one behind); tombstones degrade push/pop, so once they are the
   majority of a non-trivial queue we rebuild the shards without them.
   The merge heap is rebuilt from the surviving heads, which also drops
   any stale entries it accumulated. *)
let compact_threshold = 64

let compact t =
  Array.iter
    (fun sh -> Heap.filter_in_place sh.s_heap ~keep:(fun ev -> ev.state = Pending))
    t.shards;
  t.total_events <- t.live;
  t.tombstones <- 0;
  if Array.length t.shards > 1 then begin
    Heap.clear t.merge;
    Array.iter
      (fun sh ->
        match Heap.peek sh.s_heap with
        | Some head -> Heap.push t.merge (entry_of head)
        | None -> ())
      t.shards
  end

let cancel ev =
  match ev.state with
  | Cancelled | Done -> ()
  | Pending ->
      ev.state <- Cancelled;
      let t = ev.owner in
      t.live <- t.live - 1;
      t.tombstones <- t.tombstones + 1;
      let size = t.total_events in
      if size >= compact_threshold && t.tombstones > size / 2 then compact t

(* Move a pending event to a new time, reusing its sequence number: the
   replacement occupies exactly the ordering slot the original would have
   had if it had been scheduled at [time] in the first place, so a
   retimed run stays byte-identical to one that scheduled the new time
   from scratch (same-instant ties break on seq). The original is left
   behind as a tombstone; sharing its seq is harmless — the merge heap's
   lazy entries resolve against whichever physical event heads the shard,
   and both resolutions are handled (tombstone pop, or actual run). *)
let retime h ~time =
  let t = h.owner in
  (match h.state with
  | Pending -> ()
  | Cancelled | Done -> invalid_arg "Engine.retime: event is no longer pending");
  if time < t.now then
    invalid_arg
      (Printf.sprintf "Engine.retime: time %g is in the past (now %g)" time t.now);
  if time = h.time then h
  else begin
    h.state <- Cancelled;
    t.tombstones <- t.tombstones + 1;
    let ev =
      { time; seq = h.seq; region = h.region; thunk = h.thunk; state = Pending; owner = t }
    in
    push_event t ev;
    ev
  end

let pending t = t.live

let queue_size t = t.total_events

let run ?(until = infinity) ?stop_before t =
  t.halted <- false;
  let rec loop () =
    if t.halted then `Halted
    else
      match peek_min t with
      | None -> `Quiescent
      | Some ev when ev.time > until ->
          t.now <- until;
          `Deadline
      | Some ev
        when (match stop_before with Some h -> ev == h | None -> false)
             && ev.state = Pending ->
          (* The breakpoint event stays queued: the caller can retime it,
             fork the process, or step over it with [run_one]. *)
          `Breakpoint
      | Some _ ->
          let ev = Option.get (pop_min t) in
          (match ev.state with
          | Cancelled -> t.tombstones <- t.tombstones - 1
          | Done -> ()
          | Pending ->
              ev.state <- Done;
              t.live <- t.live - 1;
              t.now <- ev.time;
              t.current_region <- ev.region;
              ev.thunk ());
          loop ()
  in
  loop ()

let run_one t =
  let rec go () =
    match pop_min t with
    | None -> false
    | Some ev -> (
        match ev.state with
        | Cancelled ->
            t.tombstones <- t.tombstones - 1;
            go ()
        | Done -> go ()
        | Pending ->
            ev.state <- Done;
            t.live <- t.live - 1;
            t.now <- ev.time;
            t.current_region <- ev.region;
            ev.thunk ();
            true)
  in
  go ()

let halt t = t.halted <- true

(* ------------------------------------------------------------------ *)
(* Snapshot / restore

   A snapshot captures the engine's own bookkeeping: clock, counters,
   RNG state, trace position, and every queued event together with the
   state it had at capture. [restore] rebuilds the shard heaps from that
   set and rewinds the scalars. Event thunks are shared, not copied —
   the engine cannot rewind what a thunk's closure points at (process
   continuations, protocol state), so restore is only sound when that
   external state is itself back at the capture point: either the events
   are self-contained, or the whole process was forked at the snapshot
   (the explorer's scheme — fork gives copy-on-write of everything else,
   and the snapshot contract documents exactly what the engine half
   covers). *)

type snapshot = {
  snap_now : float;
  snap_seq : int;
  snap_pid : int;
  snap_halted : bool;
  snap_region : int;
  snap_rng : Rng.t;
  snap_events : (event * event_state) array;
  snap_trace : int;
}

let snapshot t =
  let evs = ref [] in
  Array.iter
    (fun sh -> List.iter (fun ev -> evs := (ev, ev.state) :: !evs) (Heap.to_list sh.s_heap))
    t.shards;
  {
    snap_now = t.now;
    snap_seq = t.next_seq;
    snap_pid = t.next_pid;
    snap_halted = t.halted;
    snap_region = t.current_region;
    snap_rng = Rng.copy t.rng;
    snap_events = Array.of_list !evs;
    snap_trace = Trace.length t.trace;
  }

let restore t s =
  Array.iter (fun sh -> Heap.clear sh.s_heap) t.shards;
  Heap.clear t.merge;
  t.live <- 0;
  t.tombstones <- 0;
  t.total_events <- 0;
  Array.iter
    (fun (ev, st) ->
      ev.state <- st;
      match st with
      | Pending ->
          push_event t ev;
          t.live <- t.live + 1
      | Cancelled ->
          push_event t ev;
          t.tombstones <- t.tombstones + 1
      | Done -> ())
    s.snap_events;
  t.now <- s.snap_now;
  t.next_seq <- s.snap_seq;
  t.next_pid <- s.snap_pid;
  t.halted <- s.snap_halted;
  t.current_region <- s.snap_region;
  Rng.assign t.rng s.snap_rng;
  Trace.truncate t.trace s.snap_trace

let snapshot_events s = Array.length s.snap_events

let snapshot_words s = Obj.reachable_words (Obj.repr s)
