type event = {
  time : float;
  seq : int;
  thunk : unit -> unit;
  mutable cancelled : bool;
}

type handle = event

type t = {
  mutable now : float;
  mutable next_seq : int;
  mutable next_pid : int;
  mutable halted : bool;
  queue : event Heap.t;
  rng : Rng.t;
  trace : Trace.t;
}

let compare_events a b =
  let c = Float.compare a.time b.time in
  if c <> 0 then c else Int.compare a.seq b.seq

let create ?(seed = 1L) () =
  {
    now = 0.0;
    next_seq = 0;
    next_pid = 0;
    halted = false;
    queue = Heap.create ~compare:compare_events;
    rng = Rng.create seed;
    trace = Trace.create ();
  }

let now t = t.now
let rng t = t.rng
let trace t = t.trace

let record t ~source ~event detail = Trace.record t.trace ~time:t.now ~source ~event detail

let record_fmt t ~source ~event fmt = Printf.ksprintf (record t ~source ~event) fmt

let fresh_pid t =
  let pid = t.next_pid in
  t.next_pid <- t.next_pid + 1;
  pid

let schedule_at t ~time f =
  if time < t.now then
    invalid_arg
      (Printf.sprintf "Engine.schedule_at: time %g is in the past (now %g)" time t.now);
  let ev = { time; seq = t.next_seq; thunk = f; cancelled = false } in
  t.next_seq <- t.next_seq + 1;
  Heap.push t.queue ev;
  ev

let schedule t ?(delay = 0.0) f =
  if delay < 0.0 then invalid_arg "Engine.schedule: negative delay";
  schedule_at t ~time:(t.now +. delay) f

let cancel ev = ev.cancelled <- true

let pending t =
  List.fold_left (fun acc ev -> if ev.cancelled then acc else acc + 1) 0 (Heap.to_list t.queue)

let run ?(until = infinity) t =
  t.halted <- false;
  let rec loop () =
    if t.halted then `Halted
    else
      match Heap.peek t.queue with
      | None -> `Quiescent
      | Some ev when ev.time > until ->
          t.now <- until;
          `Deadline
      | Some _ ->
          let ev = Option.get (Heap.pop t.queue) in
          if not ev.cancelled then begin
            t.now <- ev.time;
            ev.thunk ()
          end;
          loop ()
  in
  loop ()

let halt t = t.halted <- true
