type event_state = Pending | Cancelled | Done

type event = {
  time : float;
  seq : int;
  thunk : unit -> unit;
  mutable state : event_state;
  owner : t;
}

and t = {
  mutable now : float;
  mutable next_seq : int;
  mutable next_pid : int;
  mutable halted : bool;
  queue : event Heap.t;
  mutable live : int;  (* scheduled, not yet executed or cancelled *)
  mutable tombstones : int;  (* cancelled events still sitting in the queue *)
  rng : Rng.t;
  trace : Trace.t;
}

type handle = event

let compare_events a b =
  let c = Float.compare a.time b.time in
  if c <> 0 then c else Int.compare a.seq b.seq

let create ?(seed = 1L) ?trace_level () =
  {
    now = 0.0;
    next_seq = 0;
    next_pid = 0;
    halted = false;
    queue = Heap.create ~compare:compare_events;
    live = 0;
    tombstones = 0;
    rng = Rng.create seed;
    trace = Trace.create ?level:trace_level ();
  }

let now t = t.now
let rng t = t.rng
let trace t = t.trace

let record ?level t ~source ~event detail =
  Trace.record ?level t.trace ~time:t.now ~source ~event detail

let record_lazy ?level t ~source ~event f =
  Trace.record_lazy ?level t.trace ~time:t.now ~source ~event f

let record_fmt ?level t ~source ~event fmt =
  Trace.record_fmt ?level t.trace ~time:t.now ~source ~event fmt

let fresh_pid t =
  let pid = t.next_pid in
  t.next_pid <- t.next_pid + 1;
  pid

let schedule_at t ~time f =
  if time < t.now then
    invalid_arg
      (Printf.sprintf "Engine.schedule_at: time %g is in the past (now %g)" time t.now);
  let ev = { time; seq = t.next_seq; thunk = f; state = Pending; owner = t } in
  t.next_seq <- t.next_seq + 1;
  Heap.push t.queue ev;
  t.live <- t.live + 1;
  ev

let schedule t ?(delay = 0.0) f =
  if delay < 0.0 then invalid_arg "Engine.schedule: negative delay";
  schedule_at t ~time:(t.now +. delay) f

(* Long runs cancel many timeouts (every satisfied [recv_timeout] leaves
   one behind); tombstones degrade push/pop, so once they are the
   majority of a non-trivial queue we rebuild it without them. *)
let compact_threshold = 64

let compact t =
  Heap.filter_in_place t.queue ~keep:(fun ev -> ev.state = Pending);
  t.tombstones <- 0

let cancel ev =
  match ev.state with
  | Cancelled | Done -> ()
  | Pending ->
      ev.state <- Cancelled;
      let t = ev.owner in
      t.live <- t.live - 1;
      t.tombstones <- t.tombstones + 1;
      let size = Heap.length t.queue in
      if size >= compact_threshold && t.tombstones > size / 2 then compact t

let pending t = t.live

let queue_size t = Heap.length t.queue

let run ?(until = infinity) t =
  t.halted <- false;
  let rec loop () =
    if t.halted then `Halted
    else
      match Heap.peek t.queue with
      | None -> `Quiescent
      | Some ev when ev.time > until ->
          t.now <- until;
          `Deadline
      | Some _ ->
          let ev = Option.get (Heap.pop t.queue) in
          (match ev.state with
          | Cancelled -> t.tombstones <- t.tombstones - 1
          | Done -> ()
          | Pending ->
              ev.state <- Done;
              t.live <- t.live - 1;
              t.now <- ev.time;
              ev.thunk ());
          loop ()
  in
  loop ()

let halt t = t.halted <- true
