(** Structured execution trace.

    The paper distinguishes non-terminating runs (rollback/crash cycles)
    from buggy runs (freezes) by analysing the execution trace (§5). Every
    protocol component records its externally observable events here, and
    {!Experiments} classifies outcomes from the same information.

    Event names are free-form strings, but the protocol stacks use a
    stable vocabulary that {!Experiments.Trace_analysis} relies on:
    - rollback recovery (Vcl / V2): ["failure-detected"],
      ["recovery-start"], ["recovery-complete"], ["rank-resumed"],
      ["wave-commit"], ["commit-rank"], ["dispatcher-confused"];
    - active replication (mpirep): ["replica-failover"] (a replica died
      and a live sibling carries on, no rollback), ["replica-respawn"]
      (a fresh replica rejoined after a state transfer from a live
      sibling), ["replication-exhausted"] (every replica of one logical
      rank died inside the failover window — the run is lost);
    - fault injection: ["halt"] for every FAIL [halt] executed.

    Recording is the simulator's hottest allocation path, so the trace
    is tuned for campaigns that never print it: entries live in a
    growable array (no per-entry list cell), detail payloads can be
    deferred closures rendered only when the trace is actually read
    ({!entries}, {!find_all}, {!last}, {!pp}), and a record-level gate
    lets quantitative campaigns drop per-message protocol chatter
    ({!Full}-level events) while keeping the milestone events the
    analyses above need ({!Summary} level). *)

(** Verbosity: a trace created at [Summary] keeps only milestone events;
    [Full] (the default) keeps everything. An entry recorded with
    [~level:Full] is dropped by a [Summary] trace. *)
type level = Summary | Full

val level_name : level -> string

(** [level_of_string s] parses ["summary"] / ["full"]. *)
val level_of_string : string -> level option

type entry = {
  time : float;  (** simulated time of the event *)
  source : string;  (** component that recorded it, e.g. ["dispatcher"] *)
  event : string;  (** event kind, e.g. ["failure-detected"] *)
  detail : string;  (** free-form payload *)
}

type t

(** [create ?level ()] returns an empty trace keeping events up to
    [level] (default {!Full}). *)
val create : ?level:level -> unit -> t

(** [level t] is the trace's record-level gate. *)
val level : t -> level

(** [enabled t lvl] is [true] iff an event recorded at [lvl] is kept. *)
val enabled : t -> level -> bool

(** [record ?level t ~time ~source ~event detail] appends an entry
    (dropped when [level] — default {!Summary}, i.e. always kept — is
    gated out by the trace). *)
val record : ?level:level -> t -> time:float -> source:string -> event:string -> string -> unit

(** [record_lazy ?level t ~time ~source ~event f] appends an entry whose
    detail is [f ()], rendered (once) only if the trace is read — the
    allocation-light form for hot-path events. [f] must be pure: it may
    run long after the simulated moment. Rendering is safe when several
    domains read the same completed trace concurrently: the memoisation
    is guarded, so [f] runs exactly once. *)
val record_lazy :
  ?level:level -> t -> time:float -> source:string -> event:string -> (unit -> string) -> unit

(** [record_fmt ?level t ~time ~source ~event fmt ...] is {!record} with a
    printf-style detail, e.g.
    [record_fmt t ~time ~source:"dispatcher" ~event:"launch" "rank %d" r].
    When the entry is gated out the format arguments are consumed without
    formatting (no allocation). *)
val record_fmt :
  ?level:level ->
  t ->
  time:float ->
  source:string ->
  event:string ->
  ('a, unit, string, unit) format4 ->
  'a

(** [entries t] returns all entries in recording order. *)
val entries : t -> entry list

(** [events t] returns the [(source, event)] pair of every entry in
    recording order, without rendering detail payloads — the cheap
    projection {!Explore} hashes into a run's coverage signature. *)
val events : t -> (string * string) list

(** [length t] is the number of entries. *)
val length : t -> int

(** [count t ~event] counts entries of the given kind. *)
val count : t -> event:string -> int

(** [find_all t ~event] returns entries of the given kind, oldest first. *)
val find_all : t -> event:string -> entry list

(** [last t ~event] returns the most recent entry of the given kind. *)
val last : t -> event:string -> entry option

(** [last_time t ~event] is the time of the most recent entry of the given
    kind, if any. *)
val last_time : t -> event:string -> float option

(** [clear t] drops all entries. *)
val clear : t -> unit

(** [truncate t n] drops every entry recorded after the first [n] —
    the restore half of a snapshot that remembered [length t]. Raises
    [Invalid_argument] if [n] is negative or beyond the current
    length. *)
val truncate : t -> int -> unit

(** [pp ppf t] prints the trace, one entry per line. *)
val pp : Format.formatter -> t -> unit

val pp_entry : Format.formatter -> entry -> unit
