(** Structured execution trace.

    The paper distinguishes non-terminating runs (rollback/crash cycles)
    from buggy runs (freezes) by analysing the execution trace (§5). Every
    protocol component records its externally observable events here, and
    {!Experiments} classifies outcomes from the same information.

    Event names are free-form strings, but the protocol stacks use a
    stable vocabulary that {!Experiments.Trace_analysis} relies on:
    - rollback recovery (Vcl / V2): ["failure-detected"],
      ["recovery-start"], ["recovery-complete"], ["rank-resumed"],
      ["wave-commit"], ["commit-rank"], ["dispatcher-confused"];
    - active replication (mpirep): ["replica-failover"] (a replica died
      and a live sibling carries on, no rollback), ["replica-respawn"]
      (a fresh replica rejoined after a state transfer from a live
      sibling), ["replication-exhausted"] (every replica of one logical
      rank died inside the failover window — the run is lost);
    - fault injection: ["halt"] for every FAIL [halt] executed. *)

type entry = {
  time : float;  (** simulated time of the event *)
  source : string;  (** component that recorded it, e.g. ["dispatcher"] *)
  event : string;  (** event kind, e.g. ["failure-detected"] *)
  detail : string;  (** free-form payload *)
}

type t

(** [create ()] returns an empty trace. *)
val create : unit -> t

(** [record t ~time ~source ~event detail] appends an entry. *)
val record : t -> time:float -> source:string -> event:string -> string -> unit

(** [record_fmt t ~time ~source ~event fmt ...] is {!record} with a
    printf-style detail, e.g.
    [record_fmt t ~time ~source:"dispatcher" ~event:"launch" "rank %d" r]. *)
val record_fmt :
  t -> time:float -> source:string -> event:string -> ('a, unit, string, unit) format4 -> 'a

(** [entries t] returns all entries in recording order. *)
val entries : t -> entry list

(** [length t] is the number of entries. *)
val length : t -> int

(** [count t ~event] counts entries of the given kind. *)
val count : t -> event:string -> int

(** [find_all t ~event] returns entries of the given kind, oldest first. *)
val find_all : t -> event:string -> entry list

(** [last t ~event] returns the most recent entry of the given kind. *)
val last : t -> event:string -> entry option

(** [last_time t ~event] is the time of the most recent entry of the given
    kind, if any. *)
val last_time : t -> event:string -> float option

(** [clear t] drops all entries. *)
val clear : t -> unit

(** [pp ppf t] prints the trace, one entry per line. *)
val pp : Format.formatter -> t -> unit

val pp_entry : Format.formatter -> entry -> unit
