type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }

let copy t = { state = t.state }

let assign dst src = dst.state <- src.state

(* splitmix64 step: advance by the golden gamma, then mix. *)
let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int64 = next_int64

let split t =
  let seed = next_int64 t in
  { state = seed }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let mask = Int64.shift_right_logical (next_int64 t) 1 in
  Int64.to_int (Int64.rem mask (Int64.of_int bound))

let int_in_range t ~lo ~hi =
  if hi < lo then invalid_arg "Rng.int_in_range: hi < lo";
  lo + int t (hi - lo + 1)

let float t bound =
  (* 53 uniform mantissa bits scaled to [0, bound). *)
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits /. 9007199254740992.0 *. bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

let exponential t ~mean =
  let u = float t 1.0 in
  let u = if u <= 0.0 then 1e-12 else u in
  -.mean *. log u

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose t l =
  match l with
  | [] -> invalid_arg "Rng.choose: empty list"
  | _ -> List.nth l (int t (List.length l))
