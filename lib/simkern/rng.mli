(** Deterministic pseudo-random number generator (splitmix64).

    Every stochastic choice in the simulator draws from an explicit [Rng.t]
    so that a whole experiment is reproducible from its seed. [split]
    derives an independent stream, which lets concurrent components draw
    without perturbing each other's sequences. *)

type t

(** [create seed] returns a generator seeded with [seed]. *)
val create : int64 -> t

(** [split t] returns a new generator whose stream is independent of the
    subsequent outputs of [t]. *)
val split : t -> t

(** [copy t] duplicates the generator state. *)
val copy : t -> t

(** [assign dst src] overwrites [dst]'s state with [src]'s, leaving
    [src] untouched — the restore half of a {!copy}-based snapshot,
    usable on a generator other components already hold a reference
    to. *)
val assign : t -> t -> unit

(** [int64 t] returns the next raw 64-bit output. *)
val int64 : t -> int64

(** [int t bound] returns a uniform integer in [\[0, bound)]. Raises
    [Invalid_argument] if [bound <= 0]. *)
val int : t -> int -> int

(** [int_in_range t ~lo ~hi] returns a uniform integer in [\[lo, hi\]]
    (inclusive). Raises [Invalid_argument] if [hi < lo]. *)
val int_in_range : t -> lo:int -> hi:int -> int

(** [float t bound] returns a uniform float in [\[0, bound)]. *)
val float : t -> float -> float

(** [bool t] returns a uniform boolean. *)
val bool : t -> bool

(** [exponential t ~mean] draws from an exponential distribution. *)
val exponential : t -> mean:float -> float

(** [shuffle t a] shuffles [a] in place (Fisher–Yates). *)
val shuffle : t -> 'a array -> unit

(** [choose t l] picks a uniform element of [l]. Raises
    [Invalid_argument] on the empty list. *)
val choose : t -> 'a list -> 'a
