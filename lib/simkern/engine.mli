(** Discrete-event simulation engine.

    The engine owns the virtual clock, a deterministic event queue and the
    experiment-wide RNG and trace. Events scheduled for the same instant
    execute in scheduling order (the queue is keyed by [(time, sequence)]),
    so a run is a pure function of the seed. *)

type t

(** Cancellable handle on a scheduled event. *)
type handle

(** [create ?seed ?trace_level ()] returns a fresh engine with its clock
    at [0.]. [trace_level] gates what the engine trace records (default
    {!Trace.Full}); campaigns that only read aggregates run at
    {!Trace.Summary} to skip per-message chatter. *)
val create : ?seed:int64 -> ?trace_level:Trace.level -> unit -> t

(** [now t] is the current simulated time, in seconds. *)
val now : t -> float

(** [rng t] is the engine RNG. Components needing an independent stream
    should [Rng.split] it once at setup. *)
val rng : t -> Rng.t

(** [trace t] is the engine-wide execution trace. *)
val trace : t -> Trace.t

(** [record ?level t ~source ~event detail] records a trace entry at
    [now t] (see {!Trace.record}). *)
val record : ?level:Trace.level -> t -> source:string -> event:string -> string -> unit

(** [record_lazy ?level t ~source ~event f] records an entry whose
    detail is rendered only if the trace is read (see
    {!Trace.record_lazy}) — use for hot-path events. *)
val record_lazy :
  ?level:Trace.level -> t -> source:string -> event:string -> (unit -> string) -> unit

(** [record_fmt ?level t ~source ~event fmt ...] is {!record} with a
    printf-style detail (see {!Trace.record_fmt}). *)
val record_fmt :
  ?level:Trace.level ->
  t ->
  source:string ->
  event:string ->
  ('a, unit, string, unit) format4 ->
  'a

(** [fresh_pid t] returns a process identifier unique within this engine. *)
val fresh_pid : t -> int

(** [schedule t ?delay f] schedules [f] to run at [now t +. delay]
    (default [0.], i.e. after all previously scheduled events for the
    current instant). Raises [Invalid_argument] on negative delay. *)
val schedule : t -> ?delay:float -> (unit -> unit) -> handle

(** [schedule_at t ~time f] schedules [f] at absolute [time]. Raises
    [Invalid_argument] if [time] is in the past. *)
val schedule_at : t -> time:float -> (unit -> unit) -> handle

(** [cancel h] prevents the event from running if it has not run yet.
    Cancelled events become queue tombstones; once they outnumber the
    live half of a non-trivial queue the engine compacts them away, so
    long runs with many cancelled timeouts keep O(log live) push/pop. *)
val cancel : handle -> unit

(** [pending t] is the number of not-yet-executed, not-cancelled
    scheduled events. O(1). *)
val pending : t -> int

(** [queue_size t] is the raw event-queue size including
    not-yet-compacted tombstones (diagnostics / tests). *)
val queue_size : t -> int

(** [run ?until t] executes events in order until the queue is empty, the
    engine is halted, or the next event lies beyond [until]; in the latter
    case the clock is advanced to [until]. Returns the reason the loop
    ended. *)
val run : ?until:float -> t -> [ `Quiescent | `Halted | `Deadline ]

(** [halt t] stops a [run] in progress after the current event. *)
val halt : t -> unit
