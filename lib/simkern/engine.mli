(** Discrete-event simulation engine.

    The engine owns the virtual clock, a deterministic event queue and the
    experiment-wide RNG and trace. Events scheduled for the same instant
    execute in scheduling order (the queue is keyed by [(time, sequence)]),
    so a run is a pure function of the seed.

    {2 Region sharding}

    Internally the queue is sharded into per-region heaps (one per
    region, regions typically mapping to simulated hosts or groups of
    hosts) merged by a lowest-[(time, region-head sequence)] tournament.
    Sequence numbers are stamped {e globally}, so the merged execution
    order is identical for every region count — sharding changes where
    events are stored, never when they run, and a fixed-seed run is
    byte-identical at 1 region and at 128. Shard heaps stay small as the
    cluster grows (each holds only its region's events), which is what
    lets one engine carry 10k+ simulated hosts. *)

type t

(** Cancellable handle on a scheduled event. *)
type handle

(** [create ?seed ?trace_level ?regions ()] returns a fresh engine with
    its clock at [0.]. [trace_level] gates what the engine trace records
    (default {!Trace.Full}); campaigns that only read aggregates run at
    {!Trace.Summary} to skip per-message chatter. [regions] (default
    [1]) is the number of event-queue shards; any value yields the same
    execution, larger values keep per-shard heaps small in big clusters.
    Raises [Invalid_argument] if [regions < 1]. *)
val create : ?seed:int64 -> ?trace_level:Trace.level -> ?regions:int -> unit -> t

(** [recommended_regions ~hosts] is a good shard count for a simulation
    of [hosts] hosts: 1 for small clusters, growing roughly as the
    square root of the host count, capped at 128. *)
val recommended_regions : hosts:int -> int

(** [regions t] is the number of event-queue shards. *)
val regions : t -> int

(** [current_region t] is the region of the event currently executing
    (0 outside [run]); it is the default region for new events. *)
val current_region : t -> int

(** [now t] is the current simulated time, in seconds. *)
val now : t -> float

(** [rng t] is the engine RNG. Components needing an independent stream
    should [Rng.split] it once at setup. *)
val rng : t -> Rng.t

(** [trace t] is the engine-wide execution trace. *)
val trace : t -> Trace.t

(** [record ?level t ~source ~event detail] records a trace entry at
    [now t] (see {!Trace.record}). *)
val record : ?level:Trace.level -> t -> source:string -> event:string -> string -> unit

(** [record_lazy ?level t ~source ~event f] records an entry whose
    detail is rendered only if the trace is read (see
    {!Trace.record_lazy}) — use for hot-path events. *)
val record_lazy :
  ?level:Trace.level -> t -> source:string -> event:string -> (unit -> string) -> unit

(** [record_fmt ?level t ~source ~event fmt ...] is {!record} with a
    printf-style detail (see {!Trace.record_fmt}). *)
val record_fmt :
  ?level:Trace.level ->
  t ->
  source:string ->
  event:string ->
  ('a, unit, string, unit) format4 ->
  'a

(** [fresh_pid t] returns a process identifier unique within this engine. *)
val fresh_pid : t -> int

(** [schedule ?region t ?delay f] schedules [f] to run at [now t +. delay]
    (default [0.], i.e. after all previously scheduled events for the
    current instant). [region] places the event's storage (reduced modulo
    the shard count — host ids can be passed directly); it defaults to
    the scheduling event's region, so work stays in the shard of the host
    that spawned it. Raises [Invalid_argument] on negative delay or
    region. *)
val schedule : ?region:int -> t -> ?delay:float -> (unit -> unit) -> handle

(** [schedule_at ?region t ~time f] schedules [f] at absolute [time].
    Raises [Invalid_argument] if [time] is in the past. *)
val schedule_at : ?region:int -> t -> time:float -> (unit -> unit) -> handle

(** [cancel h] prevents the event from running if it has not run yet.
    Cancelled events become queue tombstones; once they outnumber the
    live half of a non-trivial queue the engine compacts them away (all
    shards, rebuilding the merge), so long runs with many cancelled
    timeouts keep O(log live-per-shard) push/pop. *)
val cancel : handle -> unit

(** [pending t] is the number of not-yet-executed, not-cancelled
    scheduled events. O(1). *)
val pending : t -> int

(** [queue_size t] is the raw event-queue size, summed over shards,
    including not-yet-compacted tombstones (diagnostics / tests). *)
val queue_size : t -> int

(** [run ?until ?stop_before t] executes events in order until the queue
    is empty, the engine is halted, the next event lies beyond [until]
    (the clock is then advanced to [until]), or the next live event is
    exactly [stop_before] — the breakpoint event is left queued, so the
    caller can {!retime} it, fork the process, or execute it with
    {!run_one}. Returns the reason the loop ended. *)
val run :
  ?until:float ->
  ?stop_before:handle ->
  t ->
  [ `Quiescent | `Halted | `Deadline | `Breakpoint ]

(** [run_one t] pops and executes exactly the next live event (skipping
    tombstones), advancing the clock to it. Returns [false] on an empty
    queue. Ignores [halt] and deadlines — it is the explorer's precise
    "step over the breakpoint" primitive. *)
val run_one : t -> bool

(** [retime h ~time] moves a pending event to [time], {e reusing its
    sequence number}: the moved event occupies exactly the ordering slot
    it would have had if originally scheduled at [time], so same-instant
    ties still break identically to a from-scratch run — the property
    the explorer's fork scheduler needs when it re-aims a scenario timer
    at a sibling plan's injection delay. Returns the replacement handle
    (or [h] itself when [time] is unchanged); the old handle becomes a
    tombstone. Raises [Invalid_argument] if [h] is no longer pending or
    [time] is in the past. *)
val retime : handle -> time:float -> handle

(** [halt t] stops a [run] in progress after the current event. *)
val halt : t -> unit

(** {2 Snapshot / restore}

    A {!snapshot} captures the engine's own bookkeeping — clock, seq and
    pid counters, RNG state, trace position, and every queued event with
    its capture-time state. {!restore} rebuilds the queue and rewinds the
    scalars. Event thunks are {e shared}, not copied: the engine cannot
    rewind what a closure points at (process continuations, protocol
    state), so restoring inside a live process is only sound when that
    external state is itself back at the capture point — either the
    events are self-contained, or the process was forked at the snapshot
    and the child inherited everything else copy-on-write (the
    explorer's scheme; see docs/EXPLORER.md). *)

type snapshot

(** [snapshot t] captures the engine state (O(queued events)). *)
val snapshot : t -> snapshot

(** [restore t s] rewinds [t] to [s]. May be applied any number of
    times; the snapshot is not consumed. *)
val restore : t -> snapshot -> unit

(** [snapshot_events s] is the number of queued events captured. *)
val snapshot_events : snapshot -> int

(** [snapshot_words s] is the heap footprint of the snapshot in words,
    including what the captured events' closures reach (bench
    diagnostics). *)
val snapshot_words : snapshot -> int
