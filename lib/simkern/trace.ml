type level = Summary | Full

let level_name = function Summary -> "summary" | Full -> "full"

let level_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "summary" -> Some Summary
  | "full" -> Some Full
  | _ -> None

type entry = { time : float; source : string; event : string; detail : string }

(* Detail payloads are rendered lazily: the hot path stores the closure,
   and the first read memoises the string. *)
type detail = Str of string | Deferred of (unit -> string)

type cell = { c_time : float; c_source : string; c_event : string; mutable c_detail : detail }

type t = { mutable cells : cell array; mutable n : int; gate : level }

let dummy_cell = { c_time = 0.0; c_source = ""; c_event = ""; c_detail = Str "" }

let create ?(level = Full) () = { cells = [||]; n = 0; gate = level }

let level t = t.gate

(* Summary-level events pass every gate; Full-level events only a Full
   trace. *)
let enabled t lvl = match lvl with Summary -> true | Full -> t.gate = Full

let push t cell =
  let capacity = Array.length t.cells in
  if t.n = capacity then begin
    let capacity' = if capacity = 0 then 64 else capacity * 2 in
    let cells' = Array.make capacity' dummy_cell in
    Array.blit t.cells 0 cells' 0 t.n;
    t.cells <- cells'
  end;
  t.cells.(t.n) <- cell;
  t.n <- t.n + 1

let record ?(level = Summary) t ~time ~source ~event detail =
  if enabled t level then
    push t { c_time = time; c_source = source; c_event = event; c_detail = Str detail }

let record_lazy ?(level = Summary) t ~time ~source ~event f =
  if enabled t level then
    push t { c_time = time; c_source = source; c_event = event; c_detail = Deferred f }

let record_fmt ?(level = Summary) t ~time ~source ~event fmt =
  if enabled t level then
    Printf.ksprintf
      (fun detail ->
        push t { c_time = time; c_source = source; c_event = event; c_detail = Str detail })
      fmt
  else Printf.ikfprintf (fun () -> ()) () fmt

(* Completed runs are read from several domains at once (parallel
   campaigns, the explorer's shrinker), so the Deferred -> Str
   memoisation must be published safely: double-checked under a mutex,
   the closure runs exactly once and no reader observes a torn cell.
   The lock is per-module, not per-trace — it is only ever taken on the
   cold first-read path, never while recording. *)
let memo_mutex = Mutex.create ()

let render cell =
  let detail =
    match cell.c_detail with
    | Str s -> s
    | Deferred _ ->
        Mutex.lock memo_mutex;
        Fun.protect
          ~finally:(fun () -> Mutex.unlock memo_mutex)
          (fun () ->
            match cell.c_detail with
            | Str s -> s
            | Deferred f ->
                let s = f () in
                cell.c_detail <- Str s;
                s)
  in
  { time = cell.c_time; source = cell.c_source; event = cell.c_event; detail }

let entries t = List.init t.n (fun i -> render t.cells.(i))

let events t = List.init t.n (fun i -> (t.cells.(i).c_source, t.cells.(i).c_event))

let length t = t.n

let count t ~event =
  let c = ref 0 in
  for i = 0 to t.n - 1 do
    if String.equal t.cells.(i).c_event event then incr c
  done;
  !c

let find_all t ~event =
  let acc = ref [] in
  for i = t.n - 1 downto 0 do
    if String.equal t.cells.(i).c_event event then acc := render t.cells.(i) :: !acc
  done;
  !acc

let last t ~event =
  let rec scan i =
    if i < 0 then None
    else if String.equal t.cells.(i).c_event event then Some (render t.cells.(i))
    else scan (i - 1)
  in
  scan (t.n - 1)

let last_time t ~event = Option.map (fun e -> e.time) (last t ~event)

let clear t =
  t.cells <- [||];
  t.n <- 0

let truncate t n =
  if n < 0 || n > t.n then
    invalid_arg (Printf.sprintf "Trace.truncate: length %d out of range 0..%d" n t.n);
  (* Drop the cells so payload closures recorded after the cut are
     collectable. *)
  for i = n to t.n - 1 do
    t.cells.(i) <- dummy_cell
  done;
  t.n <- n

let pp_entry ppf e =
  Format.fprintf ppf "@[<h>%10.3f %-16s %-24s %s@]" e.time e.source e.event e.detail

let pp ppf t =
  Format.pp_open_vbox ppf 0;
  for i = 0 to t.n - 1 do
    Format.fprintf ppf "%a@," pp_entry (render t.cells.(i))
  done;
  Format.pp_close_box ppf ()
