type entry = { time : float; source : string; event : string; detail : string }

type t = { mutable rev_entries : entry list; mutable n : int }

let create () = { rev_entries = []; n = 0 }

let record t ~time ~source ~event detail =
  t.rev_entries <- { time; source; event; detail } :: t.rev_entries;
  t.n <- t.n + 1

let record_fmt t ~time ~source ~event fmt =
  Printf.ksprintf (record t ~time ~source ~event) fmt

let entries t = List.rev t.rev_entries

let length t = t.n

let count t ~event =
  List.fold_left (fun acc e -> if String.equal e.event event then acc + 1 else acc) 0 t.rev_entries

let find_all t ~event = List.filter (fun e -> String.equal e.event event) (entries t)

let last t ~event = List.find_opt (fun e -> String.equal e.event event) t.rev_entries

let last_time t ~event = Option.map (fun e -> e.time) (last t ~event)

let clear t =
  t.rev_entries <- [];
  t.n <- 0

let pp_entry ppf e =
  Format.fprintf ppf "@[<h>%10.3f %-16s %-24s %s@]" e.time e.source e.event e.detail

let pp ppf t =
  Format.pp_open_vbox ppf 0;
  List.iter (fun e -> Format.fprintf ppf "%a@," pp_entry e) (entries t);
  Format.pp_close_box ppf ()
