exception Killed

type exit_reason = Exit_normal | Exit_killed | Exit_crashed of exn

type state = Embryo | Running | Waiting | Exited of exit_reason

type t = {
  pid : int;
  name : string;
  engine : Engine.t;
  mutable state : state;
  mutable doomed : bool;  (* kill requested, not yet taken effect *)
  mutable frozen : bool;
  mutable pending : (unit -> unit) list;  (* wake-ups buffered while frozen, oldest first *)
  mutable canceller : (unit -> unit) option;  (* discontinues the current suspension *)
  mutable exit_hooks : (exit_reason -> unit) list;  (* newest first *)
}

type _ Effect.t += Suspend : (('a -> bool) -> unit) -> 'a Effect.t
type _ Effect.t += Self : t Effect.t

let pp_exit_reason ppf = function
  | Exit_normal -> Format.pp_print_string ppf "normal"
  | Exit_killed -> Format.pp_print_string ppf "killed"
  | Exit_crashed exn -> Format.fprintf ppf "crashed(%s)" (Printexc.to_string exn)

let pp_state ppf = function
  | Embryo -> Format.pp_print_string ppf "embryo"
  | Running -> Format.pp_print_string ppf "running"
  | Waiting -> Format.pp_print_string ppf "waiting"
  | Exited r -> Format.fprintf ppf "exited(%a)" pp_exit_reason r

let pid p = p.pid
let name p = p.name
let engine p = p.engine

let state p = p.state

let is_alive p = match p.state with Exited _ -> false | Embryo | Running | Waiting -> true

let is_frozen p = p.frozen

let finish p reason =
  match p.state with
  | Exited _ -> ()
  | Embryo | Running | Waiting ->
      p.state <- Exited reason;
      p.canceller <- None;
      p.pending <- [];
      let hooks = List.rev p.exit_hooks in
      p.exit_hooks <- [];
      List.iter (fun hook -> hook reason) hooks

(* Deliver a resumption step for [p]. Flags are re-checked at execution
   time, so a kill or freeze issued between scheduling and delivery is
   honoured. *)
let rec deliver p step =
  Engine.schedule p.engine (fun () -> run_step p step) |> ignore

and run_step p step =
  match p.state with
  | Exited _ -> ()
  | Embryo | Running | Waiting ->
      if p.frozen then p.pending <- p.pending @ [ (fun () -> run_step p step) ]
      else begin
        p.state <- Running;
        step ()
      end

let handler p =
  let open Effect.Deep in
  {
    retc = (fun () -> finish p Exit_normal);
    exnc =
      (fun exn ->
        match exn with
        | Killed -> finish p Exit_killed
        | exn -> finish p (Exit_crashed exn));
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | Self -> Some (fun (k : (a, unit) continuation) -> continue k p)
        | Suspend register ->
            Some
              (fun (k : (a, unit) continuation) ->
                if p.doomed then discontinue k Killed
                else begin
                  p.state <- Waiting;
                  let decided = ref false in
                  p.canceller <-
                    Some
                      (fun () ->
                        if not !decided then begin
                          decided := true;
                          p.canceller <- None;
                          (* Kill overrides freeze: discontinue directly. *)
                          Engine.schedule p.engine (fun () ->
                              match p.state with
                              | Exited _ -> ()
                              | Embryo | Running | Waiting ->
                                  p.state <- Running;
                                  discontinue k Killed)
                          |> ignore
                        end);
                  let waker v =
                    if !decided then false
                    else
                      match p.state with
                      | Exited _ ->
                          decided := true;
                          false
                      | Embryo | Running | Waiting ->
                          decided := true;
                          p.canceller <- None;
                          deliver p (fun () -> continue k v);
                          true
                  in
                  register waker
                end)
        | _ -> None);
  }

let spawn eng ?region ?name body =
  let pid = Engine.fresh_pid eng in
  let name = match name with Some n -> n | None -> Printf.sprintf "proc-%d" pid in
  let p =
    {
      pid;
      name;
      engine = eng;
      state = Embryo;
      doomed = false;
      frozen = false;
      pending = [];
      canceller = None;
      exit_hooks = [];
    }
  in
  let start () =
    match p.state with
    | Exited _ -> ()
    | Embryo | Running | Waiting ->
        if p.doomed then finish p Exit_killed
        else begin
          p.state <- Running;
          Effect.Deep.match_with body () (handler p)
        end
  in
  (* Only the start event is pinned; later resumptions inherit the region
     of whichever event wakes the process, which keeps a process's events
     in its spawn region as long as it wakes itself (sleeps, timers). *)
  Engine.schedule ?region eng (fun () -> run_step p start) |> ignore;
  p

let kill p =
  match p.state with
  | Exited _ -> ()
  | Embryo | Running | Waiting -> (
      p.doomed <- true;
      match p.canceller with
      | Some cancel -> cancel ()
      | None -> (
          match p.state with
          | Embryo ->
              (* Not started yet: nothing to unwind. *)
              finish p Exit_killed
          | Running | Waiting | Exited _ -> ()))

let freeze p = if is_alive p then p.frozen <- true

let unfreeze p =
  if p.frozen then begin
    p.frozen <- false;
    let buffered = p.pending in
    p.pending <- [];
    List.iter (fun thunk -> Engine.schedule p.engine thunk |> ignore) buffered
  end

let on_exit p hook =
  match p.state with
  | Exited reason -> hook reason
  | Embryo | Running | Waiting -> p.exit_hooks <- hook :: p.exit_hooks

let self () = Effect.perform Self

let suspend register = Effect.perform (Suspend register)

let sleep dt =
  if dt < 0.0 then invalid_arg "Proc.sleep: negative duration";
  let p = self () in
  suspend (fun waker ->
      Engine.schedule p.engine ~delay:dt (fun () -> ignore (waker ())) |> ignore)

let yield () = sleep 0.0

let join other =
  match other.state with
  | Exited reason -> reason
  | Embryo | Running | Waiting -> suspend (fun waker -> on_exit other (fun r -> ignore (waker r)))
