(** Fault plans: the explorer's unit of search.

    A plan is an ordered list of fault injections against the machines
    of one deployment — a thin, comparable wrapper around
    {!Fail_lang.Codegen.Scenario} that converts losslessly to and from
    FAIL source, so every plan the explorer runs, and every minimized
    witness it emits, is replayable with [failmpi_run --scenario]. *)

type service = Fail_lang.Codegen.Scenario.service =
  | S_ckpt of int  (** checkpoint server replica [i] *)
  | S_sched  (** the checkpoint scheduler *)
  | S_disp  (** the dispatcher *)

type kind = Fail_lang.Codegen.Scenario.kind =
  | Kill
  | Freeze of { thaw : int }
  | Partition  (** isolate the target machine from every other host *)
  | Degrade of { loss : int; latency : int }
      (** worsen every link touching the target ([loss] permille,
          [latency] ms) *)
  | Heal  (** clear every installed network fault (machine ignored) *)
  | Switch_kill of { tier : Fail_lang.Ast.tier }
      (** kill fabric switch [machine] of the tier (machine = switch
          index; needs a configured topology) *)
  | Pod_degrade of { loss : int; latency : int }
      (** degrade every intra-pod link of pod [machine] *)
  | Service_kill of { service : service }
      (** halt an infrastructure service (for [S_ckpt] the fault's
          [machine] is the replica index, mirrored into [service]) *)
  | Service_freeze of { service : service; thaw : int }
      (** stop an infrastructure service, continue it [thaw] s later *)

type anchor = Fail_lang.Codegen.Scenario.anchor =
  | After of int  (** seconds after the previous fault fired (scenario start for the first) *)
  | On_reload of { nth : int; delay : int }
      (** [delay] seconds after the [nth] cumulative daemon registration *)

type fault = Fail_lang.Codegen.Scenario.injection = {
  machine : int;
  anchor : anchor;
  kind : kind;
}

type t = { n_machines : int; faults : fault list }

val equal : t -> t -> bool
val compare : t -> t -> int

(** [align_service f] restores the codegen invariant for service faults
    — [machine] mirrors the ckpt replica index ([S_ckpt]) or is 0
    (sched/disp) — and is the identity on every other kind. Plan
    constructors that draw machine and kind independently must pipe
    faults through this before keying or rendering them. *)
val align_service : fault -> fault

(** [key p] is a compact, human-readable identifier, e.g.
    ["kill@3+12;freeze8@0@reload5+2"] — stable across processes, used to
    label report rows, emitted files and the persistent corpus. *)
val key : t -> string

(** [of_key ~n_machines s] parses a {!key} back into a plan
    ([of_key ~n_machines (key p) = Ok p] whenever [p.n_machines =
    n_machines]).  Total: corpus files come from disk, so malformed
    keys return [Error] rather than raising. *)
val of_key : n_machines:int -> string -> (t, string) result

(** [to_scenario p] renders the plan as FAIL source (no parameters). *)
val to_scenario : t -> string

(** [of_scenario ?params src] parses FAIL source of the generated shape
    back into a plan (parameterized files need their [params], exactly
    like [failmpi_run --param]). *)
val of_scenario : ?params:(string * int) list -> string -> (t, string) result
