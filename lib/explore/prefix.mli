(** Prefix-sharing fork scheduler for the explorer.

    Plans whose faults are all [After]-anchored share their fault-free
    (and common-fault) simulation prefix: the scheduler arranges them in
    a trie over fault tuples, executes each shared prefix once, and
    [Unix.fork]s at the pause just before each divergence point — the
    kernel's copy-on-write pages stand in for state serialization.
    Verdicts, signatures and reports are byte-identical to replaying
    every plan from t = 0, at any [~jobs] (see docs/EXPLORER.md). *)

type stats = {
  forks : int;  (** processes forked; total simulations = forks + 1 *)
  pauses : int;  (** breakpoints where a prefix state was shared onward *)
  fork_wall_s : float;  (** parent-side wall clock spent inside fork() *)
  snapshot_events_max : int;
      (** largest engine snapshot observed at a pause (pending events);
          0 unless [~measure:true] *)
  snapshot_words_max : int;  (** same, in heap words; 0 unless measured *)
}

val zero_stats : stats

(** [false] on platforms without [Unix.fork] (Windows); callers fall
    back to replaying every plan. *)
val supported : bool

(** A plan the scheduler can drive: at least one fault and every anchor
    a timer ([After]).  Reload-anchored plans wait on registration
    counts, not timers, and replay from scratch instead. *)
val forkable : Plan.t -> bool

(** [run ~jobs ~measure ~prepare ~summarize plans] drives every
    [(index, plan)] through the trie walk and returns the summaries
    tagged with their indices (order unspecified) plus the walk's
    statistics.  [prepare] launches a checkpoint for a plan (the spec
    with the plan's scenario installed); [summarize] runs in the forked
    child and must return marshal-safe plain data — no closures.
    [measure] additionally sizes an engine snapshot at every pause
    (bench instrumentation; costs a heap walk per pause).

    Raises [Failure] if any branch process dies or reports an error. *)
val run :
  jobs:int ->
  measure:bool ->
  prepare:(Plan.t -> Failmpi.Run.checkpoint) ->
  summarize:(Plan.t -> Failmpi.Run.result -> 'a) ->
  (int * Plan.t) list ->
  (int * 'a) list * stats
