(* Prefix-sharing fork scheduler.

   Plans whose faults are all [After]-anchored form a trie keyed by the
   full fault tuple: every plan is a path from the root, and two plans
   sharing their first k faults share their first k trie edges — and
   therefore their entire simulation prefix, because a generated
   scenario's PLAN daemon is a pure timer chain (fault k+1's timer arms
   when fault k fires) and nothing before a fault's own timer depends on
   anything downstream of it.

   One OS process walks the trie.  At each node it advances the
   simulation to a breakpoint just before the pending scenario timer
   fires ([Run.advance ~stop_before]), then [Unix.fork]s once per
   sibling branch: the child inherits the paused simulation through the
   kernel's copy-on-write heap — no state is serialized — re-aims the
   timer at its branch's delay ([Runtime.retime_timer], preserving the
   engine sequence number so same-instant ties break exactly as a
   from-scratch run's would), re-points the daemons at its branch's
   automaton ([Runtime.swap_plan]), and recurses.  Leaves run to the
   terminal stop and classify with the ordinary [Run.resume_from].

   Results ride home as marshaled [(plan index, summary)] pairs over a
   pipe per child; the root reassembles them by index, so reports are
   byte-identical to replaying every plan from t = 0, at any [~jobs].

   Concurrency is throttled by a token pipe holding [jobs] bytes: every
   process that is actively simulating holds exactly one token, acquired
   as a child's first act and released before it blocks on collecting
   its own children or writing its payload.  Token holders always make
   progress, so the scheme cannot deadlock, and at most [jobs]
   simulations burn CPU at once no matter how bushy the trie is. *)

module Run = Failmpi.Run
module Runtime = Failmpi.Inject.Runtime
module Engine = Simkern.Engine

type stats = {
  forks : int;  (* processes forked (total runs = forks + 1) *)
  pauses : int;  (* breakpoints taken (prefix states shared onward) *)
  fork_wall_s : float;  (* parent-side wall clock spent inside fork() *)
  snapshot_events_max : int;  (* measured only under [~measure:true] *)
  snapshot_words_max : int;
}

let zero_stats =
  {
    forks = 0;
    pauses = 0;
    fork_wall_s = 0.0;
    snapshot_events_max = 0;
    snapshot_words_max = 0;
  }

let merge_stats a b =
  {
    forks = a.forks + b.forks;
    pauses = a.pauses + b.pauses;
    fork_wall_s = a.fork_wall_s +. b.fork_wall_s;
    snapshot_events_max = max a.snapshot_events_max b.snapshot_events_max;
    snapshot_words_max = max a.snapshot_words_max b.snapshot_words_max;
  }

let supported = not Sys.win32

(* Reload-anchored faults wait on registration counts, not timers —
   there is no pending timer to pause before, so those plans replay
   from scratch instead. *)
let forkable (p : Plan.t) =
  p.Plan.faults <> []
  && List.for_all
       (fun (f : Plan.fault) ->
         match f.Plan.anchor with Plan.After _ -> true | Plan.On_reload _ -> false)
       p.Plan.faults

(* ---- fault-tuple trie --------------------------------------------- *)

type node = {
  nd_fault : Plan.fault;
  mutable nd_leaves : int list;  (* plan indices ending here, input order *)
  mutable nd_children : node list;  (* input order *)
}

let build tagged =
  let root =
    {
      nd_fault = { Plan.machine = 0; anchor = Plan.After 0; kind = Plan.Kill };
      nd_leaves = [];
      nd_children = [];
    }
  in
  List.iter
    (fun (idx, (p : Plan.t)) ->
      let rec insert nd = function
        | [] -> assert false
        | f :: rest ->
            let child =
              match List.find_opt (fun c -> c.nd_fault = f) nd.nd_children with
              | Some c -> c
              | None ->
                  let c = { nd_fault = f; nd_leaves = []; nd_children = [] } in
                  nd.nd_children <- nd.nd_children @ [ c ];
                  c
            in
            if rest = [] then child.nd_leaves <- child.nd_leaves @ [ idx ]
            else insert child rest
      in
      insert root p.Plan.faults)
    tagged;
  root.nd_children

(* The branch representative: the plan whose automaton is installed
   while a subtree's shared prefix executes.  Any plan under the branch
   works — everything that runs before the branch's own fault fires
   depends only on the shared prefix — so the first-inserted descendant
   is used for determinism. *)
let rec rep_index nd =
  match nd.nd_children with c :: _ -> rep_index c | [] -> List.hd nd.nd_leaves

let rec all_indices nd =
  nd.nd_leaves @ List.concat_map all_indices nd.nd_children

let delay_of nd =
  match nd.nd_fault.Plan.anchor with
  | Plan.After d -> d
  | Plan.On_reload _ -> assert false (* filtered by [forkable] *)

let group_by_delay children =
  let delays = List.sort_uniq Int.compare (List.map delay_of children) in
  List.map (fun d -> (d, List.filter (fun c -> delay_of c = d) children)) delays

(* ---- process plumbing --------------------------------------------- *)

let rec retry f =
  try f () with Unix.Unix_error (Unix.EINTR, _, _) -> retry f

let write_byte fd =
  let rec go () = if retry (fun () -> Unix.write_substring fd "t" 0 1) = 0 then go () in
  go ()

let read_byte fd =
  let b = Bytes.create 1 in
  if retry (fun () -> Unix.read fd b 0 1) = 0 then
    failwith "Prefix: token pipe closed"

let write_all fd b =
  let len = Bytes.length b in
  let rec go off =
    if off < len then go (off + retry (fun () -> Unix.write fd b off (len - off)))
  in
  go 0

let read_all fd =
  let buf = Buffer.create 4096 in
  let chunk = Bytes.create 65536 in
  let rec go () =
    let n = retry (fun () -> Unix.read fd chunk 0 65536) in
    if n > 0 then begin
      Buffer.add_subbytes buf chunk 0 n;
      go ()
    end
  in
  go ();
  Buffer.to_bytes buf

type 'a payload = P_ok of (int * 'a) list * stats | P_err of string

type 'a ctx = {
  plan_of : (int, Plan.t) Hashtbl.t;
  summarize : Plan.t -> Run.result -> 'a;
  measure : bool;
  sem_r : Unix.file_descr;
  sem_w : Unix.file_descr;
  mutable children : (int * Unix.file_descr) list;  (* (pid, read end), reverse fork order *)
  mutable emitted : (int * 'a) list;
  mutable st : stats;
  mutable failed : string option;
}

let acquire ctx = read_byte ctx.sem_r
let release ctx = write_byte ctx.sem_w
let emit ctx i rc = ctx.emitted <- (i, rc) :: ctx.emitted

let fail ctx msg = if ctx.failed = None then ctx.failed <- Some msg

(* Drain every forked child: payloads merge into [ctx.emitted]/[ctx.st],
   the first error (or silent death) is kept.  Always reaps, so no
   zombies survive an error path. *)
let collect ctx =
  List.iter
    (fun (pid, fd) ->
      let bytes = read_all fd in
      Unix.close fd;
      ignore (retry (fun () -> Unix.waitpid [] pid));
      if Bytes.length bytes = 0 then fail ctx "Prefix: forked child died without reporting"
      else
        match (Marshal.from_bytes bytes 0 : _ payload) with
        | P_ok (results, st) ->
            ctx.emitted <- results @ ctx.emitted;
            ctx.st <- merge_stats ctx.st st
        | P_err msg -> fail ctx msg)
    (List.rev ctx.children);
  ctx.children <- []

(* Simulation over: give the token back, gather the children, report. *)
let finish_process ctx =
  release ctx;
  collect ctx;
  match ctx.failed with
  | Some msg -> P_err msg
  | None -> P_ok (ctx.emitted, ctx.st)

let send_payload fd p =
  write_all fd (Marshal.to_bytes p []);
  Unix.close fd

(* Fork one branch runner.  The child sheds the parent's bookkeeping
   (its siblings' pipes belong to the parent), waits for a token, runs
   [body] on the copy-on-write image of the paused simulation, and
   ships its results up its own pipe. *)
let fork_child ctx body =
  let r, w = retry (fun () -> Unix.pipe ()) in
  let t0 = Unix.gettimeofday () in
  match Unix.fork () with
  | 0 ->
      Unix.close r;
      List.iter (fun (_, fd) -> Unix.close fd) ctx.children;
      ctx.children <- [];
      ctx.emitted <- [];
      ctx.st <- zero_stats;
      ctx.failed <- None;
      acquire ctx;
      (try body () with e -> fail ctx (Printexc.to_string e));
      let payload = finish_process ctx in
      (try send_payload w payload with _ -> ());
      Unix._exit 0
  | pid ->
      ctx.st <-
        {
          ctx.st with
          forks = ctx.st.forks + 1;
          fork_wall_s = ctx.st.fork_wall_s +. (Unix.gettimeofday () -. t0);
        };
      Unix.close w;
      ctx.children <- (pid, r) :: ctx.children

(* ---- the walk ----------------------------------------------------- *)

let compile_plan (p : Plan.t) =
  match Fail_lang.Compile.compile_source ~params:[] (Plan.to_scenario p) with
  | Ok cp -> cp
  | Error msg -> failwith ("Prefix: plan failed to recompile: " ^ msg)

let fci_of cp =
  match Run.checkpoint_fci cp with
  | Some rt -> rt
  | None -> assert false (* every searched plan carries a scenario *)

let swap_to cp plan = Runtime.swap_plan (fci_of cp) (compile_plan plan)

let rep_plan ctx nd = Hashtbl.find ctx.plan_of (rep_index nd)

(* Classify once, record for every plan that shares the terminal state
   (identical leaves, or branches whose fault the run never reached). *)
let finish ctx cp idxs =
  let r = Run.resume_from cp in
  List.iter (fun i -> emit ctx i (ctx.summarize (Hashtbl.find ctx.plan_of i) r)) idxs

let note_pause ctx cp =
  ctx.st <- { ctx.st with pauses = ctx.st.pauses + 1 };
  if ctx.measure then begin
    let s = Engine.snapshot (Run.checkpoint_engine cp) in
    ctx.st <-
      {
        ctx.st with
        snapshot_events_max = max ctx.st.snapshot_events_max (Engine.snapshot_events s);
        snapshot_words_max = max ctx.st.snapshot_words_max (Engine.snapshot_words s);
      }
  end

(* Precondition: the simulation is paused just before [nd]'s fault
   timer fires and the installed plan is [rep_plan ctx nd]. *)
let rec at_pause ctx cp nd =
  match nd.nd_children with
  | [] ->
      (* Terminal fault of the representative itself. *)
      Run.step cp;
      finish ctx cp nd.nd_leaves
  | children ->
      (* Plans that END on this fault diverge from the continuing ones
         at this very step (their automaton goes to [done]), so they
         fork before the fault fires. *)
      (match nd.nd_leaves with
      | [] -> ()
      | leaves ->
          let leaf_plan = Hashtbl.find ctx.plan_of (List.hd leaves) in
          fork_child ctx (fun () ->
              swap_to cp leaf_plan;
              Run.step cp;
              finish ctx cp leaves));
      Run.step cp;
      drive ctx cp ~t_base:(Engine.now (Run.checkpoint_engine cp)) children

(* Precondition: [nd]'s fault just fired at [t_base] and the scenario
   timer for the next fault is armed.  Children are visited in delay
   order: the shared prefix keeps executing in this process, pausing at
   each distinct next-fault time and forking that delay group's
   branches off the paused image; the last branch continues inline. *)
and drive ctx cp ~t_base children =
  let branch b () =
    swap_to cp (rep_plan ctx b);
    at_pause ctx cp b
  in
  let rec go = function
    | [] -> ()
    | (d, branches) :: rest ->
        let tm =
          Runtime.retime_timer (fci_of cp) ~instance:"P1"
            ~time:(t_base +. float_of_int d)
        in
        (match Run.advance cp ~stop_before:tm with
        | `Paused ->
            note_pause ctx cp;
            if rest = [] then begin
              let rec fire = function
                | [] -> assert false
                | [ b ] -> branch b ()
                | b :: more ->
                    fork_child ctx (branch b);
                    fire more
              in
              fire branches
            end
            else begin
              List.iter (fun b -> fork_child ctx (branch b)) branches;
              go rest
            end
        | `Finished ->
            (* Terminal stop before the earliest remaining fault time:
               every plan still hanging off this prefix would have seen
               the identical run — classify once, record for all. *)
            let remaining = branches @ List.concat_map snd rest in
            finish ctx cp (List.concat_map all_indices remaining))
  in
  go (group_by_delay children)

let run ~jobs ~measure ~prepare ~summarize tagged =
  let plan_of = Hashtbl.create 64 in
  List.iter (fun (i, p) -> Hashtbl.replace plan_of i p) tagged;
  match build tagged with
  | [] -> ([], zero_stats)
  | first :: _ as roots ->
      let sem_r, sem_w = Unix.pipe () in
      for _ = 1 to max 1 jobs do
        write_byte sem_w
      done;
      let ctx =
        {
          plan_of;
          summarize;
          measure;
          sem_r;
          sem_w;
          children = [];
          emitted = [];
          st = zero_stats;
          failed = None;
        }
      in
      let cp = prepare (Hashtbl.find plan_of (rep_index first)) in
      acquire ctx;
      (try drive ctx cp ~t_base:0.0 roots
       with e -> fail ctx (Printexc.to_string e));
      let payload = finish_process ctx in
      Unix.close sem_r;
      Unix.close sem_w;
      (match payload with
      | P_err msg -> failwith msg
      | P_ok (results, st) -> (results, st))
