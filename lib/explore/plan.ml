module S = Fail_lang.Codegen.Scenario

type service = S.service = S_ckpt of int | S_sched | S_disp

type kind = S.kind =
  | Kill
  | Freeze of { thaw : int }
  | Partition
  | Degrade of { loss : int; latency : int }
  | Heal
  | Switch_kill of { tier : Fail_lang.Ast.tier }
  | Pod_degrade of { loss : int; latency : int }
  | Service_kill of { service : service }
  | Service_freeze of { service : service; thaw : int }

type anchor = S.anchor = After of int | On_reload of { nth : int; delay : int }

type fault = S.injection = { machine : int; anchor : anchor; kind : kind }

type t = { n_machines : int; faults : fault list }

let equal a b = a = b
let compare = Stdlib.compare

(* Canonical service faults keep [machine] and the service selector in
   lock-step — the codegen invariant is [machine =
   machine_of_service service] (ckpt replica index; 0 for sched/disp).
   Plan constructors that draw (machine, kind) independently (the
   explorer's grid and sampler, corpus mutation) pipe faults through
   here so keys, scenarios and plan equality all agree. *)
let align_service f =
  match f.kind with
  | Service_kill { service = S_ckpt _ } ->
      { f with kind = Service_kill { service = S_ckpt f.machine } }
  | Service_freeze { service = S_ckpt _; thaw } ->
      { f with kind = Service_freeze { service = S_ckpt f.machine; thaw } }
  | Service_kill { service = S_sched | S_disp }
  | Service_freeze { service = S_sched | S_disp; _ } ->
      { f with machine = 0 }
  | Kill | Freeze _ | Partition | Degrade _ | Heal | Switch_kill _ | Pod_degrade _ -> f

(* Service names in keys; the ckpt replica index is the fault's
   [machine], so it is not repeated here. *)
let svc_key = function S_ckpt _ -> "ckpt" | S_sched -> "sched" | S_disp -> "disp"

let fault_key f =
  let kind =
    match f.kind with
    | Kill -> "kill"
    | Freeze { thaw } -> Printf.sprintf "freeze%d" thaw
    | Partition -> "part"
    | Degrade { loss; latency } -> Printf.sprintf "deg%dl%d" loss latency
    | Heal -> "heal"
    | Switch_kill { tier } -> "sw" ^ Fail_lang.Ast.tier_name tier
    | Pod_degrade { loss; latency } -> Printf.sprintf "pdeg%dl%d" loss latency
    | Service_kill { service } -> "sk" ^ svc_key service
    | Service_freeze { service; thaw } -> Printf.sprintf "sf%s%d" (svc_key service) thaw
  in
  match f.anchor with
  | After d -> Printf.sprintf "%s@%d+%d" kind f.machine d
  | On_reload { nth; delay } -> Printf.sprintf "%s@%d@reload%d+%d" kind f.machine nth delay

let key p = String.concat ";" (List.map fault_key p.faults)

(* Inverse of [fault_key]: "kind@machine+delay" or
   "kind@machine@reloadN+delay".  Total — every malformed shape comes
   back as [Error] — because keys flow in from corpus files on disk. *)
let fault_of_key s =
  let fail () = Error (Printf.sprintf "malformed fault key %S" s) in
  (* An empty tail is legal: "skckpt" strips to "ckpt" strips to "". *)
  let strip prefix k =
    let pl = String.length prefix in
    if String.length k >= pl && String.sub k 0 pl = prefix then
      Some (String.sub k pl (String.length k - pl))
    else None
  in
  (* The ckpt placeholder index 0 is overwritten with the fault's
     [machine] once it is known (see [resolve_service] below). *)
  let parse_svc rest ~mk =
    match strip "ckpt" rest with
    | Some tail -> mk (S_ckpt 0) tail
    | None -> (
        match strip "sched" rest with
        | Some tail -> mk S_sched tail
        | None -> Option.bind (strip "disp" rest) (mk S_disp))
  in
  let parse_kind k =
    if k = "kill" then Some Kill
    else if k = "part" then Some Partition
    else if k = "heal" then Some Heal
    else if String.length k > 6 && String.sub k 0 6 = "freeze" then
      Option.map (fun thaw -> Freeze { thaw })
        (int_of_string_opt (String.sub k 6 (String.length k - 6)))
    else
      match strip "sk" k with
      | Some rest ->
          parse_svc rest ~mk:(fun service tail ->
              if tail = "" then Some (Service_kill { service }) else None)
      | None -> (
          match strip "sf" k with
          | Some rest ->
              parse_svc rest ~mk:(fun service tail ->
                  Option.map
                    (fun thaw -> Service_freeze { service; thaw })
                    (int_of_string_opt tail))
          | None ->
              if String.length k > 2 && String.sub k 0 2 = "sw" then
                Option.map
                  (fun tier -> Switch_kill { tier })
                  (Fail_lang.Ast.tier_of_name (String.sub k 2 (String.length k - 2)))
              else
                let scan fmt f =
                  try Scanf.sscanf k fmt f
                  with Scanf.Scan_failure _ | Failure _ | End_of_file -> None
                in
                (match
                   scan "pdeg%dl%d%!" (fun loss latency ->
                       Some (Pod_degrade { loss; latency }))
                 with
                | Some _ as r -> r
                | None ->
                    scan "deg%dl%d%!" (fun loss latency ->
                        Some (Degrade { loss; latency }))))
  in
  (* The key stores the ckpt replica index as the fault's machine. *)
  let resolve_service machine = function
    | Service_kill { service = S_ckpt _ } -> Service_kill { service = S_ckpt machine }
    | Service_freeze { service = S_ckpt _; thaw } ->
        Service_freeze { service = S_ckpt machine; thaw }
    | k -> k
  in
  let parse_int s = int_of_string_opt s in
  match String.split_on_char '@' s with
  | [ kind; rest ] -> (
      match (parse_kind kind, String.split_on_char '+' rest) with
      | Some kind, [ m; d ] -> (
          match (parse_int m, parse_int d) with
          | Some machine, Some delay ->
              Ok { machine; anchor = After delay; kind = resolve_service machine kind }
          | _ -> fail ())
      | _ -> fail ())
  | [ kind; m; reload ] -> (
      match (parse_kind kind, parse_int m, String.split_on_char '+' reload) with
      | Some kind, Some machine, [ nth_s; d ] when String.length nth_s > 6 -> (
          match
            ( String.sub nth_s 0 6,
              parse_int (String.sub nth_s 6 (String.length nth_s - 6)),
              parse_int d )
          with
          | "reload", Some nth, Some delay ->
              Ok
                {
                  machine;
                  anchor = On_reload { nth; delay };
                  kind = resolve_service machine kind;
                }
          | _ -> fail ())
      | _ -> fail ())
  | _ -> fail ()

let of_key ~n_machines s =
  if s = "" then Error "empty plan key"
  else
    let rec go acc = function
      | [] -> Ok { n_machines; faults = List.rev acc }
      | fk :: rest -> (
          match fault_of_key fk with
          | Ok f -> go (f :: acc) rest
          | Error _ as e -> e)
    in
    go [] (String.split_on_char ';' s)

let to_scenario p = S.source ~n_machines:p.n_machines p.faults

let of_scenario ?params src =
  match Fail_lang.Parser.parse_result src with
  | Error e -> Error e
  | Ok ast -> (
      match Fail_lang.Sema.check_result ?params ast with
      | Error e -> Error e
      | Ok checked ->
          Result.map
            (fun (n_machines, faults) -> { n_machines; faults })
            (S.injections_of_program checked))
