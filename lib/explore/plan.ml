module S = Fail_lang.Codegen.Scenario

type kind = S.kind =
  | Kill
  | Freeze of { thaw : int }
  | Partition
  | Degrade of { loss : int; latency : int }
  | Heal

type anchor = S.anchor = After of int | On_reload of { nth : int; delay : int }

type fault = S.injection = { machine : int; anchor : anchor; kind : kind }

type t = { n_machines : int; faults : fault list }

let equal a b = a = b
let compare = Stdlib.compare

let fault_key f =
  let kind =
    match f.kind with
    | Kill -> "kill"
    | Freeze { thaw } -> Printf.sprintf "freeze%d" thaw
    | Partition -> "part"
    | Degrade { loss; latency } -> Printf.sprintf "deg%dl%d" loss latency
    | Heal -> "heal"
  in
  match f.anchor with
  | After d -> Printf.sprintf "%s@%d+%d" kind f.machine d
  | On_reload { nth; delay } -> Printf.sprintf "%s@%d@reload%d+%d" kind f.machine nth delay

let key p = String.concat ";" (List.map fault_key p.faults)

let to_scenario p = S.source ~n_machines:p.n_machines p.faults

let of_scenario ?params src =
  match Fail_lang.Parser.parse_result src with
  | Error e -> Error e
  | Ok ast -> (
      match Fail_lang.Sema.check_result ?params ast with
      | Error e -> Error e
      | Ok checked ->
          Result.map
            (fun (n_machines, faults) -> { n_machines; faults })
            (S.injections_of_program checked))
