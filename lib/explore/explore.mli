(** Systematic fault-space exploration (the paper's §6, automated).

    The explorer enumerates fault plans against one deployment, runs
    each through {!Failmpi.Run.execute} with the §5 classifier, hashes
    every run's milestone trace into a coverage signature, and
    delta-debugs whatever comes back buggy (optionally: hanging) down
    to a minimal, replayable [.fail] witness.

    Search strategy, deterministic in the configuration:
    - exhaustive grid over (target machine × time bucket × kind) for
      single faults;
    - exhaustive grid over ordered pairs for two-fault plans (the
      second fault's bucket is relative to the first, so pairs cover
      the "strike inside the recovery wave" shapes);
    - a seeded random sampler for 3 .. [max_faults] simultaneous
      faults;
    the stream is truncated to [budget] plans, runs fan out over
    {!Par.map}, and reports are assembled in input order — the same
    configuration yields byte-identical reports at any [?jobs]. *)

module Plan = Plan
module Shrink = Shrink
module Prefix = Prefix
module Corpus = Corpus
module Run = Failmpi.Run

(** [Degraded] is a ulfm run that finished on a shrunken communicator
    (by design, not shrinkable); [Aborted] is a backend that gave up
    cleanly — reproducible and minimizable like [Buggy]; [Ckpt_lost] is
    a restart that found no complete checkpoint image on any storage
    replica (also reproducible and minimizable). *)
type verdict =
  | Completed
  | Degraded
  | Aborted
  | Ckpt_lost
  | Non_terminating
  | Buggy
  | Net_hung

val verdict_name : verdict -> string
val verdict_of_outcome : Run.outcome -> verdict

(** [signature result] hashes the run's [(source, event)] trace pairs
    (FNV-1a 64) into a hex string: two runs with the same signature took
    the same externally observable path through the protocol. *)
val signature : Run.result -> string

type config = {
  n_machines : int;  (** compute hosts; must equal the runner spec's [n_compute] *)
  targets : int list;  (** machines worth shooting (typically the initial rank hosts) *)
  buckets : int list;  (** candidate injection delays, seconds *)
  kinds : Plan.kind list;  (** fault kinds to draw from *)
  max_faults : int;
  budget : int;  (** hard cap on the number of searched plans *)
  sample_seed : int;  (** seed of the >= 3-fault random sampler *)
  shrink_grid : int list;  (** time grids for {!Shrink.coarsen}, coarsest first *)
  shrink_hangs : bool;  (** also minimize non-terminating plans (default false) *)
}

(** Kill-only defaults: [max_faults] 2, budget 200, grid 60/30/15/5/1. *)
val default_config : n_machines:int -> targets:int list -> buckets:int list -> config

(** [plans config] is the deterministic search stream, truncated to
    [config.budget]. Exposed for tests and coverage accounting. *)
val plans : config -> Plan.t list

type record = {
  plan : Plan.t;
  verdict : verdict;
  completion : float option;  (** simulated completion time, when completed *)
  injected : int;  (** FAIL [halt]s actually executed *)
  sig_hash : string;
}

type minimized = {
  found : Plan.t;  (** the plan the search stumbled on *)
  min_plan : Plan.t;  (** after {!Shrink.ddmin} + {!Shrink.coarsen} *)
  min_verdict : verdict;  (** reproduced classification *)
  probes : int;  (** oracle re-runs spent shrinking *)
  probes_saved : int;
      (** oracle re-runs answered from the per-witness memo instead
          (ddmin and coarsen revisit identical candidate plans) *)
  scenario : string;  (** [Plan.to_scenario min_plan], ready to save *)
}

type report = {
  config : config;
  records : record list;  (** one per searched plan, input order *)
  coverage : (string * verdict * int) list;
      (** distinct signatures in first-seen order, with run counts *)
  minimized : minimized list;  (** one per distinct failing signature *)
}

(** [run ?jobs config ~runner] searches, classifies and shrinks.
    [runner] executes one plan deterministically; it must be pure (the
    shrinker replays it). *)
val run : ?jobs:int -> config -> runner:(Plan.t -> Run.result) -> report

(** [runner_of_spec spec] is the standard runner: [spec] with the
    plan's scenario substituted and the trace level forced to
    [Summary] (signatures hash milestones only). Raises
    [Invalid_argument] if [spec.n_compute] differs from the plan's
    [n_machines]. *)
val runner_of_spec : Run.spec -> Plan.t -> Run.result

(** [run_spec ?jobs ?fork ?measure config ~spec] is {!run} with the
    standard runner, routed through the {!Prefix} fork scheduler when
    [fork] (default [true], and supported): plans sharing a fault
    prefix execute that prefix once and fork at each divergence point,
    so big campaigns cost a fraction of replaying every plan — with a
    byte-identical report (any [?jobs]).  Plans the scheduler cannot
    drive (reload anchors) replay as usual; [fork:false] replays
    everything.  [measure] sizes engine snapshots at every pause
    (bench instrumentation).  The returned stats are {!Prefix.zero_stats}
    whenever the fork path was skipped.

    In fork mode [?jobs] throttles the forked branch processes, and
    everything else (leftover replays, shrinking) runs sequentially:
    the OCaml runtime permanently refuses [Unix.fork] in a process
    that ever created a domain, so fork mode spawns none — which also
    means it only works before anything else in the process has
    (e.g. a prior [fork:false] campaign).

    [?corpus] names a {!Corpus} directory (created on first save):
    already-tried plans are skipped on resume and the freed budget
    goes to seeded mutants of plans that produced new signatures; the
    corpus is updated and saved after the campaign.  Raises
    [Invalid_argument] when the directory holds a corpus written by an
    incompatible configuration. *)
val run_spec :
  ?jobs:int ->
  ?fork:bool ->
  ?measure:bool ->
  ?corpus:string ->
  config ->
  spec:Run.spec ->
  report * Prefix.stats

(** Human-readable report (verdict tallies, coverage, witnesses). *)
val render : report -> string

(** JSON report, deterministic field order — what
    [failmpi_explore --json] writes and CI archives. *)
val to_json : report -> string
