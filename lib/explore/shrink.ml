(* ddmin: split the candidate into n chunks; if some chunk alone still
   fails, recurse on it with n=2; if some complement fails, recurse on
   the complement with n-1; otherwise double the granularity until it
   exceeds the length. *)

let split_chunks xs n =
  let len = List.length xs in
  let base = len / n and extra = len mod n in
  let rec take k xs = if k = 0 then ([], xs) else
    match xs with
    | [] -> ([], [])
    | x :: rest ->
        let hd, tl = take (k - 1) rest in
        (x :: hd, tl)
  in
  let rec go i xs =
    if i >= n then []
    else
      let size = base + if i < extra then 1 else 0 in
      let chunk, rest = take size xs in
      chunk :: go (i + 1) rest
  in
  List.filter (fun c -> c <> []) (go 0 xs)

let ddmin ~test xs =
  let probes = ref 0 in
  let test' ys =
    incr probes;
    test ys
  in
  let rec go xs n =
    let len = List.length xs in
    if len <= 1 then xs
    else
      let chunks = split_chunks xs n in
      match List.find_opt test' chunks with
      | Some chunk -> go chunk 2
      | None ->
          let complements =
            if n <= 2 then [] (* complements of halves are the halves already probed *)
            else List.map (fun chunk -> List.filter (fun x -> not (List.memq x chunk)) xs) chunks
          in
          (match List.find_opt test' complements with
          | Some complement -> go complement (max (n - 1) 2)
          | None -> if n < len then go xs (min len (2 * n)) else xs)
  in
  let r = go xs 2 in
  (r, !probes)

let set_delay (f : Plan.fault) d =
  match f.Plan.anchor with
  | Plan.After _ -> { f with Plan.anchor = Plan.After d }
  | Plan.On_reload { nth; _ } -> { f with Plan.anchor = Plan.On_reload { nth; delay = d } }

let delay_of (f : Plan.fault) =
  match f.Plan.anchor with Plan.After d -> d | Plan.On_reload { delay; _ } -> delay

let coarsen ~grid ~test (plan : Plan.t) =
  let probes = ref 0 in
  let test' p =
    incr probes;
    test p
  in
  let faults = Array.of_list plan.Plan.faults in
  let current () = { plan with Plan.faults = Array.to_list faults } in
  Array.iteri
    (fun i f ->
      let d = delay_of f in
      let try_bucket g =
        let snapped = d / g * g in
        if snapped = d then true (* already on this grid: coarsest for free *)
        else begin
          faults.(i) <- set_delay f snapped;
          if test' (current ()) then true
          else begin
            faults.(i) <- f;
            false
          end
        end
      in
      ignore (List.exists try_bucket grid))
    faults;
  (current (), !probes)
