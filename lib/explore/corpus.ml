(* Persistent coverage-guided corpus (--corpus <dir>).

   Plain-text state shared across campaigns: which plan keys already
   ran ([tried], the resume-skip set), which coverage signatures were
   ever observed ([seen]), and which plans first produced a new
   signature ([pool] — the interesting ones, in discovery order).  A
   resumed campaign skips everything in [tried] and spends the freed
   budget on seeded mutations of pool plans, so the sampler
   preferentially explores around whatever opened new territory.

   Layout under the directory: [meta] (format magic, the configuration
   fingerprint, the generation counter), [tried], [seen], [pool] — one
   entry per line, written atomically via rename.  Everything is
   deterministic: same directory + same config + same campaign results
   produce byte-identical files, and the mutation stream is a pure
   function of (sample_seed, generation). *)

module Rng = Simkern.Rng

type space = {
  n_machines : int;
  targets : int list;
  buckets : int list;
  kinds : Plan.kind list;
  max_faults : int;
  sample_seed : int;
}

let svc_tag = function Plan.S_ckpt _ -> "ckpt" | Plan.S_sched -> "sched" | Plan.S_disp -> "disp"

let kind_tag = function
  | Plan.Kill -> "kill"
  | Plan.Freeze { thaw } -> Printf.sprintf "freeze%d" thaw
  | Plan.Partition -> "part"
  | Plan.Degrade { loss; latency } -> Printf.sprintf "deg%dl%d" loss latency
  | Plan.Heal -> "heal"
  | Plan.Switch_kill { tier } -> "sw" ^ Fail_lang.Ast.tier_name tier
  | Plan.Pod_degrade { loss; latency } -> Printf.sprintf "pdeg%dl%d" loss latency
  | Plan.Service_kill { service } -> "sk" ^ svc_tag service
  | Plan.Service_freeze { service; thaw } -> Printf.sprintf "sf%s%d" (svc_tag service) thaw

let ints xs = String.concat "," (List.map string_of_int xs)

(* The fingerprint covers everything that gives plan keys and mutation
   draws their meaning.  [budget] is deliberately absent: growing the
   budget between campaigns is exactly how a corpus is resumed. *)
let space_fingerprint s =
  Printf.sprintf
    "n_machines=%d targets=%s buckets=%s kinds=%s max_faults=%d sample_seed=%d"
    s.n_machines (ints s.targets) (ints s.buckets)
    (String.concat "," (List.map kind_tag s.kinds))
    s.max_faults s.sample_seed

let magic = "failmpi-explore-corpus v1"

type t = {
  dir : string;
  space : space;
  mutable generation : int;
  tried : (string, unit) Hashtbl.t;
  seen : (string, unit) Hashtbl.t;
  mutable pool_rev : string list;
  pool_set : (string, unit) Hashtbl.t;
}

let fresh ~dir ~space =
  {
    dir;
    space;
    generation = 0;
    tried = Hashtbl.create 256;
    seen = Hashtbl.create 64;
    pool_rev = [];
    pool_set = Hashtbl.create 64;
  }

let read_lines path =
  if not (Sys.file_exists path) then []
  else begin
    let ic = open_in path in
    let rec go acc =
      match input_line ic with
      | line -> go (if line = "" then acc else line :: acc)
      | exception End_of_file ->
          close_in ic;
          List.rev acc
    in
    go []
  end

let load ~dir ~space =
  if not (Sys.file_exists dir) then Ok (fresh ~dir ~space)
  else
    let meta = read_lines (Filename.concat dir "meta") in
    match meta with
    | [] -> Error (Printf.sprintf "%s is not a failmpi-explore corpus (no meta file)" dir)
    | m :: rest when m = magic -> (
        let fp = space_fingerprint space in
        match rest with
        | space_line :: gen_line :: _ when space_line = fp -> (
            match int_of_string_opt gen_line with
            | None ->
                Error (Printf.sprintf "%s: corrupt meta file (bad generation %S)" dir gen_line)
            | Some generation ->
                let t = fresh ~dir ~space in
                t.generation <- generation;
                List.iter
                  (fun k -> Hashtbl.replace t.tried k ())
                  (read_lines (Filename.concat dir "tried"));
                List.iter
                  (fun s -> Hashtbl.replace t.seen s ())
                  (read_lines (Filename.concat dir "seen"));
                List.iter
                  (fun k ->
                    if not (Hashtbl.mem t.pool_set k) then begin
                      Hashtbl.replace t.pool_set k ();
                      t.pool_rev <- k :: t.pool_rev
                    end)
                  (read_lines (Filename.concat dir "pool"));
                Ok t)
        | corpus_fp :: _ ->
            Error
              (Printf.sprintf
                 "corpus %s is incompatible with this configuration (corpus: %s; campaign: %s)"
                 dir corpus_fp fp)
        | [] -> Error (Printf.sprintf "%s: corrupt meta file (truncated)" dir))
    | _ -> Error (Printf.sprintf "%s is not a failmpi-explore corpus (bad magic)" dir)

let tried t key = Hashtbl.mem t.tried key
let seen_signatures t = Hashtbl.length t.seen
let pool t = List.rev t.pool_rev
let generation t = t.generation

(* Record one campaign result.  A plan whose signature was never seen
   before joins the pool — it opened new coverage territory and is
   worth mutating in the next generation. *)
let note t ~plan_key ~sig_hash =
  Hashtbl.replace t.tried plan_key ();
  if not (Hashtbl.mem t.seen sig_hash) then begin
    Hashtbl.replace t.seen sig_hash ();
    if not (Hashtbl.mem t.pool_set plan_key) then begin
      Hashtbl.replace t.pool_set plan_key ();
      t.pool_rev <- plan_key :: t.pool_rev
    end
  end

(* ---- seeded mutation ---------------------------------------------- *)

let mutate_fault rng space (f : Plan.fault) =
  Plan.align_service
    (match Rng.int rng 3 with
    | 0 -> { f with Plan.anchor = Plan.After (Rng.choose rng space.buckets) }
    | 1 -> { f with Plan.machine = Rng.choose rng space.targets }
    | _ -> { f with Plan.kind = Rng.choose rng space.kinds })

let random_fault rng space =
  Plan.align_service
    {
      Plan.machine = Rng.choose rng space.targets;
      anchor = Plan.After (Rng.choose rng space.buckets);
      kind = Rng.choose rng space.kinds;
    }

let mutate_plan rng space (p : Plan.t) =
  let faults = Array.of_list p.Plan.faults in
  let n = Array.length faults in
  let faults =
    match Rng.int rng 4 with
    | 0 when n < space.max_faults ->
        (* grow: splice a fresh fault in at a random position *)
        let at = Rng.int rng (n + 1) in
        Array.to_list (Array.sub faults 0 at)
        @ (random_fault rng space :: Array.to_list (Array.sub faults at (n - at)))
    | 1 when n > 1 ->
        (* shrink: drop one fault *)
        let at = Rng.int rng n in
        List.filteri (fun i _ -> i <> at) (Array.to_list faults)
    | _ ->
        (* point-mutate one fault *)
        let at = Rng.int rng n in
        faults.(at) <- mutate_fault rng space faults.(at);
        Array.to_list faults
  in
  { Plan.n_machines = space.n_machines; faults }

(* [mutants t ~count] draws up to [count] untried mutants of pool
   plans.  Deterministic: the RNG is seeded from (sample_seed,
   generation), so re-running an interrupted campaign re-derives the
   same schedule.  Bounded retries keep an exhausted neighbourhood from
   looping forever; fewer than [count] plans may come back. *)
let mutants t ~count =
  let pool = Array.of_list (pool t) in
  if count <= 0 || Array.length pool = 0 then []
  else begin
    let rng =
      Rng.create
        (Int64.add
           (Int64.mul 1_000_003L (Int64.of_int t.space.sample_seed))
           (Int64.of_int t.generation))
    in
    let out_keys = Hashtbl.create count in
    let out = ref [] and made = ref 0 and attempts = ref 0 in
    let max_attempts = 50 * count in
    while !made < count && !attempts < max_attempts do
      incr attempts;
      let seed_key = pool.(Rng.int rng (Array.length pool)) in
      match Plan.of_key ~n_machines:t.space.n_machines seed_key with
      | Error _ -> () (* stale pool entry; skip *)
      | Ok seed ->
          let m = mutate_plan rng t.space seed in
          let k = Plan.key m in
          if not (tried t k) && not (Hashtbl.mem out_keys k) then begin
            Hashtbl.replace out_keys k ();
            out := m :: !out;
            incr made
          end
    done;
    List.rev !out
  end

(* ---- persistence -------------------------------------------------- *)

let write_file path lines =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  List.iter
    (fun l ->
      output_string oc l;
      output_char oc '\n')
    lines;
  close_out oc;
  Sys.rename tmp path

(* Sorted dumps for [tried]/[seen] (sets — order is meaningless but
   must be stable); [pool] keeps discovery order (it is a schedule). *)
let save t =
  if not (Sys.file_exists t.dir) then Unix.mkdir t.dir 0o755;
  t.generation <- t.generation + 1;
  write_file (Filename.concat t.dir "meta")
    [ magic; space_fingerprint t.space; string_of_int t.generation ];
  let sorted tbl = List.sort String.compare (Hashtbl.fold (fun k () acc -> k :: acc) tbl []) in
  write_file (Filename.concat t.dir "tried") (sorted t.tried);
  write_file (Filename.concat t.dir "seen") (sorted t.seen);
  write_file (Filename.concat t.dir "pool") (pool t)
