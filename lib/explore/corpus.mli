(** Persistent coverage-guided corpus ([--corpus <dir>]).

    Remembers, across campaigns: which plan keys already ran
    ([tried] — the resume-skip set), which coverage signatures were
    ever observed ([seen]), and which plans first produced a new
    signature ([pool], in discovery order).  A resumed campaign skips
    [tried] plans and spends the freed budget on seeded {!mutants} of
    pool plans — the coverage-guided part: plans that opened new
    territory get mutated preferentially.

    On disk: a directory of plain-text files ([meta]/[tried]/[seen]/
    [pool], one entry per line) written atomically, stamped with a
    configuration fingerprint; loading under a different configuration
    is refused (see docs/EXPLORER.md for the exact layout). *)

(** The plan-space coordinates that give keys and mutation draws their
    meaning.  [budget] is deliberately absent — raising it between
    campaigns is how a corpus is resumed. *)
type space = {
  n_machines : int;
  targets : int list;
  buckets : int list;
  kinds : Plan.kind list;
  max_faults : int;
  sample_seed : int;
}

val space_fingerprint : space -> string

type t

(** [load ~dir ~space] reads the corpus at [dir], or returns a fresh
    empty one if [dir] does not exist yet ([save] will create it).
    [Error] when the directory is not a corpus, is corrupt, or carries
    a fingerprint different from [space_fingerprint space]. *)
val load : dir:string -> space:space -> (t, string) result

val tried : t -> string -> bool
val seen_signatures : t -> int

(** Plan keys that produced a never-before-seen signature, discovery
    order. *)
val pool : t -> string list

(** Completed campaigns recorded in this corpus. *)
val generation : t -> int

(** [note t ~plan_key ~sig_hash] records one finished run. *)
val note : t -> plan_key:string -> sig_hash:string -> unit

(** [mutants t ~count] draws up to [count] distinct untried mutants of
    pool plans — retime / retarget / rekind one fault, or grow or drop
    a fault within the space's bounds.  Deterministic in
    [(sample_seed, generation)]. *)
val mutants : t -> count:int -> Plan.t list

(** [save t] bumps the generation and writes every file (creating the
    directory if needed). *)
val save : t -> unit
