module Plan = Plan
module Shrink = Shrink
module Prefix = Prefix
module Corpus = Corpus
module Run = Failmpi.Run

type verdict =
  | Completed
  | Degraded
  | Aborted
  | Ckpt_lost
  | Non_terminating
  | Buggy
  | Net_hung

let verdict_name = function
  | Completed -> "completed"
  | Degraded -> "degraded"
  | Aborted -> "aborted"
  | Ckpt_lost -> "ckpt-lost"
  | Non_terminating -> "non-terminating"
  | Buggy -> "buggy"
  | Net_hung -> "net-hung"

let verdict_of_outcome = function
  | Run.Completed _ -> Completed
  | Run.Degraded _ -> Degraded
  | Run.Aborted _ -> Aborted
  | Run.Ckpt_lost -> Ckpt_lost
  | Run.Non_terminating -> Non_terminating
  | Run.Buggy -> Buggy
  | Run.Net_hung -> Net_hung

(* FNV-1a 64-bit over the (source, event) stream; NUL-separated so
   ("ab","c") and ("a","bc") hash apart. *)
let signature (r : Run.result) =
  let h = ref 0xcbf29ce484222325L in
  let feed s =
    String.iter
      (fun c ->
        h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001b3L)
      s;
    h := Int64.mul (Int64.logxor !h 0L) 0x100000001b3L
  in
  List.iter
    (fun (source, event) ->
      feed source;
      feed event)
    (Run.trace_events r);
  Printf.sprintf "%016Lx" !h

type config = {
  n_machines : int;
  targets : int list;
  buckets : int list;
  kinds : Plan.kind list;
  max_faults : int;
  budget : int;
  sample_seed : int;
  shrink_grid : int list;
  shrink_hangs : bool;
}

let default_config ~n_machines ~targets ~buckets =
  {
    n_machines;
    targets;
    buckets;
    kinds = [ Plan.Kill ];
    max_faults = 2;
    budget = 200;
    sample_seed = 1;
    shrink_grid = [ 60; 30; 15; 5; 1 ];
    shrink_hangs = false;
  }

let plan cfg faults = { Plan.n_machines = cfg.n_machines; faults }

let singles cfg =
  List.concat_map
    (fun machine ->
      List.concat_map
        (fun bucket ->
          List.map
            (fun kind ->
              plan cfg
                [ Plan.align_service { Plan.machine; anchor = Plan.After bucket; kind } ])
            cfg.kinds)
        cfg.buckets)
    cfg.targets

let pairs cfg =
  List.concat_map
    (fun first ->
      List.map (fun second -> plan cfg [ first; second ])
        (List.concat (List.map (fun p -> p.Plan.faults) (singles cfg))))
    (List.concat (List.map (fun p -> p.Plan.faults) (singles cfg)))

let sampled cfg ~count =
  if count <= 0 || cfg.max_faults < 3 then []
  else begin
    let rng = Simkern.Rng.create (Int64.of_int cfg.sample_seed) in
    List.init count (fun i ->
        let n_faults = 3 + (i mod (cfg.max_faults - 2)) in
        plan cfg
          (List.init n_faults (fun _ ->
               Plan.align_service
                 {
                   Plan.machine = Simkern.Rng.choose rng cfg.targets;
                   anchor = Plan.After (Simkern.Rng.choose rng cfg.buckets);
                   kind = Simkern.Rng.choose rng cfg.kinds;
                 })))
  end

let take n xs =
  let rec go n = function
    | [] -> []
    | _ when n <= 0 -> []
    | x :: rest -> x :: go (n - 1) rest
  in
  go n xs

let plans cfg =
  if cfg.max_faults < 1 then invalid_arg "Explore.plans: max_faults must be >= 1";
  if cfg.budget < 1 then invalid_arg "Explore.plans: budget must be >= 1";
  if cfg.targets = [] || cfg.buckets = [] || cfg.kinds = [] then
    invalid_arg "Explore.plans: targets, buckets and kinds must be non-empty";
  let grid =
    singles cfg @ (if cfg.max_faults >= 2 then pairs cfg else [])
  in
  let rest = cfg.budget - List.length grid in
  take cfg.budget (grid @ sampled cfg ~count:rest)

type record = {
  plan : Plan.t;
  verdict : verdict;
  completion : float option;
  injected : int;
  sig_hash : string;
}

type minimized = {
  found : Plan.t;
  min_plan : Plan.t;
  min_verdict : verdict;
  probes : int;
  probes_saved : int;
  scenario : string;
}

type report = {
  config : config;
  records : record list;
  coverage : (string * verdict * int) list;
  minimized : minimized list;
}

let record_of ~plan (r : Run.result) =
  {
    plan;
    verdict = verdict_of_outcome r.Run.outcome;
    completion =
      (match r.Run.outcome with
      | Run.Completed t -> Some t
      | Run.Degraded { at; _ } -> Some at
      | _ -> None);
    injected = r.Run.injected_faults;
    sig_hash = signature r;
  }

(* Distinct signatures in first-seen order, with counts. *)
let coverage_of records =
  let tbl = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun rc ->
      match Hashtbl.find_opt tbl rc.sig_hash with
      | Some (v, n) -> Hashtbl.replace tbl rc.sig_hash (v, n + 1)
      | None ->
          Hashtbl.add tbl rc.sig_hash (rc.verdict, 1);
          order := rc.sig_hash :: !order)
    records;
  List.rev_map
    (fun s ->
      let v, n = Hashtbl.find tbl s in
      (s, v, n))
    !order

let shrink_one cfg ~runner rc =
  let probes = ref 0 and saved = ref 0 in
  (* ddmin's chunk/complement sweeps and coarsen's grid walk revisit
     identical candidate plans; the runner is deterministic, so one
     oracle run per distinct plan key suffices.  The found plan itself
     seeds the cache — its verdict is the campaign record. *)
  let cache = Hashtbl.create 64 in
  Hashtbl.replace cache (Plan.key rc.plan) rc.verdict;
  let verdict_of p =
    let k = Plan.key p in
    match Hashtbl.find_opt cache k with
    | Some v ->
        incr saved;
        v
    | None ->
        incr probes;
        let v = verdict_of_outcome (runner p).Run.outcome in
        Hashtbl.replace cache k v;
        v
  in
  let reproduces faults = faults <> [] && verdict_of (plan cfg faults) = rc.verdict in
  let min_faults, dd_probes = Shrink.ddmin ~test:reproduces rc.plan.Plan.faults in
  let coarse, co_probes =
    Shrink.coarsen ~grid:cfg.shrink_grid
      ~test:(fun p -> verdict_of p = rc.verdict)
      (plan cfg min_faults)
  in
  ignore dd_probes;
  ignore co_probes;
  {
    found = rc.plan;
    min_plan = coarse;
    min_verdict = rc.verdict;
    probes = !probes;
    probes_saved = !saved;
    scenario = Plan.to_scenario coarse;
  }

(* Coverage + witness shrinking over already-classified records; shared
   by the replay ([run]) and fork ([run_spec]) front ends so both build
   the same report from the same records. *)
let finish_report ?jobs cfg ~runner records =
  let coverage = coverage_of records in
  (* One witness per distinct failing signature, first hit in input
     order wins — equivalent wedges shrink once, not once per plan. *)
  (* A clean abort is a reproducible refusal worth a witness; a degraded
     completion is the ulfm backend working as designed, not a failure. *)
  let shrinkable rc =
    match rc.verdict with
    | Buggy | Net_hung | Aborted | Ckpt_lost -> true
    | Non_terminating -> cfg.shrink_hangs
    | Completed | Degraded -> false
  in
  let to_shrink =
    let seen = Hashtbl.create 8 in
    List.filter
      (fun rc ->
        shrinkable rc
        &&
        if Hashtbl.mem seen rc.sig_hash then false
        else begin
          Hashtbl.add seen rc.sig_hash ();
          true
        end)
      records
  in
  let minimized = Par.map ?jobs (shrink_one cfg ~runner) to_shrink in
  { config = cfg; records; coverage; minimized }

let run ?jobs cfg ~runner =
  let searched = plans cfg in
  let records =
    Par.map ?jobs (fun p -> record_of ~plan:p (runner p)) searched
  in
  finish_report ?jobs cfg ~runner records

let plan_spec (spec : Run.spec) (p : Plan.t) =
  if p.Plan.n_machines <> spec.Run.n_compute then
    invalid_arg
      (Printf.sprintf "Explore.runner_of_spec: plan covers %d machines, spec has %d"
         p.Plan.n_machines spec.Run.n_compute);
  {
    spec with
    Run.scenario = Some (Plan.to_scenario p);
    params = [];
    trace_level = Simkern.Trace.Summary;
  }

let runner_of_spec (spec : Run.spec) (p : Plan.t) = Run.execute (plan_spec spec p)

(* Fork mode must never spawn a domain: the OCaml runtime permanently
   refuses [Unix.fork] in any process that ever created one.  So the
   fork path parallelizes through forked branch processes only, and
   everything around it (leftover replays, shrinking) runs with
   [~jobs:1] — [Par.map ~jobs:1] is a plain [List.map] — which keeps
   the process fork-capable for further campaigns (corpus resume, the
   bench's repeated runs). *)
let corpus_space cfg =
  {
    Corpus.n_machines = cfg.n_machines;
    targets = cfg.targets;
    buckets = cfg.buckets;
    kinds = cfg.kinds;
    max_faults = cfg.max_faults;
    sample_seed = cfg.sample_seed;
  }

let run_spec ?jobs ?(fork = true) ?(measure = false) ?corpus cfg ~spec =
  let base = plans cfg in
  let corpus =
    Option.map
      (fun dir ->
        match Corpus.load ~dir ~space:(corpus_space cfg) with
        | Ok c -> c
        | Error msg -> invalid_arg ("Explore.run_spec: " ^ msg))
      corpus
  in
  (* Resume semantics: already-tried plans are skipped and the freed
     budget goes to seeded mutants of the corpus pool — coverage-guided
     search around whatever opened new signature territory. *)
  let searched =
    match corpus with
    | None -> base
    | Some c ->
        let fresh = List.filter (fun p -> not (Corpus.tried c (Plan.key p))) base in
        fresh @ Corpus.mutants c ~count:(cfg.budget - List.length fresh)
  in
  let runner = runner_of_spec spec in
  let forking = fork && Prefix.supported in
  let records, stats =
    if not forking then
      (Par.map ?jobs (fun p -> record_of ~plan:p (runner p)) searched, Prefix.zero_stats)
    else begin
      let tagged = List.mapi (fun i p -> (i, p)) searched in
      let forked, replayed = List.partition (fun (_, p) -> Prefix.forkable p) tagged in
      let results = Array.make (List.length searched) None in
      let place (i, rc) = results.(i) <- Some rc in
      let stats =
        match forked with
        | [] -> Prefix.zero_stats
        | _ ->
            let jobs_n = match jobs with Some j -> j | None -> Par.default_jobs () in
            let out, stats =
              Prefix.run ~jobs:jobs_n ~measure
                ~prepare:(fun p -> Run.prepare (plan_spec spec p))
                ~summarize:(fun plan r -> record_of ~plan r)
                forked
            in
            List.iter place out;
            stats
      in
      List.iter (fun (i, p) -> place (i, record_of ~plan:p (runner p))) replayed;
      ( Array.to_list results
        |> List.map (function
             | Some rc -> rc
             | None -> failwith "Explore.run_spec: plan lost by the scheduler"),
        stats )
    end
  in
  (match corpus with
  | None -> ()
  | Some c ->
      List.iter (fun rc -> Corpus.note c ~plan_key:(Plan.key rc.plan) ~sig_hash:rc.sig_hash) records;
      Corpus.save c);
  (finish_report ?jobs:(if forking then Some 1 else jobs) cfg ~runner records, stats)

(* ---- rendering ---------------------------------------------------- *)

let tally records =
  List.fold_left
    (fun (c, d, a, k, n, b, h) rc ->
      match rc.verdict with
      | Completed -> (c + 1, d, a, k, n, b, h)
      | Degraded -> (c, d + 1, a, k, n, b, h)
      | Aborted -> (c, d, a + 1, k, n, b, h)
      | Ckpt_lost -> (c, d, a, k + 1, n, b, h)
      | Non_terminating -> (c, d, a, k, n + 1, b, h)
      | Buggy -> (c, d, a, k, n, b + 1, h)
      | Net_hung -> (c, d, a, k, n, b, h + 1))
    (0, 0, 0, 0, 0, 0, 0) records

let render rp =
  let buf = Buffer.create 1024 in
  let c, d, a, k, n, b, h = tally rp.records in
  Buffer.add_string buf
    (Printf.sprintf
       "explored %d plans (max %d faults, %d targets x %d buckets): %d completed, %d \
        degraded, %d aborted, %d ckpt-lost, %d non-terminating, %d buggy, %d net-hung\n"
       (List.length rp.records) rp.config.max_faults
       (List.length rp.config.targets)
       (List.length rp.config.buckets)
       c d a k n b h);
  Buffer.add_string buf
    (Printf.sprintf "coverage: %d distinct milestone signatures\n" (List.length rp.coverage));
  List.iter
    (fun (s, v, count) ->
      Buffer.add_string buf (Printf.sprintf "  %s  %-15s %d run(s)\n" s (verdict_name v) count))
    rp.coverage;
  (match rp.minimized with
  | [] -> Buffer.add_string buf "no failing plan found\n"
  | ms ->
      List.iter
        (fun m ->
          Buffer.add_string buf
            (Printf.sprintf "%s witness: %s  (found as %s, %d shrink re-runs, %d memoized)\n"
               (verdict_name m.min_verdict) (Plan.key m.min_plan) (Plan.key m.found) m.probes
               m.probes_saved))
        ms);
  Buffer.contents buf

(* Hand-rolled JSON, matching the bench harness idiom; field order is
   fixed so jobs-1 and jobs-4 reports compare byte-for-byte. *)
let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 32 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_ints xs = "[" ^ String.concat ", " (List.map string_of_int xs) ^ "]"

let service_name = function
  | Plan.S_ckpt _ -> "ckpt"
  | Plan.S_sched -> "sched"
  | Plan.S_disp -> "disp"

let kind_name = function
  | Plan.Kill -> "kill"
  | Plan.Freeze { thaw } -> Printf.sprintf "freeze%d" thaw
  | Plan.Partition -> "partition"
  | Plan.Degrade { loss; latency } -> Printf.sprintf "degrade%dl%d" loss latency
  | Plan.Heal -> "heal"
  | Plan.Switch_kill { tier } -> Printf.sprintf "switch-kill-%s" (Fail_lang.Ast.tier_name tier)
  | Plan.Pod_degrade { loss; latency } -> Printf.sprintf "pod-degrade%dl%d" loss latency
  | Plan.Service_kill { service } -> Printf.sprintf "service-kill-%s" (service_name service)
  | Plan.Service_freeze { service; thaw } ->
      Printf.sprintf "service-freeze-%s%d" (service_name service) thaw

let fault_json (f : Plan.fault) =
  let anchor =
    match f.Plan.anchor with
    | Plan.After d -> Printf.sprintf {|"after", "delay": %d|} d
    | Plan.On_reload { nth; delay } ->
        Printf.sprintf {|"on-reload", "nth": %d, "delay": %d|} nth delay
  in
  Printf.sprintf {|{"machine": %d, "kind": "%s", "anchor": %s}|} f.Plan.machine
    (kind_name f.Plan.kind) anchor

let plan_json (p : Plan.t) =
  Printf.sprintf {|{"key": "%s", "faults": [%s]}|} (json_escape (Plan.key p))
    (String.concat ", " (List.map fault_json p.Plan.faults))

let to_json rp =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let c, d, a, k, n, b, h = tally rp.records in
  add "{\n";
  add "  \"config\": {\"n_machines\": %d, \"targets\": %s, \"buckets\": %s, \"kinds\": [%s], \
       \"max_faults\": %d, \"budget\": %d, \"sample_seed\": %d},\n"
    rp.config.n_machines (json_ints rp.config.targets) (json_ints rp.config.buckets)
    (String.concat ", "
       (List.map (fun k -> Printf.sprintf "\"%s\"" (kind_name k)) rp.config.kinds))
    rp.config.max_faults rp.config.budget rp.config.sample_seed;
  add "  \"explored\": %d,\n" (List.length rp.records);
  add
    "  \"verdicts\": {\"completed\": %d, \"degraded\": %d, \"aborted\": %d, \
     \"ckpt_lost\": %d, \"non_terminating\": %d, \"buggy\": %d, \"net_hung\": %d},\n"
    c d a k n b h;
  add "  \"coverage\": [\n";
  List.iteri
    (fun i (s, v, count) ->
      add "    {\"signature\": \"%s\", \"verdict\": \"%s\", \"runs\": %d}%s\n" s
        (verdict_name v) count
        (if i = List.length rp.coverage - 1 then "" else ","))
    rp.coverage;
  add "  ],\n";
  add "  \"records\": [\n";
  List.iteri
    (fun i rc ->
      add "    {\"plan\": %s, \"verdict\": \"%s\", %s\"injected\": %d, \"signature\": \"%s\"}%s\n"
        (plan_json rc.plan) (verdict_name rc.verdict)
        (match rc.completion with
        | Some t -> Printf.sprintf "\"completed_at\": %.6f, " t
        | None -> "")
        rc.injected rc.sig_hash
        (if i = List.length rp.records - 1 then "" else ","))
    rp.records;
  add "  ],\n";
  add "  \"minimized\": [\n";
  List.iteri
    (fun i m ->
      add
        "    {\"found\": %s, \"plan\": %s, \"verdict\": \"%s\", \"faults\": %d, \"probes\": \
         %d, \"probes_saved\": %d, \"scenario\": \"%s\"}%s\n"
        (plan_json m.found) (plan_json m.min_plan) (verdict_name m.min_verdict)
        (List.length m.min_plan.Plan.faults)
        m.probes m.probes_saved
        (json_escape m.scenario)
        (if i = List.length rp.minimized - 1 then "" else ","))
    rp.minimized;
  add "  ]\n";
  add "}\n";
  Buffer.contents buf
