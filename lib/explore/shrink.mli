(** Delta-debugging minimization of failing fault plans.

    Two passes, both driven by a caller-supplied oracle that re-runs a
    candidate plan deterministically and reports whether it still
    reproduces the original classification:

    - {!ddmin} (Zeller-Hildebrandt) minimizes the {e fault set} to a
      1-minimal sublist — removing any single remaining chunk breaks
      reproduction;
    - {!coarsen} then snaps each surviving fault's delay to the
      coarsest time grid that still reproduces, so the witness reads
      "about 12 s in, then ~3 s later" instead of oddly specific
      offsets.

    Oracles are called on candidates only — never on the original
    input, which the caller has already established as failing. *)

(** [ddmin ~test xs] returns [(minimal, probes)]: a 1-minimal sublist of
    [xs] such that [test minimal] holds (order preserved), and the
    number of oracle calls made. [test xs] is assumed true; the empty
    list is never probed. *)
val ddmin : test:('a list -> bool) -> 'a list -> 'a list * int

(** [coarsen ~grid ~test plan] rounds each fault's delay down to a
    multiple of the coarsest bucket in [grid] (tried in the given
    order, typically descending) for which [test] still holds;
    [(coarsened, probes)]. Faults and anchors are otherwise
    untouched. *)
val coarsen : grid:int list -> test:(Plan.t -> bool) -> Plan.t -> Plan.t * int
