(** Wire messages and checkpoint images of the MPICH-Vcl stack.

    A single message type is carried by every connection of the overlay
    (daemon mesh, dispatcher, checkpoint scheduler, checkpoint servers);
    each endpoint pattern-matches the subset it understands. *)

(** An application-level (MPI) message. [(src, dst, tag)] triples are
    unique per execution — the daemon relies on this to drop duplicates
    created by re-execution after a rollback. *)
type app_msg = { src : int; dst : int; tag : int; data : int; bytes : int }

(** A local checkpoint image: the computation-process snapshot plus the
    daemon's channel state, as streamed to a checkpoint server. *)
type image = {
  img_rank : int;
  img_wave : int;
  img_state : int array;  (** application state at the cut *)
  img_buffer : app_msg list;  (** undelivered daemon buffer at the cut *)
  img_redelivery : app_msg list;
      (** messages delivered to the application since its last state
          commit — re-served on re-execution of the partial iteration *)
  img_logged : app_msg list;  (** channel-state (in-transit) messages, in arrival order *)
  img_seen : (int * int) list;  (** (src, tag) duplicate-suppression set at the cut *)
  img_received : (int * int) list;
      (** sender-based logging only: per-sender highest received ssn —
          the resend bound after a restart *)
  img_send_log : (int * (int * app_msg) list) list;
      (** sender-based logging only: per-destination logged sends
          [(dest, [(ssn, msg); ...])], checkpointed so that concurrent
          failures cannot lose the log *)
  img_next_ssn : (int * int) list;
      (** sender-based logging only: per-destination next send sequence
          number — must be checkpointed explicitly (a garbage-collected
          log carries no trace of past sequence numbers) *)
  img_bytes : int;  (** simulated size, drives transfer times *)
}

type t =
  (* daemon <-> daemon *)
  | Peer_hello of { rank : int }
  | App of app_msg
  | Marker of { wave : int }
  (* daemon <-> dispatcher *)
  | Hello of { rank : int; incarnation : int }
  | Ready of { rank : int }
  | Start of { rank_hosts : int array; resume : bool }
  | Terminate
  | Rank_done of { rank : int }
  | Shutdown
  (* daemon <-> checkpoint scheduler *)
  | Sched_hello of { rank : int }
  | Sched_marker of { wave : int }
  | Sched_ack of { rank : int; wave : int }
  (* daemon <-> checkpoint server *)
  | Store of { image : image }
  | Store_done of { wave : int }
  | Fetch of { rank : int; local_wave : int option }
      (** [local_wave]: newest wave available on the host's local disk *)
  | Fetch_use_local of { wave : int }
  | Fetch_image of { image : image option }
  (* scheduler <-> checkpoint server *)
  | Commit of { wave : int }
  (* MPICH-V2-style sender-based logging (daemon <-> daemon / server) *)
  | App_logged of { msg : app_msg; ssn : int }
      (** application message with its sender sequence number *)
  | Log_gc of { rank : int; consumed : (int * int) list }
      (** [rank] checkpointed having consumed, per sender, messages up to
          the given ssn: senders may garbage-collect their logs *)
  | Resend of { rank : int; consumed : (int * int) list }
      (** restarted [rank] asks the peer to resend its logged messages
          with ssn above the restored per-sender consumption bound *)
  | Commit_rank of { rank : int; wave : int }
      (** commit one rank's independent checkpoint *)
  (* checkpoint server <-> checkpoint server (replication plane) *)
  | Mirror_store of { image : image }
      (** primary pushes a freshly prepared image to the rank's mirror *)
  | Mirror_ack of { rank : int; wave : int }
      (** mirror acknowledges a replicated image; the primary only then
          acks the daemon's store *)
  | Sync_pull of { shard : int }
      (** a respawned server asks a neighbour for every committed image
          of the given shard (ranks with [rank mod n_servers = shard]) *)
  | Sync_images of { images : image list }
  (* daemon -> dispatcher *)
  | Ckpt_lost_report of { rank : int }
      (** a restarting rank exhausted the fetch failover ladder (primary
          then mirror, with backoff) without reaching any replica: no
          complete image survives and recovery is impossible *)

val pp : Format.formatter -> t -> unit

(** [image_bytes ~state_bytes msgs] sums a snapshot's simulated size. *)
val image_bytes : state_bytes:int -> app_msg list -> int
