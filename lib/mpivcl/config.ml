type protocol =
  | Non_blocking
  | Blocking
  | Sender_logging
  | Replication of { degree : int }
  | Ulfm of { spares : int }

type t = {
  n_ranks : int;
  protocol : protocol;
  wave_interval : float;
  n_ckpt_servers : int;
  server_bandwidth : float;
  local_restore_time : float;
  ssh_delay : float;
  relaunch_delay : float;
  init_delay_min : float;
  init_delay_max : float;
  handshake_delay : float;
  term_lag_min : float;
  term_lag_max : float;
  term_straggler_prob : float;
  term_straggler_extra : float;
  store_jitter : float;
  ckpt_replicas : int;  (** 1 = primary only (historical behaviour), 2 = primary + mirror *)
  store_ack_timeout : float;  (** scheduler abandons a wave whose acks never arrive *)
  fetch_retries : int;  (** per-replica fetch connection attempts before failing over *)
  fetch_backoff : float;  (** initial fetch retry backoff, doubled per attempt *)
  ckpt_respawn_delay : float;  (** dead server restart delay; resyncs from mirror first *)
  dispatcher_buggy : bool;
  vcl_seeded_race : bool;
  restart_settle : float;
  lazy_peer_mesh : bool;
  rep_respawn : bool;
  rep_failover_window : float;
  ulfm_heartbeat_period : float;
  ulfm_suspicion_timeout : float;
  ulfm_agree_timeout : float;
  ulfm_max_ballots : int;
  net : Simnet.Net.Perturb.profile option;
  topology : Simtopo.Topo.spec option;
}

let default ~n_ranks =
  {
    n_ranks;
    protocol = Non_blocking;
    wave_interval = 30.0;
    n_ckpt_servers = 3;
    server_bandwidth = 1e8;
    local_restore_time = 0.2;
    ssh_delay = 0.5;
    relaunch_delay = 0.2;
    init_delay_min = 0.1;
    init_delay_max = 0.6;
    handshake_delay = 0.1;
    term_lag_min = 0.2;
    term_lag_max = 4.0;
    term_straggler_prob = 0.065;
    term_straggler_extra = 14.0;
    store_jitter = 0.25;
    ckpt_replicas = 1;
    store_ack_timeout = 20.0;
    fetch_retries = 3;
    fetch_backoff = 0.5;
    ckpt_respawn_delay = 45.0;
    dispatcher_buggy = true;
    vcl_seeded_race = false;
    restart_settle = 0.1;
    lazy_peer_mesh = false;
    rep_respawn = true;
    rep_failover_window = 30.0;
    ulfm_heartbeat_period = 2.0;
    ulfm_suspicion_timeout = 8.0;
    ulfm_agree_timeout = 3.0;
    ulfm_max_ballots = 25;
    net = None;
    topology = None;
  }

let restarts_all_ranks t =
  match t.protocol with
  | Non_blocking | Blocking -> true
  | Sender_logging | Replication _ | Ulfm _ -> false

let replication_degree t =
  match t.protocol with
  | Replication { degree } -> Some degree
  | Non_blocking | Blocking | Sender_logging | Ulfm _ -> None

let ulfm_spares t =
  match t.protocol with
  | Ulfm { spares } -> Some spares
  | Non_blocking | Blocking | Sender_logging | Replication _ -> None

let protocol_name = function
  | Non_blocking -> "non-blocking"
  | Blocking -> "blocking"
  | Sender_logging -> "sender-logging"
  | Replication { degree } -> Printf.sprintf "replication-r%d" degree
  | Ulfm { spares } ->
      if spares = 0 then "ulfm" else Printf.sprintf "ulfm-s%d" spares

let dispatcher_port = 100
let scheduler_port = 101
let server_port = 102
let daemon_port = 7000
