open Simkern
open Simos

type t = {
  eng : Engine.t;
  cluster : Cluster.t;
  host : int;
  mutable last_committed : int option;
  mutable committed_count : int;
}

let trace ?level t event detail =
  Engine.record ?level t.eng ~source:"ckpt-scheduler" ~event detail

let spawn eng cluster net ~host ~n_ranks ~wave_interval ~server_hosts =
  let t = { eng; cluster; host; last_committed = None; committed_count = 0 } in
  let conns : (int, Message.t Simnet.Net.conn) Hashtbl.t = Hashtbl.create 64 in
  let acks : (int, unit) Hashtbl.t = Hashtbl.create 64 in
  let current_wave = ref 0 in
  let next_wave = ref 1 in
  (* Bumped on every (dis)connection: a wave only starts over a connection
     set that was stable for the whole inter-wave sleep, which keeps
     markers from reaching a mix of old- and new-incarnation daemons
     during a recovery. *)
  let last_change = ref 0.0 in
  let last_wave_end = ref 0.0 in
  (* Every state change pings [signal]; the main loop re-checks its
     condition on each ping, so no wake-up is ever lost. *)
  let signal = Mailbox.create () in
  let ping () = Mailbox.send signal () in
  let handle_daemon conn =
    match Simnet.Net.recv conn with
    | Simnet.Net.Closed -> ()
    | Simnet.Net.Data (Message.Sched_hello { rank }) ->
        Hashtbl.replace conns rank conn;
        last_change := Engine.now eng;
        trace ~level:Trace.Full t "daemon-connected" (string_of_int rank);
        ping ();
        let rec run () =
          match Simnet.Net.recv conn with
          | Simnet.Net.Closed ->
              (* Only forget the rank if this connection is still the
                 registered one (a new incarnation may have replaced it). *)
              (match Hashtbl.find_opt conns rank with
              | Some c when c == conn ->
                  Hashtbl.remove conns rank;
                  last_change := Engine.now eng;
                  trace ~level:Trace.Full t "daemon-lost" (string_of_int rank);
                  ping ()
              | Some _ | None -> ())
          | Simnet.Net.Data (Message.Sched_ack { rank = r; wave }) ->
              if wave = !current_wave then Hashtbl.replace acks r ();
              ping ();
              run ()
          | Simnet.Net.Data msg ->
              trace t "protocol-error" (Format.asprintf "unexpected %a" Message.pp msg);
              run ()
        in
        run ()
    | Simnet.Net.Data msg ->
        trace t "protocol-error" (Format.asprintf "expected Sched_hello, got %a" Message.pp msg)
  in
  ignore
    (Cluster.spawn_on cluster ~host ~name:"ckpt-scheduler" (fun () ->
         let listener = Simnet.Net.listen net ~host ~port:Config.scheduler_port in
         Fun.protect
           ~finally:(fun () -> Simnet.Net.close_listener listener)
           (fun () ->
             (* Persistent connections to the checkpoint servers. *)
             let server_conns =
               List.filter_map
                 (fun server_host ->
                   match
                     Simnet.Net.connect net ~host ~to_host:server_host
                       ~to_port:Config.server_port
                   with
                   | Ok conn -> Some conn
                   | Error `Refused -> None)
                 server_hosts
             in
             ignore
               (Cluster.spawn_on cluster ~host ~name:"ckpt-scheduler-accept" (fun () ->
                    let rec accept_loop () =
                      match Simnet.Net.accept listener with
                      | None -> ()
                      | Some conn ->
                          ignore
                            (Cluster.spawn_on cluster ~host ~name:"ckpt-scheduler-conn"
                               (fun () -> handle_daemon conn));
                          accept_loop ()
                    in
                    accept_loop ()));
             let wait_until cond =
               while not (cond ()) do
                 ignore (Mailbox.recv signal)
               done
             in
             let rec wave_loop () =
               wait_until (fun () -> Hashtbl.length conns = n_ranks);
               (* A wave starts one interval after the previous wave ended
                  or after the membership last changed, whichever is later:
                  the cadence re-anchors on recoveries (markers never reach
                  a mix of old- and new-incarnation daemons), and the
                  application must survive a full interval after a restart
                  before the next global checkpoint — the mechanism behind
                  the paper's non-terminating runs at high fault
                  frequency. *)
               let target = Float.max !last_change !last_wave_end +. wave_interval in
               let now = Engine.now eng in
               if target > now then Proc.sleep (target -. now);
               if
                 Hashtbl.length conns = n_ranks
                 && Engine.now eng >= Float.max !last_change !last_wave_end +. wave_interval
               then begin
                 let wave = !next_wave in
                 incr next_wave;
                 current_wave := wave;
                 Hashtbl.reset acks;
                 trace ~level:Trace.Full t "wave-start" (string_of_int wave);
                 Hashtbl.iter
                   (fun _rank conn ->
                     ignore (Simnet.Net.send conn (Message.Sched_marker { wave })))
                   conns;
                 wait_until (fun () ->
                     Hashtbl.length acks = n_ranks || Hashtbl.length conns < n_ranks);
                 if Hashtbl.length acks = n_ranks then begin
                   List.iter
                     (fun conn -> ignore (Simnet.Net.send conn (Message.Commit { wave })))
                     server_conns;
                   t.last_committed <- Some wave;
                   t.committed_count <- t.committed_count + 1;
                   trace t "wave-commit" (string_of_int wave)
                 end
                 else trace ~level:Trace.Full t "wave-abort" (string_of_int wave);
                 last_wave_end := Engine.now eng;
                 current_wave := 0
               end;
               wave_loop ()
             in
             wave_loop ())));
  t

let last_committed t = t.last_committed
let committed_count t = t.committed_count
let halt t = Cluster.kill_all t.cluster ~host:t.host
