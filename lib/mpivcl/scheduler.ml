open Simkern
open Simos

type t = {
  eng : Engine.t;
  cluster : Cluster.t;
  host : int;
  mutable last_committed : int option;
  mutable committed_count : int;
}

let trace ?level t event detail =
  Engine.record ?level t.eng ~source:"ckpt-scheduler" ~event detail

let spawn eng cluster net ~host ~n_ranks ~wave_interval ?(store_ack_timeout = 20.0)
    ~server_hosts () =
  let t = { eng; cluster; host; last_committed = None; committed_count = 0 } in
  let conns : (int, Message.t Simnet.Net.conn) Hashtbl.t = Hashtbl.create 64 in
  let acks : (int, unit) Hashtbl.t = Hashtbl.create 64 in
  let current_wave = ref 0 in
  let next_wave = ref 1 in
  (* Bumped on every (dis)connection: a wave only starts over a connection
     set that was stable for the whole inter-wave sleep, which keeps
     markers from reaching a mix of old- and new-incarnation daemons
     during a recovery. *)
  let last_change = ref 0.0 in
  let last_wave_end = ref 0.0 in
  (* Time of the last store ack from any daemon, current wave or not:
     the liveness signal that wakes a dormant cadence (below). *)
  let last_ack = ref 0.0 in
  let abandoned_streak = ref 0 in
  (* Every state change pings [signal]; the main loop re-checks its
     condition on each ping, so no wake-up is ever lost. *)
  let signal = Mailbox.create () in
  let ping () = Mailbox.send signal () in
  let handle_daemon conn =
    match Simnet.Net.recv conn with
    | Simnet.Net.Closed -> ()
    | Simnet.Net.Data (Message.Sched_hello { rank }) ->
        Hashtbl.replace conns rank conn;
        last_change := Engine.now eng;
        trace ~level:Trace.Full t "daemon-connected" (string_of_int rank);
        ping ();
        let rec run () =
          match Simnet.Net.recv conn with
          | Simnet.Net.Closed ->
              (* Only forget the rank if this connection is still the
                 registered one (a new incarnation may have replaced it). *)
              (match Hashtbl.find_opt conns rank with
              | Some c when c == conn ->
                  Hashtbl.remove conns rank;
                  last_change := Engine.now eng;
                  trace ~level:Trace.Full t "daemon-lost" (string_of_int rank);
                  ping ()
              | Some _ | None -> ())
          | Simnet.Net.Data (Message.Sched_ack { rank = r; wave }) ->
              last_ack := Engine.now eng;
              if wave = !current_wave then Hashtbl.replace acks r ();
              ping ();
              run ()
          | Simnet.Net.Data msg ->
              trace t "protocol-error" (Format.asprintf "unexpected %a" Message.pp msg);
              run ()
        in
        run ()
    | Simnet.Net.Data msg ->
        trace t "protocol-error" (Format.asprintf "expected Sched_hello, got %a" Message.pp msg)
  in
  ignore
    (Cluster.spawn_on cluster ~host ~name:"ckpt-scheduler" (fun () ->
         let listener = Simnet.Net.listen net ~host ~port:Config.scheduler_port in
         Fun.protect
           ~finally:(fun () -> Simnet.Net.close_listener listener)
           (fun () ->
             (* Persistent connections to the checkpoint servers. *)
             let server_conns =
               List.filter_map
                 (fun server_host ->
                   match
                     Simnet.Net.connect net ~host ~to_host:server_host
                       ~to_port:Config.server_port
                   with
                   | Ok conn -> Some conn
                   | Error `Refused -> None)
                 server_hosts
             in
             ignore
               (Cluster.spawn_on cluster ~host ~name:"ckpt-scheduler-accept" (fun () ->
                    let rec accept_loop () =
                      match Simnet.Net.accept listener with
                      | None -> ()
                      | Some conn ->
                          ignore
                            (Cluster.spawn_on cluster ~host ~name:"ckpt-scheduler-conn"
                               (fun () -> handle_daemon conn));
                          accept_loop ()
                    in
                    accept_loop ()));
             let wait_until cond =
               while not (cond ()) do
                 ignore (Mailbox.recv signal)
               done
             in
             let rec wave_loop () =
               wait_until (fun () -> Hashtbl.length conns = n_ranks);
               (* A wave starts one interval after the previous wave ended
                  or after the membership last changed, whichever is later:
                  the cadence re-anchors on recoveries (markers never reach
                  a mix of old- and new-incarnation daemons), and the
                  application must survive a full interval after a restart
                  before the next global checkpoint — the mechanism behind
                  the paper's non-terminating runs at high fault
                  frequency. *)
               let target = Float.max !last_change !last_wave_end +. wave_interval in
               let now = Engine.now eng in
               if target > now then Proc.sleep (target -. now);
               if
                 Hashtbl.length conns = n_ranks
                 && Engine.now eng >= Float.max !last_change !last_wave_end +. wave_interval
               then begin
                 let wave = !next_wave in
                 incr next_wave;
                 current_wave := wave;
                 Hashtbl.reset acks;
                 trace ~level:Trace.Full t "wave-start" (string_of_int wave);
                 Hashtbl.iter
                   (fun _rank conn ->
                     ignore (Simnet.Net.send conn (Message.Sched_marker { wave })))
                   conns;
                 (* Wait for the wave's store acks, but never forever: a
                    dead or frozen checkpoint server means some daemons
                    can never ack, and without a deadline the wave state
                    machine wedges here for good. One marker retry covers
                    a straggler; after that the wave is abandoned and the
                    cadence continues. The timer is cancelled on the fast
                    path, so healthy runs see no new events or traces. *)
                 let rec await_acks attempt =
                   let deadline = Engine.now eng +. store_ack_timeout in
                   let fired = ref false in
                   let timer =
                     Engine.schedule eng ~delay:store_ack_timeout (fun () ->
                         fired := true;
                         ping ())
                   in
                   wait_until (fun () ->
                       Hashtbl.length acks = n_ranks
                       || Hashtbl.length conns < n_ranks
                       || Engine.now eng >= deadline);
                   if not !fired then Engine.cancel timer;
                   if Hashtbl.length acks = n_ranks then `Committed
                   else if Hashtbl.length conns < n_ranks then `Membership
                   else if attempt < 1 then begin
                     trace ~level:Trace.Full t "wave-retry" (string_of_int wave);
                     Hashtbl.iter
                       (fun rank conn ->
                         if not (Hashtbl.mem acks rank) then
                           ignore (Simnet.Net.send conn (Message.Sched_marker { wave })))
                       conns;
                     await_acks (attempt + 1)
                   end
                   else `Abandoned
                 in
                 (match await_acks 0 with
                 | `Committed ->
                     abandoned_streak := 0;
                     List.iter
                       (fun conn -> ignore (Simnet.Net.send conn (Message.Commit { wave })))
                       server_conns;
                     t.last_committed <- Some wave;
                     t.committed_count <- t.committed_count + 1;
                     trace t "wave-commit" (string_of_int wave)
                 | `Membership ->
                     abandoned_streak := 0;
                     trace ~level:Trace.Full t "wave-abort" (string_of_int wave)
                 | `Abandoned ->
                     incr abandoned_streak;
                     trace t "wave-abandoned"
                       (Printf.sprintf "wave %d (%d/%d acks)" wave (Hashtbl.length acks)
                          n_ranks);
                     if !abandoned_streak >= 2 then begin
                       (* Two waves in a row timed out with a stable
                          membership: the application plane is wedged or
                          cut off, and re-arming the cadence would only
                          keep the simulation clock alive — masking the
                          wedge from the classifier's quiescence signal.
                          Sleep timerless until a daemon event (a
                          (re)connection, or an ack finally flushed by a
                          revived server — no marker is in flight, so
                          any ack seen while dormant is such a late
                          flush) shows the plane moving again. *)
                       let c0 = !last_change and a0 = !last_ack in
                       trace t "cadence-dormant" (string_of_int wave);
                       wait_until (fun () -> !last_change <> c0 || !last_ack <> a0);
                       abandoned_streak := 0
                     end);
                 last_wave_end := Engine.now eng;
                 current_wave := 0
               end;
               wave_loop ()
             in
             wave_loop ())));
  t

let last_committed t = t.last_committed
let committed_count t = t.committed_count
let halt t = Cluster.kill_all t.cluster ~host:t.host
