type app_msg = { src : int; dst : int; tag : int; data : int; bytes : int }

type image = {
  img_rank : int;
  img_wave : int;
  img_state : int array;
  img_buffer : app_msg list;
  img_redelivery : app_msg list;
  img_logged : app_msg list;
  img_seen : (int * int) list;
  img_received : (int * int) list;
  img_send_log : (int * (int * app_msg) list) list;
  img_next_ssn : (int * int) list;
  img_bytes : int;
}

type t =
  | Peer_hello of { rank : int }
  | App of app_msg
  | Marker of { wave : int }
  | Hello of { rank : int; incarnation : int }
  | Ready of { rank : int }
  | Start of { rank_hosts : int array; resume : bool }
  | Terminate
  | Rank_done of { rank : int }
  | Shutdown
  | Sched_hello of { rank : int }
  | Sched_marker of { wave : int }
  | Sched_ack of { rank : int; wave : int }
  | Store of { image : image }
  | Store_done of { wave : int }
  | Fetch of { rank : int; local_wave : int option }
  | Fetch_use_local of { wave : int }
  | Fetch_image of { image : image option }
  | Commit of { wave : int }
  | App_logged of { msg : app_msg; ssn : int }
  | Log_gc of { rank : int; consumed : (int * int) list }
  | Resend of { rank : int; consumed : (int * int) list }
  | Commit_rank of { rank : int; wave : int }
  | Mirror_store of { image : image }
  | Mirror_ack of { rank : int; wave : int }
  | Sync_pull of { shard : int }
  | Sync_images of { images : image list }
  | Ckpt_lost_report of { rank : int }

let pp ppf = function
  | Peer_hello { rank } -> Format.fprintf ppf "Peer_hello(%d)" rank
  | App m -> Format.fprintf ppf "App(%d->%d tag %d)" m.src m.dst m.tag
  | Marker { wave } -> Format.fprintf ppf "Marker(%d)" wave
  | Hello { rank; incarnation } -> Format.fprintf ppf "Hello(%d, inc %d)" rank incarnation
  | Ready { rank } -> Format.fprintf ppf "Ready(%d)" rank
  | Start { resume; _ } -> Format.fprintf ppf "Start(resume=%b)" resume
  | Terminate -> Format.pp_print_string ppf "Terminate"
  | Rank_done { rank } -> Format.fprintf ppf "Rank_done(%d)" rank
  | Shutdown -> Format.pp_print_string ppf "Shutdown"
  | Sched_hello { rank } -> Format.fprintf ppf "Sched_hello(%d)" rank
  | Sched_marker { wave } -> Format.fprintf ppf "Sched_marker(%d)" wave
  | Sched_ack { rank; wave } -> Format.fprintf ppf "Sched_ack(%d, wave %d)" rank wave
  | Store { image } -> Format.fprintf ppf "Store(rank %d, wave %d)" image.img_rank image.img_wave
  | Store_done { wave } -> Format.fprintf ppf "Store_done(wave %d)" wave
  | Fetch { rank; _ } -> Format.fprintf ppf "Fetch(%d)" rank
  | Fetch_use_local { wave } -> Format.fprintf ppf "Fetch_use_local(wave %d)" wave
  | Fetch_image { image } ->
      Format.fprintf ppf "Fetch_image(%s)"
        (match image with Some i -> Printf.sprintf "wave %d" i.img_wave | None -> "none")
  | Commit { wave } -> Format.fprintf ppf "Commit(wave %d)" wave
  | App_logged { msg; ssn } ->
      Format.fprintf ppf "App_logged(%d->%d tag %d ssn %d)" msg.src msg.dst msg.tag ssn
  | Log_gc { rank; _ } -> Format.fprintf ppf "Log_gc(%d)" rank
  | Resend { rank; _ } -> Format.fprintf ppf "Resend(%d)" rank
  | Commit_rank { rank; wave } -> Format.fprintf ppf "Commit_rank(%d, wave %d)" rank wave
  | Mirror_store { image } ->
      Format.fprintf ppf "Mirror_store(rank %d, wave %d)" image.img_rank image.img_wave
  | Mirror_ack { rank; wave } -> Format.fprintf ppf "Mirror_ack(%d, wave %d)" rank wave
  | Sync_pull { shard } -> Format.fprintf ppf "Sync_pull(shard %d)" shard
  | Sync_images { images } -> Format.fprintf ppf "Sync_images(%d)" (List.length images)
  | Ckpt_lost_report { rank } -> Format.fprintf ppf "Ckpt_lost_report(%d)" rank

let image_bytes ~state_bytes msgs =
  state_bytes + List.fold_left (fun acc m -> acc + m.bytes + 32) 0 msgs
