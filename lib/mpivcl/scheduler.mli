(** Checkpoint scheduler.

    Triggers a checkpoint wave every [wave_interval] seconds once every
    daemon of the current incarnation is connected, collects the
    end-of-checkpoint acknowledgements, and only then asserts the end of
    the global checkpoint to the checkpoint servers (§3). A new wave
    starts only after the previous one ended; a wave is aborted if any
    daemon connection breaks while it is in progress.

    The ack wait is bounded: after [store_ack_timeout] seconds without
    the full ack set the scheduler re-sends markers to the stragglers
    once, then abandons the wave (traced [wave-abandoned]) — a dead or
    frozen checkpoint server degrades the wave instead of wedging the
    scheduler forever. *)

open Simkern
open Simos

type t

val spawn :
  Engine.t ->
  Cluster.t ->
  Message.t Simnet.Net.t ->
  host:int ->
  n_ranks:int ->
  wave_interval:float ->
  ?store_ack_timeout:float ->
  server_hosts:int list ->
  unit ->
  t

(** [last_committed t] is the newest globally committed wave. *)
val last_committed : t -> int option

(** [committed_count t] counts committed waves (analysis). *)
val committed_count : t -> int

val halt : t -> unit
