(** Shared environment threaded through the MPICH-Vcl components. *)

open Simkern
open Simos

type t = {
  eng : Engine.t;
  cluster : Cluster.t;
  net : Message.t Simnet.Net.t;
  fci : Fci.Runtime.t option;  (** [None]: run without fault injection *)
  cfg : Config.t;
  disk : Local_disk.t;
  app : App.t;
  state_bytes : int;  (** per-rank checkpoint image base size *)
  dispatcher_host : int;
  scheduler_host : int;
  server_hosts : int array;
  rng : Rng.t;  (** service-time jitter (termination lags) *)
}

(** [server_index t ~rank] is the index (shard) of the rank's primary
    checkpoint server, [rank mod n_servers]. *)
val server_index : t -> rank:int -> int

(** [server_for t ~rank] is the checkpoint-server host assigned to a rank
    (round-robin). *)
val server_for : t -> rank:int -> int

(** [mirror_index t ~rank] is the index of the rank's mirror server (the
    next server in the ring), or [None] when replication is off
    ([ckpt_replicas < 2]) or there is only one server. *)
val mirror_index : t -> rank:int -> int option

(** [mirror_for t ~rank] is the mirror server's host, if any. *)
val mirror_for : t -> rank:int -> int option
