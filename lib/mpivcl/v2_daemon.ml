open Simkern
open Simos
module Net = Simnet.Net
module IntSet = Set.Make (Int)

type app_request =
  | A_send of Message.app_msg
  | A_recv of { src : int; tag : int; reply : int Ivar.t }
  | A_commit of int array
  | A_finalize

type dev =
  | D_ctrl of Message.t option
  | D_server of Message.t option
  | D_peer of int * Message.t option
  | D_peer_joined of int * Message.t Net.conn
  | D_app of app_request
  | D_ckpt_tick of int  (* generation, to ignore stale timers *)

let pump cluster ~host ~name conn wrap events =
  ignore
    (Cluster.spawn_on cluster ~host ~name (fun () ->
         let rec run () =
           match Net.recv conn with
           | Net.Data m ->
               Mailbox.send events (wrap (Some m));
               run ()
           | Net.Closed -> Mailbox.send events (wrap None)
         in
         run ()))

let spawn (env : Env.t) ~rank ~host ~incarnation =
  let eng = env.Env.eng in
  let cluster = env.Env.cluster in
  let cfg = env.Env.cfg in
  let name = Printf.sprintf "vdaemon-%d" rank in
  let src = Printf.sprintf "v2daemon-%d" rank in
  let trace ?level event detail = Engine.record ?level eng ~source:src ~event detail in
  (* Chatty per-message / per-wave events: Full-gated, lazily formatted. *)
  let tracel event f = Engine.record_lazy ~level:Trace.Full eng ~source:src ~event f in
  Cluster.spawn_on cluster ~host ~name (fun () ->
      let self = Proc.self () in
      let app_proc = ref None in
      let vars = Fci.Control.make_vars () in
      let base_target =
        {
          Fci.Control.target_name = Printf.sprintf "rank%d@%d" rank host;
          proc = self;
          kill =
            (fun () ->
              Option.iter Proc.kill !app_proc;
              Proc.kill self);
          freeze =
            (fun () ->
              Option.iter Proc.freeze !app_proc;
              Proc.freeze self);
          unfreeze =
            (fun () ->
              Option.iter Proc.unfreeze !app_proc;
              Proc.unfreeze self);
          read_var = (fun _ -> None);
          write_var = (fun _ _ -> false);
          subscribe_var = (fun _ -> ());
        }
      in
      let target = Fci.Control.with_vars base_target vars in
      (match env.Env.fci with
      | Some rt -> Fci.Runtime.register rt ~machine:host target
      | None -> ());
      tracel "daemon-start" (fun () -> Printf.sprintf "host %d incarnation %d" host incarnation);
      Proc.sleep
        (cfg.Config.init_delay_min
        +. Rng.float env.Env.rng (cfg.Config.init_delay_max -. cfg.Config.init_delay_min));
      match
        Net.connect env.Env.net ~host ~to_host:env.Env.dispatcher_host
          ~to_port:Config.dispatcher_port
      with
      | Error `Refused -> trace "daemon-abort" "dispatcher unreachable"
      | Ok dconn -> (
          ignore (Net.send dconn (Message.Hello { rank; incarnation }));
          Proc.sleep cfg.Config.handshake_delay;
          (match env.Env.fci with
          | Some rt -> Fci.Runtime.breakpoint rt ~machine:host `Before "localMPI_setCommand"
          | None -> ());
          (* Restore walks the same failover ladder as the vcl daemon:
             primary with bounded exponential backoff, then the mirror;
             only when no replica is reachable at all is the checkpoint
             declared lost. *)
          let server_host = Env.server_for env ~rank in
          let fetch_from to_host =
            match
              Net.connect env.Env.net ~host ~to_host ~to_port:Config.server_port
            with
            | Error `Refused -> `Unreachable
            | Ok fconn ->
                let local_wave = Local_disk.newest_wave env.Env.disk ~host ~rank in
                ignore (Net.send fconn (Message.Fetch { rank; local_wave }));
                let result =
                  match Net.recv fconn with
                  | Net.Data (Message.Fetch_use_local { wave }) ->
                      Proc.sleep cfg.Config.local_restore_time;
                      `Image (Local_disk.lookup env.Env.disk ~host ~rank ~wave)
                  | Net.Data (Message.Fetch_image { image }) -> `Image image
                  | Net.Data _ -> `Image None
                  | Net.Closed -> `Unreachable
                in
                Net.close fconn;
                result
          in
          let fetch_ladder () =
            let replicas =
              server_host
              :: (match Env.mirror_for env ~rank with Some h -> [ h ] | None -> [])
            in
            let with_backoff to_host =
              let rec attempt k =
                match fetch_from to_host with
                | `Image _ as r -> r
                | `Unreachable ->
                    if k + 1 < cfg.Config.fetch_retries then begin
                      Proc.sleep
                        (Net.Perturb.backoff ~rto_initial:cfg.Config.fetch_backoff
                           ~rto_max:(8.0 *. cfg.Config.fetch_backoff) ~attempt:k);
                      attempt (k + 1)
                    end
                    else `Unreachable
              in
              attempt 0
            in
            let rec walk = function
              | [] -> `Lost
              | to_host :: rest -> (
                  match with_backoff to_host with
                  | `Image img -> `Image img
                  | `Unreachable ->
                      if rest <> [] then
                        trace "fetch-failover"
                          (Printf.sprintf "server host %d unreachable, trying mirror" to_host);
                      walk rest)
            in
            walk replicas
          in
          match (if incarnation = 0 then `Image None else fetch_ladder ()) with
          | `Lost ->
              trace "ckpt-lost"
                (Printf.sprintf "rank %d: no storage replica reachable" rank);
              ignore (Net.send dconn (Message.Ckpt_lost_report { rank }));
              trace "daemon-abort" "checkpoint storage lost"
          | `Image image ->
          Proc.sleep cfg.Config.restart_settle;
          (match image with
          | Some img -> tracel "restored" (fun () -> Printf.sprintf "wave %d" img.Message.img_wave)
          | None -> trace ~level:Trace.Full "restored" "fresh");
          let listener = Net.listen env.Env.net ~host ~port:Config.daemon_port in
          Fun.protect ~finally:(fun () -> Net.close_listener listener) @@ fun () ->
          let events : dev Mailbox.t = Mailbox.create () in
          ignore
            (Cluster.spawn_on cluster ~host ~name:(name ^ "-accept") (fun () ->
                 let rec accept_loop () =
                   match Net.accept listener with
                   | None -> ()
                   | Some conn ->
                       (match Net.recv conn with
                       | Net.Data (Message.Peer_hello { rank = peer }) ->
                           Mailbox.send events (D_peer_joined (peer, conn))
                       | Net.Data _ | Net.Closed -> Net.close conn);
                       accept_loop ()
                 in
                 accept_loop ()));
          let server_conn =
            ref
              (match
                 Net.connect env.Env.net ~host ~to_host:server_host ~to_port:Config.server_port
               with
              | Ok c ->
                  pump cluster ~host ~name:(name ^ "-server") c (fun m -> D_server m) events;
                  Some c
              | Error `Refused -> None)
          in
          (* Stores ride the failover ladder too: reconnect to the
             primary if it came back, else to the mirror. *)
          let ensure_server_conn () =
            (match !server_conn with
            | Some c when Net.is_open c -> ()
            | Some _ | None ->
                server_conn := None;
                let candidates =
                  server_host
                  :: (match Env.mirror_for env ~rank with Some h -> [ h ] | None -> [])
                in
                List.iter
                  (fun to_host ->
                    if !server_conn = None then
                      match
                        Net.connect env.Env.net ~host ~to_host ~to_port:Config.server_port
                      with
                      | Ok c ->
                          trace "server-reconnect"
                            (Printf.sprintf "storage host %d%s" to_host
                               (if to_host = server_host then "" else " (mirror)"));
                          pump cluster ~host ~name:(name ^ "-server") c
                            (fun m -> D_server m)
                            events;
                          server_conn := Some c
                      | Error `Refused -> ())
                  candidates);
            !server_conn
          in
          pump cluster ~host ~name:(name ^ "-ctrl") dconn (fun m -> D_ctrl m) events;
          ignore (Net.send dconn (Message.Ready { rank }));

          (* ---------------- protocol state ---------------- *)
          let n = cfg.Config.n_ranks in
          let lazy_mesh = cfg.Config.lazy_peer_mesh in
          let rank_hosts = ref [||] in
          let peer_conns : (int, Message.t Net.conn) Hashtbl.t = Hashtbl.create 16 in
          let buffer : Message.app_msg list ref = ref [] in
          let parked : (int * int * int Ivar.t) list ref = ref [] in
          let seen : (int * int, unit) Hashtbl.t = Hashtbl.create 256 in
          let redelivery : Message.app_msg list ref = ref [] in
          let committed_state = ref [||] in
          (* sender-based logging state *)
          let next_ssn : (int, int) Hashtbl.t = Hashtbl.create 16 in
          let send_log : (int, (int * Message.app_msg) list) Hashtbl.t = Hashtbl.create 16 in
          (* per-sender highest received ssn (FIFO channels: contiguous) *)
          let received : (int, int) Hashtbl.t = Hashtbl.create 16 in
          let local_wave = ref 0 in
          (* (wave, reception bounds at the snapshot): the GC broadcast
             must use the bounds the image covers, not the bounds at
             Store_done time — messages arriving during the transfer are
             not in the image and must stay in the senders' logs. *)
          let ckpt_in_flight : (int * (int * int) list) option ref = ref None in
          let ckpt_gen = ref 0 in
          (* peers we must ask for a resend once they are reachable *)
          let resend_pending = ref IntSet.empty in
          (match image with
          | None -> committed_state := Array.make env.Env.app.App.state_size 0
          | Some img ->
              committed_state := Array.copy img.Message.img_state;
              local_wave := img.Message.img_wave;
              List.iter (fun key -> Hashtbl.replace seen key ()) img.Message.img_seen;
              List.iter (fun (src, ssn) -> Hashtbl.replace received src ssn)
                img.Message.img_received;
              List.iter
                (fun (dst, entries) -> Hashtbl.replace send_log dst entries)
                img.Message.img_send_log;
              List.iter
                (fun (dst, ssn) -> Hashtbl.replace next_ssn dst ssn)
                img.Message.img_next_ssn;
              buffer := img.Message.img_redelivery @ img.Message.img_buffer);

          let consumed_bounds () =
            Hashtbl.fold (fun src ssn acc -> (src, ssn) :: acc) received []
          in
          let join_peer peer conn =
            (* Under a lazy mesh a simultaneous cross-connect can race
               this accept with a connect of our own; each side keeps the
               first connection it obtained for its sends, so per-sender
               ssns stay contiguous on a single FIFO channel. *)
            if not (lazy_mesh && Hashtbl.mem peer_conns peer) then
              Hashtbl.replace peer_conns peer conn;
            pump cluster ~host ~name:(Printf.sprintf "%s-peer%d" name peer) conn
              (fun m -> D_peer (peer, m))
              events;
            if IntSet.mem peer !resend_pending then begin
              resend_pending := IntSet.remove peer !resend_pending;
              ignore (Net.send conn (Message.Resend { rank; consumed = consumed_bounds () }))
            end
          in
          let connect_peer peer peer_host =
            match Net.connect env.Env.net ~host ~to_host:peer_host ~to_port:Config.daemon_port with
            | Ok conn ->
                ignore (Net.send conn (Message.Peer_hello { rank }));
                join_peer peer conn;
                true
            | Error `Refused ->
                trace ~level:Trace.Full "peer-connect-failed" (string_of_int peer);
                false
          in
          let forward_send (m : Message.app_msg) =
            (* Log before sending: a resend must be possible even if the
               wire send fails (the peer may be restarting). *)
            let dst = m.Message.dst in
            let ssn = Option.value ~default:1 (Hashtbl.find_opt next_ssn dst) in
            Hashtbl.replace next_ssn dst (ssn + 1);
            Hashtbl.replace send_log dst
              ((ssn, m) :: Option.value ~default:[] (Hashtbl.find_opt send_log dst));
            (* Lazy mesh: open the channel on first send. *)
            if
              (not (Hashtbl.mem peer_conns dst))
              && lazy_mesh
              && Array.length !rank_hosts > dst
            then ignore (connect_peer dst (!rank_hosts).(dst));
            match Hashtbl.find_opt peer_conns dst with
            | Some conn ->
                if not (Net.send conn ~size:m.Message.bytes (Message.App_logged { msg = m; ssn }))
                then tracel "send-deferred" (fun () -> Printf.sprintf "to %d (closed, logged)" dst)
            | None -> tracel "send-deferred" (fun () -> Printf.sprintf "to %d (no connection, logged)" dst)
          in
          let deliver (m : Message.app_msg) =
            let rec split acc = function
              | [] -> None
              | (src, tag, reply) :: rest when src = m.Message.src && tag = m.Message.tag ->
                  parked := List.rev_append acc rest;
                  Some reply
              | r :: rest -> split (r :: acc) rest
            in
            match split [] !parked with
            | Some reply ->
                redelivery := m :: !redelivery;
                Ivar.fill reply m.Message.data
            | None -> buffer := !buffer @ [ m ]
          in
          let serve_recv src tag reply =
            let rec split acc = function
              | [] -> None
              | (m : Message.app_msg) :: rest when m.Message.src = src && m.Message.tag = tag ->
                  buffer := List.rev_append acc rest;
                  Some m
              | m :: rest -> split (m :: acc) rest
            in
            match split [] !buffer with
            | Some m ->
                redelivery := m :: !redelivery;
                Ivar.fill reply m.Message.data
            | None -> parked := !parked @ [ (src, tag, reply) ]
          in
          let schedule_tick delay =
            incr ckpt_gen;
            let gen = !ckpt_gen in
            Engine.schedule eng ~delay (fun () -> Mailbox.send events (D_ckpt_tick gen))
            |> ignore
          in
          let take_checkpoint () =
            match !ckpt_in_flight with
            | Some _ -> trace ~level:Trace.Full "checkpoint-skipped" "previous still in flight"
            | None ->
                incr local_wave;
                let wave = !local_wave in
                let logged_msgs =
                  Hashtbl.fold
                    (fun _ entries acc -> List.map snd entries @ acc)
                    send_log []
                in
                let img_bytes =
                  Message.image_bytes ~state_bytes:env.Env.state_bytes
                    (!buffer @ !redelivery @ logged_msgs)
                in
                let img =
                  {
                    Message.img_rank = rank;
                    img_wave = wave;
                    img_state = Array.copy !committed_state;
                    img_buffer = !buffer;
                    img_redelivery = !redelivery;
                    img_logged = [];
                    img_seen = Hashtbl.fold (fun key () acc -> key :: acc) seen [];
                    img_received = consumed_bounds ();
                    img_send_log =
                      Hashtbl.fold (fun dst entries acc -> (dst, entries) :: acc) send_log [];
                    img_next_ssn =
                      Hashtbl.fold (fun dst ssn acc -> (dst, ssn) :: acc) next_ssn [];
                    img_bytes;
                  }
                in
                Local_disk.store env.Env.disk ~host img;
                ckpt_in_flight := Some (wave, img.Message.img_received);
                (match ensure_server_conn () with
                | Some conn -> ignore (Net.send conn (Message.Store { image = img }))
                | None -> ckpt_in_flight := None);
                tracel "local-checkpoint" (fun () -> Printf.sprintf "wave %d" wave)
          in
          let spawn_app () =
            let state =
              match image with
              | Some img -> Array.copy img.Message.img_state
              | None -> Array.make env.Env.app.App.state_size 0
            in
            committed_state := Array.copy state;
            let ctx =
              {
                App.rank;
                size = n;
                state;
                send =
                  (fun ~dst ~tag ?(bytes = 1024) data ->
                    Mailbox.send events
                      (D_app (A_send { Message.src = rank; dst; tag; data; bytes })));
                recv =
                  (fun ~src ~tag ->
                    let reply = Ivar.create () in
                    Mailbox.send events (D_app (A_recv { src; tag; reply }));
                    Ivar.read reply);
                commit =
                  (fun () -> Mailbox.send events (D_app (A_commit (Array.copy state))));
                finalize = (fun () -> Mailbox.send events (D_app A_finalize));
                set_app_var = (fun var v -> Fci.Control.set_var vars var v);
                noise =
                  (let salt = Rng.int64 env.Env.rng in
                   fun k ->
                     let x =
                       Int64.to_int
                         (Int64.logand
                            (Rng.int64 (Rng.create (Int64.add salt (Int64.of_int k))))
                            0xFFFFFL)
                     in
                     (float_of_int x /. 524287.5) -. 1.0);
              }
            in
            let p =
              Cluster.spawn_on cluster ~host ~name:(Printf.sprintf "mpi-%d" rank) (fun () ->
                  env.Env.app.App.main ctx)
            in
            app_proc := Some p;
            (* Independent checkpoint cadence, desynchronised across
               ranks. *)
            schedule_tick (Rng.float env.Env.rng cfg.Config.wave_interval);
            trace ~level:Trace.Full "app-start" ""
          in
          let handle_resend peer consumed =
            let bound =
              Option.value ~default:0 (List.assoc_opt rank consumed)
            in
            match Hashtbl.find_opt peer_conns peer with
            | None -> trace ~level:Trace.Full "resend-no-conn" (string_of_int peer)
            | Some conn ->
                let entries =
                  Option.value ~default:[] (Hashtbl.find_opt send_log peer)
                  |> List.filter (fun (ssn, _) -> ssn > bound)
                  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
                in
                tracel "resend" (fun () ->
                    Printf.sprintf "%d messages to %d (> ssn %d)" (List.length entries) peer bound);
                List.iter
                  (fun (ssn, m) ->
                    ignore
                      (Net.send conn ~size:m.Message.bytes (Message.App_logged { msg = m; ssn })))
                  entries
          in
          let rec loop () =
            match Mailbox.recv events with
            | D_ctrl None -> trace "daemon-exit" "dispatcher connection lost"
            | D_ctrl (Some Message.Terminate) ->
                Option.iter Proc.kill !app_proc;
                trace "daemon-exit" "terminated on order"
            | D_ctrl (Some Message.Shutdown) ->
                Option.iter Proc.kill !app_proc;
                trace "daemon-exit" "shutdown"
            | D_ctrl (Some (Message.Start { rank_hosts = hosts; resume })) ->
                rank_hosts := hosts;
                trace ~level:Trace.Full (if resume then "resume" else "start") "";
                if resume then begin
                  (* I am the restarted rank: rebuild the full mesh and ask
                     every reachable peer for its logged messages. Even
                     under a lazy mesh every peer must be asked — a
                     first-contact message can be logged at a sender this
                     rank has no local record of. *)
                  for peer = 0 to n - 1 do
                    if peer <> rank then
                      if connect_peer peer hosts.(peer) then
                        ignore
                          (Net.send (Hashtbl.find peer_conns peer)
                             (Message.Resend { rank; consumed = consumed_bounds () }))
                      else resend_pending := IntSet.add peer !resend_pending
                  done;
                  spawn_app ()
                end
                else if lazy_mesh then spawn_app ()
                else begin
                  for peer = 0 to rank - 1 do
                    ignore (connect_peer peer hosts.(peer))
                  done;
                  if Hashtbl.length peer_conns = n - 1 then spawn_app ()
                end;
                loop ()
            | D_ctrl (Some msg) ->
                trace "protocol-error" (Format.asprintf "from dispatcher: %a" Message.pp msg);
                loop ()
            | D_peer_joined (peer, conn) ->
                join_peer peer conn;
                if
                  (not lazy_mesh)
                  && (not (Option.is_some !app_proc))
                  && Hashtbl.length peer_conns = n - 1
                then spawn_app ();
                loop ()
            | D_peer (peer, None) ->
                Hashtbl.remove peer_conns peer;
                trace ~level:Trace.Full "peer-lost" (string_of_int peer);
                loop ()
            | D_peer (_, Some (Message.App_logged { msg = m; ssn })) ->
                let src = m.Message.src in
                let bound = Option.value ~default:0 (Hashtbl.find_opt received src) in
                if ssn > bound then Hashtbl.replace received src ssn;
                if Hashtbl.mem seen (src, m.Message.tag) then
                  trace "duplicate-dropped"
                    (Printf.sprintf "%d->%d tag %d" src m.Message.dst m.Message.tag)
                else begin
                  Hashtbl.replace seen (src, m.Message.tag) ();
                  deliver m
                end;
                loop ()
            | D_peer (peer, Some (Message.Log_gc { rank = _; consumed })) ->
                (match List.assoc_opt rank consumed with
                | Some bound ->
                    let entries =
                      Option.value ~default:[] (Hashtbl.find_opt send_log peer)
                      |> List.filter (fun (ssn, _) -> ssn > bound)
                    in
                    Hashtbl.replace send_log peer entries
                | None -> ());
                loop ()
            | D_peer (peer, Some (Message.Resend { rank = _; consumed })) ->
                handle_resend peer consumed;
                loop ()
            | D_peer (peer, Some msg) ->
                trace "protocol-error" (Format.asprintf "from peer %d: %a" peer Message.pp msg);
                loop ()
            | D_server None ->
                (* The storage connection died: an in-flight store will
                   never be acked, so abandon it (the next tick retries
                   over a reconnected ladder) instead of wedging the
                   checkpoint cadence behind a dead server. *)
                (match !ckpt_in_flight with
                | Some (w, _) ->
                    ckpt_in_flight := None;
                    tracel "checkpoint-abandoned" (fun () ->
                        Printf.sprintf "wave %d: storage connection lost" w)
                | None -> ());
                loop ()
            | D_server (Some (Message.Store_done { wave })) ->
                (match !ckpt_in_flight with
                | Some (w, snapshot_bounds) when w = wave ->
                    ckpt_in_flight := None;
                    (match !server_conn with
                    | Some conn -> ignore (Net.send conn (Message.Commit_rank { rank; wave }))
                    | None -> ());
                    (* Senders may prune their logs of everything this
                       checkpoint covers — the bounds at the snapshot, not
                       at Store_done time. *)
                    let gc = Message.Log_gc { rank; consumed = snapshot_bounds } in
                    Hashtbl.iter (fun _peer conn -> ignore (Net.send conn gc)) peer_conns;
                    Fci.Control.set_var vars "wave" wave;
                    tracel "checkpoint-committed" (fun () -> Printf.sprintf "wave %d" wave)
                | Some _ | None -> ());
                loop ()
            | D_server (Some msg) ->
                trace "protocol-error" (Format.asprintf "from server: %a" Message.pp msg);
                loop ()
            | D_ckpt_tick gen ->
                if gen = !ckpt_gen && Option.is_some !app_proc then begin
                  take_checkpoint ();
                  schedule_tick cfg.Config.wave_interval
                end;
                loop ()
            | D_app (A_send m) ->
                forward_send m;
                loop ()
            | D_app (A_recv { src; tag; reply }) ->
                serve_recv src tag reply;
                loop ()
            | D_app (A_commit snapshot) ->
                committed_state := snapshot;
                redelivery := [];
                loop ()
            | D_app A_finalize ->
                ignore (Net.send dconn (Message.Rank_done { rank }));
                trace ~level:Trace.Full "rank-done" "";
                loop ()
          in
          loop ()))
