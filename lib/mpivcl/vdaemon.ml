open Simkern
open Simos
module Net = Simnet.Net
module IntSet = Set.Make (Int)

type app_request =
  | A_send of Message.app_msg
  | A_recv of { src : int; tag : int; reply : int Ivar.t }
  | A_commit of int array
  | A_finalize

type dev =
  | D_ctrl of Message.t option  (* dispatcher connection; None = closed *)
  | D_sched of Message.t option
  | D_server of Message.t option
  | D_peer of int * Message.t option
  | D_peer_joined of int * Message.t Net.conn
  | D_app of app_request

(* In-progress local checkpoint. *)
type ckpt = {
  ck_wave : int;
  mutable ck_channels : IntSet.t;  (* peers whose marker is still awaited *)
  mutable ck_logged : Message.app_msg list;  (* newest first *)
  mutable ck_stored : bool;
  ck_state : int array;
  ck_buffer : Message.app_msg list;
  ck_redelivery : Message.app_msg list;
  ck_seen : (int * int) list;
}

let pump cluster ~host ~name conn wrap events =
  ignore
    (Cluster.spawn_on cluster ~host ~name (fun () ->
         let rec run () =
           match Net.recv conn with
           | Net.Data m ->
               Mailbox.send events (wrap (Some m));
               run ()
           | Net.Closed -> Mailbox.send events (wrap None)
         in
         run ()))

let spawn (env : Env.t) ~rank ~host ~incarnation =
  let eng = env.Env.eng in
  let cluster = env.Env.cluster in
  let cfg = env.Env.cfg in
  let name = Printf.sprintf "vdaemon-%d" rank in
  let trace ?level event detail = Engine.record ?level eng ~source:name ~event detail in
  (* Chatty per-message / per-wave events: Full-gated and lazily
     formatted, so Summary-level campaign runs pay neither the string
     formatting nor the retention. *)
  let tracel event f = Engine.record_lazy ~level:Trace.Full eng ~source:name ~event f in
  Cluster.spawn_on cluster ~host ~name (fun () ->
      let self = Proc.self () in
      let app_proc = ref None in
      let vars = Fci.Control.make_vars () in
      (* The FAIL-MPI "task": halting kills both unix processes of the
         rank, exactly like the paper's experiments. *)
      let base_target =
        {
          Fci.Control.target_name = Printf.sprintf "rank%d@%d" rank host;
          proc = self;
          kill =
            (fun () ->
              Option.iter Proc.kill !app_proc;
              Proc.kill self);
          freeze =
            (fun () ->
              Option.iter Proc.freeze !app_proc;
              Proc.freeze self);
          unfreeze =
            (fun () ->
              Option.iter Proc.unfreeze !app_proc;
              Proc.unfreeze self);
          read_var = (fun _ -> None);
          write_var = (fun _ _ -> false);
          subscribe_var = (fun _ -> ());
        }
      in
      let target = Fci.Control.with_vars base_target vars in
      (match env.Env.fci with
      | Some rt -> Fci.Runtime.register rt ~machine:host target
      | None -> ());
      tracel "daemon-start" (fun () -> Printf.sprintf "host %d incarnation %d" host incarnation);
      (* Process restore and socket setup before the dispatcher sees us. *)
      Proc.sleep
        (cfg.Config.init_delay_min
        +. Rng.float env.Env.rng (cfg.Config.init_delay_max -. cfg.Config.init_delay_min));
      match
        Net.connect env.Env.net ~host ~to_host:env.Env.dispatcher_host
          ~to_port:Config.dispatcher_port
      with
      | Error `Refused -> trace "daemon-abort" "dispatcher unreachable"
      | Ok dconn -> (
          ignore (Net.send dconn (Message.Hello { rank; incarnation }));
          (* Initial argument exchange with the dispatcher, then the
             localMPI_setCommand hook (Figure 10's injection point). *)
          Proc.sleep cfg.Config.handshake_delay;
          (match env.Env.fci with
          | Some rt -> Fci.Runtime.breakpoint rt ~machine:host `Before "localMPI_setCommand"
          | None -> ());
          (* Restore the last committed image, if any. The fetch walks
             the failover ladder: the rank's primary server with bounded
             exponential backoff, then its mirror. A live server that
             holds nothing is an authoritative fresh start; only when
             every replica is unreachable is the checkpoint declared
             lost (reported to the dispatcher — recovery was needed and
             no complete image survives). *)
          let server_host = Env.server_for env ~rank in
          let fetch_from to_host =
            match
              Net.connect env.Env.net ~host ~to_host ~to_port:Config.server_port
            with
            | Error `Refused -> `Unreachable
            | Ok fconn ->
                let local_wave = Local_disk.newest_wave env.Env.disk ~host ~rank in
                ignore (Net.send fconn (Message.Fetch { rank; local_wave }));
                let result =
                  match Net.recv fconn with
                  | Net.Data (Message.Fetch_use_local { wave }) ->
                      Proc.sleep cfg.Config.local_restore_time;
                      `Image (Local_disk.lookup env.Env.disk ~host ~rank ~wave)
                  | Net.Data (Message.Fetch_image { image }) -> `Image image
                  | Net.Data _ -> `Image None
                  | Net.Closed -> `Unreachable
                in
                Net.close fconn;
                result
          in
          let fetch_ladder () =
            let replicas =
              server_host
              :: (match Env.mirror_for env ~rank with Some h -> [ h ] | None -> [])
            in
            let with_backoff to_host =
              let rec attempt k =
                match fetch_from to_host with
                | `Image _ as r -> r
                | `Unreachable ->
                    if k + 1 < cfg.Config.fetch_retries then begin
                      Proc.sleep
                        (Net.Perturb.backoff ~rto_initial:cfg.Config.fetch_backoff
                           ~rto_max:(8.0 *. cfg.Config.fetch_backoff) ~attempt:k);
                      attempt (k + 1)
                    end
                    else `Unreachable
              in
              attempt 0
            in
            let rec walk = function
              | [] -> `Lost
              | to_host :: rest -> (
                  match with_backoff to_host with
                  | `Image img -> `Image img
                  | `Unreachable ->
                      if rest <> [] then
                        trace "fetch-failover"
                          (Printf.sprintf "server host %d unreachable, trying mirror" to_host);
                      walk rest)
            in
            walk replicas
          in
          match (if incarnation = 0 then `Image None else fetch_ladder ()) with
          | `Lost ->
              trace "ckpt-lost"
                (Printf.sprintf "rank %d: no storage replica reachable" rank);
              ignore (Net.send dconn (Message.Ckpt_lost_report { rank }));
              trace "daemon-abort" "checkpoint storage lost"
          | `Image image ->
          Proc.sleep cfg.Config.restart_settle;
          (match image with
          | Some img -> tracel "restored" (fun () -> Printf.sprintf "wave %d" img.Message.img_wave)
          | None -> trace ~level:Trace.Full "restored" "fresh");
          let listener = Net.listen env.Env.net ~host ~port:Config.daemon_port in
          Fun.protect ~finally:(fun () -> Net.close_listener listener) @@ fun () ->
          let events : dev Mailbox.t = Mailbox.create () in
          (* Accept peer connections; each identifies itself with
             Peer_hello before joining the event stream. *)
          ignore
            (Cluster.spawn_on cluster ~host ~name:(name ^ "-accept") (fun () ->
                 let rec accept_loop () =
                   match Net.accept listener with
                   | None -> ()
                   | Some conn ->
                       (match Net.recv conn with
                       | Net.Data (Message.Peer_hello { rank = peer }) ->
                           Mailbox.send events (D_peer_joined (peer, conn))
                       | Net.Data _ | Net.Closed -> Net.close conn);
                       accept_loop ()
                 in
                 accept_loop ()));
          let sconn =
            match
              Net.connect env.Env.net ~host ~to_host:env.Env.scheduler_host
                ~to_port:Config.scheduler_port
            with
            | Ok c ->
                ignore (Net.send c (Message.Sched_hello { rank }));
                pump cluster ~host ~name:(name ^ "-sched") c (fun m -> D_sched m) events;
                Some c
            | Error `Refused -> None
          in
          let server_conn =
            ref
              (match
                 Net.connect env.Env.net ~host ~to_host:server_host ~to_port:Config.server_port
               with
              | Ok c ->
                  pump cluster ~host ~name:(name ^ "-server") c (fun m -> D_server m) events;
                  Some c
              | Error `Refused -> None)
          in
          (* Stores ride the failover ladder too: when the connection to
             the primary died, reconnect — to the primary if it came
             back, else to the mirror — so later waves keep landing on
             storage instead of silently going nowhere. *)
          let ensure_server_conn () =
            (match !server_conn with
            | Some c when Net.is_open c -> ()
            | Some _ | None ->
                server_conn := None;
                let candidates =
                  server_host
                  :: (match Env.mirror_for env ~rank with Some h -> [ h ] | None -> [])
                in
                List.iter
                  (fun to_host ->
                    if !server_conn = None then
                      match
                        Net.connect env.Env.net ~host ~to_host ~to_port:Config.server_port
                      with
                      | Ok c ->
                          trace "server-reconnect"
                            (Printf.sprintf "storage host %d%s" to_host
                               (if to_host = server_host then "" else " (mirror)"));
                          pump cluster ~host ~name:(name ^ "-server") c
                            (fun m -> D_server m)
                            events;
                          server_conn := Some c
                      | Error `Refused -> ())
                  candidates);
            !server_conn
          in
          pump cluster ~host ~name:(name ^ "-ctrl") dconn (fun m -> D_ctrl m) events;
          ignore (Net.send dconn (Message.Ready { rank }));

          (* ---------------- protocol state ---------------- *)
          let n = cfg.Config.n_ranks in
          let lazy_mesh = cfg.Config.lazy_peer_mesh in
          let peer_conns : (int, Message.t Net.conn) Hashtbl.t = Hashtbl.create 16 in
          let buffer : Message.app_msg list ref = ref [] in
          (* parked receive requests from the computation process *)
          let parked : (int * int * int Ivar.t) list ref = ref [] in
          let seen : (int * int, unit) Hashtbl.t = Hashtbl.create 256 in
          let redelivery : Message.app_msg list ref = ref [] in
          let committed_state = ref [||] in
          let last_completed_wave = ref 0 in
          let ckpt : ckpt option ref = ref None in
          let held_sends : Message.app_msg list ref = ref [] in
          let started = ref false in
          let rank_hosts = ref [||] in
          (* Restore protocol state from the image. *)
          (match image with
          | None ->
              committed_state := Array.make env.Env.app.App.state_size 0;
              last_completed_wave := 0
          | Some img ->
              committed_state := Array.copy img.Message.img_state;
              last_completed_wave := img.Message.img_wave;
              List.iter (fun key -> Hashtbl.replace seen key ()) img.Message.img_seen;
              List.iter
                (fun (m : Message.app_msg) -> Hashtbl.replace seen (m.src, m.tag) ())
                img.Message.img_logged;
              buffer :=
                img.Message.img_redelivery @ img.Message.img_buffer @ img.Message.img_logged);

          let send_app conn (m : Message.app_msg) =
            if not (Net.send conn ~size:m.Message.bytes (Message.App m)) then
              tracel "send-failed" (fun () -> Printf.sprintf "to %d (closed)" m.Message.dst)
          in
          (* Lazy mesh: open the channel on first send. If a wave is in
             progress, our marker must precede every message of ours on
             the new connection, and the peer's marker is awaited before
             the wave can end (the peer may not have cut yet — anything
             it sends before its marker is pre-cut channel state). *)
          let connect_on_demand dst =
            match
              Net.connect env.Env.net ~host ~to_host:(!rank_hosts).(dst)
                ~to_port:Config.daemon_port
            with
            | Error `Refused ->
                tracel "send-failed" (fun () -> Printf.sprintf "to %d (unreachable)" dst);
                None
            | Ok conn ->
                ignore (Net.send conn (Message.Peer_hello { rank }));
                Hashtbl.replace peer_conns dst conn;
                pump cluster ~host ~name:(Printf.sprintf "%s-peer%d" name dst) conn
                  (fun m -> D_peer (dst, m))
                  events;
                (match !ckpt with
                | Some c when not c.ck_stored ->
                    ignore (Net.send conn (Message.Marker { wave = c.ck_wave }));
                    c.ck_channels <- IntSet.add dst c.ck_channels
                | Some _ | None -> ());
                Some conn
          in
          let forward_send (m : Message.app_msg) =
            match Hashtbl.find_opt peer_conns m.Message.dst with
            | Some conn -> send_app conn m
            | None when lazy_mesh && Array.length !rank_hosts > m.Message.dst -> (
                match connect_on_demand m.Message.dst with
                | Some conn -> send_app conn m
                | None -> ())
            | None ->
                tracel "send-failed" (fun () -> Printf.sprintf "to %d (no connection)" m.Message.dst)
          in
          let deliver (m : Message.app_msg) =
            let rec split acc = function
              | [] -> None
              | (src, tag, reply) :: rest when src = m.Message.src && tag = m.Message.tag ->
                  parked := List.rev_append acc rest;
                  Some reply
              | r :: rest -> split (r :: acc) rest
            in
            match split [] !parked with
            | Some reply ->
                redelivery := m :: !redelivery;
                Ivar.fill reply m.Message.data
            | None -> buffer := !buffer @ [ m ]
          in
          let serve_recv src tag reply =
            let rec split acc = function
              | [] -> None
              | (m : Message.app_msg) :: rest when m.Message.src = src && m.Message.tag = tag ->
                  buffer := List.rev_append acc rest;
                  Some m
              | m :: rest -> split (m :: acc) rest
            in
            match split [] !buffer with
            | Some m ->
                redelivery := m :: !redelivery;
                Ivar.fill reply m.Message.data
            | None -> parked := !parked @ [ (src, tag, reply) ]
          in
          let finish_ckpt (c : ckpt) =
            let logged = List.rev c.ck_logged in
            let img_bytes =
              Message.image_bytes ~state_bytes:env.Env.state_bytes
                (c.ck_buffer @ c.ck_redelivery @ logged)
            in
            let img =
              {
                Message.img_rank = rank;
                img_wave = c.ck_wave;
                img_state = c.ck_state;
                img_buffer = c.ck_buffer;
                img_redelivery = c.ck_redelivery;
                img_logged = logged;
                img_seen = c.ck_seen;
                img_received = [];
                img_send_log = [];
                img_next_ssn = [];
                img_bytes;
              }
            in
            Local_disk.store env.Env.disk ~host img;
            (match ensure_server_conn () with
            | Some conn -> ignore (Net.send conn (Message.Store { image = img }))
            | None -> tracel "store-skipped" (fun () -> Printf.sprintf "wave %d: no storage" c.ck_wave));
            tracel "local-checkpoint" (fun () ->
                Printf.sprintf "wave %d (%d logged)" c.ck_wave (List.length logged))
          in
          let maybe_complete_channels (c : ckpt) =
            if IntSet.is_empty c.ck_channels && not c.ck_stored then begin
              c.ck_stored <- true;
              finish_ckpt c
            end
          in
          let begin_cut wave ~from_peer =
            (* Eager mesh: every peer holds a channel to us, so every
               marker is awaited. Lazy mesh: only established channels can
               carry pre-cut messages — a peer that connects mid-wave is
               added (and sent our marker) on establishment. *)
            let channels =
              if lazy_mesh then
                Hashtbl.fold
                  (fun peer _ acc ->
                    if Some peer = from_peer then acc else IntSet.add peer acc)
                  peer_conns IntSet.empty
              else
                List.init n Fun.id
                |> List.filter (fun r -> r <> rank && Some r <> from_peer)
                |> IntSet.of_list
            in
            let c =
              {
                ck_wave = wave;
                ck_channels = channels;
                ck_logged = [];
                ck_stored = false;
                ck_state = Array.copy !committed_state;
                ck_buffer = !buffer;
                ck_redelivery = !redelivery;
                ck_seen = Hashtbl.fold (fun key () acc -> key :: acc) seen [];
              }
            in
            ckpt := Some c;
            tracel "cut" (fun () -> Printf.sprintf "wave %d" wave);
            Hashtbl.iter
              (fun _peer conn -> ignore (Net.send conn (Message.Marker { wave })))
              peer_conns;
            maybe_complete_channels c
          in
          let handle_marker wave ~from_peer =
            if wave > !last_completed_wave then begin
              match !ckpt with
              | None -> begin_cut wave ~from_peer
              | Some c when c.ck_wave = wave -> (
                  match from_peer with
                  | Some peer ->
                      c.ck_channels <- IntSet.remove peer c.ck_channels;
                      maybe_complete_channels c
                  | None -> ())
              | Some c when wave > c.ck_wave ->
                  (* The wave in progress was aborted (e.g. by a recovery
                     that interleaved with it): it will never complete
                     globally, so drop it and join the new one. Held sends
                     of the blocking variant stay held until the new wave
                     completes. *)
                  tracel "ckpt-abandoned" (fun () ->
                      Printf.sprintf "wave %d superseded by %d" c.ck_wave wave);
                  ckpt := None;
                  begin_cut wave ~from_peer
              | Some c ->
                  tracel "marker-anomaly" (fun () ->
                      Printf.sprintf "stale wave %d while checkpointing %d" wave c.ck_wave)
            end
          in
          let release_held () =
            let pending = List.rev !held_sends in
            held_sends := [];
            List.iter forward_send pending
          in
          let spawn_app () =
            let state =
              match image with
              | Some img -> Array.copy img.Message.img_state
              | None -> Array.make env.Env.app.App.state_size 0
            in
            committed_state := Array.copy state;
            let ctx =
              {
                App.rank;
                size = n;
                state;
                send =
                  (fun ~dst ~tag ?(bytes = 1024) data ->
                    Mailbox.send events
                      (D_app (A_send { Message.src = rank; dst; tag; data; bytes })));
                recv =
                  (fun ~src ~tag ->
                    let reply = Ivar.create () in
                    Mailbox.send events (D_app (A_recv { src; tag; reply }));
                    Ivar.read reply);
                commit =
                  (fun () ->
                    Mailbox.send events (D_app (A_commit (Array.copy state))));
                finalize = (fun () -> Mailbox.send events (D_app A_finalize));
                set_app_var = (fun var v -> Fci.Control.set_var vars var v);
                noise =
                  (let salt = Rng.int64 env.Env.rng in
                   fun k ->
                     let x =
                       Int64.to_int
                         (Int64.logand (Rng.int64 (Rng.create (Int64.add salt (Int64.of_int k)))) 0xFFFFFL)
                     in
                     (float_of_int x /. 524287.5) -. 1.0);
              }
            in
            let p =
              Cluster.spawn_on cluster ~host ~name:(Printf.sprintf "mpi-%d" rank) (fun () ->
                  env.Env.app.App.main ctx)
            in
            app_proc := Some p;
            trace ~level:Trace.Full "app-start" ""
          in
          let maybe_start () =
            if
              !started
              && (lazy_mesh || Hashtbl.length peer_conns = n - 1)
              && !app_proc = None
            then spawn_app ()
          in
          let connect_lower_peers () =
            if not lazy_mesh then
              for peer = 0 to rank - 1 do
                let peer_host = !rank_hosts.(peer) in
                match
                  Net.connect env.Env.net ~host ~to_host:peer_host ~to_port:Config.daemon_port
                with
                | Ok conn ->
                    ignore (Net.send conn (Message.Peer_hello { rank }));
                    Hashtbl.replace peer_conns peer conn;
                    pump cluster ~host ~name:(Printf.sprintf "%s-peer%d" name peer) conn
                      (fun m -> D_peer (peer, m))
                      events
                | Error `Refused ->
                    trace ~level:Trace.Full "peer-connect-failed" (string_of_int peer)
              done;
            maybe_start ()
          in
          let blocking = cfg.Config.protocol = Config.Blocking in
          (* ---------------- main event loop ---------------- *)
          let rec loop () =
            match Mailbox.recv events with
            | D_ctrl None -> trace "daemon-exit" "dispatcher connection lost"
            | D_ctrl (Some Message.Terminate) ->
                let lag =
                  cfg.Config.term_lag_min
                  +. Rng.float env.Env.rng
                       (cfg.Config.term_lag_max -. cfg.Config.term_lag_min)
                  +.
                  if Rng.float env.Env.rng 1.0 < cfg.Config.term_straggler_prob then
                    Rng.float env.Env.rng cfg.Config.term_straggler_extra
                  else 0.0
                in
                trace "terminate-order" (Printf.sprintf "lag %.2f" lag);
                Proc.sleep lag;
                Option.iter Proc.kill !app_proc;
                trace "daemon-exit" "terminated on order"
            | D_ctrl (Some Message.Shutdown) ->
                Option.iter Proc.kill !app_proc;
                trace "daemon-exit" "shutdown"
            | D_ctrl (Some (Message.Start { rank_hosts = hosts; resume })) ->
                rank_hosts := hosts;
                started := true;
                trace ~level:Trace.Full (if resume then "resume" else "start") "";
                connect_lower_peers ();
                loop ()
            | D_ctrl (Some msg) ->
                trace "protocol-error" (Format.asprintf "from dispatcher: %a" Message.pp msg);
                loop ()
            | D_peer_joined (peer, conn) ->
                (* Under a lazy mesh a simultaneous cross-connect can race
                   this accept with our own connect_on_demand; each side
                   keeps the first connection it obtained for its sends,
                   so every direction stays FIFO on a single channel
                   (markers order correctly against app messages). The
                   second connection is still pumped for receives. *)
                let fresh = not (Hashtbl.mem peer_conns peer) in
                if fresh || not lazy_mesh then Hashtbl.replace peer_conns peer conn;
                pump cluster ~host ~name:(Printf.sprintf "%s-peer%d" name peer) conn
                  (fun m -> D_peer (peer, m))
                  events;
                (* A wave may already be in progress: this channel's marker
                   is still expected through the new connection. With a
                   lazy mesh the cut did not count unconnected peers, so a
                   channel opening mid-wave exchanges markers now. *)
                (if lazy_mesh && fresh then
                   match !ckpt with
                   | Some c when not c.ck_stored ->
                       ignore (Net.send conn (Message.Marker { wave = c.ck_wave }));
                       c.ck_channels <- IntSet.add peer c.ck_channels
                   | Some _ | None -> ());
                maybe_start ();
                loop ()
            | D_peer (peer, None) ->
                (match Hashtbl.find_opt peer_conns peer with
                | Some _ -> Hashtbl.remove peer_conns peer
                | None -> ());
                trace ~level:Trace.Full "peer-lost" (string_of_int peer);
                loop ()
            | D_peer (_, Some (Message.App m)) ->
                (if Hashtbl.mem seen (m.Message.src, m.Message.tag) then
                   trace "duplicate-dropped"
                     (Printf.sprintf "%d->%d tag %d" m.Message.src m.Message.dst m.Message.tag)
                 else begin
                   Hashtbl.replace seen (m.Message.src, m.Message.tag) ();
                   (match !ckpt with
                   | Some c when IntSet.mem m.Message.src c.ck_channels ->
                       c.ck_logged <- m :: c.ck_logged
                   | Some _ | None -> ());
                   deliver m
                 end);
                loop ()
            | D_peer (peer, Some (Message.Marker { wave })) ->
                handle_marker wave ~from_peer:(Some peer);
                loop ()
            | D_peer (peer, Some msg) ->
                trace "protocol-error"
                  (Format.asprintf "from peer %d: %a" peer Message.pp msg);
                loop ()
            | D_sched None -> loop ()
            | D_sched (Some (Message.Sched_marker { wave })) ->
                handle_marker wave ~from_peer:None;
                loop ()
            | D_sched (Some msg) ->
                trace "protocol-error" (Format.asprintf "from scheduler: %a" Message.pp msg);
                loop ()
            | D_server None -> loop ()
            | D_server (Some (Message.Store_done { wave })) ->
                (match !ckpt with
                | Some c when c.ck_wave = wave && c.ck_stored ->
                    last_completed_wave := wave;
                    ckpt := None;
                    if blocking then release_held ();
                    (match sconn with
                    | Some conn -> ignore (Net.send conn (Message.Sched_ack { rank; wave }))
                    | None -> ());
                    (* Expose the completed wave to the fault injector
                       (the conclusion's variable-reading feature). *)
                    Fci.Control.set_var vars "wave" wave;
                    tracel "checkpoint-acked" (fun () -> Printf.sprintf "wave %d" wave)
                | Some _ | None -> ());
                loop ()
            | D_server (Some msg) ->
                trace "protocol-error" (Format.asprintf "from server: %a" Message.pp msg);
                loop ()
            | D_app (A_send m) ->
                if blocking && !ckpt <> None then held_sends := m :: !held_sends
                else forward_send m;
                loop ()
            | D_app (A_recv { src; tag; reply }) ->
                serve_recv src tag reply;
                loop ()
            | D_app (A_commit snapshot) ->
                committed_state := snapshot;
                redelivery := [];
                loop ()
            | D_app A_finalize ->
                ignore (Net.send dconn (Message.Rank_done { rank }));
                trace ~level:Trace.Full "rank-done" "";
                loop ()
          in
          loop ()))
