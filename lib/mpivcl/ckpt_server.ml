open Simkern
open Simos

(* A storage slot on the server's disk. The prepare/commit protocol
   stamps an image incomplete before the transfer starts and seals it
   after the last byte lands: a server killed mid-store leaves the
   incomplete stamp behind, and the restart scan discards the torn
   image instead of ever serving it. *)
type slot = { s_image : Message.image; s_complete : bool }

type t = {
  eng : Engine.t;
  cluster : Cluster.t;
  net : Message.t Simnet.Net.t;
  host : int;
  index : int;  (* this server's shard: serves ranks with rank mod n = index *)
  server_hosts : int array;
  replicas : int;
  respawn : float option;
  ack_timeout : float;
  transfer_time : int -> float;
  (* The two tables model the host's disk: they survive the server
     *process* dying (FAIL kills tasks, not file systems), which is what
     makes torn-write detection meaningful on restart. *)
  pending : (int, slot) Hashtbl.t;  (* rank -> in-progress image *)
  committed_tbl : (int, Message.image) Hashtbl.t;  (* rank -> last complete image *)
  mutable listener : Message.t Simnet.Net.listener option;
  mutable mirror_conn : Message.t Simnet.Net.conn option;
  mutable halted : bool;
  mutable torn_count : int;
  mutable resync_count : int;
  mutable respawn_count : int;
}

let trace ?level t event detail =
  Engine.record ?level t.eng ~source:"ckpt-server" ~event detail

(* Per-image traffic is the hottest trace path in long runs: Full-gated,
   lazily formatted. *)
let tracel t event f = Engine.record_lazy ~level:Trace.Full t.eng ~source:"ckpt-server" ~event f

let n_servers t = Array.length t.server_hosts
let mirrored t = t.replicas >= 2 && n_servers t >= 2
let primary_index t ~rank = rank mod n_servers t

(* One transfer at a time: the server NIC/disk is the shared resource. *)
let worker_loop jobs =
  let rec run () =
    let job = Mailbox.recv jobs in
    job ();
    run ()
  in
  run ()

(* Replicate a freshly sealed image to the rank's mirror (the next
   server in the ring) and wait for its ack; only then may the daemon's
   store be acknowledged. A dead or frozen mirror degrades replication
   (traced [mirror-skip]) instead of wedging the store pipeline — the
   mirror catches up through the resync pull when it comes back. *)
let mirror_push t (image : Message.image) =
  let rank = image.Message.img_rank and wave = image.Message.img_wave in
  let skip why =
    t.mirror_conn <- None;
    trace t "mirror-skip" (Printf.sprintf "rank %d wave %d: %s" rank wave why)
  in
  let conn =
    match t.mirror_conn with
    | Some c when Simnet.Net.is_open c -> Some c
    | _ -> (
        let to_host = t.server_hosts.((t.index + 1) mod n_servers t) in
        match
          Simnet.Net.connect t.net ~host:t.host ~to_host ~to_port:Config.server_port
        with
        | Ok c ->
            t.mirror_conn <- Some c;
            Some c
        | Error `Refused -> None)
  in
  match conn with
  | None -> skip "mirror unreachable"
  | Some c ->
      if not (Simnet.Net.send c ~size:image.Message.img_bytes (Message.Mirror_store { image }))
      then skip "mirror connection lost"
      else (
        match Simnet.Net.recv_timeout c ~timeout:t.ack_timeout with
        | Some (Simnet.Net.Data (Message.Mirror_ack { rank = r; wave = w }))
          when r = rank && w = wave ->
            tracel t "mirror-ack" (fun () -> Printf.sprintf "rank %d wave %d" rank wave)
        | Some (Simnet.Net.Data _) -> skip "mirror protocol error"
        | Some Simnet.Net.Closed -> skip "mirror died"
        | None -> skip "mirror ack timeout")

let handle_conn t jobs conn =
  let transfer_time = t.transfer_time in
  let rec run () =
    match Simnet.Net.recv conn with
    | Simnet.Net.Closed -> ()
    | Simnet.Net.Data msg ->
        (match msg with
        | Message.Store { image } ->
            Mailbox.send jobs (fun () ->
                let rank = image.Message.img_rank in
                (* prepare: stamp the slot incomplete before the bytes
                   start flowing, seal it after — the torn-write marker *)
                Hashtbl.replace t.pending rank { s_image = image; s_complete = false };
                Proc.sleep (transfer_time image.Message.img_bytes);
                Hashtbl.replace t.pending rank { s_image = image; s_complete = true };
                tracel t "store" (fun () ->
                    Printf.sprintf "rank %d wave %d (%d bytes)" rank
                      image.Message.img_wave image.Message.img_bytes);
                if mirrored t && primary_index t ~rank = t.index then mirror_push t image;
                ignore (Simnet.Net.send conn (Message.Store_done { wave = image.Message.img_wave })))
        | Message.Mirror_store { image } ->
            (* Handled inline, NOT through the jobs worker: the primary's
               worker blocks on our ack, so routing this through our own
               worker would deadlock two servers mirroring to each other. *)
            let rank = image.Message.img_rank in
            Hashtbl.replace t.pending rank { s_image = image; s_complete = false };
            Proc.sleep (transfer_time image.Message.img_bytes);
            Hashtbl.replace t.pending rank { s_image = image; s_complete = true };
            tracel t "mirror-store" (fun () ->
                Printf.sprintf "rank %d wave %d (%d bytes)" rank image.Message.img_wave
                  image.Message.img_bytes);
            ignore
              (Simnet.Net.send conn
                 (Message.Mirror_ack { rank; wave = image.Message.img_wave }))
        | Message.Sync_pull { shard } ->
            (* A respawned neighbour rebuilds a shard from our committed
               images. Served inline for the same reason as mirror
               stores; the bulk transfer pays for its total size. *)
            let n = n_servers t in
            let images =
              Hashtbl.fold
                (fun rank img acc -> if rank mod n = shard then img :: acc else acc)
                t.committed_tbl []
              |> List.sort (fun (a : Message.image) b ->
                     compare a.Message.img_rank b.Message.img_rank)
            in
            let total =
              List.fold_left (fun acc (i : Message.image) -> acc + i.Message.img_bytes) 0 images
            in
            Proc.sleep (transfer_time total);
            tracel t "sync-serve" (fun () ->
                Printf.sprintf "shard %d: %d image(s), %d bytes" shard (List.length images) total);
            ignore (Simnet.Net.send conn ~size:(max 64 total) (Message.Sync_images { images }))
        | Message.Fetch { rank; local_wave } -> (
            match Hashtbl.find_opt t.committed_tbl rank with
            | Some image when local_wave = Some image.Message.img_wave ->
                (* The host already has this wave on local disk: no
                   transfer needed. *)
                tracel t "fetch-local" (fun () -> Printf.sprintf "rank %d wave %d" rank image.Message.img_wave);
                ignore (Simnet.Net.send conn (Message.Fetch_use_local { wave = image.Message.img_wave }))
            | Some image ->
                Mailbox.send jobs (fun () ->
                    Proc.sleep (transfer_time image.Message.img_bytes);
                    tracel t "fetch-remote" (fun () ->
                        Printf.sprintf "rank %d wave %d" rank image.Message.img_wave);
                    (* Transfer time is modelled by the worker sleep above;
                       the reply itself is metadata. *)
                    ignore (Simnet.Net.send conn (Message.Fetch_image { image = Some image })))
            | None ->
                tracel t "fetch-none" (fun () -> Printf.sprintf "rank %d" rank);
                ignore (Simnet.Net.send conn (Message.Fetch_image { image = None })))
        | Message.Commit { wave } ->
            (* Commit is the atomic slot flip: only sealed images move,
               and the committed wave for a rank never regresses. An
               in-flight (torn) image is simply left out of the wave. *)
            let moved = ref 0 in
            Hashtbl.iter
              (fun rank slot ->
                if slot.s_complete && slot.s_image.Message.img_wave = wave then begin
                  let regresses =
                    match Hashtbl.find_opt t.committed_tbl rank with
                    | Some cur -> cur.Message.img_wave > wave
                    | None -> false
                  in
                  if not regresses then begin
                    Hashtbl.replace t.committed_tbl rank slot.s_image;
                    incr moved
                  end
                end)
              (Hashtbl.copy t.pending);
            Hashtbl.iter
              (fun rank slot ->
                if slot.s_complete && slot.s_image.Message.img_wave <= wave then
                  Hashtbl.remove t.pending rank)
              (Hashtbl.copy t.pending);
            tracel t "commit" (fun () -> Printf.sprintf "wave %d (%d images)" wave !moved)
        | Message.Commit_rank { rank; wave } ->
            (match Hashtbl.find_opt t.pending rank with
            | Some slot when slot.s_complete && slot.s_image.Message.img_wave = wave ->
                Hashtbl.replace t.committed_tbl rank slot.s_image;
                Hashtbl.remove t.pending rank;
                trace t "commit-rank" (Printf.sprintf "rank %d wave %d" rank wave);
                (* v2's per-rank commits bypass the scheduler, so the
                   primary forwards them to the mirror itself. *)
                if mirrored t && primary_index t ~rank = t.index then begin
                  match t.mirror_conn with
                  | Some c when Simnet.Net.is_open c ->
                      ignore (Simnet.Net.send c (Message.Commit_rank { rank; wave }))
                  | Some _ | None -> ()
                end
            | Some _ | None ->
                tracel t "commit-rank-miss" (fun () -> Printf.sprintf "rank %d wave %d" rank wave))
        | Message.Peer_hello _ | Message.App _ | Message.Marker _ | Message.Hello _
        | Message.Ready _ | Message.Start _ | Message.Terminate | Message.Rank_done _
        | Message.Shutdown | Message.Sched_hello _ | Message.Sched_marker _
        | Message.Sched_ack _ | Message.Store_done _ | Message.Fetch_use_local _
        | Message.Fetch_image _ | Message.App_logged _ | Message.Log_gc _
        | Message.Resend _ | Message.Mirror_ack _ | Message.Sync_images _
        | Message.Ckpt_lost_report _ ->
            trace t "protocol-error" (Format.asprintf "unexpected %a" Message.pp msg));
        run ()
  in
  run ()

(* Restart-time disk scan and shard resync, run by a respawned server
   before it opens its listener ("re-syncs its shard from its mirror
   before serving"). *)
let recover t =
  let torn =
    Hashtbl.fold
      (fun rank slot acc -> if not slot.s_complete then (rank, slot.s_image.Message.img_wave) :: acc else acc)
      t.pending []
  in
  List.iter (fun (rank, _) -> Hashtbl.remove t.pending rank) torn;
  if torn <> [] then begin
    t.torn_count <- t.torn_count + List.length torn;
    trace t "torn-discarded"
      (String.concat ", "
         (List.map (fun (r, w) -> Printf.sprintf "rank %d wave %d" r w)
            (List.sort compare torn)))
  end;
  if mirrored t then begin
    let n = n_servers t in
    let pull ~from_index ~shard =
      let to_host = t.server_hosts.(from_index) in
      match Simnet.Net.connect t.net ~host:t.host ~to_host ~to_port:Config.server_port with
      | Error `Refused ->
          trace t "resync-skip" (Printf.sprintf "shard %d: server %d unreachable" shard from_index)
      | Ok c ->
          Fun.protect
            ~finally:(fun () -> Simnet.Net.close c)
            (fun () ->
              if not (Simnet.Net.send c (Message.Sync_pull { shard })) then
                trace t "resync-skip" (Printf.sprintf "shard %d: connection lost" shard)
              else
                match Simnet.Net.recv_timeout c ~timeout:t.ack_timeout with
                | Some (Simnet.Net.Data (Message.Sync_images { images })) ->
                    let installed = ref 0 in
                    List.iter
                      (fun (img : Message.image) ->
                        let newer =
                          match Hashtbl.find_opt t.committed_tbl img.Message.img_rank with
                          | Some cur -> img.Message.img_wave > cur.Message.img_wave
                          | None -> true
                        in
                        if newer then begin
                          Hashtbl.replace t.committed_tbl img.Message.img_rank img;
                          incr installed
                        end)
                      images;
                    t.resync_count <- t.resync_count + 1;
                    trace t "resync"
                      (Printf.sprintf "shard %d from server %d: %d image(s)" shard from_index
                         !installed)
                | Some (Simnet.Net.Data _) | Some Simnet.Net.Closed | None ->
                    trace t "resync-skip" (Printf.sprintf "shard %d: no reply" shard))
    in
    (* Our own shard from the mirror that replicated it, and the
       neighbour shard we mirror from that shard's primary. *)
    pull ~from_index:((t.index + 1) mod n) ~shard:t.index;
    pull ~from_index:((t.index + n - 1) mod n) ~shard:((t.index + n - 1) mod n)
  end

let close_listener t =
  match t.listener with
  | Some l ->
      t.listener <- None;
      Simnet.Net.close_listener l
  | None -> ()

let rec start t ~first =
  let jobs = Mailbox.create () in
  ignore
    (Cluster.spawn_on t.cluster ~host:t.host ~name:"ckpt-server-worker" (fun () -> worker_loop jobs));
  let proc =
    Cluster.spawn_on t.cluster ~host:t.host ~name:"ckpt-server" (fun () ->
        if not first then recover t;
        let listener = Simnet.Net.listen t.net ~host:t.host ~port:Config.server_port in
        t.listener <- Some listener;
        Fun.protect
          ~finally:(fun () -> close_listener t)
          (fun () ->
            let rec accept_loop () =
              match Simnet.Net.accept listener with
              | None -> ()
              | Some conn ->
                  ignore
                    (Cluster.spawn_on t.cluster ~host:t.host ~name:"ckpt-server-conn" (fun () ->
                         handle_conn t jobs conn));
                  accept_loop ()
            in
            accept_loop ()))
  in
  match t.respawn with
  | None -> ()
  | Some delay ->
      (* The storage plane restarts a dead server after [delay] (the
         paper's operator restart). Registering the hook is free in
         unperturbed runs: it only ever fires when something killed the
         server, and [halt] disarms it before teardown. *)
      Proc.on_exit proc (fun _reason ->
          if not t.halted then begin
            close_listener t;
            t.mirror_conn <- None;
            ignore
              (Engine.schedule t.eng ~delay (fun () ->
                   if not t.halted then begin
                     t.respawn_count <- t.respawn_count + 1;
                     trace t "respawn"
                       (Printf.sprintf "server %d (host %d) restarting" t.index t.host);
                     start t ~first:false
                   end))
          end)

let spawn eng cluster net ~host ~bandwidth ?(jitter = 0.0) ?(index = 0) ?server_hosts
    ?(replicas = 1) ?respawn ?(ack_timeout = 20.0) () =
  let server_hosts = match server_hosts with Some a -> a | None -> [| host |] in
  let rng = Rng.split (Engine.rng eng) in
  let transfer_time bytes =
    let noise = 1.0 +. (jitter *. ((Rng.float rng 2.0) -. 1.0)) in
    Float.max 0.0 (float_of_int bytes /. bandwidth *. noise)
  in
  let t =
    {
      eng;
      cluster;
      net;
      host;
      index;
      server_hosts;
      replicas;
      respawn;
      ack_timeout;
      transfer_time;
      pending = Hashtbl.create 64;
      committed_tbl = Hashtbl.create 64;
      listener = None;
      mirror_conn = None;
      halted = false;
      torn_count = 0;
      resync_count = 0;
      respawn_count = 0;
    }
  in
  start t ~first:true;
  t

let committed_wave t ~rank =
  Option.map (fun (i : Message.image) -> i.Message.img_wave) (Hashtbl.find_opt t.committed_tbl rank)

let committed t ~rank = Hashtbl.find_opt t.committed_tbl rank

let pending_torn t ~rank =
  match Hashtbl.find_opt t.pending rank with
  | Some slot -> not slot.s_complete
  | None -> false

let torn_discarded t = t.torn_count
let resyncs t = t.resync_count
let respawns t = t.respawn_count

let inject_kill t = Cluster.kill_all t.cluster ~host:t.host

let freeze t =
  List.iter (fun p -> Proc.freeze p) (Cluster.tasks t.cluster ~host:t.host)

let unfreeze t =
  List.iter (fun p -> Proc.unfreeze p) (Cluster.tasks t.cluster ~host:t.host)

let halt t =
  t.halted <- true;
  Cluster.kill_all t.cluster ~host:t.host
