open Simkern
open Simos

type t = {
  eng : Engine.t;
  cluster : Cluster.t;
  host : int;
  pending : (int, Message.image) Hashtbl.t;  (* rank -> in-progress image *)
  committed_tbl : (int, Message.image) Hashtbl.t;  (* rank -> last complete image *)
}

let trace ?level t event detail =
  Engine.record ?level t.eng ~source:"ckpt-server" ~event detail

(* Per-image traffic is the hottest trace path in long runs: Full-gated,
   lazily formatted. *)
let tracel t event f = Engine.record_lazy ~level:Trace.Full t.eng ~source:"ckpt-server" ~event f

(* One transfer at a time: the server NIC/disk is the shared resource. *)
let worker_loop jobs =
  let rec run () =
    let job = Mailbox.recv jobs in
    job ();
    run ()
  in
  run ()

let handle_conn t ~transfer_time jobs conn =
  let rec run () =
    match Simnet.Net.recv conn with
    | Simnet.Net.Closed -> ()
    | Simnet.Net.Data msg ->
        (match msg with
        | Message.Store { image } ->
            Mailbox.send jobs (fun () ->
                Proc.sleep (transfer_time image.Message.img_bytes);
                Hashtbl.replace t.pending image.Message.img_rank image;
                tracel t "store" (fun () ->
                    Printf.sprintf "rank %d wave %d (%d bytes)" image.Message.img_rank
                      image.Message.img_wave image.Message.img_bytes);
                ignore (Simnet.Net.send conn (Message.Store_done { wave = image.Message.img_wave })))
        | Message.Fetch { rank; local_wave } -> (
            match Hashtbl.find_opt t.committed_tbl rank with
            | Some image when local_wave = Some image.Message.img_wave ->
                (* The host already has this wave on local disk: no
                   transfer needed. *)
                tracel t "fetch-local" (fun () -> Printf.sprintf "rank %d wave %d" rank image.Message.img_wave);
                ignore (Simnet.Net.send conn (Message.Fetch_use_local { wave = image.Message.img_wave }))
            | Some image ->
                Mailbox.send jobs (fun () ->
                    Proc.sleep (transfer_time image.Message.img_bytes);
                    tracel t "fetch-remote" (fun () ->
                        Printf.sprintf "rank %d wave %d" rank image.Message.img_wave);
                    (* Transfer time is modelled by the worker sleep above;
                       the reply itself is metadata. *)
                    ignore (Simnet.Net.send conn (Message.Fetch_image { image = Some image })))
            | None ->
                tracel t "fetch-none" (fun () -> Printf.sprintf "rank %d" rank);
                ignore (Simnet.Net.send conn (Message.Fetch_image { image = None })))
        | Message.Commit { wave } ->
            let moved = ref 0 in
            Hashtbl.iter
              (fun rank (image : Message.image) ->
                if image.Message.img_wave = wave then begin
                  Hashtbl.replace t.committed_tbl rank image;
                  incr moved
                end)
              (Hashtbl.copy t.pending);
            Hashtbl.iter
              (fun rank (image : Message.image) ->
                if image.Message.img_wave <= wave then Hashtbl.remove t.pending rank)
              (Hashtbl.copy t.pending);
            tracel t "commit" (fun () -> Printf.sprintf "wave %d (%d images)" wave !moved)
        | Message.Commit_rank { rank; wave } ->
            (match Hashtbl.find_opt t.pending rank with
            | Some image when image.Message.img_wave = wave ->
                Hashtbl.replace t.committed_tbl rank image;
                Hashtbl.remove t.pending rank;
                trace t "commit-rank" (Printf.sprintf "rank %d wave %d" rank wave)
            | Some _ | None ->
                tracel t "commit-rank-miss" (fun () -> Printf.sprintf "rank %d wave %d" rank wave))
        | Message.Peer_hello _ | Message.App _ | Message.Marker _ | Message.Hello _
        | Message.Ready _ | Message.Start _ | Message.Terminate | Message.Rank_done _
        | Message.Shutdown | Message.Sched_hello _ | Message.Sched_marker _
        | Message.Sched_ack _ | Message.Store_done _ | Message.Fetch_use_local _
        | Message.Fetch_image _ | Message.App_logged _ | Message.Log_gc _
        | Message.Resend _ ->
            trace t "protocol-error" (Format.asprintf "unexpected %a" Message.pp msg));
        run ()
  in
  run ()

let spawn eng cluster net ~host ~bandwidth ?(jitter = 0.0) () =
  let t =
    { eng; cluster; host; pending = Hashtbl.create 64; committed_tbl = Hashtbl.create 64 }
  in
  let rng = Rng.split (Engine.rng eng) in
  let transfer_time bytes =
    let noise = 1.0 +. (jitter *. ((Rng.float rng 2.0) -. 1.0)) in
    Float.max 0.0 (float_of_int bytes /. bandwidth *. noise)
  in
  let jobs = Mailbox.create () in
  ignore
    (Cluster.spawn_on cluster ~host ~name:"ckpt-server-worker" (fun () -> worker_loop jobs));
  ignore
    (Cluster.spawn_on cluster ~host ~name:"ckpt-server" (fun () ->
         let listener = Simnet.Net.listen net ~host ~port:Config.server_port in
         Fun.protect
           ~finally:(fun () -> Simnet.Net.close_listener listener)
           (fun () ->
             let rec accept_loop () =
               match Simnet.Net.accept listener with
               | None -> ()
               | Some conn ->
                   ignore
                     (Cluster.spawn_on cluster ~host ~name:"ckpt-server-conn" (fun () ->
                          handle_conn t ~transfer_time jobs conn));
                   accept_loop ()
             in
             accept_loop ())));
  t

let committed_wave t ~rank =
  Option.map (fun (i : Message.image) -> i.Message.img_wave) (Hashtbl.find_opt t.committed_tbl rank)

let committed t ~rank = Hashtbl.find_opt t.committed_tbl rank

let halt t = Cluster.kill_all t.cluster ~host:t.host
