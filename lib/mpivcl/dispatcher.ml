open Simkern
open Simos
module Net = Simnet.Net

type outcome = Completed of float | Aborted of string

type rstate =
  | R_launching
  | R_registered
  | R_ready
  | R_computing
  | R_stopping
  | R_forgotten

type rank_info = {
  mutable ri_host : int;
  mutable ri_inc : int;
  mutable ri_conn : Message.t Net.conn option;
  mutable ri_st : rstate;
  mutable ri_finished : bool;
}

type ev =
  | E_hello of int * int * Message.t Net.conn
  | E_msg of int * int * Message.t
  | E_closed of int * int
  | E_spawn_died of int * int

type t = {
  env : Env.t;
  host : int;
  result : outcome Ivar.t;
  mutable recovery_count : int;
  mutable is_confused : bool;
  mutable is_race_lost : bool;
  mutable is_ckpt_lost : bool;
}

let trace ?level t event detail =
  Engine.record ?level t.env.Env.eng ~source:"dispatcher" ~event detail

let tracef ?level t event fmt =
  Engine.record_fmt ?level t.env.Env.eng ~source:"dispatcher" ~event fmt

let state_name = function
  | R_launching -> "launching"
  | R_registered -> "registered"
  | R_ready -> "ready"
  | R_computing -> "computing"
  | R_stopping -> "stopping"
  | R_forgotten -> "forgotten"

let spawn (env : Env.t) ~host ~initial_hosts ~spare_limit =
  let eng = env.Env.eng in
  let cluster = env.Env.cluster in
  let cfg = env.Env.cfg in
  let n = cfg.Config.n_ranks in
  let t =
    { env; host; result = Ivar.create (); recovery_count = 0; is_confused = false;
      is_race_lost = false; is_ckpt_lost = false }
  in
  let events : ev Mailbox.t = Mailbox.create () in
  let ranks =
    Array.init n (fun r ->
        { ri_host = initial_hosts.(r); ri_inc = -1; ri_conn = None; ri_st = R_launching; ri_finished = false })
  in
  let free_hosts =
    let used = Array.to_list initial_hosts in
    ref
      (List.filter
         (fun h -> not (List.mem h used))
         (List.init spare_limit Fun.id))
  in
  (* Recovering until the first Start broadcast; then Steady until a
     failure. *)
  let steady = ref false in
  let completed = ref false in
  let launch r =
    let info = ranks.(r) in
    info.ri_inc <- info.ri_inc + 1;
    info.ri_conn <- None;
    info.ri_st <- R_launching;
    let inc = info.ri_inc in
    let target_host = info.ri_host in
    tracef ~level:Trace.Full t "launch" "rank %d on host %d (inc %d)" r target_host inc;
    ignore
      (Cluster.spawn_on cluster ~host ~name:(Printf.sprintf "ssh-rank%d" r) (fun () ->
           if inc > 0 then Proc.sleep cfg.Config.relaunch_delay;
           Proc.sleep cfg.Config.ssh_delay;
           let daemon =
             if Config.restarts_all_ranks cfg then
               Vdaemon.spawn env ~rank:r ~host:target_host ~incarnation:inc
             else V2_daemon.spawn env ~rank:r ~host:target_host ~incarnation:inc
           in
           Proc.on_exit daemon (fun _ -> Mailbox.send events (E_spawn_died (r, inc)))))
  in
  let move_to_spare r =
    let info = ranks.(r) in
    match !free_hosts with
    | [] -> tracef ~level:Trace.Full t "no-spare" "rank %d restarts in place" r
    | spare :: rest ->
        free_hosts := rest @ [ info.ri_host ];
        tracef ~level:Trace.Full t "reallocate" "rank %d: host %d -> %d" r info.ri_host spare;
        info.ri_host <- spare
  in
  let old_stopping () =
    Array.fold_left (fun acc info -> if info.ri_st = R_stopping then acc + 1 else acc) 0 ranks
  in
  let begin_recovery ~failed =
    t.recovery_count <- t.recovery_count + 1;
    steady := false;
    tracef t "recovery-start" "#%d triggered by rank %d" t.recovery_count failed;
    Array.iteri
      (fun r info ->
        if r <> failed then
          match (info.ri_st, info.ri_conn) with
          | (R_computing | R_ready | R_registered), Some conn ->
              ignore (Net.send conn Message.Terminate);
              info.ri_st <- R_stopping
          | (R_computing | R_ready | R_registered), None | (R_launching | R_stopping | R_forgotten), _
            ->
              ())
      ranks
  in
  let maybe_start () =
    if Array.for_all (fun info -> info.ri_st = R_ready) ranks then begin
      let rank_hosts = Array.map (fun info -> info.ri_host) ranks in
      let resume = t.recovery_count > 0 in
      Array.iter
        (fun info ->
          (match info.ri_conn with
          | Some conn -> ignore (Net.send conn (Message.Start { rank_hosts; resume }))
          | None -> ());
          info.ri_st <- R_computing)
        ranks;
      steady := true;
      trace t (if resume then "recovery-complete" else "app-started") ""
    end
  in
  let handle_closed r inc =
    let info = ranks.(r) in
    if inc = info.ri_inc && not !completed then begin
      match info.ri_st with
      | R_stopping ->
          (* Old-wave daemon terminated as ordered: relaunch in place,
             eagerly. *)
          tracef ~level:Trace.Full t "old-wave-stopped" "rank %d" r;
          launch r
      | R_computing when !steady ->
          (* Failure detection in steady state. *)
          tracef t "failure-detected" "rank %d" r;
          if Config.restarts_all_ranks cfg then begin
            begin_recovery ~failed:r;
            move_to_spare r;
            launch r
          end
          else begin
            (* Sender-logging protocol: restart the failed rank only. *)
            t.recovery_count <- t.recovery_count + 1;
            move_to_spare r;
            launch r
          end
      | R_registered | R_ready | R_computing ->
          (* Failure of a process already recovered in the new wave while
             the recovery is still in progress. *)
          if cfg.Config.dispatcher_buggy && old_stopping () > 0 then begin
            (* Historical bug (§5.3): the closure is misaccounted as an
               old-wave termination; the rank is forgotten and never
               relaunched — the application freezes. *)
            t.is_confused <- true;
            info.ri_st <- R_forgotten;
            tracef t "dispatcher-confused" "rank %d lost while %d old-wave daemons still stopping"
              r (old_stopping ())
          end
          else if cfg.Config.vcl_seeded_race && t.recovery_count > 0 && not !steady then begin
            (* Seeded defect for the explorer demo (§6 shape, flag-gated,
               off by default): a rank that already re-registered in the
               current recovery wave dies again before the wave reaches
               steady state, and the dispatcher drops it on the floor —
               it takes a second, well-timed fault to reach this state. *)
            t.is_race_lost <- true;
            let was = state_name info.ri_st in
            info.ri_st <- R_forgotten;
            tracef t "dispatcher-race" "rank %d (%s) lost mid-recovery, wave #%d" r was
              t.recovery_count
          end
          else begin
            tracef ~level:Trace.Full t "new-wave-failure" "rank %d (handled)" r;
            move_to_spare r;
            launch r
          end
      | R_launching | R_forgotten ->
          tracef ~level:Trace.Full t "closure-ignored" "rank %d in state %s" r (state_name info.ri_st)
    end
  in
  let handle_event = function
    | E_hello (r, inc, conn) ->
        let info = ranks.(r) in
        if inc = info.ri_inc && info.ri_st = R_launching && not !completed then begin
          info.ri_conn <- Some conn;
          info.ri_st <- R_registered;
          tracef ~level:Trace.Full t "rank-registered" "rank %d inc %d" r inc
        end
        else Net.close conn
    | E_msg (r, inc, msg) -> (
        let info = ranks.(r) in
        if inc = info.ri_inc && not !completed then
          match msg with
          | Message.Ready _ ->
              if info.ri_st = R_registered then
                if (not (Config.restarts_all_ranks cfg)) && !steady then begin
                  (* Sender-logging recovery: only the restarted rank needs
                     to resume; everyone else kept computing. *)
                  let rank_hosts = Array.map (fun i -> i.ri_host) ranks in
                  (match info.ri_conn with
                  | Some conn ->
                      ignore (Net.send conn (Message.Start { rank_hosts; resume = true }))
                  | None -> ());
                  info.ri_st <- R_computing;
                  tracef t "rank-resumed" "rank %d" r
                end
                else begin
                  info.ri_st <- R_ready;
                  maybe_start ()
                end
          | Message.Rank_done _ ->
              info.ri_finished <- true;
              if Array.for_all (fun i -> i.ri_finished) ranks then begin
                completed := true;
                Array.iter
                  (fun i ->
                    match i.ri_conn with
                    | Some conn -> ignore (Net.send conn Message.Shutdown)
                    | None -> ())
                  ranks;
                trace t "app-completed" "";
                Ivar.fill t.result (Completed (Engine.now eng))
              end
          | Message.Ckpt_lost_report _ ->
              (* The rank needed an image and no storage replica survives:
                 recovery is impossible. Relaunching would just loop, so
                 end the run decisively — a lost checkpoint must surface
                 as a verdict, never as a hang. *)
              t.is_ckpt_lost <- true;
              info.ri_st <- R_forgotten;
              completed := true;
              tracef t "ckpt-lost" "rank %d: no complete checkpoint image survives" r;
              Array.iter
                (fun i ->
                  match i.ri_conn with
                  | Some conn -> ignore (Net.send conn Message.Shutdown)
                  | None -> ())
                ranks;
              Ivar.fill t.result (Aborted "checkpoint storage lost")
          | msg -> trace t "protocol-error" (Format.asprintf "from rank %d: %a" r Message.pp msg))
    | E_closed (r, inc) -> handle_closed r inc
    | E_spawn_died (r, inc) ->
        let info = ranks.(r) in
        if inc = info.ri_inc && info.ri_st = R_launching && not !completed then begin
          (* The daemon died before registering (e.g. killed between spawn
             and Hello): the dispatcher sees a failed launch and simply
             retries — no wave confusion possible. *)
          tracef ~level:Trace.Full t "spawn-failed" "rank %d inc %d, retrying" r inc;
          if !steady then begin
            (* Should not happen: launching implies a recovery or startup
               is in progress. *)
            trace t "anomaly" "spawn death in steady state"
          end;
          move_to_spare r;
          launch r
        end
  in
  ignore
    (Cluster.spawn_on cluster ~host ~name:"dispatcher" (fun () ->
         let listener = Net.listen env.Env.net ~host ~port:Config.dispatcher_port in
         Fun.protect ~finally:(fun () -> Net.close_listener listener) @@ fun () ->
         (* Accept daemon connections; each starts with Hello and is then
            pumped into the event mailbox tagged by (rank, incarnation). *)
         ignore
           (Cluster.spawn_on cluster ~host ~name:"dispatcher-accept" (fun () ->
                let rec accept_loop () =
                  match Net.accept listener with
                  | None -> ()
                  | Some conn ->
                      ignore
                        (Cluster.spawn_on cluster ~host ~name:"dispatcher-conn" (fun () ->
                             match Net.recv conn with
                             | Net.Data (Message.Hello { rank; incarnation }) ->
                                 Mailbox.send events (E_hello (rank, incarnation, conn));
                                 let rec pump_loop () =
                                   match Net.recv conn with
                                   | Net.Data msg ->
                                       Mailbox.send events (E_msg (rank, incarnation, msg));
                                       pump_loop ()
                                   | Net.Closed ->
                                       Mailbox.send events (E_closed (rank, incarnation))
                                 in
                                 pump_loop ()
                             | Net.Data _ | Net.Closed -> Net.close conn));
                      accept_loop ()
                in
                accept_loop ()));
         (* Initial launch of every rank. *)
         for r = 0 to n - 1 do
           launch r
         done;
         let rec main_loop () =
           handle_event (Mailbox.recv events);
           main_loop ()
         in
         main_loop ()));
  t

let outcome t = Ivar.read t.result
let peek_outcome t = Ivar.peek t.result
let recoveries t = t.recovery_count
let confused t = t.is_confused
let race_lost t = t.is_race_lost
let ckpt_lost t = t.is_ckpt_lost
let halt t = Cluster.kill_all t.env.Env.cluster ~host:t.host
