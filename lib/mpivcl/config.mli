(** MPICH-Vcl deployment parameters.

    Service times are calibrated against the paper's Grid Explorer setup
    (dual-Opteron nodes, GigE); see DESIGN.md §4. All times in simulated
    seconds, sizes in bytes. *)

type protocol =
  | Non_blocking  (** the paper's Vcl: computation continues during a wave *)
  | Blocking  (** ablation: communications frozen during a wave *)
  | Sender_logging
      (** MPICH-V2-style: pessimistic sender-based message logging with
          uncoordinated per-rank checkpoints; only the failed rank
          restarts (the protocol family the paper's conclusion proposes
          comparing under identical failure scenarios) *)
  | Replication of { degree : int }
      (** Active rank replication ([lib/mpirep]): every logical rank runs
          as [degree] replicas on distinct hosts; senders multicast,
          receivers deduplicate, and a replica failure costs {e no
          rollback at all} — the run only dies when every replica of one
          rank is lost inside the failover window. Deployed by
          [Mpirep.Deploy], not {!Deploy}. *)
  | Ulfm of { spares : int }
      (** ULFM-style shrink-and-continue ([lib/mpiulfm]): no rollback
          wave and no redundant computation — on a failure the survivors
          run a two-phase agreement over the suspected set, {e shrink}
          to a dense communicator, adopt (or hand to a promoted warm
          spare) the logical ranks of the dead, and continue from
          in-memory buddy snapshots. [spares] warm spare daemons idle
          until promoted. Deployed by [Mpiulfm.Deploy], not {!Deploy}. *)

type t = {
  n_ranks : int;
  protocol : protocol;
  wave_interval : float;  (** checkpoint scheduler period (paper: 30 s) *)
  n_ckpt_servers : int;
  server_bandwidth : float;  (** per-server store/restore throughput *)
  local_restore_time : float;  (** reload image from local disk *)
  ssh_delay : float;  (** remote process launch latency *)
  relaunch_delay : float;
      (** dispatcher-side resource allocation before relaunching a rank
          during recovery (host selection, checkpoint bookkeeping) *)
  init_delay_min : float;
  init_delay_max : float;
      (** daemon start-up time (process restore, socket setup) between
          spawn and the dispatcher Hello — the window in which a fault
          kills an {e unregistered} daemon and the dispatcher retries
          cleanly (Figure 9's non-buggy cases); uniform jitter *)
  handshake_delay : float;
      (** daemon/dispatcher argument exchange before [localMPI_setCommand] *)
  term_lag_min : float;
  term_lag_max : float;
      (** an old-wave daemon takes uniform [term_lag_min, term_lag_max] to
          honour a termination order (cleanup, flushing) — the spread that
          opens the recovery race window *)
  term_straggler_prob : float;
  term_straggler_extra : float;
      (** with this probability a daemon adds uniform [0, extra] seconds
          to its termination (e.g. it was mid-transfer) — the run-to-run
          recovery variance behind the paper's "chaotic" times (§5.2) *)
  store_jitter : float;
      (** relative jitter on checkpoint-server transfer times (disk and
          NFS contention) *)
  ckpt_replicas : int;
      (** checkpoint storage replication factor. [1] (the default) keeps
          the historical single-server-per-rank plane and is
          byte-identical to the pre-replication simulator; [2] mirrors
          every store to the rank's mirror server (the next server in
          the ring) before acking, and restores fail over to the mirror
          when the primary is unreachable. *)
  store_ack_timeout : float;
      (** how long the checkpoint scheduler waits for the wave's store
          acks after broadcasting markers before abandoning the wave
          (traced [wave-abandoned]) — a dead or frozen checkpoint server
          degrades the wave instead of wedging the scheduler. Also
          bounds the primary's wait for a mirror ack. *)
  fetch_retries : int;
      (** restore-time connection attempts per storage replica before
          the daemon moves down the failover ladder *)
  fetch_backoff : float;
      (** initial retry backoff for restore fetches, doubled per attempt
          (exponential, jitter-free to stay deterministic) *)
  ckpt_respawn_delay : float;
      (** how long after a checkpoint-server death the storage plane
          respawns it (the paper's operator restart). The respawned
          server discards torn images and, with [ckpt_replicas >= 2],
          re-syncs its shard from its neighbours before serving. *)
  dispatcher_buggy : bool;
      (** historical dispatcher with the recovery-wave confusion the paper
          found; [false] = the corrected dispatcher *)
  vcl_seeded_race : bool;
      (** seeded defect for the explorer's acceptance demo (default
          [false], independent of [dispatcher_buggy]): a §6-style
          dispatcher race — a rank lost {e before the recovery wave
          reaches steady state} is forgotten instead of relaunched, and
          the deployment wedges. [lib/explore] must rediscover this from
          a bounded fault-space search and shrink the witness to two
          faults; it is never enabled by any experiment. *)
  restart_settle : float;  (** daemon-side setup after image load *)
  lazy_peer_mesh : bool;
      (** open daemon-to-daemon connections on first send instead of
          eagerly building the full [n*(n-1)/2] mesh at start-up. The
          historical MPICH-V daemons connect all-to-all, which is faithful
          to the paper's 32-rank runs but quadratic in memory and events;
          sparse workloads at thousands of ranks only ever touch
          O(neighbours) links. Checkpoint waves adapt: a cut counts only
          the channels that exist, and a channel opened mid-wave exchanges
          markers on establishment. [false] (the default) keeps the eager
          mesh and stays byte-identical to the historical simulator. *)
  rep_respawn : bool;
      (** replication only: respawn a fresh replica (state transfer from a
          live sibling) after a replica failure, restoring the replication
          degree; [false] = run degraded until the last replica dies *)
  rep_failover_window : float;
      (** replication only: how long the membership layer waits for an
          in-flight respawn to come back live once a rank has {e zero}
          computing replicas before declaring replication exhausted *)
  ulfm_heartbeat_period : float;
      (** ulfm only: period of the all-to-all daemon heartbeat that
          drives failure suspicion *)
  ulfm_suspicion_timeout : float;
      (** ulfm only: silence (no heartbeat, no app traffic) after which
          a peer is locally suspected and a revoke is raised into any
          running collective *)
  ulfm_agree_timeout : float;
      (** ulfm only: per-ballot agreement round timeout before the
          candidate abandons the ballot and retries with a higher one *)
  ulfm_max_ballots : int;
      (** ulfm only: agreement attempts before a daemon concludes it is
          on the wrong side of a partition and aborts cleanly rather
          than risk a split-brain shrink *)
  net : Simnet.Net.Perturb.profile option;
      (** launch-time network perturbation ([failmpi_run --net-*]):
          applied to the deployment's fabric before any process starts
          and wired into the FCI control plane. [None] (the default)
          leaves the network byte-identical to the unperturbed
          simulator. *)
  topology : Simtopo.Topo.spec option;
      (** physical network shape ([failmpi_run --topology]): validated
          at launch (the topology must seat every compute host) and
          handed to the FCI control plane, where FAIL topology groups
          ([switch agg\[2\]], [pod 1], [rack 3]) resolve against it.
          Purely descriptive until a component fault fires: [None] and
          [Some Flat] produce byte-identical runs. *)
}

(** Paper-like defaults for [n_ranks] ranks (non-blocking protocol,
    30 s waves, 2 checkpoint servers, buggy dispatcher — the version the
    paper evaluated). *)
val default : n_ranks:int -> t

(** [restarts_all_ranks cfg] is true for the coordinated-checkpointing
    protocols, whose recovery rolls every rank back; [Sender_logging]
    restarts only the failed rank and [Replication] restarts nothing. *)
val restarts_all_ranks : t -> bool

(** [replication_degree cfg] is [Some degree] for the replication backend,
    [None] for the rollback-recovery protocols. *)
val replication_degree : t -> int option

(** [ulfm_spares cfg] is [Some spares] for the shrink-and-continue
    backend, [None] otherwise. *)
val ulfm_spares : t -> int option

(** Short human-readable protocol label (CLI, experiment tables). *)
val protocol_name : protocol -> string

(** Ports used on service hosts. *)
val dispatcher_port : int

val scheduler_port : int
val server_port : int
val daemon_port : int
