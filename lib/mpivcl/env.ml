open Simkern
open Simos

type t = {
  eng : Engine.t;
  cluster : Cluster.t;
  net : Message.t Simnet.Net.t;
  fci : Fci.Runtime.t option;
  cfg : Config.t;
  disk : Local_disk.t;
  app : App.t;
  state_bytes : int;
  dispatcher_host : int;
  scheduler_host : int;
  server_hosts : int array;
  rng : Rng.t;
}

let server_index t ~rank = rank mod Array.length t.server_hosts
let server_for t ~rank = t.server_hosts.(server_index t ~rank)

let mirror_index t ~rank =
  let n = Array.length t.server_hosts in
  if t.cfg.Config.ckpt_replicas >= 2 && n >= 2 then
    Some ((server_index t ~rank + 1) mod n)
  else None

let mirror_for t ~rank =
  Option.map (fun i -> t.server_hosts.(i)) (mirror_index t ~rank)
