(** Checkpoint server.

    Collects local checkpoints from its assigned ranks, keeps exactly one
    complete committed global checkpoint per rank, and serves images back
    on restart. Transfers are serialized through the server — a store or
    fetch occupies it for [bytes / bandwidth] seconds, which is what makes
    checkpoint/recovery slower when images are bigger (the paper's 25-node
    anomaly in §5.2).

    The two-slot alternation of §3 is an explicit prepare/commit
    protocol: a store stamps its slot incomplete before the transfer and
    seals it after, so a server killed mid-store leaves a detectably torn
    image that the restart scan discards — recovery always lands on the
    last {e complete} wave. With [replicas >= 2] the plane is replicated:
    each rank's primary ([rank mod n]) pushes sealed images to the next
    server in the ring and only acks the daemon once the mirror acked,
    and a respawned server re-syncs both shards it serves from its
    neighbours before opening its listener. *)

open Simkern
open Simos

type t

(** [spawn engine cluster net ~host ~bandwidth ?jitter ?index
    ?server_hosts ?replicas ?respawn ?ack_timeout ()] starts a server
    listening on [Config.server_port] at [host]; each transfer's service
    time gets a relative uniform jitter of amplitude [jitter] (default 0).

    [index] is this server's shard (default 0) and [server_hosts] the
    hosts of the whole plane in ring order (default [[| host |]]);
    [replicas >= 2] arms mirroring (default 1: primary only, the
    historical behaviour). [respawn] restarts the server that long after
    its process dies (default: never); [ack_timeout] bounds mirror-ack
    and resync waits (default 20 s). *)
val spawn :
  Engine.t ->
  Cluster.t ->
  Message.t Simnet.Net.t ->
  host:int ->
  bandwidth:float ->
  ?jitter:float ->
  ?index:int ->
  ?server_hosts:int array ->
  ?replicas:int ->
  ?respawn:float ->
  ?ack_timeout:float ->
  unit ->
  t

(** [committed_wave t ~rank] is the wave of the committed image held for
    [rank], if any (tests/analysis). *)
val committed_wave : t -> rank:int -> int option

(** [committed t ~rank] returns the committed image (tests/analysis). *)
val committed : t -> rank:int -> Message.image option

(** [pending_torn t ~rank] is true while [rank]'s in-progress slot holds
    a torn (prepared but unsealed) image (tests). *)
val pending_torn : t -> rank:int -> bool

(** Images discarded by restart torn-write scans so far. *)
val torn_discarded : t -> int

(** Completed resync pulls performed by restarts of this server. *)
val resyncs : t -> int

(** Times this server was respawned after a death. *)
val respawns : t -> int

(** [inject_kill t] kills every server task on the host, leaving the
    respawn hook armed — the FAIL [halt service ckpt\[i\]] handle. *)
val inject_kill : t -> unit

(** [freeze t] / [unfreeze t] freeze or resume every server task on the
    host — the FAIL [stop]/[continue] service handles. *)
val freeze : t -> unit

val unfreeze : t -> unit

(** [halt t] disarms the respawn hook and kills the server process (used
    at experiment teardown). *)
val halt : t -> unit
