open Simkern
open Simos

type layout = {
  n_compute : int;
  coordinator_host : int;
  dispatcher_host : int;
  scheduler_host : int;
  server_hosts : int list;
  total_hosts : int;
}

(* Dispatcher and scheduler first, then the checkpoint servers. *)
let base_layout ~n_compute ~n_servers =
  Layout.make ~n_compute ~n_services:(2 + n_servers)

let of_base (base : Layout.t) ~n_servers =
  {
    n_compute = base.Layout.n_compute;
    coordinator_host = base.Layout.coordinator_host;
    dispatcher_host = Layout.service base 0;
    scheduler_host = Layout.service base 1;
    server_hosts = List.init n_servers (fun i -> Layout.service base (2 + i));
    total_hosts = base.Layout.total_hosts;
  }

let make_layout ~n_compute ~n_servers =
  of_base (base_layout ~n_compute ~n_servers) ~n_servers

type handle = {
  env : Env.t;
  lay : layout;
  dispatcher : Dispatcher.t;
  scheduler : Scheduler.t option;
  servers : Ckpt_server.t list;
}

let launch eng ?fci ~cfg ~app ~state_bytes ~n_compute () =
  let n_servers = cfg.Config.n_ckpt_servers in
  let base = base_layout ~n_compute ~n_servers in
  let lay = of_base base ~n_servers in
  if cfg.Config.n_ranks > n_compute then
    invalid_arg "Deploy.launch: more ranks than compute hosts";
  (match cfg.Config.protocol with
  | Config.Replication _ ->
      invalid_arg "Deploy.launch: the replication backend is deployed by Mpirep.Deploy"
  | Config.Ulfm _ ->
      invalid_arg "Deploy.launch: the ulfm backend is deployed by Mpiulfm.Deploy"
  | Config.Non_blocking | Config.Blocking | Config.Sender_logging -> ());
  let cluster, net = Layout.fabric eng base in
  (* Perturb the fabric before any process starts, then hand it to the
     FCI control plane so daemon traffic rides the same links. *)
  (match cfg.Config.net with
  | Some profile -> Simnet.Net.Perturb.apply (Simnet.Net.perturb net) profile
  | None -> ());
  (match fci with
  | Some rt -> Fci.Runtime.set_fabric rt (Simnet.Net.perturb net)
  | None -> ());
  (* Validate the declared topology against the compute pool at launch —
     a fabric too small for the job is a configuration error, not a
     mid-run trace. Unperturbed runs never consult the geometry. *)
  (match cfg.Config.topology with
  | Some spec -> (
      let topo = Simtopo.Topo.for_cluster spec ~n_compute in
      match fci with
      | Some rt -> Fci.Runtime.set_topology rt topo
      | None -> ())
  | None -> ());
  let env =
    {
      Env.eng;
      cluster;
      net;
      fci;
      cfg;
      disk = Local_disk.create ();
      app;
      state_bytes;
      dispatcher_host = lay.dispatcher_host;
      scheduler_host = lay.scheduler_host;
      server_hosts = Array.of_list lay.server_hosts;
      rng = Rng.split (Engine.rng eng);
    }
  in
  let servers =
    List.mapi
      (fun i host ->
        Ckpt_server.spawn eng cluster net ~host ~bandwidth:cfg.Config.server_bandwidth
          ~jitter:cfg.Config.store_jitter ~index:i ~server_hosts:env.Env.server_hosts
          ~replicas:cfg.Config.ckpt_replicas ~respawn:cfg.Config.ckpt_respawn_delay
          ~ack_timeout:cfg.Config.store_ack_timeout ())
      lay.server_hosts
  in
  let scheduler =
    (* Coordinated checkpointing needs the global scheduler; the
       sender-logging protocol checkpoints each rank independently. *)
    if Config.restarts_all_ranks cfg then
      Some
        (Scheduler.spawn eng cluster net ~host:lay.scheduler_host ~n_ranks:cfg.Config.n_ranks
           ~wave_interval:cfg.Config.wave_interval
           ~store_ack_timeout:cfg.Config.store_ack_timeout ~server_hosts:lay.server_hosts ())
    else None
  in
  let dispatcher =
    Dispatcher.spawn env ~host:lay.dispatcher_host
      ~initial_hosts:(Array.init cfg.Config.n_ranks Fun.id)
      ~spare_limit:n_compute
  in
  (* Expose the infrastructure plane to FAIL scenarios: [halt service
     ckpt[i]] and friends resolve against these registrations. Service
     hosts stay outside the controller group, as in the paper — this is
     the only injection surface that reaches them. *)
  (match fci with
  | Some rt ->
      List.iteri
        (fun i srv ->
          Fci.Runtime.register_service rt
            ~name:(Printf.sprintf "ckpt[%d]" i)
            ~kill:(fun () -> Ckpt_server.inject_kill srv)
            ~freeze:(fun () -> Ckpt_server.freeze srv)
            ~unfreeze:(fun () -> Ckpt_server.unfreeze srv))
        servers;
      let host_tasks host = Cluster.tasks cluster ~host in
      Fci.Runtime.register_service rt ~name:"sched"
        ~kill:(fun () -> Cluster.kill_all cluster ~host:lay.scheduler_host)
        ~freeze:(fun () -> List.iter Proc.freeze (host_tasks lay.scheduler_host))
        ~unfreeze:(fun () -> List.iter Proc.unfreeze (host_tasks lay.scheduler_host));
      Fci.Runtime.register_service rt ~name:"disp"
        ~kill:(fun () -> Cluster.kill_all cluster ~host:lay.dispatcher_host)
        ~freeze:(fun () -> List.iter Proc.freeze (host_tasks lay.dispatcher_host))
        ~unfreeze:(fun () -> List.iter Proc.unfreeze (host_tasks lay.dispatcher_host))
  | None -> ());
  { env; lay; dispatcher; scheduler; servers }

let cluster h = h.env.Env.cluster
let net h = h.env.Env.net

let teardown h =
  (* Disarm the servers' respawn hooks before the mass kill, or the
     teardown itself would schedule post-run respawns. *)
  List.iter Ckpt_server.halt h.servers;
  Layout.teardown h.env.Env.cluster
