(** Dispatcher: starts the MPI application, detects failures, drives
    recovery waves.

    Failure detection follows §3: "a failure is assumed after any
    unexpected socket closure". Recovery terminates every daemon of the
    current execution wave, then relaunches each rank {e eagerly} as soon
    as its old daemon is confirmed dead — failed ranks move to a spare
    host, others restart in place and reuse their local checkpoint.

    Two variants, selected by [Config.dispatcher_buggy]:
    - the {b historical} dispatcher the paper evaluated: if it detects the
      failure of a daemon that already registered in the {e new} wave
      while the recovery is still incomplete, it misaccounts the closure
      as an old-wave termination and forgets to relaunch that rank — the
      application freezes (the bug located in §5.3);
    - the {b corrected} dispatcher: such failures re-enter the relaunch
      path once the previous wave is fully stopped.

    Orthogonally, [Config.vcl_seeded_race] plants a §6-style defect used
    by [lib/explore]'s acceptance demo: once a recovery wave is under
    way, losing a rank that already rejoined the new wave {e before} the
    wave reaches steady state forgets that rank and wedges the run. It
    needs two well-placed faults to trigger and is off by default. *)



type t

type outcome =
  | Completed of float  (** the application finalized at this time *)
  | Aborted of string  (** infrastructure failure (should not happen) *)

(** [spawn env ~host ~initial_hosts] starts the dispatcher on [host];
    rank [r] is first launched on [initial_hosts.(r)]; remaining cluster
    hosts whose id is below [spare_limit] serve as spares. *)
val spawn : Env.t -> host:int -> initial_hosts:int array -> spare_limit:int -> t

(** [outcome t] resolves when the application completes. Blocks the
    calling process. *)
val outcome : t -> outcome

(** [peek_outcome t] is [None] while the application is still running. *)
val peek_outcome : t -> outcome option

(** Number of recovery waves started so far. *)
val recoveries : t -> int

(** [confused t] is true once the buggy dispatcher has corrupted its
    bookkeeping (the run will freeze). *)
val confused : t -> bool

(** [race_lost t] is true once the seeded [Config.vcl_seeded_race]
    defect has dropped a rank mid-recovery (the run will freeze). *)
val race_lost : t -> bool

(** [ckpt_lost t] is true once a restarting rank reported that no
    checkpoint storage replica was reachable: recovery was needed and no
    complete image survives. The dispatcher ends the run immediately
    (the [Ckpt_lost] verdict) instead of relaunching forever. *)
val ckpt_lost : t -> bool

(** [halt t] tears the dispatcher down (experiment timeout). *)
val halt : t -> unit
