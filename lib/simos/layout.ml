type t = {
  n_compute : int;
  coordinator_host : int;
  service_hosts : int array;
  total_hosts : int;
}

let make ~n_compute ~n_services =
  if n_compute < 1 then invalid_arg "Layout.make: need at least one compute host";
  {
    n_compute;
    coordinator_host = n_compute;
    service_hosts = Array.init n_services (fun i -> n_compute + 1 + i);
    total_hosts = n_compute + 1 + n_services;
  }

let service t i = t.service_hosts.(i)
let fabric eng t = (Cluster.create eng ~size:t.total_hosts, Simnet.Net.create eng ())

let teardown cluster =
  for host = 0 to Cluster.size cluster - 1 do
    Cluster.kill_all cluster ~host
  done
