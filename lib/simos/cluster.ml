open Simkern

(* Task bookkeeping is flat: one slot per live task in parallel arrays
   (proc, host, prev/next links), recycled through a free-list threaded
   over [slot_next]. Each host heads an intrusive doubly-linked list of
   its slots (most recent first), so spawn and exit are O(1), per-host
   walks are O(tasks-on-host), and counters make the totals O(1). The
   old representation — a [Proc.t list] per host pruned with
   [List.filter] on every exit — made every exit O(tasks-on-host) and
   every count O(total tasks), which dominates at 10k+ hosts. *)

type host = { host_id : int; host_name : string; mutable head_slot : int; mutable task_count : int }

type t = {
  eng : Engine.t;
  machines : host array;
  mutable slot_proc : Proc.t option array;
  mutable slot_host : int array;
  mutable slot_prev : int array;
  mutable slot_next : int array;  (* doubles as the free-list link *)
  mutable free_head : int;  (* -1 when the arrays are full *)
  mutable live_total : int;
}

let nil = -1

let initial_slots size = max 64 (4 * size)

let create eng ~size =
  if size <= 0 then invalid_arg "Cluster.create: size must be positive";
  let machines =
    Array.init size (fun i ->
        {
          host_id = i;
          host_name = Printf.sprintf "node%03d" i;
          head_slot = nil;
          task_count = 0;
        })
  in
  let cap = initial_slots size in
  let slot_next = Array.init cap (fun i -> if i = cap - 1 then nil else i + 1) in
  {
    eng;
    machines;
    slot_proc = Array.make cap None;
    slot_host = Array.make cap nil;
    slot_prev = Array.make cap nil;
    slot_next;
    free_head = 0;
    live_total = 0;
  }

let engine t = t.eng
let size t = Array.length t.machines

let host t id =
  if id < 0 || id >= Array.length t.machines then
    invalid_arg (Printf.sprintf "Cluster.host: unknown host %d" id);
  t.machines.(id)

let hosts t = Array.to_list t.machines

let grow_slots t =
  let cap = Array.length t.slot_proc in
  let cap' = 2 * cap in
  let extend a fill =
    let a' = Array.make cap' fill in
    Array.blit a 0 a' 0 cap;
    a'
  in
  t.slot_proc <- extend t.slot_proc None;
  t.slot_host <- extend t.slot_host nil;
  t.slot_prev <- extend t.slot_prev nil;
  t.slot_next <- extend t.slot_next nil;
  for i = cap to cap' - 1 do
    t.slot_next.(i) <- (if i = cap' - 1 then nil else i + 1)
  done;
  t.free_head <- cap

let alloc_slot t =
  if t.free_head = nil then grow_slots t;
  let slot = t.free_head in
  t.free_head <- t.slot_next.(slot);
  slot

let release_slot t slot =
  let h = t.machines.(t.slot_host.(slot)) in
  let prev = t.slot_prev.(slot) and next = t.slot_next.(slot) in
  if prev = nil then h.head_slot <- next else t.slot_next.(prev) <- next;
  if next <> nil then t.slot_prev.(next) <- prev;
  t.slot_proc.(slot) <- None;
  t.slot_host.(slot) <- nil;
  t.slot_prev.(slot) <- nil;
  t.slot_next.(slot) <- t.free_head;
  t.free_head <- slot;
  h.task_count <- h.task_count - 1;
  t.live_total <- t.live_total - 1

let spawn_on t ~host:id ?name body =
  let h = host t id in
  let name = match name with Some n -> n | None -> Printf.sprintf "task@%s" h.host_name in
  (* The host id doubles as the event region, so a host's processes are
     stored in that host's queue shard. *)
  let p = Proc.spawn t.eng ~region:id ~name body in
  let slot = alloc_slot t in
  t.slot_proc.(slot) <- Some p;
  t.slot_host.(slot) <- id;
  t.slot_prev.(slot) <- nil;
  t.slot_next.(slot) <- h.head_slot;
  if h.head_slot <> nil then t.slot_prev.(h.head_slot) <- slot;
  h.head_slot <- slot;
  h.task_count <- h.task_count + 1;
  t.live_total <- t.live_total + 1;
  Proc.on_exit p (fun _ -> release_slot t slot);
  p

(* Walk a host's slots, most recent first (same order the old per-host
   list presented). *)
let fold_host t h ~init ~f =
  let rec go acc slot =
    if slot = nil then acc
    else
      let next = t.slot_next.(slot) in
      match t.slot_proc.(slot) with
      | Some p -> go (f acc p) next
      | None -> go acc next
  in
  go init h.head_slot

let tasks t ~host:id =
  List.rev (fold_host t (host t id) ~init:[] ~f:(fun acc p -> p :: acc))

let find_task t ~host:id ~name =
  let h = host t id in
  let rec go slot =
    if slot = nil then None
    else
      match t.slot_proc.(slot) with
      | Some p when String.equal (Proc.name p) name -> Some p
      | Some _ | None -> go t.slot_next.(slot)
  in
  go h.head_slot

let kill_all t ~host:id =
  (* Collect before killing: each kill unlinks its slot via the exit
     hook, which would invalidate a live walk. Kill order stays most
     recent first, matching the historical list order. *)
  let victims = fold_host t (host t id) ~init:[] ~f:(fun acc p -> p :: acc) in
  List.iter Proc.kill (List.rev victims)

let task_count t ~host:id = (host t id).task_count

let live_task_count t = t.live_total

(* Snapshot: the slot arrays, free-list head and per-host list heads are
   the cluster's whole mutable state. Restore copies them back into the
   same [t] (exit hooks capture slot indices, not array references, so a
   restored table re-validates them). The [Proc.t]s referenced by the
   slots are shared, not copied — restore is sound when process state is
   itself back at the capture point (self-contained tests, or an OS-level
   fork that carried the whole heap; see Engine's snapshot contract). *)

type snapshot = {
  sn_slot_proc : Proc.t option array;
  sn_slot_host : int array;
  sn_slot_prev : int array;
  sn_slot_next : int array;
  sn_free_head : int;
  sn_live_total : int;
  sn_hosts : (int * int) array;  (* (head_slot, task_count) per host *)
}

let snapshot t =
  {
    sn_slot_proc = Array.copy t.slot_proc;
    sn_slot_host = Array.copy t.slot_host;
    sn_slot_prev = Array.copy t.slot_prev;
    sn_slot_next = Array.copy t.slot_next;
    sn_free_head = t.free_head;
    sn_live_total = t.live_total;
    sn_hosts = Array.map (fun h -> (h.head_slot, h.task_count)) t.machines;
  }

let restore t s =
  if Array.length s.sn_hosts <> Array.length t.machines then
    invalid_arg "Cluster.restore: snapshot from a different-size cluster";
  t.slot_proc <- Array.copy s.sn_slot_proc;
  t.slot_host <- Array.copy s.sn_slot_host;
  t.slot_prev <- Array.copy s.sn_slot_prev;
  t.slot_next <- Array.copy s.sn_slot_next;
  t.free_head <- s.sn_free_head;
  t.live_total <- s.sn_live_total;
  Array.iteri
    (fun i h ->
      let head_slot, task_count = s.sn_hosts.(i) in
      h.head_slot <- head_slot;
      h.task_count <- task_count)
    t.machines
