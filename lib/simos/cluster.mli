(** Simulated cluster: a set of hosts and the tasks running on them.

    Mirrors the paper's Grid Explorer setup: an experiment devotes more
    machines than application processes (e.g. 53 hosts for BT-49) so that
    spare processors are always available after failures. Host identifiers
    double as network addresses in {!Simnet.Net} and as event-queue
    regions in {!Simkern.Engine}.

    Task tracking is flat state: slots in preallocated parallel arrays
    recycled through a free-list, with an intrusive per-host list over
    the slots. Spawn and exit bookkeeping are O(1), {!task_count} and
    {!live_task_count} are O(1) counters, and {!kill_all} / {!find_task}
    walk only the tasks of one host — the invariants that keep a
    10k–100k-host cluster cheap. *)

open Simkern

type t

type host = {
  host_id : int;
  host_name : string;
  mutable head_slot : int;  (** head of the host's slot list (internal) *)
  mutable task_count : int;  (** live tasks on this host, maintained on spawn/exit *)
}

(** [create engine ~size] builds a cluster of [size] hosts with ids
    [0 .. size-1]. *)
val create : Engine.t -> size:int -> t

val engine : t -> Engine.t
val size : t -> int

(** [host t id] returns the host record. Raises [Invalid_argument] on an
    unknown id. *)
val host : t -> int -> host

val hosts : t -> host list

(** [spawn_on t ~host ?name body] starts a task on [host]; the task's
    start event lives in host [host]'s engine region. The task is
    tracked in the host's slot list until it exits. *)
val spawn_on : t -> host:int -> ?name:string -> (unit -> unit) -> Proc.t

(** [tasks t ~host] returns the live tasks on [host], most recent
    first. O(tasks-on-host). *)
val tasks : t -> host:int -> Proc.t list

(** [find_task t ~host ~name] returns the most recently spawned live task
    with the given name. O(tasks-on-host). *)
val find_task : t -> host:int -> name:string -> Proc.t option

(** [kill_all t ~host] kills every live task on [host], most recent
    first. O(tasks-on-host). *)
val kill_all : t -> host:int -> unit

(** [task_count t ~host] is the number of live tasks on [host]. O(1). *)
val task_count : t -> host:int -> int

(** [live_task_count t] is the total number of live tasks. O(1). *)
val live_task_count : t -> int

(** {2 Snapshot / restore}

    Captures the whole of the cluster's mutable state: the flat slot
    arrays, the free-list head and the per-host list heads and counters.
    The referenced tasks are shared, not copied — restoring inside a
    live process is only sound when process state is itself back at the
    capture point (self-contained bookkeeping tests, or an OS-level fork
    that carried the rest of the heap copy-on-write, which is how the
    explorer uses it; see {!Simkern.Engine.snapshot}). *)

type snapshot

(** [snapshot t] captures the slot tables (O(slots)). *)
val snapshot : t -> snapshot

(** [restore t s] rewinds the tables. Reusable; raises
    [Invalid_argument] if [s] came from a different-size cluster. *)
val restore : t -> snapshot -> unit
