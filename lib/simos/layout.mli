(** Shared cluster-layout builder for the protocol backends.

    Every backend deploys onto the same host-numbering convention
    (shared with the FAIL scenarios of [Fail_lang.Paper_scenarios]):
    compute hosts are [0 .. n_compute-1] and subject to fault injection,
    the FAIL coordinator machine is [n_compute], and protocol service
    hosts (dispatcher, scheduler, checkpoint servers, ...) come after —
    never injected, as in the paper. *)

open Simkern

type t = {
  n_compute : int;
  coordinator_host : int;  (** P1's machine, [n_compute] *)
  service_hosts : int array;  (** [n_compute+1 ...], allocation order *)
  total_hosts : int;
}

(** [make ~n_compute ~n_services] computes the host map. *)
val make : n_compute:int -> n_services:int -> t

(** [service t i] is the [i]-th service host. *)
val service : t -> int -> int

(** [fabric eng t] creates the cluster and the network the deployment
    runs on. *)
val fabric : Engine.t -> t -> Cluster.t * 'msg Simnet.Net.t

(** [teardown cluster] kills every task on every host (experiment
    timeout). *)
val teardown : Cluster.t -> unit
