(* failmpi_explore: systematic fault-space search against a protocol
   backend — grid over (target x time-bucket) for 1-2 faults, seeded
   random sampling beyond, §5 classification per run, delta-debugging
   minimization of every failing plan.

   Examples:
     failmpi_explore --max-faults 1 --budget 50 --jobs 2
     failmpi_explore --seeded-defect --fixed-dispatcher --json report.json --emit out/
     failmpi_explore --protocol v2 --buckets 10,25,40 --freeze 8 *)

open Cmdliner

let parse_ints s =
  let parts = String.split_on_char ',' (String.trim s) in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | p :: rest -> (
        match int_of_string_opt (String.trim p) with
        | Some v -> go (v :: acc) rest
        | None -> Error (`Msg "expected a comma-separated list of integers"))
  in
  go [] parts

let ints_conv =
  Arg.conv
    ( parse_ints,
      fun ppf xs ->
        Format.pp_print_string ppf (String.concat "," (List.map string_of_int xs)) )

let topology_conv =
  Arg.conv
    ( (fun s -> Result.map_error (fun m -> `Msg m) (Simtopo.Topo.spec_of_string s)),
      fun ppf spec -> Format.pp_print_string ppf (Simtopo.Topo.spec_to_string spec) )

let run protocol replicas ranks klass max_faults budget jobs seed targets buckets freeze
    timeout fixed seeded shrink_hangs net services topo fork corpus json_file emit_dir =
  (match jobs with
  | Some n when n <= 0 ->
      prerr_endline (Printf.sprintf "failmpi_explore: --jobs must be >= 1 (got %d)" n);
      exit 1
  | _ -> ());
  if budget <= 0 then begin
    prerr_endline (Printf.sprintf "failmpi_explore: --budget must be >= 1 (got %d)" budget);
    exit 1
  end;
  (match corpus with
  | Some dir ->
      let parent = Filename.dirname dir in
      if not (Sys.file_exists parent && Sys.is_directory parent) then begin
        prerr_endline
          (Printf.sprintf "failmpi_explore: --corpus parent directory %s does not exist" parent);
        exit 1
      end
  | None -> ());
  let klass =
    match Workload.Bt_model.klass_of_string klass with
    | Some k -> k
    | None ->
        prerr_endline "failmpi_explore: class must be A, B or C";
        exit 1
  in
  let (module B : Failmpi.Backend.S) =
    match Failmpi.Backend.find protocol with
    | Some b -> b
    | None ->
        prerr_endline
          (Printf.sprintf "failmpi_explore: unknown protocol %s (registered: %s)" protocol
             (String.concat ", " (Failmpi.Backend.names ())));
        exit 1
  in
  let protocol = B.protocol ~replicas in
  let n_machines = B.default_machines ~n_ranks:ranks ~replicas in
  (match topo with
  | Some spec -> (
      try ignore (Simtopo.Topo.for_cluster spec ~n_compute:n_machines)
      with Invalid_argument msg ->
        prerr_endline (Printf.sprintf "failmpi_explore: %s" msg);
        exit 1)
  | None -> ());
  let cfg =
    {
      (Mpivcl.Config.default ~n_ranks:ranks) with
      Mpivcl.Config.protocol;
      dispatcher_buggy = not fixed;
      vcl_seeded_race = seeded;
      topology = topo;
    }
  in
  let spec =
    {
      (Experiments.Harness.bt_spec ~cfg ~klass ~n_ranks:ranks ~n_machines ~scenario:None ())
      with
      Failmpi.Run.seed = Int64.of_int seed;
      timeout;
    }
  in
  (* Shoot at the initial rank hosts by default: faults on spare hosts
     are absorbed silently by the idle controllers. *)
  let targets = match targets with Some ts -> ts | None -> List.init ranks Fun.id in
  let ecfg =
    {
      (Explore.default_config ~n_machines ~targets ~buckets) with
      Explore.max_faults;
      budget;
      sample_seed = seed;
      kinds =
        (Explore.Plan.Kill
        :: ((match freeze with Some thaw -> [ Explore.Plan.Freeze { thaw } ] | None -> [])
           @
           (* --net: mix network faults into the search space — isolate a
              machine, degrade its links (5% loss + 2 ms), and the heal
              that lets partitioned plans recover. *)
           (if net then
              [
                Explore.Plan.Partition;
                Explore.Plan.Degrade { loss = 50; latency = 2 };
                Explore.Plan.Heal;
              ]
            else [])
           @
           (* --services: shoot the storage/control plane too. The plan's
              machine index doubles as the ckpt replica index
              (Plan.align_service); one beyond the deployed servers is a
              traced no-op, like shooting a spare. *)
           (if services then
              [
                Explore.Plan.Service_kill { service = Explore.Plan.S_ckpt 0 };
                Explore.Plan.Service_freeze { service = Explore.Plan.S_ckpt 0; thaw = 20 };
                Explore.Plan.Service_kill { service = Explore.Plan.S_sched };
                Explore.Plan.Service_freeze { service = Explore.Plan.S_sched; thaw = 20 };
              ]
            else [])
           @
           (* --topo fat-tree:K: draw component faults too. The plan's
              machine index doubles as the component index; one that lands
              out of range is a validated no-op, like shooting a spare. *)
           match topo with
           | Some (Simtopo.Topo.Fat_tree _) ->
               [
                 Explore.Plan.Switch_kill { tier = Fail_lang.Ast.Tier_edge };
                 Explore.Plan.Switch_kill { tier = Fail_lang.Ast.Tier_agg };
                 Explore.Plan.Pod_degrade { loss = 50; latency = 2 };
               ]
           | Some _ | None -> []));
      shrink_hangs;
    }
  in
  let t0 = Unix.gettimeofday () in
  let report, _stats =
    try Explore.run_spec ?jobs ~fork ?corpus ecfg ~spec
    with Invalid_argument msg ->
      (* [Explore.run_spec] prefixes its own name; re-badge for the CLI. *)
      let prefix = "Explore.run_spec: " in
      let plen = String.length prefix in
      let msg =
        if String.length msg > plen && String.sub msg 0 plen = prefix then
          String.sub msg plen (String.length msg - plen)
        else msg
      in
      prerr_endline ("failmpi_explore: " ^ msg);
      exit 1
  in
  print_string (Explore.render report);
  Printf.printf "[%.1f s wall clock]\n" (Unix.gettimeofday () -. t0);
  (match json_file with
  | Some path ->
      let oc = open_out path in
      output_string oc (Explore.to_json report);
      close_out oc;
      Printf.printf "report written to %s\n" path
  | None -> ());
  (match emit_dir with
  | Some dir ->
      if report.Explore.minimized <> [] then begin
        if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
        List.iteri
          (fun i (m : Explore.minimized) ->
            let path =
              Filename.concat dir
                (Printf.sprintf "witness-%02d-%s.fail" i
                   (Explore.verdict_name m.Explore.min_verdict))
            in
            let oc = open_out path in
            output_string oc m.Explore.scenario;
            close_out oc;
            Printf.printf
              "minimized witness written to %s (replay: failmpi_run --ranks %d --class %s \
               --scenario %s%s%s)\n"
              path ranks
              (Workload.Bt_model.klass_name klass)
              path
              (if fixed then " --fixed-dispatcher" else "")
              (if seeded then " --seeded-defect" else ""))
          report.Explore.minimized
      end
  | None -> ());
  if List.exists (fun (m : Explore.minimized) -> m.Explore.min_verdict = Explore.Buggy)
       report.Explore.minimized
  then 3
  else 0

let cmd =
  let protocol =
    Arg.(
      value & opt string "vcl"
      & info [ "protocol" ] ~docv:"NAME" ~doc:"Protocol backend under test.")
  in
  let replicas =
    Arg.(
      value & opt int 2
      & info [ "replicas" ] ~docv:"N" ~doc:"Replicas per rank (with --protocol replication).")
  in
  let ranks = Arg.(value & opt int 9 & info [ "ranks"; "n" ] ~docv:"N" ~doc:"MPI ranks.") in
  let klass =
    Arg.(value & opt string "A" & info [ "class"; "c" ] ~docv:"CLASS" ~doc:"NAS class: A, B or C.")
  in
  let max_faults =
    Arg.(
      value & opt int 2
      & info [ "max-faults" ] ~docv:"K"
          ~doc:"Plans carry up to $(docv) faults (grid to 2, sampled beyond).")
  in
  let budget =
    Arg.(value & opt int 200 & info [ "budget" ] ~docv:"N" ~doc:"Maximum number of plans to run.")
  in
  let jobs =
    Arg.(
      value
      & opt (some int) None
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Fan runs out over $(docv) domains (reports are bit-identical at any width). \
             Defaults to FAILMPI_JOBS, or the number of cores.")
  in
  let seed =
    Arg.(
      value & opt int 1
      & info [ "seed"; "s" ] ~docv:"SEED"
          ~doc:"Run seed, also seeding the >= 3-fault random sampler.")
  in
  let targets =
    Arg.(
      value
      & opt (some ints_conv) None
      & info [ "targets" ] ~docv:"M0,M1,.."
          ~doc:"Machines to aim at (default: the initial rank hosts).")
  in
  let buckets =
    Arg.(
      value
      & opt ints_conv [ 25; 10; 3 ]
      & info [ "buckets" ] ~docv:"S0,S1,.."
          ~doc:
            "Injection delays in seconds, relative to the previous fault (first fault: to \
             scenario start).")
  in
  let freeze =
    Arg.(
      value
      & opt (some int) None
      & info [ "freeze" ] ~docv:"THAW"
          ~doc:"Also draw freeze faults thawing after $(docv) seconds.")
  in
  let timeout =
    Arg.(value & opt float 600.0 & info [ "timeout" ] ~docv:"SECONDS" ~doc:"Per-run timeout.")
  in
  let fixed =
    Arg.(
      value & flag
      & info [ "fixed-dispatcher" ]
          ~doc:"Use the corrected dispatcher instead of the historical one.")
  in
  let seeded =
    Arg.(
      value & flag
      & info [ "seeded-defect" ]
          ~doc:
            "Enable the seeded vcl dispatcher race (acceptance demo: the search must \
             rediscover it and shrink the witness to two faults).")
  in
  let shrink_hangs =
    Arg.(
      value & flag
      & info [ "shrink-hangs" ] ~doc:"Also minimize non-terminating plans, not just buggy ones.")
  in
  let net =
    Arg.(
      value & flag
      & info [ "net" ]
          ~doc:
            "Also draw network faults (partition, degraded links, heal), searching the \
             combined process x network fault space.")
  in
  let services =
    Arg.(
      value & flag
      & info [ "services" ]
          ~doc:
            "Also draw infrastructure-service faults (checkpoint server and scheduler \
             kills and freeze/thaws) into the search space; the target index selects \
             the ckpt replica.")
  in
  let topo =
    Arg.(
      value
      & opt (some topology_conv) None
      & info [ "topo" ] ~docv:"SPEC"
          ~doc:
            "Fabric geometry ($(b,fat-tree:K), $(b,torus:XxY), $(b,flat)). With a \
             fat tree, also draw topology faults — edge/aggregation switch kills and \
             intra-pod degrades — into the search space (the target index selects the \
             component).")
  in
  let fork =
    Arg.(
      value
      & vflag true
          [
            ( true,
              info [ "fork" ]
                ~doc:
                  "Prefix-sharing fork scheduler (the default): plans sharing a fault prefix \
                   execute it once and fork at each divergence point, with a report \
                   byte-identical to replaying every plan." );
            ( false,
              info [ "no-fork" ]
                ~doc:"Replay every plan from $(i,t) = 0 instead of forking." );
          ])
  in
  let corpus =
    Arg.(
      value
      & opt (some string) None
      & info [ "corpus" ] ~docv:"DIR"
          ~doc:
            "Persistent coverage-guided corpus: skip plans $(docv) already recorded as tried, \
             spend the freed budget on mutants of plans that produced new coverage, and save \
             the updated corpus when the campaign ends.")
  in
  let json_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE" ~doc:"Write the full report as JSON to $(docv).")
  in
  let emit_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "emit" ] ~docv:"DIR" ~doc:"Write each minimized witness as a .fail file into $(docv).")
  in
  Cmd.v
    (Cmd.info "failmpi_explore"
       ~doc:"Search the fault space of a protocol backend and minimize what breaks it"
       ~man:
         [
           `S Manpage.s_exit_status;
           `P "0 on a clean search, 3 when a buggy-classified witness was found.";
         ])
    Term.(
      const run $ protocol $ replicas $ ranks $ klass $ max_faults $ budget $ jobs $ seed
      $ targets $ buckets $ freeze $ timeout $ fixed $ seeded $ shrink_hangs $ net
      $ services $ topo $ fork $ corpus $ json_file $ emit_dir)

let () = exit (Cmd.eval' cmd)
