(* failmpi_run: run one fault-injection experiment against the NAS BT
   model under any registered protocol backend.

   Examples:
     failmpi_run --ranks 49 --class B                 (no faults)
     failmpi_run --paper fig5-frequency --seed 3
     failmpi_run --scenario my.fail --param X=5 --trace
     failmpi_run --list-protocols
     failmpi_run --protocol replication --replicas 2 --ranks 4 \
       --scenario scenarios/replica_split.fail \
       --param START=20 --param GAP=0 --param FIRST=2 --param SECOND=6 *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let parse_param s =
  match String.index_opt s '=' with
  | Some i -> (
      let name = String.sub s 0 i in
      let value = String.sub s (i + 1) (String.length s - i - 1) in
      match int_of_string_opt value with
      | Some v -> Ok (name, v)
      | None -> Error (`Msg "parameter value must be an integer"))
  | None -> Error (`Msg "expected NAME=INT")

let param_conv = Arg.conv (parse_param, fun ppf (n, v) -> Format.fprintf ppf "%s=%d" n v)

(* "0,1,2:3,4" -> ([0;1;2], [3;4]) — the two sides of a --net-partition. *)
let parse_partition s =
  let hosts part =
    let fields = String.split_on_char ',' part in
    let fields = List.filter (fun f -> f <> "") fields in
    if fields = [] then Error (`Msg "empty host list")
    else
      List.fold_left
        (fun acc f ->
          match (acc, int_of_string_opt (String.trim f)) with
          | Ok hs, Some h when h >= 0 -> Ok (h :: hs)
          | Ok _, _ -> Error (`Msg (Printf.sprintf "bad host %S" f))
          | (Error _ as e), _ -> e)
        (Ok []) fields
      |> Result.map List.rev
  in
  match String.index_opt s ':' with
  | None -> Error (`Msg "expected HOSTS:HOSTS (e.g. 0,1:2,3)")
  | Some i -> (
      match
        ( hosts (String.sub s 0 i),
          hosts (String.sub s (i + 1) (String.length s - i - 1)) )
      with
      | Ok a, Ok b -> Ok (a, b)
      | (Error _ as e), _ | _, (Error _ as e) -> e)

let partition_conv =
  Arg.conv
    ( parse_partition,
      fun ppf (a, b) ->
        let side hs = String.concat "," (List.map string_of_int hs) in
        Format.fprintf ppf "%s:%s" (side a) (side b) )

let topology_conv =
  Arg.conv
    ( (fun s -> Result.map_error (fun m -> `Msg m) (Simtopo.Topo.spec_of_string s)),
      fun ppf spec -> Format.pp_print_string ppf (Simtopo.Topo.spec_to_string spec) )

let net_profile ~loss ~latency ~jitter ~partition ~heal ~net_seed =
  if
    loss = 0.0 && latency = 0.0 && jitter = 0.0 && partition = None && heal = None
    && net_seed = None
  then None
  else
    Some
      {
        Simnet.Net.Perturb.default_profile with
        Simnet.Net.Perturb.base = { Simnet.Net.Perturb.loss; latency; jitter };
        partition;
        heal_at = heal;
        seed = Option.map Int64.of_int net_seed;
      }

let list_protocols () =
  print_endline "registered protocol backends:";
  List.iter
    (fun (module B : Failmpi.Backend.S) ->
      Printf.printf "  %-12s %s%s\n" B.name B.doc
        (match B.aliases with
        | [] -> ""
        | aliases -> Printf.sprintf " (aliases: %s)" (String.concat ", " aliases)))
    (Failmpi.Backend.all ());
  0

let run scenario_file paper params ranks klass protocol replicas ckpt_servers
    ckpt_replicas spares seed timeout fixed seeded show_trace analyze trace_csv
    show_protocols net topology =
  if show_protocols then list_protocols ()
  else begin
    (match net with
    | Some profile -> (
        try Simnet.Net.Perturb.check_profile profile
        with Invalid_argument msg ->
          prerr_endline (Printf.sprintf "failmpi_run: %s" msg);
          exit 1)
    | None -> ());
    let klass =
      match Workload.Bt_model.klass_of_string klass with
      | Some k -> k
      | None ->
          prerr_endline "failmpi_run: class must be A, B or C";
          exit 1
    in
    if replicas < 1 then begin
      prerr_endline "failmpi_run: --replicas must be at least 1";
      exit 1
    end;
    if spares < 0 then begin
      prerr_endline "failmpi_run: --spares must be at least 0";
      exit 1
    end;
    if ckpt_replicas < 1 then begin
      prerr_endline "failmpi_run: --ckpt-replicas must be at least 1";
      exit 1
    end;
    if ckpt_servers < 1 then begin
      prerr_endline "failmpi_run: --ckpt-servers must be at least 1";
      exit 1
    end;
    if ckpt_replicas > ckpt_servers then begin
      prerr_endline "failmpi_run: --ckpt-replicas cannot exceed --ckpt-servers";
      exit 1
    end;
    let (module B : Failmpi.Backend.S) =
      match Failmpi.Backend.find protocol with
      | Some b -> b
      | None ->
          prerr_endline
            (Printf.sprintf "failmpi_run: unknown protocol %s (registered: %s)" protocol
               (String.concat ", " (Failmpi.Backend.names ())));
          exit 1
    in
    let protocol =
      match B.protocol ~replicas with
      | Mpivcl.Config.Ulfm _ -> Mpivcl.Config.Ulfm { spares }
      | p ->
          if spares > 0 then begin
            prerr_endline
              (Printf.sprintf
                 "failmpi_run: --spares only applies to the ulfm backend, not %s" B.name);
            exit 1
          end;
          p
    in
    (* Warm spares live on compute hosts beyond the ranks; grow the
       allocation if the paper-style default leaves no room for them. *)
    let n_machines = max (B.default_machines ~n_ranks:ranks ~replicas) (ranks + spares) in
    (* Same launch-time validation the deployments perform, but with a
       clean CLI error instead of an exception trace. *)
    (match topology with
    | Some spec -> (
        try ignore (Simtopo.Topo.for_cluster spec ~n_compute:n_machines)
        with Invalid_argument msg ->
          prerr_endline (Printf.sprintf "failmpi_run: %s" msg);
          exit 1)
    | None -> ());
    let scenario =
      match (scenario_file, paper) with
      | Some path, None -> Some (read_file path)
      | None, Some name -> (
          match List.assoc_opt name Fail_lang.Paper_scenarios.all with
          | Some src -> Some src
          | None ->
              prerr_endline
                (Printf.sprintf "failmpi_run: unknown paper scenario %s (available: %s)"
                   name
                   (String.concat ", " (List.map fst Fail_lang.Paper_scenarios.all)));
              exit 1)
      | Some _, Some _ ->
          prerr_endline "failmpi_run: give either --scenario or --paper, not both";
          exit 1
      | None, None -> None
    in
    let cfg =
      {
        (Mpivcl.Config.default ~n_ranks:ranks) with
        Mpivcl.Config.protocol;
        n_ckpt_servers = ckpt_servers;
        ckpt_replicas;
        dispatcher_buggy = not fixed;
        vcl_seeded_race = seeded;
        net;
        topology;
      }
    in
    let spec =
      {
        (Experiments.Harness.bt_spec ~cfg ~klass ~n_ranks:ranks ~n_machines ~scenario ())
        with
        Failmpi.Run.params;
        seed = Int64.of_int seed;
        timeout;
      }
    in
    let expected = Workload.Bt_model.reference_checksum klass ~n_ranks:ranks in
    let r = Failmpi.Run.execute ~expected_checksum:expected spec in
    Printf.printf "outcome:          %s%s\n"
      (Failmpi.Run.outcome_name r.Failmpi.Run.outcome)
      (match r.Failmpi.Run.outcome with
      | Failmpi.Run.Completed t -> Printf.sprintf " (%.1f s)" t
      | Failmpi.Run.Degraded { at; survivors } ->
          Printf.sprintf " (%.1f s, %d survivors)" at survivors
      | Failmpi.Run.Aborted reason -> Printf.sprintf " (%s)" reason
      | Failmpi.Run.Ckpt_lost -> " (no complete checkpoint image on any replica)"
      | Failmpi.Run.Non_terminating | Failmpi.Run.Buggy | Failmpi.Run.Net_hung -> "");
    Printf.printf "protocol:         %s\n" (Mpivcl.Config.protocol_name protocol);
    Printf.printf "injected faults:  %d\n" r.Failmpi.Run.injected_faults;
    (* Every backend reports the same uniform counter set (plus its
       extension counters): print them generically. *)
    List.iter
      (fun (name, v) -> Printf.printf "%-17s %d\n" (name ^ ":") v)
      (Failmpi.Backend.Metrics.counters r.Failmpi.Run.metrics);
    (match r.Failmpi.Run.checksum_ok with
    | Some true -> Printf.printf "checksums:        all %d ranks correct\n" ranks
    | Some false -> Printf.printf "checksums:        MISMATCH\n"
    | None -> ());
    if analyze then
      Format.printf "@.trace analysis:@.%a@." Experiments.Trace_analysis.pp
        (Experiments.Trace_analysis.summarize r.Failmpi.Run.trace);
    (match trace_csv with
    | Some path ->
        let oc = open_out path in
        output_string oc (Experiments.Trace_analysis.events_csv r.Failmpi.Run.trace);
        close_out oc;
        Printf.printf "trace written to %s\n" path
    | None -> ());
    if show_trace then Format.printf "%a@." Simkern.Trace.pp r.Failmpi.Run.trace;
    (* Exit codes: 0 ok, 2 checksum mismatch, 4 checkpoint storage lost —
       scripts can tell a lost storage plane from a wrong answer. *)
    match r.Failmpi.Run.outcome with
    | Failmpi.Run.Ckpt_lost -> 4
    | _ -> (
        match r.Failmpi.Run.checksum_ok with Some false -> 2 | Some true | None -> 0)
  end

let cmd =
  let scenario =
    Arg.(
      value
      & opt (some file) None
      & info [ "scenario" ] ~docv:"FILE" ~doc:"FAIL scenario to inject (default: none).")
  in
  let paper =
    Arg.(
      value
      & opt (some string) None
      & info [ "paper" ] ~docv:"NAME" ~doc:"Use a built-in paper scenario.")
  in
  let params =
    Arg.(
      value & opt_all param_conv []
      & info [ "param"; "p" ] ~docv:"NAME=INT" ~doc:"Scenario parameter (repeatable).")
  in
  let ranks =
    Arg.(value & opt int 49 & info [ "ranks"; "n" ] ~docv:"N" ~doc:"MPI ranks (square number).")
  in
  let klass =
    Arg.(value & opt string "B" & info [ "class"; "c" ] ~docv:"CLASS" ~doc:"NAS class: A, B or C.")
  in
  let protocol =
    Arg.(
      value & opt string "vcl"
      & info [ "protocol" ] ~docv:"NAME"
          ~doc:
            "Fault-tolerance protocol backend; see $(b,--list-protocols) for the \
             registered names.")
  in
  let replicas =
    Arg.(
      value & opt int 2
      & info [ "replicas" ] ~docv:"N"
          ~doc:"Replicas per logical rank (with --protocol replication).")
  in
  let ckpt_servers =
    Arg.(
      value & opt int 3
      & info [ "ckpt-servers" ] ~docv:"N"
          ~doc:
            "Checkpoint servers in the storage plane (rollback backends); rank r's \
             primary is server r mod N, its mirror the next server in the ring.")
  in
  let ckpt_replicas =
    Arg.(
      value & opt int 1
      & info [ "ckpt-replicas" ] ~docv:"N"
          ~doc:
            "Checkpoint storage replication factor (rollback backends). 1 keeps the \
             historical single-server plane; 2 mirrors every store to the rank's \
             mirror server before acking and restores fail over to it.")
  in
  let spares =
    Arg.(
      value & opt int 0
      & info [ "spares" ] ~docv:"N"
          ~doc:
            "Warm spare daemons promoted into the communicator on shrink (with \
             --protocol ulfm).")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed"; "s" ] ~docv:"SEED" ~doc:"Experiment seed.") in
  let timeout =
    Arg.(
      value & opt float 1500.0
      & info [ "timeout" ] ~docv:"SECONDS" ~doc:"Experiment timeout (paper: 1500 s).")
  in
  let fixed =
    Arg.(
      value & flag
      & info [ "fixed-dispatcher" ] ~doc:"Use the corrected dispatcher instead of the historical one.")
  in
  let seeded =
    Arg.(
      value & flag
      & info [ "seeded-defect" ]
          ~doc:
            "Enable the seeded vcl dispatcher race used by the failmpi_explore acceptance \
             demo (replaying its minimized witnesses).")
  in
  let show_trace = Arg.(value & flag & info [ "trace" ] ~doc:"Dump the execution trace.") in
  let analyze =
    Arg.(value & flag & info [ "analyze" ] ~doc:"Print a trace analysis (faults, recoveries, checkpoints).")
  in
  let trace_csv =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-csv" ] ~docv:"FILE" ~doc:"Write the raw trace as CSV to FILE.")
  in
  let show_protocols =
    Arg.(
      value & flag
      & info [ "list-protocols" ]
          ~doc:"List the registered protocol backends and exit.")
  in
  let net_loss =
    Arg.(
      value & opt float 0.0
      & info [ "net-loss" ] ~docv:"P"
          ~doc:
            "Per-message drop probability on every inter-host link, in [0,1]. The \
             reliable transport retransmits with exponential backoff, so moderate loss \
             costs time, not correctness.")
  in
  let net_latency =
    Arg.(
      value & opt float 0.0
      & info [ "net-latency" ] ~docv:"SECONDS"
          ~doc:"Extra one-way latency added to every inter-host link.")
  in
  let net_jitter =
    Arg.(
      value & opt float 0.0
      & info [ "net-jitter" ] ~docv:"SECONDS"
          ~doc:"Uniform extra delay in [0,SECONDS) per message.")
  in
  let net_partition =
    Arg.(
      value
      & opt (some partition_conv) None
      & info [ "net-partition" ] ~docv:"HOSTS:HOSTS"
          ~doc:
            "Open a bidirectional cut between two comma-separated host sets from \
             launch, e.g. $(b,0,1:2,3). Combine with $(b,--net-heal) to close it.")
  in
  let net_heal =
    Arg.(
      value
      & opt (some float) None
      & info [ "net-heal" ] ~docv:"SECONDS"
          ~doc:"Remove every network fault at this simulated time.")
  in
  let net_seed =
    Arg.(
      value
      & opt (some int) None
      & info [ "net-seed" ] ~docv:"SEED"
          ~doc:
            "Seed of the network perturbation RNG (defaults to a stream split from \
             the experiment seed; fix it to vary fault timing independently of the \
             workload).")
  in
  let net =
    Term.(
      const (fun loss latency jitter partition heal net_seed ->
          net_profile ~loss ~latency ~jitter ~partition ~heal ~net_seed)
      $ net_loss $ net_latency $ net_jitter $ net_partition $ net_heal $ net_seed)
  in
  let topology =
    Arg.(
      value
      & opt (some topology_conv) None
      & info [ "topology" ] ~docv:"SPEC"
          ~doc:
            "Fabric geometry behind the compute hosts: $(b,flat), $(b,fat-tree:K) \
             (K-ary fat tree, K even) or $(b,torus:XxY)/$(b,torus:XxYxZ). Scenario \
             topology destinations ($(b,switch agg[2]), $(b,pod 1), $(b,rack 3)) \
             resolve against it; unperturbed runs are byte-identical to the default \
             flat mesh.")
  in
  Cmd.v
    (Cmd.info "failmpi_run" ~doc:"Inject faults into a fault-tolerant MPI running NAS BT")
    Term.(
      const run $ scenario $ paper $ params $ ranks $ klass $ protocol $ replicas
      $ ckpt_servers $ ckpt_replicas $ spares $ seed $ timeout $ fixed $ seeded
      $ show_trace $ analyze $ trace_csv $ show_protocols $ net $ topology)

let () = exit (Cmd.eval' cmd)
