(* failmpi_experiments: regenerate every table and figure of the paper's
   evaluation section, plus the ablations and the planned-feature delay
   experiment.

   Examples:
     failmpi_experiments fig5
     failmpi_experiments fig7 --quick
     failmpi_experiments all --jobs 8 *)

open Cmdliner

let with_timer f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  Printf.printf "[%.1f s wall clock]\n\n%!" (Unix.gettimeofday () -. t0);
  r

(* When --csv DIR is given, every figure also lands as DIR/<name>.csv. *)
let csv_dir : string option ref = ref None

let emit_csv name aggs =
  match !csv_dir with
  | None -> ()
  | Some dir ->
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      let path = Filename.concat dir (name ^ ".csv") in
      let oc = open_out path in
      output_string oc (Experiments.Harness.aggs_csv aggs);
      close_out oc;
      Printf.printf "(data written to %s)\n" path

let table1 () =
  print_endline "Table (2.1): comparison of distributed fault-injection tools";
  print_newline ();
  print_string (Fail_lang.Tool_comparison.render ());
  print_newline ()

let fig5 ~quick () =
  let config =
    if quick then Experiments.Fig_frequency.quick_config
    else Experiments.Fig_frequency.default_config
  in
  let aggs = Experiments.Fig_frequency.run ~config () in
  emit_csv "fig5" aggs;
  print_string (Experiments.Fig_frequency.render aggs);
  print_newline ();
  print_endline Experiments.Fig_frequency.paper_note;
  print_newline ()

let fig6 ~quick () =
  let config =
    if quick then Experiments.Fig_scale.quick_config else Experiments.Fig_scale.default_config
  in
  let aggs = Experiments.Fig_scale.run ~config () in
  emit_csv "fig6" aggs;
  print_string (Experiments.Fig_scale.render aggs);
  print_newline ();
  print_endline Experiments.Fig_scale.paper_note;
  print_newline ()

let fig7 ~quick () =
  let config =
    if quick then Experiments.Fig_simultaneous.quick_config
    else Experiments.Fig_simultaneous.default_config
  in
  let aggs = Experiments.Fig_simultaneous.run ~config () in
  emit_csv "fig7" aggs;
  print_string (Experiments.Fig_simultaneous.render aggs);
  print_newline ();
  print_endline Experiments.Fig_simultaneous.paper_note;
  print_newline ()

let fig9 ~quick () =
  let config =
    if quick then Experiments.Fig_synchronized.quick_config
    else Experiments.Fig_synchronized.default_config
  in
  let aggs = Experiments.Fig_synchronized.run ~config () in
  emit_csv "fig9" aggs;
  print_string (Experiments.Fig_synchronized.render aggs);
  print_newline ();
  print_endline Experiments.Fig_synchronized.paper_note;
  print_newline ()

let fig11 ~quick () =
  let config =
    if quick then Experiments.Fig_state_sync.quick_config
    else Experiments.Fig_state_sync.default_config
  in
  let aggs = Experiments.Fig_state_sync.run ~config () in
  emit_csv "fig11" aggs;
  print_string (Experiments.Fig_state_sync.render aggs);
  print_newline ();
  print_endline Experiments.Fig_state_sync.paper_note;
  print_newline ()

let ablations ~quick () =
  let reps = if quick then 2 else 6 in
  let n_ranks = if quick then 25 else 49 in
  print_string
    (Experiments.Ablations.render_dispatcher_fix
       (Experiments.Ablations.dispatcher_fix ~reps ~n_ranks ()));
  print_newline ();
  print_string
    (Experiments.Ablations.render_protocol_overhead
       (Experiments.Ablations.protocol_overhead ~n_ranks ()));
  print_newline ();
  print_string
    (Experiments.Ablations.render_wave_interval
       (Experiments.Ablations.wave_interval ~reps:(if quick then 2 else 4) ~n_ranks ()));
  print_newline ();
  print_string
    (Experiments.Ablations.render_protocol_comparison
       (Experiments.Ablations.protocol_comparison ~reps:(if quick then 2 else 4) ~n_ranks ()));
  print_newline ()

let families ~quick () =
  let config =
    if quick then Experiments.Protocol_families.quick_config
    else Experiments.Protocol_families.default_config
  in
  let rows = Experiments.Protocol_families.run ~config () in
  emit_csv "families" (Experiments.Protocol_families.aggs rows);
  print_string (Experiments.Protocol_families.render rows);
  print_newline ();
  print_endline Experiments.Protocol_families.paper_note;
  print_newline ()

let netfault ~quick () =
  let config =
    if quick then Experiments.Fig_netfault.quick_config
    else Experiments.Fig_netfault.default_config
  in
  let rows = Experiments.Fig_netfault.run ~config () in
  emit_csv "netfault" (Experiments.Fig_netfault.aggs rows);
  print_string (Experiments.Fig_netfault.render rows);
  print_newline ();
  print_endline Experiments.Fig_netfault.paper_note;
  print_newline ()

let topo ~quick () =
  let config =
    if quick then Experiments.Fig_topo.quick_config
    else Experiments.Fig_topo.default_config
  in
  let rows = Experiments.Fig_topo.run ~config () in
  emit_csv "topo" (Experiments.Fig_topo.aggs rows);
  print_string (Experiments.Fig_topo.render rows);
  print_newline ();
  print_endline Experiments.Fig_topo.paper_note;
  print_newline ()

let shrink ~quick () =
  let config =
    if quick then Experiments.Fig_shrink.quick_config
    else Experiments.Fig_shrink.default_config
  in
  let rows = Experiments.Fig_shrink.run ~config () in
  emit_csv "shrink" (Experiments.Fig_shrink.aggs rows);
  print_string (Experiments.Fig_shrink.render rows);
  print_newline ();
  print_endline Experiments.Fig_shrink.paper_note;
  print_newline ()

let scale ~quick () =
  let config =
    if quick then Experiments.Fig_scale.big_quick_config
    else Experiments.Fig_scale.big_default_config
  in
  let aggs = Experiments.Fig_scale.run_big ~config () in
  emit_csv "scale" aggs;
  print_string (Experiments.Fig_scale.render_big aggs);
  print_newline ();
  print_endline Experiments.Fig_scale.big_paper_note;
  print_newline ()

let ckptfault ~quick () =
  let config =
    if quick then Experiments.Fig_ckptfault.quick_config
    else Experiments.Fig_ckptfault.default_config
  in
  let rows = Experiments.Fig_ckptfault.run ~config () in
  emit_csv "ckptfault" (Experiments.Fig_ckptfault.aggs rows);
  print_string (Experiments.Fig_ckptfault.render rows);
  print_newline ();
  print_endline Experiments.Fig_ckptfault.paper_note;
  print_newline ()

let delay ~quick () =
  let rows =
    Experiments.Delay_experiment.run
      ?delays:(if quick then Some [ 0; 10; 20 ] else None)
      ~reps:(if quick then 1 else 3)
      ()
  in
  print_string (Experiments.Delay_experiment.render rows);
  print_newline ()

let experiments =
  [
    ("table1", fun ~quick () -> ignore quick; table1 ());
    ("fig5", fig5);
    ("fig6", fig6);
    ("fig7", fig7);
    ("fig9", fig9);
    ("fig11", fig11);
    ("ablations", ablations);
    ("families", families);
    ("netfault", netfault);
    ("topo", topo);
    ("shrink", shrink);
    ("scale", scale);
    ("ckptfault", ckptfault);
    ("delay", delay);
  ]

let run exp_name quick csv jobs =
  csv_dir := csv;
  (match jobs with
  | Some n when n <= 0 ->
      prerr_endline
        (Printf.sprintf "failmpi_experiments: --jobs must be >= 1 (got %d)" n);
      exit 1
  | Some n -> Par.set_default_jobs n
  | None -> ());
  let todo =
    if exp_name = "all" then List.map snd experiments
    else
      match List.assoc_opt exp_name experiments with
      | Some f -> [ f ]
      | None ->
          prerr_endline
            (Printf.sprintf "unknown experiment %s (available: all, %s)" exp_name
               (String.concat ", " (List.map fst experiments)));
          exit 1
  in
  List.iter (fun f -> with_timer (fun () -> f ~quick ())) todo;
  0

let cmd =
  let exp_name =
    Arg.(
      value & pos 0 string "all"
      & info [] ~docv:"EXPERIMENT"
          ~doc:
            "One of: all, table1, fig5, fig6, fig7, fig9, fig11, ablations, families, \
             netfault, topo, shrink, scale, ckptfault, delay.")
  in
  let quick =
    Arg.(value & flag & info [ "quick" ] ~doc:"Reduced repetitions and sizes (smoke mode).")
  in
  let csv =
    Arg.(
      value
      & opt (some string) None
      & info [ "csv" ] ~docv:"DIR" ~doc:"Also write each figure's aggregates as CSV into DIR.")
  in
  let jobs =
    Arg.(
      value
      & opt (some int) None
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Run campaign repetitions on $(docv) domains in parallel (results are \
             bit-identical to a sequential run). Defaults to the FAILMPI_JOBS environment \
             variable, or the number of cores.")
  in
  Cmd.v
    (Cmd.info "failmpi_experiments"
       ~doc:"Regenerate the tables and figures of the FAIL-MPI paper")
    Term.(const run $ exp_name $ quick $ csv $ jobs)

let () = exit (Cmd.eval' cmd)
