(* Unit and property tests for the discrete-event simulation kernel. *)

open Simkern

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool
let check_float msg = check (Alcotest.float 1e-9) msg

(* ------------------------------------------------------------------ *)
(* Rng *)

let test_rng_deterministic () =
  let a = Rng.create 42L and b = Rng.create 42L in
  for _ = 1 to 100 do
    check_int "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done

let test_rng_bounds () =
  let rng = Rng.create 7L in
  for _ = 1 to 1000 do
    let v = Rng.int rng 10 in
    check_bool "in range" true (v >= 0 && v < 10)
  done

let test_rng_int_in_range () =
  let rng = Rng.create 9L in
  for _ = 1 to 1000 do
    let v = Rng.int_in_range rng ~lo:5 ~hi:8 in
    check_bool "in range" true (v >= 5 && v <= 8)
  done

let test_rng_split_independent () =
  let a = Rng.create 42L in
  let b = Rng.split a in
  let xs = List.init 50 (fun _ -> Rng.int a 1_000_000) in
  let ys = List.init 50 (fun _ -> Rng.int b 1_000_000) in
  check_bool "streams differ" false (xs = ys)

let test_rng_invalid () =
  let rng = Rng.create 1L in
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0));
  Alcotest.check_raises "empty choose" (Invalid_argument "Rng.choose: empty list") (fun () ->
      ignore (Rng.choose rng []))

let test_rng_float_bounds () =
  let rng = Rng.create 3L in
  for _ = 1 to 1000 do
    let v = Rng.float rng 2.5 in
    check_bool "in [0, 2.5)" true (v >= 0.0 && v < 2.5)
  done

let test_rng_shuffle_permutation () =
  let rng = Rng.create 11L in
  let a = Array.init 100 Fun.id in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  check_bool "still a permutation" true (sorted = Array.init 100 Fun.id)

(* ------------------------------------------------------------------ *)
(* Heap *)

let test_heap_ordering () =
  let h = Heap.create ~compare:Int.compare in
  List.iter (Heap.push h) [ 5; 3; 8; 1; 9; 2; 7 ];
  let rec drain acc = match Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc) in
  check (Alcotest.list Alcotest.int) "sorted" [ 1; 2; 3; 5; 7; 8; 9 ] (drain [])

let test_heap_empty () =
  let h = Heap.create ~compare:Int.compare in
  check_bool "empty" true (Heap.is_empty h);
  check_bool "peek none" true (Heap.peek h = None);
  check_bool "pop none" true (Heap.pop h = None)

let test_heap_duplicates () =
  let h = Heap.create ~compare:Int.compare in
  List.iter (Heap.push h) [ 4; 4; 4; 1; 1 ];
  check_int "length" 5 (Heap.length h);
  check_bool "min" true (Heap.pop h = Some 1)

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap drains sorted" ~count:200
    QCheck.(list int)
    (fun xs ->
      let h = Heap.create ~compare:Int.compare in
      List.iter (Heap.push h) xs;
      let rec drain acc =
        match Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc)
      in
      drain [] = List.sort Int.compare xs)

(* ------------------------------------------------------------------ *)
(* Engine *)

let test_engine_time_order () =
  let eng = Engine.create () in
  let log = ref [] in
  Engine.schedule eng ~delay:2.0 (fun () -> log := "b" :: !log) |> ignore;
  Engine.schedule eng ~delay:1.0 (fun () -> log := "a" :: !log) |> ignore;
  Engine.schedule eng ~delay:3.0 (fun () -> log := "c" :: !log) |> ignore;
  check_bool "quiescent" true (Engine.run eng = `Quiescent);
  check (Alcotest.list Alcotest.string) "order" [ "a"; "b"; "c" ] (List.rev !log);
  check_float "clock at last event" 3.0 (Engine.now eng)

let test_engine_same_instant_fifo () =
  let eng = Engine.create () in
  let log = ref [] in
  for i = 1 to 10 do
    Engine.schedule eng (fun () -> log := i :: !log) |> ignore
  done;
  ignore (Engine.run eng);
  check (Alcotest.list Alcotest.int) "fifo" (List.init 10 (fun i -> i + 1)) (List.rev !log)

let test_engine_deadline () =
  let eng = Engine.create () in
  let fired = ref false in
  Engine.schedule eng ~delay:10.0 (fun () -> fired := true) |> ignore;
  check_bool "deadline" true (Engine.run ~until:5.0 eng = `Deadline);
  check_bool "not fired" false !fired;
  check_float "clock at deadline" 5.0 (Engine.now eng)

let test_engine_cancel () =
  let eng = Engine.create () in
  let fired = ref false in
  let h = Engine.schedule eng ~delay:1.0 (fun () -> fired := true) in
  Engine.cancel h;
  ignore (Engine.run eng);
  check_bool "cancelled" false !fired

let test_engine_halt () =
  let eng = Engine.create () in
  Engine.schedule eng ~delay:1.0 (fun () -> Engine.halt eng) |> ignore;
  Engine.schedule eng ~delay:2.0 (fun () -> Alcotest.fail "should not run") |> ignore;
  check_bool "halted" true (Engine.run eng = `Halted)

let test_engine_nested_schedule () =
  let eng = Engine.create () in
  let log = ref [] in
  Engine.schedule eng ~delay:1.0 (fun () ->
      log := `Outer :: !log;
      Engine.schedule eng ~delay:1.0 (fun () -> log := `Inner :: !log) |> ignore)
  |> ignore;
  ignore (Engine.run eng);
  check_int "two events" 2 (List.length !log);
  check_float "final time" 2.0 (Engine.now eng)

let test_engine_past_schedule_rejected () =
  let eng = Engine.create () in
  Engine.schedule eng ~delay:5.0 (fun () ->
      try
        ignore (Engine.schedule_at eng ~time:1.0 (fun () -> ()));
        Alcotest.fail "expected Invalid_argument"
      with Invalid_argument _ -> ())
  |> ignore;
  ignore (Engine.run eng)

let test_engine_trace () =
  let eng = Engine.create () in
  Engine.schedule eng ~delay:1.5 (fun () -> Engine.record eng ~source:"t" ~event:"tick" "x")
  |> ignore;
  ignore (Engine.run eng);
  match Trace.last (Engine.trace eng) ~event:"tick" with
  | Some e ->
      check_float "time recorded" 1.5 e.Trace.time;
      check Alcotest.string "detail" "x" e.Trace.detail
  | None -> Alcotest.fail "no trace entry"

(* The explorer's pause/fork primitives: run up to (not through) a
   chosen event, step over it, re-aim it in time without losing its
   tie-breaking slot, and rewind the engine to a captured state. *)

let test_engine_stop_before () =
  let eng = Engine.create () in
  let log = ref [] in
  Engine.schedule eng ~delay:1.0 (fun () -> log := 1 :: !log) |> ignore;
  let bp = Engine.schedule eng ~delay:2.0 (fun () -> log := 2 :: !log) in
  Engine.schedule eng ~delay:3.0 (fun () -> log := 3 :: !log) |> ignore;
  check_bool "paused at the breakpoint" true (Engine.run ~stop_before:bp eng = `Breakpoint);
  check (Alcotest.list Alcotest.int) "only the prefix ran" [ 1 ] (List.rev !log);
  check_bool "breakpoint still queued" true (Engine.pending eng = 2);
  (* Step over it, then drain. *)
  check_bool "stepped" true (Engine.run_one eng);
  check_float "clock on the stepped event" 2.0 (Engine.now eng);
  check_bool "rest drains" true (Engine.run eng = `Quiescent);
  check (Alcotest.list Alcotest.int) "all ran once" [ 1; 2; 3 ] (List.rev !log)

let test_engine_run_one () =
  let eng = Engine.create () in
  let log = ref [] in
  Engine.schedule eng ~delay:1.0 (fun () -> log := `A :: !log) |> ignore;
  Engine.schedule eng ~delay:2.0 (fun () -> log := `B :: !log) |> ignore;
  check_bool "first" true (Engine.run_one eng);
  check_float "clock advanced" 1.0 (Engine.now eng);
  check_int "one event" 1 (List.length !log);
  check_bool "second" true (Engine.run_one eng);
  check_bool "empty queue" false (Engine.run_one eng)

let test_engine_retime_keeps_slot () =
  let eng = Engine.create () in
  let log = ref [] in
  (* c is scheduled first (lowest sequence) but aimed at t = 3; moving
     it to t = 10 must keep its sequence, so it still beats the two
     events natively scheduled there. *)
  let c = Engine.schedule eng ~delay:3.0 (fun () -> log := "c" :: !log) in
  Engine.schedule eng ~delay:10.0 (fun () -> log := "a" :: !log) |> ignore;
  Engine.schedule eng ~delay:10.0 (fun () -> log := "b" :: !log) |> ignore;
  let c' = Engine.retime c ~time:10.0 in
  check_bool "new handle" true (c' != c);
  check_int "no live event added" 3 (Engine.pending eng);
  ignore (Engine.run eng);
  check (Alcotest.list Alcotest.string) "sequence slot kept" [ "c"; "a"; "b" ] (List.rev !log);
  Alcotest.check_raises "stale handle refused"
    (Invalid_argument "Engine.retime: event is no longer pending") (fun () ->
      ignore (Engine.retime c' ~time:20.0))

let test_engine_snapshot_restore () =
  let eng = Engine.create ~seed:5L () in
  let log = ref [] in
  Engine.schedule eng ~delay:1.0 (fun () -> log := 1 :: !log) |> ignore;
  Engine.schedule eng ~delay:2.0 (fun () ->
      log := 2 :: !log;
      Engine.schedule eng ~delay:2.0 (fun () -> log := 4 :: !log) |> ignore)
  |> ignore;
  Engine.schedule eng ~delay:3.0 (fun () -> log := 3 :: !log) |> ignore;
  ignore (Engine.run ~until:1.5 eng);
  let snap = Engine.snapshot eng in
  check_int "captured the queue" 2 (Engine.snapshot_events snap);
  check_bool "sized" true (Engine.snapshot_words snap > 0);
  let draw () = Simkern.Rng.int (Engine.rng eng) 1_000_000 in
  let first_draw = draw () in
  ignore (Engine.run eng);
  let first_pass = List.rev !log in
  check (Alcotest.list Alcotest.int) "first pass" [ 1; 2; 3; 4 ] first_pass;
  (* Rewind and replay: clock, queue and RNG are all back. *)
  Engine.restore eng snap;
  check_float "clock rewound" 1.5 (Engine.now eng);
  check_int "queue rebuilt" 2 (Engine.pending eng);
  check_int "rng rewound" first_draw (draw ());
  log := [];
  ignore (Engine.run eng);
  check (Alcotest.list Alcotest.int) "replayed suffix" [ 2; 3; 4 ] (List.rev !log);
  (* Not consumed: a second restore replays again. *)
  Engine.restore eng snap;
  ignore (draw ());
  log := [];
  ignore (Engine.run eng);
  check (Alcotest.list Alcotest.int) "replayed twice" [ 2; 3; 4 ] (List.rev !log)

(* ------------------------------------------------------------------ *)
(* Proc *)

let run_sim f =
  let eng = Engine.create () in
  f eng;
  ignore (Engine.run eng);
  eng

let test_proc_runs () =
  let hit = ref false in
  ignore (run_sim (fun eng -> ignore (Proc.spawn eng (fun () -> hit := true))));
  check_bool "body ran" true !hit

let test_proc_sleep_advances_time () =
  let t = ref 0.0 in
  let eng =
    run_sim (fun eng ->
        ignore
          (Proc.spawn eng (fun () ->
               Proc.sleep 3.0;
               t := Engine.now eng)))
  in
  check_float "woke at 3" 3.0 !t;
  check_float "engine at 3" 3.0 (Engine.now eng)

let test_proc_exit_normal () =
  let reason = ref None in
  ignore
    (run_sim (fun eng ->
         let p = Proc.spawn eng (fun () -> Proc.sleep 1.0) in
         Proc.on_exit p (fun r -> reason := Some r)));
  check_bool "normal exit" true (!reason = Some Proc.Exit_normal)

let test_proc_exit_crashed () =
  let reason = ref None in
  ignore
    (run_sim (fun eng ->
         let p = Proc.spawn eng (fun () -> failwith "boom") in
         Proc.on_exit p (fun r -> reason := Some r)));
  match !reason with
  | Some (Proc.Exit_crashed (Failure m)) -> check Alcotest.string "msg" "boom" m
  | _ -> Alcotest.fail "expected crash"

let test_proc_kill_waiting () =
  let reason = ref None in
  let cleanup = ref false in
  ignore
    (run_sim (fun eng ->
         let victim =
           Proc.spawn eng ~name:"victim" (fun () ->
               Fun.protect
                 ~finally:(fun () -> cleanup := true)
                 (fun () -> Proc.sleep 100.0))
         in
         Proc.on_exit victim (fun r -> reason := Some r);
         ignore
           (Proc.spawn eng ~name:"killer" (fun () ->
                Proc.sleep 1.0;
                Proc.kill victim))));
  check_bool "killed" true (!reason = Some Proc.Exit_killed);
  check_bool "finalizer ran" true !cleanup

let test_proc_kill_embryo () =
  let reason = ref None in
  let eng = Engine.create () in
  let p = Proc.spawn eng (fun () -> Alcotest.fail "must not start") in
  Proc.on_exit p (fun r -> reason := Some r);
  Proc.kill p;
  ignore (Engine.run eng);
  check_bool "killed before start" true (!reason = Some Proc.Exit_killed)

let test_proc_kill_idempotent () =
  let count = ref 0 in
  ignore
    (run_sim (fun eng ->
         let victim = Proc.spawn eng (fun () -> Proc.sleep 50.0) in
         Proc.on_exit victim (fun _ -> incr count);
         ignore
           (Proc.spawn eng (fun () ->
                Proc.sleep 1.0;
                Proc.kill victim;
                Proc.kill victim))));
  check_int "one exit" 1 !count

let test_proc_freeze_delays () =
  (* A frozen process does not advance; unfreezing delivers buffered
     wake-ups. *)
  let woke_at = ref 0.0 in
  ignore
    (run_sim (fun eng ->
         let sleeper =
           Proc.spawn eng (fun () ->
               Proc.sleep 2.0;
               woke_at := Engine.now eng)
         in
         ignore
           (Proc.spawn eng (fun () ->
                Proc.sleep 1.0;
                Proc.freeze sleeper;
                Proc.sleep 9.0;
                Proc.unfreeze sleeper))));
  check_float "woke only after unfreeze" 10.0 !woke_at

let test_proc_freeze_mailbox () =
  let got = ref [] in
  ignore
    (run_sim (fun eng ->
         let mb = Mailbox.create () in
         let consumer =
           Proc.spawn eng (fun () ->
               for _ = 1 to 3 do
                 let v = Mailbox.recv mb in
                 got := (v, Engine.now eng) :: !got
               done)
         in
         ignore
           (Proc.spawn eng (fun () ->
                Proc.sleep 1.0;
                Mailbox.send mb 1;
                Proc.sleep 1.0;
                Proc.freeze consumer;
                Mailbox.send mb 2;
                Mailbox.send mb 3;
                Proc.sleep 5.0;
                Proc.unfreeze consumer))));
  let got = List.rev !got in
  check_int "three received" 3 (List.length got);
  (match got with
  | (v1, t1) :: (v2, t2) :: (v3, t3) :: _ ->
      check_int "v1" 1 v1;
      check_float "t1" 1.0 t1;
      check_int "v2" 2 v2;
      check_float "t2 after unfreeze" 7.0 t2;
      check_int "v3" 3 v3;
      check_float "t3 after unfreeze" 7.0 t3
  | _ -> Alcotest.fail "missing messages")

let test_proc_join () =
  let joined = ref None in
  ignore
    (run_sim (fun eng ->
         let worker = Proc.spawn eng (fun () -> Proc.sleep 4.0) in
         ignore
           (Proc.spawn eng (fun () ->
                let r = Proc.join worker in
                joined := Some (r, Engine.now eng)))));
  match !joined with
  | Some (Proc.Exit_normal, t) -> check_float "joined at 4" 4.0 t
  | _ -> Alcotest.fail "join failed"

let test_proc_join_already_dead () =
  let ok = ref false in
  ignore
    (run_sim (fun eng ->
         let worker = Proc.spawn eng (fun () -> ()) in
         ignore
           (Proc.spawn eng (fun () ->
                Proc.sleep 5.0;
                ok := Proc.join worker = Proc.Exit_normal))));
  check_bool "joined dead process" true !ok

let test_proc_self () =
  let name = ref "" in
  ignore
    (run_sim (fun eng ->
         ignore (Proc.spawn eng ~name:"alpha" (fun () -> name := Proc.name (Proc.self ())))));
  check Alcotest.string "self name" "alpha" !name

let test_proc_kill_self () =
  let reason = ref None in
  ignore
    (run_sim (fun eng ->
         let p =
           Proc.spawn eng (fun () ->
               Proc.kill (Proc.self ());
               (* Death takes effect at the next suspension point. *)
               Proc.sleep 1.0;
               Alcotest.fail "unreachable")
         in
         Proc.on_exit p (fun r -> reason := Some r)));
  check_bool "self-kill" true (!reason = Some Proc.Exit_killed)

let test_proc_freeze_running_takes_effect_at_suspension () =
  (* Freezing a process that is between suspensions stops it at its next
     suspension point (SIGSTOP semantics at sim granularity). *)
  let steps = ref [] in
  ignore
    (run_sim (fun eng ->
         let p =
           Proc.spawn eng (fun () ->
               for i = 1 to 3 do
                 Proc.sleep 1.0;
                 steps := (i, Engine.now eng) :: !steps
               done)
         in
         ignore
           (Proc.spawn eng (fun () ->
                Proc.sleep 1.5;
                Proc.freeze p;
                Proc.sleep 10.0;
                Proc.unfreeze p))));
  match List.rev !steps with
  | [ (1, t1); (2, t2); (3, t3) ] ->
      check_float "step 1 before freeze" 1.0 t1;
      check_bool "step 2 held until unfreeze" true (t2 >= 11.5);
      check_bool "step 3 after" true (t3 > t2)
  | _ -> Alcotest.fail "unexpected steps"

let test_proc_double_freeze_single_unfreeze () =
  (* freeze is idempotent: one unfreeze resumes. *)
  let woke = ref 0.0 in
  ignore
    (run_sim (fun eng ->
         let p =
           Proc.spawn eng (fun () ->
               Proc.sleep 1.0;
               woke := Engine.now eng)
         in
         Proc.freeze p;
         Proc.freeze p;
         Engine.schedule eng ~delay:5.0 (fun () -> Proc.unfreeze p) |> ignore));
  (* Frozen before its first step: the body starts at the unfreeze (5 s)
     and sleeps 1 s. *)
  check_float "resumed after single unfreeze" 6.0 !woke

let test_engine_pending () =
  let eng = Engine.create () in
  let h = Engine.schedule eng ~delay:1.0 (fun () -> ()) in
  Engine.schedule eng ~delay:2.0 (fun () -> ()) |> ignore;
  check_int "two pending" 2 (Engine.pending eng);
  Engine.cancel h;
  check_int "one after cancel" 1 (Engine.pending eng);
  ignore (Engine.run eng);
  check_int "none after run" 0 (Engine.pending eng)

let test_trace_queries () =
  let t = Trace.create () in
  Trace.record t ~time:1.0 ~source:"a" ~event:"x" "1";
  Trace.record t ~time:2.0 ~source:"b" ~event:"y" "2";
  Trace.record t ~time:3.0 ~source:"a" ~event:"x" "3";
  check_int "length" 3 (Trace.length t);
  check_int "count x" 2 (Trace.count t ~event:"x");
  check_bool "last x" true
    (match Trace.last t ~event:"x" with Some e -> e.Trace.detail = "3" | None -> false);
  check_bool "last_time" true (Trace.last_time t ~event:"y" = Some 2.0);
  check_int "find_all" 2 (List.length (Trace.find_all t ~event:"x"));
  Trace.clear t;
  check_int "cleared" 0 (Trace.length t)

let test_heap_filter_in_place () =
  let h = Heap.create ~compare:Int.compare in
  List.iter (Heap.push h) (List.init 20 (fun i -> 20 - i));
  Heap.filter_in_place h ~keep:(fun x -> x mod 2 = 0);
  check_int "half survive" 10 (Heap.length h);
  let rec drain acc =
    match Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc)
  in
  check (Alcotest.list Alcotest.int) "pop order intact"
    [ 2; 4; 6; 8; 10; 12; 14; 16; 18; 20 ]
    (drain []);
  List.iter (Heap.push h) [ 3; 1; 2 ];
  Heap.filter_in_place h ~keep:(fun _ -> false);
  check_bool "drop all" true (Heap.is_empty h)

let test_engine_tombstone_compaction () =
  let eng = Engine.create () in
  let executed = ref 0 in
  let handles =
    List.init 100 (fun i ->
        Engine.schedule eng ~delay:(float_of_int (i + 1)) (fun () -> incr executed))
  in
  check_int "queue holds all" 100 (Engine.queue_size eng);
  (* Cancel 60: once tombstones outnumber live events the engine compacts
     the queue instead of carrying the dead weight to the pop loop. *)
  List.iteri (fun i h -> if i < 60 then Engine.cancel h) handles;
  check_int "pending is live count" 40 (Engine.pending eng);
  check_bool "compaction shrank the queue" true (Engine.queue_size eng < 100);
  ignore (Engine.run eng);
  check_int "only live events ran" 40 !executed;
  check_int "drained" 0 (Engine.pending eng)

(* Event regions: sharding is structural only — placement must never
   change execution order, and cross-region merge must stay exactly the
   single-queue schedule order. *)

(* Full-stack fingerprint (fibers, mailbox, RNG-driven sleeps); also
   used by the same-seed determinism property below. Workers land in
   distinct regions when [regions > 1]. *)
let sim_fingerprint ?(regions = 1) seed =
  let eng = Engine.create ~seed ~regions () in
  let mb = Mailbox.create () in
  let log = Buffer.create 64 in
  let rng = Rng.split (Engine.rng eng) in
  for i = 1 to 5 do
    ignore
      (Proc.spawn eng ~region:(i mod regions) ~name:(Printf.sprintf "w%d" i) (fun () ->
           Proc.sleep (Rng.float rng 10.0);
           Mailbox.send mb i))
  done;
  ignore
    (Proc.spawn eng ~name:"collector" (fun () ->
         for _ = 1 to 5 do
           let v = Mailbox.recv mb in
           Buffer.add_string log (Printf.sprintf "%d@%.6f;" v (Engine.now eng))
         done));
  ignore (Engine.run eng);
  Buffer.contents log

let test_engine_regions_same_instant_order () =
  (* Events scheduled for the same instant from different regions run in
     global schedule (sequence) order, not grouped by region. *)
  let eng = Engine.create ~regions:4 () in
  check_int "four regions" 4 (Engine.regions eng);
  let log = ref [] in
  for i = 1 to 12 do
    Engine.schedule ~region:(i mod 4) eng (fun () -> log := i :: !log) |> ignore
  done;
  ignore (Engine.run eng);
  check (Alcotest.list Alcotest.int) "global fifo across regions"
    (List.init 12 (fun i -> i + 1))
    (List.rev !log)

let test_engine_regions_interleaved_times () =
  (* Timestamps interleaved across regions pop in time order with the
     schedule order breaking ties — same as one flat queue. *)
  let eng = Engine.create ~regions:3 () in
  let log = ref [] in
  List.iteri
    (fun i (region, delay) ->
      Engine.schedule ~region eng ~delay (fun () -> log := i :: !log) |> ignore)
    [ (0, 3.0); (1, 1.0); (2, 2.0); (0, 1.0); (2, 1.0); (1, 3.0) ];
  ignore (Engine.run eng);
  check (Alcotest.list Alcotest.int) "time order, then schedule order"
    [ 1; 3; 4; 2; 0; 5 ] (List.rev !log)

let test_engine_regions_inherited () =
  (* A nested schedule without an explicit region inherits the region of
     the event that scheduled it. *)
  let eng = Engine.create ~regions:4 () in
  let seen = ref (-1) in
  Engine.schedule ~region:2 eng (fun () ->
      check_int "ambient region" 2 (Engine.current_region eng);
      Engine.schedule eng ~delay:1.0 (fun () -> seen := Engine.current_region eng)
      |> ignore)
  |> ignore;
  ignore (Engine.run eng);
  check_int "inherited region" 2 !seen

let test_engine_regions_fingerprint_identical () =
  (* The full fiber/mailbox fingerprint is byte-identical whatever the
     region count: sharding never leaks into scheduling decisions. *)
  let fp regions = sim_fingerprint ~regions 99L in
  let reference = fp 1 in
  List.iter
    (fun regions ->
      check Alcotest.string
        (Printf.sprintf "regions=%d identical" regions)
        reference (fp regions))
    [ 2; 7; 128 ]

let test_engine_regions_compaction () =
  (* Tombstone compaction with populated shards: cancelled events are
     reclaimed and the cross-shard merge stays correct afterwards. *)
  let eng = Engine.create ~regions:4 () in
  let executed = ref 0 in
  let handles =
    List.init 100 (fun i ->
        Engine.schedule ~region:(i mod 4) eng ~delay:(float_of_int (i + 1)) (fun () ->
            incr executed))
  in
  check_int "queue holds all" 100 (Engine.queue_size eng);
  List.iteri (fun i h -> if i < 60 then Engine.cancel h) handles;
  check_int "pending is live count" 40 (Engine.pending eng);
  check_bool "compaction shrank the queue" true (Engine.queue_size eng < 100);
  ignore (Engine.run eng);
  check_int "only live events ran" 40 !executed;
  check_int "drained" 0 (Engine.pending eng)

let test_engine_regions_cancel_shard_head () =
  (* Cancelling the head of one shard must not starve or reorder the
     others. *)
  let eng = Engine.create ~regions:2 () in
  let log = ref [] in
  let a = Engine.schedule ~region:0 eng ~delay:1.0 (fun () -> log := "a" :: !log) in
  Engine.schedule ~region:1 eng ~delay:2.0 (fun () -> log := "b" :: !log) |> ignore;
  Engine.schedule ~region:0 eng ~delay:3.0 (fun () -> log := "c" :: !log) |> ignore;
  Engine.cancel a;
  ignore (Engine.run eng);
  check (Alcotest.list Alcotest.string) "survivors in order" [ "b"; "c" ]
    (List.rev !log);
  check_float "ran to last event" 3.0 (Engine.now eng)

let test_engine_regions_validation () =
  Alcotest.check_raises "zero regions rejected"
    (Invalid_argument "Engine.create: regions must be >= 1 (got 0)") (fun () ->
      ignore (Engine.create ~regions:0 ()));
  let eng = Engine.create ~regions:3 () in
  Alcotest.check_raises "negative region rejected"
    (Invalid_argument "Engine.schedule: region must be >= 0 (got -1)") (fun () ->
      ignore (Engine.schedule ~region:(-1) eng (fun () -> ())));
  (* Host ids beyond the shard count are folded in, so callers can pass
     host ids directly. *)
  let ran = ref false in
  Engine.schedule ~region:1001 eng (fun () -> ran := true) |> ignore;
  ignore (Engine.run eng);
  check_bool "large region folded" true !ran

let test_recommended_regions () =
  check_int "small clusters stay unsharded" 1 (Engine.recommended_regions ~hosts:16);
  check_int "one host" 1 (Engine.recommended_regions ~hosts:1);
  check_bool "mid-size cluster shards" true (Engine.recommended_regions ~hosts:256 > 1);
  check_bool "capped" true (Engine.recommended_regions ~hosts:10_000_000 <= 128);
  List.iter
    (fun hosts ->
      let r = Engine.recommended_regions ~hosts in
      check_bool (Printf.sprintf "sane at %d hosts" hosts) true (r >= 1 && r <= 128))
    [ 17; 100; 1024; 8192; 100_000 ]

let test_trace_level_gate () =
  let t = Trace.create ~level:Trace.Summary () in
  check_bool "summary enabled" true (Trace.enabled t Trace.Summary);
  check_bool "full gated" false (Trace.enabled t Trace.Full);
  Trace.record t ~time:1.0 ~source:"s" ~event:"milestone" "kept";
  Trace.record ~level:Trace.Full t ~time:2.0 ~source:"s" ~event:"chatter" "dropped";
  Trace.record_fmt ~level:Trace.Full t ~time:3.0 ~source:"s" ~event:"chatter" "x %d" 5;
  Trace.record_lazy ~level:Trace.Full t ~time:4.0 ~source:"s" ~event:"chatter" (fun () ->
      Alcotest.fail "gated-out lazy detail must not render");
  check_int "only the milestone survives" 1 (Trace.length t);
  check_int "chatter gone" 0 (Trace.count t ~event:"chatter");
  let full = Trace.create () in
  Trace.record ~level:Trace.Full full ~time:1.0 ~source:"s" ~event:"chatter" "kept";
  check_int "full trace keeps chatter" 1 (Trace.length full)

let test_trace_lazy_memoized () =
  let t = Trace.create () in
  let calls = ref 0 in
  Trace.record_lazy t ~time:1.0 ~source:"s" ~event:"e" (fun () ->
      incr calls;
      "rendered");
  check_int "not rendered while unread" 0 !calls;
  check_int "length does not render" 1 (Trace.length t);
  check_int "count does not render" 1 (Trace.count t ~event:"e");
  check_bool "first read renders" true
    (match Trace.last t ~event:"e" with
    | Some e -> e.Trace.detail = "rendered"
    | None -> false);
  ignore (Trace.entries t);
  check_int "rendered exactly once" 1 !calls

let test_rng_copy_independent () =
  let a = Rng.create 5L in
  ignore (Rng.int a 10);
  let b = Rng.copy a in
  check_int "copies agree" (Rng.int a 1000) (Rng.int b 1000)

let test_rng_exponential_positive () =
  let rng = Rng.create 2L in
  for _ = 1 to 200 do
    check_bool "positive" true (Rng.exponential rng ~mean:3.0 > 0.0)
  done

(* ------------------------------------------------------------------ *)
(* Mailbox *)

let test_mailbox_fifo () =
  let got = ref [] in
  ignore
    (run_sim (fun eng ->
         let mb = Mailbox.create () in
         List.iter (Mailbox.send mb) [ 1; 2; 3 ];
         ignore
           (Proc.spawn eng (fun () ->
                for _ = 1 to 3 do
                  got := Mailbox.recv mb :: !got
                done))));
  check (Alcotest.list Alcotest.int) "fifo order" [ 1; 2; 3 ] (List.rev !got)

let test_mailbox_blocking () =
  let got = ref None in
  ignore
    (run_sim (fun eng ->
         let mb = Mailbox.create () in
         ignore
           (Proc.spawn eng (fun () ->
                let v = Mailbox.recv mb in
                got := Some (v, Engine.now eng)));
         ignore
           (Proc.spawn eng (fun () ->
                Proc.sleep 2.5;
                Mailbox.send mb "hello"))));
  match !got with
  | Some (v, t) ->
      check Alcotest.string "value" "hello" v;
      check_float "blocked until send" 2.5 t
  | None -> Alcotest.fail "never received"

let test_mailbox_timeout_expires () =
  let got = ref (Some "sentinel") in
  ignore
    (run_sim (fun eng ->
         let mb = Mailbox.create () in
         ignore (Proc.spawn eng (fun () -> got := Mailbox.recv_timeout mb ~timeout:3.0))));
  check_bool "timed out" true (!got = None)

let test_mailbox_timeout_delivers () =
  let got = ref None in
  ignore
    (run_sim (fun eng ->
         let mb = Mailbox.create () in
         ignore (Proc.spawn eng (fun () -> got := Mailbox.recv_timeout mb ~timeout:3.0));
         ignore
           (Proc.spawn eng (fun () ->
                Proc.sleep 1.0;
                Mailbox.send mb 99))));
  check_bool "delivered" true (!got = Some 99)

let test_mailbox_killed_waiter_not_lost () =
  (* If a waiter dies, a message sent afterwards must go to the next
     waiter, not vanish. *)
  let got = ref None in
  ignore
    (run_sim (fun eng ->
         let mb = Mailbox.create () in
         let doomed = Proc.spawn eng ~name:"doomed" (fun () -> ignore (Mailbox.recv mb)) in
         ignore
           (Proc.spawn eng ~name:"second" (fun () ->
                Proc.sleep 1.0;
                got := Some (Mailbox.recv mb)));
         ignore
           (Proc.spawn eng (fun () ->
                Proc.sleep 2.0;
                Proc.kill doomed;
                Proc.sleep 1.0;
                Mailbox.send mb 7))));
  check_bool "second waiter got it" true (!got = Some 7)

let test_mailbox_two_consumers () =
  let got = ref [] in
  ignore
    (run_sim (fun eng ->
         let mb = Mailbox.create () in
         for i = 1 to 2 do
           ignore
             (Proc.spawn eng (fun () ->
                  let v = Mailbox.recv mb in
                  got := (i, v) :: !got))
         done;
         ignore
           (Proc.spawn eng (fun () ->
                Proc.sleep 1.0;
                Mailbox.send mb "x";
                Mailbox.send mb "y"))));
  check_int "both consumers woke" 2 (List.length !got)

(* ------------------------------------------------------------------ *)
(* Ivar *)

let test_ivar_fill_read () =
  let got = ref 0 in
  ignore
    (run_sim (fun eng ->
         let iv = Ivar.create () in
         ignore (Proc.spawn eng (fun () -> got := Ivar.read iv));
         ignore
           (Proc.spawn eng (fun () ->
                Proc.sleep 1.0;
                Ivar.fill iv 42))));
  check_int "read value" 42 !got

let test_ivar_multiple_readers () =
  let sum = ref 0 in
  ignore
    (run_sim (fun eng ->
         let iv = Ivar.create () in
         for _ = 1 to 5 do
           ignore (Proc.spawn eng (fun () -> sum := !sum + Ivar.read iv))
         done;
         ignore
           (Proc.spawn eng (fun () ->
                Proc.sleep 1.0;
                Ivar.fill iv 10))));
  check_int "all readers woke" 50 !sum

let test_ivar_double_fill () =
  let iv = Ivar.create () in
  Ivar.fill iv 1;
  check_bool "try_fill refused" false (Ivar.try_fill iv 2);
  Alcotest.check_raises "fill raises" (Invalid_argument "Ivar.fill: already filled") (fun () ->
      Ivar.fill iv 3);
  check_bool "value kept" true (Ivar.peek iv = Some 1)

let test_ivar_read_after_fill () =
  let got = ref 0 in
  ignore
    (run_sim (fun eng ->
         let iv = Ivar.create () in
         Ivar.fill iv 5;
         ignore (Proc.spawn eng (fun () -> got := Ivar.read iv))));
  check_int "immediate read" 5 !got

(* ------------------------------------------------------------------ *)
(* Determinism property: same seed, same trace ([sim_fingerprint] is
   defined with the region tests above). *)

let prop_determinism =
  QCheck.Test.make ~name:"same seed gives identical execution" ~count:50
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let seed = Int64.of_int seed in
      String.equal (sim_fingerprint seed) (sim_fingerprint seed))

let prop_sleep_ordering =
  QCheck.Test.make ~name:"processes wake in sleep order" ~count:100
    QCheck.(list_of_size (Gen.int_range 1 10) (float_range 0.0 100.0))
    (fun delays ->
      let eng = Engine.create () in
      let woke = ref [] in
      List.iter
        (fun d -> ignore (Proc.spawn eng (fun () -> Proc.sleep d; woke := d :: !woke)))
        delays;
      ignore (Engine.run eng);
      let woke = List.rev !woke in
      List.sort_uniq compare woke = List.sort_uniq compare delays
      && List.for_all2 (fun a b -> a <= b)
           (List.filteri (fun i _ -> i < List.length woke - 1) woke)
           (List.tl woke))

let () =
  let qsuite = List.map QCheck_alcotest.to_alcotest [ prop_heap_sorts; prop_determinism; prop_sleep_ordering ] in
  Alcotest.run "simkern"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "int_in_range" `Quick test_rng_int_in_range;
          Alcotest.test_case "split independent" `Quick test_rng_split_independent;
          Alcotest.test_case "invalid args" `Quick test_rng_invalid;
          Alcotest.test_case "float bounds" `Quick test_rng_float_bounds;
          Alcotest.test_case "shuffle permutation" `Quick test_rng_shuffle_permutation;
          Alcotest.test_case "copy independent" `Quick test_rng_copy_independent;
          Alcotest.test_case "exponential positive" `Quick test_rng_exponential_positive;
        ] );
      ( "heap",
        [
          Alcotest.test_case "ordering" `Quick test_heap_ordering;
          Alcotest.test_case "empty" `Quick test_heap_empty;
          Alcotest.test_case "duplicates" `Quick test_heap_duplicates;
          Alcotest.test_case "filter in place" `Quick test_heap_filter_in_place;
        ] );
      ( "engine",
        [
          Alcotest.test_case "time order" `Quick test_engine_time_order;
          Alcotest.test_case "same instant fifo" `Quick test_engine_same_instant_fifo;
          Alcotest.test_case "deadline" `Quick test_engine_deadline;
          Alcotest.test_case "cancel" `Quick test_engine_cancel;
          Alcotest.test_case "halt" `Quick test_engine_halt;
          Alcotest.test_case "nested schedule" `Quick test_engine_nested_schedule;
          Alcotest.test_case "past schedule rejected" `Quick test_engine_past_schedule_rejected;
          Alcotest.test_case "trace" `Quick test_engine_trace;
          Alcotest.test_case "pending" `Quick test_engine_pending;
          Alcotest.test_case "trace queries" `Quick test_trace_queries;
          Alcotest.test_case "tombstone compaction" `Quick test_engine_tombstone_compaction;
          Alcotest.test_case "trace level gate" `Quick test_trace_level_gate;
          Alcotest.test_case "trace lazy memoized" `Quick test_trace_lazy_memoized;
          Alcotest.test_case "stop before" `Quick test_engine_stop_before;
          Alcotest.test_case "run one" `Quick test_engine_run_one;
          Alcotest.test_case "retime keeps slot" `Quick test_engine_retime_keeps_slot;
          Alcotest.test_case "snapshot restore" `Quick test_engine_snapshot_restore;
        ] );
      ( "regions",
        [
          Alcotest.test_case "same instant global order" `Quick
            test_engine_regions_same_instant_order;
          Alcotest.test_case "interleaved times" `Quick
            test_engine_regions_interleaved_times;
          Alcotest.test_case "region inherited" `Quick test_engine_regions_inherited;
          Alcotest.test_case "fingerprint identical" `Quick
            test_engine_regions_fingerprint_identical;
          Alcotest.test_case "sharded compaction" `Quick test_engine_regions_compaction;
          Alcotest.test_case "cancel shard head" `Quick
            test_engine_regions_cancel_shard_head;
          Alcotest.test_case "validation" `Quick test_engine_regions_validation;
          Alcotest.test_case "recommended regions" `Quick test_recommended_regions;
        ] );
      ( "proc",
        [
          Alcotest.test_case "runs" `Quick test_proc_runs;
          Alcotest.test_case "sleep advances time" `Quick test_proc_sleep_advances_time;
          Alcotest.test_case "exit normal" `Quick test_proc_exit_normal;
          Alcotest.test_case "exit crashed" `Quick test_proc_exit_crashed;
          Alcotest.test_case "kill waiting" `Quick test_proc_kill_waiting;
          Alcotest.test_case "kill embryo" `Quick test_proc_kill_embryo;
          Alcotest.test_case "kill idempotent" `Quick test_proc_kill_idempotent;
          Alcotest.test_case "freeze delays" `Quick test_proc_freeze_delays;
          Alcotest.test_case "freeze mailbox" `Quick test_proc_freeze_mailbox;
          Alcotest.test_case "join" `Quick test_proc_join;
          Alcotest.test_case "join dead" `Quick test_proc_join_already_dead;
          Alcotest.test_case "self" `Quick test_proc_self;
          Alcotest.test_case "kill self" `Quick test_proc_kill_self;
          Alcotest.test_case "freeze running" `Quick
            test_proc_freeze_running_takes_effect_at_suspension;
          Alcotest.test_case "double freeze" `Quick test_proc_double_freeze_single_unfreeze;
        ] );
      ( "mailbox",
        [
          Alcotest.test_case "fifo" `Quick test_mailbox_fifo;
          Alcotest.test_case "blocking" `Quick test_mailbox_blocking;
          Alcotest.test_case "timeout expires" `Quick test_mailbox_timeout_expires;
          Alcotest.test_case "timeout delivers" `Quick test_mailbox_timeout_delivers;
          Alcotest.test_case "killed waiter not lost" `Quick test_mailbox_killed_waiter_not_lost;
          Alcotest.test_case "two consumers" `Quick test_mailbox_two_consumers;
        ] );
      ( "ivar",
        [
          Alcotest.test_case "fill read" `Quick test_ivar_fill_read;
          Alcotest.test_case "multiple readers" `Quick test_ivar_multiple_readers;
          Alcotest.test_case "double fill" `Quick test_ivar_double_fill;
          Alcotest.test_case "read after fill" `Quick test_ivar_read_after_fill;
        ] );
      ("properties", qsuite);
    ]
