(* Tests for the protocol-backend layer (lib/backend):

   - registry: builtin registration, name/alias resolution, every
     Config.protocol constructor resolves, duplicate registration
     rejected;
   - metrics: uniform counter set, generic aggregation in the harness;
   - golden equivalence: for each registered backend a fixed-seed run
     must reproduce the outcome, completion time, injected-fault count
     and checksum set captured from the pre-refactor per-protocol
     Run.execute (devtools/golden_capture.exe regenerates the table). *)

let check = Alcotest.check
let check_bool = check Alcotest.bool
let check_int = check Alcotest.int
let check_str = check Alcotest.string

module Backend = Failmpi.Backend

(* ------------------------------------------------------------------ *)
(* Registry *)

let backend_name (module B : Backend.S) = B.name

let test_builtin_names () =
  check (Alcotest.list Alcotest.string) "registration order"
    [ "vcl"; "blocking"; "v2"; "replication"; "ulfm" ]
    (Backend.names ())

let test_aliases_resolve () =
  List.iter
    (fun (spelling, expected) ->
      match Backend.find spelling with
      | Some b -> check_str spelling expected (backend_name b)
      | None -> Alcotest.failf "%s did not resolve" spelling)
    [
      ("vcl", "vcl");
      ("non-blocking", "vcl");
      ("blocking", "blocking");
      ("v2", "v2");
      ("logging", "v2");
      ("replication", "replication");
      ("rep", "replication");
      ("ulfm", "ulfm");
      ("shrink", "ulfm");
    ];
  check_bool "unknown name" true (Backend.find "raid0" = None)

let test_every_protocol_resolves () =
  List.iter
    (fun (proto, expected) ->
      let (module B : Backend.S) = Backend.Registry.of_protocol proto in
      check_str (Mpivcl.Config.protocol_name proto) expected B.name;
      check_bool "handles its own protocol" true (B.handles proto))
    [
      (Mpivcl.Config.Non_blocking, "vcl");
      (Mpivcl.Config.Blocking, "blocking");
      (Mpivcl.Config.Sender_logging, "v2");
      (Mpivcl.Config.Replication { degree = 2 }, "replication");
      (Mpivcl.Config.Replication { degree = 5 }, "replication");
      (Mpivcl.Config.Ulfm { spares = 0 }, "ulfm");
      (Mpivcl.Config.Ulfm { spares = 2 }, "ulfm");
    ]

let test_protocol_roundtrip () =
  (* B.protocol must produce a protocol that resolves back to B. *)
  List.iter
    (fun ((module B : Backend.S) as b) ->
      let proto = B.protocol ~replicas:3 in
      check_str "roundtrip" (backend_name b)
        (backend_name (Backend.Registry.of_protocol proto)))
    (Backend.all ())

let test_duplicate_registration_rejected () =
  let reject b =
    try
      Backend.Registry.register b;
      Alcotest.fail "expected Invalid_argument"
    with Invalid_argument msg ->
      check_bool "mentions registration" true
        (String.length msg > 0
        && Str.string_match (Str.regexp ".*already registered") msg 0)
  in
  (* Same module again... *)
  reject (module Backend.Builtin.Vcl : Backend.S);
  (* ...and a fresh module whose alias collides with a canonical name. *)
  let module Imposter = struct
    include Backend.Builtin.Replication

    let name = "partial-replication"
    let aliases = [ "v2" ]
  end in
  reject (module Imposter : Backend.S);
  check (Alcotest.list Alcotest.string) "registry unchanged"
    [ "vcl"; "blocking"; "v2"; "replication"; "ulfm" ]
    (Backend.names ())

let test_default_machines () =
  let machines name ~replicas =
    match Backend.find name with
    | Some (module B : Backend.S) -> B.default_machines ~n_ranks:49 ~replicas
    | None -> Alcotest.failf "%s not registered" name
  in
  (* Paper allocation for the rollback families: 53 hosts for BT-49. *)
  check_int "vcl" 53 (machines "vcl" ~replicas:2);
  check_int "v2" 53 (machines "v2" ~replicas:2);
  check_int "replication x2" 100 (machines "replication" ~replicas:2);
  check_int "ulfm" 53 (machines "ulfm" ~replicas:2)

(* ------------------------------------------------------------------ *)
(* Metrics *)

let test_metrics_counters () =
  let m =
    {
      Backend.Metrics.zero with
      Backend.Metrics.recoveries = 2;
      committed_waves = 5;
      confused = true;
      extra = [ ("exhausted", 1) ];
    }
  in
  check (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int)) "counters"
    [
      ("recoveries", 2);
      ("committed_waves", 5);
      ("confused", 1);
      ("failovers", 0);
      ("respawns", 0);
      ("exhausted", 1);
    ]
    (Backend.Metrics.counters m);
  check_bool "find extra" true (Backend.Metrics.find m "exhausted" = Some 1);
  check_bool "find missing" true (Backend.Metrics.find m "nope" = None)

let fake_result metrics =
  {
    Failmpi.Run.outcome = Failmpi.Run.Completed 10.0;
    injected_faults = 1;
    metrics;
    checksums = [];
    checksum_ok = None;
    trace = Simkern.Trace.create ();
  }

let test_aggregate_generic_counters () =
  (* One rollback-style and one replication-style result: the aggregate
     must average every counter either backend reported, including the
     extension map, with no per-protocol code. *)
  let rollback =
    fake_result
      { Backend.Metrics.zero with Backend.Metrics.recoveries = 2; committed_waves = 4 }
  in
  let replication =
    fake_result
      {
        Backend.Metrics.zero with
        Backend.Metrics.failovers = 4;
        respawns = 2;
        extra = [ ("exhausted", 1) ];
      }
  in
  let agg = Experiments.Harness.aggregate ~label:"mixed" [ rollback; replication ] in
  check (Alcotest.float 1e-9) "recoveries" 1.0 (Experiments.Harness.counter agg "recoveries");
  check (Alcotest.float 1e-9) "committed" 2.0
    (Experiments.Harness.counter agg "committed_waves");
  check (Alcotest.float 1e-9) "failovers" 2.0 (Experiments.Harness.counter agg "failovers");
  check (Alcotest.float 1e-9) "respawns" 1.0 (Experiments.Harness.counter agg "respawns");
  check (Alcotest.float 1e-9) "extension counter" 0.5
    (Experiments.Harness.counter agg "exhausted");
  check (Alcotest.float 1e-9) "unknown counter" 0.0
    (Experiments.Harness.counter agg "nope")

(* ------------------------------------------------------------------ *)
(* Golden equivalence: fixed-seed behaviour captured from the
   per-protocol Run.execute before the backend refactor
   (devtools/golden_capture.exe on commit bece8b9). *)

let small_params =
  { Workload.Stencil.iterations = 60; compute_time = 0.5; msg_bytes = 5_000; jitter = 0.0 }

let golden_spec ~protocol ~n_ranks ~n_machines ~scenario =
  let app = Workload.Stencil.app small_params ~n_ranks in
  let cfg =
    {
      (Mpivcl.Config.default ~n_ranks) with
      Mpivcl.Config.protocol;
      wave_interval = 10.0;
      term_straggler_prob = 0.0;
    }
  in
  {
    (Failmpi.Run.default_spec ~app ~cfg ~n_compute:n_machines ~state_bytes:1_000_000) with
    Failmpi.Run.scenario = Some scenario;
    timeout = 400.0;
  }

type golden = {
  g_seed : int64;
  g_outcome : string;
  g_time : string;  (** %.6f of the completion time, "-" otherwise *)
  g_faults : int;
  g_checksums : (int * int) list;
}

let stencil_4 = 1334555200
let all_ranks_4 = [ (0, stencil_4); (1, stencil_4); (2, stencil_4); (3, stencil_4) ]

let goldens =
  [
    ( "vcl",
      Mpivcl.Config.Non_blocking,
      [
        { g_seed = 1L; g_outcome = "completed"; g_time = "53.935736"; g_faults = 3;
          g_checksums = all_ranks_4 };
        { g_seed = 7L; g_outcome = "completed"; g_time = "51.763581"; g_faults = 3;
          g_checksums = all_ranks_4 };
      ] );
    ( "blocking",
      Mpivcl.Config.Blocking,
      [
        { g_seed = 1L; g_outcome = "completed"; g_time = "53.935736"; g_faults = 3;
          g_checksums = all_ranks_4 };
        { g_seed = 7L; g_outcome = "completed"; g_time = "51.763581"; g_faults = 3;
          g_checksums = all_ranks_4 };
      ] );
    ( "v2",
      Mpivcl.Config.Sender_logging,
      [
        { g_seed = 1L; g_outcome = "completed"; g_time = "49.945721"; g_faults = 3;
          g_checksums = all_ranks_4 };
        { g_seed = 7L; g_outcome = "completed"; g_time = "44.125085"; g_faults = 2;
          g_checksums = all_ranks_4 };
      ] );
    ( "replication",
      Mpivcl.Config.Replication { degree = 2 },
      [
        { g_seed = 1L; g_outcome = "completed"; g_time = "31.187577"; g_faults = 2;
          g_checksums = all_ranks_4 };
        { g_seed = 7L; g_outcome = "completed"; g_time = "31.164741"; g_faults = 2;
          g_checksums = all_ranks_4 };
      ] );
  ]

let run_golden ?regions ~protocol g =
  let n_machines =
    match protocol with Mpivcl.Config.Replication _ -> 10 | _ -> 8
  in
  let scenario = Fail_lang.Paper_scenarios.frequency ~n_machines ~period:15 in
  Failmpi.Run.execute
    {
      (golden_spec ~protocol ~n_ranks:4 ~n_machines ~scenario) with
      Failmpi.Run.seed = g.g_seed;
      regions;
    }

let check_golden ?regions name ~protocol g =
  let r = run_golden ?regions ~protocol g in
  let ctx fmt = Printf.sprintf "%s seed=%Ld %s" name g.g_seed fmt in
  check_str (ctx "outcome") g.g_outcome (Failmpi.Run.outcome_name r.Failmpi.Run.outcome);
  check_str (ctx "time") g.g_time
    (match r.Failmpi.Run.outcome with
    | Failmpi.Run.Completed t -> Printf.sprintf "%.6f" t
    | Failmpi.Run.Degraded { at; _ } -> Printf.sprintf "%.6f" at
    | Failmpi.Run.Aborted _ | Failmpi.Run.Ckpt_lost | Failmpi.Run.Non_terminating
    | Failmpi.Run.Buggy | Failmpi.Run.Net_hung ->
        "-");
  check_int (ctx "faults") g.g_faults r.Failmpi.Run.injected_faults;
  check (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int)) (ctx "checksums")
    g.g_checksums r.Failmpi.Run.checksums;
  r

let test_golden name protocol cases () =
  List.iter (fun g -> ignore (check_golden name ~protocol g)) cases

(* Region placement is purely structural: with the event queue split
   into 5 shards the same seeds must still land byte-for-byte on the
   pre-refactor captures above. *)
let test_golden_sharded name protocol cases () =
  List.iter (fun g -> ignore (check_golden ~regions:5 name ~protocol g)) cases

(* ULFM's pinned goldens live in test_mpiulfm (its outcomes are Degraded
   shapes, not the table above); here pin shard-placement neutrality for
   the fifth backend: a faulty shrink run is identical at any region
   count, down to every counter. *)
let test_ulfm_sharded_equivalence () =
  let fp regions =
    let protocol = Mpivcl.Config.Ulfm { spares = 1 } in
    let scenario = Fail_lang.Paper_scenarios.frequency ~n_machines:8 ~period:15 in
    let r =
      Failmpi.Run.execute
        {
          (golden_spec ~protocol ~n_ranks:4 ~n_machines:8 ~scenario) with
          Failmpi.Run.seed = 1L;
          regions = Some regions;
        }
    in
    Printf.sprintf "%s|%s|%d|%s|%s"
      (Failmpi.Run.outcome_name r.Failmpi.Run.outcome)
      (match r.Failmpi.Run.outcome with
      | Failmpi.Run.Completed t | Failmpi.Run.Degraded { at = t; _ } ->
          Printf.sprintf "%.9f" t
      | _ -> "-")
      r.Failmpi.Run.injected_faults
      (String.concat ","
         (List.map (fun (rk, c) -> Printf.sprintf "%d:%d" rk c) r.Failmpi.Run.checksums))
      (String.concat ","
         (List.map
            (fun (k, v) -> Printf.sprintf "%s=%d" k v)
            (Backend.Metrics.counters r.Failmpi.Run.metrics)))
  in
  check_str "ulfm: 5 regions = 1 region" (fp 1) (fp 5)

let test_metrics_not_cross_wired () =
  (* The pre-refactor Run.execute hard-coded the counters of the other
     family to zero; now each backend reports its own. A faulty vcl run
     must show recovery waves and no failovers; a faulty replication run
     must show failovers and no recovery waves. *)
  let _, vcl_proto, vcl_cases = List.nth goldens 0 in
  let r = run_golden ~protocol:vcl_proto (List.hd vcl_cases) in
  check_bool "vcl recovered" true (Failmpi.Run.recoveries r >= 1);
  check_int "vcl no failovers" 0 (Failmpi.Run.failovers r);
  check_int "vcl no respawns" 0 (Failmpi.Run.respawns r);
  let _, rep_proto, rep_cases = List.nth goldens 3 in
  let r = run_golden ~protocol:rep_proto (List.hd rep_cases) in
  check_bool "replication failed over" true (Failmpi.Run.failovers r >= 1);
  check_int "replication no recovery waves" 0 (Failmpi.Run.recoveries r);
  check_int "replication no checkpoint waves" 0 (Failmpi.Run.committed_waves r);
  check_bool "replication reports exhaustion counter" true
    (Backend.Metrics.find r.Failmpi.Run.metrics "exhausted" = Some 0)

let () =
  Alcotest.run "backend"
    [
      ( "registry",
        [
          Alcotest.test_case "builtin names" `Quick test_builtin_names;
          Alcotest.test_case "aliases resolve" `Quick test_aliases_resolve;
          Alcotest.test_case "every protocol resolves" `Quick test_every_protocol_resolves;
          Alcotest.test_case "protocol roundtrip" `Quick test_protocol_roundtrip;
          Alcotest.test_case "duplicate registration rejected" `Quick
            test_duplicate_registration_rejected;
          Alcotest.test_case "default machines" `Quick test_default_machines;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "uniform counters" `Quick test_metrics_counters;
          Alcotest.test_case "generic aggregation" `Quick test_aggregate_generic_counters;
          Alcotest.test_case "not cross-wired" `Quick test_metrics_not_cross_wired;
        ] );
      ( "golden-equivalence",
        List.map
          (fun (name, protocol, cases) ->
            Alcotest.test_case name `Quick (test_golden name protocol cases))
          goldens );
      ( "golden-sharded",
        List.map
          (fun (name, protocol, cases) ->
            Alcotest.test_case name `Quick (test_golden_sharded name protocol cases))
          goldens
        @ [
            Alcotest.test_case "ulfm region equivalence" `Quick
              test_ulfm_sharded_equivalence;
          ] );
    ]
