(* Tests for the simulated network: connection lifecycle, latency and
   bandwidth modelling, closure-on-death semantics, and the cluster/task
   registry of simos. *)

open Simkern
open Simnet

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool
let check_float msg = check (Alcotest.float 1e-6) msg

let with_net f =
  let eng = Engine.create () in
  let net = Net.create eng () in
  f eng net;
  ignore (Engine.run ~until:1000.0 eng)

let test_connect_and_exchange () =
  let got = ref None in
  with_net (fun eng net ->
      ignore
        (Proc.spawn eng ~name:"server" (fun () ->
             let listener = Net.listen net ~host:1 ~port:80 in
             match Net.accept listener with
             | Some conn -> (
                 match Net.recv conn with
                 | Net.Data v ->
                     got := Some v;
                     ignore (Net.send conn (v * 2))
                 | Net.Closed -> ())
             | None -> ()));
      ignore
        (Proc.spawn eng ~name:"client" (fun () ->
             Proc.sleep 0.01;
             match Net.connect net ~host:0 ~to_host:1 ~to_port:80 with
             | Ok conn ->
                 ignore (Net.send conn 21);
                 (match Net.recv conn with
                 | Net.Data 42 -> ()
                 | _ -> Alcotest.fail "expected doubled reply")
             | Error `Refused -> Alcotest.fail "refused")));
  check_bool "server got value" true (!got = Some 21)

let test_connect_refused () =
  let refused = ref false in
  with_net (fun eng net ->
      ignore
        (Proc.spawn eng (fun () ->
             match Net.connect net ~host:0 ~to_host:1 ~to_port:9 with
             | Error `Refused -> refused := true
             | Ok _ -> ())));
  check_bool "refused" true !refused

let test_latency () =
  (* Remote handshake costs one RTT; messages one latency. *)
  let connected_at = ref 0.0 and received_at = ref 0.0 in
  with_net (fun eng net ->
      ignore
        (Proc.spawn eng ~name:"server" (fun () ->
             let listener = Net.listen net ~host:1 ~port:80 in
             match Net.accept listener with
             | Some conn -> ignore (Net.send conn ())
             | None -> ()));
      ignore
        (Proc.spawn eng ~name:"client" (fun () ->
             Proc.sleep 1.0;
             match Net.connect net ~host:0 ~to_host:1 ~to_port:80 with
             | Ok conn ->
                 connected_at := Engine.now eng;
                 (match Net.recv conn with
                 | Net.Data () -> received_at := Engine.now eng
                 | Net.Closed -> ())
             | Error `Refused -> ())));
  let lat = Net.default_config.Net.latency in
  check_float "handshake one RTT" (1.0 +. (2.0 *. lat)) !connected_at;
  check_bool "message after accept" true (!received_at > !connected_at)

let test_bandwidth_serialization () =
  (* Two 1 MB messages at 100 MB/s: second arrives ~10 ms after first. *)
  let times = ref [] in
  with_net (fun eng net ->
      ignore
        (Proc.spawn eng ~name:"server" (fun () ->
             let listener = Net.listen net ~host:1 ~port:80 in
             match Net.accept listener with
             | Some conn ->
                 for _ = 1 to 2 do
                   match Net.recv conn with
                   | Net.Data () -> times := Engine.now eng :: !times
                   | Net.Closed -> ()
                 done
             | None -> ()));
      ignore
        (Proc.spawn eng ~name:"client" (fun () ->
             match Net.connect net ~host:0 ~to_host:1 ~to_port:80 with
             | Ok conn ->
                 ignore (Net.send conn ~size:1_000_000 ());
                 ignore (Net.send conn ~size:1_000_000 ())
             | Error `Refused -> ())));
  match List.rev !times with
  | [ t1; t2 ] ->
      check_bool "10ms serialization gap" true (t2 -. t1 > 0.009 && t2 -. t1 < 0.011)
  | _ -> Alcotest.fail "expected two messages"

let test_close_observed () =
  let observed = ref false in
  with_net (fun eng net ->
      ignore
        (Proc.spawn eng ~name:"server" (fun () ->
             let listener = Net.listen net ~host:1 ~port:80 in
             match Net.accept listener with
             | Some conn -> (
                 match Net.recv conn with
                 | Net.Closed -> observed := true
                 | Net.Data _ -> ())
             | None -> ()));
      ignore
        (Proc.spawn eng ~name:"client" (fun () ->
             match Net.connect net ~host:0 ~to_host:1 ~to_port:80 with
             | Ok conn ->
                 Proc.sleep 1.0;
                 Net.close conn
             | Error `Refused -> ())));
  check_bool "peer saw close" true !observed

let test_owner_death_closes () =
  (* The paper's failure detection: killing the task closes its sockets. *)
  let observed_at = ref 0.0 in
  with_net (fun eng net ->
      ignore
        (Proc.spawn eng ~name:"server" (fun () ->
             let listener = Net.listen net ~host:1 ~port:80 in
             match Net.accept listener with
             | Some conn -> (
                 match Net.recv conn with
                 | Net.Closed -> observed_at := Engine.now eng
                 | Net.Data _ -> ())
             | None -> ()));
      let client =
        Proc.spawn eng ~name:"client" (fun () ->
            match Net.connect net ~host:0 ~to_host:1 ~to_port:80 with
            | Ok _conn -> Proc.sleep 1000.0
            | Error `Refused -> ())
      in
      ignore
        (Proc.spawn eng ~name:"killer" (fun () ->
             Proc.sleep 5.0;
             Proc.kill client)));
  check_bool "closure detected promptly" true (!observed_at > 5.0 && !observed_at < 5.1)

let test_send_after_close_fails () =
  let result = ref None in
  with_net (fun eng net ->
      ignore
        (Proc.spawn eng ~name:"server" (fun () ->
             let listener = Net.listen net ~host:1 ~port:80 in
             ignore (Net.accept listener)));
      ignore
        (Proc.spawn eng ~name:"client" (fun () ->
             match Net.connect net ~host:0 ~to_host:1 ~to_port:80 with
             | Ok conn ->
                 Net.close conn;
                 result := Some (Net.send conn ())
             | Error `Refused -> ())));
  check_bool "send refused" true (!result = Some false)

let test_recv_timeout () =
  let got = ref (Some (Net.Data ())) in
  with_net (fun eng net ->
      ignore
        (Proc.spawn eng ~name:"server" (fun () ->
             let listener = Net.listen net ~host:1 ~port:80 in
             match Net.accept listener with
             | Some conn -> got := Net.recv_timeout conn ~timeout:2.0
             | None -> ()));
      ignore
        (Proc.spawn eng ~name:"client" (fun () ->
             match Net.connect net ~host:0 ~to_host:1 ~to_port:80 with
             | Ok _ -> Proc.sleep 500.0
             | Error `Refused -> ())));
  check_bool "timed out" true (!got = None)

let test_double_bind_rejected () =
  with_net (fun _eng net ->
      ignore (Net.listen net ~host:3 ~port:80);
      try
        ignore (Net.listen net ~host:3 ~port:80);
        Alcotest.fail "expected bind failure"
      with Invalid_argument _ -> ())

let test_listener_close_frees_port () =
  with_net (fun _eng net ->
      let l = Net.listen net ~host:3 ~port:80 in
      Net.close_listener l;
      ignore (Net.listen net ~host:3 ~port:80))

(* ------------------------------------------------------------------ *)
(* Cluster (simos) *)

let test_cluster_tasks () =
  let eng = Engine.create () in
  let cluster = Simos.Cluster.create eng ~size:4 in
  let p = Simos.Cluster.spawn_on cluster ~host:2 ~name:"worker" (fun () -> Proc.sleep 10.0) in
  ignore (Engine.run ~until:5.0 eng);
  check_int "one task" 1 (List.length (Simos.Cluster.tasks cluster ~host:2));
  check_bool "find by name" true
    (match Simos.Cluster.find_task cluster ~host:2 ~name:"worker" with
    | Some q -> Proc.pid q = Proc.pid p
    | None -> false);
  check_int "live count" 1 (Simos.Cluster.live_task_count cluster);
  ignore (Engine.run ~until:20.0 eng);
  check_int "task gone after exit" 0 (List.length (Simos.Cluster.tasks cluster ~host:2))

let test_cluster_kill_all () =
  let eng = Engine.create () in
  let cluster = Simos.Cluster.create eng ~size:2 in
  for _ = 1 to 3 do
    ignore (Simos.Cluster.spawn_on cluster ~host:0 (fun () -> Proc.sleep 100.0))
  done;
  ignore (Simos.Cluster.spawn_on cluster ~host:1 (fun () -> Proc.sleep 100.0));
  Engine.schedule eng ~delay:1.0 (fun () -> Simos.Cluster.kill_all cluster ~host:0) |> ignore;
  ignore (Engine.run ~until:10.0 eng);
  check_int "host 0 empty" 0 (List.length (Simos.Cluster.tasks cluster ~host:0));
  check_int "host 1 untouched" 1 (List.length (Simos.Cluster.tasks cluster ~host:1))

let test_cluster_bad_host () =
  let eng = Engine.create () in
  let cluster = Simos.Cluster.create eng ~size:2 in
  Alcotest.check_raises "unknown host" (Invalid_argument "Cluster.host: unknown host 9")
    (fun () -> ignore (Simos.Cluster.host cluster 9))

let test_cluster_counters_o1 () =
  (* task_count / live_task_count are maintained counters, and they stay
     consistent through spawn, exit and kill_all. *)
  let eng = Engine.create () in
  let cluster = Simos.Cluster.create eng ~size:3 in
  for i = 1 to 4 do
    ignore
      (Simos.Cluster.spawn_on cluster ~host:0
         ~name:(Printf.sprintf "short-%d" i)
         (fun () -> Proc.sleep 1.0))
  done;
  for i = 1 to 3 do
    ignore
      (Simos.Cluster.spawn_on cluster ~host:2
         ~name:(Printf.sprintf "long-%d" i)
         (fun () -> Proc.sleep 100.0))
  done;
  ignore (Engine.run ~until:0.5 eng);
  check_int "host 0 count" 4 (Simos.Cluster.task_count cluster ~host:0);
  check_int "host 2 count" 3 (Simos.Cluster.task_count cluster ~host:2);
  check_int "live total" 7 (Simos.Cluster.live_task_count cluster);
  ignore (Engine.run ~until:5.0 eng);
  check_int "short tasks exited" 0 (Simos.Cluster.task_count cluster ~host:0);
  check_int "live total after exits" 3 (Simos.Cluster.live_task_count cluster);
  Simos.Cluster.kill_all cluster ~host:2;
  ignore (Engine.run ~until:10.0 eng);
  check_int "host 2 emptied" 0 (Simos.Cluster.task_count cluster ~host:2);
  check_int "all gone" 0 (Simos.Cluster.live_task_count cluster)

let test_cluster_slot_reuse () =
  (* Slots freed by exits are recycled: churn far beyond the initial
     capacity keeps the registry consistent (the free-list path). *)
  let eng = Engine.create () in
  let cluster = Simos.Cluster.create eng ~size:2 in
  for round = 0 to 9 do
    Engine.schedule eng ~delay:(float_of_int round) (fun () ->
        for i = 1 to 40 do
          ignore
            (Simos.Cluster.spawn_on cluster ~host:(i mod 2)
               ~name:(Printf.sprintf "r%d-%d" round i)
               (fun () -> Proc.sleep 0.5))
        done)
    |> ignore
  done;
  ignore (Engine.run ~until:100.0 eng);
  check_int "all recycled" 0 (Simos.Cluster.live_task_count cluster);
  check_int "host 0 empty" 0 (Simos.Cluster.task_count cluster ~host:0);
  check_int "host 1 empty" 0 (Simos.Cluster.task_count cluster ~host:1)

let test_cluster_tasks_order () =
  (* [tasks] lists most-recently-spawned first — the order protocol code
     and the pre-refactor golden traces rely on. *)
  let eng = Engine.create () in
  let cluster = Simos.Cluster.create eng ~size:1 in
  List.iter
    (fun name ->
      ignore (Simos.Cluster.spawn_on cluster ~host:0 ~name (fun () -> Proc.sleep 50.0)))
    [ "first"; "second"; "third" ];
  ignore (Engine.run ~until:1.0 eng);
  check (Alcotest.list Alcotest.string) "newest first" [ "third"; "second"; "first" ]
    (List.map Proc.name (Simos.Cluster.tasks cluster ~host:0))

(* ------------------------------------------------------------------ *)
(* Perturbation bookkeeping (O(active-rules) representation) *)

let test_perturb_overlapping_partition () =
  (* A host listed on BOTH sides of a partition cuts against both sides
     — the two-bit membership encoding must preserve this. *)
  let eng = Engine.create () in
  let net : unit Net.t = Net.create eng () in
  let p = Net.perturb net in
  Net.Perturb.partition p [ 0; 1 ] [ 1; 2 ];
  check_bool "0 vs 2 cut" true (Net.Perturb.cut p ~src:0 ~dst:2);
  check_bool "1 vs 2 cut" true (Net.Perturb.cut p ~src:1 ~dst:2);
  check_bool "1 vs 0 cut" true (Net.Perturb.cut p ~src:1 ~dst:0);
  check_bool "same host never cut" false (Net.Perturb.cut p ~src:1 ~dst:1);
  (* Hosts outside every set are unaffected. *)
  check_bool "3 vs 4 clean" false (Net.Perturb.cut p ~src:3 ~dst:4);
  check_bool "0 vs 3 clean" false (Net.Perturb.cut p ~src:0 ~dst:3)

let test_perturb_isolate_and_heal () =
  let eng = Engine.create () in
  let net : unit Net.t = Net.create eng () in
  let p = Net.perturb net in
  Net.Perturb.isolate p [ 2; 5 ];
  check_bool "inside vs outside cut" true (Net.Perturb.cut p ~src:2 ~dst:0);
  check_bool "inside vs inside clean" false (Net.Perturb.cut p ~src:2 ~dst:5);
  check_bool "outside vs outside clean" false (Net.Perturb.cut p ~src:0 ~dst:1);
  Net.Perturb.degrade p ~hosts:[ 7 ]
    { Net.Perturb.loss = 0.5; latency = 1.0; jitter = 0.0 };
  Net.Perturb.heal p;
  check_bool "cut healed" false (Net.Perturb.cut p ~src:2 ~dst:0);
  let s = Net.Perturb.spec_for p ~src:7 ~dst:0 in
  check_bool "degradation healed" true (s = Net.Perturb.zero);
  check_bool "transport stays armed" true (Net.Perturb.touched p)

let test_perturb_degrade_semantics () =
  let eng = Engine.create () in
  let net : unit Net.t = Net.create eng () in
  let p = Net.perturb net in
  let spec l = { Net.Perturb.loss = l; latency = 0.0; jitter = 0.0 } in
  Net.Perturb.degrade p ~hosts:[ 3; 9 ] (spec 0.2);
  (* Latest call naming a host replaces its entry outright. *)
  Net.Perturb.degrade p ~hosts:[ 3 ] (spec 0.05);
  check_bool "replace semantics" true
    ((Net.Perturb.spec_for p ~src:3 ~dst:100).Net.Perturb.loss = 0.05);
  (* src and dst entries combine by per-field max. *)
  check_bool "max combine" true
    ((Net.Perturb.spec_for p ~src:3 ~dst:9).Net.Perturb.loss = 0.2);
  check_bool "untouched pair" true
    (Net.Perturb.spec_for p ~src:50 ~dst:60 = Net.Perturb.zero)

let () =
  Alcotest.run "simnet"
    [
      ( "net",
        [
          Alcotest.test_case "connect and exchange" `Quick test_connect_and_exchange;
          Alcotest.test_case "connect refused" `Quick test_connect_refused;
          Alcotest.test_case "latency" `Quick test_latency;
          Alcotest.test_case "bandwidth serialization" `Quick test_bandwidth_serialization;
          Alcotest.test_case "close observed" `Quick test_close_observed;
          Alcotest.test_case "owner death closes" `Quick test_owner_death_closes;
          Alcotest.test_case "send after close" `Quick test_send_after_close_fails;
          Alcotest.test_case "recv timeout" `Quick test_recv_timeout;
          Alcotest.test_case "double bind rejected" `Quick test_double_bind_rejected;
          Alcotest.test_case "listener close frees port" `Quick test_listener_close_frees_port;
        ] );
      ( "cluster",
        [
          Alcotest.test_case "task registry" `Quick test_cluster_tasks;
          Alcotest.test_case "kill all" `Quick test_cluster_kill_all;
          Alcotest.test_case "bad host" `Quick test_cluster_bad_host;
          Alcotest.test_case "o(1) counters" `Quick test_cluster_counters_o1;
          Alcotest.test_case "slot reuse" `Quick test_cluster_slot_reuse;
          Alcotest.test_case "tasks newest first" `Quick test_cluster_tasks_order;
        ] );
      ( "perturb-bookkeeping",
        [
          Alcotest.test_case "overlapping partition" `Quick
            test_perturb_overlapping_partition;
          Alcotest.test_case "isolate and heal" `Quick test_perturb_isolate_and_heal;
          Alcotest.test_case "degrade semantics" `Quick test_perturb_degrade_semantics;
        ] );
    ]
